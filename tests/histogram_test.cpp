// Histogram edge cases: empty/single-value behaviour and the argument
// guards on percentile (NaN p) and format_cdf (non-positive steps); plus
// the Log2Histogram percentile accuracy bound against exact percentiles.
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "common/rng.h"

namespace adapt {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(1.0), 0.0);
  EXPECT_THROW(h.min(), std::out_of_range);
  EXPECT_THROW(h.max(), std::out_of_range);
  EXPECT_THROW(h.percentile(50), std::out_of_range);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
  for (const double p : {0.0, 25.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 7.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(6.9), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(7.0), 1.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.add(0.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(-3), 0.0);   // clamps low
  EXPECT_DOUBLE_EQ(h.percentile(250), 10.0); // clamps high
}

// Regression: NaN compares false against both clamp bounds (p <= 0 and
// p >= 100), so before the guard it fell through to the interpolation and
// indexed the sorted array with a NaN-derived rank.
TEST(HistogramTest, PercentileRejectsNanP) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  EXPECT_THROW(h.percentile(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

// Regression: steps == 0 divided by zero when computing the x grid (and a
// negative steps value silently produced an empty table).
TEST(HistogramTest, FormatCdfRejectsNonPositiveSteps) {
  Histogram h;
  h.add(1.0);
  EXPECT_THROW(format_cdf(h, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(format_cdf(h, 0.0, 1.0, -4), std::invalid_argument);
}

TEST(HistogramTest, FormatCdfRowsAndEndpoints) {
  Histogram h;
  h.add(0.5);
  const std::string table = format_cdf(h, 0.0, 1.0, 2);
  EXPECT_EQ(table, "0\t0\n0.5\t1\n1\t1\n");
}

TEST(HistogramTest, BoxStatsOnEmptyIsZeroed) {
  const BoxStats b = box_stats(Histogram{});
  EXPECT_DOUBLE_EQ(b.median, 0.0);
  EXPECT_EQ(b.outliers, 0u);
}

// ---------------------------------------------------------------------------
// Log2Histogram::percentile — the fixed-memory estimator that replaced the
// store-every-sample Histogram on the prototype's per-op latency path.

TEST(Log2HistogramPercentileTest, ThrowsLikeExactHistogram) {
  const Log2Histogram empty;
  EXPECT_THROW(empty.percentile(50), std::out_of_range);
  Log2Histogram h;
  h.add(1);
  EXPECT_THROW(h.percentile(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Log2HistogramPercentileTest, SingleValueAndClamping) {
  Log2Histogram h;
  h.add(1000);
  for (const double p : {0.0, 50.0, 99.9, 100.0, -5.0, 200.0}) {
    // One sample occupies one bucket; interpolation lands on its ceiling,
    // which is capped at the observed max — exact for a singleton.
    EXPECT_DOUBLE_EQ(h.percentile(p), 1000.0) << "p=" << p;
  }
}

TEST(Log2HistogramPercentileTest, MonotoneInP) {
  Log2Histogram h;
  for (std::uint64_t v = 0; v < 4096; v += 3) h.add(v);
  double prev = h.percentile(0);
  for (double p = 1; p <= 100; p += 1) {
    const double cur = h.percentile(p);
    EXPECT_GE(cur, prev) << "p=" << p;
    prev = cur;
  }
}

// Accuracy bound: the exact nearest-rank percentile lands inside the same
// power-of-two bucket as the estimate, so estimate/exact must stay within
// a factor of 2 (both directions). Checked on a seeded heavy-tailed sample
// shaped like op latency — most values small, a long 2^10..2^20 tail.
TEST(Log2HistogramPercentileTest, WithinFactorTwoOfExactPercentiles) {
  Rng rng(42);
  Log2Histogram approx;
  Histogram exact;
  for (int i = 0; i < 100'000; ++i) {
    const double u = rng.uniform();
    std::uint64_t v;
    if (u < 0.9) {
      v = 200 + static_cast<std::uint64_t>(rng.uniform() * 800.0);
    } else {
      v = static_cast<std::uint64_t>(
          std::exp2(10.0 + rng.uniform() * 10.0));
    }
    approx.add(v);
    exact.add(static_cast<double>(v));
  }
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const double est = approx.percentile(p);
    const double ref = exact.percentile(p);
    ASSERT_GT(ref, 0.0);
    EXPECT_LE(est / ref, 2.0) << "p=" << p;
    EXPECT_GE(est / ref, 0.5) << "p=" << p;
  }
}

TEST(Log2HistogramPercentileTest, SurvivesMerge) {
  Log2Histogram a, b;
  for (std::uint64_t v = 1; v <= 64; ++v) a.add(v);
  for (std::uint64_t v = 65; v <= 128; ++v) b.add(v);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 128u);
  // Median of 1..128 is 64; the estimate must stay in its bucket.
  const double p50 = a.percentile(50);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 128.0);
}

// Merging shards with DISJOINT value ranges must behave as if every sample
// had been added to one histogram: bucket-for-bucket, count, sum, and max
// all accumulate exactly (the property the per-shard latency_breakdown
// merge in ConcurrentEngine::latency_breakdown relies on).
TEST(Log2HistogramMergeTest, DisjointRangesMergeExactly) {
  Log2Histogram lo, hi, reference;
  for (std::uint64_t v = 0; v <= 15; ++v) {
    lo.add(v);
    reference.add(v);
  }
  for (std::uint64_t v = 1000; v <= 1015; ++v) {
    hi.add(v);
    reference.add(v);
  }
  lo.merge_from(hi);
  EXPECT_EQ(lo.count(), reference.count());
  EXPECT_EQ(lo.sum(), reference.sum());
  EXPECT_EQ(lo.max_value(), reference.max_value());
  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    EXPECT_EQ(lo.bucket(b), reference.bucket(b)) << "bucket " << b;
  }
  // Identical buckets ⇒ identical percentile estimates at every p.
  for (const double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(lo.percentile(p), reference.percentile(p)) << p;
  }
}

// merge-then-percentile vs percentile-then-merge: the merged estimate can
// differ from any aggregation of the parts' estimates, but it must stay
// bracketed by them — merging never manufactures a tail outside the parts.
TEST(Log2HistogramMergeTest, MergedPercentileBracketedByParts) {
  Log2Histogram fast, slow;
  for (std::uint64_t i = 0; i < 1000; ++i) fast.add(10 + (i % 5));
  for (std::uint64_t i = 0; i < 1000; ++i) slow.add(5000 + (i % 7) * 100);
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const double lo_est = fast.percentile(p);
    const double hi_est = slow.percentile(p);
    Log2Histogram merged = fast;
    merged.merge_from(slow);
    const double m = merged.percentile(p);
    EXPECT_GE(m, std::min(lo_est, hi_est)) << "p=" << p;
    EXPECT_LE(m, std::max(lo_est, hi_est)) << "p=" << p;
  }
}

TEST(Log2HistogramMergeTest, FromPartsRoundTrips) {
  Log2Histogram h;
  for (std::uint64_t v = 0; v < 300; ++v) h.add(v * v);
  std::array<std::uint64_t, Log2Histogram::kBuckets> buckets{};
  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    buckets[b] = h.bucket(b);
  }
  const Log2Histogram copy = Log2Histogram::from_parts(
      buckets, h.count(), h.sum(), h.max_value());
  EXPECT_EQ(copy.count(), h.count());
  EXPECT_EQ(copy.sum(), h.sum());
  EXPECT_EQ(copy.max_value(), h.max_value());
  EXPECT_DOUBLE_EQ(copy.percentile(99.0), h.percentile(99.0));
  EXPECT_DOUBLE_EQ(copy.percentile(50.0), h.percentile(50.0));
}

}  // namespace
}  // namespace adapt
