// Histogram edge cases: empty/single-value behaviour and the argument
// guards on percentile (NaN p) and format_cdf (non-positive steps).
#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace adapt {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  const Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(1.0), 0.0);
  EXPECT_THROW(h.min(), std::out_of_range);
  EXPECT_THROW(h.max(), std::out_of_range);
  EXPECT_THROW(h.percentile(50), std::out_of_range);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
  for (const double p : {0.0, 25.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 7.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(6.9), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(7.0), 1.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.add(0.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(-3), 0.0);   // clamps low
  EXPECT_DOUBLE_EQ(h.percentile(250), 10.0); // clamps high
}

// Regression: NaN compares false against both clamp bounds (p <= 0 and
// p >= 100), so before the guard it fell through to the interpolation and
// indexed the sorted array with a NaN-derived rank.
TEST(HistogramTest, PercentileRejectsNanP) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  EXPECT_THROW(h.percentile(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

// Regression: steps == 0 divided by zero when computing the x grid (and a
// negative steps value silently produced an empty table).
TEST(HistogramTest, FormatCdfRejectsNonPositiveSteps) {
  Histogram h;
  h.add(1.0);
  EXPECT_THROW(format_cdf(h, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(format_cdf(h, 0.0, 1.0, -4), std::invalid_argument);
}

TEST(HistogramTest, FormatCdfRowsAndEndpoints) {
  Histogram h;
  h.add(0.5);
  const std::string table = format_cdf(h, 0.0, 1.0, 2);
  EXPECT_EQ(table, "0\t0\n0.5\t1\n1\t1\n");
}

TEST(HistogramTest, BoxStatsOnEmptyIsZeroed) {
  const BoxStats b = box_stats(Histogram{});
  EXPECT_DOUBLE_EQ(b.median, 0.0);
  EXPECT_EQ(b.outliers, 0u);
}

}  // namespace
}  // namespace adapt
