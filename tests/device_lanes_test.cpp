// Tests for the submission/completion-queue device model
// (lss/device_lanes.h): virtual-time semantics (admission, backpressure,
// serial service), the deterministic global completion order, bit-identical
// stats no matter how many worker threads drive disjoint lanes, a
// randomized differential against an independent naive reference model,
// and the adapt-manifest-v1 "lanes" block round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "array/ssd_device.h"
#include "common/rng.h"
#include "common/sync.h"
#include "lss/device_lanes.h"
#include "obs/export.h"

namespace adapt::lss {
namespace {

DeviceLanesConfig small_config() {
  DeviceLanesConfig cfg;
  cfg.lanes = 1;
  cfg.queue_depth = 2;
  cfg.chunk_bytes = std::uint64_t{1} << 20;
  cfg.lane_bandwidth_mb_per_s = 100.0;
  return cfg;
}

TEST(DeviceLanesConfigTest, ValidateRejectsDegenerateDimensions) {
  DeviceLanesConfig cfg = small_config();
  cfg.lanes = 0;
  EXPECT_THROW(DeviceLanes{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.queue_depth = 0;
  EXPECT_THROW(DeviceLanes{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.chunk_bytes = 0;
  EXPECT_THROW(DeviceLanes{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.lane_bandwidth_mb_per_s = 0.0;
  EXPECT_THROW(DeviceLanes{cfg}, std::invalid_argument);
}

TEST(DeviceLanesTest, ServiceTimeMatchesTheDeviceFormula) {
  // The lane timing law IS SsdDevice's: a lane submission and a direct
  // device reservation of the same payload must cost the same modeled time.
  const DeviceLanesConfig cfg = small_config();
  DeviceLanes lanes(cfg);
  const TimeUs service = array::SsdDevice::service_time_us(
      cfg.lane_bandwidth_mb_per_s, cfg.chunk_bytes);
  const LaneCompletion c = lanes.submit(0, cfg.chunk_bytes, 0);
  EXPECT_EQ(c.complete_us - c.admit_us, service);
}

TEST(DeviceLanesTest, BoundedQueueDelaysAdmissionToOldestCompletion) {
  const DeviceLanesConfig cfg = small_config();  // depth 2
  DeviceLanes lanes(cfg);
  const TimeUs service = array::SsdDevice::service_time_us(
      cfg.lane_bandwidth_mb_per_s, cfg.chunk_bytes);
  ASSERT_GT(service, 0u);

  // Two fit the queue at t=0; the third finds it full and is admitted (in
  // virtual time) when the oldest outstanding submission completes.
  const LaneCompletion c1 = lanes.submit(0, cfg.chunk_bytes, 0);
  const LaneCompletion c2 = lanes.submit(0, cfg.chunk_bytes, 0);
  const LaneCompletion c3 = lanes.submit(0, cfg.chunk_bytes, 0);
  EXPECT_EQ(c1.admit_us, 0u);
  EXPECT_EQ(c1.complete_us, service);
  EXPECT_EQ(c2.admit_us, 0u);
  EXPECT_EQ(c2.complete_us, 2 * service);
  EXPECT_EQ(c3.admit_us, c1.complete_us);
  EXPECT_EQ(c3.complete_us, 3 * service);

  const DeviceLanesStats stats = lanes.stats();
  ASSERT_EQ(stats.per_lane.size(), 1u);
  EXPECT_EQ(stats.per_lane[0].submits, 3u);
  EXPECT_EQ(stats.per_lane[0].stalled_submits, 1u);
  EXPECT_EQ(stats.per_lane[0].inflight_high_water, 2u);
  EXPECT_EQ(stats.per_lane[0].busy_us, 3 * service);
  EXPECT_EQ(stats.per_lane[0].busy_until_us, 3 * service);

  // A submission after everything drained retires the ring: admitted at
  // its own wall time, alone in the queue.
  const TimeUs later = c3.complete_us + 1;
  const LaneCompletion c4 = lanes.submit(0, cfg.chunk_bytes, later);
  EXPECT_EQ(c4.admit_us, later);
  EXPECT_EQ(c4.complete_us, later + service);
  EXPECT_EQ(lanes.stats().per_lane[0].stalled_submits, 1u);
}

TEST(DeviceLanesTest, SubmitChunksRoundRobinsAndReturnsLatestCompletion) {
  DeviceLanesConfig cfg = small_config();
  cfg.lanes = 4;
  DeviceLanes lanes(cfg);
  const TimeUs service = array::SsdDevice::service_time_us(
      cfg.lane_bandwidth_mb_per_s, cfg.chunk_bytes);

  // Four chunks over four idle lanes: one each, all complete in parallel.
  EXPECT_EQ(lanes.submit_chunks(/*lane_hint=*/2, 4, 0), service);
  const DeviceLanesStats stats = lanes.stats();
  for (const LaneStats& l : stats.per_lane) {
    EXPECT_EQ(l.submits, 1u);
  }
  // Five more starting later: one lane serves two chunks back to back and
  // sets the batch's durable time.
  const TimeUs now = 10 * service;
  EXPECT_EQ(lanes.submit_chunks(0, 5, now), now + 2 * service);
}

TEST(DeviceLanesTest, CompletionBeforeIsATotalOrder) {
  const LaneCompletion a{/*lane=*/0, /*seq=*/0, 0, 0, /*complete_us=*/100};
  const LaneCompletion b{/*lane=*/1, /*seq=*/0, 0, 0, /*complete_us=*/100};
  const LaneCompletion c{/*lane=*/0, /*seq=*/1, 0, 0, /*complete_us=*/100};
  const LaneCompletion d{/*lane=*/2, /*seq=*/0, 0, 0, /*complete_us=*/50};
  EXPECT_TRUE(completion_before(d, a));   // earlier time first
  EXPECT_TRUE(completion_before(a, b));   // tie -> lane
  EXPECT_TRUE(completion_before(a, c));   // tie -> seq
  EXPECT_FALSE(completion_before(a, a));  // irreflexive
}

TEST(DeviceLanesTest, LaneTraceSinkSeesSubmitAndComplete) {
  struct VectorSink final : TraceSink {
    std::vector<TraceEvent> events;
    void record(const TraceEvent& event) override { events.push_back(event); }
  } sink;
  const DeviceLanesConfig cfg = small_config();
  DeviceLanes lanes(cfg);
  lanes.set_trace_sink(0, &sink);
  const LaneCompletion c = lanes.submit(0, cfg.chunk_bytes, 7);
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].kind, TraceEventKind::kLaneSubmit);
  EXPECT_EQ(sink.events[0].a, c.seq);
  EXPECT_EQ(sink.events[0].c, c.admit_us);
  EXPECT_EQ(sink.events[1].kind, TraceEventKind::kLaneComplete);
  EXPECT_EQ(sink.events[1].c, c.complete_us);
  lanes.set_trace_sink(0, nullptr);
  lanes.submit(0, cfg.chunk_bytes, 8);
  EXPECT_EQ(sink.events.size(), 2u);
}

// ---------------------------------------------------------------------------
// Determinism: per-lane stats and the global completion order are a pure
// function of the per-lane submission schedules, no matter how many worker
// threads drive them.

struct ScheduledSubmit {
  std::uint32_t lane = 0;
  std::uint64_t bytes = 0;
  TimeUs now_us = 0;
};

/// Fixed randomized schedule: per-lane submission streams with a
/// nondecreasing per-lane clock and mixed payload sizes.
std::vector<std::vector<ScheduledSubmit>> make_schedule(std::uint32_t lanes,
                                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<ScheduledSubmit>> per_lane(lanes);
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    TimeUs now = 0;
    for (int i = 0; i < 400; ++i) {
      now += rng.below(150);
      per_lane[lane].push_back(ScheduledSubmit{
          lane, (1 + rng.below(64)) * 4096, now});
    }
  }
  return per_lane;
}

void expect_histograms_equal(const Log2Histogram& a, const Log2Histogram& b,
                             const char* name) {
  EXPECT_EQ(a.count(), b.count()) << name;
  EXPECT_EQ(a.sum(), b.sum()) << name;
  EXPECT_EQ(a.max_value(), b.max_value()) << name;
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << name << " bucket " << i;
  }
}

void expect_stats_equal(const DeviceLanesStats& a, const DeviceLanesStats& b) {
  ASSERT_EQ(a.per_lane.size(), b.per_lane.size());
  for (std::size_t i = 0; i < a.per_lane.size(); ++i) {
    EXPECT_EQ(a.per_lane[i].submits, b.per_lane[i].submits) << "lane " << i;
    EXPECT_EQ(a.per_lane[i].stalled_submits, b.per_lane[i].stalled_submits)
        << "lane " << i;
    EXPECT_EQ(a.per_lane[i].busy_us, b.per_lane[i].busy_us) << "lane " << i;
    EXPECT_EQ(a.per_lane[i].inflight_high_water,
              b.per_lane[i].inflight_high_water)
        << "lane " << i;
    EXPECT_EQ(a.per_lane[i].busy_until_us, b.per_lane[i].busy_until_us)
        << "lane " << i;
  }
  expect_histograms_equal(a.queue_depth_hist, b.queue_depth_hist,
                          "queue_depth_hist");
  expect_histograms_equal(a.submit_complete_us, b.submit_complete_us,
                          "submit_complete_us");
}

/// Drives `schedule` with `workers` threads (worker w owns the lanes with
/// lane % workers == w — disjoint ownership, concurrent wall-clock
/// interleaving) and returns the stats plus ALL completions sorted by the
/// deterministic global order.
std::pair<DeviceLanesStats, std::vector<LaneCompletion>> drive(
    const DeviceLanesConfig& cfg,
    const std::vector<std::vector<ScheduledSubmit>>& schedule,
    std::uint32_t workers) {
  DeviceLanes lanes(cfg);
  std::vector<std::vector<LaneCompletion>> done(schedule.size());
  {
    std::vector<Thread> threads;
    threads.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (std::uint32_t lane = w; lane < schedule.size();
             lane += workers) {
          for (const ScheduledSubmit& s : schedule[lane]) {
            done[lane].push_back(lanes.submit(s.lane, s.bytes, s.now_us));
          }
        }
      });
    }
  }  // joins
  std::vector<LaneCompletion> all;
  for (const auto& lane_done : done) {
    all.insert(all.end(), lane_done.begin(), lane_done.end());
  }
  std::sort(all.begin(), all.end(),
            [](const LaneCompletion& a, const LaneCompletion& b) {
              return completion_before(a, b);
            });
  return {lanes.stats(), all};
}

TEST(DeviceLanesDeterminismTest, WorkerCountNeverChangesStatsOrOrder) {
  DeviceLanesConfig cfg;
  cfg.lanes = 4;
  cfg.queue_depth = 8;
  cfg.chunk_bytes = std::uint64_t{1} << 20;
  cfg.lane_bandwidth_mb_per_s = 150.0;
  const auto schedule = make_schedule(cfg.lanes, /*seed=*/42);

  const auto [base_stats, base_order] = drive(cfg, schedule, 1);
  ASSERT_FALSE(base_order.empty());
  for (const std::uint32_t workers : {1u, 2u, 4u}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    for (int repeat = 0; repeat < 2; ++repeat) {
      const auto [stats, order] = drive(cfg, schedule, workers);
      expect_stats_equal(stats, base_stats);
      ASSERT_EQ(order.size(), base_order.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        EXPECT_EQ(order[i].lane, base_order[i].lane) << "completion " << i;
        EXPECT_EQ(order[i].seq, base_order[i].seq) << "completion " << i;
        EXPECT_EQ(order[i].admit_us, base_order[i].admit_us)
            << "completion " << i;
        EXPECT_EQ(order[i].complete_us, base_order[i].complete_us)
            << "completion " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized differential: DeviceLanes (monotone ring) vs an independent
// naive reference that keeps every outstanding completion in a flat vector
// and scans for the oldest — same semantics, different data structure.

struct NaiveLane {
  std::vector<TimeUs> outstanding;
  TimeUs busy_until = 0;
};

LaneCompletion naive_submit(NaiveLane& lane, std::uint32_t depth,
                            double bandwidth_mb_per_s, std::uint64_t bytes,
                            TimeUs now_us) {
  std::erase_if(lane.outstanding,
                [now_us](TimeUs t) { return t <= now_us; });
  TimeUs admit = now_us;
  if (lane.outstanding.size() == depth) {
    const auto oldest =
        std::min_element(lane.outstanding.begin(), lane.outstanding.end());
    admit = *oldest;
    lane.outstanding.erase(oldest);
  }
  const TimeUs service =
      array::SsdDevice::service_time_us(bandwidth_mb_per_s, bytes);
  LaneCompletion c;
  c.submit_us = now_us;
  c.admit_us = admit;
  c.complete_us = std::max(admit, lane.busy_until) + service;
  lane.busy_until = c.complete_us;
  lane.outstanding.push_back(c.complete_us);
  return c;
}

TEST(DeviceLanesDifferentialTest, MatchesNaiveModelOnRandomSchedules) {
  for (const std::uint64_t seed : {1ull, 7ull, 12345ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    DeviceLanesConfig cfg;
    cfg.lanes = 3;
    cfg.queue_depth = 4;
    cfg.chunk_bytes = std::uint64_t{1} << 18;
    cfg.lane_bandwidth_mb_per_s = 80.0;
    DeviceLanes lanes(cfg);
    std::vector<NaiveLane> naive(cfg.lanes);

    Rng rng(seed);
    TimeUs now = 0;
    for (int i = 0; i < 3000; ++i) {
      now += rng.below(100);
      const auto lane = static_cast<std::uint32_t>(rng.below(cfg.lanes));
      const std::uint64_t bytes = (1 + rng.below(128)) * 4096;
      const LaneCompletion got = lanes.submit(lane, bytes, now);
      const LaneCompletion want = naive_submit(
          naive[lane], cfg.queue_depth, cfg.lane_bandwidth_mb_per_s, bytes,
          now);
      ASSERT_EQ(got.admit_us, want.admit_us) << "submission " << i;
      ASSERT_EQ(got.complete_us, want.complete_us) << "submission " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// adapt-manifest-v1 "lanes" block round trip.

TEST(DeviceLanesManifestTest, LanesBlockRoundTripsThroughValidator) {
  DeviceLanesConfig cfg;
  cfg.lanes = 2;
  cfg.queue_depth = 2;
  cfg.chunk_bytes = std::uint64_t{1} << 20;
  cfg.lane_bandwidth_mb_per_s = 100.0;
  DeviceLanes lanes(cfg);
  for (int i = 0; i < 8; ++i) {
    lanes.submit_chunks(static_cast<std::uint32_t>(i), 2, 0);
  }

  obs::RunManifest m;
  m.tool = "prototype";
  m.policy = "adapt";
  m.victim = "greedy";
  m.workload = "ycsb";
  m.lanes = lanes.stats();
  ASSERT_FALSE(m.lanes.empty());
  EXPECT_GT(m.lanes.total_submits(), 0u);
  const std::string json = manifest_json(m);
  EXPECT_NE(json.find("\"lanes\""), std::string::npos);
  EXPECT_NE(json.find("\"stalled_submits\""), std::string::npos);
  obs::validate_manifest_json(json);

  // Truncating the per_lane array breaks the count cross-check.
  const std::string good = "\"count\":2";
  const std::size_t at = json.find(good);
  ASSERT_NE(at, std::string::npos);
  std::string tampered = json;
  tampered.replace(at, good.size(), "\"count\":3");
  EXPECT_THROW(obs::validate_manifest_json(tampered), std::invalid_argument);

  // A manifest without lane stats omits the block entirely.
  obs::RunManifest plain;
  const std::string plain_json = manifest_json(plain);
  EXPECT_EQ(plain_json.find("\"lanes\""), std::string::npos);
  obs::validate_manifest_json(plain_json);
}

}  // namespace
}  // namespace adapt::lss
