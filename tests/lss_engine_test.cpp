// Engine-level tests: append/flush mechanics, the SLA coalescing window,
// padding accounting, segment lifecycle, GC correctness, shadow-append
// semantics, and randomized invariant checks.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lss/engine.h"
#include "lss/victim_policy.h"
#include "test_support.h"

namespace adapt::lss {
namespace {

using testing::ParityPolicy;
using testing::TwoGroupPolicy;
using testing::small_config;

struct EngineFixture {
  explicit EngineFixture(LssConfig config = small_config())
      : victim(make_greedy()),
        engine(config, policy, *victim, nullptr, /*seed=*/1) {}

  TwoGroupPolicy policy;
  std::unique_ptr<VictimPolicy> victim;
  LssEngine engine;
};

// ---------------------------------------------------------------------------
// Config validation
// ---------------------------------------------------------------------------

TEST(LssConfigTest, GeometryHelpers) {
  const LssConfig c = small_config();
  EXPECT_EQ(c.segment_blocks(), 8u);
  EXPECT_EQ(c.physical_blocks(), 448u);
  EXPECT_EQ(c.total_segments(), 56u);
}

TEST(LssConfigTest, RejectsZeroGeometry) {
  LssConfig c = small_config();
  c.chunk_blocks = 0;
  EXPECT_THROW(c.validate(2), std::invalid_argument);
}

TEST(LssConfigTest, RejectsInsufficientOverProvision) {
  LssConfig c = small_config();
  c.over_provision = 0.01;
  EXPECT_THROW(c.validate(2), std::invalid_argument);
}

TEST(LssConfigTest, AcceptsSaneConfig) {
  const LssConfig c = small_config();
  EXPECT_NO_THROW(c.validate(2));
}

// ---------------------------------------------------------------------------
// Basic write path
// ---------------------------------------------------------------------------

TEST(LssEngineTest, SingleWriteIsMapped) {
  EngineFixture f;
  f.engine.write_block(5, 0);
  const BlockLocation loc = f.engine.locate(5);
  EXPECT_NE(loc.segment, kInvalidSegment);
  EXPECT_EQ(f.engine.metrics().user_blocks, 1u);
  EXPECT_EQ(f.engine.vtime(), 1u);
  f.engine.check_invariants();
}

TEST(LssEngineTest, UnwrittenLbaIsNowhere) {
  EngineFixture f;
  EXPECT_EQ(f.engine.locate(9), kNowhere);
}

TEST(LssEngineTest, OverwriteMovesBlock) {
  EngineFixture f;
  f.engine.write_block(5, 0);
  const BlockLocation first = f.engine.locate(5);
  f.engine.write_block(5, 0);
  const BlockLocation second = f.engine.locate(5);
  EXPECT_NE(first, second);
  EXPECT_EQ(f.engine.metrics().user_blocks, 2u);
  f.engine.check_invariants();
}

TEST(LssEngineTest, MultiBlockWrite) {
  EngineFixture f;
  f.engine.write(10, 4, 0);
  for (Lba lba = 10; lba < 14; ++lba) {
    EXPECT_NE(f.engine.locate(lba), kNowhere);
  }
  EXPECT_EQ(f.engine.metrics().user_blocks, 4u);
}

TEST(LssEngineTest, OutOfRangeWriteThrows) {
  EngineFixture f;
  EXPECT_THROW(f.engine.write_block(256, 0), std::out_of_range);
  EXPECT_THROW(f.engine.write(255, 2, 0), std::out_of_range);
}

TEST(LssEngineTest, PendingBlocksTracked) {
  EngineFixture f;
  f.engine.write_block(1, 0);
  f.engine.write_block(2, 0);
  EXPECT_EQ(f.engine.pending_blocks(0), 2u);
  EXPECT_EQ(f.engine.pending_blocks(1), 0u);
}

// ---------------------------------------------------------------------------
// Chunk flush & padding
// ---------------------------------------------------------------------------

TEST(LssEngineTest, FullChunkFlushesWithoutPadding) {
  EngineFixture f;
  for (Lba lba = 0; lba < 4; ++lba) f.engine.write_block(lba, 0);
  EXPECT_EQ(f.engine.pending_blocks(0), 0u);
  const GroupTraffic& g = f.engine.group_traffic(0);
  EXPECT_EQ(g.full_flushes, 1u);
  EXPECT_EQ(g.padded_flushes, 0u);
  EXPECT_EQ(f.engine.metrics().padding_blocks, 0u);
}

TEST(LssEngineTest, DeadlineExpiryPadsPartialChunk) {
  EngineFixture f;
  f.engine.write_block(1, 0);     // deadline armed for t=100
  f.engine.advance_time(99);
  EXPECT_EQ(f.engine.pending_blocks(0), 1u);  // not yet
  f.engine.advance_time(100);
  EXPECT_EQ(f.engine.pending_blocks(0), 0u);
  const GroupTraffic& g = f.engine.group_traffic(0);
  EXPECT_EQ(g.padded_flushes, 1u);
  EXPECT_EQ(g.padding_blocks, 3u);
  EXPECT_EQ(g.padded_fill_blocks, 1u);
  f.engine.check_invariants();
}

TEST(LssEngineTest, DeadlineAnchorsToFirstPendingBlock) {
  EngineFixture f;
  f.engine.write_block(1, 0);
  f.engine.write_block(2, 60);  // same chunk, does not extend the deadline
  f.engine.advance_time(100);
  EXPECT_EQ(f.engine.pending_blocks(0), 0u);
  EXPECT_EQ(f.engine.group_traffic(0).padding_blocks, 2u);
}

TEST(LssEngineTest, WriteAtLaterTimeFiresExpiredDeadlineFirst) {
  EngineFixture f;
  f.engine.write_block(1, 0);
  f.engine.write_block(2, 500);  // deadline at 100 fires before this append
  const GroupTraffic& g = f.engine.group_traffic(0);
  EXPECT_EQ(g.padded_flushes, 1u);
  EXPECT_EQ(f.engine.pending_blocks(0), 1u);  // block 2 pending fresh
}

TEST(LssEngineTest, InvalidatedPendingBlockNeedsNoDurability) {
  EngineFixture f;
  f.engine.write_block(1, 0);
  f.engine.write_block(1, 10);  // overwrites the pending copy (same group)
  // Two pending slots, one stale; the deadline must still fire and pad
  // because the *new* copy is live.
  f.engine.advance_time(200);
  EXPECT_EQ(f.engine.pending_blocks(0), 0u);
  EXPECT_EQ(f.engine.group_traffic(0).padded_flushes, 1u);
}

TEST(LssEngineTest, AllStalePendingSkipsPadding) {
  // Fill a chunk to its last slot, then overwrite those blocks so the
  // stragglers in the next chunk are stale.
  ParityPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(small_config(), policy, *victim, nullptr, 1);
  engine.write_block(0, 0);  // group 0 pending
  engine.write_block(1, 0);  // group 1 pending
  // Overwrite block 0 -> its old copy is stale; new copy pending too.
  engine.write_block(0, 10);
  engine.advance_time(1000);
  // Group 0 must have flushed once (live copies), not twice.
  EXPECT_EQ(engine.group_traffic(0).padded_flushes, 1u);
  engine.check_invariants();
}

TEST(LssEngineTest, FlushAllDrainsEverything) {
  EngineFixture f;
  f.engine.write_block(1, 0);
  f.engine.write_block(2, 0);
  f.engine.flush_all();
  EXPECT_EQ(f.engine.pending_blocks(0), 0u);
  EXPECT_EQ(f.engine.group_traffic(0).padding_blocks, 2u);
  f.engine.check_invariants();
}

TEST(LssEngineTest, PaddingRatioMatchesDefinition) {
  EngineFixture f;
  f.engine.write_block(1, 0);
  f.engine.flush_all();
  const LssMetrics& m = f.engine.metrics();
  EXPECT_EQ(m.user_blocks, 1u);
  EXPECT_EQ(m.padding_blocks, 3u);
  EXPECT_DOUBLE_EQ(m.wa(), 4.0);
  EXPECT_DOUBLE_EQ(m.padding_ratio(), 0.75);
}

// ---------------------------------------------------------------------------
// Segment lifecycle
// ---------------------------------------------------------------------------

TEST(LssEngineTest, SegmentSealsWhenFull) {
  EngineFixture f;
  for (Lba lba = 0; lba < 8; ++lba) f.engine.write_block(lba, 0);
  EXPECT_EQ(f.engine.group_traffic(0).segments_sealed, 1u);
  f.engine.check_invariants();
}

TEST(LssEngineTest, SegmentsPerGroupCountsOpenSegments) {
  EngineFixture f;
  f.engine.write_block(0, 0);
  const auto counts = f.engine.segments_per_group();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
}

TEST(LssEngineTest, PaddingConsumesSegmentSpace) {
  EngineFixture f;
  // Two padded chunks fill one 8-block segment.
  f.engine.write_block(1, 0);
  f.engine.advance_time(150);
  f.engine.write_block(2, 1000);
  f.engine.advance_time(1150);
  EXPECT_EQ(f.engine.group_traffic(0).segments_sealed, 1u);
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

TEST(LssEngineTest, GcPreservesAllLiveData) {
  EngineFixture f;
  Rng rng(71);
  std::vector<bool> written(256, false);
  for (int i = 0; i < 8000; ++i) {
    const Lba lba = rng.below(256);
    f.engine.write_block(lba, static_cast<TimeUs>(i) * 10);
    written[lba] = true;
  }
  f.engine.flush_all();
  f.engine.check_invariants();
  for (Lba lba = 0; lba < 256; ++lba) {
    EXPECT_EQ(f.engine.locate(lba) != kNowhere, written[lba])
        << "lba " << lba;
  }
  EXPECT_GT(f.engine.metrics().gc_runs, 0u);
  EXPECT_GT(f.engine.metrics().gc_blocks, 0u);
}

TEST(LssEngineTest, GcRewritesLandInGcGroup) {
  EngineFixture f;
  Rng rng(73);
  for (int i = 0; i < 5000; ++i) {
    f.engine.write_block(rng.below(200), static_cast<TimeUs>(i));
  }
  EXPECT_GT(f.engine.group_traffic(1).gc_blocks, 0u);
  EXPECT_EQ(f.engine.group_traffic(1).user_blocks, 0u);
}

TEST(LssEngineTest, GcKeepsFreePoolAboveWatermark) {
  EngineFixture f;
  Rng rng(79);
  for (int i = 0; i < 20000; ++i) {
    f.engine.write_block(rng.below(256), static_cast<TimeUs>(i));
  }
  // Watermark = reserve (4) + groups (2).
  EXPECT_GE(f.engine.free_segments(), 6u);
}

TEST(LssEngineTest, WaIsAtLeastOne) {
  EngineFixture f;
  Rng rng(83);
  for (int i = 0; i < 3000; ++i) {
    f.engine.write_block(rng.below(256), static_cast<TimeUs>(i) * 50);
  }
  f.engine.flush_all();
  EXPECT_GE(f.engine.metrics().wa(), 1.0);
  EXPECT_GE(f.engine.metrics().gc_wa(), 1.0);
}

TEST(LssEngineTest, GcStepHonorsWatermark) {
  EngineFixture f;
  // Fresh engine: everything free, gc_step must refuse.
  EXPECT_FALSE(f.engine.gc_step(0, 1));
  Rng rng(89);
  for (int i = 0; i < 3000; ++i) {
    f.engine.write_block(rng.below(256), 0);
  }
  // Force one proactive pass with a watermark above the current free pool.
  const std::uint32_t free_now = f.engine.free_segments();
  EXPECT_TRUE(f.engine.gc_step(0, free_now + 1));
  f.engine.check_invariants();
}

TEST(LssEngineTest, ChunksFlushedCounter) {
  EngineFixture f;
  for (Lba lba = 0; lba < 4; ++lba) f.engine.write_block(lba, 0);
  EXPECT_EQ(f.engine.chunks_flushed(), 1u);
  f.engine.write_block(9, 0);
  f.engine.flush_all();
  EXPECT_EQ(f.engine.chunks_flushed(), 2u);
}

// ---------------------------------------------------------------------------
// flush_all / gc_step interplay
// ---------------------------------------------------------------------------

/// Redirects every group-0 deadline into a shadow append hosted by group 1
/// (the §3.3 cross-group aggregation shape, without the full ADAPT policy).
class AggregateIntoGroupOne final : public AggregationHook {
 public:
  AggregationDecision on_chunk_deadline(GroupId group,
                                        const LssEngine&) override {
    if (group != 0) return {};
    return AggregationDecision{/*donor=*/0, /*host=*/1};
  }
};

/// The identity every drain/GC test below re-derives from public counters:
/// every appended block either reached the media or is still pending.
void expect_write_accounting_identity(const LssEngine& engine) {
  const LssMetrics& m = engine.metrics();
  std::uint64_t pending = 0;
  for (GroupId g = 0; g < engine.group_count(); ++g) {
    pending += engine.pending_blocks(g);
  }
  EXPECT_EQ(m.user_blocks + m.gc_blocks + m.shadow_blocks + m.padding_blocks,
            engine.config().chunk_blocks * engine.chunks_flushed() +
                m.rmw_blocks + pending);
}

TEST(LssEngineInterplayTest, FlushAllExpiresOutstandingShadows) {
  EngineFixture f;
  AggregateIntoGroupOne hook;
  f.engine.set_aggregation_hook(&hook);

  f.engine.write_block(1, 0);
  f.engine.advance_time(150);  // deadline fires -> shadow into group 1

  // Lazy append: the original stays pending in group 0 while its shadow
  // copy sits in group 1's already-persisted chunk.
  EXPECT_EQ(f.engine.pending_blocks(0), 1u);
  EXPECT_EQ(f.engine.live_shadow_count(), 1u);
  EXPECT_TRUE(f.engine.has_live_shadow(1));
  EXPECT_EQ(f.engine.metrics().shadow_blocks, 1u);
  EXPECT_EQ(f.engine.group_traffic(1).padded_flushes, 1u);
  EXPECT_EQ(f.engine.group_traffic(0).padding_blocks, 0u);
  expect_write_accounting_identity(f.engine);

  // The drain pads group 0's partial chunk; persisting the original must
  // expire its shadow copy.
  f.engine.flush_all();
  EXPECT_EQ(f.engine.pending_blocks(0), 0u);
  EXPECT_EQ(f.engine.live_shadow_count(), 0u);
  EXPECT_FALSE(f.engine.has_live_shadow(1));
  expect_write_accounting_identity(f.engine);
  f.engine.check_invariants();
}

TEST(LssEngineInterplayTest, ShadowExpiresWhenOriginalChunkFills) {
  EngineFixture f;
  AggregateIntoGroupOne hook;
  f.engine.set_aggregation_hook(&hook);

  f.engine.write_block(1, 0);
  f.engine.advance_time(150);
  ASSERT_EQ(f.engine.live_shadow_count(), 1u);

  // Three more writes complete the original's 4-block chunk: it persists
  // on its own, so the shadow must be gone before any flush_all.
  for (Lba lba = 2; lba <= 4; ++lba) f.engine.write_block(lba, 200);
  EXPECT_EQ(f.engine.pending_blocks(0), 0u);
  EXPECT_EQ(f.engine.live_shadow_count(), 0u);
  expect_write_accounting_identity(f.engine);
  f.engine.flush_all();  // nothing left: must be a no-op
  EXPECT_EQ(f.engine.metrics().padding_blocks, 3u);  // host pad only
  expect_write_accounting_identity(f.engine);
  f.engine.check_invariants();
}

TEST(LssEngineInterplayTest, GcStepWatermarkBoundaryIsExact) {
  EngineFixture f;
  Rng rng(149);
  for (int i = 0; i < 3000; ++i) {
    f.engine.write_block(rng.below(256), 0);
  }
  const std::uint32_t free_now = f.engine.free_segments();
  const std::uint64_t runs_before = f.engine.metrics().gc_runs;

  // Exactly at the watermark (free == watermark): no work, nothing moves.
  EXPECT_FALSE(f.engine.gc_step(0, free_now));
  EXPECT_EQ(f.engine.free_segments(), free_now);
  EXPECT_EQ(f.engine.metrics().gc_runs, runs_before);
  expect_write_accounting_identity(f.engine);

  // One segment below (free == watermark - 1): exactly one reclaim.
  EXPECT_TRUE(f.engine.gc_step(0, free_now + 1));
  EXPECT_EQ(f.engine.metrics().gc_runs, runs_before + 1);
  EXPECT_GE(f.engine.free_segments(), free_now);
  expect_write_accounting_identity(f.engine);
  f.engine.check_invariants();
}

TEST(LssEngineInterplayTest, GcThenDrainKeepsAccountingIdentity) {
  EngineFixture f;
  AggregateIntoGroupOne hook;
  f.engine.set_aggregation_hook(&hook);
  Rng rng(151);
  TimeUs now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += rng.below(120);
    f.engine.write_block(rng.below(256), now);
    if (i % 640 == 0 && i > 0) {  // warm-up first: GC needs a sealed victim
      // Proactive GC with a partial chunk (possibly shadow-hosting)
      // outstanding.
      f.engine.gc_step(now, f.engine.free_segments() + 1);
      expect_write_accounting_identity(f.engine);
    }
  }
  f.engine.flush_all();
  EXPECT_EQ(f.engine.live_shadow_count(), 0u);
  EXPECT_GT(f.engine.metrics().shadow_blocks, 0u);
  expect_write_accounting_identity(f.engine);
  f.engine.check_invariants();
}

// ---------------------------------------------------------------------------
// Randomized invariants (property-style, parameterized over seeds)
// ---------------------------------------------------------------------------

class EngineRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineRandomTest, InvariantsHoldUnderRandomWorkload) {
  ParityPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(small_config(), policy, *victim, nullptr, GetParam());
  Rng rng(GetParam());
  TimeUs now = 0;
  for (int i = 0; i < 4000; ++i) {
    now += rng.below(200);
    const Lba lba = rng.below(250);
    const auto blocks = static_cast<std::uint32_t>(1 + rng.below(4));
    engine.write(
        lba,
        std::min<std::uint32_t>(blocks, static_cast<std::uint32_t>(256 - lba)),
        now);
    if (i % 512 == 0) engine.check_invariants();
  }
  engine.flush_all();
  engine.check_invariants();
  const LssMetrics& m = engine.metrics();
  EXPECT_GE(m.wa(), 1.0);
  EXPECT_EQ(m.user_blocks,
            m.groups[0].user_blocks + m.groups[1].user_blocks +
                m.groups[2].user_blocks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Geometry sweep: the engine must behave at any (chunk, segment) shape
// ---------------------------------------------------------------------------

struct Geometry {
  std::uint32_t chunk_blocks;
  std::uint32_t segment_chunks;
};

class EngineGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(EngineGeometryTest, InvariantsAndDataSafetyHold) {
  LssConfig config = small_config();
  config.chunk_blocks = GetParam().chunk_blocks;
  config.segment_chunks = GetParam().segment_chunks;
  config.logical_blocks = 2048;
  config.over_provision = 0.75;
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(config, policy, *victim, nullptr, 3);
  Rng rng(GetParam().chunk_blocks * 131 + GetParam().segment_chunks);
  std::vector<bool> written(2048, false);
  TimeUs now = 0;
  for (int i = 0; i < 12000; ++i) {
    now += rng.below(250);
    const Lba lba = rng.below(2048);
    engine.write_block(lba, now);
    written[lba] = true;
  }
  engine.flush_all();
  engine.check_invariants();
  for (Lba lba = 0; lba < 2048; ++lba) {
    ASSERT_EQ(engine.locate(lba) != kNowhere, written[lba]);
  }
  EXPECT_GE(engine.metrics().wa(), 1.0);
  // Padding can never exceed (chunk - 1) blocks per flush event.
  const auto& m = engine.metrics();
  const std::uint64_t flushes =
      m.groups[0].padded_flushes + m.groups[1].padded_flushes;
  EXPECT_LE(m.padding_blocks,
            flushes * (config.chunk_blocks - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineGeometryTest,
    ::testing::Values(Geometry{2, 2}, Geometry{2, 16}, Geometry{4, 8},
                      Geometry{8, 4}, Geometry{16, 2}, Geometry{16, 8}),
    [](const auto& info) {
      return "chunk" + std::to_string(info.param.chunk_blocks) + "x" +
             std::to_string(info.param.segment_chunks);
    });

// ---------------------------------------------------------------------------
// Victim policy integration
// ---------------------------------------------------------------------------

class EngineVictimTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineVictimTest, AllVictimPoliciesKeepDataSafe) {
  TwoGroupPolicy policy;
  auto victim = make_victim_policy(GetParam());
  LssEngine engine(small_config(), policy, *victim, nullptr, 7);
  Rng rng(97);
  std::vector<bool> written(256, false);
  for (int i = 0; i < 8000; ++i) {
    const Lba lba = rng.below(256);
    engine.write_block(lba, static_cast<TimeUs>(i) * 3);
    written[lba] = true;
  }
  engine.flush_all();
  engine.check_invariants();
  for (Lba lba = 0; lba < 256; ++lba) {
    ASSERT_EQ(engine.locate(lba) != kNowhere, written[lba]);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, EngineVictimTest,
                         ::testing::Values("greedy", "cost-benefit",
                                           "d-choice", "windowed", "random"));

// ---------------------------------------------------------------------------
// Array mirroring
// ---------------------------------------------------------------------------

TEST(LssEngineTest, ArrayMirrorsChunkTraffic) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  const LssConfig config = small_config();
  array::SsdArrayConfig ac;
  ac.chunk_bytes = config.chunk_blocks * config.block_bytes;
  ac.num_streams = 2;
  array::SsdArray ssd_array(ac);
  LssEngine engine(config, policy, *victim, &ssd_array, 1);

  Rng rng(101);
  for (int i = 0; i < 3000; ++i) {
    engine.write_block(rng.below(256), static_cast<TimeUs>(i) * 40);
  }
  engine.flush_all();

  const LssMetrics& m = engine.metrics();
  const array::StreamStats totals = ssd_array.totals();
  EXPECT_EQ(totals.chunks_written, engine.chunks_flushed());
  EXPECT_EQ(totals.padding_bytes,
            m.padding_blocks * config.block_bytes);
  EXPECT_EQ(totals.data_bytes,
            (m.user_blocks + m.gc_blocks + m.shadow_blocks) *
                config.block_bytes);
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

TEST(LssEngineReadTest, PendingBlocksAreBufferHits) {
  EngineFixture f;
  f.engine.write_block(1, 0);
  f.engine.read(1, 1, 10);
  const LssMetrics& m = f.engine.metrics();
  EXPECT_EQ(m.read_blocks, 1u);
  EXPECT_EQ(m.read_buffer_hits, 1u);
  EXPECT_EQ(m.read_chunk_fetches, 0u);
}

TEST(LssEngineReadTest, FlushedBlocksFetchChunks) {
  EngineFixture f;
  for (Lba lba = 0; lba < 4; ++lba) f.engine.write_block(lba, 0);  // 1 chunk
  f.engine.read(0, 4, 10);
  const LssMetrics& m = f.engine.metrics();
  EXPECT_EQ(m.read_blocks, 4u);
  // All four blocks share one chunk: a single fetch.
  EXPECT_EQ(m.read_chunk_fetches, 1u);
  EXPECT_EQ(m.read_buffer_hits, 0u);
}

TEST(LssEngineReadTest, UnmappedReadsCounted) {
  EngineFixture f;
  f.engine.read(100, 2, 0);
  EXPECT_EQ(f.engine.metrics().read_unmapped, 2u);
  EXPECT_EQ(f.engine.metrics().read_chunk_fetches, 0u);
}

TEST(LssEngineReadTest, SpanningChunksFetchesEach) {
  EngineFixture f;
  for (Lba lba = 0; lba < 8; ++lba) f.engine.write_block(lba, 0);  // 2 chunks
  f.engine.read(0, 8, 10);
  EXPECT_EQ(f.engine.metrics().read_chunk_fetches, 2u);
}

TEST(LssEngineReadTest, ReadBeyondCapacityThrows) {
  EngineFixture f;
  EXPECT_THROW(f.engine.read(255, 2, 0), std::out_of_range);
}

TEST(LssEngineReadTest, ReadFiresExpiredDeadlines) {
  EngineFixture f;
  f.engine.write_block(1, 0);
  f.engine.read(1, 1, 500);  // past the 100 us window
  EXPECT_EQ(f.engine.group_traffic(0).padded_flushes, 1u);
  // The deadline fired before the read was served, so the block was
  // already on disk and the read fetched its chunk.
  EXPECT_EQ(f.engine.metrics().read_chunk_fetches, 1u);
  EXPECT_EQ(f.engine.metrics().read_buffer_hits, 0u);
}

// ---------------------------------------------------------------------------
// Read-modify-write mode
// ---------------------------------------------------------------------------

LssConfig rmw_config() {
  LssConfig c = small_config();
  c.partial_write_mode = PartialWriteMode::kReadModifyWrite;
  return c;
}

TEST(LssEngineRmwTest, DeadlinePersistsWithoutPadding) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(rmw_config(), policy, *victim, nullptr, 1);
  engine.write_block(1, 0);
  engine.advance_time(200);
  EXPECT_EQ(engine.pending_blocks(0), 0u);
  EXPECT_EQ(engine.metrics().padding_blocks, 0u);
  EXPECT_EQ(engine.metrics().rmw_flushes, 1u);
  EXPECT_GT(engine.metrics().rmw_read_blocks, 0u);
  engine.check_invariants();
}

TEST(LssEngineRmwTest, ChunkStaysOpenAcrossSubChunkFlushes) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(rmw_config(), policy, *victim, nullptr, 1);
  engine.write_block(1, 0);
  engine.advance_time(200);  // RMW flush of 1 block
  engine.write_block(2, 300);
  engine.write_block(3, 300);
  engine.write_block(4, 300);  // completes the 4-block chunk -> tail RMW
  EXPECT_EQ(engine.pending_blocks(0), 0u);
  EXPECT_EQ(engine.metrics().rmw_flushes, 2u);
  EXPECT_EQ(engine.group_traffic(0).full_flushes, 0u);
  engine.check_invariants();
}

TEST(LssEngineRmwTest, AlignedFullChunksAvoidRmw) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(rmw_config(), policy, *victim, nullptr, 1);
  for (Lba lba = 0; lba < 4; ++lba) engine.write_block(lba, 0);
  EXPECT_EQ(engine.metrics().rmw_flushes, 0u);
  EXPECT_EQ(engine.group_traffic(0).full_flushes, 1u);
}

TEST(LssEngineRmwTest, RandomWorkloadNoPaddingEver) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(rmw_config(), policy, *victim, nullptr, 1);
  Rng rng(137);
  TimeUs now = 0;
  for (int i = 0; i < 6000; ++i) {
    now += rng.below(300);
    engine.write_block(rng.below(256), now);
  }
  engine.flush_all();
  engine.check_invariants();
  EXPECT_EQ(engine.metrics().padding_blocks, 0u);
  EXPECT_GT(engine.metrics().rmw_flushes, 0u);
}

// ---------------------------------------------------------------------------
// Addressed array integration
// ---------------------------------------------------------------------------

array::AddressedArrayConfig addressed_for(const LssConfig& c) {
  array::AddressedArrayConfig ac;
  ac.chunk_bytes = c.chunk_blocks * c.block_bytes;
  ac.page_bytes = c.block_bytes;
  ac.num_streams = 4;
  ac.data_chunks =
      static_cast<std::uint64_t>(c.total_segments()) * c.segment_chunks;
  ac.device_over_provision = 0.3;
  return ac;
}

TEST(LssEngineAddressedTest, GeometryMismatchThrows) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(small_config(), policy, *victim, nullptr, 1);
  array::AddressedArrayConfig ac = addressed_for(small_config());
  ac.chunk_bytes *= 2;
  array::AddressedArray wrong_chunk(ac);
  EXPECT_THROW(engine.attach_addressed_array(&wrong_chunk),
               std::invalid_argument);
  ac = addressed_for(small_config());
  ac.data_chunks /= 2;
  array::AddressedArray too_small(ac);
  EXPECT_THROW(engine.attach_addressed_array(&too_small),
               std::invalid_argument);
}

TEST(LssEngineAddressedTest, ChunkWritesReachDevicesAndTrim) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(small_config(), policy, *victim, nullptr, 1);
  array::AddressedArray addressed(addressed_for(small_config()));
  engine.attach_addressed_array(&addressed);

  Rng rng(139);
  for (int i = 0; i < 6000; ++i) {
    engine.write_block(rng.below(256), static_cast<TimeUs>(i) * 20);
  }
  engine.flush_all();
  engine.check_invariants();
  EXPECT_GT(addressed.stats().data_chunk_writes, 0u);
  EXPECT_EQ(addressed.stats().parity_chunk_writes,
            addressed.stats().data_chunk_writes);
  // GC reclaimed segments -> TRIMs flowed to the devices.
  EXPECT_GT(addressed.stats().trims, 0u);
  EXPECT_GE(addressed.device_internal_wa(), 1.0);
}

TEST(LssEngineAddressedTest, DataChunkWritesMatchEngineFlushes) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  LssEngine engine(small_config(), policy, *victim, nullptr, 1);
  array::AddressedArray addressed(addressed_for(small_config()));
  engine.attach_addressed_array(&addressed);
  Rng rng(141);
  for (int i = 0; i < 2000; ++i) {
    engine.write_block(rng.below(256), static_cast<TimeUs>(i) * 20);
  }
  engine.flush_all();
  EXPECT_EQ(addressed.stats().data_chunk_writes, engine.chunks_flushed());
}

TEST(LssEngineTest, ArrayStreamMismatchThrows) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  array::SsdArrayConfig ac;
  ac.chunk_bytes = small_config().chunk_blocks * small_config().block_bytes;
  ac.num_streams = 1;  // fewer streams than groups
  array::SsdArray ssd_array(ac);
  EXPECT_THROW(
      LssEngine(small_config(), policy, *victim, &ssd_array, 1),
      std::invalid_argument);
}

TEST(LssEngineTest, ArrayChunkSizeMismatchThrows) {
  TwoGroupPolicy policy;
  auto victim = make_greedy();
  array::SsdArrayConfig ac;
  ac.chunk_bytes = 1234;
  ac.num_streams = 4;
  array::SsdArray ssd_array(ac);
  EXPECT_THROW(
      LssEngine(small_config(), policy, *victim, &ssd_array, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace adapt::lss
