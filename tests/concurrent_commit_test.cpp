// Tests for the lock-free MPSC group-commit front-end (lss/group_commit.h):
// intake protocol unit tests, and the differential linearization oracle —
// the concurrent path records its per-shard op order, a serial engine
// replays it, and final state + deterministic metrics must match bit-exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "lss/group_commit.h"
#include "lss/placement_policy.h"
#include "proto/prototype.h"
#include "trace/synthetic.h"

namespace adapt::lss {
namespace {

// ---------------------------------------------------------------------------
// WriteIntake protocol (single-threaded: the protocol's state transitions
// are fully observable without real concurrency).

TEST(WriteIntakeTest, FirstLinkBecomesLeader) {
  WriteIntake intake;
  WriteTicket t(0, 1, 0);
  EXPECT_TRUE(intake.link(&t));
  EXPECT_EQ(intake.capture_group(&t), &t);
  EXPECT_EQ(intake.exit_group(&t), nullptr);
  // List reset: the next ticket is a fresh leader again.
  WriteTicket u(1, 1, 0);
  EXPECT_TRUE(intake.link(&u));
  EXPECT_EQ(intake.exit_group(&u), nullptr);
}

TEST(WriteIntakeTest, FollowersLinkBehindLeaderInArrivalOrder) {
  WriteIntake intake;
  WriteTicket a(0, 1, 0), b(1, 1, 0), c(2, 1, 0);
  EXPECT_TRUE(intake.link(&a));
  EXPECT_FALSE(intake.link(&b));
  EXPECT_FALSE(intake.link(&c));
  WriteTicket* last = intake.capture_group(&a);
  EXPECT_EQ(last, &c);
  // Oldest-to-newest walk covers the batch in arrival order.
  EXPECT_EQ(a.link_newer.load(), &b);
  EXPECT_EQ(b.link_newer.load(), &c);
  EXPECT_EQ(intake.exit_group(last), nullptr);
}

TEST(WriteIntakeTest, LateArrivalIsPromotedToNextLeader) {
  WriteIntake intake;
  WriteTicket a(0, 1, 0), b(1, 1, 0);
  EXPECT_TRUE(intake.link(&a));
  WriteTicket* last = intake.capture_group(&a);
  EXPECT_EQ(last, &a);
  // b arrives while the leader is applying its batch of one.
  EXPECT_FALSE(intake.link(&b));
  WriteTicket* next = intake.exit_group(last);
  ASSERT_EQ(next, &b);
  EXPECT_EQ(b.state.load(), WriteState::kLeader);
  // The promoted leader's link into the dying batch is severed.
  EXPECT_EQ(b.link_older, nullptr);
  EXPECT_EQ(intake.exit_group(&b), nullptr);
}

TEST(WriteIntakeTest, PublishAwaitAbortRoundTrip) {
  WriteTicket t(0, 1, 0);
  WriteIntake::publish(&t, WriteState::kAborted);
  EXPECT_EQ(WriteIntake::await(&t), WriteState::kAborted);
}

// Regression for a use-after-free in the completion handoff: the owner may
// observe the terminal state from await()'s lock-free spin and destroy the
// stack-owned ticket immediately, so publish() must never touch the ticket
// after its fast-path CAS (the old publish stored under the ticket mutex
// and then notified/unlocked — a destroyed-mutex race this test trips
// under TSan/ASan). Odd rounds delay the publisher so the owner exhausts
// its spin budget and exercises the kLockedWaiting parked path too.
TEST(WriteIntakeTest, PublishAwaitHandoffStress) {
  constexpr int kRounds = 1000;
  for (int round = 0; round < kRounds; ++round) {
    std::optional<WriteTicket> t;
    t.emplace(0, 1, 0);
    Thread publisher([&t, round] {
      if (round % 2 == 1) sleep_for_us(50);
      WriteIntake::publish(&*t, WriteState::kCompleted);
    });
    EXPECT_EQ(WriteIntake::await(&*t), WriteState::kCompleted);
    // Destroy the ticket the instant await returns, exactly as write()'s
    // stack unwinding does; the publisher thread joins only afterwards.
    t.reset();
  }
}

// ---------------------------------------------------------------------------
// Differential linearization oracle.

void expect_group_equal(const GroupTraffic& a, const GroupTraffic& b,
                        std::size_t g) {
  EXPECT_EQ(a.user_blocks, b.user_blocks) << "group " << g;
  EXPECT_EQ(a.gc_blocks, b.gc_blocks) << "group " << g;
  EXPECT_EQ(a.shadow_blocks, b.shadow_blocks) << "group " << g;
  EXPECT_EQ(a.padding_blocks, b.padding_blocks) << "group " << g;
  EXPECT_EQ(a.full_flushes, b.full_flushes) << "group " << g;
  EXPECT_EQ(a.padded_flushes, b.padded_flushes) << "group " << g;
  EXPECT_EQ(a.padded_fill_blocks, b.padded_fill_blocks) << "group " << g;
  EXPECT_EQ(a.rmw_flushes, b.rmw_flushes) << "group " << g;
  EXPECT_EQ(a.rmw_blocks, b.rmw_blocks) << "group " << g;
  EXPECT_EQ(a.segments_sealed, b.segments_sealed) << "group " << g;
  EXPECT_EQ(a.segments_reclaimed, b.segments_reclaimed) << "group " << g;
  EXPECT_EQ(a.gc_from, b.gc_from) << "group " << g;
}

void expect_histogram_equal(const Log2Histogram& a, const Log2Histogram& b,
                            const char* name) {
  EXPECT_EQ(a.count(), b.count()) << name;
  EXPECT_EQ(a.sum(), b.sum()) << name;
  EXPECT_EQ(a.max_value(), b.max_value()) << name;
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << name << " bucket " << i;
  }
}

/// Field-by-field bit-exact comparison of deterministic metrics. The one
/// deliberate exception is gc_pause_us: it holds host-clock samples, so
/// even two serial replays of the same log differ there.
void expect_metrics_equal(const LssMetrics& a, const LssMetrics& b) {
  EXPECT_EQ(a.user_blocks, b.user_blocks);
  EXPECT_EQ(a.gc_blocks, b.gc_blocks);
  EXPECT_EQ(a.shadow_blocks, b.shadow_blocks);
  EXPECT_EQ(a.padding_blocks, b.padding_blocks);
  EXPECT_EQ(a.gc_runs, b.gc_runs);
  EXPECT_EQ(a.gc_migrated_blocks, b.gc_migrated_blocks);
  EXPECT_EQ(a.forced_lazy_flushes, b.forced_lazy_flushes);
  EXPECT_EQ(a.rmw_flushes, b.rmw_flushes);
  EXPECT_EQ(a.rmw_blocks, b.rmw_blocks);
  EXPECT_EQ(a.rmw_read_blocks, b.rmw_read_blocks);
  EXPECT_EQ(a.read_blocks, b.read_blocks);
  EXPECT_EQ(a.read_chunk_fetches, b.read_chunk_fetches);
  EXPECT_EQ(a.read_buffer_hits, b.read_buffer_hits);
  EXPECT_EQ(a.read_unmapped, b.read_unmapped);
  expect_histogram_equal(a.block_lifetime, b.block_lifetime,
                         "block_lifetime");
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    expect_group_equal(a.groups[g], b.groups[g], g);
  }
}

struct DiffCase {
  std::string policy = "sepgc";
  std::uint64_t seed = 1;
  std::uint32_t shards = 2;
  std::uint32_t clients = 4;
  /// Default exceeds the 2^16-block working set (4 x 20000 > 65536) so the
  /// log wraps and background GC genuinely migrates — a differential test
  /// that never reclaims a segment would not be testing the GC interleave.
  std::uint64_t writes_per_client = 20'000;
  bool background_gc = true;
};

/// Runs `dc.clients` threads of YCSB writes (plus GC threads) through a
/// ConcurrentEngine, then replays every shard's recorded linearized log
/// through a fresh serial engine and asserts bit-identical final state.
void run_differential(const DiffCase& dc) {
  constexpr std::uint64_t kWorkingSet = std::uint64_t{1} << 16;
  LssConfig lss_config;
  lss_config.logical_blocks = kWorkingSet;

  proto::PrototypeConfig pc;
  pc.policy = dc.policy;
  pc.seed = dc.seed;
  const ShardFactory factory = proto::make_prototype_shard_factory(pc);

  ConcurrentEngine engine(lss_config, dc.shards, dc.seed, factory,
                          /*record_ops=*/true);
  const std::uint32_t watermark =
      lss_config.free_segment_reserve +
      engine.shard_for_inspection(0).group_count() + 4;

  // The simulated clock only needs to be shared and non-decreasing-ish;
  // the leader monotonises per shard and records the applied value, so the
  // oracle is exact regardless of what we feed here.
  std::atomic<std::uint64_t> clock{0};
  std::atomic<bool> done{false};

  auto client_fn = [&](std::uint32_t client_id) {
    trace::YcsbConfig wc;
    wc.working_set_blocks = kWorkingSet;
    wc.seed = dc.seed * 7919 + client_id;
    trace::YcsbGenerator gen(wc);
    std::uint64_t written = 0;
    while (written < dc.writes_per_client) {
      const trace::Record r = gen.next();
      if (r.op != trace::OpType::kWrite) continue;
      engine.write(r.lba, r.blocks,
                   clock.fetch_add(1, std::memory_order_relaxed));
      written += r.blocks;
    }
  };
  auto gc_fn = [&](std::uint32_t shard) {
    while (!done.load(std::memory_order_relaxed)) {
      const bool worked = engine.gc_step(
          shard, clock.fetch_add(1, std::memory_order_relaxed), watermark);
      if (!worked) yield_now();
    }
  };

  {
    std::vector<Thread> threads;
    threads.reserve(dc.clients + (dc.background_gc ? dc.shards : 0));
    for (std::uint32_t i = 0; i < dc.clients; ++i) {
      threads.emplace_back(client_fn, i);
    }
    if (dc.background_gc) {
      for (std::uint32_t i = 0; i < dc.shards; ++i) {
        threads.emplace_back(gc_fn, i);
      }
    }
    for (std::uint32_t i = 0; i < dc.clients; ++i) threads[i].join();
    done.store(true, std::memory_order_relaxed);
  }  // joins GC threads
  engine.flush_all();

  // Sanity: contention must have actually formed multi-op batches, or this
  // test is not exercising the group path at all.
  const GroupCommitStats stats = engine.merged_stats();
  EXPECT_GT(stats.groups, 0u);
  EXPECT_GE(stats.ops, stats.groups);
  if (dc.background_gc) {
    // The write volume exceeds the working set, so the log wraps and the GC
    // threads must have migrated blocks concurrently with client writes —
    // otherwise the oracle never sees a write/GC interleave.
    EXPECT_GT(engine.merged_metrics().gc_runs, 0u);
  }

  for (std::uint32_t i = 0; i < dc.shards; ++i) {
    SCOPED_TRACE("shard " + std::to_string(i));
    const std::vector<RecordedOp> log = engine.recorded_ops(i);
    ASSERT_FALSE(log.empty());

    // Serial oracle: same factory, same per-shard config, same seed law.
    ShardParts parts = factory(i, engine.per_shard_config());
    LssEngine serial(engine.per_shard_config(), *parts.policy, *parts.victim,
                     nullptr, dc.seed + i);
    if (parts.hook != nullptr) serial.set_aggregation_hook(parts.hook);
    ConcurrentEngine::replay_log(serial, log);

    const LssEngine& concurrent = engine.shard_for_inspection(i);
    expect_metrics_equal(concurrent.metrics(), serial.metrics());
    EXPECT_EQ(concurrent.chunks_flushed(), serial.chunks_flushed());
    EXPECT_EQ(concurrent.vtime(), serial.vtime());
    EXPECT_EQ(concurrent.free_segments(), serial.free_segments());
    EXPECT_EQ(concurrent.segments_per_group(), serial.segments_per_group());
    for (GroupId g = 0; g < concurrent.group_count(); ++g) {
      EXPECT_EQ(concurrent.pending_blocks(g), serial.pending_blocks(g))
          << "group " << g;
    }
    // Every logical block maps to the same physical location.
    for (Lba lba = 0; lba < engine.per_shard_config().logical_blocks;
         ++lba) {
      const BlockLocation cl = concurrent.locate(lba);
      const BlockLocation sl = serial.locate(lba);
      ASSERT_EQ(cl, sl) << "lba " << lba;
    }
  }
}

TEST(ConcurrentCommitDifferentialTest, SepgcFourClientsSeed1) {
  run_differential(DiffCase{});
}

TEST(ConcurrentCommitDifferentialTest, SepgcFourClientsSeed2) {
  DiffCase dc;
  dc.seed = 2;
  run_differential(dc);
}

TEST(ConcurrentCommitDifferentialTest, SepgcSixClientsFourShardsSeed3) {
  DiffCase dc;
  dc.seed = 3;
  dc.clients = 6;
  dc.shards = 4;
  run_differential(dc);
}

TEST(ConcurrentCommitDifferentialTest, AdaptFourClientsSeed1) {
  DiffCase dc;
  dc.policy = "adapt";
  run_differential(dc);
}

TEST(ConcurrentCommitDifferentialTest, AdaptFourClientsSeed2NoGc) {
  DiffCase dc;
  dc.policy = "adapt";
  dc.seed = 2;
  dc.background_gc = false;
  dc.writes_per_client = 3000;
  run_differential(dc);
}

TEST(ConcurrentCommitDifferentialTest, SingleShardSingleClientStillExact) {
  DiffCase dc;
  dc.shards = 1;
  dc.clients = 1;
  dc.writes_per_client = 2000;
  // Too small to wrap the log; a GC thread would only spin idle.
  dc.background_gc = false;
  run_differential(dc);
}

// ---------------------------------------------------------------------------
// ConcurrentEngine surface checks.

TEST(ConcurrentEngineTest, RejectsOutOfRangeWrite) {
  LssConfig cfg;
  cfg.logical_blocks = std::uint64_t{1} << 16;
  proto::PrototypeConfig pc;
  pc.policy = "sepgc";
  ConcurrentEngine engine(cfg, 2, 1, proto::make_prototype_shard_factory(pc));
  EXPECT_THROW(engine.write(cfg.logical_blocks, 1, 0), std::out_of_range);
}

// Fault injection for the batch-abort contract: delegates to the real
// policy, but call #1 parks (holding the leader inside its apply so the
// test can link followers behind it deterministically) and call #2 throws.
struct FaultyControl {
  std::atomic<int> calls{0};
  std::atomic<bool> leader_blocked{false};
  std::atomic<bool> release{false};
};

class FaultyPolicy : public PlacementPolicy {
 public:
  FaultyPolicy(std::unique_ptr<PlacementPolicy> inner, FaultyControl* ctrl)
      : inner_(std::move(inner)), ctrl_(ctrl) {}

  std::string_view name() const override { return inner_->name(); }
  GroupId group_count() const override { return inner_->group_count(); }
  bool is_user_group(GroupId g) const override {
    return inner_->is_user_group(g);
  }
  GroupId place_user_write(Lba lba, VTime now) override {
    const int n = ctrl_->calls.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == 1) {
      ctrl_->leader_blocked.store(true, std::memory_order_release);
      while (!ctrl_->release.load(std::memory_order_acquire)) yield_now();
    } else if (n == 2) {
      throw std::runtime_error("injected placement failure");
    }
    return inner_->place_user_write(lba, now);
  }
  GroupId place_gc_rewrite(Lba lba, GroupId victim_group,
                           VTime now) override {
    return inner_->place_gc_rewrite(lba, victim_group, now);
  }
  void note_segment_sealed(GroupId g, VTime now) override {
    inner_->note_segment_sealed(g, now);
  }
  void note_segment_reclaimed(GroupId g, VTime create_vtime,
                              VTime now) override {
    inner_->note_segment_reclaimed(g, create_vtime, now);
  }
  std::size_t memory_usage_bytes() const override {
    return inner_->memory_usage_bytes();
  }

 private:
  std::unique_ptr<PlacementPolicy> inner_;
  FaultyControl* ctrl_;
};

// The failure contract end to end: thread C leads a batch of one and is
// held inside its engine apply while A and B link behind it; exit_group
// promotes the older of A/B to lead the batch {A, B}, whose first apply
// throws. The promoted leader must rethrow the injected engine error, its
// follower must throw WriteAborted (its op was never applied), and C —
// whose op DID apply — must return success. No lost write reports durable.
TEST(ConcurrentEngineTest, EngineFailureAbortsNotAppliedFollowers) {
  LssConfig cfg;
  cfg.logical_blocks = std::uint64_t{1} << 16;
  proto::PrototypeConfig pc;
  pc.policy = "sepgc";
  FaultyControl ctrl;
  const ShardFactory inner = proto::make_prototype_shard_factory(pc);
  const ShardFactory factory = [&](std::uint32_t i, const LssConfig& c) {
    ShardParts parts = inner(i, c);
    parts.policy =
        std::make_unique<FaultyPolicy>(std::move(parts.policy), &ctrl);
    return parts;
  };
  ConcurrentEngine engine(cfg, 1, 1, factory);

  std::atomic<int> ok{0}, injected{0}, aborted{0};
  auto classify = [&](Lba lba) {
    try {
      engine.write(lba, 1, 1);
      ok.fetch_add(1, std::memory_order_relaxed);
    } catch (const WriteAborted&) {
      aborted.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "injected placement failure");
      injected.fetch_add(1, std::memory_order_relaxed);
    }
  };
  {
    Thread c([&] { classify(0); });
    while (!ctrl.leader_blocked.load(std::memory_order_acquire)) {
      yield_now();
    }
    Thread a([&] { classify(1); });
    Thread b([&] { classify(2); });
    // Generous margin for a and b to reach link() behind the held leader;
    // if either misses the batch it would lead alone and the strict
    // 1/1/1 split below fails loudly rather than passing vacuously.
    sleep_for_us(200'000);
    ctrl.release.store(true, std::memory_order_release);
  }  // joins a, b, c
  EXPECT_EQ(ok.load(), 1);
  EXPECT_EQ(injected.load(), 1);
  EXPECT_EQ(aborted.load(), 1);
  // Exactly the applied prefix is in the engine and the linearized log.
  EXPECT_EQ(engine.merged_metrics().user_blocks, 1u);
  EXPECT_EQ(engine.recorded_ops(0).size(), 1u);
}

// Delegating policy that parks call #1 inside the leader's apply (same
// rendezvous shape as FaultyPolicy, without the injected throw), so the
// test can deterministically link followers behind a held leader.
class HoldFirstPolicy : public PlacementPolicy {
 public:
  HoldFirstPolicy(std::unique_ptr<PlacementPolicy> inner, FaultyControl* ctrl)
      : inner_(std::move(inner)), ctrl_(ctrl) {}

  std::string_view name() const override { return inner_->name(); }
  GroupId group_count() const override { return inner_->group_count(); }
  bool is_user_group(GroupId g) const override {
    return inner_->is_user_group(g);
  }
  GroupId place_user_write(Lba lba, VTime now) override {
    if (ctrl_->calls.fetch_add(1, std::memory_order_relaxed) == 0) {
      ctrl_->leader_blocked.store(true, std::memory_order_release);
      while (!ctrl_->release.load(std::memory_order_acquire)) yield_now();
    }
    return inner_->place_user_write(lba, now);
  }
  GroupId place_gc_rewrite(Lba lba, GroupId victim_group,
                           VTime now) override {
    return inner_->place_gc_rewrite(lba, victim_group, now);
  }
  void note_segment_sealed(GroupId g, VTime now) override {
    inner_->note_segment_sealed(g, now);
  }
  void note_segment_reclaimed(GroupId g, VTime create_vtime,
                              VTime now) override {
    inner_->note_segment_reclaimed(g, create_vtime, now);
  }
  std::size_t memory_usage_bytes() const override {
    return inner_->memory_usage_bytes();
  }

 private:
  std::unique_ptr<PlacementPolicy> inner_;
  FaultyControl* ctrl_;
};

// Regression for the PR 8 latency-attribution caveat: under the old
// leader-absorbs-the-wait hook, a batch's coalesced flush was charged to
// its LEADER alone — followers returned in microseconds and their
// submit→durable latency silently excluded the device time their own
// writes caused, where the big-lock oracle charges every client that tips
// a chunk its own wait. The leader now stamps the batch's modeled durable
// time into every ticket before publishing and each op waits its own share
// on its own thread, so the held-leader rendezvous below must see ALL
// three ops (the original leader, the promoted leader of {A, B}, and its
// follower) spend at least the modeled service time inside write().
// Before the fix the follower's latency was ~1000x below the floor.
TEST(ConcurrentEngineTest, FollowersWaitTheirShareOfTheCoalescedFlush) {
  LssConfig cfg;
  cfg.logical_blocks = std::uint64_t{1} << 16;
  proto::PrototypeConfig pc;
  pc.policy = "sepgc";
  FaultyControl ctrl;
  const ShardFactory inner = proto::make_prototype_shard_factory(pc);
  const ShardFactory factory = [&](std::uint32_t i, const LssConfig& c) {
    ShardParts parts = inner(i, c);
    parts.policy =
        std::make_unique<HoldFirstPolicy>(std::move(parts.policy), &ctrl);
    return parts;
  };
  ConcurrentEngine engine(cfg, 1, 1, factory);

  // Modeled device: every flushing batch is durable kServiceUs after
  // submit, and the wait really sleeps — host-clock latency is the proof.
  constexpr TimeUs kServiceUs = 50'000;
  std::atomic<int> submits{0}, waits{0};
  engine.set_device_model(
      [&](std::uint32_t,
          const std::vector<PendingFlush>& flushes) -> FlushOutcome {
        EXPECT_FALSE(flushes.empty());
        submits.fetch_add(1, std::memory_order_relaxed);
        return {kServiceUs, kServiceUs};
      },
      [&](TimeUs durable_us) {
        waits.fetch_add(1, std::memory_order_relaxed);
        sleep_for_us(durable_us);
      });

  // sepgc routes every user write to one fixed group, so a chunk-sized
  // write always tips exactly one full-chunk flush inside its own batch.
  const std::uint32_t chunk = engine.per_shard_config().chunk_blocks;
  std::uint64_t latency_ns[3] = {0, 0, 0};
  auto timed_write = [&](int idx, Lba lba) {
    const std::uint64_t begin_ns = monotonic_now_ns();
    engine.write(lba, chunk, 1);
    latency_ns[idx] = monotonic_now_ns() - begin_ns;
  };
  {
    Thread c([&] { timed_write(0, 0); });
    while (!ctrl.leader_blocked.load(std::memory_order_acquire)) {
      yield_now();
    }
    Thread a([&] { timed_write(1, chunk); });
    Thread b([&] { timed_write(2, 2 * chunk); });
    // Same margin as the abort test: a and b must link behind the held
    // leader, or the promoted batch is size one and waits drops below 3.
    sleep_for_us(200'000);
    ctrl.release.store(true, std::memory_order_release);
  }  // joins a, b, c
  // Two batches ({C} then {A, B}) flushed, and every one of the three ops
  // paid a device wait of its own.
  EXPECT_EQ(submits.load(), 2);
  EXPECT_EQ(waits.load(), 3);
  // 80% floor absorbs sleep_for_us granularity; the pre-fix follower came
  // in three orders of magnitude below it.
  const std::uint64_t floor_ns = std::uint64_t{kServiceUs} * 1000 * 8 / 10;
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(latency_ns[i], floor_ns) << "op " << i;
  }
}

// The additivity identity from lss/op_timeline.h, proven on the live
// concurrent path: under real multi-threaded contention, every applied op
// lands in all five phase histograms and the four phase sums telescope
// EXACTLY back to the total — the same identity validate_manifest_json
// enforces on every exported latency_breakdown block.
TEST(ConcurrentEngineTest, LatencyBreakdownTelescopesExactly) {
  LssConfig cfg;
  cfg.logical_blocks = std::uint64_t{1} << 16;
  proto::PrototypeConfig pc;
  pc.policy = "sepgc";
  ConcurrentEngine engine(cfg, 1, 1, proto::make_prototype_shard_factory(pc));

  // Virtual device: each submitted batch is durable 100us later on a
  // monotone modeled clock, 40us of it pure service; waits are free.
  std::atomic<TimeUs> device_clock{0};
  engine.set_device_model(
      [&](std::uint32_t,
          const std::vector<PendingFlush>& flushes) -> FlushOutcome {
        EXPECT_FALSE(flushes.empty());
        const TimeUs durable =
            device_clock.fetch_add(100, std::memory_order_relaxed) + 100;
        return {durable, 40};
      },
      [](TimeUs) {});

  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 400;
  const std::uint32_t chunk = engine.per_shard_config().chunk_blocks;
  {
    std::vector<Thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&engine, chunk, t] {
        for (int i = 0; i < kWritesPerThread; ++i) {
          const Lba lba =
              (static_cast<Lba>(i) * kThreads + static_cast<Lba>(t)) % 256 *
              chunk % ((std::uint64_t{1} << 16) - chunk);
          engine.write(lba, chunk, static_cast<TimeUs>(i + 1));
        }
      });
    }
  }  // joins all clients

  const LatencyBreakdown bd = engine.latency_breakdown();
  const std::uint64_t n = std::uint64_t{kThreads} * kWritesPerThread;
  EXPECT_EQ(bd.total_us.count(), n);
  EXPECT_EQ(bd.intake_wait_us.count(), n);
  EXPECT_EQ(bd.batch_apply_us.count(), n);
  EXPECT_EQ(bd.lane_queue_us.count(), n);
  EXPECT_EQ(bd.device_service_us.count(), n);
  // Exact, not approximate: the clamped milestones telescope value for
  // value, so the identity survives summation.
  EXPECT_EQ(bd.intake_wait_us.sum() + bd.batch_apply_us.sum() +
                bd.lane_queue_us.sum() + bd.device_service_us.sum(),
            bd.total_us.sum());
  // Every write tipped a chunk flush, so some device time was attributed.
  EXPECT_GT(bd.device_service_us.sum(), 0u);
}

class CollectSink final : public TraceSink {
 public:
  void record(const TraceEvent& e) override { events.push_back(e); }
  std::vector<TraceEvent> events;
};

// Causal-flow correlation: a traced batch mints one nonzero flow id and
// stamps it on every event of the batch's lifecycle — per-op kOpSubmit,
// the kGroupCommit batch event, the chunk flushes it tipped (and their
// PendingFlush records, which the prototype forwards to the device lanes),
// and the per-op kOpDurable records. Single-threaded, so batches are size
// one and the per-shard ids are exactly 1..N.
TEST(ConcurrentEngineTest, TracedBatchesCarryCausalFlowIds) {
  if (!kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  LssConfig cfg;
  cfg.logical_blocks = std::uint64_t{1} << 16;
  proto::PrototypeConfig pc;
  pc.policy = "sepgc";
  ConcurrentEngine engine(cfg, 1, 1, proto::make_prototype_shard_factory(pc));
  CollectSink sink;
  engine.set_trace_sink(0, &sink);
  engine.set_device_model(
      [](std::uint32_t,
         const std::vector<PendingFlush>& flushes) -> FlushOutcome {
        for (const PendingFlush& f : flushes) {
          EXPECT_NE(f.id, 0u) << "traced batch flush lost its flow id";
        }
        return {1'000, 200};
      },
      [](TimeUs) {});

  static constexpr std::uint64_t kOps = 8;
  const std::uint32_t chunk = engine.per_shard_config().chunk_blocks;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    engine.write(i * chunk, chunk, static_cast<TimeUs>(i + 1));
  }

  std::vector<std::uint64_t> submit_ids, commit_ids, durable_ids, flush_ids;
  for (const TraceEvent& e : sink.events) {
    switch (e.kind) {
      case TraceEventKind::kOpSubmit:
        submit_ids.push_back(e.id);
        break;
      case TraceEventKind::kGroupCommit:
        commit_ids.push_back(e.id);
        break;
      case TraceEventKind::kOpDurable:
        durable_ids.push_back(e.id);
        EXPECT_EQ(e.c, 1'000u);  // the modeled durable time rides in c
        break;
      case TraceEventKind::kChunkFlush:
        flush_ids.push_back(e.id);
        break;
      default:
        break;
    }
  }
  const auto expect_one_to_n = [](const std::vector<std::uint64_t>& ids,
                                  const char* what) {
    ASSERT_EQ(ids.size(), kOps) << what;
    for (std::uint64_t i = 0; i < kOps; ++i) {
      EXPECT_EQ(ids[i], i + 1) << what << " event " << i;
    }
  };
  expect_one_to_n(submit_ids, "kOpSubmit");
  expect_one_to_n(commit_ids, "kGroupCommit");
  expect_one_to_n(durable_ids, "kOpDurable");
  // Every write tipped exactly one full-chunk flush inside its own batch.
  expect_one_to_n(flush_ids, "kChunkFlush");

  // End-of-run drain belongs to no batch: events emitted by flush_all must
  // not inherit the last batch's id.
  sink.events.clear();
  engine.flush_all();
  for (const TraceEvent& e : sink.events) {
    EXPECT_EQ(e.id, 0u) << "flush_all event carries a stale flow id";
  }
}

TEST(ConcurrentEngineTest, RecordOpsOffKeepsLogsEmpty) {
  LssConfig cfg;
  cfg.logical_blocks = std::uint64_t{1} << 16;
  proto::PrototypeConfig pc;
  pc.policy = "sepgc";
  ConcurrentEngine engine(cfg, 2, 1, proto::make_prototype_shard_factory(pc),
                          /*record_ops=*/false);
  engine.write(0, 4, 1);
  engine.flush_all();
  EXPECT_TRUE(engine.recorded_ops(0).empty());
  EXPECT_TRUE(engine.recorded_ops(1).empty());
  EXPECT_GT(engine.merged_metrics().user_blocks, 0u);
}

}  // namespace
}  // namespace adapt::lss
