// Tests for the live runtime snapshot (obs/runtime_stats.h): seqlock
// coherence under concurrent writers/readers (the TSan tier runs this too),
// the LiveStatsObserver stride adapter, and the format_live_line renderer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "lss/op_timeline.h"
#include "lss/victim_policy.h"
#include "obs/runtime_stats.h"
#include "test_support.h"

namespace adapt::obs {
namespace {

lss::BatchSample make_sample(std::uint64_t ops, std::uint64_t blocks,
                             TimeUs total_each) {
  lss::BatchSample s;
  s.shard = 0;
  s.ops = ops;
  s.blocks = blocks;
  for (std::uint64_t i = 0; i < ops; ++i) {
    // submit=0, joined=0, applied=0, durable=total_each, service=total_each:
    // the whole latency lands in device_service, total == durable.
    s.breakdown.add_op(0, 0, 0, total_each, total_each);
  }
  return s;
}

TEST(RuntimeStatsTest, SnapshotReflectsPublishedBatches) {
  RuntimeStats stats;
  stats.publish(make_sample(3, 12, 100));
  stats.publish(make_sample(1, 4, 200));

  const RuntimeSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.batches, 2u);
  EXPECT_EQ(snap.ops, 4u);
  EXPECT_EQ(snap.blocks, 16u);
  EXPECT_EQ(snap.intake_wait_us, 0u);
  EXPECT_EQ(snap.batch_apply_us, 0u);
  EXPECT_EQ(snap.lane_queue_us, 0u);
  EXPECT_EQ(snap.device_service_us, 3u * 100 + 200);
  EXPECT_EQ(snap.total_us.count(), 4u);
  EXPECT_EQ(snap.total_us.sum(), 3u * 100 + 200);
  EXPECT_EQ(snap.total_us.max_value(), 200u);
  EXPECT_GT(snap.p99_us(), 0.0);
}

TEST(RuntimeStatsTest, ProgressPublishesOpsAndBlocksOnly) {
  RuntimeStats stats;
  stats.publish_progress(10, 10);
  const RuntimeSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.batches, 0u);  // bare progress is not a batch
  EXPECT_EQ(snap.ops, 10u);
  EXPECT_EQ(snap.blocks, 10u);
  EXPECT_TRUE(snap.total_us.empty());
  EXPECT_EQ(snap.p99_us(), 0.0);  // empty distribution must not throw
}

// Seqlock coherence: writers maintain blocks == 2 * ops at every publish,
// so ANY snapshot a reader accepts must satisfy the invariant exactly — a
// torn read (payload from two different publishes) would break it. This is
// the test the TSan tier runs to prove reader/writer race-freedom.
TEST(RuntimeStatsTest, ConcurrentReadersNeverObserveTornSnapshots) {
  RuntimeStats stats;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kPublishesPerWriter = 4000;

  std::vector<Thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&stats] {
      for (std::uint64_t i = 0; i < kPublishesPerWriter; ++i) {
        const std::uint64_t k = (i % 7) + 1;
        stats.publish_progress(k, 2 * k);
      }
    });
  }
  std::atomic<std::uint64_t> reads{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&stats, &stop, &reads] {
      while (!stop.load(std::memory_order_relaxed)) {
        const RuntimeSnapshot snap = stats.snapshot();
        ASSERT_EQ(snap.blocks, 2 * snap.ops)
            << "torn snapshot at batch " << snap.batches;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Join the writers (the first kWriters threads), then stop the readers.
  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  threads.clear();  // joins readers

  std::uint64_t per_writer_ops = 0;
  for (std::uint64_t i = 0; i < kPublishesPerWriter; ++i) {
    per_writer_ops += (i % 7) + 1;
  }
  const RuntimeSnapshot final_snap = stats.snapshot();
  EXPECT_EQ(final_snap.ops, kWriters * per_writer_ops);
  EXPECT_EQ(final_snap.blocks, 2 * final_snap.ops);
  EXPECT_GT(reads.load(), 0u);
}

TEST(LiveStatsObserverTest, StridePublishingAndFlushRemainder) {
  RuntimeStats stats;
  LiveStatsObserver obs(stats, nullptr, /*stride=*/4);
  testing::TwoGroupPolicy policy;
  const auto victim = lss::make_victim_policy("greedy");
  lss::LssEngine engine(testing::small_config(), policy, *victim, nullptr, 1);
  for (int i = 0; i < 10; ++i) obs.on_user_block(engine, 0);
  RuntimeSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.ops, 8u);  // two full strides published, remainder pending
  obs.flush();
  snap = stats.snapshot();
  EXPECT_EQ(snap.ops, 10u);
  obs.flush();  // idempotent on empty remainder
  EXPECT_EQ(stats.snapshot().ops, 10u);
}

TEST(FormatLiveLineTest, OmitsPhaseTailWithoutPhaseData) {
  RuntimeSnapshot prev;
  RuntimeSnapshot cur;
  cur.ops = 100;
  cur.blocks = 100;
  const std::string line = format_live_line(prev, cur, 1.0);
  EXPECT_NE(line.find("live: ops=100 (+100)"), std::string::npos) << line;
  EXPECT_NE(line.find("thpt=100"), std::string::npos) << line;
  EXPECT_EQ(line.find("phase%"), std::string::npos) << line;
}

TEST(FormatLiveLineTest, PhasePercentagesCoverTheBreakdown) {
  RuntimeStats stats;
  lss::BatchSample s;
  s.ops = 1;
  s.blocks = 4;
  // submit=0, joined=10, applied=30, durable=100, service=40:
  // intake=10 apply=20 queue=30 service=40, total=100.
  s.breakdown.add_op(0, 10, 30, 100, 40);
  stats.publish(s);
  const std::string line =
      format_live_line(RuntimeSnapshot{}, stats.snapshot(), 2.0);
  EXPECT_NE(line.find("phase%"), std::string::npos) << line;
  EXPECT_NE(line.find("intake=10"), std::string::npos) << line;
  EXPECT_NE(line.find("apply=20"), std::string::npos) << line;
  EXPECT_NE(line.find("queue=30"), std::string::npos) << line;
  EXPECT_NE(line.find("service=40"), std::string::npos) << line;
  EXPECT_NE(line.find("p99="), std::string::npos) << line;
}

}  // namespace
}  // namespace adapt::obs
