// Unit tests for the baseline placement policies (SepGC, DAC, WARCIP,
// MiDA, SepBIT) and their factory.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "placement/dac.h"
#include "placement/factory.h"
#include "placement/mida.h"
#include "placement/sep_gc.h"
#include "placement/sepbit.h"
#include "placement/warcip.h"

namespace adapt::placement {
namespace {

constexpr std::uint64_t kBlocks = 1024;
constexpr std::uint32_t kSegBlocks = 64;

// ---------------------------------------------------------------------------
// SepGC
// ---------------------------------------------------------------------------

TEST(SepGcTest, RoutesUserAndGcSeparately) {
  SepGcPolicy p;
  EXPECT_EQ(p.group_count(), 2u);
  EXPECT_EQ(p.place_user_write(1, 0), SepGcPolicy::kUserGroup);
  EXPECT_EQ(p.place_gc_rewrite(1, 0, 10), SepGcPolicy::kGcGroup);
  EXPECT_TRUE(p.is_user_group(0));
  EXPECT_FALSE(p.is_user_group(1));
}

// ---------------------------------------------------------------------------
// DAC
// ---------------------------------------------------------------------------

TEST(DacTest, FirstWriteIsColdest) {
  DacPolicy p(kBlocks);
  EXPECT_EQ(p.place_user_write(7, 0), 0u);
}

TEST(DacTest, UpdatesPromote) {
  DacPolicy p(kBlocks);
  p.place_user_write(7, 0);
  EXPECT_EQ(p.place_user_write(7, 1), 1u);
  EXPECT_EQ(p.place_user_write(7, 2), 2u);
}

TEST(DacTest, PromotionSaturatesAtHottest) {
  DacPolicy p(kBlocks);
  for (int i = 0; i < 10; ++i) p.place_user_write(7, i);
  EXPECT_EQ(p.place_user_write(7, 11), 4u);
}

TEST(DacTest, GcDemotes) {
  DacPolicy p(kBlocks);
  for (int i = 0; i < 4; ++i) p.place_user_write(7, i);  // level 3
  EXPECT_EQ(p.place_gc_rewrite(7, 3, 10), 2u);
  EXPECT_EQ(p.place_gc_rewrite(7, 2, 11), 1u);
}

TEST(DacTest, DemotionSaturatesAtColdest) {
  DacPolicy p(kBlocks);
  p.place_user_write(7, 0);
  EXPECT_EQ(p.place_gc_rewrite(7, 0, 1), 0u);
  EXPECT_EQ(p.place_gc_rewrite(7, 0, 2), 0u);
}

TEST(DacTest, GcOfNeverWrittenBlockIsCold) {
  DacPolicy p(kBlocks);
  EXPECT_EQ(p.place_gc_rewrite(3, 0, 1), 0u);
}

TEST(DacTest, AllGroupsAreUserGroups) {
  DacPolicy p(kBlocks);
  for (GroupId g = 0; g < p.group_count(); ++g) {
    EXPECT_TRUE(p.is_user_group(g));
  }
}

// ---------------------------------------------------------------------------
// WARCIP
// ---------------------------------------------------------------------------

TEST(WarcipTest, NewBlocksJoinColdestCluster) {
  WarcipPolicy p(kBlocks, kSegBlocks);
  EXPECT_EQ(p.place_user_write(1, 0), 4u);
}

TEST(WarcipTest, ShortIntervalsJoinHotCluster) {
  WarcipPolicy p(kBlocks, kSegBlocks);
  p.place_user_write(1, 0);
  // Rewrite after a tiny interval: nearest centroid is the hottest one.
  EXPECT_EQ(p.place_user_write(1, 4), 0u);
}

TEST(WarcipTest, LongIntervalsJoinColdClusters) {
  WarcipPolicy p(kBlocks, kSegBlocks);
  p.place_user_write(1, 0);
  const GroupId g = p.place_user_write(1, 1u << 22);
  EXPECT_GE(g, 3u);
}

TEST(WarcipTest, GcGoesToRewriteGroup) {
  WarcipPolicy p(kBlocks, kSegBlocks);
  EXPECT_EQ(p.place_gc_rewrite(1, 2, 5), 5u);
  EXPECT_FALSE(p.is_user_group(5));
}

TEST(WarcipTest, CentroidsAdapt) {
  WarcipPolicy p(kBlocks, kSegBlocks);
  // Feed a steady diet of medium intervals; the chosen cluster for that
  // interval must stabilize (no thrash across the whole range).
  GroupId last = 0;
  for (int i = 0; i < 200; ++i) {
    p.place_user_write(2, static_cast<VTime>(i) * 1000);
    last = p.place_user_write(2, static_cast<VTime>(i) * 1000 + 500);
  }
  const GroupId repeat = p.place_user_write(2, 200 * 1000 + 500);
  EXPECT_EQ(repeat, last);
}

// ---------------------------------------------------------------------------
// MiDA
// ---------------------------------------------------------------------------

TEST(MidaTest, FreshBlocksStartInGroupZero) {
  MidaPolicy p(kBlocks);
  EXPECT_EQ(p.place_user_write(1, 0), 0u);
}

TEST(MidaTest, MigrationsRaiseGroup) {
  MidaPolicy p(kBlocks);
  EXPECT_EQ(p.place_gc_rewrite(1, 0, 1), 1u);
  EXPECT_EQ(p.place_gc_rewrite(1, 1, 2), 2u);
  EXPECT_EQ(p.place_gc_rewrite(1, 2, 3), 3u);
}

TEST(MidaTest, MigrationCountSaturatesAtLastGroup) {
  MidaPolicy p(kBlocks);
  for (int i = 0; i < 20; ++i) p.place_gc_rewrite(1, 0, i);
  EXPECT_EQ(p.place_gc_rewrite(1, 7, 21), 7u);
}

TEST(MidaTest, UserWriteUsesThenDecaysCount) {
  MidaPolicy p(kBlocks);
  p.place_gc_rewrite(1, 0, 1);
  p.place_gc_rewrite(1, 1, 2);  // count = 2
  EXPECT_EQ(p.place_user_write(1, 3), 2u);  // placed by count, then decays
  EXPECT_EQ(p.place_user_write(1, 4), 1u);
  EXPECT_EQ(p.place_user_write(1, 5), 0u);
  EXPECT_EQ(p.place_user_write(1, 6), 0u);
}

TEST(MidaTest, EveryGroupAcceptsUserWrites) {
  MidaPolicy p(kBlocks);
  for (GroupId g = 0; g < p.group_count(); ++g) {
    EXPECT_TRUE(p.is_user_group(g));
  }
}

// ---------------------------------------------------------------------------
// SepBIT
// ---------------------------------------------------------------------------

TEST(SepBitTest, FirstWriteIsCold) {
  SepBitPolicy p(kBlocks, kSegBlocks);
  EXPECT_EQ(p.place_user_write(1, 0), SepBitPolicy::kColdUser);
}

TEST(SepBitTest, ShortLifespanIsHot) {
  SepBitPolicy p(kBlocks, kSegBlocks);
  p.place_user_write(1, 0);
  // Initial threshold = 4 * segment = 256; lifespan 10 < 256 -> hot.
  EXPECT_EQ(p.place_user_write(1, 10), SepBitPolicy::kHotUser);
}

TEST(SepBitTest, LongLifespanIsCold) {
  SepBitPolicy p(kBlocks, kSegBlocks);
  p.place_user_write(1, 0);
  EXPECT_EQ(p.place_user_write(1, 100000), SepBitPolicy::kColdUser);
}

TEST(SepBitTest, GcAgeBuckets) {
  SepBitPolicy p(kBlocks, kSegBlocks);
  const double l = p.threshold();  // 256
  p.place_user_write(1, 0);
  EXPECT_EQ(p.place_gc_rewrite(1, 0, static_cast<VTime>(l)), 2u);
  EXPECT_EQ(p.place_gc_rewrite(1, 2, static_cast<VTime>(5 * l)), 3u);
  EXPECT_EQ(p.place_gc_rewrite(1, 3, static_cast<VTime>(20 * l)), 4u);
  EXPECT_EQ(p.place_gc_rewrite(1, 4, static_cast<VTime>(100 * l)), 5u);
}

TEST(SepBitTest, ThresholdTracksHotSegmentLifespan) {
  SepBitPolicy p(kBlocks, kSegBlocks);
  const double before = p.threshold();
  // Class-1 segments reclaimed with long lifespans raise the threshold.
  for (int i = 0; i < 20; ++i) {
    p.note_segment_reclaimed(SepBitPolicy::kHotUser, 0, 10000);
  }
  EXPECT_GT(p.threshold(), before);
  // Reclamations of other groups must not touch it.
  const double mid = p.threshold();
  p.note_segment_reclaimed(3, 0, 1);
  EXPECT_DOUBLE_EQ(p.threshold(), mid);
}

TEST(SepBitTest, UserGroupsAreExactlyTwo) {
  SepBitPolicy p(kBlocks, kSegBlocks);
  EXPECT_TRUE(p.is_user_group(0));
  EXPECT_TRUE(p.is_user_group(1));
  for (GroupId g = 2; g < p.group_count(); ++g) {
    EXPECT_FALSE(p.is_user_group(g));
  }
}

TEST(SepBitTest, MemoryScalesWithCapacity) {
  SepBitPolicy small(1024, kSegBlocks);
  SepBitPolicy large(4096, kSegBlocks);
  EXPECT_GT(large.memory_usage_bytes(), small.memory_usage_bytes());
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(FactoryTest, BuildsEveryBaseline) {
  const PolicyConfig config{.logical_blocks = kBlocks,
                            .segment_blocks = kSegBlocks,
                            .seed = 1};
  for (const auto name : baseline_names()) {
    const auto policy = make_baseline_policy(name, config);
    EXPECT_EQ(policy->name(), name);
    EXPECT_GE(policy->group_count(), 2u);
  }
}

TEST(FactoryTest, GroupCountsMatchPaperConfigurations) {
  const PolicyConfig config{.logical_blocks = kBlocks,
                            .segment_blocks = kSegBlocks,
                            .seed = 1};
  EXPECT_EQ(make_baseline_policy("sepgc", config)->group_count(), 2u);
  EXPECT_EQ(make_baseline_policy("dac", config)->group_count(), 5u);
  EXPECT_EQ(make_baseline_policy("warcip", config)->group_count(), 6u);
  EXPECT_EQ(make_baseline_policy("mida", config)->group_count(), 8u);
  EXPECT_EQ(make_baseline_policy("sepbit", config)->group_count(), 6u);
}

TEST(FactoryTest, UnknownNameThrows) {
  const PolicyConfig config{.logical_blocks = kBlocks,
                            .segment_blocks = kSegBlocks,
                            .seed = 1};
  EXPECT_THROW(make_baseline_policy("nope", config), std::invalid_argument);
}

TEST(FactoryTest, PoliciesStayWithinGroupBounds) {
  const PolicyConfig config{.logical_blocks = kBlocks,
                            .segment_blocks = kSegBlocks,
                            .seed = 1};
  Rng rng(3);
  for (const auto name : baseline_names()) {
    const auto policy = make_baseline_policy(name, config);
    for (int i = 0; i < 2000; ++i) {
      const Lba lba = rng.below(kBlocks);
      const GroupId ug =
          policy->place_user_write(lba, static_cast<VTime>(i));
      ASSERT_LT(ug, policy->group_count()) << name;
      if (i % 3 == 0) {
        const GroupId gg = policy->place_gc_rewrite(
            lba, static_cast<GroupId>(rng.below(policy->group_count())),
            static_cast<VTime>(i));
        ASSERT_LT(gg, policy->group_count()) << name;
      }
    }
  }
}

}  // namespace
}  // namespace adapt::placement
