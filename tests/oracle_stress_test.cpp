// Differential-oracle stress tests: the LSS engine and the FTL are driven
// with randomized mixed traffic in lockstep with the deliberately naive
// reference models in src/audit/oracle.h. Every op is followed by the cheap
// O(groups) oracle check plus the engine's own counters-tier self-audit
// (LssConfig::audit_level = kCounters); periodically and at the end the
// full O(n) differential audit re-derives everything.
//
// The traffic mix deliberately hits all three ADAPT mechanisms: a skewed
// write stream (threshold adaptation + proactive demotion), idle-time jumps
// that fire coalescing deadlines (cross-group aggregation / padding), and
// forced GC steps (victim index + migration + forced lazy flushes).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "adapt/adapt_policy.h"
#include "array/addressed_array.h"
#include "audit/oracle.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "flash/ftl.h"
#include "lss/engine.h"
#include "lss/sharded_engine.h"
#include "lss/victim_policy.h"

namespace adapt {
namespace {

constexpr std::uint64_t kOpsPerSeed = 120000;
constexpr std::uint64_t kFullAuditEvery = 8192;

lss::LssConfig stress_config(lss::PartialWriteMode mode) {
  lss::LssConfig cfg;
  cfg.chunk_blocks = 8;
  cfg.segment_chunks = 8;
  cfg.logical_blocks = 4096;
  cfg.over_provision = 0.50;
  cfg.partial_write_mode = mode;
  // Per-op counters self-audit inside the engine, on top of the oracle.
  cfg.audit_level = audit::Level::kCounters;
  return cfg;
}

core::AdaptConfig stress_adapt_config(const lss::LssConfig& cfg) {
  core::AdaptConfig acfg;
  acfg.logical_blocks = cfg.logical_blocks;
  acfg.segment_blocks = cfg.segment_blocks();
  acfg.chunk_blocks = cfg.chunk_blocks;
  acfg.over_provision = cfg.over_provision;
  return acfg;
}

void run_engine_stress(std::uint64_t seed, lss::PartialWriteMode mode,
                       bool with_flash_array) {
  const lss::LssConfig cfg = stress_config(mode);
  core::AdaptPolicy policy(stress_adapt_config(cfg));
  const auto victim = lss::make_victim_policy(
      seed % 3 == 0 ? "greedy" : (seed % 3 == 1 ? "cost-benefit" : "d-choice:4"));
  lss::LssEngine engine(cfg, policy, *victim, nullptr, seed);
  engine.set_aggregation_hook(&policy);

  array::AddressedArray* addressed = nullptr;
  std::unique_ptr<array::AddressedArray> flash_array;
  if (with_flash_array) {
    array::AddressedArrayConfig ac;
    ac.chunk_bytes = cfg.chunk_blocks * cfg.block_bytes;
    ac.page_bytes = cfg.block_bytes;
    ac.num_streams = policy.group_count();
    ac.data_chunks = static_cast<std::uint64_t>(cfg.total_segments()) *
                     cfg.segment_chunks;
    ac.device_over_provision = 0.28;
    flash_array = std::make_unique<array::AddressedArray>(ac);
    addressed = flash_array.get();
    engine.attach_addressed_array(addressed);
  }

  audit::OracleModel oracle(cfg);
  Rng rng(seed);
  ZipfianGenerator zipf(cfg.logical_blocks, 0.99);
  TimeUs now = 0;
  Lba last_lba = 0;

  for (std::uint64_t op = 0; op < kOpsPerSeed; ++op) {
    const std::uint64_t kind = rng.below(100);
    if (kind < 70) {
      // Skewed multi-block write.
      const Lba lba =
          std::min<Lba>(zipf.next(rng), cfg.logical_blocks - 4);
      const auto blocks = static_cast<std::uint32_t>(1 + rng.below(4));
      now += rng.below(150);
      engine.write(lba, blocks, now);
      oracle.on_write(lba, blocks);
      last_lba = lba;
    } else if (kind < 80) {
      const Lba lba = rng.below(cfg.logical_blocks - 8);
      engine.read(lba, static_cast<std::uint32_t>(1 + rng.below(8)), now);
    } else if (kind < 90) {
      // Idle gap: coalescing deadlines fire, triggering aggregation or
      // padding on every group with a partial chunk.
      now += 200 + rng.below(2000);
      engine.advance_time(now);
    } else if (kind < 95) {
      // Proactive background GC above the regular watermark.
      engine.gc_step(now, engine.config().free_segment_reserve +
                              policy.group_count() + 2);
    } else {
      engine.advance_time(now);
    }
    oracle.verify_op(engine, last_lba);
    if ((op + 1) % kFullAuditEvery == 0) {
      oracle.verify_full(engine);
      engine.check_invariants(audit::Level::kFull);
    }
  }

  engine.flush_all();
  oracle.verify_drained(engine);
  engine.check_invariants(audit::Level::kFull);
  if (addressed != nullptr) {
    for (std::uint32_t d = 0; d < addressed->config().num_devices; ++d) {
      addressed->device(d).check_invariants(audit::Level::kFull);
    }
    EXPECT_GE(addressed->device_internal_wa(), 1.0);
  }
  EXPECT_GT(oracle.user_blocks(), kOpsPerSeed / 2);
  EXPECT_GE(engine.metrics().wa(), 1.0);
}

class OracleStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleStressTest, ZeroPadModeAgreesWithOracle) {
  run_engine_stress(GetParam(), lss::PartialWriteMode::kZeroPad,
                    /*with_flash_array=*/false);
}

TEST_P(OracleStressTest, ZeroPadModeWithFlashBackedArray) {
  run_engine_stress(GetParam(), lss::PartialWriteMode::kZeroPad,
                    /*with_flash_array=*/true);
}

TEST_P(OracleStressTest, RmwModeAgreesWithOracle) {
  run_engine_stress(GetParam(), lss::PartialWriteMode::kReadModifyWrite,
                    /*with_flash_array=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleStressTest,
                         ::testing::Values(1u, 7u, 42u, 20250805u));

// -- Sharded engine vs per-shard oracles -------------------------------------

// Drives a 4-shard ShardedEngine with mixed global traffic while an
// independent OracleModel mirrors each shard's slice of the LBA space. The
// span-split must deliver every block to exactly the shard the oracle
// expects, and each shard must keep all single-engine invariants under the
// full ADAPT policy stack (threshold adaptation + aggregation + demotion).
void run_sharded_stress(std::uint64_t seed) {
  constexpr std::uint32_t kShards = 4;
  lss::LssConfig global = stress_config(lss::PartialWriteMode::kZeroPad);
  // Per shard this divides back to the single-engine stress geometry.
  global.logical_blocks *= kShards;

  const auto factory = [&](std::uint32_t,
                           const lss::LssConfig& shard_lss) {
    lss::ShardParts parts;
    auto policy = core::make_adapt_policy(stress_adapt_config(shard_lss));
    parts.hook = policy.get();
    parts.policy = std::move(policy);
    parts.victim = lss::make_victim_policy(
        seed % 2 == 0 ? "greedy" : "cost-benefit");
    return parts;
  };
  lss::ShardedEngine engine(global, kShards, seed, factory);
  ASSERT_EQ(engine.per_shard_config().logical_blocks,
            stress_config(lss::PartialWriteMode::kZeroPad).logical_blocks);

  std::vector<audit::OracleModel> oracles;
  oracles.reserve(kShards);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    oracles.emplace_back(engine.per_shard_config());
  }

  const std::uint32_t watermark =
      engine.per_shard_config().free_segment_reserve +
      engine.shard(0).group_count() + 2;
  Rng rng(seed);
  ZipfianGenerator zipf(global.logical_blocks, 0.99);
  TimeUs now = 0;
  constexpr std::uint64_t kOps = 60000;
  for (std::uint64_t op = 0; op < kOps; ++op) {
    const std::uint64_t kind = rng.below(100);
    if (kind < 70) {
      const Lba lba =
          std::min<Lba>(zipf.next(rng), global.logical_blocks - 4);
      const auto blocks = static_cast<std::uint32_t>(1 + rng.below(4));
      now += rng.below(150);
      engine.write(lba, blocks, now);
      for (Lba l = lba; l < lba + blocks; ++l) {
        oracles[engine.shard_of(l)].on_write(engine.local_of(l), 1);
      }
      const std::uint32_t s = engine.shard_of(lba);
      oracles[s].verify_op(engine.shard(s), engine.local_of(lba));
    } else if (kind < 80) {
      const Lba lba = rng.below(global.logical_blocks - 8);
      engine.read(lba, static_cast<std::uint32_t>(1 + rng.below(8)), now);
    } else if (kind < 90) {
      now += 200 + rng.below(2000);
      engine.advance_time(now);
    } else {
      engine.gc_step(now, watermark);
    }
    if ((op + 1) % kFullAuditEvery == 0) {
      for (std::uint32_t s = 0; s < kShards; ++s) {
        oracles[s].verify_full(engine.shard(s));
      }
      engine.check_invariants(audit::Level::kFull);
    }
  }

  engine.flush_all();
  std::uint64_t oracle_user_blocks = 0;
  for (std::uint32_t s = 0; s < kShards; ++s) {
    oracles[s].verify_drained(engine.shard(s));
    oracle_user_blocks += oracles[s].user_blocks();
  }
  engine.check_invariants(audit::Level::kFull);
  EXPECT_EQ(engine.merged_metrics().user_blocks, oracle_user_blocks);
  EXPECT_GE(engine.merged_metrics().wa(), 1.0);
}

class ShardedOracleStressTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedOracleStressTest, FourShardsAgreeWithPerShardOracles) {
  run_sharded_stress(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedOracleStressTest,
                         ::testing::Values(5u, 42u));

// -- FTL oracle --------------------------------------------------------------

class FtlOracleStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtlOracleStressTest, HostWriteTrimAgreesWithOracle) {
  flash::FtlConfig cfg;
  cfg.pages_per_block = 64;
  cfg.logical_pages = 4096;
  cfg.over_provision = 0.30;
  cfg.num_streams = 4;
  flash::Ftl ftl(cfg);
  audit::FtlOracle oracle(cfg);
  Rng rng(GetParam());
  ScrambledZipfianGenerator zipf(cfg.logical_pages, 0.99);

  for (std::uint64_t op = 0; op < kOpsPerSeed; ++op) {
    const std::uint64_t lpn =
        std::min<std::uint64_t>(zipf.next(rng), cfg.logical_pages - 8);
    const auto pages = static_cast<std::uint32_t>(1 + rng.below(8));
    if (rng.below(100) < 85) {
      const auto stream = static_cast<std::uint32_t>(rng.below(6));
      ftl.host_write(lpn, pages, stream);  // streams >= 4 clamp
      oracle.on_host_write(lpn, pages);
    } else {
      ftl.trim(lpn, pages);
      oracle.on_trim(lpn, pages);
    }
    ftl.check_invariants(audit::Level::kCounters);
    if ((op + 1) % kFullAuditEvery == 0) {
      oracle.verify(ftl);
      ftl.check_invariants(audit::Level::kFull);
    }
  }
  oracle.verify(ftl);
  ftl.check_invariants(audit::Level::kFull);
  EXPECT_GE(ftl.stats().internal_wa(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlOracleStressTest,
                         ::testing::Values(3u, 11u, 99u));

}  // namespace
}  // namespace adapt
