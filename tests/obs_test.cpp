// Observability layer: registry semantics, the JSON mini-parser, windowed
// sampling with fixed-memory downsampling, exporter/validator round-trips,
// and the bit-identity guarantee — attaching the sampler must not perturb
// the engine (the PR-1 pinned fixed-seed metrics reproduce exactly with
// sampling on).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/series.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace adapt {
namespace {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, SlotPointersAreStableAcrossInserts) {
  obs::Registry r;
  std::uint64_t* a = r.slot("alpha");
  *a = 7;
  // Node-based storage: growing the registry must not move existing slots.
  for (int i = 0; i < 256; ++i) {
    std::string name = "k";
    name += std::to_string(i);
    r.slot(name);
  }
  *a += 1;
  EXPECT_EQ(r.value("alpha"), 8u);
  EXPECT_EQ(r.slot("alpha"), a);
  EXPECT_EQ(r.size(), 257u);
}

TEST(RegistryTest, UnknownNameReadsZero) {
  obs::Registry r;
  EXPECT_FALSE(r.contains("nope"));
  EXPECT_EQ(r.value("nope"), 0u);
  EXPECT_TRUE(r.empty());
}

TEST(RegistryTest, MergeFromSumsPerName) {
  obs::Registry a;
  obs::Registry b;
  *a.slot("shared") = 10;
  *a.slot("only_a") = 1;
  *b.slot("shared") = 32;
  *b.slot("only_b") = 5;
  a.merge_from(b);
  EXPECT_EQ(a.value("shared"), 42u);
  EXPECT_EQ(a.value("only_a"), 1u);
  EXPECT_EQ(a.value("only_b"), 5u);
  // Entries iterate in sorted name order (stable export layout).
  std::string prev;
  for (const auto& [name, value] : a.entries()) {
    EXPECT_LT(prev, name);
    prev = name;
  }
}

// ---------------------------------------------------------------------------
// JSON mini-parser
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesNestedDocument) {
  const obs::json::Value v = obs::json::parse(
      R"({"a": [1, -2.5e1, true, null], "b": {"s": "x\ny"}})");
  ASSERT_TRUE(v.is_object());
  const obs::json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 4u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), -25.0);
  EXPECT_TRUE(a->items()[2].as_bool());
  EXPECT_TRUE(a->items()[3].is_null());
  EXPECT_EQ(v.find("b")->find("s")->as_string(), "x\ny");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(obs::json::parse("{"), std::invalid_argument);
  EXPECT_THROW(obs::json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(obs::json::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(obs::json::parse(R"({"a":1,"a":2})"), std::invalid_argument);
  EXPECT_THROW(obs::json::parse("01"), std::invalid_argument);
}

TEST(JsonTest, QuoteEscapesAndNumbersRoundTrip) {
  EXPECT_EQ(obs::json::quote("a\"b\\c\n"), R"("a\"b\\c\n")");
  std::string out;
  obs::json::append_number(out, 0.25);
  out += ' ';
  obs::json::append_number(out, std::nan(""));
  EXPECT_EQ(out, "0.25 null");
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

sim::VolumeResult run_sampled(const trace::Volume& volume,
                              std::uint64_t window, std::size_t max_rows) {
  sim::SimConfig config;
  config.seed = 42;
  config.sampling_enabled = true;
  config.sampling.window_blocks = window;
  config.sampling.max_rows = max_rows;
  return sim::run_volume(volume, "adapt", config);
}

trace::Volume small_volume() {
  trace::CloudVolumeModel model(trace::alibaba_profile(), /*seed=*/42);
  return model.make_volume(/*volume_id=*/0, /*fill_factor=*/1.5);
}

TEST(SamplerTest, RowsAreCumulativeAndOrdered) {
  const sim::VolumeResult r = run_sampled(small_volume(), 1024, 512);
  ASSERT_NE(r.series, nullptr);
  ASSERT_FALSE(r.series->rows.empty());
  const obs::SeriesRow* prev = nullptr;
  for (const obs::SeriesRow& row : r.series->rows) {
    if (prev != nullptr) {
      EXPECT_GT(row.vtime, prev->vtime);
      EXPECT_GE(row.user_blocks, prev->user_blocks);
      EXPECT_GE(row.gc_blocks, prev->gc_blocks);
      EXPECT_GE(row.padding_blocks, prev->padding_blocks);
      EXPECT_GE(row.gc_runs, prev->gc_runs);
    }
    // The "adapt" policy probe reports a live threshold on every sample.
    EXPECT_FALSE(std::isnan(row.threshold));
    EXPECT_FALSE(row.groups.empty());
    prev = &row;
  }
  // The final row covers the whole replay.
  EXPECT_EQ(r.series->rows.back().user_blocks, r.metrics.user_blocks);
}

TEST(SamplerTest, DownsamplingKeepsMemoryBounded) {
  const std::size_t max_rows = 16;
  const sim::VolumeResult r = run_sampled(small_volume(), 64, max_rows);
  ASSERT_NE(r.series, nullptr);
  EXPECT_LE(r.series->rows.size(), max_rows);
  EXPECT_GT(r.series->downsamples, 0u);
  // Each downsample doubles the stride exactly.
  EXPECT_EQ(r.series->window_blocks, 64u << r.series->downsamples);
}

TEST(SamplerTest, RejectsZeroWindow) {
  obs::SamplerConfig config;
  config.window_blocks = 0;
  EXPECT_THROW(obs::EngineSampler sampler(config), std::invalid_argument);
}

TEST(SamplerTest, ZeroUserBlocksProducesOneFinalRow) {
  // A volume with no writes at all: finalize still captures one snapshot,
  // and every derived/windowed quantity downstream must cope with
  // user_blocks == 0.
  trace::Volume volume;
  volume.id = 7;
  volume.capacity_blocks = 4096;
  const sim::VolumeResult r = run_sampled(volume, 512, 64);
  EXPECT_EQ(r.metrics.user_blocks, 0u);
  ASSERT_NE(r.series, nullptr);
  ASSERT_EQ(r.series->rows.size(), 1u);
  EXPECT_EQ(r.series->rows[0].user_blocks, 0u);
  std::ostringstream jsonl;
  obs::write_series_jsonl(jsonl, *r.series);
  EXPECT_EQ(obs::validate_series_jsonl(jsonl.str()), 1u);
  EXPECT_NO_THROW(obs::validate_manifest_json(obs::manifest_json(r.manifest)));
}

// ---------------------------------------------------------------------------
// merge_series error paths
// ---------------------------------------------------------------------------

TEST(SeriesMergeTest, RejectsEmptyInput) {
  EXPECT_THROW(obs::merge_series({}), std::invalid_argument);
}

TEST(SeriesMergeTest, RejectsPartsSampledWithDifferentWindows) {
  obs::TimeSeries a;
  a.window_blocks = 1024;
  obs::TimeSeries b;
  b.window_blocks = 512;
  std::vector<obs::TimeSeries> parts;
  parts.push_back(a);
  parts.push_back(b);
  EXPECT_THROW(obs::merge_series(std::move(parts)), std::invalid_argument);
}

TEST(SeriesMergeTest, RejectsCorruptHeader) {
  // window_blocks must equal base_window << downsamples; a zero window or
  // a downsample count that shifts the stride to nothing is corrupt.
  obs::TimeSeries ok;
  ok.window_blocks = 1024;
  for (const auto& [window, downsamples] :
       {std::pair<std::uint64_t, std::uint32_t>{0, 0},
        std::pair<std::uint64_t, std::uint32_t>{1024, 60},
        std::pair<std::uint64_t, std::uint32_t>{1000, 3}}) {
    obs::TimeSeries bad;
    bad.window_blocks = window;
    bad.downsamples = downsamples;
    std::vector<obs::TimeSeries> parts;
    parts.push_back(ok);
    parts.push_back(bad);
    EXPECT_THROW(obs::merge_series(std::move(parts)), std::invalid_argument)
        << window << "/" << downsamples;
  }
}

// ---------------------------------------------------------------------------
// Exporters and validators
// ---------------------------------------------------------------------------

TEST(ExportTest, SeriesJsonlRoundTripsThroughValidator) {
  const sim::VolumeResult r = run_sampled(small_volume(), 1024, 64);
  std::ostringstream jsonl;
  obs::write_series_jsonl(jsonl, *r.series);
  const std::size_t samples = obs::validate_series_jsonl(jsonl.str());
  EXPECT_EQ(samples, r.series->rows.size());
  EXPECT_GT(samples, 0u);
}

TEST(ExportTest, SeriesCsvHasHeaderPlusOneLinePerRow) {
  const sim::VolumeResult r = run_sampled(small_volume(), 1024, 64);
  std::ostringstream csv;
  obs::write_series_csv(csv, *r.series);
  const std::string text = csv.str();
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n';
  EXPECT_EQ(lines, r.series->rows.size() + 1);
  EXPECT_EQ(text.rfind("vtime,wall_us,", 0), 0u);
}

TEST(ExportTest, SeriesValidatorRejectsTampering) {
  const sim::VolumeResult r = run_sampled(small_volume(), 1024, 64);
  std::ostringstream jsonl;
  obs::write_series_jsonl(jsonl, *r.series);
  const std::string good = jsonl.str();
  // Drop the last sample line: row count no longer matches the header.
  const std::size_t cut = good.rfind('{');
  EXPECT_THROW(obs::validate_series_jsonl(good.substr(0, cut)),
               std::invalid_argument);
  // A stream without a header is rejected outright.
  EXPECT_THROW(obs::validate_series_jsonl(good.substr(cut)),
               std::invalid_argument);
}

TEST(ExportTest, ManifestRoundTripsThroughValidator) {
  const sim::VolumeResult r = run_sampled(small_volume(), 1024, 64);
  const std::string json = obs::manifest_json(r.manifest);
  EXPECT_NO_THROW(obs::validate_manifest_json(json));
  // The counters block mirrors the engine totals.
  EXPECT_EQ(r.manifest.counters.value("lss.user_blocks"),
            r.metrics.user_blocks);
  EXPECT_EQ(r.manifest.counters.value("lss.gc_runs"), r.metrics.gc_runs);
  EXPECT_GT(r.manifest.records, 0u);
  EXPECT_GT(r.manifest.peak_rss_bytes, 0u);
}

TEST(ExportTest, ManifestValidatorRejectsMissingKey) {
  obs::RunManifest m;
  m.policy = "adapt";
  m.victim = "greedy";
  std::string json = obs::manifest_json(m);
  const std::size_t pos = json.find("\"seed\"");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 6, "\"sead\"");
  EXPECT_THROW(obs::validate_manifest_json(json), std::invalid_argument);
}

// latency_breakdown teeth: a manifest whose phase histograms don't
// telescope to the total must be rejected, exactly like an unbalanced
// provenance matrix. The tamper flips one digit of one phase sum, so the
// additivity identity is off by one.
TEST(ExportTest, ManifestValidatorEnforcesLatencyBreakdownIdentity) {
  obs::RunManifest m;
  m.policy = "adapt";
  m.victim = "greedy";
  // Two ops through the clamped milestone math: phases telescope exactly.
  m.latency_breakdown.add_op(0, 10, 30, 100, 40);
  m.latency_breakdown.add_op(5, 5, 30, 90, 20);
  const std::string good = obs::manifest_json(m);
  ASSERT_NE(good.find("\"latency_breakdown\""), std::string::npos);
  EXPECT_NO_THROW(obs::validate_manifest_json(good));

  // Tamper 1: bump intake_wait's sum (10 + 0 = 10 -> 11).
  std::string bad = good;
  std::size_t pos = bad.find("\"intake_wait_us\"");
  ASSERT_NE(pos, std::string::npos);
  pos = bad.find("\"sum\":10", pos);
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 8, "\"sum\":11");
  EXPECT_THROW(obs::validate_manifest_json(bad), std::invalid_argument);

  // Tamper 2: a phase counting fewer ops than the total is rejected even
  // when the sums happen to balance.
  std::string short_count = good;
  pos = short_count.find("\"batch_apply_us\"");
  ASSERT_NE(pos, std::string::npos);
  pos = short_count.find("\"count\":2", pos);
  ASSERT_NE(pos, std::string::npos);
  short_count.replace(pos, 9, "\"count\":1");
  EXPECT_THROW(obs::validate_manifest_json(short_count),
               std::invalid_argument);

  // A manifest without the optional block still validates (sim manifests
  // from the serial path never carry one).
  obs::RunManifest plain;
  plain.policy = "adapt";
  plain.victim = "greedy";
  const std::string plain_json = obs::manifest_json(plain);
  EXPECT_EQ(plain_json.find("\"latency_breakdown\""), std::string::npos);
  EXPECT_NO_THROW(obs::validate_manifest_json(plain_json));
}

TEST(ExportTest, ManifestValidatorEnforcesTraceDropAccounting) {
  obs::RunManifest m;
  m.policy = "adapt";
  m.victim = "greedy";
  m.trace_present = true;
  m.trace_recorded = 12;
  m.trace_dropped = 5;
  m.trace_per_shard_dropped = {2, 3};
  const std::string good = obs::manifest_json(m);
  ASSERT_NE(good.find("\"trace\""), std::string::npos);
  EXPECT_NO_THROW(obs::validate_manifest_json(good));
  // Per-shard drops that no longer sum to the total are rejected.
  std::string bad = good;
  const std::size_t pos = bad.find("[2,3]");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 5, "[2,2]");
  EXPECT_THROW(obs::validate_manifest_json(bad), std::invalid_argument);
}

TEST(ExportTest, BenchReportRoundTripsThroughValidator) {
  obs::BenchReport report("unit");
  report.add("wa", {{"policy", "adapt"}}, 1.25, "ratio");
  report.add("nan_ok", {}, std::nan(""), "ratio");  // exported as null
  EXPECT_NO_THROW(obs::validate_bench_json(report.json()));
  EXPECT_EQ(report.row_count(), 2u);
}

TEST(ExportTest, BenchValidatorRejectsBadShapes) {
  EXPECT_THROW(obs::validate_bench_json("{}"), std::invalid_argument);
  EXPECT_THROW(obs::validate_bench_json(
                   R"({"schema":"adapt-bench-v1","bench":"x","rows":[]})"),
               std::invalid_argument);
  EXPECT_THROW(
      obs::validate_bench_json(
          R"({"schema":"adapt-bench-v1","bench":"x","rows":)"
          R"([{"metric":"m","params":{"p":1},"value":1,"unit":"u"}]})"),
      std::invalid_argument);
  EXPECT_THROW(obs::BenchReport(""), std::invalid_argument);
}

TEST(ExportTest, CellAggregateManifestMergesVolumes) {
  const trace::Volume volume = small_volume();
  sim::ExperimentSpec spec;
  spec.policies = {"adapt"};
  spec.threads = 2;
  const auto results = sim::run_experiment(spec, {volume, volume});
  const sim::CellResult& cell = results.at(sim::CellKey{"adapt", "greedy"});
  const obs::RunManifest m = cell.aggregate_manifest();
  EXPECT_EQ(m.tool, "experiment");
  EXPECT_EQ(m.records, cell.volumes[0].manifest.records +
                           cell.volumes[1].manifest.records);
  EXPECT_EQ(m.counters.value("lss.user_blocks"),
            cell.volumes[0].metrics.user_blocks +
                cell.volumes[1].metrics.user_blocks);
  EXPECT_NO_THROW(obs::validate_manifest_json(obs::manifest_json(m)));
}

// ---------------------------------------------------------------------------
// Bit-identity: sampling must not perturb the engine
// ---------------------------------------------------------------------------

void expect_same_metrics(const lss::LssMetrics& a, const lss::LssMetrics& b) {
  EXPECT_EQ(a.user_blocks, b.user_blocks);
  EXPECT_EQ(a.gc_blocks, b.gc_blocks);
  EXPECT_EQ(a.shadow_blocks, b.shadow_blocks);
  EXPECT_EQ(a.padding_blocks, b.padding_blocks);
  EXPECT_EQ(a.gc_runs, b.gc_runs);
  EXPECT_EQ(a.gc_migrated_blocks, b.gc_migrated_blocks);
  EXPECT_EQ(a.forced_lazy_flushes, b.forced_lazy_flushes);
  EXPECT_EQ(a.rmw_flushes, b.rmw_flushes);
  EXPECT_EQ(a.rmw_blocks, b.rmw_blocks);
  EXPECT_EQ(a.rmw_read_blocks, b.rmw_read_blocks);
  EXPECT_EQ(a.read_blocks, b.read_blocks);
  EXPECT_EQ(a.read_chunk_fetches, b.read_chunk_fetches);
  EXPECT_EQ(a.read_buffer_hits, b.read_buffer_hits);
  EXPECT_EQ(a.read_unmapped, b.read_unmapped);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].user_blocks, b.groups[g].user_blocks) << g;
    EXPECT_EQ(a.groups[g].gc_blocks, b.groups[g].gc_blocks) << g;
    EXPECT_EQ(a.groups[g].shadow_blocks, b.groups[g].shadow_blocks) << g;
    EXPECT_EQ(a.groups[g].padding_blocks, b.groups[g].padding_blocks) << g;
    EXPECT_EQ(a.groups[g].segments_sealed, b.groups[g].segments_sealed) << g;
    EXPECT_EQ(a.groups[g].segments_reclaimed, b.groups[g].segments_reclaimed)
        << g;
  }
}

TEST(ObsDeterminismTest, SamplingEnabledVsDisabledIsBitIdentical) {
  const trace::Volume volume = small_volume();
  sim::SimConfig off;
  off.seed = 42;
  const sim::VolumeResult plain = sim::run_volume(volume, "adapt", off);
  const sim::VolumeResult sampled = run_sampled(volume, 512, 64);
  expect_same_metrics(plain.metrics, sampled.metrics);
  EXPECT_EQ(plain.segments_per_group, sampled.segments_per_group);
}

// The PR-1 pinned fixed-seed replay (victim_index_test) must reproduce
// bit-identically with the sampler attached: the observer is passive.
TEST(ObsDeterminismTest, PinnedFixedSeedMetricsUnchangedWithSamplerAttached) {
  trace::CloudVolumeModel model(trace::alibaba_profile(), /*seed=*/42);
  const trace::Volume volume = model.make_volume(/*volume_id=*/0,
                                                 /*fill_factor=*/3.0);
  ASSERT_EQ(volume.records.size(), 66314u);
  const sim::VolumeResult r = run_sampled(volume, 4096, 128);
  const lss::LssMetrics& m = r.metrics;
  EXPECT_EQ(m.user_blocks, 173331u);
  EXPECT_EQ(m.gc_blocks, 89754u);
  EXPECT_EQ(m.shadow_blocks, 10640u);
  EXPECT_EQ(m.padding_blocks, 146403u);
  EXPECT_EQ(m.gc_runs, 1370u);
  EXPECT_EQ(m.forced_lazy_flushes, 13u);
  EXPECT_EQ(m.read_blocks, 140561u);
  EXPECT_EQ(m.read_chunk_fetches, 47381u);
  EXPECT_EQ(m.read_buffer_hits, 449u);
  EXPECT_EQ(m.read_unmapped, 34479u);
  // And the series the run produced is non-empty and schema-valid.
  ASSERT_NE(r.series, nullptr);
  std::ostringstream jsonl;
  obs::write_series_jsonl(jsonl, *r.series);
  EXPECT_EQ(obs::validate_series_jsonl(jsonl.str()), r.series->rows.size());
  EXPECT_GT(r.series->rows.size(), 0u);
}

}  // namespace
}  // namespace adapt
