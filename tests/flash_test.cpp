// Tests for the flash substrate: the page-mapped multi-stream FTL and the
// address-mapped RAID-5 array on top of it.
#include <gtest/gtest.h>

#include "array/addressed_array.h"
#include "common/rng.h"
#include "flash/ftl.h"

namespace adapt::flash {
namespace {

FtlConfig small_ftl(std::uint32_t streams = 2) {
  FtlConfig c;
  c.pages_per_block = 16;
  c.logical_pages = 1024;
  c.over_provision = 0.5;
  c.num_streams = streams;
  return c;
}

TEST(FtlTest, ConfigGeometry) {
  const FtlConfig c = small_ftl();
  EXPECT_EQ(c.total_blocks(), 96u);  // 1024 * 1.5 / 16
}

TEST(FtlTest, RejectsBadConfig) {
  FtlConfig c = small_ftl();
  c.pages_per_block = 0;
  EXPECT_THROW(Ftl f(c), std::invalid_argument);
  c = small_ftl();
  c.num_streams = 0;
  EXPECT_THROW(Ftl f(c), std::invalid_argument);
  c = small_ftl(32);
  c.over_provision = 0.01;
  EXPECT_THROW(Ftl f(c), std::invalid_argument);
}

TEST(FtlTest, WriteMapsPages) {
  Ftl ftl(small_ftl());
  ftl.host_write(10, 4, 0);
  for (std::uint64_t lpn = 10; lpn < 14; ++lpn) {
    EXPECT_TRUE(ftl.is_mapped(lpn));
  }
  EXPECT_FALSE(ftl.is_mapped(9));
  EXPECT_EQ(ftl.stats().host_pages, 4u);
  ftl.check_invariants();
}

TEST(FtlTest, OverwriteInvalidatesOldPage) {
  Ftl ftl(small_ftl());
  ftl.host_write(5, 1, 0);
  ftl.host_write(5, 1, 0);
  EXPECT_TRUE(ftl.is_mapped(5));
  EXPECT_EQ(ftl.stats().host_pages, 2u);
  ftl.check_invariants();
}

TEST(FtlTest, TrimUnmaps) {
  Ftl ftl(small_ftl());
  ftl.host_write(0, 8, 0);
  ftl.trim(0, 4);
  EXPECT_FALSE(ftl.is_mapped(0));
  EXPECT_TRUE(ftl.is_mapped(4));
  EXPECT_EQ(ftl.stats().trimmed_pages, 4u);
  // Trimming unmapped pages is a no-op.
  ftl.trim(0, 4);
  EXPECT_EQ(ftl.stats().trimmed_pages, 4u);
  ftl.check_invariants();
}

TEST(FtlTest, OutOfRangeThrows) {
  Ftl ftl(small_ftl());
  EXPECT_THROW(ftl.host_write(1020, 8, 0), std::out_of_range);
  EXPECT_THROW(ftl.trim(1024, 1), std::out_of_range);
  EXPECT_THROW(ftl.is_mapped(2048), std::out_of_range);
}

TEST(FtlTest, GcReclaimsAndPreservesData) {
  Ftl ftl(small_ftl());
  Rng rng(7);
  std::vector<bool> written(1024, false);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t lpn = rng.below(1024);
    ftl.host_write(lpn, 1, 0);
    written[lpn] = true;
  }
  ftl.check_invariants();
  for (std::uint64_t lpn = 0; lpn < 1024; ++lpn) {
    EXPECT_EQ(ftl.is_mapped(lpn), written[lpn]);
  }
  EXPECT_GT(ftl.stats().gc_runs, 0u);
  EXPECT_GT(ftl.stats().erases, 0u);
  EXPECT_GE(ftl.stats().internal_wa(), 1.0);
}

TEST(FtlTest, StreamsSeparatePhysically) {
  // Two interleaved write streams with different overwrite behaviour: the
  // hot stream churns a small range, the cold stream is written once.
  // Stream separation should keep internal WA lower than funnelling both
  // into one stream.
  auto run = [](std::uint32_t streams) {
    FtlConfig c = small_ftl(streams);
    Ftl ftl(c);
    Rng rng(11);
    for (int i = 0; i < 30000; ++i) {
      if (rng.chance(0.7)) {
        ftl.host_write(rng.below(64), 1, 0);  // hot
      } else {
        ftl.host_write(64 + rng.below(640), 1, streams - 1);  // colder
      }
    }
    return ftl.stats().internal_wa();
  };
  const double separated = run(2);
  const double funneled = run(1);
  EXPECT_LE(separated, funneled);
}

TEST(FtlTest, WearTracksErases) {
  Ftl ftl(small_ftl());
  Rng rng(13);
  for (int i = 0; i < 30000; ++i) {
    ftl.host_write(rng.below(1024), 1, 0);
  }
  const Ftl::WearStats w = ftl.wear();
  EXPECT_GT(w.mean_erases, 0.0);
  EXPECT_GE(w.max_erases, w.min_erases);
}

TEST(FtlTest, TrimReducesInternalWa) {
  auto run = [](bool use_trim) {
    Ftl ftl(small_ftl());
    Rng rng(17);
    // Circular log over the whole space: write 64-page extents, and (when
    // trimming) discard the extent before rewriting it.
    std::uint64_t cursor = 0;
    for (int i = 0; i < 2000; ++i) {
      if (use_trim) ftl.trim(cursor, 16);
      ftl.host_write(cursor, 16, 0);
      cursor = (cursor + 16) % 1024;
    }
    return ftl.stats().internal_wa();
  };
  EXPECT_LE(run(true), run(false));
}

}  // namespace
}  // namespace adapt::flash

namespace adapt::array {
namespace {

AddressedArrayConfig small_addressed() {
  AddressedArrayConfig c;
  c.num_devices = 4;
  c.chunk_bytes = 16 * 1024;  // 4 pages
  c.page_bytes = 4096;
  c.num_streams = 4;
  c.data_chunks = 300;
  c.device_over_provision = 0.3;
  return c;
}

TEST(AddressedArrayTest, GeometryChecks) {
  AddressedArray arr(small_addressed());
  EXPECT_EQ(arr.chunk_pages(), 4u);
  EXPECT_EQ(arr.data_columns(), 3u);
}

TEST(AddressedArrayTest, RejectsBadConfig) {
  AddressedArrayConfig c = small_addressed();
  c.num_devices = 1;
  EXPECT_THROW(AddressedArray a(c), std::invalid_argument);
  c = small_addressed();
  c.chunk_bytes = 1000;  // not a multiple of the page size
  EXPECT_THROW(AddressedArray a(c), std::invalid_argument);
}

TEST(AddressedArrayTest, WritesTouchDataAndParity) {
  AddressedArray arr(small_addressed());
  arr.write_chunk(0, 0);
  EXPECT_EQ(arr.stats().data_chunk_writes, 1u);
  EXPECT_EQ(arr.stats().parity_chunk_writes, 1u);
  std::uint64_t pages = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    pages += arr.device(d).stats().host_pages;
  }
  EXPECT_EQ(pages, 8u);  // one data chunk + one parity chunk
}

TEST(AddressedArrayTest, ChunkBeyondSpaceThrows) {
  AddressedArray arr(small_addressed());
  EXPECT_THROW(arr.write_chunk(300, 0), std::out_of_range);
}

TEST(AddressedArrayTest, ParityRotatesAcrossDevices) {
  AddressedArray arr(small_addressed());
  // Write one chunk in each of the first 8 stripes; parity must land on
  // different devices over time (left-symmetric rotation).
  for (std::uint64_t stripe = 0; stripe < 8; ++stripe) {
    arr.write_chunk(stripe * arr.data_columns(), 0);
  }
  std::uint32_t devices_touched = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    if (arr.device(d).stats().host_pages > 0) ++devices_touched;
  }
  EXPECT_EQ(devices_touched, 4u);
}

TEST(AddressedArrayTest, PartialWriteSmallerThanChunk) {
  AddressedArray arr(small_addressed());
  arr.write_partial(0, 1, 2, 0);
  std::uint64_t pages = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    pages += arr.device(d).stats().host_pages;
  }
  EXPECT_EQ(pages, 6u);  // 2 data pages + 4 parity pages
  EXPECT_THROW(arr.write_partial(0, 3, 2, 0), std::invalid_argument);
}

TEST(AddressedArrayTest, TrimForwardsToDevices) {
  AddressedArrayConfig c = small_addressed();
  AddressedArray arr(c);
  arr.write_chunk(5, 0);
  arr.trim_chunks(5, 1);
  EXPECT_EQ(arr.stats().trims, 1u);
  std::uint64_t trimmed = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    trimmed += arr.device(d).stats().trimmed_pages;
  }
  EXPECT_EQ(trimmed, 4u);
}

TEST(AddressedArrayTest, TrimDisabledIsNoop) {
  AddressedArrayConfig c = small_addressed();
  c.trim_enabled = false;
  AddressedArray arr(c);
  arr.write_chunk(5, 0);
  arr.trim_chunks(5, 1);
  EXPECT_EQ(arr.stats().trims, 0u);
}

TEST(AddressedArrayTest, OverwriteChurnRaisesInternalWa) {
  AddressedArray arr(small_addressed());
  Rng rng(19);
  for (int i = 0; i < 12000; ++i) {
    arr.write_chunk(rng.below(300), 0);
  }
  EXPECT_GE(arr.device_internal_wa(), 1.0);
}

}  // namespace
}  // namespace adapt::array
