// Rule-engine tests for adapt_lint (src/lint). Two layers:
//
//  * Teeth tests — every rule must fire on a minimal violating source and
//    stay silent on the compliant variant, so the repo-wide zero-findings
//    ctest gate cannot rot into "the linter matches nothing".
//  * A randomized planted-violation test — a seeded adapt::Rng generates
//    source files with a known set of violations scattered through decoy
//    code, and the engine must report exactly that set (same seed, same
//    findings: the engine is pure string processing).
#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace adapt::lint {
namespace {

/// Findings filtered to one rule (the synthetic sources below often trip
/// scoped rules like header-hygiene only when asked to).
std::vector<Finding> of_rule(const std::vector<Finding>& all,
                             std::string_view rule) {
  std::vector<Finding> out;
  for (const Finding& f : all) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

TEST(LintStripTest, RemovesCommentsAndStringsPreservingLines) {
  const std::string src =
      "int a; // line comment with std::mutex\n"
      "/* block\n"
      "   comment */ int b;\n"
      "const char* s = \"std::thread in a string\";\n"
      "char c = 'x';\n";
  const std::string stripped = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("std::mutex"), std::string::npos);
  EXPECT_EQ(stripped.find("std::thread"), std::string::npos);
  EXPECT_EQ(stripped.find("comment"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintStripTest, HandlesEscapedQuotes) {
  const std::string src = "const char* s = \"a \\\" std::mutex b\"; int x;\n";
  const std::string stripped = strip_comments_and_strings(src);
  EXPECT_EQ(stripped.find("std::mutex"), std::string::npos);
  EXPECT_NE(stripped.find("int x;"), std::string::npos);
}

// ---------------------------------------------------------------------------
// hot-alloc

TEST(LintHotAllocTest, FiresOnAllocationInHotBody) {
  const auto findings = of_rule(
      lint_source("src/lss/x.cpp",
                  "ADAPT_HOT void f() {\n  scratch_.push_back(1);\n}\n"),
      kRuleHotAlloc);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("push_back"), std::string::npos);
}

TEST(LintHotAllocTest, FiresOnNewInHotBody) {
  const auto findings = of_rule(
      lint_source("src/lss/x.cpp",
                  "ADAPT_HOT int* f() { return new int(3); }\n"),
      kRuleHotAlloc);
  ASSERT_EQ(findings.size(), 1u);
}

TEST(LintHotAllocTest, SilentOnUnmarkedFunctionAndOutlinedSlowPath) {
  const auto findings = of_rule(
      lint_source("src/lss/x.cpp",
                  "void slow() { scratch_.push_back(1); }\n"
                  "ADAPT_HOT void fast() { if (full()) slow(); }\n"),
      kRuleHotAlloc);
  EXPECT_TRUE(findings.empty());
}

TEST(LintHotAllocTest, WordBoundariesDoNotMatchLookalikes) {
  // insert_or_assign must not trip `insert` or `assign`; renew_lease must
  // not trip `new`.
  const auto findings = of_rule(
      lint_source("src/lss/x.cpp",
                  "ADAPT_HOT void f() {\n"
                  "  shadow_.insert_or_assign(lba, loc);\n"
                  "  renew_lease();\n"
                  "}\n"),
      kRuleHotAlloc);
  EXPECT_TRUE(findings.empty());
}

TEST(LintHotAllocTest, SkipsTheMacroDefinitionItself) {
  const auto findings = of_rule(
      lint_source("src/common/annotations.h",
                  "#define ADAPT_HOT\n"
                  "void unrelated() { v.push_back(1); }\n"),
      kRuleHotAlloc);
  EXPECT_TRUE(findings.empty());
}

TEST(LintHotAllocTest, AllowCommentSuppressesOnLineAndLineAbove) {
  const auto same_line = of_rule(
      lint_source("src/lss/x.cpp",
                  "ADAPT_HOT void f() {\n"
                  "  s_.push_back(1);  // ADAPT_LINT_ALLOW(hot-alloc)\n"
                  "}\n"),
      kRuleHotAlloc);
  EXPECT_TRUE(same_line.empty());
  const auto line_above = of_rule(
      lint_source("src/lss/x.cpp",
                  "ADAPT_HOT void f() {\n"
                  "  // reserved at construction: ADAPT_LINT_ALLOW(hot-alloc)\n"
                  "  s_.push_back(1);\n"
                  "}\n"),
      kRuleHotAlloc);
  EXPECT_TRUE(line_above.empty());
  const auto wrong_rule = of_rule(
      lint_source("src/lss/x.cpp",
                  "ADAPT_HOT void f() {\n"
                  "  s_.push_back(1);  // ADAPT_LINT_ALLOW(nondeterminism)\n"
                  "}\n"),
      kRuleHotAlloc);
  EXPECT_EQ(wrong_rule.size(), 1u);
}

// ---------------------------------------------------------------------------
// trace-emit-guard

TEST(LintEmitGuardTest, FiresOnUnguardedEmit) {
  const auto findings = of_rule(
      lint_source("src/lss/x.cpp",
                  "void f() {\n  emit(trace_, TraceEvent{});\n}\n"),
      kRuleTraceEmitGuard);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintEmitGuardTest, SilentOnGuardedEmit) {
  const auto findings = of_rule(
      lint_source("src/lss/x.cpp",
                  "void f() {\n"
                  "  if (trace_ != nullptr) {\n"
                  "    emit(trace_, TraceEvent{});\n"
                  "  }\n"
                  "}\n"),
      kRuleTraceEmitGuard);
  EXPECT_TRUE(findings.empty());
}

TEST(LintEmitGuardTest, SinkLayerFilesAreExempt) {
  const std::string body = "void f() { emit(trace_, e); }\n";
  EXPECT_TRUE(of_rule(lint_source("src/lss/trace_sink.h", body),
                      kRuleTraceEmitGuard)
                  .empty());
  EXPECT_TRUE(
      of_rule(lint_source("src/obs/trace_log.cpp", body), kRuleTraceEmitGuard)
          .empty());
  EXPECT_FALSE(
      of_rule(lint_source("src/lss/engine.cpp", body), kRuleTraceEmitGuard)
          .empty());
}

TEST(LintEmitGuardTest, IdentifiersContainingEmitDoNotMatch) {
  const auto findings = of_rule(
      lint_source("src/lss/x.cpp", "void f() { submit(task); re_emit_x(); }\n"),
      kRuleTraceEmitGuard);
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// naked-threading

TEST(LintThreadingTest, FiresOutsideCommonAndNotInside) {
  const std::string body = "std::mutex mu;\nstd::thread worker;\n";
  const auto outside =
      of_rule(lint_source("src/sim/experiment.cpp", body),
              kRuleNakedThreading);
  EXPECT_EQ(outside.size(), 2u);
  EXPECT_TRUE(
      of_rule(lint_source("src/common/sync.h", body), kRuleNakedThreading)
          .empty());
}

TEST(LintThreadingTest, ThisThreadAndIncludesDoNotMatch) {
  const auto findings = of_rule(
      lint_source("src/proto/prototype.cpp",
                  "#include <thread>\n"
                  "void f() { std::this_thread::sleep_for(d); }\n"),
      kRuleNakedThreading);
  EXPECT_TRUE(findings.empty());
}

TEST(LintThreadingTest, TokensInCommentsAndStringsAreIgnored) {
  const auto findings = of_rule(
      lint_source("src/lss/x.cpp",
                  "// std::mutex is banned here\n"
                  "const char* msg = \"std::thread\";\n"),
      kRuleNakedThreading);
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// nondeterminism

TEST(LintNondeterminismTest, FiresOnEntropySources) {
  const auto findings = of_rule(
      lint_source("src/sim/x.cpp",
                  "int a = rand();\n"
                  "std::random_device rd;\n"
                  "std::mt19937 gen;\n"
                  "long t = time(nullptr);\n"),
      kRuleNondeterminism);
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintNondeterminismTest, RngModuleIsExemptAndDerivedNamesDoNotMatch) {
  EXPECT_TRUE(of_rule(lint_source("src/common/rng.h", "int a = rand();\n"),
                      kRuleNondeterminism)
                  .empty());
  // advance_time( and vtime_ contain "time" but are not calls to time().
  const auto findings = of_rule(
      lint_source("src/lss/engine.cpp",
                  "void f() { advance_time(now); runtime_check(); }\n"),
      kRuleNondeterminism);
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// header-hygiene

TEST(LintHeaderHygieneTest, FiresOnMissingPragmaAndMissingInclude) {
  const auto findings =
      lint_source("src/lss/x.h", "std::vector<int> v;\n");
  const auto hygiene = of_rule(findings, kRuleHeaderHygiene);
  ASSERT_EQ(hygiene.size(), 2u);
  EXPECT_NE(hygiene[0].message.find("#pragma once"), std::string::npos);
  EXPECT_NE(hygiene[1].message.find("<vector>"), std::string::npos);
}

TEST(LintHeaderHygieneTest, SilentWhenIncludesArePresent) {
  const auto findings = of_rule(
      lint_source("src/lss/x.h",
                  "#pragma once\n#include <vector>\nstd::vector<int> v;\n"),
      kRuleHeaderHygiene);
  EXPECT_TRUE(findings.empty());
}

TEST(LintHeaderHygieneTest, EverySrcHeaderIsInScopeButNotSources) {
  const std::string body = "std::vector<int> v;\n";
  // The rule started lss-only and now covers every src/ header.
  EXPECT_FALSE(
      of_rule(lint_source("src/obs/x.h", body), kRuleHeaderHygiene).empty());
  EXPECT_TRUE(
      of_rule(lint_source("src/lss/x.cpp", body), kRuleHeaderHygiene)
          .empty());
  EXPECT_TRUE(
      of_rule(lint_source("bench/x.h", body), kRuleHeaderHygiene).empty());
}

TEST(LintHeaderHygieneTest, StringViewDoesNotRequireString) {
  const auto findings = of_rule(
      lint_source("src/lss/x.h",
                  "#pragma once\n#include <string_view>\n"
                  "std::string_view name();\n"),
      kRuleHeaderHygiene);
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// findings JSON

TEST(LintJsonTest, ReportValidatesAndTamperedSchemaThrows) {
  Result result;
  result.files_scanned = 2;
  result.findings.push_back(
      Finding{std::string(kRuleHotAlloc), "src/lss/x.cpp", 7,
              "allocation call 'push_back' inside an ADAPT_HOT function "
              "body"});
  const std::string json = findings_json(result);
  EXPECT_NO_THROW(validate_lint_json(json));
  std::string tampered = json;
  const std::size_t at = tampered.find("adapt-lint-v1");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 13, "adapt-lint-v9");
  EXPECT_THROW(validate_lint_json(tampered), std::invalid_argument);
  EXPECT_THROW(validate_lint_json("[]"), std::invalid_argument);
}

TEST(LintJsonTest, EmptyReportValidates) {
  Result result;
  result.files_scanned = 0;
  EXPECT_NO_THROW(validate_lint_json(findings_json(result)));
}

// ---------------------------------------------------------------------------
// Randomized planted-violation sweep: build a synthetic file from decoy
// and violation snippets chosen by a seeded Rng, track the expected
// (rule, line) set, and require the engine to report exactly that set.

struct Snippet {
  std::string text;         ///< one line, no trailing newline
  std::string_view rule;    ///< empty for decoys
};

std::vector<Snippet> snippet_menu() {
  return {
      // Decoys: legal code that skirts every rule's tokens.
      {"int counter_ = 0;", {}},
      {"void touch() { counter_ += 1; }", {}},
      {"// comment mentioning std::mutex and rand()", {}},
      {"const char* label = \"emit( inside a string\";", {}},
      // No decoy or violation may contain "nullptr": the emit-guard rule's
      // back-window heuristic would treat it as the guard for a later
      // planted unguarded emit (correct engine behaviour, wrong test model).
      {"void renew_lease() { advance_time(7); }", {}},
      {"ADAPT_HOT int peek() { return counter_; }", {}},
      {"void note() { if (armed_) { record(7); } }", {}},
      // Violations, one line each so the expected line is the plant line.
      {"ADAPT_HOT void hot_bad() { scratch_.push_back(1); }", kRuleHotAlloc},
      {"ADAPT_HOT char* hot_new() { return new char; }", kRuleHotAlloc},
      {"void unguarded() { emit(trace_, e); }", kRuleTraceEmitGuard},
      {"std::mutex naked_mu_;", kRuleNakedThreading},
      {"std::thread naked_worker_;", kRuleNakedThreading},
      {"int entropy() { return rand(); }", kRuleNondeterminism},
      {"long stamp() { return time(0); }", kRuleNondeterminism},
  };
}

TEST(LintRandomizedTest, ReportsExactlyThePlantedViolations) {
  const std::vector<Snippet> menu = snippet_menu();
  Rng rng(0xADA97ULL);  // fixed seed: deterministic like everything else
  for (int round = 0; round < 20; ++round) {
    std::string source;
    std::set<std::pair<std::string, std::size_t>> expected;
    const std::size_t lines = 10 + rng() % 40;
    std::size_t line = 1;
    for (std::size_t i = 0; i < lines; ++i, ++line) {
      const Snippet& pick = menu[rng() % menu.size()];
      source += pick.text;
      source += '\n';
      if (!pick.rule.empty()) {
        expected.emplace(std::string(pick.rule), line);
      }
    }
    std::set<std::pair<std::string, std::size_t>> got;
    for (const Finding& f : lint_source("src/lss/gen.cpp", source)) {
      got.emplace(f.rule, f.line);
    }
    EXPECT_EQ(got, expected) << "round " << round << " source:\n" << source;
  }
}

}  // namespace
}  // namespace adapt::lint
