// Differential and regression tests for the incremental GC victim index:
// a randomized churn of seal / invalidate / free notifications is applied
// to every policy while a scan-based reference (replicating the seed
// implementation, which rebuilt an ascending-id candidate list per call)
// checks each selection; plus a fixed-seed end-to-end run whose LssMetrics
// are pinned from the pre-index implementation.
#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lss/victim_policy.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace adapt::lss {
namespace {

constexpr std::uint32_t kBlocks = 32;

std::vector<SegmentId> candidates_of(const std::vector<Segment>& segments) {
  std::vector<SegmentId> c;
  for (SegmentId id = 0; id < segments.size(); ++id) {
    if (!segments[id].free && segments[id].sealed) c.push_back(id);
  }
  return c;
}

SegmentId scan_greedy(const std::vector<SegmentId>& candidates,
                      const std::vector<Segment>& segments) {
  SegmentId best = kInvalidSegment;
  std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
  for (SegmentId id : candidates) {
    if (segments[id].valid_count < best_valid) {
      best_valid = segments[id].valid_count;
      best = id;
    }
  }
  return best;
}

double cb_score(const Segment& seg, VTime now) {
  const double u = seg.utilization();
  const double age =
      static_cast<double>(now >= seg.seal_vtime ? now - seg.seal_vtime : 0) +
      1.0;
  return (1.0 - u) * age / (1.0 + u);
}

SegmentId scan_random(const std::vector<SegmentId>& candidates, Rng& rng) {
  if (candidates.empty()) return kInvalidSegment;
  return candidates[rng.below(candidates.size())];
}

SegmentId scan_d_choice(const std::vector<SegmentId>& candidates,
                        const std::vector<Segment>& segments,
                        std::uint32_t d, Rng& rng) {
  if (candidates.empty()) return kInvalidSegment;
  SegmentId best = kInvalidSegment;
  std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t i = 0; i < d; ++i) {
    const SegmentId id = candidates[rng.below(candidates.size())];
    if (segments[id].valid_count < best_valid) {
      best_valid = segments[id].valid_count;
      best = id;
    }
  }
  return best;
}

/// Greedy over the `window` oldest candidates. Seal vtimes in the harness
/// are unique (monotonic counter), so sorting by them is unambiguous.
SegmentId scan_windowed(const std::vector<SegmentId>& candidates,
                        const std::vector<Segment>& segments,
                        std::uint32_t window) {
  if (candidates.empty()) return kInvalidSegment;
  std::vector<SegmentId> sorted(candidates);
  std::sort(sorted.begin(), sorted.end(), [&](SegmentId a, SegmentId b) {
    return segments[a].seal_vtime < segments[b].seal_vtime;
  });
  const std::size_t w = std::min<std::size_t>(window, sorted.size());
  SegmentId best = kInvalidSegment;
  std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t i = 0; i < w; ++i) {
    if (segments[sorted[i]].valid_count < best_valid) {
      best_valid = segments[sorted[i]].valid_count;
      best = sorted[i];
    }
  }
  return best;
}

/// Random pool churn with a fixed seed: seals free segments with random
/// valid counts, invalidates live blocks of sealed segments, and frees
/// sealed segments, broadcasting every transition to the attached
/// policies — the same notification stream LssEngine would emit.
class ChurnHarness {
 public:
  ChurnHarness(std::uint32_t total_segments, std::uint64_t seed)
      : rng_(seed) {
    segments_.resize(total_segments);
    for (Segment& s : segments_) s.reset(kBlocks);
  }

  void attach(VictimPolicy& policy) {
    policy.bind_pool(static_cast<std::uint32_t>(segments_.size()), kBlocks);
    policies_.push_back(&policy);
  }

  const std::vector<Segment>& segments() const { return segments_; }

  void step() {
    const std::uint64_t r = rng_.below(100);
    if (r < 40) {
      seal_random_free();
    } else if (r < 90) {
      invalidate_random();
    } else {
      free_random_sealed();
    }
  }

 private:
  template <typename Pred>
  SegmentId pick(Pred pred) {
    std::vector<SegmentId> matching;
    for (SegmentId id = 0; id < segments_.size(); ++id) {
      if (pred(segments_[id])) matching.push_back(id);
    }
    if (matching.empty()) return kInvalidSegment;
    return matching[rng_.below(matching.size())];
  }

  void seal_random_free() {
    const SegmentId id = pick([](const Segment& s) { return s.free; });
    if (id == kInvalidSegment) return;
    Segment& seg = segments_[id];
    seg.free = false;
    seg.sealed = true;
    seg.write_ptr = kBlocks;
    seg.valid_count = static_cast<std::uint32_t>(rng_.below(kBlocks + 1));
    seg.seal_vtime = next_vtime_++;
    for (VictimPolicy* p : policies_) {
      p->on_seal(id, seg.valid_count, seg.seal_vtime);
    }
  }

  void invalidate_random() {
    const SegmentId id = pick([](const Segment& s) {
      return s.sealed && !s.free && s.valid_count > 0;
    });
    if (id == kInvalidSegment) return;
    Segment& seg = segments_[id];
    const std::uint32_t old_valid = seg.valid_count--;
    for (VictimPolicy* p : policies_) {
      p->on_valid_delta(id, old_valid, seg.valid_count);
    }
  }

  void free_random_sealed() {
    const SegmentId id = pick(
        [](const Segment& s) { return s.sealed && !s.free; });
    if (id == kInvalidSegment) return;
    segments_[id].reset(kBlocks);
    for (VictimPolicy* p : policies_) p->on_free(id);
  }

  std::vector<Segment> segments_;
  std::vector<VictimPolicy*> policies_;
  Rng rng_;
  VTime next_vtime_ = 1;
};

TEST(VictimIndexDifferentialTest, GreedyMatchesScanUnderChurn) {
  ChurnHarness harness(512, /*seed=*/0xfeedbeef);
  auto greedy = make_greedy();
  harness.attach(*greedy);
  Rng sel_rng(1);
  for (int i = 0; i < 6000; ++i) {
    harness.step();
    if (i % 5 != 0) continue;
    const auto candidates = candidates_of(harness.segments());
    const SegmentId expected = scan_greedy(candidates, harness.segments());
    const SegmentId got =
        greedy->select(harness.segments(), /*now=*/i, sel_rng);
    ASSERT_EQ(got, expected) << "step " << i;
    if (got != kInvalidSegment) {
      // The selection-equivalence guarantee: pool-wide minimal valid count.
      for (SegmentId id : candidates) {
        ASSERT_LE(harness.segments()[got].valid_count,
                  harness.segments()[id].valid_count);
      }
    }
  }
}

TEST(VictimIndexDifferentialTest, RandomAndDChoiceMatchScanExactly) {
  ChurnHarness harness(512, /*seed=*/0xabcdef01);
  auto random = make_random();
  auto d_choice = make_d_choice(8);
  harness.attach(*random);
  harness.attach(*d_choice);
  // Identically seeded selection streams: the indexed order-statistic
  // lookup must consume the same draws as the seed's candidates[k].
  Rng rng_indexed(77);
  Rng rng_scan(77);
  for (int i = 0; i < 4000; ++i) {
    harness.step();
    if (i % 7 != 0) continue;
    const auto candidates = candidates_of(harness.segments());
    ASSERT_EQ(random->select(harness.segments(), i, rng_indexed),
              scan_random(candidates, rng_scan))
        << "step " << i;
    ASSERT_EQ(d_choice->select(harness.segments(), i, rng_indexed),
              scan_d_choice(candidates, harness.segments(), 8, rng_scan))
        << "step " << i;
  }
}

TEST(VictimIndexDifferentialTest, CostBenefitAchievesMaximalScore) {
  ChurnHarness harness(512, /*seed=*/0x5eedc0de);
  auto cb = make_cost_benefit();
  harness.attach(*cb);
  Rng sel_rng(1);
  for (int i = 0; i < 4000; ++i) {
    harness.step();
    if (i % 7 != 0) continue;
    const auto candidates = candidates_of(harness.segments());
    const VTime now = 100000;
    const SegmentId got = cb->select(harness.segments(), now, sel_rng);
    if (candidates.empty()) {
      ASSERT_EQ(got, kInvalidSegment);
      continue;
    }
    double best = -1.0;
    for (SegmentId id : candidates) {
      best = std::max(best, cb_score(harness.segments()[id], now));
    }
    ASSERT_NE(got, kInvalidSegment);
    ASSERT_DOUBLE_EQ(cb_score(harness.segments()[got], now), best)
        << "step " << i;
  }
}

TEST(VictimIndexDifferentialTest, WindowedMatchesScanWithUniqueSealTimes) {
  ChurnHarness harness(512, /*seed=*/0x12345678);
  auto windowed = make_windowed_greedy(16);
  harness.attach(*windowed);
  Rng sel_rng(1);
  for (int i = 0; i < 4000; ++i) {
    harness.step();
    if (i % 7 != 0) continue;
    const auto candidates = candidates_of(harness.segments());
    ASSERT_EQ(windowed->select(harness.segments(), i, sel_rng),
              scan_windowed(candidates, harness.segments(), 16))
        << "step " << i;
  }
}

// Full fixed-seed volume replay with policy=adapt, victim=greedy. The
// numbers are pinned from the seed scan-based implementation (pre-index);
// the incremental index must reproduce them bit-identically, proving the
// refactor is WA-neutral end to end.
TEST(VictimIndexRegressionTest, AdaptGreedyFixedSeedMetricsUnchanged) {
  trace::CloudVolumeModel model(trace::alibaba_profile(), /*seed=*/42);
  const trace::Volume volume = model.make_volume(/*volume_id=*/0,
                                                 /*fill_factor=*/3.0);
  ASSERT_EQ(volume.records.size(), 66314u);
  sim::SimConfig config;
  config.victim_policy = "greedy";
  config.seed = 42;
  const sim::VolumeResult r = sim::run_volume(volume, "adapt", config);
  const LssMetrics& m = r.metrics;
  EXPECT_EQ(m.user_blocks, 173331u);
  EXPECT_EQ(m.gc_blocks, 89754u);
  EXPECT_EQ(m.shadow_blocks, 10640u);
  EXPECT_EQ(m.padding_blocks, 146403u);
  EXPECT_EQ(m.gc_runs, 1370u);
  EXPECT_EQ(m.gc_migrated_blocks, 89754u);
  EXPECT_EQ(m.forced_lazy_flushes, 13u);
  EXPECT_EQ(m.rmw_flushes, 0u);
  EXPECT_EQ(m.read_blocks, 140561u);
  EXPECT_EQ(m.read_chunk_fetches, 47381u);
  EXPECT_EQ(m.read_buffer_hits, 449u);
  EXPECT_EQ(m.read_unmapped, 34479u);
  std::uint64_t sealed = 0, reclaimed = 0, full = 0, padded = 0;
  for (const GroupTraffic& g : m.groups) {
    sealed += g.segments_sealed;
    reclaimed += g.segments_reclaimed;
    full += g.full_flushes;
    padded += g.padded_flushes;
  }
  EXPECT_EQ(sealed, 1638u);
  EXPECT_EQ(reclaimed, 1370u);
  EXPECT_EQ(full, 12835u);
  EXPECT_EQ(padded, 13423u);
}

}  // namespace
}  // namespace adapt::lss
