// ShardedEngine tests: shard-count parsing, per-shard geometry derivation,
// the LBA modulo span-split, the 1-shard pass-through identity against a
// direct LssEngine, scheduling-independence of the batched parallel replay,
// merged-observer accounting, and the per-shard series merge.
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "lss/sharded_engine.h"
#include "lss/victim_policy.h"
#include "obs/series.h"
#include "test_support.h"

namespace adapt::lss {
namespace {

using testing::TwoGroupPolicy;
using testing::small_config;

/// small_config with a logical space big enough that a 4-way split still
/// validates (each shard needs op segments >= reserve + 2*groups + 2).
LssConfig sharded_config() {
  LssConfig c = small_config();
  c.logical_blocks = 2048;
  return c;
}

/// Factory building the same deterministic TwoGroupPolicy + greedy stack a
/// direct-engine test would use.
ShardParts two_group_parts(std::uint32_t /*shard_index*/,
                           const LssConfig& /*shard_config*/) {
  ShardParts parts;
  parts.policy = std::make_unique<TwoGroupPolicy>();
  parts.victim = make_greedy();
  return parts;
}

void expect_group_traffic_eq(const GroupTraffic& a, const GroupTraffic& b) {
  EXPECT_EQ(a.user_blocks, b.user_blocks);
  EXPECT_EQ(a.gc_blocks, b.gc_blocks);
  EXPECT_EQ(a.shadow_blocks, b.shadow_blocks);
  EXPECT_EQ(a.padding_blocks, b.padding_blocks);
  EXPECT_EQ(a.full_flushes, b.full_flushes);
  EXPECT_EQ(a.padded_flushes, b.padded_flushes);
  EXPECT_EQ(a.padded_fill_blocks, b.padded_fill_blocks);
  EXPECT_EQ(a.rmw_flushes, b.rmw_flushes);
  EXPECT_EQ(a.rmw_blocks, b.rmw_blocks);
  EXPECT_EQ(a.segments_sealed, b.segments_sealed);
  EXPECT_EQ(a.segments_reclaimed, b.segments_reclaimed);
}

void expect_metrics_eq(const LssMetrics& a, const LssMetrics& b) {
  EXPECT_EQ(a.user_blocks, b.user_blocks);
  EXPECT_EQ(a.gc_blocks, b.gc_blocks);
  EXPECT_EQ(a.shadow_blocks, b.shadow_blocks);
  EXPECT_EQ(a.padding_blocks, b.padding_blocks);
  EXPECT_EQ(a.gc_runs, b.gc_runs);
  EXPECT_EQ(a.gc_migrated_blocks, b.gc_migrated_blocks);
  EXPECT_EQ(a.forced_lazy_flushes, b.forced_lazy_flushes);
  EXPECT_EQ(a.rmw_flushes, b.rmw_flushes);
  EXPECT_EQ(a.rmw_blocks, b.rmw_blocks);
  EXPECT_EQ(a.rmw_read_blocks, b.rmw_read_blocks);
  EXPECT_EQ(a.read_blocks, b.read_blocks);
  EXPECT_EQ(a.read_chunk_fetches, b.read_chunk_fetches);
  EXPECT_EQ(a.read_buffer_hits, b.read_buffer_hits);
  EXPECT_EQ(a.read_unmapped, b.read_unmapped);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    expect_group_traffic_eq(a.groups[g], b.groups[g]);
  }
}

// ---------------------------------------------------------------------------
// parse_shard_count / shard_config
// ---------------------------------------------------------------------------

TEST(ParseShardCountTest, AcceptsDecimalCounts) {
  EXPECT_EQ(parse_shard_count("1"), 1u);
  EXPECT_EQ(parse_shard_count("4"), 4u);
  EXPECT_EQ(parse_shard_count("42"), 42u);
  EXPECT_EQ(parse_shard_count("4096"), kMaxShards);
}

TEST(ParseShardCountTest, RejectsMalformedText) {
  EXPECT_THROW(parse_shard_count(""), std::invalid_argument);
  EXPECT_THROW(parse_shard_count("0"), std::invalid_argument);
  EXPECT_THROW(parse_shard_count("4097"), std::invalid_argument);
  EXPECT_THROW(parse_shard_count("-1"), std::invalid_argument);
  EXPECT_THROW(parse_shard_count("+4"), std::invalid_argument);
  EXPECT_THROW(parse_shard_count(" 4"), std::invalid_argument);
  EXPECT_THROW(parse_shard_count("4x"), std::invalid_argument);
  EXPECT_THROW(parse_shard_count("4.0"), std::invalid_argument);
  // 11 digits: rejected by length before any overflow can occur.
  EXPECT_THROW(parse_shard_count("99999999999"), std::invalid_argument);
}

TEST(ShardConfigTest, DividesLogicalSpaceCeil) {
  LssConfig global = sharded_config();
  EXPECT_EQ(shard_config(global, 1).logical_blocks, 2048u);
  EXPECT_EQ(shard_config(global, 4).logical_blocks, 512u);
  global.logical_blocks = 2049;  // remainder: every shard gets the ceiling
  EXPECT_EQ(shard_config(global, 4).logical_blocks, 513u);
}

TEST(ShardConfigTest, PreservesEverythingButLogicalBlocks) {
  const LssConfig global = sharded_config();
  const LssConfig per_shard = shard_config(global, 4);
  EXPECT_EQ(per_shard.chunk_blocks, global.chunk_blocks);
  EXPECT_EQ(per_shard.segment_chunks, global.segment_chunks);
  EXPECT_EQ(per_shard.free_segment_reserve, global.free_segment_reserve);
  EXPECT_DOUBLE_EQ(per_shard.over_provision, global.over_provision);
}

TEST(ShardConfigTest, RejectsBadShardCounts) {
  const LssConfig global = sharded_config();
  EXPECT_THROW(shard_config(global, 0), std::invalid_argument);
  EXPECT_THROW(shard_config(global, kMaxShards + 1), std::invalid_argument);
  LssConfig tiny = global;
  tiny.logical_blocks = 3;
  EXPECT_THROW(shard_config(tiny, 4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// 1-shard pass-through identity
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, OneShardMatchesDirectEngineBitIdentically) {
  const LssConfig config = sharded_config();
  TwoGroupPolicy direct_policy;
  auto direct_victim = make_greedy();
  LssEngine direct(config, direct_policy, *direct_victim, nullptr,
                   /*seed=*/1);
  ShardedEngine sharded(config, 1, /*base_seed=*/1, two_group_parts);

  Rng rng(211);
  TimeUs now = 0;
  for (int i = 0; i < 12000; ++i) {
    now += rng.below(250);
    const std::uint64_t kind = rng.below(100);
    const Lba lba = rng.below(config.logical_blocks - 4);
    const auto blocks = static_cast<std::uint32_t>(1 + rng.below(4));
    if (kind < 70) {
      direct.write(lba, blocks, now);
      sharded.write(lba, blocks, now);
    } else if (kind < 85) {
      direct.read(lba, blocks, now);
      sharded.read(lba, blocks, now);
    } else if (kind < 95) {
      now += 200;
      direct.advance_time(now);
      sharded.advance_time(now);
    } else {
      const std::uint32_t watermark = config.free_segment_reserve + 3;
      direct.gc_step(now, watermark);
      sharded.gc_step(now, watermark);
    }
  }
  direct.flush_all();
  sharded.flush_all();

  expect_metrics_eq(sharded.merged_metrics(), direct.metrics());
  EXPECT_EQ(sharded.chunks_flushed(), direct.chunks_flushed());
  EXPECT_EQ(sharded.merged_segments_per_group(),
            direct.segments_per_group());
  // Same mapping, block by block: shard 0 at N == 1 is the whole space.
  for (Lba lba = 0; lba < config.logical_blocks; ++lba) {
    ASSERT_EQ(sharded.shard(0).locate(lba), direct.locate(lba))
        << "lba " << lba;
  }
  sharded.check_invariants(audit::Level::kFull);
}

// ---------------------------------------------------------------------------
// Span-split routing
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, SpanSplitCoversEveryBlockExactlyOnce) {
  const LssConfig config = sharded_config();
  ShardedEngine sharded(config, 4, /*base_seed=*/1, two_group_parts);
  EXPECT_EQ(sharded.per_shard_config().logical_blocks, 512u);

  // Spans chosen to start on every shard phase and to wrap several times.
  std::vector<bool> written(config.logical_blocks, false);
  Rng rng(223);
  std::uint64_t blocks_issued = 0;
  for (int i = 0; i < 4000; ++i) {
    const Lba lba = rng.below(config.logical_blocks - 9);
    const auto blocks = static_cast<std::uint32_t>(1 + rng.below(9));
    sharded.write(lba, blocks, 0);
    blocks_issued += blocks;
    for (Lba l = lba; l < lba + blocks; ++l) written[l] = true;
  }
  sharded.flush_all();

  // Every written global block is mapped on exactly the shard the modulo
  // partition assigns it; untouched blocks stay unmapped everywhere.
  for (Lba lba = 0; lba < config.logical_blocks; ++lba) {
    const LssEngine& owner = sharded.shard(sharded.shard_of(lba));
    ASSERT_EQ(owner.locate(sharded.local_of(lba)) != kNowhere, written[lba])
        << "lba " << lba;
  }
  EXPECT_EQ(sharded.merged_metrics().user_blocks, blocks_issued);
  sharded.check_invariants(audit::Level::kFull);
}

TEST(ShardedEngineTest, OutOfRangeOpsThrow) {
  ShardedEngine sharded(sharded_config(), 4, 1, two_group_parts);
  EXPECT_THROW(sharded.write(2047, 2, 0), std::out_of_range);
  EXPECT_THROW(sharded.read(2048, 1, 0), std::out_of_range);
  EXPECT_THROW(sharded.enqueue_write(2040, 16, 0), std::out_of_range);
}

TEST(ShardedEngineTest, FactoryContractEnforced) {
  EXPECT_THROW(ShardedEngine(sharded_config(), 2, 1, ShardFactory{}),
               std::invalid_argument);
  const auto null_policy = [](std::uint32_t, const LssConfig&) {
    ShardParts parts;
    parts.victim = make_greedy();
    return parts;  // policy left null
  };
  EXPECT_THROW(ShardedEngine(sharded_config(), 2, 1, null_policy),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Batched replay: queue split + scheduling independence
// ---------------------------------------------------------------------------

/// Drives one engine synchronously and two batched engines (inline replay
/// and a 4-thread pool) with the same op stream; all three must agree.
TEST(ShardedEngineTest, RunQueuedMatchesSyncReplayAnyScheduling) {
  const LssConfig config = sharded_config();
  ShardedEngine sync_engine(config, 4, 1, two_group_parts);
  ShardedEngine inline_engine(config, 4, 1, two_group_parts);
  ShardedEngine pooled_engine(config, 4, 1, two_group_parts);

  Rng rng(227);
  TimeUs now = 0;
  for (int i = 0; i < 8000; ++i) {
    now += rng.below(300);
    const Lba lba = rng.below(config.logical_blocks - 6);
    const auto blocks = static_cast<std::uint32_t>(1 + rng.below(6));
    if (rng.below(100) < 80) {
      sync_engine.write(lba, blocks, now);
      inline_engine.enqueue_write(lba, blocks, now);
      pooled_engine.enqueue_write(lba, blocks, now);
    } else {
      sync_engine.read(lba, blocks, now);
      inline_engine.enqueue_read(lba, blocks, now);
      pooled_engine.enqueue_read(lba, blocks, now);
    }
  }
  EXPECT_GT(inline_engine.queued_ops(), 0u);
  inline_engine.run_queued(nullptr);
  {
    ThreadPool pool(4);
    pooled_engine.run_queued(&pool);
  }
  EXPECT_EQ(inline_engine.queued_ops(), 0u);
  EXPECT_EQ(pooled_engine.queued_ops(), 0u);
  sync_engine.flush_all();
  inline_engine.flush_all();
  pooled_engine.flush_all();

  expect_metrics_eq(inline_engine.merged_metrics(),
                    sync_engine.merged_metrics());
  expect_metrics_eq(pooled_engine.merged_metrics(),
                    sync_engine.merged_metrics());
  EXPECT_EQ(pooled_engine.chunks_flushed(), sync_engine.chunks_flushed());
  pooled_engine.check_invariants(audit::Level::kFull);
}

TEST(ShardedEngineTest, MergedObserversSumShards) {
  const LssConfig config = sharded_config();
  ShardedEngine sharded(config, 4, 1, two_group_parts);
  Rng rng(229);
  for (int i = 0; i < 6000; ++i) {
    sharded.write(rng.below(config.logical_blocks), 1,
                  static_cast<TimeUs>(i) * 20);
  }
  sharded.flush_all();

  LssMetrics expected;
  std::vector<std::uint32_t> expected_segments;
  std::uint64_t expected_chunks = 0;
  for (std::uint32_t s = 0; s < sharded.shard_count(); ++s) {
    const LssEngine& shard = sharded.shard(s);
    expected.merge_from(shard.metrics());
    const auto counts = shard.segments_per_group();
    if (expected_segments.size() < counts.size()) {
      expected_segments.resize(counts.size(), 0);
    }
    for (std::size_t g = 0; g < counts.size(); ++g) {
      expected_segments[g] += counts[g];
    }
    expected_chunks += shard.chunks_flushed();
    // Every shard saw real traffic: the modulo partition spreads the load.
    EXPECT_GT(shard.metrics().user_blocks, 0u) << "shard " << s;
  }
  expect_metrics_eq(sharded.merged_metrics(), expected);
  EXPECT_EQ(sharded.merged_segments_per_group(), expected_segments);
  EXPECT_EQ(sharded.chunks_flushed(), expected_chunks);
}

// ---------------------------------------------------------------------------
// merge_series (the per-shard time-series merge used by run_volume)
// ---------------------------------------------------------------------------

obs::SeriesRow make_row(std::uint64_t vtime, TimeUs wall_us,
                        std::uint64_t user_blocks, double threshold) {
  obs::SeriesRow row;
  row.vtime = vtime;
  row.wall_us = wall_us;
  row.user_blocks = user_blocks;
  row.gc_blocks = user_blocks / 2;
  row.threshold = threshold;
  return row;
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(MergeSeriesTest, EmptyInputThrows) {
  EXPECT_THROW(obs::merge_series({}), std::invalid_argument);
}

TEST(MergeSeriesTest, SinglePartPassesThrough) {
  obs::TimeSeries part;
  part.window_blocks = 64;
  part.rows.push_back(make_row(64, 10, 64, 0.5));
  const obs::TimeSeries merged = obs::merge_series({std::move(part)});
  EXPECT_EQ(merged.window_blocks, 64u);
  ASSERT_EQ(merged.rows.size(), 1u);
  EXPECT_EQ(merged.rows[0].user_blocks, 64u);
}

TEST(MergeSeriesTest, SumsCountersMaxesWallAveragesThreshold) {
  obs::TimeSeries a;
  a.window_blocks = 64;
  a.rows.push_back(make_row(64, 10, 64, 0.25));
  a.rows.push_back(make_row(128, 20, 128, 0.75));
  obs::TimeSeries b;
  b.window_blocks = 64;
  b.rows.push_back(make_row(64, 15, 60, kNaN));
  b.rows.push_back(make_row(128, 18, 120, kNaN));

  const obs::TimeSeries merged =
      obs::merge_series({std::move(a), std::move(b)});
  EXPECT_EQ(merged.window_blocks, 128u);  // per-shard stride * shard count
  EXPECT_EQ(merged.downsamples, 0u);
  ASSERT_EQ(merged.rows.size(), 2u);
  EXPECT_EQ(merged.rows[0].user_blocks, 124u);
  EXPECT_EQ(merged.rows[0].gc_blocks, 62u);
  EXPECT_EQ(merged.rows[0].wall_us, 15u);   // max across shards
  EXPECT_DOUBLE_EQ(merged.rows[0].threshold, 0.25);  // NaN shard skipped
  EXPECT_EQ(merged.rows[1].wall_us, 20u);
  EXPECT_DOUBLE_EQ(merged.rows[1].threshold, 0.75);
}

TEST(MergeSeriesTest, AlignsStridesByRedownsampling) {
  // Part a never downsampled (stride 64, 4 rows); part b downsampled once
  // (stride 128, 2 rows). The merge must re-downsample a to rows 0 and 2.
  obs::TimeSeries a;
  a.window_blocks = 64;
  a.downsamples = 0;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    a.rows.push_back(make_row(64 * i, 10 * i, 64 * i, kNaN));
  }
  obs::TimeSeries b;
  b.window_blocks = 128;
  b.downsamples = 1;
  b.rows.push_back(make_row(128, 11, 128, kNaN));
  b.rows.push_back(make_row(256, 22, 256, kNaN));

  const obs::TimeSeries merged =
      obs::merge_series({std::move(a), std::move(b)});
  EXPECT_EQ(merged.downsamples, 1u);
  EXPECT_EQ(merged.window_blocks, 256u);  // (64 << 1) * 2 parts
  ASSERT_EQ(merged.rows.size(), 2u);
  // Kept rows of a are vtime 64 and 192 (indices 0 and 2).
  EXPECT_EQ(merged.rows[0].user_blocks, 64u + 128u);
  EXPECT_EQ(merged.rows[1].user_blocks, 192u + 256u);
  EXPECT_TRUE(std::isnan(merged.rows[0].threshold));
}

TEST(MergeSeriesTest, RejectsMisalignedOrCorruptParts) {
  obs::TimeSeries a;
  a.window_blocks = 64;
  obs::TimeSeries mismatched;
  mismatched.window_blocks = 96;  // different base stride: cannot align
  EXPECT_THROW(obs::merge_series({a, mismatched}), std::invalid_argument);

  obs::TimeSeries corrupt;
  corrupt.window_blocks = 8;
  corrupt.downsamples = 5;  // 8 >> 5 == 0: impossible header
  EXPECT_THROW(obs::merge_series({a, corrupt}), std::invalid_argument);

  obs::TimeSeries zero;
  zero.window_blocks = 0;
  EXPECT_THROW(obs::merge_series({a, zero}), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::lss
