// Event tracing + write-provenance attribution: the Log2Histogram, the
// TraceLog ring and its Chrome-trace export (deterministic and
// byte-identical across repeat runs), provenance matrices satisfying the
// PR-2 write-accounting identity from the manifest alone, the
// adapt_compare regression gate, and the passivity guarantee — attaching
// trace sinks must not perturb the pinned fixed-seed metrics.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/histogram.h"
#include "lss/trace_sink.h"
#include "obs/compare.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/provenance.h"
#include "obs/trace_log.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace adapt {
namespace {

// ---------------------------------------------------------------------------
// Log2Histogram
// ---------------------------------------------------------------------------

TEST(Log2HistogramTest, BucketsByBitWidth) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.max_value(), 1024u);
  EXPECT_EQ(h.bucket(0), 1u);  // zeros
  EXPECT_EQ(h.bucket(1), 1u);  // [1, 2)
  EXPECT_EQ(h.bucket(2), 2u);  // [2, 4)
  EXPECT_EQ(h.bucket(11), 1u);  // [1024, 2048)
  EXPECT_EQ(Log2Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_floor(11), 1024u);
}

TEST(Log2HistogramTest, MergeSumsBucketsAndKeepsMax) {
  Log2Histogram a;
  Log2Histogram b;
  a.add(7);
  b.add(7);
  b.add(1u << 20);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket(3), 2u);
  EXPECT_EQ(a.max_value(), 1u << 20);
  EXPECT_EQ(a.sum(), 14u + (1u << 20));
}

TEST(Log2HistogramTest, JsonRoundTripsThroughValidator) {
  Log2Histogram h;
  h.add(0);
  h.add(5);
  h.add(5);
  std::string out = "{";
  obs::append_histogram_json(out, "lifetime", h);
  out += '}';
  const obs::json::Value doc = obs::json::parse(out);
  EXPECT_NO_THROW(
      obs::validate_histogram_json(*doc.find("lifetime"), "lifetime"));
  // A bucket count that no longer sums to the total is rejected.
  std::string bad = out;
  const std::size_t pos = bad.find("\"count\":3");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 9, "\"count\":4");
  const obs::json::Value tampered = obs::json::parse(bad);
  EXPECT_THROW(
      obs::validate_histogram_json(*tampered.find("lifetime"), "lifetime"),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// TraceLog ring + merge
// ---------------------------------------------------------------------------

lss::TraceEvent user_write(std::uint64_t ts, std::uint64_t lba) {
  lss::TraceEvent e;
  e.kind = lss::TraceEventKind::kUserWrite;
  e.ts = ts;
  e.a = lba;
  return e;
}

TEST(TraceLogTest, RejectsZeroCapacity) {
  obs::TraceLogConfig config;
  config.capacity = 0;
  EXPECT_THROW(obs::TraceLog log(config), std::invalid_argument);
}

TEST(TraceLogTest, RingOverwritesOldestAndCountsDropped) {
  obs::TraceLogConfig config;
  config.capacity = 4;
  obs::TraceLog log(config);
  for (std::uint64_t i = 0; i < 10; ++i) log.record(user_write(i, i));
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto events = log.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: 6, 7, 8, 9.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].ts, 6 + i);
}

TEST(TraceLogTest, MergeOrdersByTsThenShardAndSkipsNulls) {
  obs::TraceLogConfig config;
  config.capacity = 8;
  obs::TraceLog shard0(config);
  obs::TraceLog shard1(config);
  shard0.record(user_write(5, 0));
  shard0.record(user_write(5, 1));  // same ts: per-shard order preserved
  shard1.record(user_write(3, 2));
  const obs::TraceData data =
      obs::merge_trace_logs({&shard0, nullptr, &shard1});
  EXPECT_EQ(data.shard_count, 3u);
  EXPECT_EQ(data.recorded, 3u);
  ASSERT_EQ(data.entries.size(), 3u);
  EXPECT_EQ(data.entries[0].event.ts, 3u);
  EXPECT_EQ(data.entries[0].shard, 2u);
  EXPECT_EQ(data.entries[1].event.a, 0u);
  EXPECT_EQ(data.entries[2].event.a, 1u);
}

// A wrapped ring merges only its retained suffix, but the drop accounting
// must survive the merge per shard — the manifest/export split relies on
// per_shard_dropped attributing losses to the shard that overflowed, not
// smearing them across the volume.
TEST(TraceLogTest, MergeAfterRingWrapKeepsPerShardDropCounts) {
  obs::TraceLogConfig small;
  small.capacity = 4;
  obs::TraceLogConfig large;
  large.capacity = 64;
  obs::TraceLog wrapped(small);
  obs::TraceLog intact(large);
  for (std::uint64_t i = 0; i < 10; ++i) wrapped.record(user_write(i, i));
  intact.record(user_write(100, 7));
  const obs::TraceData data = obs::merge_trace_logs({&wrapped, &intact});
  EXPECT_EQ(data.recorded, 11u);
  EXPECT_EQ(data.dropped, 6u);
  ASSERT_EQ(data.per_shard_dropped.size(), 2u);
  EXPECT_EQ(data.per_shard_dropped[0], 6u);
  EXPECT_EQ(data.per_shard_dropped[1], 0u);
  // Only the retained suffix (ts 6..9) plus the intact shard's event merge,
  // oldest first.
  ASSERT_EQ(data.entries.size(), 5u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(data.entries[i].event.ts, 6 + i);
    EXPECT_EQ(data.entries[i].shard, 0u);
  }
  EXPECT_EQ(data.entries[4].event.ts, 100u);
}

// An attached-but-empty shard ring among non-empty ones must neither skew
// the ordering nor lose its per_shard_dropped slot (unlike a nullptr
// shard, it was present — it just recorded nothing).
TEST(TraceLogTest, MergeWithEmptyShardAmongNonEmpty) {
  obs::TraceLogConfig config;
  config.capacity = 8;
  obs::TraceLog a(config);
  obs::TraceLog empty(config);
  obs::TraceLog b(config);
  a.record(user_write(2, 0));
  b.record(user_write(1, 1));
  const obs::TraceData data = obs::merge_trace_logs({&a, &empty, &b});
  EXPECT_EQ(data.shard_count, 3u);
  EXPECT_EQ(data.recorded, 2u);
  EXPECT_EQ(data.dropped, 0u);
  ASSERT_EQ(data.per_shard_dropped.size(), 3u);
  EXPECT_EQ(data.per_shard_dropped[1], 0u);
  ASSERT_EQ(data.entries.size(), 2u);
  EXPECT_EQ(data.entries[0].shard, 2u);  // ts 1 first
  EXPECT_EQ(data.entries[1].shard, 0u);
}

// The merge order is EXACTLY (ts, shard, seq): equal timestamps order by
// shard index, and within one shard by recording sequence — deterministic
// regardless of the vector the shards arrive in.
TEST(TraceLogTest, MergeTieBreaksByTsShardSeq) {
  obs::TraceLogConfig config;
  config.capacity = 8;
  obs::TraceLog shard0(config);
  obs::TraceLog shard1(config);
  // All four events share ts=5. lba encodes the expected final order.
  shard1.record(user_write(5, 2));
  shard1.record(user_write(5, 3));
  shard0.record(user_write(5, 0));
  shard0.record(user_write(5, 1));
  const obs::TraceData data = obs::merge_trace_logs({&shard0, &shard1});
  ASSERT_EQ(data.entries.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(data.entries[i].event.a, i) << "position " << i;
  }
  EXPECT_EQ(data.entries[0].shard, 0u);
  EXPECT_EQ(data.entries[1].seq, 1u);
  EXPECT_EQ(data.entries[2].shard, 1u);
  EXPECT_EQ(data.entries[3].seq, 1u);
}

// ---------------------------------------------------------------------------
// Traced simulation runs
// ---------------------------------------------------------------------------

trace::Volume small_volume() {
  trace::CloudVolumeModel model(trace::alibaba_profile(), /*seed=*/42);
  return model.make_volume(/*volume_id=*/0, /*fill_factor=*/1.5);
}

sim::VolumeResult run_traced(const trace::Volume& volume, bool tracing) {
  sim::SimConfig config;
  config.seed = 42;
  config.tracing_enabled = tracing;
  return sim::run_volume(volume, "adapt", config);
}

TEST(TraceExportTest, TracedRunProducesValidChromeTraceJson) {
  const trace::Volume volume = small_volume();
  const sim::VolumeResult r = run_traced(volume, true);
  ASSERT_NE(r.trace, nullptr);
  if (lss::kTracingCompiled) {
    EXPECT_GT(r.trace->recorded, 0u);
    EXPECT_FALSE(r.trace->entries.empty());
  } else {
    // -DADAPT_TRACING=OFF: the emit path compiles away, the rings stay
    // empty, and the exporter still produces a valid (empty) document.
    EXPECT_EQ(r.trace->recorded, 0u);
  }

  obs::TraceMeta meta;
  meta.policy = r.policy;
  meta.workload = "alibaba";
  meta.seed = 42;
  const std::string json = obs::chrome_trace_json(*r.trace, meta);
  EXPECT_NO_THROW(obs::validate_trace_json(json));
  // The exporter only uses the deterministic clocks, so two runs of the
  // same seed export byte-identical documents.
  const sim::VolumeResult again = run_traced(volume, true);
  EXPECT_EQ(json, obs::chrome_trace_json(*again.trace, meta));
}

TEST(TraceExportTest, ValidatorRejectsMalformedTraces) {
  EXPECT_THROW(obs::validate_trace_json("[]"), std::invalid_argument);
  EXPECT_THROW(obs::validate_trace_json(R"({"schema":"nope"})"),
               std::invalid_argument);
  const std::string head =
      R"({"schema":"adapt-trace-v1","otherData":{"tool":"t","policy":"p",)"
      R"("workload":"w","seed":1,"shards":1,"recorded":1,"dropped":0,)"
      R"("per_shard_dropped":[0]},)";
  // A complete minimal document passes...
  EXPECT_NO_THROW(obs::validate_trace_json(
      head +
      R"("traceEvents":[{"name":"user_write","ph":"i","pid":0,"tid":0,)"
      R"("ts":1,"s":"t","args":{"lba":9}}]})"));
  // ...but an instant without its scope, an unknown phase, or a complete
  // event without a duration is rejected.
  EXPECT_THROW(obs::validate_trace_json(
                   head +
                   R"("traceEvents":[{"name":"user_write","ph":"i","pid":0,)"
                   R"("tid":0,"ts":1,"args":{}}]})"),
               std::invalid_argument);
  EXPECT_THROW(obs::validate_trace_json(
                   head +
                   R"("traceEvents":[{"name":"x","ph":"Z","pid":0,"tid":0,)"
                   R"("ts":1,"args":{}}]})"),
               std::invalid_argument);
  EXPECT_THROW(obs::validate_trace_json(
                   head +
                   R"("traceEvents":[{"name":"gc_run","ph":"X","pid":0,)"
                   R"("tid":0,"ts":1,"args":{}}]})"),
               std::invalid_argument);
  // Flow events (Perfetto s/t/f) are accepted, but only with a numeric id.
  EXPECT_NO_THROW(obs::validate_trace_json(
      head +
      R"("traceEvents":[{"name":"op_flow","cat":"flow","ph":"s","pid":0,)"
      R"("tid":0,"ts":1,"id":7,"args":{}}]})"));
  EXPECT_THROW(obs::validate_trace_json(
                   head +
                   R"("traceEvents":[{"name":"op_flow","cat":"flow","ph":"t",)"
                   R"("pid":0,"tid":0,"ts":1,"args":{}}]})"),
               std::invalid_argument);
}

TEST(TraceExportTest, ValidatorEnforcesPerShardDroppedAccounting) {
  const auto doc = [](std::string_view other_tail) {
    return std::string(
               R"({"schema":"adapt-trace-v1","otherData":{"tool":"t",)"
               R"("policy":"p","workload":"w","seed":1,"shards":2,)"
               R"("recorded":9,)") +
           std::string(other_tail) + R"(},"traceEvents":[]})";
  };
  // per_shard_dropped must be present, numeric, and sum to dropped.
  EXPECT_NO_THROW(obs::validate_trace_json(
      doc(R"("dropped":5,"per_shard_dropped":[2,3])")));
  EXPECT_THROW(obs::validate_trace_json(doc(R"("dropped":5)")),
               std::invalid_argument);
  EXPECT_THROW(obs::validate_trace_json(
                   doc(R"("dropped":5,"per_shard_dropped":[2,2])")),
               std::invalid_argument);
  EXPECT_THROW(obs::validate_trace_json(
                   doc(R"("dropped":5,"per_shard_dropped":[2,"x"])")),
               std::invalid_argument);
}

// Tracing is passive: enabling it must not change any engine metric.
TEST(TraceDeterminismTest, TracingOnVsOffIsBitIdentical) {
  const trace::Volume volume = small_volume();
  const sim::VolumeResult off = run_traced(volume, false);
  const sim::VolumeResult on = run_traced(volume, true);
  EXPECT_EQ(off.trace, nullptr);
  EXPECT_EQ(off.metrics.user_blocks, on.metrics.user_blocks);
  EXPECT_EQ(off.metrics.gc_blocks, on.metrics.gc_blocks);
  EXPECT_EQ(off.metrics.shadow_blocks, on.metrics.shadow_blocks);
  EXPECT_EQ(off.metrics.padding_blocks, on.metrics.padding_blocks);
  EXPECT_EQ(off.metrics.gc_runs, on.metrics.gc_runs);
  EXPECT_EQ(off.metrics.gc_migrated_blocks, on.metrics.gc_migrated_blocks);
  EXPECT_EQ(off.segments_per_group, on.segments_per_group);
}

// The PR-1 pinned fixed-seed replay must reproduce bit-identically with
// trace sinks attached (the counterpart of the -DADAPT_TRACING=OFF
// configure covered by CI: both directions leave the metrics untouched).
TEST(TraceDeterminismTest, PinnedFixedSeedMetricsUnchangedWithTracing) {
  trace::CloudVolumeModel model(trace::alibaba_profile(), /*seed=*/42);
  const trace::Volume volume = model.make_volume(/*volume_id=*/0,
                                                 /*fill_factor=*/3.0);
  ASSERT_EQ(volume.records.size(), 66314u);
  const sim::VolumeResult r = run_traced(volume, true);
  EXPECT_EQ(r.metrics.user_blocks, 173331u);
  EXPECT_EQ(r.metrics.gc_blocks, 89754u);
  EXPECT_EQ(r.metrics.shadow_blocks, 10640u);
  EXPECT_EQ(r.metrics.padding_blocks, 146403u);
  EXPECT_EQ(r.metrics.gc_runs, 1370u);
  EXPECT_EQ(r.metrics.forced_lazy_flushes, 13u);
  ASSERT_NE(r.trace, nullptr);
  if (lss::kTracingCompiled) {
    EXPECT_GT(r.trace->recorded, 0u);
  }
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

TEST(ProvenanceTest, MatrixTilesGcTrafficAndClosesIdentity) {
  const sim::VolumeResult r = run_traced(small_volume(), false);
  const obs::ManifestProvenance& p = r.manifest.provenance;
  ASSERT_EQ(p.groups.size(), r.metrics.groups.size());
  EXPECT_EQ(p.pending_blocks, 0u);  // run_volume drains before measuring

  std::uint64_t appended = 0;
  std::uint64_t persisted = 0;
  bool any_gc = false;
  for (std::size_t g = 0; g < p.groups.size(); ++g) {
    const obs::ProvenanceRow& row = p.groups[g];
    const lss::GroupTraffic& gt = r.metrics.groups[g];
    EXPECT_EQ(row.user_blocks, gt.user_blocks) << g;
    EXPECT_EQ(row.gc_blocks, gt.gc_blocks) << g;
    EXPECT_EQ(row.shadow_blocks, gt.shadow_blocks) << g;
    EXPECT_EQ(row.padding_blocks, gt.padding_blocks) << g;
    // Per-group tiling: the gc_from attribution covers exactly the GC
    // traffic that landed in this group.
    std::uint64_t from = 0;
    for (const std::uint64_t v : row.gc_from) from += v;
    EXPECT_EQ(from, row.gc_blocks) << g;
    any_gc = any_gc || row.gc_blocks > 0;
    appended += row.user_blocks + row.gc_blocks + row.shadow_blocks +
                row.padding_blocks;
    persisted += std::uint64_t{r.manifest.chunk_blocks} *
                     (row.full_flushes + row.padded_flushes) +
                 row.rmw_blocks;
  }
  EXPECT_TRUE(any_gc);
  // The PR-2 write-accounting identity, from the manifest alone.
  EXPECT_EQ(appended, persisted + p.pending_blocks);
  // And the totals agree with the headline counters.
  EXPECT_EQ(appended, r.metrics.total_blocks());
}

TEST(ProvenanceTest, ManifestValidatorEnforcesIdentity) {
  const sim::VolumeResult r = run_traced(small_volume(), false);
  const std::string good = obs::manifest_json(r.manifest);
  EXPECT_NO_THROW(obs::validate_manifest_json(good));
  // Bumping pending_blocks by one breaks the identity by exactly one
  // block; the validator must notice.
  std::string bad = good;
  const std::size_t pos = bad.find("\"pending_blocks\":0");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 18, "\"pending_blocks\":1");
  EXPECT_THROW(obs::validate_manifest_json(bad), std::invalid_argument);
}

TEST(ProvenanceTest, MergeGrowsToLargerGroupCount) {
  obs::ManifestProvenance a;
  a.groups.resize(1);
  a.groups[0].user_blocks = 5;
  a.pending_blocks = 1;
  obs::ManifestProvenance b;
  b.groups.resize(3);
  b.groups[0].user_blocks = 7;
  b.groups[2].gc_blocks = 2;
  b.groups[2].gc_from = {0, 0, 2};
  a.merge_from(b);
  ASSERT_EQ(a.groups.size(), 3u);
  EXPECT_EQ(a.groups[0].user_blocks, 12u);
  EXPECT_EQ(a.groups[2].gc_from[2], 2u);
  EXPECT_EQ(a.pending_blocks, 1u);
}

// ---------------------------------------------------------------------------
// adapt_compare gate
// ---------------------------------------------------------------------------

TEST(CompareTest, IdenticalManifestsPass) {
  const sim::VolumeResult r = run_traced(small_volume(), false);
  const std::string json = obs::manifest_json(r.manifest);
  const obs::CompareReport report = obs::compare_artifacts(json, json);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.violations(), 0u);
  EXPECT_FALSE(report.rows.empty());
}

TEST(CompareTest, InjectedWaDeltaExceedsTolerance) {
  const trace::Volume volume = small_volume();
  const sim::VolumeResult r = run_traced(volume, false);
  const std::string baseline = obs::manifest_json(r.manifest);
  // Candidate with ~10% more GC traffic: the gated lss.gc_blocks counter
  // (and the derived WA) moves far beyond the 1% default tolerance.
  obs::RunManifest tampered = r.manifest;
  lss::LssMetrics bumped = r.metrics;
  bumped.gc_blocks += bumped.gc_blocks / 10 + 1;
  tampered.counters = obs::Registry();
  obs::register_lss_metrics(tampered.counters, bumped);
  const std::string candidate = obs::manifest_json(tampered);
  const obs::CompareReport report =
      obs::compare_artifacts(baseline, candidate);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.violations(), 0u);
  const std::string rendered = obs::format_report(report, {});
  EXPECT_NE(rendered.find("EXCEEDS"), std::string::npos);
  // A looser gate accepts the same delta.
  obs::CompareOptions loose;
  loose.tolerance = 0.5;
  EXPECT_TRUE(obs::compare_artifacts(baseline, candidate, loose).ok());
}

TEST(CompareTest, IdentityFieldMismatchIsAnError) {
  const sim::VolumeResult r = run_traced(small_volume(), false);
  const std::string baseline = obs::manifest_json(r.manifest);
  obs::RunManifest other = r.manifest;
  other.seed = 43;
  const obs::CompareReport report =
      obs::compare_artifacts(baseline, obs::manifest_json(other));
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.errors.empty());
}

TEST(CompareTest, BenchHostDependentRowsArePresenceCheckedOnly) {
  // Wall-clock rates and latencies differ across hosts: a 10x throughput
  // delta must not trip the gate, but the row vanishing entirely must.
  obs::BenchReport a("gate");
  a.add("replay.records_per_sec", {}, 5.0e6, "1/s");
  a.add("replay.ns_per_op", {}, 200.0, "ns");
  a.add("replay.user_blocks", {}, 4096.0, "blocks");
  obs::BenchReport b("gate");
  b.add("replay.records_per_sec", {}, 5.0e7, "1/s");
  b.add("replay.ns_per_op", {}, 20.0, "ns");
  b.add("replay.user_blocks", {}, 4096.0, "blocks");
  EXPECT_TRUE(obs::compare_artifacts(a.json(), b.json()).ok());

  obs::BenchReport missing("gate");
  missing.add("replay.records_per_sec", {}, 5.0e6, "1/s");
  missing.add("replay.user_blocks", {}, 4096.0, "blocks");
  EXPECT_FALSE(obs::compare_artifacts(a.json(), missing.json()).ok());

  // Deterministic counter rows still gate on value.
  obs::BenchReport drifted("gate");
  drifted.add("replay.records_per_sec", {}, 5.0e6, "1/s");
  drifted.add("replay.ns_per_op", {}, 200.0, "ns");
  drifted.add("replay.user_blocks", {}, 5000.0, "blocks");
  EXPECT_FALSE(obs::compare_artifacts(a.json(), drifted.json()).ok());
}

TEST(CompareTest, BenchRowsCompareByKeyAndMissingRowsError) {
  obs::BenchReport a("gate");
  a.add("wa", {{"policy", "adapt"}}, 1.25, "ratio");
  a.add("wa", {{"policy", "sepgc"}}, 1.80, "ratio");
  obs::BenchReport b("gate");
  b.add("wa", {{"policy", "adapt"}}, 1.25, "ratio");
  const obs::CompareReport report =
      obs::compare_artifacts(a.json(), b.json());
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.errors.empty());
  // Schema kinds must agree.
  const sim::VolumeResult r = run_traced(small_volume(), false);
  EXPECT_THROW(
      obs::compare_artifacts(a.json(), obs::manifest_json(r.manifest)),
      std::invalid_argument);
}

}  // namespace
}  // namespace adapt
