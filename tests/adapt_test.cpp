// Tests for the ADAPT core: Bloom cascade, spatial sampling,
// reuse-distance tracking, ghost sets, threshold adaptation, and the
// AdaptPolicy placement/aggregation logic (including engine integration of
// shadow append / lazy append).
#include <memory>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "adapt/adapt_policy.h"
#include "adapt/aggregation_wrapper.h"
#include "adapt/bloom.h"
#include "placement/sep_gc.h"
#include "placement/sepbit.h"
#include "adapt/ghost_set.h"
#include "adapt/reuse_distance.h"
#include "adapt/threshold_adapter.h"
#include "audit/audit.h"
#include "common/rng.h"
#include "lss/engine.h"
#include "lss/victim_policy.h"

namespace adapt::core {
namespace {

// ---------------------------------------------------------------------------
// BloomFilter
// ---------------------------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter f(1000);
  for (Lba lba = 0; lba < 1000; ++lba) f.insert(lba * 7);
  for (Lba lba = 0; lba < 1000; ++lba) {
    EXPECT_TRUE(f.maybe_contains(lba * 7));
  }
}

TEST(BloomTest, FalsePositiveRateIsBounded) {
  BloomFilter f(1000);
  for (Lba lba = 0; lba < 1000; ++lba) f.insert(lba);
  int fp = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (f.maybe_contains(1'000'000 + i)) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(BloomTest, TracksInsertedCount) {
  BloomFilter f(4);
  EXPECT_FALSE(f.full());
  for (Lba lba = 0; lba < 4; ++lba) f.insert(lba);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(f.inserted(), 4u);
}

TEST(BloomTest, EmptyContainsNothing) {
  BloomFilter f(100);
  int hits = 0;
  for (Lba lba = 0; lba < 1000; ++lba) {
    if (f.maybe_contains(lba)) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

// ---------------------------------------------------------------------------
// CascadeDiscriminator
// ---------------------------------------------------------------------------

TEST(CascadeTest, ScoreCountsFilters) {
  CascadeDiscriminator d(4, 10);
  d.insert(42);
  EXPECT_EQ(d.score(42), 1u);
  // Fill the first filter so a new one opens, then insert again.
  for (Lba lba = 100; lba < 110; ++lba) d.insert(lba);
  d.insert(42);
  EXPECT_GE(d.score(42), 2u);
}

TEST(CascadeTest, FifoEviction) {
  CascadeDiscriminator d(2, 4);
  d.insert(7);  // filter 0
  for (Lba lba = 100; lba < 104; ++lba) d.insert(lba);  // fills 0, opens 1
  for (Lba lba = 200; lba < 204; ++lba) d.insert(lba);  // fills 1, opens 2
  d.check_invariants(audit::Level::kCounters);
  // Max 2 filters: filter 0 (containing 7) must have been evicted by now.
  for (Lba lba = 300; lba < 304; ++lba) d.insert(lba);
  EXPECT_LE(d.filter_count(), 2u);
  EXPECT_EQ(d.score(7), 0u);
  d.check_invariants(audit::Level::kFull);
}

TEST(CascadeTest, ScoreBoundedByMaxFilters) {
  CascadeDiscriminator d(3, 2);
  for (int round = 0; round < 10; ++round) {
    d.insert(5);
    d.insert(static_cast<Lba>(round + 100));
  }
  EXPECT_LE(d.score(5), 3u);
}

TEST(CascadeTest, MemoryIsBounded) {
  CascadeDiscriminator d(2, 100);
  for (Lba lba = 0; lba < 10000; ++lba) {
    d.insert(lba);
    if (lba % 512 == 0) d.check_invariants(audit::Level::kCounters);
  }
  EXPECT_LE(d.filter_count(), 2u);
  EXPECT_LE(d.memory_usage_bytes(), 2u * 100 * 10 / 8 + 64);
  EXPECT_EQ(d.total_inserted(), 10000u);
  d.check_invariants(audit::Level::kFull);
}

// ---------------------------------------------------------------------------
// SpatialSampler
// ---------------------------------------------------------------------------

TEST(SamplerTest, RateZeroSamplesNothing) {
  SpatialSampler s(0.0);
  for (Lba lba = 0; lba < 1000; ++lba) EXPECT_FALSE(s.sampled(lba));
}

TEST(SamplerTest, RateOneSamplesEverything) {
  SpatialSampler s(1.0);
  for (Lba lba = 0; lba < 1000; ++lba) EXPECT_TRUE(s.sampled(lba));
}

TEST(SamplerTest, RateApproximatelyHolds) {
  SpatialSampler s(0.1);
  int hits = 0;
  const int n = 100000;
  for (Lba lba = 0; lba < static_cast<Lba>(n); ++lba) {
    if (s.sampled(lba)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.01);
}

TEST(SamplerTest, DecisionIsStablePerLba) {
  SpatialSampler s(0.5);
  for (Lba lba = 0; lba < 100; ++lba) {
    EXPECT_EQ(s.sampled(lba), s.sampled(lba));
  }
}

// ---------------------------------------------------------------------------
// ReuseDistanceTracker
// ---------------------------------------------------------------------------

TEST(ReuseDistanceTest, FirstAccessHasNoHistory) {
  ReuseDistanceTracker t;
  const auto i = t.access(5, 100);
  EXPECT_EQ(i.unique_distance, ReuseDistanceTracker::kFirstAccess);
  EXPECT_EQ(i.raw_interval, ReuseDistanceTracker::kFirstAccess);
}

TEST(ReuseDistanceTest, ImmediateReuseIsZeroDistance) {
  ReuseDistanceTracker t;
  t.access(5, 0);
  const auto i = t.access(5, 3);
  EXPECT_EQ(i.unique_distance, 0u);
  EXPECT_EQ(i.raw_interval, 3u);
}

TEST(ReuseDistanceTest, CountsDistinctIntervening) {
  ReuseDistanceTracker t;
  t.access(1, 0);
  t.access(2, 1);
  t.access(3, 2);
  t.access(2, 3);  // 2 again: only {3} since -> distance 1
  EXPECT_EQ(t.access(2, 4).unique_distance, 0u);
  EXPECT_EQ(t.access(1, 5).unique_distance, 2u);  // {2,3} since t=0
}

TEST(ReuseDistanceTest, RepeatsDontInflateDistance) {
  ReuseDistanceTracker t;
  t.access(1, 0);
  for (int i = 1; i <= 10; ++i) t.access(2, i);  // one distinct block
  EXPECT_EQ(t.access(1, 11).unique_distance, 1u);
}

TEST(ReuseDistanceTest, MatchesNaiveOnRandomSequence) {
  ReuseDistanceTracker t;
  Rng rng(107);
  std::unordered_map<Lba, std::size_t> last_pos;
  std::vector<Lba> sequence;
  for (int i = 0; i < 3000; ++i) {
    const Lba lba = rng.below(64);
    const auto measured = t.access(lba, i);
    if (last_pos.contains(lba)) {
      std::set<Lba> seen;
      for (std::size_t p = last_pos[lba] + 1; p < sequence.size(); ++p) {
        seen.insert(sequence[p]);
      }
      ASSERT_EQ(measured.unique_distance, seen.size()) << "at step " << i;
    } else {
      ASSERT_EQ(measured.unique_distance,
                ReuseDistanceTracker::kFirstAccess);
    }
    last_pos[lba] = sequence.size();
    sequence.push_back(lba);
  }
  EXPECT_EQ(t.tracked_blocks(), last_pos.size());
}

// ---------------------------------------------------------------------------
// GhostSet
// ---------------------------------------------------------------------------

GhostConfig tiny_ghost() {
  return GhostConfig{.segment_blocks = 4, .capacity_segments = 6};
}

TEST(GhostSetTest, CountsWrites) {
  GhostSet g(tiny_ghost(), 100);
  for (Lba lba = 0; lba < 10; ++lba) g.write(lba, 1000);
  EXPECT_EQ(g.written(), 10u);
}

TEST(GhostSetTest, RejectsBadGeometry) {
  EXPECT_THROW(GhostSet(GhostConfig{.segment_blocks = 0}, 1),
               std::invalid_argument);
  EXPECT_THROW(
      GhostSet(GhostConfig{.segment_blocks = 4, .capacity_segments = 2}, 1),
      std::invalid_argument);
}

TEST(GhostSetTest, OverwritesCreateGarbageNotDiscards) {
  GhostSet g(tiny_ghost(), 100);
  // Hammer a handful of blocks: every segment dies before GC needs to
  // discard anything.
  for (int round = 0; round < 50; ++round) {
    for (Lba lba = 0; lba < 4; ++lba) g.write(lba, 0);
  }
  EXPECT_EQ(g.discarded(), 0u);
}

TEST(GhostSetTest, WriteOnceStreamForcesDiscards) {
  GhostSet g(tiny_ghost(), 100);
  for (Lba lba = 0; lba < 200; ++lba) {
    g.write(lba, 1000000);
    g.check_invariants(audit::Level::kCounters);
  }
  EXPECT_GT(g.discarded(), 0u);
  EXPECT_GT(g.gc_runs(), 0u);
  EXPECT_GT(g.discard_ratio(), 0.0);
  g.check_invariants(audit::Level::kFull);
}

TEST(GhostSetTest, SegmentCountBounded) {
  GhostSet g(tiny_ghost(), 100);
  Rng rng(109);
  for (int i = 0; i < 5000; ++i) {
    g.write(rng.below(256), rng.below(2000));
    if (i % 256 == 0) g.check_invariants(audit::Level::kFull);
    g.check_invariants(audit::Level::kCounters);
  }
  EXPECT_LE(g.segment_count(), tiny_ghost().capacity_segments + 1u);
}

// Regression: memory_usage_bytes must account for the validity bitmaps and
// the per-segment map overhead, not just raw LBA bytes plus the LBA-map
// nodes. The accounting model is deterministic (modelled constants, no
// sizeof of library types), so the scenario below pins an exact number:
// 20 distinct cold LBAs -> 5 sealed 4-block segments, 20 map entries.
//   per segment: 4*8 (LBA log) + 1 (bitmap) + 8 (key) + 24 (node) = 65
//   per mapping: 8 (LBA) + 16 (Location) + 24 (node)              = 48
//   total: 5*65 + 20*48 = 1285
// (The pre-fix formula gave 20*8 + 20*24 = 640.)
TEST(GhostSetTest, MemoryAccountsForBitmapsAndSegmentOverhead) {
  GhostSet g(tiny_ghost(), 100);
  for (Lba lba = 0; lba < 20; ++lba) g.write(lba, 1000);
  ASSERT_EQ(g.segment_count(), 5u);
  EXPECT_EQ(g.memory_usage_bytes(), 1285u);
}

TEST(GhostSetTest, DiscardAccountingIsExact) {
  // Deterministic micro-scenario: segment = 4 blocks, capacity = 4
  // segments. Fill four segments with write-once blocks routed cold, then
  // push one more segment's worth: each overflow seal forces exactly one
  // greedy eviction of a fully-valid sealed segment (4 discards each).
  GhostSet g(GhostConfig{.segment_blocks = 4, .capacity_segments = 4}, 100);
  for (Lba lba = 0; lba < 16; ++lba) g.write(lba, 1u << 20);
  EXPECT_EQ(g.discarded(), 0u);  // exactly at capacity, nothing evicted
  for (Lba lba = 16; lba < 20; ++lba) g.write(lba, 1u << 20);
  EXPECT_EQ(g.discarded(), 4u);
  EXPECT_EQ(g.gc_runs(), 1u);
  g.check_invariants(audit::Level::kFull);
}

TEST(GhostSetTest, InvalidatedBlocksAreNotDiscarded) {
  // Same scenario, but the first segment's blocks are overwritten before
  // the eviction: greedy then reclaims that dead segment for free.
  GhostSet g(GhostConfig{.segment_blocks = 4, .capacity_segments = 4}, 100);
  for (Lba lba = 0; lba < 12; ++lba) g.write(lba, 1u << 20);
  // Overwrites of 0-3 land hot (short interval), invalidating segment 0
  // while the set is still at capacity.
  for (Lba lba = 0; lba < 4; ++lba) g.write(lba, 10);
  // The next cold segment pushes the set over capacity; greedy reclaims
  // the now-dead segment 0 without discarding anything.
  for (Lba lba = 16; lba < 20; ++lba) g.write(lba, 1u << 20);
  EXPECT_EQ(g.discarded(), 0u);
  EXPECT_GE(g.gc_runs(), 1u);
  g.check_invariants(audit::Level::kFull);
}

TEST(GhostSetTest, DifferentThresholdsDifferentPlacements) {
  // The whole point of the ghost bank: thresholds change where blocks go
  // and therefore how much GC discards. Verify the bank actually produces
  // divergent measurements on a mixed workload.
  GhostSet separating(
      GhostConfig{.segment_blocks = 8, .capacity_segments = 16}, 1000);
  GhostSet degenerate(
      GhostConfig{.segment_blocks = 8, .capacity_segments = 16}, 1);
  Rng rng(113);
  Lba cold = 1000;
  for (int i = 0; i < 4000; ++i) {
    const bool hot = rng.chance(0.7);
    const Lba lba = hot ? rng.below(32) : cold++;
    const std::uint64_t interval = hot ? 10 : (1u << 20);
    separating.write(lba, interval);
    degenerate.write(lba, interval);
  }
  EXPECT_NE(separating.discarded(), degenerate.discarded());
  EXPECT_GT(separating.gc_runs(), 0u);
  EXPECT_GT(degenerate.gc_runs(), 0u);
  separating.check_invariants(audit::Level::kFull);
  degenerate.check_invariants(audit::Level::kFull);
}

TEST(GhostSetTest, SetThresholdResetsMetrics) {
  GhostSet g(tiny_ghost(), 100);
  for (Lba lba = 0; lba < 100; ++lba) g.write(lba, 1000000);
  EXPECT_GT(g.written(), 0u);
  g.set_threshold(200);
  EXPECT_EQ(g.written(), 0u);
  EXPECT_EQ(g.discarded(), 0u);
  EXPECT_EQ(g.threshold(), 200u);
}

// ---------------------------------------------------------------------------
// ThresholdAdapter
// ---------------------------------------------------------------------------

AdapterConfig small_adapter() {
  AdapterConfig c;
  c.sample_rate = 1.0;  // sample everything: deterministic tests
  c.num_ghosts = 5;
  c.segment_blocks = 64;
  c.logical_blocks = 4096;
  c.update_fraction = 0.05;
  return c;
}

TEST(ThresholdAdapterTest, StartsInExponentialPhase) {
  ThresholdAdapter a(small_adapter());
  EXPECT_EQ(a.phase(), ThresholdAdapter::Phase::kExponential);
  const auto thresholds = a.ghost_thresholds();
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    EXPECT_EQ(thresholds[i], thresholds[i - 1] * 2);
  }
}

TEST(ThresholdAdapterTest, RejectsTooFewGhosts) {
  AdapterConfig c = small_adapter();
  c.num_ghosts = 2;
  EXPECT_THROW(ThresholdAdapter a(c), std::invalid_argument);
}

TEST(ThresholdAdapterTest, AutoSampleRateFromCapacity) {
  AdapterConfig c = small_adapter();
  c.sample_rate = 0.0;
  c.logical_blocks = 1u << 20;
  ThresholdAdapter a(c);
  // Feeding every LBA once, roughly 4096/2^20 of them should be sampled.
  std::uint64_t hits = 0;
  for (Lba lba = 0; lba < (1u << 18); ++lba) {
    a.on_user_write(lba, lba);
    if (a.sampled_writes() > hits) hits = a.sampled_writes();
  }
  EXPECT_NEAR(static_cast<double>(hits), 1024.0, 200.0);
}

TEST(ThresholdAdapterTest, AdoptsAfterEnoughChurn) {
  ThresholdAdapter a(small_adapter());
  Rng rng(127);
  VTime now = 0;
  bool changed = false;
  for (int i = 0; i < 200000 && !changed; ++i) {
    // Mixed workload: hot blocks 0-31 + cold stream.
    const Lba lba = rng.chance(0.6) ? rng.below(32) : 100 + rng.below(4000);
    changed |= a.on_user_write(lba, now++);
    a.check_invariants(audit::Level::kCounters);
    if (i % 8192 == 0) a.check_invariants(audit::Level::kFull);
  }
  EXPECT_TRUE(a.adopted());
  EXPECT_GT(a.threshold(), 0u);
  a.check_invariants(audit::Level::kFull);
}

TEST(ThresholdAdapterTest, MemoryGrowsWithTracking) {
  ThresholdAdapter a(small_adapter());
  const std::size_t before = a.memory_usage_bytes();
  for (Lba lba = 0; lba < 1000; ++lba) a.on_user_write(lba, lba);
  EXPECT_GT(a.memory_usage_bytes(), before);
  a.check_invariants(audit::Level::kFull);
}

// ---------------------------------------------------------------------------
// AdaptPolicy — placement logic
// ---------------------------------------------------------------------------

AdaptConfig small_policy() {
  AdaptConfig c;
  c.logical_blocks = 4096;
  c.segment_blocks = 64;
  c.chunk_blocks = 4;
  c.enable_threshold_adaptation = false;  // deterministic threshold
  return c;
}

TEST(AdaptPolicyTest, SixGroupsTwoUser) {
  AdaptPolicy p(small_policy());
  EXPECT_EQ(p.group_count(), 6u);
  EXPECT_TRUE(p.is_user_group(AdaptPolicy::kHotUser));
  EXPECT_TRUE(p.is_user_group(AdaptPolicy::kColdUser));
  for (GroupId g = AdaptPolicy::kFirstGcGroup; g < 6; ++g) {
    EXPECT_FALSE(p.is_user_group(g));
  }
}

TEST(AdaptPolicyTest, FirstWriteIsCold) {
  AdaptPolicy p(small_policy());
  EXPECT_EQ(p.place_user_write(1, 0), AdaptPolicy::kColdUser);
}

TEST(AdaptPolicyTest, ShortLifespanIsHot) {
  AdaptPolicy p(small_policy());
  p.place_user_write(1, 0);
  EXPECT_EQ(p.place_user_write(1, 5), AdaptPolicy::kHotUser);
}

TEST(AdaptPolicyTest, LongLifespanIsCold) {
  AdaptPolicy p(small_policy());
  p.place_user_write(1, 0);
  EXPECT_EQ(p.place_user_write(1, 1u << 22), AdaptPolicy::kColdUser);
}

TEST(AdaptPolicyTest, GcBucketsByAge) {
  AdaptPolicy p(small_policy());
  const auto l = static_cast<VTime>(p.threshold());
  p.place_user_write(1, 0);
  EXPECT_EQ(p.place_gc_rewrite(1, 0, l), 2u);
  EXPECT_EQ(p.place_gc_rewrite(1, 2, 5 * l), 3u);
  EXPECT_EQ(p.place_gc_rewrite(1, 3, 20 * l), 4u);
  EXPECT_EQ(p.place_gc_rewrite(1, 4, 100 * l), 5u);
}

TEST(AdaptPolicyTest, GcNeverPromotesTowardHotterGroups) {
  AdaptPolicy p(small_policy());
  p.place_user_write(1, 1000);
  // Young version age but victim already in the coldest group: stays.
  EXPECT_EQ(p.place_gc_rewrite(1, 5, 1001), 5u);
}

TEST(AdaptPolicyTest, FallbackThresholdTracksHotSegments) {
  AdaptPolicy p(small_policy());
  const double before = p.threshold();
  for (int i = 0; i < 10; ++i) {
    p.note_segment_reclaimed(AdaptPolicy::kHotUser, 0, 100000);
  }
  EXPECT_GT(p.threshold(), before);
}

TEST(AdaptPolicyTest, DemotionRequiresScoreAndLifespan) {
  AdaptConfig c = small_policy();
  c.demotion_score_threshold = 2;
  // One insert per filter so each GC return is a distinct score unit.
  c.bloom_filter_capacity = 1;
  AdaptPolicy p(c);
  const Lba lba = 77;
  p.place_user_write(lba, 0);
  // Earn a score of 2 in GC group 5's cascade.
  const auto far = static_cast<VTime>(p.threshold() * 100);
  p.place_gc_rewrite(lba, 5, far);
  p.place_gc_rewrite(lba, 5, far + 1);
  // Prior lifespan long (>= 4 * threshold) -> demote straight to group 5.
  EXPECT_EQ(p.place_user_write(lba, far + 2), 5u);
  EXPECT_EQ(p.demotions(), 1u);
  // A short prior lifespan must NOT demote, whatever the score.
  EXPECT_EQ(p.place_user_write(lba, far + 3), AdaptPolicy::kHotUser);
  EXPECT_EQ(p.demotions(), 1u);
}

TEST(AdaptPolicyTest, DemotionDisabledByConfig) {
  AdaptConfig c = small_policy();
  c.enable_proactive_demotion = false;
  AdaptPolicy p(c);
  const Lba lba = 77;
  p.place_user_write(lba, 0);
  const auto far = static_cast<VTime>(p.threshold() * 100);
  p.place_gc_rewrite(lba, 5, far);
  p.place_gc_rewrite(lba, 5, far + 1);
  EXPECT_EQ(p.place_user_write(lba, far + 2), AdaptPolicy::kColdUser);
  EXPECT_EQ(p.demotions(), 0u);
}

// ---------------------------------------------------------------------------
// AdaptPolicy — engine integration (shadow / lazy append lifecycle)
// ---------------------------------------------------------------------------

lss::LssConfig engine_config() {
  lss::LssConfig c;
  c.chunk_blocks = 4;
  c.segment_chunks = 2;
  c.logical_blocks = 1024;
  c.over_provision = 0.5;
  c.coalesce_window_us = 100;
  // Per-op counters self-audit inside the engine for every test below.
  c.audit_level = audit::Level::kCounters;
  return c;
}

struct AdaptEngine {
  explicit AdaptEngine(AdaptConfig ac = {}) : policy(make_policy_config(ac)) {
    victim = lss::make_greedy();
    engine = std::make_unique<lss::LssEngine>(engine_config(), policy,
                                              *victim, nullptr, 1);
    engine->set_aggregation_hook(&policy);
  }

  static AdaptConfig make_policy_config(AdaptConfig ac) {
    ac.logical_blocks = engine_config().logical_blocks;
    ac.segment_blocks = engine_config().segment_blocks();
    ac.chunk_blocks = engine_config().chunk_blocks;
    ac.enable_threshold_adaptation = false;
    return ac;
  }

  /// Makes `lba` classify as hot on its next write.
  void heat(Lba lba, TimeUs now) {
    engine->write_block(lba, now);
    engine->write_block(lba, now);
  }

  AdaptPolicy policy;
  std::unique_ptr<lss::VictimPolicy> victim;
  std::unique_ptr<lss::LssEngine> engine;
};

TEST(AdaptEngineTest, DeadlineMergeShadowsHotIntoCold) {
  AdaptEngine f;
  // One hot block pending + one cold block pending, deadlines overlap.
  f.heat(1, 0);              // lba 1 now hot (2 writes, same chunk)
  f.engine->advance_time(200);  // drain those (pad) so state is clean
  f.engine->write_block(1, 1000);   // hot pending
  f.engine->write_block(500, 1010);  // first write -> cold pending
  f.engine->advance_time(1100);      // hot deadline fires first
  // The hot block must now have a live shadow and its original pending.
  EXPECT_TRUE(f.engine->has_live_shadow(1));
  EXPECT_GT(f.engine->metrics().shadow_blocks, 0u);
  EXPECT_GT(f.policy.shadow_decisions(), 0u);
  f.engine->check_invariants();
}

TEST(AdaptEngineTest, ShadowExpiresWhenHotChunkFlushes) {
  AdaptEngine f;
  f.heat(1, 0);
  f.engine->advance_time(200);
  f.engine->write_block(1, 1000);
  f.engine->write_block(500, 1010);
  f.engine->advance_time(1100);
  ASSERT_TRUE(f.engine->has_live_shadow(1));
  // Fill the hot chunk so the lazy original persists.
  f.heat(2, 2000);
  f.heat(3, 2000);
  f.engine->write_block(2, 3000);
  f.engine->write_block(3, 3000);
  f.engine->write_block(2, 3000);
  EXPECT_FALSE(f.engine->has_live_shadow(1));
  f.engine->check_invariants();
}

TEST(AdaptEngineTest, OverwriteKillsShadowToo) {
  AdaptEngine f;
  f.heat(1, 0);
  f.engine->advance_time(200);
  f.engine->write_block(1, 1000);
  f.engine->write_block(500, 1010);
  f.engine->advance_time(1100);
  ASSERT_TRUE(f.engine->has_live_shadow(1));
  f.engine->write_block(1, 1200);  // new version invalidates both copies
  EXPECT_FALSE(f.engine->has_live_shadow(1));
  f.engine->check_invariants();
}

TEST(AdaptEngineTest, NoAggregationWithoutOverlap) {
  AdaptConfig ac;
  AdaptEngine f(ac);
  f.heat(1, 0);
  f.engine->advance_time(200);
  f.engine->write_block(1, 1000);  // hot pending, cold empty
  f.engine->advance_time(1100);
  EXPECT_FALSE(f.engine->has_live_shadow(1));
  EXPECT_GT(f.engine->group_traffic(AdaptPolicy::kHotUser).padding_blocks,
            0u);
}

TEST(AdaptEngineTest, AggregationDisabledByConfig) {
  AdaptConfig ac;
  ac.enable_cross_group_aggregation = false;
  AdaptEngine f(ac);
  f.heat(1, 0);
  f.engine->advance_time(200);
  f.engine->write_block(1, 1000);
  f.engine->write_block(500, 1010);
  f.engine->advance_time(1100);
  EXPECT_EQ(f.engine->metrics().shadow_blocks, 0u);
  EXPECT_FALSE(f.engine->has_live_shadow(1));
}

TEST(AdaptEngineTest, RandomizedWorkloadKeepsInvariantsAndData) {
  AdaptEngine f;
  Rng rng(131);
  std::vector<bool> written(1024, false);
  TimeUs now = 0;
  for (int i = 0; i < 20000; ++i) {
    now += rng.below(150);
    const Lba lba = rng.chance(0.5) ? rng.below(32) : rng.below(1024);
    f.engine->write_block(lba, now);
    written[lba] = true;
    if (i % 2048 == 0) f.engine->check_invariants();
  }
  f.engine->flush_all();
  f.engine->check_invariants();
  for (Lba lba = 0; lba < 1024; ++lba) {
    ASSERT_EQ(f.engine->locate(lba) != lss::kNowhere, written[lba]);
  }
  EXPECT_GE(f.engine->metrics().wa(), 1.0);
}

TEST(AdaptEngineTest, GcOnSegmentWithLiveShadowForcesLazyFlush) {
  AdaptEngine f;
  // Create a live shadow in the cold group.
  f.heat(1, 0);
  f.engine->advance_time(200);
  f.engine->write_block(1, 1000);
  f.engine->write_block(500, 1010);
  f.engine->advance_time(1100);
  ASSERT_TRUE(f.engine->has_live_shadow(1));
  // Seal the cold segment (8 slots) around the shadow with write-once
  // cold blocks while the hot original stays pending.
  Lba cold_lba = 600;
  while (f.engine->group_traffic(core::AdaptPolicy::kColdUser)
             .segments_sealed == 0) {
    f.engine->write_block(cold_lba++, 2000);
    f.engine->advance_time(2000 + 200 * (cold_lba - 600));
    ASSERT_LT(cold_lba, 700u) << "cold segment never sealed";
  }
  if (!f.engine->has_live_shadow(1)) {
    GTEST_SKIP() << "shadow expired while sealing (hot chunk filled)";
  }
  // Force GC until the sealed cold segment (holding the live shadow) is
  // collected: the engine must pad-flush the hot chunk first, expiring the
  // shadow rather than migrating a duplicate.
  for (int i = 0; i < 64 && f.engine->metrics().forced_lazy_flushes == 0;
       ++i) {
    if (!f.engine->gc_step(5000, f.engine->free_segments() + 1)) break;
    f.engine->check_invariants();
  }
  EXPECT_GT(f.engine->metrics().forced_lazy_flushes, 0u);
  EXPECT_FALSE(f.engine->has_live_shadow(1));
  f.engine->check_invariants();
}

// ---------------------------------------------------------------------------
// Aggregation wrapper (extension)
// ---------------------------------------------------------------------------

TEST(AggregationWrapperTest, DelegatesToInnerPolicy) {
  auto inner = std::make_unique<placement::SepBitPolicy>(4096, 64);
  AggregatingPolicy wrapped(std::move(inner), AggregationWrapperConfig{});
  EXPECT_EQ(wrapped.name(), "sepbit+agg");
  EXPECT_EQ(wrapped.group_count(), 6u);
  EXPECT_TRUE(wrapped.is_user_group(0));
  EXPECT_EQ(wrapped.host_group(), 1u);  // SepBIT's cold user group
  EXPECT_EQ(wrapped.place_user_write(1, 0), 1u);  // first write: cold
  wrapped.check_invariants(audit::Level::kFull);
}

TEST(AggregationWrapperTest, RejectsSingleUserGroupPolicies) {
  auto inner = std::make_unique<placement::SepGcPolicy>();
  EXPECT_THROW(
      AggregatingPolicy(std::move(inner), AggregationWrapperConfig{}),
      std::invalid_argument);
}

TEST(AggregationWrapperTest, RejectsNullInner) {
  EXPECT_THROW(AggregatingPolicy(nullptr, AggregationWrapperConfig{}),
               std::invalid_argument);
}

TEST(AggregationWrapperTest, ShadowsThroughTheEngine) {
  auto inner = std::make_unique<placement::SepBitPolicy>(
      engine_config().logical_blocks, engine_config().segment_blocks());
  AggregationWrapperConfig wc;
  wc.chunk_blocks = engine_config().chunk_blocks;
  AggregatingPolicy wrapped(std::move(inner), wc);
  auto victim = lss::make_greedy();
  lss::LssEngine engine(engine_config(), wrapped, *victim, nullptr, 1);
  engine.set_aggregation_hook(&wrapped);

  // Heat lba 1 (overwrite), then create overlap between hot and cold
  // pendings and let the deadline fire.
  engine.write_block(1, 0);
  engine.write_block(1, 0);
  engine.advance_time(500);
  engine.write_block(1, 1000);     // hot pending
  engine.write_block(700, 1010);   // first write -> cold pending
  engine.advance_time(1200);
  EXPECT_GT(wrapped.shadow_decisions(), 0u);
  EXPECT_GT(engine.metrics().shadow_blocks, 0u);
  wrapped.check_invariants(audit::Level::kCounters);
  engine.check_invariants();
}

TEST(AdaptEngineTest, MemoryAccountingCoversComponents) {
  AdaptConfig ac;
  ac.enable_threshold_adaptation = true;
  AdaptEngine f(ac);
  const std::size_t base = f.policy.memory_usage_bytes();
  EXPECT_GE(base, engine_config().logical_blocks * sizeof(VTime));
}

}  // namespace
}  // namespace adapt::core
