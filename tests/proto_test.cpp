// Tests for the multithreaded prototype engine.
#include <gtest/gtest.h>

#include "proto/prototype.h"

namespace adapt::proto {
namespace {

PrototypeConfig tiny_proto() {
  PrototypeConfig c;
  c.workload.working_set_blocks = 1u << 15;
  c.workload.mean_interarrival_us = 1;  // effectively open-loop
  c.writes_per_client = 4000;
  c.num_clients = 2;
  c.array_bandwidth_mb_per_s = 5000;  // keep the test fast
  c.policy = "sepgc";
  return c;
}

TEST(PrototypeTest, CompletesAndReportsThroughput) {
  const PrototypeResult r = run_prototype(tiny_proto());
  EXPECT_EQ(r.policy, "sepgc");
  EXPECT_EQ(r.num_clients, 2u);
  EXPECT_GE(r.user_blocks, 8000u);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_GT(r.throughput_mib_per_s, 0.0);
  EXPECT_GT(r.throughput_kops, 0.0);
}

TEST(PrototypeTest, SingleClientWorks) {
  PrototypeConfig c = tiny_proto();
  c.num_clients = 1;
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.user_blocks, 2000u);
}

TEST(PrototypeTest, RunsWithAdaptPolicy) {
  PrototypeConfig c = tiny_proto();
  c.policy = "adapt";
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.metrics.wa(), 1.0);
  EXPECT_GT(r.policy_memory_bytes, 0u);
}

TEST(PrototypeTest, BackgroundGcCanBeDisabled) {
  PrototypeConfig c = tiny_proto();
  c.background_gc = false;
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.user_blocks, 4000u);
}

TEST(PrototypeTest, LatencyPercentilesReported) {
  PrototypeConfig c = tiny_proto();
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.latency_p99_us, r.latency_p50_us);
  EXPECT_GT(r.latency_p99_us, 0.0);
}

TEST(PrototypeTest, MemoryAccountingPopulated) {
  PrototypeConfig c = tiny_proto();
  c.writes_per_client = 1000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GT(r.engine_memory_bytes, 0u);
}

TEST(PrototypeTest, MoreBandwidthMoreThroughput) {
  PrototypeConfig slow = tiny_proto();
  slow.array_bandwidth_mb_per_s = 50;
  slow.writes_per_client = 2000;
  PrototypeConfig fast = slow;
  fast.array_bandwidth_mb_per_s = 5000;
  const PrototypeResult a = run_prototype(slow);
  const PrototypeResult b = run_prototype(fast);
  EXPECT_GT(b.throughput_mib_per_s, a.throughput_mib_per_s);
}

TEST(PrototypeTest, WaConsistentWithSimSemantics) {
  PrototypeConfig c = tiny_proto();
  c.writes_per_client = 3000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.metrics.wa(), 1.0);
  EXPECT_EQ(r.metrics.user_blocks, r.user_blocks);
}

}  // namespace
}  // namespace adapt::proto
