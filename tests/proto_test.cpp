// Tests for the multithreaded prototype engine.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/export.h"
#include "proto/prototype.h"

namespace adapt::proto {
namespace {

PrototypeConfig tiny_proto() {
  PrototypeConfig c;
  c.workload.working_set_blocks = 1u << 15;
  c.workload.mean_interarrival_us = 1;  // effectively open-loop
  c.writes_per_client = 4000;
  c.num_clients = 2;
  c.array_bandwidth_mb_per_s = 5000;  // keep the test fast
  c.policy = "sepgc";
  return c;
}

TEST(PrototypeTest, CompletesAndReportsThroughput) {
  const PrototypeResult r = run_prototype(tiny_proto());
  EXPECT_EQ(r.policy, "sepgc");
  EXPECT_EQ(r.num_clients, 2u);
  EXPECT_GE(r.user_blocks, 8000u);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_GT(r.throughput_mib_per_s, 0.0);
  EXPECT_GT(r.throughput_kops, 0.0);
}

TEST(PrototypeTest, SingleClientWorks) {
  PrototypeConfig c = tiny_proto();
  c.num_clients = 1;
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.user_blocks, 2000u);
}

TEST(PrototypeTest, RunsWithAdaptPolicy) {
  PrototypeConfig c = tiny_proto();
  c.policy = "adapt";
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.metrics.wa(), 1.0);
  EXPECT_GT(r.policy_memory_bytes, 0u);
}

TEST(PrototypeTest, BackgroundGcCanBeDisabled) {
  PrototypeConfig c = tiny_proto();
  c.background_gc = false;
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.user_blocks, 4000u);
}

TEST(PrototypeTest, LatencyPercentilesReported) {
  PrototypeConfig c = tiny_proto();
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.latency_p99_us, r.latency_p50_us);
  EXPECT_GT(r.latency_p99_us, 0.0);
}

TEST(PrototypeTest, MemoryAccountingPopulated) {
  PrototypeConfig c = tiny_proto();
  c.writes_per_client = 1000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GT(r.engine_memory_bytes, 0u);
}

TEST(PrototypeTest, MoreBandwidthMoreThroughput) {
  PrototypeConfig slow = tiny_proto();
  slow.array_bandwidth_mb_per_s = 50;
  slow.writes_per_client = 2000;
  PrototypeConfig fast = slow;
  fast.array_bandwidth_mb_per_s = 5000;
  const PrototypeResult a = run_prototype(slow);
  const PrototypeResult b = run_prototype(fast);
  EXPECT_GT(b.throughput_mib_per_s, a.throughput_mib_per_s);
}

TEST(PrototypeTest, WaConsistentWithSimSemantics) {
  PrototypeConfig c = tiny_proto();
  c.writes_per_client = 3000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.metrics.wa(), 1.0);
  EXPECT_EQ(r.metrics.user_blocks, r.user_blocks);
}

// ---------------------------------------------------------------------------
// Timing regressions: the big-lock prototype divided blocks by a single
// TimeUs-truncated wall clock, so a run faster than the clock tick reported
// inf (or, with an unlucky truncation, wildly inflated) throughput.

TEST(PrototypeTimingTest, SpansEnvelopeCoversAllClients) {
  const std::vector<ClientSpan> spans = {
      {2'000'000'000, 3'000'000'000},
      {1'000'000'000, 2'500'000'000},
      {1'500'000'000, 3'500'000'000},
  };
  // max(end) - min(start) = 3.5s - 1.0s, not any single thread's window.
  EXPECT_DOUBLE_EQ(spans_elapsed_seconds(spans), 2.5);
}

TEST(PrototypeTimingTest, SpansDegenerateCasesReportZero) {
  EXPECT_DOUBLE_EQ(spans_elapsed_seconds({}), 0.0);
  // A run shorter than the clock resolution collapses to start == end;
  // pre-fix this became the throughput denominator.
  EXPECT_DOUBLE_EQ(spans_elapsed_seconds({{5, 5}}), 0.0);
  EXPECT_DOUBLE_EQ(spans_elapsed_seconds({{9, 4}}), 0.0);
}

TEST(PrototypeTimingTest, SafeRateNeverDividesByZero) {
  EXPECT_DOUBLE_EQ(safe_rate(4096.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_rate(4096.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(safe_rate(4096.0, std::nan("")), 0.0);
  EXPECT_DOUBLE_EQ(safe_rate(4096.0, 2.0), 2048.0);
  EXPECT_FALSE(std::isinf(safe_rate(1e18, 1e-300)));
}

// ---------------------------------------------------------------------------
// Concurrent front-end surface.

TEST(PrototypeTest, LatencyHistogramAndTailOrdering) {
  PrototypeConfig c = tiny_proto();
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_FALSE(r.latency_ns.empty());
  EXPECT_GT(r.latency_p50_us, 0.0);
  EXPECT_GE(r.latency_p99_us, r.latency_p50_us);
  EXPECT_GE(r.latency_p999_us, r.latency_p99_us);
}

TEST(PrototypeTest, GroupCommitStatsPopulated) {
  PrototypeConfig c = tiny_proto();
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GT(r.group_commit.groups, 0u);
  EXPECT_GE(r.group_commit.ops, r.group_commit.groups);
  EXPECT_GE(r.group_commit.max_batch, 1u);
  EXPECT_GE(r.shards, 1u);
}

TEST(PrototypeTest, BigLockOracleStillRuns) {
  PrototypeConfig c = tiny_proto();
  c.front_end = FrontEnd::kBigLockOracle;
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_GE(r.user_blocks, 4000u);
  EXPECT_GT(r.throughput_mib_per_s, 0.0);
  EXPECT_FALSE(r.latency_ns.empty());
  // The oracle has no intake, so batching counters stay zero.
  EXPECT_EQ(r.group_commit.groups, 0u);
  EXPECT_EQ(r.shards, 1u);
}

TEST(PrototypeTest, ShardAutoRuleRespectsPerShardFloor) {
  PrototypeConfig c = tiny_proto();
  // 2^15 blocks can only support one shard at the 2^15 per-shard floor.
  EXPECT_EQ(resolve_shards(c), 1u);
  c.workload.working_set_blocks = 1u << 17;
  c.num_clients = 4;
  EXPECT_EQ(resolve_shards(c), 4u);
  c.num_clients = 32;  // auto caps at 4 shards for 2^17 blocks
  EXPECT_EQ(resolve_shards(c), 4u);
  c.shards = 2;  // explicit request wins
  EXPECT_EQ(resolve_shards(c), 2u);
}

TEST(PrototypeTest, ManifestValidatesAgainstSchema) {
  PrototypeConfig c = tiny_proto();
  c.writes_per_client = 2000;
  const PrototypeResult r = run_prototype(c);
  EXPECT_NO_THROW(obs::validate_manifest_json(obs::manifest_json(r.manifest)));
  EXPECT_EQ(r.manifest.tool, "prototype");
  EXPECT_FALSE(r.manifest.latency_ns.empty());
}

}  // namespace
}  // namespace adapt::proto
