// ThreadPool contract tests, written to run under TSan (CI runs this
// binary in the thread-sanitizer job): concurrent submitters, the
// wait_idle barrier (including tasks that submit more tasks), drain-on-
// destruction, and the experiment runner's first-error propagation pattern.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace adapt {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> done{0};
  pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, ManyConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kSubmitters = 8;
  constexpr int kPerSubmitter = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &done] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        pool.submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(done.load(), kSubmitters * kPerSubmitter);
}

// wait_idle must cover tasks enqueued *by running tasks*: the barrier
// condition is "queue empty and no task running", not "everything I
// personally submitted finished".
TEST(ThreadPoolTest, WaitIdleCoversRecursivelySubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &done] {
      done.fetch_add(1, std::memory_order_relaxed);
      pool.submit(
          [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 1; round <= 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 10 * round);
  }
}

// Destruction drains the queue: workers only exit once `stopping_` is set
// AND the queue is empty, so tasks still queued at destructor entry run.
TEST(ThreadPoolTest, DestructorRunsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    // One slow task to keep the single worker busy while the rest queue up.
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    for (int i = 0; i < 100; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: destructor must drain.
  }
  EXPECT_EQ(done.load(), 100);
}

// Shutdown contract: submit() after shutdown() (or destruction has begun)
// throws instead of silently dropping the task, and shutdown() is
// idempotent — callers may shut down explicitly and still let the
// destructor run.
TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.shutdown();
  EXPECT_EQ(done.load(), 1);  // shutdown drained the queue first
  EXPECT_THROW(pool.submit([&done] { ++done; }), std::runtime_error);
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.shutdown();
  pool.shutdown();  // second call must be a no-op, not a deadlock or throw
  EXPECT_EQ(done.load(), 20);
}

// The experiment runner's propagation contract: tasks must not let
// exceptions escape into the pool (std::function would std::terminate);
// they record the first error under a mutex and the caller rethrows after
// the barrier. This test exercises that pattern under contention.
TEST(ThreadPoolTest, FirstErrorPropagationPattern) {
  ThreadPool pool(4);
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::atomic<int> attempted{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&, i] {
      try {
        ++attempted;
        if (i % 10 == 3) throw std::runtime_error("volume failed");
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(attempted.load(), 200);
  ASSERT_TRUE(first_error != nullptr);
  EXPECT_THROW(std::rethrow_exception(first_error), std::runtime_error);
}

}  // namespace
}  // namespace adapt
