// Tests for src/array: the SSD device model and the RAID-5 array.
#include <gtest/gtest.h>

#include "array/ssd_array.h"
#include "array/ssd_device.h"

namespace adapt::array {
namespace {

// ---------------------------------------------------------------------------
// SsdDevice
// ---------------------------------------------------------------------------

TEST(SsdDeviceTest, AccountsBytesPerStream) {
  SsdDevice dev(SsdDeviceConfig{.num_streams = 4, .bandwidth_mb_per_s = 1000});
  dev.write(0, 4096);
  dev.write(1, 8192);
  dev.write(0, 4096);
  EXPECT_EQ(dev.bytes_written(), 16384u);
  EXPECT_EQ(dev.stream_bytes(0), 8192u);
  EXPECT_EQ(dev.stream_bytes(1), 8192u);
  EXPECT_EQ(dev.stream_bytes(2), 0u);
}

TEST(SsdDeviceTest, LatencyFollowsBandwidth) {
  SsdDevice dev(SsdDeviceConfig{.num_streams = 1, .bandwidth_mb_per_s = 100});
  // 100 MB/s -> 1 MB takes 10,000 us.
  EXPECT_NEAR(static_cast<double>(dev.write(0, 1000000)), 10000.0, 1.0);
}

TEST(SsdDeviceTest, InvalidStreamThrows) {
  SsdDevice dev(SsdDeviceConfig{.num_streams = 2, .bandwidth_mb_per_s = 100});
  EXPECT_THROW(dev.write(2, 4096), std::out_of_range);
  EXPECT_THROW(dev.stream_bytes(5), std::out_of_range);
}

TEST(SsdDeviceTest, InvalidConfigThrows) {
  EXPECT_THROW(SsdDevice(SsdDeviceConfig{.num_streams = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      SsdDevice(SsdDeviceConfig{.num_streams = 1, .bandwidth_mb_per_s = 0}),
      std::invalid_argument);
}

TEST(SsdDeviceTest, ReserveSerializesRequests) {
  SsdDevice dev(SsdDeviceConfig{.num_streams = 1, .bandwidth_mb_per_s = 1});
  // 1 MB/s: 1000 bytes take 1000 us.
  const TimeUs first = dev.reserve(0, 1000);
  const TimeUs second = dev.reserve(0, 1000);
  EXPECT_EQ(first, 1000u);
  EXPECT_EQ(second, 2000u);
  // After idle, a later request starts at its arrival.
  const TimeUs third = dev.reserve(10000, 1000);
  EXPECT_EQ(third, 11000u);
}

// ---------------------------------------------------------------------------
// SsdArray
// ---------------------------------------------------------------------------

SsdArrayConfig small_array() {
  return SsdArrayConfig{.num_devices = 4,
                        .chunk_bytes = 64 * 1024,
                        .num_streams = 2,
                        .device_bandwidth_mb_per_s = 1000};
}

TEST(SsdArrayTest, FullChunkNoPadding) {
  SsdArray arr(small_array());
  arr.write_chunk(0, 64 * 1024);
  const StreamStats& s = arr.stream_stats(0);
  EXPECT_EQ(s.chunks_written, 1u);
  EXPECT_EQ(s.data_bytes, 64u * 1024);
  EXPECT_EQ(s.padding_bytes, 0u);
}

TEST(SsdArrayTest, PartialChunkAccountsPadding) {
  SsdArray arr(small_array());
  arr.write_chunk(0, 4096);
  const StreamStats& s = arr.stream_stats(0);
  EXPECT_EQ(s.data_bytes, 4096u);
  EXPECT_EQ(s.padding_bytes, 64u * 1024 - 4096);
}

TEST(SsdArrayTest, ParityPerStripe) {
  SsdArray arr(small_array());
  // 3 data columns per stripe -> parity written on every 3rd chunk.
  for (int i = 0; i < 6; ++i) arr.write_chunk(0, 64 * 1024);
  const StreamStats& s = arr.stream_stats(0);
  EXPECT_EQ(s.chunks_written, 6u);
  EXPECT_EQ(s.parity_bytes, 2u * 64 * 1024);
}

TEST(SsdArrayTest, IncompleteStripeNoParityYet) {
  SsdArray arr(small_array());
  arr.write_chunk(0, 64 * 1024);
  arr.write_chunk(0, 64 * 1024);
  EXPECT_EQ(arr.stream_stats(0).parity_bytes, 0u);
}

TEST(SsdArrayTest, StreamsIsolated) {
  SsdArray arr(small_array());
  arr.write_chunk(0, 64 * 1024);
  arr.write_chunk(1, 4096);
  EXPECT_EQ(arr.stream_stats(0).padding_bytes, 0u);
  EXPECT_EQ(arr.stream_stats(1).padding_bytes, 64u * 1024 - 4096);
}

TEST(SsdArrayTest, TotalsAggregateStreams) {
  SsdArray arr(small_array());
  arr.write_chunk(0, 64 * 1024);
  arr.write_chunk(1, 4096);
  const StreamStats t = arr.totals();
  EXPECT_EQ(t.chunks_written, 2u);
  EXPECT_EQ(t.data_bytes, 64u * 1024 + 4096);
}

TEST(SsdArrayTest, DataSpreadsAcrossDevices) {
  SsdArray arr(small_array());
  for (int i = 0; i < 12; ++i) arr.write_chunk(0, 64 * 1024);
  // 12 data chunks + 4 parity chunks over 4 devices; every device should
  // have received something.
  std::uint64_t total = 0;
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_GT(arr.device_bytes(d), 0u) << "device " << d;
    total += arr.device_bytes(d);
  }
  EXPECT_EQ(total, 16u * 64 * 1024);
}

TEST(SsdArrayTest, PartialWriteChargesParityAndReads) {
  SsdArray arr(small_array());
  arr.write_partial(0, 4096);
  const StreamStats& s = arr.stream_stats(0);
  EXPECT_EQ(s.rmw_writes, 1u);
  EXPECT_EQ(s.data_bytes, 4096u);
  EXPECT_EQ(s.parity_bytes, 64u * 1024);           // parity rewritten whole
  EXPECT_EQ(s.rmw_read_bytes, 2u * 64 * 1024);     // old data + old parity
  EXPECT_EQ(s.padding_bytes, 0u);                  // RMW never pads
}

TEST(SsdArrayTest, PartialWriteValidatesSize) {
  SsdArray arr(small_array());
  EXPECT_THROW(arr.write_partial(0, 0), std::invalid_argument);
  EXPECT_THROW(arr.write_partial(0, 64 * 1024 + 1), std::invalid_argument);
  EXPECT_THROW(arr.write_partial(9, 4096), std::out_of_range);
}

TEST(SsdArrayTest, TotalsIncludeRmwFields) {
  SsdArray arr(small_array());
  arr.write_partial(0, 4096);
  arr.write_partial(1, 8192);
  const StreamStats t = arr.totals();
  EXPECT_EQ(t.rmw_writes, 2u);
  EXPECT_EQ(t.rmw_read_bytes, 4u * 64 * 1024);
}

TEST(SsdArrayTest, OversizedPayloadThrows) {
  SsdArray arr(small_array());
  EXPECT_THROW(arr.write_chunk(0, 64 * 1024 + 1), std::invalid_argument);
}

TEST(SsdArrayTest, InvalidStreamThrows) {
  SsdArray arr(small_array());
  EXPECT_THROW(arr.write_chunk(7, 4096), std::out_of_range);
  EXPECT_THROW(arr.stream_stats(7), std::out_of_range);
  EXPECT_THROW(arr.device_bytes(9), std::out_of_range);
}

TEST(SsdArrayTest, InvalidConfigThrows) {
  EXPECT_THROW(SsdArray(SsdArrayConfig{.num_devices = 1}),
               std::invalid_argument);
  EXPECT_THROW(SsdArray(SsdArrayConfig{.num_devices = 4, .chunk_bytes = 0}),
               std::invalid_argument);
}

TEST(SsdArrayTest, ScheduleChunkAdvancesWithContention) {
  SsdArray arr(small_array());
  const TimeUs a = arr.schedule_chunk(0, 0);
  EXPECT_GT(a, 0u);
  // Scheduling on the same stream/device back-to-back must not go backwards.
  const TimeUs b = arr.schedule_chunk(0, 0);
  EXPECT_GE(b, a);
}

TEST(SsdArrayTest, TwoDeviceArrayIsMirrorLike) {
  // RAID-5 over 2 devices degenerates to 1 data column + parity.
  SsdArray arr(SsdArrayConfig{.num_devices = 2,
                              .chunk_bytes = 4096,
                              .num_streams = 1,
                              .device_bandwidth_mb_per_s = 100});
  arr.write_chunk(0, 4096);
  EXPECT_EQ(arr.stream_stats(0).parity_bytes, 4096u);
}

}  // namespace
}  // namespace adapt::array
