// Tests for the flat shadow table and the BlockMap bounds/self-audit
// contract.
//
// The flat table replaced std::unordered_map on the per-write hot path, so
// its primary obligation is behavioural equivalence: a randomized
// differential test drives both containers through the same churn and
// compares every observable. The BlockMap tests pin the bounds contract
// (tolerant locate, asserted accessors) and the counters-tier audit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "lss/block_map.h"
#include "lss/flat_shadow_map.h"
#include "lss/segment.h"

namespace adapt::lss {
namespace {

BlockLocation loc_of(std::uint32_t seg, std::uint32_t slot) {
  return BlockLocation{seg, slot};
}

/// Drives the flat table and std::unordered_map through an identical
/// random mix of insert/overwrite/erase/lookup and checks every
/// observable after each mutation batch.
TEST(FlatShadowMapTest, DifferentialAgainstUnorderedMap) {
  Rng rng(0x5eedu);
  FlatShadowMap flat;
  std::unordered_map<Lba, BlockLocation> reference;
  const Lba key_space = 512;  // small space => frequent overwrite/erase hits
  for (int step = 0; step < 20000; ++step) {
    const Lba lba = rng.below(key_space);
    switch (rng.below(4)) {
      case 0:
      case 1: {  // insert or overwrite
        const BlockLocation loc =
            loc_of(static_cast<std::uint32_t>(rng.below(64)),
                   static_cast<std::uint32_t>(rng.below(256)));
        flat.insert_or_assign(lba, loc);
        reference[lba] = loc;
        break;
      }
      case 2: {  // erase (often a miss)
        EXPECT_EQ(flat.erase(lba), reference.erase(lba) > 0);
        break;
      }
      default: {  // lookup
        const auto it = reference.find(lba);
        EXPECT_EQ(flat.contains(lba), it != reference.end());
        EXPECT_EQ(flat.find(lba),
                  it != reference.end() ? it->second : kNowhere);
        break;
      }
    }
    EXPECT_EQ(flat.size(), reference.size());
  }
  // Full-content comparison via iteration: every pair the flat table
  // yields must match the reference, and the counts already agree.
  std::size_t seen = 0;
  for (const auto [lba, loc] : flat) {
    const auto it = reference.find(lba);
    ASSERT_NE(it, reference.end()) << "flat table yielded unknown key";
    EXPECT_EQ(loc, it->second);
    ++seen;
  }
  EXPECT_EQ(seen, reference.size());
  EXPECT_NO_THROW(flat.check_counters());
}

/// Growth must preserve contents across the rehash boundaries (16 -> 32 ->
/// ... slots at 7/8 load), and shrinking to empty must behave like a fresh
/// table.
TEST(FlatShadowMapTest, GrowthAndDrainPreserveContents) {
  FlatShadowMap flat;
  EXPECT_TRUE(flat.empty());
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    flat.insert_or_assign(static_cast<Lba>(i * 7919),
                          loc_of(static_cast<std::uint32_t>(i), 0));
    ASSERT_EQ(flat.size(), static_cast<std::size_t>(i + 1));
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(flat.find(static_cast<Lba>(i * 7919)).segment,
              static_cast<std::uint32_t>(i));
  }
  EXPECT_NO_THROW(flat.check_counters());
  // Erase in an interleaved order to exercise backshift runs.
  for (int i = 0; i < n; i += 2) ASSERT_TRUE(flat.erase(i * 7919));
  for (int i = n - 1; i >= 0; i -= 2) ASSERT_TRUE(flat.erase(i * 7919));
  EXPECT_TRUE(flat.empty());
  EXPECT_FALSE(flat.erase(0));
  EXPECT_EQ(flat.find(7919), kNowhere);
  EXPECT_NO_THROW(flat.check_counters());
}

/// The layout (and hence iteration order) is a pure function of the
/// insert/erase sequence — two tables fed the same ops agree slot for
/// slot, which is what makes fixed-seed engine runs bit-identical.
TEST(FlatShadowMapTest, IterationOrderIsReproducible) {
  const auto drive = [](FlatShadowMap& m) {
    Rng rng(99);
    for (int i = 0; i < 3000; ++i) {
      const Lba lba = rng.below(400);
      if (rng.below(3) == 0) {
        m.erase(lba);
      } else {
        m.insert_or_assign(lba, loc_of(static_cast<std::uint32_t>(i), 1));
      }
    }
  };
  FlatShadowMap a;
  FlatShadowMap b;
  drive(a);
  drive(b);
  const std::vector<std::pair<Lba, BlockLocation>> ta(a.begin(), a.end());
  const std::vector<std::pair<Lba, BlockLocation>> tb(b.begin(), b.end());
  EXPECT_EQ(ta, tb);
}

TEST(FlatShadowMapTest, RejectsReservedKey) {
  FlatShadowMap flat;
  EXPECT_THROW(flat.insert_or_assign(kInvalidLba, kNowhere),
               std::invalid_argument);
}

/// locate() is the tolerant query: out-of-range probes answer kNowhere
/// instead of reading out of bounds (replay layers probe speculative
/// addresses).
TEST(BlockMapBoundsTest, LocateToleratesOutOfRange) {
  BlockMap map(64);
  EXPECT_EQ(map.locate(63), kNowhere);
  EXPECT_EQ(map.locate(64), kNowhere);
  EXPECT_EQ(map.locate(~static_cast<Lba>(0) - 1), kNowhere);
}

#ifndef NDEBUG
/// The unchecked accessors assert their precondition in audit builds;
/// release builds document it instead of paying a per-op range check.
TEST(BlockMapBoundsTest, UncheckedAccessorsAssertInAuditBuilds) {
  BlockMap map(64);
  EXPECT_DEATH((void)map.is_mapped(64), "lba < primary_");
  EXPECT_DEATH((void)map.primary_is(64, kNowhere), "lba < primary_");
  EXPECT_DEATH(map.set_primary(64, loc_of(0, 0)), "lba < primary_");
  EXPECT_DEATH(map.clear_primary(64), "lba < primary_");
}
#endif

/// Counters-tier audit: a shadow entry whose primary is gone is internal
/// corruption the cheap tier must already catch.
TEST(BlockMapAuditTest, ShadowWithoutPrimaryFailsCounters) {
  BlockMap map(64);
  map.set_primary(7, loc_of(1, 3));
  map.set_shadow(7, loc_of(2, 5));
  EXPECT_NO_THROW(map.check_counters());
  map.clear_primary(7);
  EXPECT_THROW(map.check_counters(), std::logic_error);
}

}  // namespace
}  // namespace adapt::lss
