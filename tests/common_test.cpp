// Unit and property tests for src/common: PRNG, Zipfian generators,
// Fenwick tree, packed bitmaps, histograms, thread pool.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fenwick.h"
#include "common/histogram.h"
#include "common/packed_bitmap.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/zipf.h"

namespace adapt {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(42.0);
  EXPECT_NEAR(sum / n, 42.0, 1.5);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0;
  double sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.3, 0.8), 0.0);
  }
}

TEST(RngTest, ChanceProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Mix64Test, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Low bits should change even for adjacent inputs.
  int low_bit_flips = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if ((mix64(i) & 1) != (mix64(i + 1) & 1)) ++low_bit_flips;
  }
  EXPECT_GT(low_bit_flips, 16);
}

// ---------------------------------------------------------------------------
// Zipf
// ---------------------------------------------------------------------------

class ZipfAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaTest, RanksInRange) {
  const double alpha = GetParam();
  ZipfianGenerator zipf(1000, alpha);
  Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(zipf.next(rng), 1000u);
  }
}

TEST_P(ZipfAlphaTest, SkewIncreasesWithAlpha) {
  const double alpha = GetParam();
  ZipfianGenerator zipf(1000, alpha);
  Rng rng(37);
  int rank0 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.next(rng) == 0) ++rank0;
  }
  const double p0 = static_cast<double>(rank0) / n;
  if (alpha == 0.0) {
    EXPECT_NEAR(p0, 1.0 / 1000, 0.002);
  } else {
    // P(rank 0) = 1 / zeta(n, alpha); just check monotone bounds.
    EXPECT_GT(p0, 1.0 / 1000);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.0, 0.3, 0.6, 0.9, 0.99, 1.1));

TEST(ZipfTest, AlphaOneDoesNotBlowUp) {
  ZipfianGenerator zipf(100, 1.0);
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.next(rng), 100u);
  }
}

TEST(ZipfTest, HotSetConcentration) {
  // At alpha ~1, ~top 20% of ranks should carry well over half the draws.
  ZipfianGenerator zipf(10000, 0.99);
  Rng rng(43);
  int top = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.next(rng) < 2000) ++top;
  }
  EXPECT_GT(static_cast<double>(top) / n, 0.6);
}

TEST(ScrambledZipfTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator zipf(10000, 0.99);
  Rng rng(47);
  // The most frequent key should not be key 0 systematically; draws still
  // hit a small set of hot keys.
  std::map<std::uint64_t, int> freq;
  for (int i = 0; i < 50000; ++i) ++freq[zipf.next(rng)];
  auto hottest = std::max_element(
      freq.begin(), freq.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_GT(hottest->second, 50000 / 10000 * 10);
}

// ---------------------------------------------------------------------------
// Fenwick tree
// ---------------------------------------------------------------------------

TEST(FenwickTest, EmptyTreeSumsZero) {
  FenwickTree t;
  EXPECT_EQ(t.total(), 0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FenwickTest, SingleElement) {
  FenwickTree t;
  t.add(0, 5);
  EXPECT_EQ(t.prefix_sum(0), 5);
  EXPECT_EQ(t.total(), 5);
  EXPECT_EQ(t.suffix_sum_after(0), 0);
}

TEST(FenwickTest, PrefixSumsMatchNaive) {
  FenwickTree t;
  std::vector<std::int64_t> naive(200, 0);
  Rng rng(53);
  for (int op = 0; op < 2000; ++op) {
    const std::size_t i = rng.below(200);
    const auto delta = static_cast<std::int64_t>(rng.below(11)) - 5;
    t.add(i, delta);
    naive[i] += delta;
    const std::size_t q = rng.below(200);
    const std::int64_t expect =
        std::accumulate(naive.begin(), naive.begin() + q + 1,
                        std::int64_t{0});
    ASSERT_EQ(t.prefix_sum(q), expect) << "query at " << q;
  }
}

TEST(FenwickTest, SuffixSumAfter) {
  FenwickTree t;
  for (std::size_t i = 0; i < 10; ++i) t.add(i, 1);
  EXPECT_EQ(t.suffix_sum_after(4), 5);  // positions 5..9
  EXPECT_EQ(t.suffix_sum_after(9), 0);
  EXPECT_EQ(t.suffix_sum_after(0), 9);
}

TEST(FenwickTest, AppendGrowthPreservesEarlierCounts) {
  // Regression: a node appended at position j spans [j - lowbit(j) + 1, j]
  // and must absorb values added before the tree grew past j.
  FenwickTree t;
  for (std::size_t i = 0; i < 64; ++i) {
    t.add(i, 1);  // grow one position at a time, like the reuse tracker
    ASSERT_EQ(t.prefix_sum(i), static_cast<std::int64_t>(i + 1));
    ASSERT_EQ(t.total(), static_cast<std::int64_t>(i + 1));
  }
  EXPECT_EQ(t.suffix_sum_after(31), 32);
}

TEST(FenwickTest, InterleavedGrowthAndRemoval) {
  FenwickTree t;
  // Mark, grow, unmark in the access pattern the distance tree uses.
  t.add(0, 1);
  t.add(1, 1);
  t.add(0, -1);
  t.add(2, 1);
  t.add(3, 1);
  EXPECT_EQ(t.total(), 3);
  EXPECT_EQ(t.suffix_sum_after(0), 3);
  EXPECT_EQ(t.suffix_sum_after(1), 2);
}

TEST(FenwickTest, GrowsOnDemand) {
  FenwickTree t;
  t.add(1000, 3);
  EXPECT_GE(t.size(), 1001u);
  EXPECT_EQ(t.total(), 3);
  EXPECT_EQ(t.prefix_sum(999), 0);
}

TEST(FenwickTest, PrefixClampsBeyondSize) {
  FenwickTree t(4);
  t.add(2, 7);
  EXPECT_EQ(t.prefix_sum(1000), 7);
}

TEST(FenwickTest, LowerBoundFindsFirstPositionReachingK) {
  FenwickTree t(8);
  t.add(1, 2);
  t.add(4, 3);
  t.add(6, 1);
  EXPECT_EQ(t.lower_bound(1), 1u);
  EXPECT_EQ(t.lower_bound(2), 1u);
  EXPECT_EQ(t.lower_bound(3), 4u);
  EXPECT_EQ(t.lower_bound(5), 4u);
  EXPECT_EQ(t.lower_bound(6), 6u);
  EXPECT_EQ(t.lower_bound(7), t.size());  // total is 6: unreachable
}

TEST(FenwickTest, LowerBoundMatchesNaiveUnderChurn) {
  FenwickTree t(300);
  std::vector<std::int64_t> naive(300, 0);
  Rng rng(61);
  for (int op = 0; op < 3000; ++op) {
    const std::size_t i = rng.below(300);
    if (naive[i] == 0 || rng.chance(0.7)) {
      t.add(i, 1);
      ++naive[i];
    } else {
      t.add(i, -1);
      --naive[i];
    }
    const auto k = static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(t.total()) + 2)) + 1;
    std::size_t expect = naive.size();
    std::int64_t run = 0;
    for (std::size_t p = 0; p < naive.size(); ++p) {
      run += naive[p];
      if (run >= k) {
        expect = p;
        break;
      }
    }
    ASSERT_EQ(t.lower_bound(k), expect) << "k=" << k << " at op " << op;
  }
}

// ---------------------------------------------------------------------------
// PackedBitmap
// ---------------------------------------------------------------------------

TEST(PackedBitmapTest, AssignSetsSizeAndValue) {
  PackedBitmap b;
  b.assign(100, false);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(0, 100), 0u);
  b.assign(100, true);
  EXPECT_EQ(b.count(0, 100), 100u);
  // The tail beyond size must stay masked for word-level scans.
  EXPECT_EQ(b.word(1), (std::uint64_t{1} << 36) - 1);
}

TEST(PackedBitmapTest, SetResetTest) {
  PackedBitmap b;
  b.assign(130, false);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(0, 130), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(0, 130), 2u);
}

TEST(PackedBitmapTest, RangeCountMatchesNaive) {
  PackedBitmap b;
  std::vector<bool> naive(200, false);
  b.assign(200, false);
  Rng rng(67);
  for (int op = 0; op < 500; ++op) {
    const std::size_t i = rng.below(200);
    if (naive[i]) {
      b.reset(i);
      naive[i] = false;
    } else {
      b.set(i);
      naive[i] = true;
    }
    const std::size_t lo = rng.below(201);
    const std::size_t hi = lo + rng.below(201 - lo);
    std::size_t expect = 0;
    for (std::size_t p = lo; p < hi; ++p) expect += naive[p];
    ASSERT_EQ(b.count(lo, hi), expect) << "[" << lo << "," << hi << ")";
  }
}

TEST(PackedBitmapTest, WordExposesRawBits) {
  PackedBitmap b;
  b.assign(128, false);
  EXPECT_EQ(b.word_count(), 2u);
  b.set(3);
  b.set(65);
  EXPECT_EQ(b.word(0), std::uint64_t{1} << 3);
  EXPECT_EQ(b.word(1), std::uint64_t{1} << 1);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 3.0);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  h.add(0.0);
  h.add(10.0);
  EXPECT_NEAR(h.percentile(50), 5.0, 1e-9);
  EXPECT_NEAR(h.percentile(25), 2.5, 1e-9);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram h;
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
}

TEST(HistogramTest, EmptyThrows) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_THROW(h.percentile(50), std::out_of_range);
  EXPECT_THROW(h.min(), std::out_of_range);
  EXPECT_THROW(h.max(), std::out_of_range);
}

TEST(HistogramTest, CdfMonotone) {
  Histogram h;
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform(0, 100));
  double prev = -1;
  for (double x = 0; x <= 100; x += 5) {
    const double c = h.cdf_at(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf_at(100.0), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(-1.0), 0.0);
}

TEST(HistogramTest, CdfCountsInclusive) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(2.0);
  h.add(3.0);
  EXPECT_DOUBLE_EQ(h.cdf_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(h.cdf_at(1.9), 0.25);
}

TEST(BoxStatsTest, QuartilesAndOutliers) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  h.add(1000.0);  // a clear outlier
  const BoxStats b = box_stats(h);
  EXPECT_NEAR(b.median, 51.0, 1.0);
  EXPECT_LT(b.q1, b.median);
  EXPECT_GT(b.q3, b.median);
  EXPECT_EQ(b.outliers, 1u);
  EXPECT_LE(b.whisker_hi, 1000.0 - 1.0);
}

TEST(BoxStatsTest, EmptyIsZeroed) {
  Histogram h;
  const BoxStats b = box_stats(h);
  EXPECT_EQ(b.outliers, 0u);
  EXPECT_DOUBLE_EQ(b.median, 0.0);
}

TEST(FormatCdfTest, ProducesRequestedSteps) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  const std::string out = format_cdf(h, 0, 4, 4);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPoolTest, SubmitFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] {
    pool.submit([&] { counter.fetch_add(1); });
    counter.fetch_add(1);
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace adapt
