// Shared helpers for engine-level tests: minimal placement policies and a
// small, fast LSS geometry.
#pragma once

#include <cstdint>

#include "lss/config.h"
#include "lss/placement_policy.h"

namespace adapt::testing {

/// All user writes to group 0, all GC rewrites to group 1 (SepGC shape) —
/// the simplest valid policy for engine mechanics tests.
class TwoGroupPolicy final : public lss::PlacementPolicy {
 public:
  std::string_view name() const override { return "test-two-group"; }
  GroupId group_count() const override { return 2; }
  bool is_user_group(GroupId g) const override { return g == 0; }
  GroupId place_user_write(Lba, VTime) override { return 0; }
  GroupId place_gc_rewrite(Lba, GroupId, VTime) override { return 1; }
};

/// Routes user writes by LBA parity — exercises multi-user-group paths.
class ParityPolicy final : public lss::PlacementPolicy {
 public:
  std::string_view name() const override { return "test-parity"; }
  GroupId group_count() const override { return 3; }
  bool is_user_group(GroupId g) const override { return g < 2; }
  GroupId place_user_write(Lba lba, VTime) override {
    return static_cast<GroupId>(lba & 1);
  }
  GroupId place_gc_rewrite(Lba, GroupId, VTime) override { return 2; }
};

/// Small geometry: 4-block chunks (16 KiB), 8-block segments, 256 logical
/// blocks, generous over-provision so every policy fits.
inline lss::LssConfig small_config() {
  lss::LssConfig c;
  c.chunk_blocks = 4;
  c.segment_chunks = 2;
  c.logical_blocks = 256;
  c.over_provision = 0.75;
  c.coalesce_window_us = 100;
  c.free_segment_reserve = 4;
  return c;
}

}  // namespace adapt::testing
