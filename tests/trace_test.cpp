// Tests for src/trace: CSV parsing across the four formats, trace reading,
// synthetic generators, and workload statistics.
#include <sstream>

#include <gtest/gtest.h>

#include "trace/reader.h"
#include "trace/record.h"
#include "trace/synthetic.h"
#include "trace/workload_stats.h"

namespace adapt::trace {
namespace {

// ---------------------------------------------------------------------------
// parse_line
// ---------------------------------------------------------------------------

TEST(ParseLineTest, Canonical) {
  const auto r = parse_line("100,W,42,3", TraceFormat::kCanonical);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ts_us, 100u);
  EXPECT_EQ(r->op, OpType::kWrite);
  EXPECT_EQ(r->lba, 42u);
  EXPECT_EQ(r->blocks, 3u);
}

TEST(ParseLineTest, CanonicalRead) {
  const auto r = parse_line("0,R,1,1", TraceFormat::kCanonical);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->op, OpType::kRead);
}

TEST(ParseLineTest, SkipsBlankAndComments) {
  EXPECT_FALSE(parse_line("", TraceFormat::kCanonical).has_value());
  EXPECT_FALSE(parse_line("   ", TraceFormat::kCanonical).has_value());
  EXPECT_FALSE(parse_line("# comment", TraceFormat::kCanonical).has_value());
}

TEST(ParseLineTest, MalformedThrows) {
  EXPECT_THROW(parse_line("1,W,x,1", TraceFormat::kCanonical),
               std::invalid_argument);
  EXPECT_THROW(parse_line("1,W,2", TraceFormat::kCanonical),
               std::invalid_argument);
  EXPECT_THROW(parse_line("1,Q,2,3", TraceFormat::kCanonical),
               std::invalid_argument);
}

TEST(ParseLineTest, AlibabaFormat) {
  // device_id,opcode,offset_bytes,length_bytes,ts_us
  const auto r = parse_line("3,W,8192,8192,5000000", TraceFormat::kAlibaba);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ts_us, 5000000u);
  EXPECT_EQ(r->lba, 2u);      // 8192 / 4096
  EXPECT_EQ(r->blocks, 2u);   // 8192 bytes
  EXPECT_EQ(r->op, OpType::kWrite);
}

TEST(ParseLineTest, AlibabaUnalignedOffsetRoundsUp) {
  // offset 6144 (1.5 blocks): starts in block 1, 4096 bytes spanning into
  // block 2 -> 2 blocks.
  const auto r = parse_line("0,R,6144,4096,0", TraceFormat::kAlibaba);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lba, 1u);
  EXPECT_EQ(r->blocks, 2u);
}

TEST(ParseLineTest, TencentFormat) {
  // ts_sec,offset_sectors,size_sectors,io_type,volume
  const auto r = parse_line("1.5,16,8,1,77", TraceFormat::kTencent);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->ts_us, 1500000u);
  EXPECT_EQ(r->op, OpType::kWrite);
  EXPECT_EQ(r->lba, 2u);     // 16*512 / 4096
  EXPECT_EQ(r->blocks, 1u);  // 8*512 = 4096 bytes
}

TEST(ParseLineTest, TencentReadType) {
  const auto r = parse_line("0,0,8,0,1", TraceFormat::kTencent);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->op, OpType::kRead);
}

TEST(ParseLineTest, MsrcFormat) {
  // ts_100ns,host,disk,type,offset,size[,response]
  const auto r = parse_line("128166372003061629,usr,0,Write,8192,4096,100",
                            TraceFormat::kMsrc);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->op, OpType::kWrite);
  EXPECT_EQ(r->lba, 2u);
  EXPECT_EQ(r->blocks, 1u);
  EXPECT_EQ(r->ts_us, 12816637200306162u);
}

TEST(ParseLineTest, ZeroLengthCountsOneBlock) {
  const auto r = parse_line("0,W,0,0,0", TraceFormat::kAlibaba);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->blocks, 1u);
}

TEST(ParseLineTest, CustomBlockSize) {
  const auto r =
      parse_line("0,W,16384,16384,0", TraceFormat::kAlibaba, 16384);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lba, 1u);
  EXPECT_EQ(r->blocks, 1u);
}

// ---------------------------------------------------------------------------
// ParseError paths
//
// The literal lines below double as the seed corpus for the libFuzzer
// harness in fuzz/fuzz_trace_reader.cpp (fuzz/corpus/trace/) — if one of
// them changes behaviour here, regenerate the corpus file of the same name.
// ---------------------------------------------------------------------------

/// Expects `line` to throw ParseError with line_no 0 and a reason containing
/// `reason_piece`.
void expect_parse_error(std::string_view line, TraceFormat format,
                        std::string_view reason_piece) {
  try {
    parse_line(line, format);
    FAIL() << "no ParseError for: " << line;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line_no(), 0u) << line;
    EXPECT_NE(e.reason().find(reason_piece), std::string::npos)
        << "reason '" << e.reason() << "' lacks '" << reason_piece
        << "' for: " << line;
  }
}

TEST(ParseErrorTest, MalformedNumberFields) {
  expect_parse_error("x,W,1,1", TraceFormat::kCanonical, "malformed ts_us");
  expect_parse_error("1,W,0x10,1", TraceFormat::kCanonical, "malformed lba");
  expect_parse_error("1,W,-5,1", TraceFormat::kCanonical, "malformed lba");
  expect_parse_error("1,W,2,3.5", TraceFormat::kCanonical,
                     "malformed blocks");
}

TEST(ParseErrorTest, OverflowingFields) {
  // 2^64 = 18446744073709551616 does not fit u64.
  expect_parse_error("18446744073709551616,W,1,1", TraceFormat::kCanonical,
                     "overflowing ts_us");
  // Fits u64 but not the u32 block-count field.
  expect_parse_error("1,W,1,4294967296", TraceFormat::kCanonical,
                     "overflowing blocks");
  // offset + length overflows u64 during byte->block conversion.
  expect_parse_error("0,W,18446744073709551615,18446744073709551615,0",
                     TraceFormat::kAlibaba, "overflowing");
  // Sector->byte conversion (x512) overflows u64.
  expect_parse_error("1.0,36893488147419103232,8,1,0", TraceFormat::kTencent,
                     "overflowing");
}

TEST(ParseErrorTest, BadTimestamps) {
  expect_parse_error("-1.5,16,8,1,0", TraceFormat::kTencent,
                     "out-of-range ts_sec");
  expect_parse_error("nan,16,8,1,0", TraceFormat::kTencent,
                     "non-finite ts_sec");
  expect_parse_error("inf,16,8,1,0", TraceFormat::kTencent,
                     "non-finite ts_sec");
  expect_parse_error("1e300,16,8,1,0", TraceFormat::kTencent,
                     "out-of-range ts_sec");
}

TEST(ParseErrorTest, TooFewFieldsNamesCounts) {
  expect_parse_error("1,W,2", TraceFormat::kCanonical,
                     "too few fields for canonical (got 3, want 4)");
  expect_parse_error("1,W", TraceFormat::kAlibaba,
                     "too few fields for alibaba (got 2, want 5)");
  expect_parse_error("1,h,0,Read,8192", TraceFormat::kMsrc,
                     "too few fields for msrc (got 5, want 6)");
}

TEST(ParseErrorTest, BadOpLetter) {
  expect_parse_error("1,Q,2,3", TraceFormat::kCanonical, "malformed op");
  expect_parse_error("1,,2,3", TraceFormat::kCanonical, "malformed op");
  expect_parse_error("1,h,0,Flush,8192,4096", TraceFormat::kMsrc,
                     "malformed op");
}

TEST(ParseErrorTest, LbaRangeOverflow) {
  // lba at u64 max with a nonzero block count: lba + blocks would wrap.
  expect_parse_error("1,W,18446744073709551615,4", TraceFormat::kCanonical,
                     "overflowing lba");
}

TEST(ParseErrorTest, ReadTraceAttributesLineNumber) {
  std::istringstream in("0,W,0,1\n# comment\n\n5,W,bad,1\n");
  try {
    read_trace(in, TraceFormat::kCanonical);
    FAIL() << "no ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line_no(), 4u);  // comments and blanks still count as lines
    EXPECT_NE(e.reason().find("malformed lba"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("trace line 4:"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// read_trace / write_canonical
// ---------------------------------------------------------------------------

TEST(ReadTraceTest, RebasesTimestamps) {
  std::istringstream in("500,W,0,1\n700,W,4,2\n");
  const Volume v = read_trace(in, TraceFormat::kCanonical);
  ASSERT_EQ(v.records.size(), 2u);
  EXPECT_EQ(v.records[0].ts_us, 0u);
  EXPECT_EQ(v.records[1].ts_us, 200u);
}

TEST(ReadTraceTest, CapacityFromMaxBlock) {
  std::istringstream in("0,W,10,4\n0,W,2,1\n");
  const Volume v = read_trace(in, TraceFormat::kCanonical);
  EXPECT_EQ(v.capacity_blocks, 14u);
}

TEST(ReadTraceTest, ExplicitCapacityWins) {
  std::istringstream in("0,W,10,4\n");
  const Volume v = read_trace(in, TraceFormat::kCanonical, 4096, 1000);
  EXPECT_EQ(v.capacity_blocks, 1000u);
}

TEST(ReadTraceTest, RoundTripThroughCanonical) {
  Volume v;
  v.capacity_blocks = 100;
  v.records = {{0, OpType::kWrite, 5, 2},
               {10, OpType::kRead, 7, 1},
               {25, OpType::kWrite, 0, 16}};
  std::ostringstream out;
  write_canonical(out, v);
  std::istringstream in(out.str());
  const Volume round = read_trace(in, TraceFormat::kCanonical, 4096, 100);
  EXPECT_EQ(round.records, v.records);
}

// ---------------------------------------------------------------------------
// YCSB generator
// ---------------------------------------------------------------------------

TEST(YcsbTest, Deterministic) {
  YcsbConfig c;
  c.seed = 5;
  YcsbGenerator a(c);
  YcsbGenerator b(c);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(YcsbTest, TimestampsMonotone) {
  YcsbConfig c;
  YcsbGenerator gen(c);
  TimeUs prev = 0;
  for (int i = 0; i < 1000; ++i) {
    const Record r = gen.next();
    EXPECT_GE(r.ts_us, prev);
    prev = r.ts_us;
  }
}

TEST(YcsbTest, MeanInterarrivalApproximatelyHolds) {
  YcsbConfig c;
  c.mean_interarrival_us = 200;
  c.seed = 5;
  YcsbGenerator gen(c);
  Record last;
  for (int i = 0; i < 20000; ++i) last = gen.next();
  EXPECT_NEAR(static_cast<double>(last.ts_us) / 20000, 200.0, 10.0);
}

TEST(YcsbTest, LbasWithinWorkingSet) {
  YcsbConfig c;
  c.working_set_blocks = 1 << 12;
  c.request_blocks = 4;
  YcsbGenerator gen(c);
  for (int i = 0; i < 5000; ++i) {
    const Record r = gen.next();
    EXPECT_LE(r.lba + r.blocks, c.working_set_blocks);
    EXPECT_EQ(r.lba % c.request_blocks, 0u);
  }
}

TEST(YcsbTest, ReadRatioHolds) {
  YcsbConfig c;
  c.read_ratio = 0.5;
  c.seed = 9;
  YcsbGenerator gen(c);
  int reads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.next().op == OpType::kRead) ++reads;
  }
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.5, 0.02);
}

TEST(YcsbTest, VolumeHitsWriteTarget) {
  YcsbConfig c;
  c.working_set_blocks = 1 << 10;
  const Volume v = make_ycsb_volume(c, 5000);
  std::uint64_t written = 0;
  for (const Record& r : v.records) {
    if (r.op == OpType::kWrite) written += r.blocks;
  }
  EXPECT_GE(written, 5000u);
  EXPECT_LT(written, 5000u + 64);
}

// ---------------------------------------------------------------------------
// Cloud volume model
// ---------------------------------------------------------------------------

class CloudProfileTest
    : public ::testing::TestWithParam<CloudProfile> {};

TEST_P(CloudProfileTest, ParamsAreDeterministic) {
  CloudVolumeModel a(GetParam(), 99);
  CloudVolumeModel b(GetParam(), 99);
  for (std::uint64_t vid = 0; vid < 10; ++vid) {
    const VolumeParams pa = a.draw_params(vid);
    const VolumeParams pb = b.draw_params(vid);
    EXPECT_EQ(pa.working_set_blocks, pb.working_set_blocks);
    EXPECT_DOUBLE_EQ(pa.rate_per_sec, pb.rate_per_sec);
    EXPECT_DOUBLE_EQ(pa.zipf_alpha, pb.zipf_alpha);
  }
}

TEST_P(CloudProfileTest, ParamsWithinProfileRanges) {
  CloudVolumeModel model(GetParam(), 7);
  const CloudProfile& prof = GetParam();
  for (std::uint64_t vid = 0; vid < 50; ++vid) {
    const VolumeParams p = model.draw_params(vid);
    EXPECT_GE(p.zipf_alpha, prof.alpha_lo);
    EXPECT_LE(p.zipf_alpha, prof.alpha_hi);
    EXPECT_GE(p.working_set_blocks, prof.min_ws_blocks);
    EXPECT_LE(p.working_set_blocks, prof.max_ws_blocks);
    EXPECT_GT(p.rate_per_sec, 0.0);
  }
}

TEST_P(CloudProfileTest, VolumeAddressesStayInCapacity) {
  CloudVolumeModel model(GetParam(), 11);
  const Volume v = model.make_volume(0, 1.0);
  for (const Record& r : v.records) {
    EXPECT_LT(r.lba, v.capacity_blocks);
  }
}

TEST_P(CloudProfileTest, FillFactorControlsWriteVolume) {
  CloudVolumeModel model(GetParam(), 13);
  const Volume v = model.make_volume(3, 2.0);
  std::uint64_t written = 0;
  for (const Record& r : v.records) {
    if (r.op == OpType::kWrite) written += r.blocks;
  }
  EXPECT_GE(written, 2 * v.capacity_blocks);
  EXPECT_LT(written, 2 * v.capacity_blocks + 64);
}

INSTANTIATE_TEST_SUITE_P(Profiles, CloudProfileTest,
                         ::testing::Values(alibaba_profile(),
                                           tencent_profile(),
                                           msrc_profile()),
                         [](const auto& info) { return info.param.name; });

TEST(CloudCalibrationTest, RequestRateCdfMatchesFigure2a) {
  // Paper: 75-86% of volumes below 10 req/s, ~2-3% above 100 req/s.
  CloudVolumeModel model(alibaba_profile(), 21);
  int below10 = 0;
  int above100 = 0;
  const int n = 2000;
  for (int vid = 0; vid < n; ++vid) {
    const double rate = model.draw_params(vid).rate_per_sec;
    if (rate < 10) ++below10;
    if (rate > 100) ++above100;
  }
  EXPECT_NEAR(static_cast<double>(below10) / n, 0.80, 0.06);
  EXPECT_NEAR(static_cast<double>(above100) / n, 0.025, 0.02);
}

TEST(CloudCalibrationTest, WriteSizeCdfMatchesFigure2b) {
  // Paper: 69.8-80.9% of writes <= 8 KiB; 10.8-23.4% > 32 KiB.
  for (const auto& profile :
       {alibaba_profile(), tencent_profile(), msrc_profile()}) {
    Rng rng(23);
    int le8k = 0;
    int gt32k = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
      const std::uint32_t blocks =
          draw_request_blocks(profile.size_weights, rng);
      if (blocks <= 2) ++le8k;
      if (blocks > 8) ++gt32k;
    }
    const double p8 = static_cast<double>(le8k) / n;
    const double p32 = static_cast<double>(gt32k) / n;
    EXPECT_GE(p8, 0.65) << profile.name;
    EXPECT_LE(p8, 0.85) << profile.name;
    EXPECT_GE(p32, 0.08) << profile.name;
    EXPECT_LE(p32, 0.27) << profile.name;
  }
}

TEST(CloudModelTest, TimestampsMonotone) {
  CloudVolumeModel model(tencent_profile(), 31);
  const Volume v = model.make_volume(1, 1.0);
  TimeUs prev = 0;
  for (const Record& r : v.records) {
    EXPECT_GE(r.ts_us, prev);
    prev = r.ts_us;
  }
}

// ---------------------------------------------------------------------------
// Workload stats
// ---------------------------------------------------------------------------

TEST(WorkloadStatsTest, CountsAndRates) {
  Volume v;
  v.id = 9;
  v.capacity_blocks = 100;
  v.records = {{0, OpType::kWrite, 0, 2},
               {500000, OpType::kRead, 4, 1},
               {1000000, OpType::kWrite, 8, 4}};
  const VolumeStats s = compute_volume_stats(v);
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.write_requests, 2u);
  EXPECT_EQ(s.write_blocks, 6u);
  EXPECT_EQ(s.duration_us, 1000000u);
  EXPECT_DOUBLE_EQ(s.avg_request_rate_per_sec, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_write_size_bytes, 3.0 * 4096);
}

// Regression: duration must be the span between the first and last arrival,
// not the raw final timestamp — a trace starting at t=5s (e.g. a slice cut
// out of a longer capture) must not count the lead-in as elapsed time.
TEST(WorkloadStatsTest, ShiftedTimestampsDoNotInflateDuration) {
  Volume v;
  v.records = {{5000000, OpType::kWrite, 0, 1},
               {5500000, OpType::kWrite, 4, 1},
               {6000000, OpType::kRead, 8, 1}};
  const VolumeStats s = compute_volume_stats(v);
  EXPECT_EQ(s.duration_us, 1000000u);
  // 3 requests over 1 s of trace, not over 6 s of wall clock.
  EXPECT_DOUBLE_EQ(s.avg_request_rate_per_sec, 3.0);
}

TEST(WorkloadStatsTest, SingleRecordHasZeroDuration) {
  Volume v;
  v.records = {{7000000, OpType::kWrite, 0, 1}};
  const VolumeStats s = compute_volume_stats(v);
  EXPECT_EQ(s.duration_us, 0u);
  EXPECT_DOUBLE_EQ(s.avg_request_rate_per_sec, 0.0);
}

TEST(WorkloadStatsTest, EmptyVolume) {
  Volume v;
  const VolumeStats s = compute_volume_stats(v);
  EXPECT_EQ(s.requests, 0u);
  EXPECT_DOUBLE_EQ(s.avg_request_rate_per_sec, 0.0);
}

TEST(WorkloadStatsTest, DistributionsAcrossVolumes) {
  std::vector<Volume> volumes(2);
  volumes[0].records = {{0, OpType::kWrite, 0, 1},
                        {1000000, OpType::kWrite, 1, 2}};
  volumes[1].records = {{0, OpType::kWrite, 0, 8},
                        {2000000, OpType::kRead, 1, 1}};
  const WorkloadDistributions d = compute_distributions(volumes);
  EXPECT_EQ(d.request_rate_per_volume.count(), 2u);
  EXPECT_EQ(d.write_size_bytes.count(), 3u);
}

}  // namespace
}  // namespace adapt::trace
