// Runtime tests for the annotated synchronisation wrappers in
// common/sync.h. CI runs this binary under ThreadSanitizer (the tsan job),
// so every test is written to put real cross-thread contention on the
// wrappers: if LockGuard or CondVar mis-forwarded to the std primitive
// underneath, TSan would flag the unsynchronised accesses.
#include "common/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/annotations.h"

namespace adapt {
namespace {

TEST(SyncTest, LockGuardSerialisesCounterIncrements) {
  struct Shared {
    Mutex mu;
    long counter ADAPT_GUARDED_BY(mu) = 0;
  } shared;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  {
    std::vector<Thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&shared] {
        for (int i = 0; i < kPerThread; ++i) {
          LockGuard lock(shared.mu);
          ++shared.counter;
        }
      });
    }
  }  // Thread joins in its destructor
  LockGuard lock(shared.mu);
  EXPECT_EQ(shared.counter, static_cast<long>(kThreads) * kPerThread);
}

TEST(SyncTest, TryLockReportsContention) {
  Mutex mu;
  mu.lock();
  bool acquired_while_held = true;
  {
    Thread t([&] {
      if (mu.try_lock()) {
        acquired_while_held = true;
        mu.unlock();
      } else {
        acquired_while_held = false;
      }
    });
  }
  EXPECT_FALSE(acquired_while_held);
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncTest, LockGuardOwnsExactlyItsMutex) {
  Mutex a;
  Mutex b;
  LockGuard lock(a);
  EXPECT_TRUE(lock.owns(a));
  EXPECT_FALSE(lock.owns(b));
}

// The canonical handshake: a producer publishes under the mutex and
// notifies; the consumer waits in a predicate loop. Exercises the
// release/reacquire path inside CondVar::wait.
TEST(SyncTest, CondVarHandshake) {
  struct Channel {
    Mutex mu;
    CondVar ready;
    int value ADAPT_GUARDED_BY(mu) = 0;
    bool has_value ADAPT_GUARDED_BY(mu) = false;
  } ch;
  int received = 0;
  {
    Thread consumer([&ch, &received] {
      LockGuard lock(ch.mu);
      while (!ch.has_value) ch.ready.wait(ch.mu, lock);
      received = ch.value;
    });
    Thread producer([&ch] {
      {
        LockGuard lock(ch.mu);
        ch.value = 42;
        ch.has_value = true;
      }
      ch.ready.notify_one();
    });
  }
  EXPECT_EQ(received, 42);
}

TEST(SyncTest, CondVarNotifyAllWakesEveryWaiter) {
  struct Gate {
    Mutex mu;
    CondVar open;
    bool released ADAPT_GUARDED_BY(mu) = false;
    int through ADAPT_GUARDED_BY(mu) = 0;
  } gate;
  constexpr int kWaiters = 6;
  {
    std::vector<Thread> waiters;
    waiters.reserve(kWaiters);
    for (int i = 0; i < kWaiters; ++i) {
      waiters.emplace_back([&gate] {
        LockGuard lock(gate.mu);
        while (!gate.released) gate.open.wait(gate.mu, lock);
        ++gate.through;
      });
    }
    {
      LockGuard lock(gate.mu);
      gate.released = true;
    }
    gate.open.notify_all();
  }
  LockGuard lock(gate.mu);
  EXPECT_EQ(gate.through, kWaiters);
}

TEST(SyncTest, ThreadJoinsOnDestruction) {
  int ran = 0;
  {
    Thread t([&ran] { ran = 1; });
    // No explicit join: the destructor must join before `ran` is read.
  }
  EXPECT_EQ(ran, 1);
}

TEST(SyncTest, ThreadMoveAssignJoinsTheReplacedThread) {
  int first = 0;
  int second = 0;
  Thread t([&first] { first = 1; });
  t = Thread([&second] { second = 1; });  // must join the first thread
  EXPECT_EQ(first, 1);
  t.join();
  EXPECT_EQ(second, 1);
}

TEST(SyncTest, DefaultThreadIsNotJoinable) {
  Thread t;
  EXPECT_FALSE(t.joinable());
}

TEST(SyncTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(hardware_concurrency(), 1u);
}

}  // namespace
}  // namespace adapt
