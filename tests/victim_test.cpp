// Unit tests for the victim-selection policies against hand-crafted
// segment pools, driven through the incremental index interface
// (bind_pool + on_seal / on_valid_delta / on_free).
#include <vector>

#include <gtest/gtest.h>

#include "lss/victim_policy.h"

namespace adapt::lss {
namespace {

// Builds a sealed segment with the given valid count and seal time.
Segment sealed_segment(std::uint32_t blocks, std::uint32_t valid,
                       VTime seal_vtime) {
  Segment s;
  s.reset(blocks);
  s.free = false;
  s.sealed = true;
  s.write_ptr = blocks;
  s.valid_count = valid;
  s.seal_vtime = seal_vtime;
  return s;
}

struct Pool {
  std::uint32_t blocks;
  std::vector<Segment> segments;

  explicit Pool(std::uint32_t blocks = 8) : blocks(blocks) {}

  void add(std::uint32_t valid, VTime seal_vtime) {
    segments.push_back(sealed_segment(blocks, valid, seal_vtime));
  }

  /// Binds `policy` to this pool and replays the seals in add() order
  /// (which the tests keep consistent with seal_vtime order, as the
  /// engine would).
  void prime(VictimPolicy& policy) const {
    policy.bind_pool(static_cast<std::uint32_t>(segments.size()), blocks);
    for (SegmentId id = 0; id < segments.size(); ++id) {
      policy.on_seal(id, segments[id].valid_count,
                     segments[id].seal_vtime);
    }
  }

  /// Applies an invalidation to the pool and notifies the policy.
  void invalidate(VictimPolicy& policy, SegmentId id, std::uint32_t by = 1) {
    Segment& seg = segments.at(id);
    const std::uint32_t old_valid = seg.valid_count;
    seg.valid_count -= by;
    policy.on_valid_delta(id, old_valid, seg.valid_count);
  }
};

TEST(GreedyTest, PicksLeastValid) {
  Pool pool;
  pool.add(5, 0);
  pool.add(2, 0);
  pool.add(7, 0);
  Rng rng(1);
  auto policy = make_greedy();
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 1u);
}

TEST(GreedyTest, EmptyCandidatesReturnsInvalid) {
  Pool pool;
  Rng rng(1);
  auto policy = make_greedy();
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 0, rng), kInvalidSegment);
}

TEST(GreedyTest, TiesBreakTowardLowestId) {
  Pool pool;
  pool.add(4, 0);
  pool.add(2, 0);
  pool.add(2, 0);
  pool.add(2, 0);
  Rng rng(1);
  auto policy = make_greedy();
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 0, rng), 1u);
}

TEST(GreedyTest, TracksValidDeltas) {
  Pool pool;
  pool.add(5, 0);
  pool.add(3, 0);
  Rng rng(1);
  auto policy = make_greedy();
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 0, rng), 1u);
  // Drain segment 0 below segment 1: the index must follow.
  pool.invalidate(*policy, 0, 3);
  EXPECT_EQ(policy->select(pool.segments, 0, rng), 0u);
}

TEST(GreedyTest, FreedSegmentLeavesTheIndex) {
  Pool pool;
  pool.add(1, 0);
  pool.add(6, 0);
  Rng rng(1);
  auto policy = make_greedy();
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 0, rng), 0u);
  policy->on_free(0);
  EXPECT_EQ(policy->select(pool.segments, 0, rng), 1u);
  policy->on_free(1);
  EXPECT_EQ(policy->select(pool.segments, 0, rng), kInvalidSegment);
}

TEST(GreedyTest, ResealAfterFreeReenters) {
  Pool pool;
  pool.add(4, 0);
  pool.add(2, 1);
  Rng rng(1);
  auto policy = make_greedy();
  pool.prime(*policy);
  policy->on_free(1);
  // Segment 1 is reused and sealed again, now fuller than segment 0.
  pool.segments[1].valid_count = 8;
  pool.segments[1].seal_vtime = 9;
  policy->on_seal(1, 8, 9);
  EXPECT_EQ(policy->select(pool.segments, 10, rng), 0u);
}

TEST(CostBenefitTest, PrefersOlderAmongEquallyValid) {
  Pool pool;
  pool.add(4, /*seal_vtime=*/90);  // young
  pool.add(4, /*seal_vtime=*/10);  // old
  Rng rng(1);
  auto policy = make_cost_benefit();
  // Seals replayed oldest-first, as the engine would deliver them.
  policy->bind_pool(2, pool.blocks);
  policy->on_seal(1, 4, 10);
  policy->on_seal(0, 4, 90);
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 1u);
}

TEST(CostBenefitTest, EmptySegmentBeatsOldFullOne) {
  Pool pool;
  pool.add(8, 0);    // fully valid, ancient
  pool.add(0, 99);   // empty, young
  Rng rng(1);
  auto policy = make_cost_benefit();
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 1u);
}

TEST(CostBenefitTest, TradesAgeAgainstUtilization) {
  Pool pool;
  pool.add(6, 0);    // 75% valid but very old: (1-.75)*101/1.75 = 14.4
  pool.add(2, 99);   // 25% valid but brand new: (1-.25)*2/1.25 = 1.2
  Rng rng(1);
  auto policy = make_cost_benefit();
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 0u);
}

TEST(CostBenefitTest, ValidDeltaMovesBuckets) {
  Pool pool;
  pool.add(7, 0);   // old but nearly full
  pool.add(2, 50);  // newer, mostly dead
  Rng rng(1);
  auto policy = make_cost_benefit();
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 1u);
  // Invalidate segment 0 down to empty: (1-0)*101/1 beats segment 1.
  pool.invalidate(*policy, 0, 7);
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 0u);
}

TEST(DChoiceTest, WithLargeDMatchesGreedy) {
  Pool pool;
  for (std::uint32_t v = 8; v > 0; --v) pool.add(v, 0);
  Rng rng(5);
  auto policy = make_d_choice(64);
  pool.prime(*policy);
  // Sampling 64 times from 8 candidates virtually guarantees seeing the min.
  EXPECT_EQ(policy->select(pool.segments, 0, rng), 7u);
}

TEST(DChoiceTest, ReturnsSomeCandidate) {
  Pool pool;
  pool.add(1, 0);
  pool.add(2, 0);
  Rng rng(7);
  auto policy = make_d_choice(1);
  pool.prime(*policy);
  for (int i = 0; i < 20; ++i) {
    const SegmentId v = policy->select(pool.segments, 0, rng);
    EXPECT_LT(v, 2u);
  }
}

TEST(WindowedGreedyTest, RestrictsToOldestWindow) {
  Pool pool;
  pool.add(8, 0);   // oldest, fully valid
  pool.add(7, 1);   // second oldest
  pool.add(0, 50);  // newest, empty — outside window of 2
  Rng rng(1);
  auto policy = make_windowed_greedy(2);
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 1u);
}

TEST(WindowedGreedyTest, WindowLargerThanPoolIsGreedy) {
  Pool pool;
  pool.add(5, 0);
  pool.add(1, 99);
  Rng rng(1);
  auto policy = make_windowed_greedy(100);
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 1u);
}

TEST(WindowedGreedyTest, WindowSlidesWhenOldestIsFreed) {
  Pool pool;
  pool.add(8, 0);
  pool.add(7, 1);
  pool.add(0, 50);
  Rng rng(1);
  auto policy = make_windowed_greedy(2);
  pool.prime(*policy);
  policy->on_free(0);
  // Window of 2 now covers segments 1 and 2.
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 2u);
}

TEST(RandomTest, UniformOverCandidates) {
  Pool pool;
  pool.add(1, 0);
  pool.add(2, 0);
  pool.add(3, 0);
  Rng rng(11);
  auto policy = make_random();
  pool.prime(*policy);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    ++counts[policy->select(pool.segments, 0, rng)];
  }
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(VictimIndexTest, DoubleSealThrows) {
  Pool pool;
  pool.add(3, 0);
  auto policy = make_greedy();
  pool.prime(*policy);
  EXPECT_THROW(policy->on_seal(0, 3, 0), std::logic_error);
}

TEST(VictimIndexTest, FreeOfAbsentSegmentThrows) {
  Pool pool;
  pool.add(3, 0);
  auto policy = make_greedy();
  pool.prime(*policy);
  policy->on_free(0);
  EXPECT_THROW(policy->on_free(0), std::logic_error);
}

TEST(VictimFactoryTest, KnownNames) {
  EXPECT_EQ(make_victim_policy("greedy")->name(), "greedy");
  EXPECT_EQ(make_victim_policy("cost-benefit")->name(), "cost-benefit");
  EXPECT_EQ(make_victim_policy("d-choice")->name(), "d-choice");
  EXPECT_EQ(make_victim_policy("windowed")->name(), "windowed-greedy");
  EXPECT_EQ(make_victim_policy("random")->name(), "random");
}

TEST(VictimFactoryTest, UnknownNameThrows) {
  EXPECT_THROW(make_victim_policy("lru"), std::invalid_argument);
}

TEST(VictimFactoryTest, ParameterizedDChoice) {
  Pool pool;
  for (std::uint32_t v = 8; v > 0; --v) pool.add(v, 0);
  Rng rng(5);
  auto policy = make_victim_policy("d-choice:64");
  EXPECT_EQ(policy->name(), "d-choice");
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 0, rng), 7u);
}

TEST(VictimFactoryTest, ParameterizedWindow) {
  Pool pool;
  pool.add(8, 0);
  pool.add(0, 50);
  Rng rng(1);
  // window=1 restricts to the single oldest segment regardless of valid.
  auto policy = make_victim_policy("windowed:1");
  EXPECT_EQ(policy->name(), "windowed-greedy");
  pool.prime(*policy);
  EXPECT_EQ(policy->select(pool.segments, 100, rng), 0u);
}

TEST(VictimFactoryTest, MalformedParametersThrow) {
  EXPECT_THROW(make_victim_policy("d-choice:"), std::invalid_argument);
  EXPECT_THROW(make_victim_policy("d-choice:x"), std::invalid_argument);
  EXPECT_THROW(make_victim_policy("d-choice:8x"), std::invalid_argument);
  EXPECT_THROW(make_victim_policy("d-choice:0"), std::invalid_argument);
  EXPECT_THROW(make_victim_policy("windowed:-1"), std::invalid_argument);
  EXPECT_THROW(make_victim_policy("windowed:"), std::invalid_argument);
}

TEST(VictimFactoryTest, ParameterOnUnparameterizedPolicyThrows) {
  EXPECT_THROW(make_victim_policy("greedy:4"), std::invalid_argument);
  EXPECT_THROW(make_victim_policy("cost-benefit:2"), std::invalid_argument);
  EXPECT_THROW(make_victim_policy("random:1"), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::lss
