// Unit tests for the victim-selection policies against hand-crafted
// segment pools.
#include <vector>

#include <gtest/gtest.h>

#include "lss/victim_policy.h"

namespace adapt::lss {
namespace {

// Builds a sealed segment with the given valid count and seal time.
Segment sealed_segment(std::uint32_t blocks, std::uint32_t valid,
                       VTime seal_vtime) {
  Segment s;
  s.reset(blocks);
  s.free = false;
  s.sealed = true;
  s.write_ptr = blocks;
  s.valid_count = valid;
  s.seal_vtime = seal_vtime;
  return s;
}

struct Pool {
  std::vector<Segment> segments;
  std::vector<SegmentId> candidates;

  void add(std::uint32_t valid, VTime seal_vtime, std::uint32_t blocks = 8) {
    segments.push_back(sealed_segment(blocks, valid, seal_vtime));
    candidates.push_back(static_cast<SegmentId>(segments.size() - 1));
  }
};

TEST(GreedyTest, PicksLeastValid) {
  Pool pool;
  pool.add(5, 0);
  pool.add(2, 0);
  pool.add(7, 0);
  Rng rng(1);
  auto policy = make_greedy();
  EXPECT_EQ(policy->select(pool.candidates, pool.segments, 100, rng), 1u);
}

TEST(GreedyTest, EmptyCandidatesReturnsInvalid) {
  Pool pool;
  Rng rng(1);
  auto policy = make_greedy();
  EXPECT_EQ(policy->select(pool.candidates, pool.segments, 0, rng),
            kInvalidSegment);
}

TEST(CostBenefitTest, PrefersOlderAmongEquallyValid) {
  Pool pool;
  pool.add(4, /*seal_vtime=*/90);  // young
  pool.add(4, /*seal_vtime=*/10);  // old
  Rng rng(1);
  auto policy = make_cost_benefit();
  EXPECT_EQ(policy->select(pool.candidates, pool.segments, 100, rng), 1u);
}

TEST(CostBenefitTest, EmptySegmentBeatsOldFullOne) {
  Pool pool;
  pool.add(8, 0);    // fully valid, ancient
  pool.add(0, 99);   // empty, young
  Rng rng(1);
  auto policy = make_cost_benefit();
  EXPECT_EQ(policy->select(pool.candidates, pool.segments, 100, rng), 1u);
}

TEST(CostBenefitTest, TradesAgeAgainstUtilization) {
  Pool pool;
  pool.add(6, 0);    // 75% valid but very old: (1-.75)*101/1.75 = 14.4
  pool.add(2, 99);   // 25% valid but brand new: (1-.25)*2/1.25 = 1.2
  Rng rng(1);
  auto policy = make_cost_benefit();
  EXPECT_EQ(policy->select(pool.candidates, pool.segments, 100, rng), 0u);
}

TEST(DChoiceTest, WithLargeDMatchesGreedy) {
  Pool pool;
  for (std::uint32_t v = 8; v > 0; --v) pool.add(v, 0);
  Rng rng(5);
  auto policy = make_d_choice(64);
  // Sampling 64 times from 8 candidates virtually guarantees seeing the min.
  EXPECT_EQ(policy->select(pool.candidates, pool.segments, 0, rng), 7u);
}

TEST(DChoiceTest, ReturnsSomeCandidate) {
  Pool pool;
  pool.add(1, 0);
  pool.add(2, 0);
  Rng rng(7);
  auto policy = make_d_choice(1);
  for (int i = 0; i < 20; ++i) {
    const SegmentId v =
        policy->select(pool.candidates, pool.segments, 0, rng);
    EXPECT_LT(v, 2u);
  }
}

TEST(WindowedGreedyTest, RestrictsToOldestWindow) {
  Pool pool;
  pool.add(8, 0);   // oldest, fully valid
  pool.add(7, 1);   // second oldest
  pool.add(0, 50);  // newest, empty — outside window of 2
  Rng rng(1);
  auto policy = make_windowed_greedy(2);
  EXPECT_EQ(policy->select(pool.candidates, pool.segments, 100, rng), 1u);
}

TEST(WindowedGreedyTest, WindowLargerThanPoolIsGreedy) {
  Pool pool;
  pool.add(5, 0);
  pool.add(1, 99);
  Rng rng(1);
  auto policy = make_windowed_greedy(100);
  EXPECT_EQ(policy->select(pool.candidates, pool.segments, 100, rng), 1u);
}

TEST(RandomTest, UniformOverCandidates) {
  Pool pool;
  pool.add(1, 0);
  pool.add(2, 0);
  pool.add(3, 0);
  Rng rng(11);
  auto policy = make_random();
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    ++counts[policy->select(pool.candidates, pool.segments, 0, rng)];
  }
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(VictimFactoryTest, KnownNames) {
  EXPECT_EQ(make_victim_policy("greedy")->name(), "greedy");
  EXPECT_EQ(make_victim_policy("cost-benefit")->name(), "cost-benefit");
  EXPECT_EQ(make_victim_policy("d-choice")->name(), "d-choice");
  EXPECT_EQ(make_victim_policy("windowed")->name(), "windowed-greedy");
  EXPECT_EQ(make_victim_policy("random")->name(), "random");
}

TEST(VictimFactoryTest, UnknownNameThrows) {
  EXPECT_THROW(make_victim_policy("lru"), std::invalid_argument);
}

}  // namespace
}  // namespace adapt::lss
