// Tests for the audit layer itself.
//
// An auditor that cannot fail is untested: these tests corrupt engine state
// on purpose (through the test-only mutable segment hook) and assert that
// the tier that is supposed to catch each corruption actually throws —
// and that the cheaper tier stays quiet where the corruption is invisible
// to it, pinning the tier semantics.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "audit/audit.h"
#include "common/rng.h"
#include "lss/engine.h"
#include "lss/placement_policy.h"
#include "lss/victim_policy.h"

namespace adapt {
namespace {

using lss::LssConfig;
using lss::LssEngine;
using lss::Segment;

/// Round-robin placement over three groups; enough to fill segments.
class RoundRobinPolicy final : public lss::PlacementPolicy {
 public:
  std::string_view name() const override { return "round-robin"; }
  GroupId group_count() const override { return 3; }
  bool is_user_group(GroupId g) const override { return g < 2; }
  GroupId place_user_write(Lba lba, VTime /*now*/) override {
    return static_cast<GroupId>(lba % 2);
  }
  GroupId place_gc_rewrite(Lba /*lba*/, GroupId /*victim_group*/,
                           VTime /*now*/) override {
    return 2;
  }
  void note_segment_sealed(GroupId, VTime) override {}
  void note_segment_reclaimed(GroupId, VTime, VTime) override {}
  std::size_t memory_usage_bytes() const override { return 0; }
};

LssConfig small_config() {
  LssConfig cfg;
  cfg.chunk_blocks = 4;
  cfg.segment_chunks = 4;
  cfg.logical_blocks = 1024;
  cfg.over_provision = 0.5;
  return cfg;
}

class AuditTest : public ::testing::Test {
 protected:
  AuditTest()
      : victim_(lss::make_greedy()),
        engine_(small_config(), policy_, *victim_) {}

  /// Writes enough skewed traffic to seal segments and run GC.
  void churn(int ops = 3000) {
    Rng rng(7);
    TimeUs now = 0;
    for (int i = 0; i < ops; ++i) {
      now += rng.below(120);
      engine_.write(rng.below(512), 1 + static_cast<std::uint32_t>(rng.below(3)),
                    now);
    }
    engine_.check_invariants(audit::Level::kFull);
  }

  /// Some sealed, non-free segment id.
  SegmentId sealed_segment() {
    for (SegmentId id = 0;
         id < static_cast<SegmentId>(engine_.segments().size()); ++id) {
      const Segment& seg = engine_.segments()[id];
      if (!seg.free && seg.sealed && seg.valid_count > 0) return id;
    }
    throw std::runtime_error("no sealed segment after churn");
  }

  RoundRobinPolicy policy_;
  std::unique_ptr<lss::VictimPolicy> victim_;
  LssEngine engine_;
};

TEST_F(AuditTest, CleanEnginePassesEveryTier) {
  churn();
  engine_.check_invariants(audit::Level::kOff);
  engine_.check_invariants(audit::Level::kCounters);
  engine_.check_invariants(audit::Level::kFull);
}

TEST_F(AuditTest, FullAuditCatchesValidCounterDrift) {
  churn();
  Segment& seg = engine_.corrupt_segment_for_test(sealed_segment());
  ++seg.valid_count;
  // Counter drift on one segment is invisible to the counters tier (it
  // cross-checks running totals, not per-segment popcounts) ...
  EXPECT_NO_THROW(engine_.check_invariants(audit::Level::kCounters));
  // ... and is exactly what the full structural audit exists to catch.
  EXPECT_THROW(engine_.check_invariants(audit::Level::kFull),
               std::logic_error);
}

TEST_F(AuditTest, FullAuditCatchesBitmapCorruption) {
  churn();
  const SegmentId id = sealed_segment();
  Segment& seg = engine_.corrupt_segment_for_test(id);
  // Flip one live slot dead: popcount now disagrees with valid_count and
  // the block map points at a dead slot.
  for (std::uint32_t slot = 0; slot < seg.write_ptr; ++slot) {
    if (seg.slot_valid.test(slot)) {
      seg.slot_valid.reset(slot);
      break;
    }
  }
  EXPECT_THROW(engine_.check_invariants(audit::Level::kFull),
               std::logic_error);
}

TEST_F(AuditTest, FullAuditCatchesSlotLbaCorruption) {
  churn();
  const SegmentId id = sealed_segment();
  const Segment& seg = engine_.segments()[id];
  for (std::uint32_t slot = 0; slot < seg.write_ptr; ++slot) {
    if (seg.slot_valid.test(slot)) {
      engine_.corrupt_slot_lba_for_test(id, slot) ^= 1;
      break;
    }
  }
  EXPECT_THROW(engine_.check_invariants(audit::Level::kFull),
               std::logic_error);
}

TEST_F(AuditTest, FullAuditCatchesVictimIndexMembershipDrift) {
  churn();
  // A sealed candidate suddenly pretending to be free: the index still
  // holds it, so membership no longer mirrors pool state.
  engine_.corrupt_segment_for_test(sealed_segment()).free = true;
  EXPECT_THROW(engine_.check_invariants(audit::Level::kFull),
               std::logic_error);
}

TEST_F(AuditTest, CountersAuditCatchesOpenSegmentCorruption) {
  churn();
  // Find the open segment of some group and seal it behind the engine's
  // back — the O(groups) tier must notice without any structural walk.
  for (GroupId g = 0; g < engine_.group_count(); ++g) {
    if (engine_.pending_blocks(g) == 0) continue;
    const Lba probe = [&] {
      for (Lba lba = 0; lba < small_config().logical_blocks; ++lba) {
        if (engine_.is_pending(lba) &&
            engine_.segments()[engine_.locate(lba).segment].group == g) {
          return lba;
        }
      }
      return kInvalidLba;
    }();
    if (probe == kInvalidLba) continue;
    const SegmentId open_seg = engine_.locate(probe).segment;
    engine_.corrupt_segment_for_test(open_seg).sealed = true;
    EXPECT_THROW(engine_.check_invariants(audit::Level::kCounters),
                 std::logic_error);
    return;
  }
  GTEST_SKIP() << "no pending blocks after churn (unexpected but harmless)";
}

// -- level plumbing ----------------------------------------------------------

TEST(AuditLevelTest, ParseRoundTrip) {
  EXPECT_EQ(audit::parse_level("off"), audit::Level::kOff);
  EXPECT_EQ(audit::parse_level("counters"), audit::Level::kCounters);
  EXPECT_EQ(audit::parse_level("full"), audit::Level::kFull);
  EXPECT_EQ(audit::parse_level("FULL"), std::nullopt);
  EXPECT_EQ(audit::parse_level(""), std::nullopt);
  for (const audit::Level level :
       {audit::Level::kOff, audit::Level::kCounters, audit::Level::kFull}) {
    EXPECT_EQ(audit::parse_level(audit::to_string(level)), level);
  }
  EXPECT_TRUE(audit::at_least(audit::Level::kFull, audit::Level::kCounters));
  EXPECT_FALSE(audit::at_least(audit::Level::kOff, audit::Level::kCounters));
}

class AuditEnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(audit::kEnvVar); }
};

TEST_F(AuditEnvTest, EnvOverridesConfiguredLevel) {
  ASSERT_EQ(::setenv(audit::kEnvVar, "full", 1), 0);
  EXPECT_EQ(audit::level_from_env(audit::Level::kOff), audit::Level::kFull);

  RoundRobinPolicy policy;
  const auto victim = lss::make_greedy();
  LssConfig cfg = small_config();
  cfg.audit_level = audit::Level::kOff;
  const LssEngine engine(cfg, policy, *victim);
  EXPECT_EQ(engine.audit_level(), audit::Level::kFull);
}

TEST_F(AuditEnvTest, UnsetAndEmptyEnvKeepConfiguredLevel) {
  ::unsetenv(audit::kEnvVar);
  EXPECT_EQ(audit::level_from_env(audit::Level::kCounters),
            audit::Level::kCounters);
  ASSERT_EQ(::setenv(audit::kEnvVar, "", 1), 0);
  EXPECT_EQ(audit::level_from_env(audit::Level::kCounters),
            audit::Level::kCounters);
}

TEST_F(AuditEnvTest, GarbageEnvValueFailsLoudly) {
  ASSERT_EQ(::setenv(audit::kEnvVar, "fulll", 1), 0);
  EXPECT_THROW(audit::level_from_env(audit::Level::kOff),
               std::invalid_argument);
}

}  // namespace
}  // namespace adapt
