// Replay-determinism regression: the same volume replayed twice with the
// same seed must produce byte-identical adapt-series-v1 JSONL and identical
// LssMetrics — with sampling on or off, and through the sharded parallel
// replay path. Guards against hidden nondeterminism creeping into the
// engine (iteration order over hash maps, uninitialised state, thread
// scheduling leaking into results).
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace adapt {
namespace {

trace::Volume test_volume() {
  trace::CloudVolumeModel model(trace::alibaba_profile(), /*seed=*/42);
  return model.make_volume(/*index=*/0, /*fill_factor=*/1.5);
}

sim::SimConfig sampled_config(std::uint32_t shards) {
  sim::SimConfig config;
  config.seed = 42;
  config.shards = shards;
  config.sampling_enabled = true;
  config.sampling.window_blocks = 512;
  config.sampling.max_rows = 64;
  return config;
}

std::string series_bytes(const sim::VolumeResult& result) {
  std::ostringstream out;
  obs::write_series_jsonl(out, *result.series);
  return out.str();
}

void expect_same_metrics(const lss::LssMetrics& a, const lss::LssMetrics& b) {
  EXPECT_EQ(a.user_blocks, b.user_blocks);
  EXPECT_EQ(a.gc_blocks, b.gc_blocks);
  EXPECT_EQ(a.shadow_blocks, b.shadow_blocks);
  EXPECT_EQ(a.padding_blocks, b.padding_blocks);
  EXPECT_EQ(a.gc_runs, b.gc_runs);
  EXPECT_EQ(a.gc_migrated_blocks, b.gc_migrated_blocks);
  EXPECT_EQ(a.forced_lazy_flushes, b.forced_lazy_flushes);
  EXPECT_EQ(a.rmw_flushes, b.rmw_flushes);
  EXPECT_EQ(a.rmw_blocks, b.rmw_blocks);
  EXPECT_EQ(a.rmw_read_blocks, b.rmw_read_blocks);
  EXPECT_EQ(a.read_blocks, b.read_blocks);
  EXPECT_EQ(a.read_chunk_fetches, b.read_chunk_fetches);
  EXPECT_EQ(a.read_buffer_hits, b.read_buffer_hits);
  EXPECT_EQ(a.read_unmapped, b.read_unmapped);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].total_blocks(), b.groups[g].total_blocks())
        << "group " << g;
    EXPECT_EQ(a.groups[g].segments_sealed, b.groups[g].segments_sealed)
        << "group " << g;
  }
}

TEST(DeterminismTest, RepeatedReplayIsByteIdentical) {
  const trace::Volume volume = test_volume();
  const sim::SimConfig config = sampled_config(/*shards=*/1);
  const sim::VolumeResult first = sim::run_volume(volume, "adapt", config);
  const sim::VolumeResult second = sim::run_volume(volume, "adapt", config);

  ASSERT_NE(first.series, nullptr);
  ASSERT_FALSE(first.series->rows.empty());
  EXPECT_EQ(series_bytes(first), series_bytes(second));
  expect_same_metrics(first.metrics, second.metrics);
  EXPECT_EQ(first.segments_per_group, second.segments_per_group);
  // The emitted series must also pass its own schema validator.
  EXPECT_EQ(obs::validate_series_jsonl(series_bytes(first)),
            first.series->rows.size());
}

TEST(DeterminismTest, SamplingIsPassive) {
  const trace::Volume volume = test_volume();
  sim::SimConfig sampled = sampled_config(/*shards=*/1);
  sim::SimConfig unsampled = sampled;
  unsampled.sampling_enabled = false;

  const sim::VolumeResult with = sim::run_volume(volume, "adapt", sampled);
  const sim::VolumeResult without =
      sim::run_volume(volume, "adapt", unsampled);
  EXPECT_EQ(without.series, nullptr);
  expect_same_metrics(with.metrics, without.metrics);
  EXPECT_EQ(with.segments_per_group, without.segments_per_group);
}

TEST(DeterminismTest, ShardedParallelReplayIsByteIdentical) {
  const trace::Volume volume = test_volume();
  const sim::SimConfig config = sampled_config(/*shards=*/2);
  const sim::VolumeResult first = sim::run_volume(volume, "adapt", config);
  const sim::VolumeResult second = sim::run_volume(volume, "adapt", config);

  ASSERT_NE(first.series, nullptr);
  EXPECT_EQ(series_bytes(first), series_bytes(second));
  expect_same_metrics(first.metrics, second.metrics);
  EXPECT_EQ(first.segments_per_group, second.segments_per_group);
}

}  // namespace
}  // namespace adapt
