// Cross-module integration tests: the full stack (trace -> placement ->
// engine -> array) exercised together, plus qualitative shape checks that
// mirror the paper's headline observations on small workloads.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/reader.h"
#include "trace/synthetic.h"

#include <sstream>

namespace adapt {
namespace {

// ---------------------------------------------------------------------------
// Full pipeline from a CSV trace
// ---------------------------------------------------------------------------

TEST(PipelineTest, CsvTraceThroughSimulator) {
  std::ostringstream csv;
  for (int i = 0; i < 2000; ++i) {
    csv << i * 50 << ",W," << (i * 7) % 4096 << ",2\n";
  }
  std::istringstream in(csv.str());
  const trace::Volume volume =
      trace::read_trace(in, trace::TraceFormat::kCanonical, 4096, 8192);
  sim::SimConfig config;
  const sim::VolumeResult r = sim::run_volume(volume, "adapt", config);
  EXPECT_EQ(r.metrics.user_blocks, 4000u);
  EXPECT_GE(r.wa(), 1.0);
}

// ---------------------------------------------------------------------------
// Paper-shape checks (Observations 1-4, qualitative)
// ---------------------------------------------------------------------------

struct ShapeFixture : public ::testing::Test {
  static trace::Volume volume() {
    trace::CloudVolumeModel model(trace::alibaba_profile(), 77);
    return model.make_volume(0, 5.0);
  }
};

TEST_F(ShapeFixture, Observation2PaddingLivesInUserGroups) {
  // SepGC: padding concentrates in the user-written group, with minimal
  // presence in the GC-rewritten group.
  sim::SimConfig config;
  const sim::VolumeResult r = sim::run_volume(volume(), "sepgc", config);
  const auto& user = r.metrics.groups[0];
  const auto& gc = r.metrics.groups[1];
  EXPECT_GT(user.padding_blocks, 0u);
  EXPECT_LT(gc.padding_blocks, user.padding_blocks / 10 + 1);
}

TEST_F(ShapeFixture, Observation3MoreUserGroupsMorePadding) {
  // Splitting user writes across many groups (WARCIP: 5) pads more than
  // keeping them together (SepGC: 1).
  sim::SimConfig config;
  const auto sepgc = sim::run_volume(volume(), "sepgc", config);
  const auto warcip = sim::run_volume(volume(), "warcip", config);
  EXPECT_GT(warcip.metrics.padding_blocks, sepgc.metrics.padding_blocks);
}

TEST_F(ShapeFixture, Observation4GcGroupsHoldMostCapacity) {
  // For the user/GC-separating schemes, GC groups end up owning most of
  // the occupied segments.
  sim::SimConfig config;
  const auto r = sim::run_volume(volume(), "sepbit", config);
  std::uint64_t user_segs = 0;
  std::uint64_t gc_segs = 0;
  for (std::size_t g = 0; g < r.segments_per_group.size(); ++g) {
    if (g <= 1) {
      user_segs += r.segments_per_group[g];
    } else {
      gc_segs += r.segments_per_group[g];
    }
  }
  EXPECT_GT(gc_segs, user_segs);
}

TEST_F(ShapeFixture, AdaptBeatsTemperatureBaselinesOnWa) {
  sim::SimConfig config;
  const double adapt_wa = sim::run_volume(volume(), "adapt", config).wa();
  for (const char* baseline : {"mida", "dac", "warcip", "sepbit"}) {
    EXPECT_LT(adapt_wa, sim::run_volume(volume(), baseline, config).wa())
        << baseline;
  }
}

TEST_F(ShapeFixture, AdaptPadsLessThanSepBit) {
  sim::SimConfig config;
  const auto adapt = sim::run_volume(volume(), "adapt", config);
  const auto sepbit = sim::run_volume(volume(), "sepbit", config);
  EXPECT_LT(adapt.padding_ratio(), sepbit.padding_ratio());
}

TEST(ShapeDensityTest, DenseTrafficErasesPaddingForSepGc) {
  trace::YcsbConfig wc;
  wc.working_set_blocks = 1u << 14;
  wc.mean_interarrival_us = 1.0;  // far below the 100 us window
  wc.seed = 3;
  const trace::Volume volume = trace::make_ycsb_volume(wc, 3u << 14);
  sim::SimConfig config;
  const auto r = sim::run_volume(volume, "sepgc", config);
  EXPECT_LT(r.padding_ratio(), 0.02);
}

TEST(ShapeDensityTest, SparseTrafficPadsHeavily) {
  trace::YcsbConfig wc;
  wc.working_set_blocks = 1u << 14;
  wc.mean_interarrival_us = 2000.0;  // every chunk misses the window
  wc.seed = 3;
  const trace::Volume volume = trace::make_ycsb_volume(wc, 2u << 14);
  sim::SimConfig config;
  const auto r = sim::run_volume(volume, "sepgc", config);
  EXPECT_GT(r.padding_ratio(), 0.5);
}

TEST(ShapeSkewTest, UniformWorkloadEqualizesSchemes) {
  // At alpha = 0 every block looks alike; hot/cold separation cannot win
  // more than a small margin over SepGC.
  trace::YcsbConfig wc;
  wc.working_set_blocks = 1u << 14;
  wc.zipf_alpha = 0.0;
  wc.mean_interarrival_us = 1.0;  // dense: no padding anywhere
  wc.seed = 9;
  const trace::Volume volume = trace::make_ycsb_volume(wc, 4u << 14);
  sim::SimConfig config;
  const double sepgc = sim::run_volume(volume, "sepgc", config).wa();
  const double adapt = sim::run_volume(volume, "adapt", config).wa();
  EXPECT_NEAR(adapt / sepgc, 1.0, 0.25);
}

}  // namespace
}  // namespace adapt
