// End-to-end tests for the trace-driven simulator and the experiment
// runner.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace adapt::sim {
namespace {

trace::Volume small_cloud_volume(std::uint64_t seed = 3) {
  trace::CloudVolumeModel model(trace::alibaba_profile(), seed);
  return model.make_volume(0, 3.0);
}

trace::Volume small_ycsb_volume() {
  trace::YcsbConfig c;
  c.working_set_blocks = 1u << 14;
  c.mean_interarrival_us = 50;
  c.seed = 17;
  return trace::make_ycsb_volume(c, 3u << 14);
}

class PolicyRunTest : public ::testing::TestWithParam<std::string_view> {};

TEST_P(PolicyRunTest, RunsEveryPolicyEndToEnd) {
  const trace::Volume volume = small_ycsb_volume();
  SimConfig config;
  const VolumeResult r = run_volume(volume, GetParam(), config);
  EXPECT_EQ(r.policy, GetParam());
  EXPECT_GT(r.metrics.user_blocks, 0u);
  EXPECT_GE(r.wa(), 1.0);
  EXPECT_GE(r.padding_ratio(), 0.0);
  EXPECT_LT(r.padding_ratio(), 1.0);
  EXPECT_FALSE(r.segments_per_group.empty());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyRunTest,
                         ::testing::ValuesIn(all_policy_names()),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(SimulatorTest, AggregationWrapperPolicyNames) {
  const trace::Volume volume = small_cloud_volume();
  SimConfig config;
  const VolumeResult base = run_volume(volume, "sepbit", config);
  const VolumeResult agg = run_volume(volume, "sepbit+agg", config);
  EXPECT_EQ(agg.policy, "sepbit+agg");
  EXPECT_GT(agg.metrics.shadow_blocks, 0u);
  EXPECT_EQ(base.metrics.shadow_blocks, 0u);
  EXPECT_LE(agg.metrics.padding_blocks, base.metrics.padding_blocks);
}

TEST(SimulatorTest, WrapperOnSingleUserGroupThrows) {
  SimConfig config;
  EXPECT_THROW(run_volume(small_cloud_volume(), "sepgc+agg", config),
               std::invalid_argument);
}

TEST(SimulatorTest, RmwModeEliminatesPadding) {
  const trace::Volume volume = small_cloud_volume();
  SimConfig config;
  config.lss.partial_write_mode = lss::PartialWriteMode::kReadModifyWrite;
  const VolumeResult r = run_volume(volume, "sepbit", config);
  EXPECT_EQ(r.metrics.padding_blocks, 0u);
  EXPECT_GT(r.metrics.rmw_flushes, 0u);
  EXPECT_GT(r.metrics.rmw_read_blocks, 0u);
}

TEST(SimulatorTest, UnknownPolicyThrows) {
  SimConfig config;
  EXPECT_THROW(run_volume(small_ycsb_volume(), "nope", config),
               std::invalid_argument);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  const trace::Volume volume = small_cloud_volume();
  SimConfig config;
  const VolumeResult a = run_volume(volume, "adapt", config);
  const VolumeResult b = run_volume(volume, "adapt", config);
  EXPECT_EQ(a.metrics.user_blocks, b.metrics.user_blocks);
  EXPECT_EQ(a.metrics.gc_blocks, b.metrics.gc_blocks);
  EXPECT_EQ(a.metrics.padding_blocks, b.metrics.padding_blocks);
  EXPECT_EQ(a.metrics.shadow_blocks, b.metrics.shadow_blocks);
}

TEST(SimulatorTest, ArrayTrafficConsistentWithMetrics) {
  const trace::Volume volume = small_cloud_volume();
  SimConfig config;
  config.with_array = true;
  const VolumeResult r = run_volume(volume, "sepbit", config);
  const auto block_bytes = config.lss.block_bytes;
  EXPECT_EQ(r.array_totals.padding_bytes,
            r.metrics.padding_blocks * block_bytes);
  EXPECT_EQ(r.array_totals.data_bytes,
            (r.metrics.user_blocks + r.metrics.gc_blocks +
             r.metrics.shadow_blocks) *
                block_bytes);
  EXPECT_GT(r.array_totals.parity_bytes, 0u);
}

TEST(SimulatorTest, ReadsDoNotTouchTheLog) {
  trace::Volume volume;
  volume.capacity_blocks = 4096;
  volume.records = {{0, trace::OpType::kRead, 0, 4},
                    {10, trace::OpType::kRead, 100, 1}};
  SimConfig config;
  const VolumeResult r = run_volume(volume, "sepgc", config);
  EXPECT_EQ(r.metrics.user_blocks, 0u);
  EXPECT_EQ(r.metrics.total_blocks(), 0u);
}

TEST(SimulatorTest, WritesBeyondCapacityAreClamped) {
  trace::Volume volume;
  volume.capacity_blocks = 2048;
  volume.records = {{0, trace::OpType::kWrite, 2040, 32}};
  SimConfig config;
  const VolumeResult r = run_volume(volume, "sepgc", config);
  EXPECT_EQ(r.metrics.user_blocks, 8u);
}

TEST(SimulatorTest, VictimPolicySelectable) {
  const trace::Volume volume = small_ycsb_volume();
  SimConfig config;
  config.victim_policy = "cost-benefit";
  const VolumeResult r = run_volume(volume, "sepgc", config);
  EXPECT_EQ(r.victim, "cost-benefit");
  EXPECT_GE(r.wa(), 1.0);
}

TEST(SimulatorTest, AblationSwitchesChangeBehaviour) {
  const trace::Volume volume = small_cloud_volume();
  SimConfig all_on;
  SimConfig no_aggregation;
  no_aggregation.adapt_cross_group_aggregation = false;
  const VolumeResult on = run_volume(volume, "adapt", all_on);
  const VolumeResult off = run_volume(volume, "adapt", no_aggregation);
  EXPECT_GT(on.metrics.shadow_blocks, 0u);
  EXPECT_EQ(off.metrics.shadow_blocks, 0u);
}

TEST(SimulatorTest, AdaptAblationsReduceToSepBitCore) {
  // With every mechanism off, ADAPT's routing is SepBIT's: same WA.
  const trace::Volume volume = small_cloud_volume();
  SimConfig config;
  config.adapt_threshold_adaptation = false;
  config.adapt_cross_group_aggregation = false;
  config.adapt_proactive_demotion = false;
  const VolumeResult stripped = run_volume(volume, "adapt", config);
  const VolumeResult sepbit = run_volume(volume, "sepbit", SimConfig{});
  EXPECT_DOUBLE_EQ(stripped.wa(), sepbit.wa());
  EXPECT_EQ(stripped.metrics.gc_blocks, sepbit.metrics.gc_blocks);
}

TEST(SimulatorTest, PolicyMemoryReported) {
  const trace::Volume volume = small_cloud_volume();
  SimConfig config;
  const VolumeResult adapt = run_volume(volume, "adapt", config);
  const VolumeResult sepbit = run_volume(volume, "sepbit", config);
  EXPECT_GT(adapt.policy_memory_bytes, 0u);
  EXPECT_GT(sepbit.policy_memory_bytes, 0u);
  EXPECT_GT(adapt.policy_memory_bytes, sepbit.policy_memory_bytes);
}

// ---------------------------------------------------------------------------
// Experiment runner
// ---------------------------------------------------------------------------

TEST(ExperimentTest, RunsFullMatrix) {
  trace::CloudVolumeModel model(trace::alibaba_profile(), 5);
  std::vector<trace::Volume> volumes;
  for (int i = 0; i < 3; ++i) volumes.push_back(model.make_volume(i, 2.0));

  ExperimentSpec spec;
  spec.policies = {"sepgc", "adapt"};
  spec.victims = {"greedy", "cost-benefit"};
  spec.threads = 4;
  const auto results = run_experiment(spec, volumes);
  EXPECT_EQ(results.size(), 4u);
  for (const auto& [key, cell] : results) {
    EXPECT_EQ(cell.volumes.size(), 3u);
    EXPECT_GE(cell.overall_wa(), 1.0);
    EXPECT_EQ(cell.per_volume_wa().count(), 3u);
  }
}

TEST(ExperimentTest, ParallelMatchesSerial) {
  trace::CloudVolumeModel model(trace::tencent_profile(), 6);
  std::vector<trace::Volume> volumes;
  for (int i = 0; i < 3; ++i) volumes.push_back(model.make_volume(i, 2.0));

  ExperimentSpec parallel;
  parallel.policies = {"sepbit"};
  parallel.threads = 4;
  ExperimentSpec serial = parallel;
  serial.threads = 1;

  const auto a = run_experiment(parallel, volumes);
  const auto b = run_experiment(serial, volumes);
  const CellKey key{"sepbit", "greedy"};
  EXPECT_DOUBLE_EQ(a.at(key).overall_wa(), b.at(key).overall_wa());
}

TEST(ExperimentTest, OverallWaIsTrafficWeighted) {
  CellResult cell;
  VolumeResult v1;
  v1.metrics.user_blocks = 100;
  v1.metrics.gc_blocks = 100;  // WA 2
  VolumeResult v2;
  v2.metrics.user_blocks = 300;
  v2.metrics.gc_blocks = 0;  // WA 1
  cell.volumes = {v1, v2};
  // Weighted: (200 + 300) / (100 + 300) = 1.25, not the mean of {2, 1}.
  EXPECT_DOUBLE_EQ(cell.overall_wa(), 1.25);
}

TEST(ExperimentTest, EmptyCellIsZero) {
  CellResult cell;
  EXPECT_DOUBLE_EQ(cell.overall_wa(), 0.0);
  EXPECT_DOUBLE_EQ(cell.overall_padding_ratio(), 0.0);
}

}  // namespace
}  // namespace adapt::sim
