// adapt_lint CLI: scans source roots for project-invariant violations and
// reports them as text plus (optionally) an adapt-lint-v1 JSON document.
//
// Usage: adapt_lint [--json <path>] <root>...
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. The JSON report
// is written in both the clean and the findings case, so CI can archive it
// unconditionally and gate on the exit code.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--json <path>] <root>...\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) return usage(argv[0]);
      json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  try {
    const adapt::lint::Result result = adapt::lint::lint_tree(roots);
    for (const adapt::lint::Finding& f : result.findings) {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str());
    }
    if (!json_path.empty()) {
      const std::string json = adapt::lint::findings_json(result);
      adapt::lint::validate_lint_json(json);  // self-check before writing
      std::ofstream out(json_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "adapt_lint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      out << json << '\n';
    }
    std::fprintf(stderr, "adapt_lint: %zu files scanned, %zu finding%s\n",
                 result.files_scanned, result.findings.size(),
                 result.findings.size() == 1 ? "" : "s");
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adapt_lint: %s\n", e.what());
    return 2;
  }
}
