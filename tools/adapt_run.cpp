// adapt_run — single-volume replay CLI with the full observability report.
//
// Replays either a synthetic cloud volume (--profile) or a real trace file
// (--trace/--format) through one (policy, victim) pair and writes:
//
//   <out>/adapt_run_series.jsonl    adapt-series-v1 time series
//   <out>/adapt_run_series.csv      same series, flat columns for gnuplot
//   <out>/adapt_run_manifest.json   adapt-manifest-v1 run manifest
//   <out>/adapt_run_trace.json      adapt-trace-v1 (with --trace-events)
//
// Every artifact write is checked: an unopenable path or a failed flush is
// an error (exit 1), never a silent empty file. --selfcheck re-reads all
// written artifacts through the schema validators before exiting, so CI can
// use one invocation as an end-to-end probe; any validation failure prints
// "selfcheck FAILED: <artifact>: <reason>" and exits non-zero.
//
// Exit codes: 0 success, 1 runtime/selfcheck failure, 2 usage error.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/sync.h"
#include "lss/sharded_engine.h"
#include "obs/export.h"
#include "obs/runtime_stats.h"
#include "obs/trace_log.h"
#include "sim/simulator.h"
#include "trace/reader.h"
#include "trace/synthetic.h"

namespace {

struct Options {
  std::string policy = "adapt";
  std::string victim = "greedy";
  std::string profile = "alibaba";
  std::string trace_path;  // when set, overrides --profile
  std::string format = "canonical";
  std::string out_dir = "adapt_run_out";
  std::uint64_t volume_id = 0;
  double fill = 3.0;
  std::uint64_t seed = 42;
  std::uint64_t window = 4096;
  std::uint64_t max_rows = 512;
  std::uint32_t shards = 1;
  double live_stats = 0.0;  // seconds between live lines; 0 = off
  bool rmw = false;
  bool no_array = false;
  bool no_per_group = false;
  bool trace_events = false;
  bool registry_dump = false;
  bool selfcheck = false;
  bool quiet = false;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: adapt_run [options]\n"
               "  --policy NAME      placement policy (default adapt)\n"
               "  --victim NAME      GC victim policy (default greedy)\n"
               "  --profile NAME     synthetic profile: alibaba|tencent|msrc\n"
               "  --trace FILE       replay a trace file instead\n"
               "  --format NAME      trace format: canonical|alibaba|tencent|"
               "msrc\n"
               "  --volume-id N      synthetic volume index (default 0)\n"
               "  --fill F           synthetic fill factor (default 3.0)\n"
               "  --seed N           simulation seed (default 42)\n"
               "  --window N         sampling stride in user blocks "
               "(default 4096)\n"
               "  --max-rows N       series memory bound in rows "
               "(default 512)\n"
               "  --shards N         LBA-sharded parallel replay across N "
               "engine shards\n"
               "                     (default 1 = single engine, "
               "bit-identical)\n"
               "  --out DIR          output directory (default "
               "adapt_run_out)\n"
               "  --live-stats SECS  print a live throughput line to stderr\n"
               "                     every SECS seconds plus one final "
               "summary\n"
               "  --rmw              read-modify-write partial flushes\n"
               "  --no-array         skip the SSD-array model\n"
               "  --no-per-group     drop per-group series columns\n"
               "  --trace-events     record the event trace and write\n"
               "                     adapt_run_trace.json (Chrome/Perfetto)\n"
               "  --registry-dump    print the merged counter registry as\n"
               "                     sorted 'name value' lines on stdout\n"
               "  --selfcheck        re-validate the written artifacts\n"
               "  --quiet            no replay progress on stderr\n");
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      throw std::invalid_argument(std::string(argv[i]) +
                                  " requires a value");
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--policy") {
      opt.policy = need_value(i++);
    } else if (arg == "--victim") {
      opt.victim = need_value(i++);
    } else if (arg == "--profile") {
      opt.profile = need_value(i++);
    } else if (arg == "--trace") {
      opt.trace_path = need_value(i++);
    } else if (arg == "--format") {
      opt.format = need_value(i++);
    } else if (arg == "--out") {
      opt.out_dir = need_value(i++);
    } else if (arg == "--volume-id") {
      opt.volume_id = std::strtoull(need_value(i++), nullptr, 10);
    } else if (arg == "--fill") {
      opt.fill = std::strtod(need_value(i++), nullptr);
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(need_value(i++), nullptr, 10);
    } else if (arg == "--window") {
      opt.window = std::strtoull(need_value(i++), nullptr, 10);
    } else if (arg == "--max-rows") {
      opt.max_rows = std::strtoull(need_value(i++), nullptr, 10);
    } else if (arg == "--shards") {
      opt.shards = adapt::lss::parse_shard_count(need_value(i++));
    } else if (arg == "--live-stats") {
      opt.live_stats = std::strtod(need_value(i++), nullptr);
      if (!(opt.live_stats > 0.0)) {
        throw std::invalid_argument("--live-stats requires seconds > 0");
      }
    } else if (arg == "--rmw") {
      opt.rmw = true;
    } else if (arg == "--no-array") {
      opt.no_array = true;
    } else if (arg == "--no-per-group") {
      opt.no_per_group = true;
    } else if (arg == "--trace-events") {
      opt.trace_events = true;
    } else if (arg == "--registry-dump") {
      opt.registry_dump = true;
    } else if (arg == "--selfcheck") {
      opt.selfcheck = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      throw std::invalid_argument("unknown option: " + std::string(arg));
    }
  }
  return opt;
}

adapt::trace::TraceFormat parse_format(const std::string& name) {
  using adapt::trace::TraceFormat;
  if (name == "canonical") return TraceFormat::kCanonical;
  if (name == "alibaba") return TraceFormat::kAlibaba;
  if (name == "tencent") return TraceFormat::kTencent;
  if (name == "msrc") return TraceFormat::kMsrc;
  throw std::invalid_argument("unknown trace format: " + name);
}

adapt::trace::CloudProfile parse_profile(const std::string& name) {
  if (name == "alibaba") return adapt::trace::alibaba_profile();
  if (name == "tencent") return adapt::trace::tencent_profile();
  if (name == "msrc") return adapt::trace::msrc_profile();
  throw std::invalid_argument("unknown profile: " + name);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Checked artifact write: throws if the stream cannot be opened or any
/// write/flush fails, so a bad output path can never produce a silent
/// truncated/empty artifact with exit code 0.
void write_artifact(const std::filesystem::path& path,
                    std::string_view text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("cannot open " + path.string() +
                             " for writing");
  }
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

int run(const Options& opt) {
  namespace fs = std::filesystem;
  namespace obs = adapt::obs;
  namespace sim = adapt::sim;
  namespace trace = adapt::trace;

  trace::Volume volume;
  std::string workload;
  if (!opt.trace_path.empty()) {
    std::ifstream in(opt.trace_path);
    if (!in) {
      std::fprintf(stderr, "adapt_run: cannot open %s\n",
                   opt.trace_path.c_str());
      return 1;
    }
    volume = trace::read_trace(in, parse_format(opt.format));
    volume.id = opt.volume_id;
    workload = opt.trace_path;
  } else {
    trace::CloudVolumeModel model(parse_profile(opt.profile), opt.seed);
    volume = model.make_volume(opt.volume_id, opt.fill);
    workload = opt.profile;
  }

  sim::SimConfig config;
  config.victim_policy = opt.victim;
  config.seed = opt.seed;
  config.with_array = !opt.no_array;
  config.shards = opt.shards;
  if (opt.rmw) {
    config.lss.partial_write_mode =
        adapt::lss::PartialWriteMode::kReadModifyWrite;
  }
  config.sampling_enabled = true;
  config.sampling.window_blocks = opt.window == 0 ? 4096 : opt.window;
  config.sampling.max_rows = static_cast<std::size_t>(opt.max_rows);
  config.sampling.per_group = !opt.no_per_group;
  config.tracing_enabled = opt.trace_events;
  if (!opt.quiet) {
    config.progress = [](std::uint64_t done, std::uint64_t total) {
      std::fprintf(stderr, "\rreplayed %llu/%llu records",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total));
      if (done == total) std::fputc('\n', stderr);
    };
  }

  // Live stats: the replay publishes block progress into a seqlock sink; a
  // poller prints periodic "live:" lines to stderr plus one guaranteed
  // final summary after the replay (deterministic: the final line always
  // appears, even for runs shorter than the interval).
  obs::RuntimeStats live_stats;
  std::atomic<bool> live_stop{false};
  adapt::Thread live_poller;
  if (opt.live_stats > 0.0) {
    config.live_stats = &live_stats;
    live_poller = adapt::Thread([&live_stats, &live_stop,
                                 interval = opt.live_stats] {
      obs::RuntimeSnapshot prev;
      double slept = 0.0;
      while (!live_stop.load(std::memory_order_relaxed)) {
        // 50 ms slices so shutdown never waits out a long interval.
        adapt::sleep_for_us(50'000);
        slept += 0.05;
        if (slept + 1e-9 < interval) continue;
        slept = 0.0;
        const obs::RuntimeSnapshot cur = live_stats.snapshot();
        std::fprintf(stderr, "%s\n",
                     obs::format_live_line(prev, cur, interval).c_str());
        prev = cur;
      }
    });
  }

  sim::VolumeResult result = sim::run_volume(volume, opt.policy, config);
  live_stop.store(true, std::memory_order_relaxed);
  if (live_poller.joinable()) live_poller.join();
  if (opt.live_stats > 0.0) {
    const obs::RuntimeSnapshot final_snap = live_stats.snapshot();
    std::fprintf(
        stderr, "%s\n",
        obs::format_live_line(obs::RuntimeSnapshot{}, final_snap,
                              opt.live_stats)
            .c_str());
  }
  result.manifest.tool = "adapt_run";
  result.manifest.workload = workload;

  fs::create_directories(opt.out_dir);
  const fs::path dir(opt.out_dir);
  const fs::path jsonl_path = dir / "adapt_run_series.jsonl";
  const fs::path csv_path = dir / "adapt_run_series.csv";
  const fs::path manifest_path = dir / "adapt_run_manifest.json";
  const fs::path trace_path = dir / "adapt_run_trace.json";
  {
    std::ostringstream out;
    obs::write_series_jsonl(out, *result.series);
    write_artifact(jsonl_path, out.str());
  }
  {
    std::ostringstream out;
    obs::write_series_csv(out, *result.series);
    write_artifact(csv_path, out.str());
  }
  write_artifact(manifest_path, obs::manifest_json(result.manifest) + "\n");
  if (opt.trace_events) {
    obs::TraceMeta meta;
    meta.tool = "adapt_run";
    meta.policy = result.policy;
    meta.workload = workload;
    meta.seed = opt.seed;
    write_artifact(trace_path, obs::chrome_trace_json(*result.trace, meta));
  }

  std::printf("policy=%s victim=%s workload=%s records=%llu shards=%u\n",
              result.policy.c_str(), result.victim.c_str(), workload.c_str(),
              static_cast<unsigned long long>(result.manifest.records),
              opt.shards);
  std::printf(
      "WA=%.4f padding_ratio=%.4f gc_runs=%llu samples=%zu window=%llu "
      "downsamples=%u\n",
      result.wa(), result.padding_ratio(),
      static_cast<unsigned long long>(result.metrics.gc_runs),
      result.series->rows.size(),
      static_cast<unsigned long long>(result.series->window_blocks),
      result.series->downsamples);
  if (opt.trace_events) {
    std::printf("trace: %llu events recorded, %llu dropped\n",
                static_cast<unsigned long long>(result.trace->recorded),
                static_cast<unsigned long long>(result.trace->dropped));
    if (result.trace->dropped > 0) {
      // Per-shard split on stderr: a wrapped ring means the trace is a
      // suffix of the run, which changes what the timeline can prove.
      std::string shards_msg;
      for (std::size_t i = 0; i < result.trace->per_shard_dropped.size();
           ++i) {
        if (i > 0) shards_msg += ' ';
        shards_msg += std::to_string(result.trace->per_shard_dropped[i]);
      }
      std::fprintf(stderr,
                   "adapt_run: warning: trace ring overflowed, %llu events "
                   "dropped (per shard: %s); raise the ring capacity or "
                   "shorten the run for a complete timeline\n",
                   static_cast<unsigned long long>(result.trace->dropped),
                   shards_msg.c_str());
    }
  }
  std::printf("wall=%.3fs records/s=%.0f peak_rss=%llu\n",
              result.manifest.wall_seconds, result.manifest.records_per_sec,
              static_cast<unsigned long long>(result.manifest.peak_rss_bytes));
  std::printf("wrote %s %s %s\n", jsonl_path.c_str(), csv_path.c_str(),
              manifest_path.c_str());

  if (opt.registry_dump) {
    for (const auto& [name, value] : result.manifest.counters.entries()) {
      std::printf("%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  if (opt.selfcheck) {
    bool failed = false;
    const auto check = [&](const fs::path& path, auto&& validate) {
      try {
        validate(read_file(path));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "selfcheck FAILED: %s: %s\n", path.c_str(),
                     e.what());
        failed = true;
      }
    };
    check(jsonl_path, [](const std::string& text) {
      if (obs::validate_series_jsonl(text) == 0) {
        throw std::invalid_argument("series has no samples");
      }
    });
    check(manifest_path,
          [](const std::string& text) { obs::validate_manifest_json(text); });
    if (opt.trace_events) {
      check(trace_path,
            [](const std::string& text) { obs::validate_trace_json(text); });
    }
    if (failed) return 1;
    std::printf("selfcheck ok: all artifacts valid\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adapt_run: %s\n", e.what());
    usage(stderr);
    return 2;
  }
  try {
    return run(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adapt_run: %s\n", e.what());
    return 1;
  }
}
