// adapt_compare — run-comparison regression gate CLI.
//
//   adapt_compare [--tolerance T] [--quiet] baseline candidate
//
// Diffs two artifacts of the same schema (adapt-manifest-v1 or
// adapt-bench-v1, auto-detected) with relative-tolerance gates on the
// deterministic metrics and exact matching on identity fields;
// host-dependent fields (wall clock, RSS, GC pause times) are ignored.
// CI runs this over committed baselines to catch WA / padding / provenance
// regressions.
//
// Exit codes: 0 within tolerance, 1 differences found, 2 usage or I/O
// error (unreadable file, malformed artifact, schema mismatch).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "obs/compare.h"

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: adapt_compare [--tolerance T] [--quiet] "
               "BASELINE CANDIDATE\n"
               "  --tolerance T   max relative delta for gated metrics "
               "(default 0.01)\n"
               "  --quiet         only print violations and the verdict\n");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  adapt::obs::CompareOptions options;
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--tolerance") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "adapt_compare: --tolerance requires a value\n");
        usage(stderr);
        return 2;
      }
      char* end = nullptr;
      options.tolerance = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || options.tolerance < 0.0) {
        std::fprintf(stderr, "adapt_compare: bad tolerance '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "adapt_compare: unknown option %s\n",
                   std::string(arg).c_str());
      usage(stderr);
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "adapt_compare: need exactly two files\n");
    usage(stderr);
    return 2;
  }

  adapt::obs::CompareReport report;
  try {
    report = adapt::obs::compare_artifacts(read_file(paths[0]),
                                           read_file(paths[1]), options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adapt_compare: %s\n", e.what());
    return 2;
  }

  const std::string rendered = adapt::obs::format_report(report, options);
  if (!quiet) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    // Violations plus the verdict tail line only.
    std::istringstream lines(rendered);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("MISMATCH") != std::string::npos ||
          line.find("EXCEEDS") != std::string::npos ||
          line.find("compared") != std::string::npos) {
        std::printf("%s\n", line.c_str());
      }
    }
  }
  if (!report.ok()) {
    std::fprintf(stderr, "adapt_compare: %zu violation(s) vs %s\n",
                 report.violations(), paths[0].c_str());
    return 1;
  }
  return 0;
}
