// check_bench_json — schema validator CLI for the observability artifacts.
//
//   check_bench_json BENCH_fig02.json ...            adapt-bench-v1 (default)
//   check_bench_json --manifest manifest.json ...    adapt-manifest-v1
//   check_bench_json --series series.jsonl ...       adapt-series-v1
//   check_bench_json --trace trace.json ...          adapt-trace-v1
//   check_bench_json --lint lint.json ...            adapt-lint-v1
//
// Exits 0 when every file validates; prints the first schema violation and
// exits 1 otherwise. CI's bench-smoke job runs this over every BENCH_*.json
// the figure benches emit.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.h"
#include "obs/export.h"
#include "obs/trace_log.h"

namespace {

enum class Kind { kBench, kManifest, kSeries, kTrace, kLint };

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  Kind kind = Kind::kBench;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--bench") {
      kind = Kind::kBench;
    } else if (arg == "--manifest") {
      kind = Kind::kManifest;
    } else if (arg == "--series") {
      kind = Kind::kSeries;
    } else if (arg == "--trace") {
      kind = Kind::kTrace;
    } else if (arg == "--lint") {
      kind = Kind::kLint;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: check_bench_json "
          "[--bench|--manifest|--series|--trace|--lint] files...\n");
      return 0;
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "check_bench_json: no input files\n");
    return 1;
  }
  for (const std::string& path : paths) {
    try {
      const std::string text = read_file(path);
      switch (kind) {
        case Kind::kBench:
          adapt::obs::validate_bench_json(text);
          break;
        case Kind::kManifest:
          adapt::obs::validate_manifest_json(text);
          break;
        case Kind::kSeries: {
          const std::size_t samples = adapt::obs::validate_series_jsonl(text);
          std::printf("%s: %zu samples\n", path.c_str(), samples);
          break;
        }
        case Kind::kTrace:
          adapt::obs::validate_trace_json(text);
          break;
        case Kind::kLint:
          adapt::lint::validate_lint_json(text);
          break;
      }
      std::printf("%s: ok\n", path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      return 1;
    }
  }
  return 0;
}
