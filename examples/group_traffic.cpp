// Per-group traffic breakdown for one workload under every placement
// scheme — the analysis behind the paper's Figure 3 (write-traffic
// distribution across groups and group sizes).
//
// Usage: group_traffic [gap_us] [alpha] [working_set_blocks]
#include <cstdio>
#include <cstdlib>

#include "sim/simulator.h"
#include "trace/synthetic.h"

int main(int argc, char** argv) {
  using namespace adapt;

  const double gap_us = argc > 1 ? std::strtod(argv[1], nullptr) : 100.0;
  const double alpha = argc > 2 ? std::strtod(argv[2], nullptr) : 0.99;
  const std::uint64_t working_set =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : (1u << 16);

  trace::YcsbConfig wc;
  wc.working_set_blocks = working_set;
  wc.zipf_alpha = alpha;
  wc.mean_interarrival_us = gap_us;
  wc.seed = 7;
  const trace::Volume volume =
      trace::make_ycsb_volume(wc, 6 * working_set);

  sim::SimConfig config;
  config.victim_policy = "greedy";

  for (const auto p : sim::all_policy_names()) {
    const auto r = sim::run_volume(volume, p, config);
    std::printf("--- %-8s WA=%.3f gcWA=%.3f padding=%.1f%% shadow=%llu\n",
                r.policy.c_str(), r.wa(), r.metrics.gc_wa(),
                100.0 * r.padding_ratio(),
                static_cast<unsigned long long>(r.metrics.shadow_blocks));
    std::printf("    %-6s %12s %12s %12s %12s %10s %8s\n", "group", "user",
                "gc", "shadow", "padding", "padded/fl", "segs");
    for (std::size_t g = 0; g < r.metrics.groups.size(); ++g) {
      const auto& gt = r.metrics.groups[g];
      const std::uint64_t flushes = gt.full_flushes + gt.padded_flushes;
      std::printf("    %-6zu %12llu %12llu %12llu %12llu %9.1f%% %8u\n", g,
                  static_cast<unsigned long long>(gt.user_blocks),
                  static_cast<unsigned long long>(gt.gc_blocks),
                  static_cast<unsigned long long>(gt.shadow_blocks),
                  static_cast<unsigned long long>(gt.padding_blocks),
                  flushes == 0 ? 0.0
                               : 100.0 * static_cast<double>(gt.padded_flushes) /
                                     static_cast<double>(flushes),
                  r.segments_per_group[g]);
    }
  }
  return 0;
}
