// Quickstart: generate a small cloud-like volume, replay it under every
// placement scheme, and print write amplification and padding traffic.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "sim/simulator.h"
#include "trace/synthetic.h"

int main() {
  using namespace adapt;

  // A sparse, skewed volume in the style of the Alibaba trace family.
  trace::CloudVolumeModel model(trace::alibaba_profile(), /*seed=*/42);
  const trace::Volume volume = model.make_volume(/*volume_id=*/0,
                                                 /*fill_factor=*/6.0);
  std::printf("volume: %zu records, %llu blocks capacity\n",
              volume.records.size(),
              static_cast<unsigned long long>(volume.capacity_blocks));

  sim::SimConfig config;
  config.victim_policy = "greedy";

  std::printf("%-8s %8s %10s %12s %10s\n", "policy", "WA", "GC-WA",
              "padding%", "gc-runs");
  for (const auto policy : sim::all_policy_names()) {
    const sim::VolumeResult r = sim::run_volume(volume, policy, config);
    std::printf("%-8s %8.3f %10.3f %11.1f%% %10llu\n", r.policy.c_str(),
                r.wa(), r.metrics.gc_wa(), 100.0 * r.padding_ratio(),
                static_cast<unsigned long long>(r.metrics.gc_runs));
  }
  return 0;
}
