// Replay a real block trace file (Alibaba / Tencent / MSRC / canonical CSV
// formats) through any placement scheme and print the WA and padding
// metrics — the workflow a practitioner would use to evaluate ADAPT on
// their own traces.
//
// Usage:
//   cloud_replay <trace.csv> [format] [policy] [victim]
//     format: canonical | alibaba | tencent | msrc   (default canonical)
//     policy: sepgc|mida|dac|warcip|sepbit|adapt|all (default all)
//     victim: greedy|cost-benefit|d-choice|windowed|random (default greedy)
//
// With no arguments, a demo trace is synthesised, written to a temp file,
// and replayed — so the example is runnable out of the box.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/simulator.h"
#include "trace/reader.h"
#include "trace/synthetic.h"

namespace {

adapt::trace::TraceFormat parse_format(const char* name) {
  using adapt::trace::TraceFormat;
  if (std::strcmp(name, "canonical") == 0) return TraceFormat::kCanonical;
  if (std::strcmp(name, "alibaba") == 0) return TraceFormat::kAlibaba;
  if (std::strcmp(name, "tencent") == 0) return TraceFormat::kTencent;
  if (std::strcmp(name, "msrc") == 0) return TraceFormat::kMsrc;
  std::fprintf(stderr, "unknown trace format '%s'\n", name);
  std::exit(2);
}

void report(const adapt::sim::VolumeResult& r) {
  std::printf("%-8s [%s]  WA=%.3f  gcWA=%.3f  padding=%.1f%%  "
              "gc-runs=%llu  policy-mem=%.2f MiB\n",
              r.policy.c_str(), r.victim.c_str(), r.wa(), r.metrics.gc_wa(),
              100.0 * r.padding_ratio(),
              static_cast<unsigned long long>(r.metrics.gc_runs),
              static_cast<double>(r.policy_memory_bytes) / (1 << 20));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;

  std::string path;
  trace::TraceFormat format = trace::TraceFormat::kCanonical;
  std::string policy = "all";
  std::string victim = "greedy";

  if (argc > 1) path = argv[1];
  if (argc > 2) format = parse_format(argv[2]);
  if (argc > 3) policy = argv[3];
  if (argc > 4) victim = argv[4];

  if (path.empty()) {
    // Self-contained demo: synthesise a volume and round-trip it through
    // the canonical CSV format.
    std::printf("no trace given; synthesising a demo volume\n");
    trace::CloudVolumeModel model(trace::alibaba_profile(), 2024);
    const trace::Volume demo = model.make_volume(0, 4.0);
    path = "/tmp/adapt_demo_trace.csv";
    std::ofstream out(path);
    trace::write_canonical(out, demo);
    std::printf("wrote %zu records to %s\n", demo.records.size(),
                path.c_str());
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const trace::Volume volume = trace::read_trace(in, format);
  std::printf("trace: %zu records, %llu blocks addressed\n",
              volume.records.size(),
              static_cast<unsigned long long>(volume.capacity_blocks));

  sim::SimConfig config;
  config.victim_policy = victim;
  if (policy == "all") {
    for (const auto p : sim::all_policy_names()) {
      report(sim::run_volume(volume, p, config));
    }
  } else {
    report(sim::run_volume(volume, policy, config));
  }
  return 0;
}
