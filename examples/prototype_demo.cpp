// Drive the multithreaded storage prototype: client threads replay YCSB-A
// against the LSS with a bandwidth-modelled RAID-5 backend and background
// GC threads, printing live-measured throughput — a scaled-down version of
// the paper's §4.4 testbed run.
//
// Usage: prototype_demo [policy] [clients] [writes_per_client] [manifest.json]
//
// The optional 4th argument writes the run's adapt-manifest-v1 record
// (including the latency_breakdown phase histograms) to the given path —
// this is what CI's manifest teeth-check consumes.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/export.h"
#include "proto/prototype.h"

int main(int argc, char** argv) {
  using namespace adapt;

  proto::PrototypeConfig config;
  config.policy = argc > 1 ? argv[1] : "adapt";
  config.num_clients =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;
  config.writes_per_client =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 40'000;
  config.workload.working_set_blocks = 1u << 16;
  config.workload.zipf_alpha = 0.99;
  config.workload.mean_interarrival_us = 0.0;  // open loop
  config.lss.coalesce_window_us = 300;  // scaled with the modelled BW

  std::printf("prototype: policy=%s clients=%u writes/client=%llu "
              "array=%.0f MB/s io-depth=%u\n",
              config.policy.c_str(), config.num_clients,
              static_cast<unsigned long long>(config.writes_per_client),
              config.array_bandwidth_mb_per_s, config.io_depth);

  const proto::PrototypeResult r = proto::run_prototype(config);

  std::printf("elapsed            : %.2f s\n", r.elapsed_seconds);
  std::printf("user throughput    : %.1f MiB/s (%.1f kIOPS of 4 KiB)\n",
              r.throughput_mib_per_s, r.throughput_kops);
  std::printf("latency            : p50=%.0f us p99=%.0f us\n",
              r.latency_p50_us, r.latency_p99_us);
  std::printf("write amplification: %.3f (gc-only %.3f)\n", r.metrics.wa(),
              r.metrics.gc_wa());
  std::printf("padding traffic    : %.1f%%\n",
              100.0 * r.metrics.padding_ratio());
  std::printf("policy metadata    : %.2f MiB\n",
              static_cast<double>(r.policy_memory_bytes) / (1 << 20));
  std::printf("engine metadata    : %.2f MiB\n",
              static_cast<double>(r.engine_memory_bytes) / (1 << 20));
  if (argc > 4) {
    const std::string json = obs::manifest_json(r.manifest);
    std::FILE* f = std::fopen(argv[4], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "prototype_demo: cannot open %s\n", argv[4]);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("manifest           : %s\n", argv[4]);
  }
  return 0;
}
