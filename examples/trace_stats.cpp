// Analyse a block trace (or the built-in synthetic families) the way the
// paper's Figure 2 does: per-volume request rates, write-size
// distribution, and read/write mix.
//
// Usage:
//   trace_stats <trace.csv> [format]     analyse a trace file
//   trace_stats --profile <name> [n]     analyse n synthetic volumes of
//                                        profile alibaba|tencent|msrc
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "trace/reader.h"
#include "trace/synthetic.h"
#include "trace/workload_stats.h"

namespace {

void print_distributions(const adapt::trace::WorkloadDistributions& dist,
                         std::size_t volumes) {
  std::printf("volumes analysed     : %zu\n", volumes);
  if (dist.request_rate_per_volume.count() > 0) {
    std::printf("request rate (req/s) : p50=%.2f p90=%.2f max=%.2f\n",
                dist.request_rate_per_volume.percentile(50),
                dist.request_rate_per_volume.percentile(90),
                dist.request_rate_per_volume.max());
    std::printf("  <= 10 req/s        : %.1f%%   (paper: 75-86.1%%)\n",
                100.0 * dist.request_rate_per_volume.cdf_at(10.0));
    std::printf("  > 100 req/s        : %.1f%%   (paper: 1.9-2.7%%)\n",
                100.0 * (1.0 - dist.request_rate_per_volume.cdf_at(100.0)));
  }
  if (dist.write_size_bytes.count() > 0) {
    std::printf("write sizes          : p50=%.0f B p90=%.0f B\n",
                dist.write_size_bytes.percentile(50),
                dist.write_size_bytes.percentile(90));
    std::printf("  <= 8 KiB           : %.1f%%   (paper: 69.8-80.9%%)\n",
                100.0 * dist.write_size_bytes.cdf_at(8 * 1024.0));
    std::printf("  > 32 KiB           : %.1f%%   (paper: 10.8-23.4%%)\n",
                100.0 * (1.0 - dist.write_size_bytes.cdf_at(32 * 1024.0)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;

  if (argc > 2 && std::strcmp(argv[1], "--profile") == 0) {
    trace::CloudProfile profile = trace::alibaba_profile();
    if (std::strcmp(argv[2], "tencent") == 0) {
      profile = trace::tencent_profile();
    } else if (std::strcmp(argv[2], "msrc") == 0) {
      profile = trace::msrc_profile();
    }
    const int n = argc > 3 ? std::atoi(argv[3]) : 20;
    trace::CloudVolumeModel model(profile, 7);
    std::vector<trace::Volume> volumes;
    for (int i = 0; i < n; ++i) volumes.push_back(model.make_volume(i, 1.0));
    std::printf("profile: %s\n", profile.name.c_str());
    print_distributions(trace::compute_distributions(volumes),
                        volumes.size());
    return 0;
  }

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_stats <trace.csv> [format] | "
                 "trace_stats --profile <alibaba|tencent|msrc> [n]\n");
    return 2;
  }
  trace::TraceFormat format = trace::TraceFormat::kCanonical;
  if (argc > 2) {
    if (std::strcmp(argv[2], "alibaba") == 0) {
      format = trace::TraceFormat::kAlibaba;
    } else if (std::strcmp(argv[2], "tencent") == 0) {
      format = trace::TraceFormat::kTencent;
    } else if (std::strcmp(argv[2], "msrc") == 0) {
      format = trace::TraceFormat::kMsrc;
    }
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::vector<trace::Volume> volumes(1);
  volumes[0] = trace::read_trace(in, format);
  const trace::VolumeStats s = trace::compute_volume_stats(volumes[0]);
  std::printf("records              : %llu (%llu writes)\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.write_requests));
  std::printf("duration             : %.2f s\n",
              static_cast<double>(s.duration_us) / 1e6);
  print_distributions(trace::compute_distributions(volumes), 1);
  return 0;
}
