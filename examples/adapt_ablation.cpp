// ADAPT ablation: measures the contribution of each of the three
// mechanisms (threshold adaptation, cross-group aggregation, proactive
// demotion) by disabling them one at a time on the same workload.
//
// Usage: adapt_ablation [seed] [fill_factor]
#include <cstdio>
#include <cstdlib>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace {

void run_case(const adapt::trace::Volume& volume, const char* label,
              bool threshold, bool aggregation, bool demotion) {
  adapt::sim::SimConfig config;
  config.adapt_threshold_adaptation = threshold;
  config.adapt_cross_group_aggregation = aggregation;
  config.adapt_proactive_demotion = demotion;
  const auto r = adapt::sim::run_volume(volume, "adapt", config);
  std::printf("%-28s WA=%7.3f gcWA=%7.3f padding=%5.1f%% shadow=%llu\n",
              label, r.wa(), r.metrics.gc_wa(), 100.0 * r.padding_ratio(),
              static_cast<unsigned long long>(r.metrics.shadow_blocks));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapt;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const double fill = argc > 2 ? std::strtod(argv[2], nullptr) : 6.0;

  trace::CloudVolumeModel model(trace::alibaba_profile(), seed);
  const trace::Volume volume = model.make_volume(0, fill);
  std::printf("volume: %zu records, %llu blocks capacity\n",
              volume.records.size(),
              static_cast<unsigned long long>(volume.capacity_blocks));

  run_case(volume, "full ADAPT", true, true, true);
  run_case(volume, "- threshold adaptation", false, true, true);
  run_case(volume, "- cross-group aggregation", true, false, true);
  run_case(volume, "- proactive demotion", true, true, false);
  run_case(volume, "none (SepBIT-like core)", false, false, false);

  adapt::sim::SimConfig base;
  const auto sepbit = adapt::sim::run_volume(volume, "sepbit", base);
  const auto sepgc = adapt::sim::run_volume(volume, "sepgc", base);
  std::printf("%-28s WA=%7.3f gcWA=%7.3f padding=%5.1f%%\n", "sepbit",
              sepbit.wa(), sepbit.metrics.gc_wa(),
              100.0 * sepbit.padding_ratio());
  std::printf("%-28s WA=%7.3f gcWA=%7.3f padding=%5.1f%%\n", "sepgc",
              sepgc.wa(), sepgc.metrics.gc_wa(),
              100.0 * sepgc.padding_ratio());
  return 0;
}
