// Density sweep: replays YCSB-A-style update-heavy workloads at several
// access densities (mean inter-arrival gaps) and Zipf skews, printing the
// WA of every placement scheme — the experiment behind the paper's
// Figure 11 sensitivity study, runnable standalone.
//
// Usage: density_sweep [working_set_blocks] [write_multiplier]
#include <cstdio>
#include <cstdlib>

#include "sim/simulator.h"
#include "trace/synthetic.h"

int main(int argc, char** argv) {
  using namespace adapt;

  const std::uint64_t working_set =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 16);
  const double multiplier = argc > 2 ? std::strtod(argv[2], nullptr) : 6.0;
  const auto writes =
      static_cast<std::uint64_t>(multiplier * static_cast<double>(working_set));

  sim::SimConfig config;
  config.victim_policy = "greedy";

  std::printf("=== WA vs access density (alpha = 0.99) ===\n");
  std::printf("%-12s", "gap_us");
  for (const auto p : sim::all_policy_names()) std::printf("%10.*s", 8, p.data());
  std::printf("\n");
  for (const double gap_us : {400.0, 100.0, 25.0, 5.0}) {
    trace::YcsbConfig wc;
    wc.working_set_blocks = working_set;
    wc.zipf_alpha = 0.99;
    wc.mean_interarrival_us = gap_us;
    wc.seed = 7;
    const trace::Volume volume = trace::make_ycsb_volume(wc, writes);
    std::printf("%-12.0f", gap_us);
    for (const auto p : sim::all_policy_names()) {
      const auto r = sim::run_volume(volume, p, config);
      std::printf("%10.3f", r.wa());
    }
    std::printf("\n");
  }

  std::printf("\n=== WA vs Zipf skew (gap = 50 us) ===\n");
  std::printf("%-12s", "alpha");
  for (const auto p : sim::all_policy_names()) std::printf("%10.*s", 8, p.data());
  std::printf("\n");
  for (const double alpha : {0.0, 0.3, 0.6, 0.9, 1.1}) {
    trace::YcsbConfig wc;
    wc.working_set_blocks = working_set;
    wc.zipf_alpha = alpha;
    wc.mean_interarrival_us = 50.0;
    wc.seed = 7;
    const trace::Volume volume = trace::make_ycsb_volume(wc, writes);
    std::printf("%-12.1f", alpha);
    for (const auto p : sim::all_policy_names()) {
      const auto r = sim::run_volume(volume, p, config);
      std::printf("%10.3f", r.wa());
    }
    std::printf("\n");
  }
  return 0;
}
