// Fallback driver for toolchains without libFuzzer (-fsanitize=fuzzer needs
// Clang; CI has it, the dev container ships only GCC). Replays each file
// argument through LLVMFuzzerTestOneInput once — enough to regression-test
// the corpus under ASan/UBSan, with no coverage-guided mutation.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    const std::vector<std::uint8_t> data(std::istreambuf_iterator<char>(in),
                                         std::istreambuf_iterator<char>{});
    LLVMFuzzerTestOneInput(data.data(), data.size());
    ++replayed;
  }
  std::printf("replayed %d corpus file(s) without findings\n", replayed);
  return 0;
}
