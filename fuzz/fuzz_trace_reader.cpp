// libFuzzer harness for the CSV trace reader.
//
// Input layout: byte 0 selects the trace format (mod 4); the rest is fed to
// read_trace as a whole stream and to parse_line line-by-line. ParseError is
// the documented failure mode and is swallowed; anything else — UB caught by
// ASan/UBSan, wild std exceptions from unchecked conversions, records that
// violate the reader's postconditions — is a finding.
//
// Seed corpus: fuzz/corpus/trace/ (the same lines pinned by the ParseError
// unit tests in tests/trace_test.cpp).
#include <cstddef>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include "trace/reader.h"

namespace {

using adapt::trace::ParseError;
using adapt::trace::TraceFormat;

constexpr TraceFormat kFormats[] = {TraceFormat::kCanonical,
                                    TraceFormat::kAlibaba,
                                    TraceFormat::kTencent, TraceFormat::kMsrc};

void check_postconditions(const adapt::trace::Record& r) {
  if (r.blocks == 0) __builtin_trap();  // reader promises >= 1 block
  if (r.lba > std::numeric_limits<std::uint64_t>::max() - r.blocks) {
    __builtin_trap();  // reader promises a representable block range
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const TraceFormat format = kFormats[data[0] % 4];
  const std::string text(reinterpret_cast<const char*>(data + 1), size - 1);

  // Whole-stream path: line-number attribution + timestamp rebasing.
  try {
    std::istringstream in(text);
    const adapt::trace::Volume v = adapt::trace::read_trace(in, format);
    for (const auto& r : v.records) check_postconditions(r);
  } catch (const ParseError&) {
    // Expected for malformed input.
  }

  // Line-at-a-time path (also covers the non-default block size).
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? rest : rest.substr(0, nl);
    rest = nl == std::string_view::npos ? std::string_view{}
                                        : rest.substr(nl + 1);
    try {
      const auto rec = adapt::trace::parse_line(line, format, 512);
      if (rec) check_postconditions(*rec);
    } catch (const ParseError& e) {
      if (e.line_no() != 0) __builtin_trap();  // parse_line contract
    }
  }
  return 0;
}
