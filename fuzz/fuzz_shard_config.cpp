// libFuzzer harness for the shard-configuration surface: the CLI shard-count
// parser plus the per-shard geometry derivation and its validation.
//
// Input layout: everything before the first '\n' goes to parse_shard_count
// verbatim (the hostile-text surface); the bytes after it are decoded into
// an LssConfig geometry and a shard count for shard_config + validate.
// std::invalid_argument is the documented failure mode for both layers and
// is swallowed; anything else (UB, overflow traps, a ceil-division that
// loses blocks) shows up as a sanitizer finding or a __builtin_trap.
//
// Seed corpus: fuzz/corpus/shard/.
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "lss/config.h"
#include "lss/sharded_engine.h"

namespace {

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void check_parser(std::string_view spec) {
  std::uint32_t parsed = 0;
  try {
    parsed = adapt::lss::parse_shard_count(spec);
  } catch (const std::invalid_argument&) {
    return;  // the documented rejection path
  }
  // Contract on acceptance: in range, and round-trips through the
  // canonical decimal rendering.
  if (parsed == 0 || parsed > adapt::lss::kMaxShards) __builtin_trap();
  if (adapt::lss::parse_shard_count(std::to_string(parsed)) != parsed) {
    __builtin_trap();
  }
}

void check_geometry(const std::uint8_t* tape, std::size_t size) {
  if (size < 12) return;
  adapt::lss::LssConfig config;
  config.chunk_blocks = 1u + tape[0] % 64u;
  config.segment_chunks = 1u + tape[1] % 64u;
  config.logical_blocks = 1u + read_u32(tape + 2) % (1u << 22);
  config.over_provision = 0.05 + static_cast<double>(tape[6] % 200) / 100.0;
  config.free_segment_reserve = tape[7] % 16u;
  const std::uint32_t shards =
      1u + read_u32(tape + 8) % adapt::lss::kMaxShards;
  const auto groups = static_cast<adapt::GroupId>(1 + tape[11] % 8);

  try {
    const adapt::lss::LssConfig per_shard =
        adapt::lss::shard_config(config, shards);
    // Ceil-division contract: the shards jointly cover the global space
    // without over-allocating a full extra row per shard.
    if (per_shard.logical_blocks * shards < config.logical_blocks) {
      __builtin_trap();
    }
    if (per_shard.logical_blocks > 0 &&
        (per_shard.logical_blocks - 1) * shards >= config.logical_blocks) {
      __builtin_trap();
    }
    per_shard.validate(groups);
  } catch (const std::invalid_argument&) {
    // Expected for infeasible geometries (shards > blocks, op space too
    // small for the group count, ...).
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const std::size_t nl = input.find('\n');
  check_parser(input.substr(0, nl));
  if (nl != std::string_view::npos) {
    check_geometry(data + nl + 1, size - nl - 1);
  }
  return 0;
}
