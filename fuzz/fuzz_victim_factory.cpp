// libFuzzer harness for the victim-policy factory string parser plus a
// short randomized drive of the constructed policy's incremental index.
//
// Input layout: everything before the first '\n' is the policy spec for
// make_victim_policy ("greedy", "d-choice:4", ...); the bytes after it are a
// command tape replayed against the policy (seal / valid-delta / free /
// select) on a small segment pool. std::invalid_argument is the documented
// parser failure mode and is swallowed; index corruption shows up as ASan
// findings or is_candidate()/select() contract traps.
//
// Seed corpus: fuzz/corpus/victim/.
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "lss/segment.h"
#include "lss/victim_policy.h"

namespace {

constexpr std::uint32_t kPoolSegments = 16;
constexpr std::uint32_t kSegmentBlocks = 8;

/// Replays `tape` as lifecycle commands, mirroring candidate membership in a
/// naive bool array and trapping on any disagreement with the policy.
void drive(adapt::lss::VictimPolicy& policy, std::span<const std::uint8_t> tape) {
  policy.bind_pool(kPoolSegments, kSegmentBlocks);
  std::vector<adapt::lss::Segment> pool(kPoolSegments);
  bool sealed[kPoolSegments] = {};
  adapt::Rng rng(12345);
  adapt::VTime now = 0;

  for (std::size_t i = 0; i + 1 < tape.size(); i += 2) {
    const std::uint8_t cmd = tape[i] % 4;
    const auto seg = static_cast<adapt::SegmentId>(tape[i + 1] % kPoolSegments);
    adapt::lss::Segment& s = pool[seg];
    now += 1 + tape[i] % 7;
    switch (cmd) {
      case 0:  // seal with a tape-chosen valid count
        if (!sealed[seg]) {
          sealed[seg] = true;
          s.free = false;
          s.sealed = true;
          s.valid_count = tape[i + 1] % (kSegmentBlocks + 1);
          s.seal_vtime = now;
          policy.on_seal(seg, s.valid_count, now);
        }
        break;
      case 1:  // invalidate one live block
        if (sealed[seg] && s.valid_count > 0) {
          policy.on_valid_delta(seg, s.valid_count, s.valid_count - 1);
          --s.valid_count;
        }
        break;
      case 2:  // reclaim
        if (sealed[seg]) {
          sealed[seg] = false;
          s.free = true;
          s.sealed = false;
          s.valid_count = 0;
          policy.on_free(seg);
        }
        break;
      case 3: {  // select: must return a current candidate or kInvalid
        const adapt::SegmentId victim =
            policy.select(std::span<const adapt::lss::Segment>(pool), now, rng);
        if (victim != adapt::kInvalidSegment &&
            (victim >= kPoolSegments || !sealed[victim])) {
          __builtin_trap();
        }
        break;
      }
    }
    for (adapt::SegmentId id = 0; id < kPoolSegments; ++id) {
      if (policy.is_candidate(id) != sealed[id]) __builtin_trap();
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const std::size_t nl = input.find('\n');
  const std::string spec(input.substr(0, nl));
  try {
    const auto policy = adapt::lss::make_victim_policy(spec);
    if (policy->name().empty()) __builtin_trap();
    if (nl != std::string_view::npos) {
      drive(*policy, std::span<const std::uint8_t>(data + nl + 1,
                                                   size - nl - 1));
    }
  } catch (const std::invalid_argument&) {
    // Expected for unknown names / malformed parameters.
  }
  return 0;
}
