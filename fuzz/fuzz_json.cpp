// libFuzzer harness for the observability JSON stack.
//
// The whole input is fed to obs::json::parse, and — when it parses — the
// resulting tree is walked through every accessor so latent issues in the
// Value representation (dangling references, type confusion) surface under
// ASan. The same bytes are then offered to each artifact validator:
// std::invalid_argument is their documented rejection path and is
// swallowed; anything else — UB, stack exhaustion on deep nesting (bounded
// by the parser's depth limit), wild exceptions — is a finding.
//
// Seed corpus: fuzz/corpus/json/ (a valid manifest, bench report, series
// header, deep nesting, and assorted malformed fragments).
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/trace_log.h"

namespace {

void walk(const adapt::obs::json::Value& v) {
  using Type = adapt::obs::json::Value::Type;
  switch (v.type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      (void)v.as_bool();
      break;
    case Type::kNumber:
      (void)v.as_number();
      break;
    case Type::kString:
      (void)v.as_string().size();
      break;
    case Type::kArray:
      for (const auto& item : v.items()) walk(item);
      break;
    case Type::kObject:
      for (const auto& [key, member] : v.members()) {
        if (v.find(key) != &member) __builtin_trap();  // find() contract
        walk(member);
      }
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  try {
    walk(adapt::obs::json::parse(text));
  } catch (const std::invalid_argument&) {
    // Expected for malformed input.
  }

  const auto probe = [&](auto&& validate) {
    try {
      validate(text);
    } catch (const std::invalid_argument&) {
      // Expected: schema violations reject with a reason.
    }
  };
  probe([](std::string_view t) { adapt::obs::validate_manifest_json(t); });
  probe([](std::string_view t) { adapt::obs::validate_bench_json(t); });
  probe([](std::string_view t) { (void)adapt::obs::validate_series_jsonl(t); });
  probe([](std::string_view t) { adapt::obs::validate_trace_json(t); });
  return 0;
}
