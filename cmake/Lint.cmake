# `lint` target: clang-tidy (config in .clang-tidy) + cppcheck over all
# first-party sources. Both tools are optional at configure time — the dev
# container ships only GCC, so missing tools degrade to a warning and the
# target only runs what it found. CI installs both and treats any finding as
# failure (WarningsAsErrors in .clang-tidy; --error-exitcode for cppcheck).
find_program(CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
                                  clang-tidy-16 clang-tidy-15)
find_program(CPPCHECK_EXE NAMES cppcheck)

file(GLOB_RECURSE ADAPT_LINT_SOURCES
     ${CMAKE_SOURCE_DIR}/src/*.cpp
     ${CMAKE_SOURCE_DIR}/tests/*.cpp
     ${CMAKE_SOURCE_DIR}/bench/*.cpp
     ${CMAKE_SOURCE_DIR}/examples/*.cpp
     ${CMAKE_SOURCE_DIR}/fuzz/*.cpp)

set(ADAPT_LINT_COMMANDS)
if(CLANG_TIDY_EXE)
  # Needs compile_commands.json; always emitted (see top-level CMakeLists).
  list(APPEND ADAPT_LINT_COMMANDS
       COMMAND ${CLANG_TIDY_EXE} -p ${CMAKE_BINARY_DIR} --quiet
               ${ADAPT_LINT_SOURCES})
else()
  message(WARNING "clang-tidy not found: `lint` target will skip it")
endif()

if(CPPCHECK_EXE)
  list(APPEND ADAPT_LINT_COMMANDS
       COMMAND ${CPPCHECK_EXE}
               --enable=warning,performance,portability
               --inline-suppr
               --error-exitcode=2
               --suppress=missingIncludeSystem
               --std=c++20 --language=c++ --quiet
               -I ${CMAKE_SOURCE_DIR}/src
               ${ADAPT_LINT_SOURCES})
else()
  message(WARNING "cppcheck not found: `lint` target will skip it")
endif()

if(ADAPT_LINT_COMMANDS)
  add_custom_target(lint
                    ${ADAPT_LINT_COMMANDS}
                    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
                    COMMENT "Running static analysis (clang-tidy / cppcheck)"
                    VERBATIM)
else()
  add_custom_target(lint
                    COMMAND ${CMAKE_COMMAND} -E echo
                            "lint: neither clang-tidy nor cppcheck available; nothing to do"
                    COMMENT "Static analysis tools unavailable")
endif()
