#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "obs/json.h"

namespace adapt::lint {
namespace {

bool is_word(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// 1-based line number of byte offset `pos`.
std::size_t line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(pos),
                            '\n'));
}

/// True when `path` (already forward-slashed) has `dir` as a component
/// prefix anywhere, e.g. path_contains("a/src/obs/x.h", "src/obs/").
bool path_contains(std::string_view path, std::string_view dir) {
  return path.find(dir) != std::string_view::npos;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string normalized(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

/// Suppressions: (1-based line) -> rule names allowed on that line or the
/// one below it. Collected from the raw source so comment placement works.
using AllowMap = std::map<std::size_t, std::set<std::string>>;

AllowMap collect_allows(std::string_view source) {
  AllowMap allows;
  static constexpr std::string_view kMarker = "ADAPT_LINT_ALLOW(";
  std::size_t line = 1;
  std::size_t start = 0;
  while (start <= source.size()) {
    std::size_t eol = source.find('\n', start);
    if (eol == std::string_view::npos) eol = source.size();
    const std::string_view text = source.substr(start, eol - start);
    std::size_t at = 0;
    while ((at = text.find(kMarker, at)) != std::string_view::npos) {
      const std::size_t name_begin = at + kMarker.size();
      const std::size_t close = text.find(')', name_begin);
      if (close != std::string_view::npos) {
        allows[line].emplace(text.substr(name_begin, close - name_begin));
      }
      at = name_begin;
    }
    line += 1;
    start = eol + 1;
  }
  return allows;
}

bool is_allowed(const AllowMap& allows, std::size_t line,
                std::string_view rule) {
  for (const std::size_t l : {line, line > 1 ? line - 1 : line}) {
    const auto it = allows.find(l);
    if (it != allows.end() && it->second.count(std::string(rule)) != 0) {
      return true;
    }
  }
  return false;
}

/// Finds the next occurrence of identifier `token` at or after `from`,
/// word-bounded on both sides. Returns npos when absent.
std::size_t find_token(std::string_view text, std::string_view token,
                       std::size_t from) {
  std::size_t pos = from;
  while ((pos = text.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_word(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !is_word(text[end]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string_view::npos;
}

/// Like find_token, but additionally requires the token to be followed
/// (after optional whitespace) by one of the characters in `next`.
std::size_t find_call_token(std::string_view text, std::string_view token,
                            std::string_view next, std::size_t from) {
  std::size_t pos = from;
  while ((pos = find_token(text, token, pos)) != std::string_view::npos) {
    std::size_t after = pos + token.size();
    while (after < text.size() &&
           (text[after] == ' ' || text[after] == '\t')) {
      after += 1;
    }
    if (after < text.size() &&
        next.find(text[after]) != std::string_view::npos) {
      return pos;
    }
    pos += 1;
  }
  return std::string_view::npos;
}

/// Byte range of the function body attached to the declarator that starts
/// at `from`: the first '{' at parenthesis depth 0, through its matching
/// '}'. Returns false when a ';' (pure declaration) or '}' intervenes.
bool find_body(std::string_view text, std::size_t from, std::size_t& begin,
               std::size_t& end) {
  int paren = 0;
  std::size_t i = from;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(') paren += 1;
    if (c == ')') paren -= 1;
    if (paren != 0) continue;
    if (c == ';' || c == '}') return false;
    if (c == '{') break;
  }
  if (i >= text.size()) return false;
  begin = i + 1;
  int depth = 1;
  for (i = begin; i < text.size(); ++i) {
    if (text[i] == '{') depth += 1;
    if (text[i] == '}' && --depth == 0) {
      end = i;
      return true;
    }
  }
  return false;
}

struct RuleContext {
  std::string_view path;     ///< normalized, forward slashes
  std::string_view text;     ///< stripped source
  std::string_view raw;      ///< original source
  const AllowMap& allows;
  std::vector<Finding>& out;
};

void report(const RuleContext& ctx, std::string_view rule, std::size_t pos,
            std::string message) {
  const std::size_t line = line_of(ctx.text, pos);
  if (is_allowed(ctx.allows, line, rule)) return;
  ctx.out.push_back(Finding{std::string(rule), std::string(ctx.path), line,
                            std::move(message)});
}

// ---------------------------------------------------------------------------
// hot-alloc: no direct allocation inside ADAPT_HOT function bodies.

void rule_hot_alloc(const RuleContext& ctx) {
  // Identifiers that allocate when called (or instantiated, for the
  // make_* templates). Matched as calls so a member named e.g.
  // `reserve_blocks` cannot trip the rule.
  static constexpr std::string_view kAllocCalls[] = {
      "push_back", "emplace_back", "resize",      "reserve",
      "assign",    "insert",       "emplace",     "make_unique",
      "make_shared", "to_string",  "malloc",      "calloc",
      "realloc",   "strdup",
  };
  std::size_t pos = 0;
  while ((pos = find_token(ctx.text, "ADAPT_HOT", pos)) !=
         std::string_view::npos) {
    const std::size_t mark = pos;
    pos += 1;
    // Skip the macro's own definition (and any redefinition).
    const std::size_t bol = ctx.text.rfind('\n', mark);
    const std::string_view line_prefix =
        ctx.text.substr(bol == std::string_view::npos ? 0 : bol + 1,
                        mark - (bol == std::string_view::npos ? 0 : bol + 1));
    if (line_prefix.find('#') != std::string_view::npos) continue;
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    if (!find_body(ctx.text, mark, body_begin, body_end)) continue;
    const std::string_view body =
        ctx.text.substr(body_begin, body_end - body_begin);
    for (const std::string_view call : kAllocCalls) {
      std::size_t at = 0;
      while ((at = find_call_token(body, call, "(<", at)) !=
             std::string_view::npos) {
        report(ctx, kRuleHotAlloc, body_begin + at,
               "allocation call '" + std::string(call) +
                   "' inside an ADAPT_HOT function body");
        at += 1;
      }
    }
    std::size_t at = 0;
    while ((at = find_token(body, "new", at)) != std::string_view::npos) {
      report(ctx, kRuleHotAlloc, body_begin + at,
             "'new' inside an ADAPT_HOT function body");
      at += 1;
    }
  }
}

// ---------------------------------------------------------------------------
// trace-emit-guard: emit() call sites need a sink-attached null check close
// enough that the event's argument construction stays behind it.

void rule_trace_emit_guard(const RuleContext& ctx) {
  if (path_contains(ctx.path, "src/obs/") ||
      ends_with(ctx.path, "trace_sink.h")) {
    return;  // the sink layer itself: definitions, not call sites
  }
  static constexpr std::size_t kWindow = 240;
  std::size_t pos = 0;
  while ((pos = find_call_token(ctx.text, "emit", "(", pos)) !=
         std::string_view::npos) {
    const std::size_t begin = pos > kWindow ? pos - kWindow : 0;
    const std::string_view window = ctx.text.substr(begin, pos - begin);
    if (window.find("nullptr") == std::string_view::npos) {
      report(ctx, kRuleTraceEmitGuard, pos,
             "emit() call without a preceding sink != nullptr guard");
    }
    pos += 1;
  }
}

// ---------------------------------------------------------------------------
// naked-threading: std threading primitives only inside src/common/.

void rule_naked_threading(const RuleContext& ctx) {
  if (path_contains(ctx.path, "src/common/")) return;
  static constexpr std::string_view kPrimitives[] = {
      "std::mutex",
      "std::recursive_mutex",
      "std::timed_mutex",
      "std::shared_mutex",
      "std::condition_variable",
      "std::condition_variable_any",
      "std::thread",
      "std::jthread",
      "std::lock_guard",
      "std::unique_lock",
      "std::scoped_lock",
      "std::shared_lock",
  };
  for (const std::string_view prim : kPrimitives) {
    std::size_t pos = 0;
    while ((pos = ctx.text.find(prim, pos)) != std::string_view::npos) {
      const bool left_ok = pos == 0 || (!is_word(ctx.text[pos - 1]) &&
                                        ctx.text[pos - 1] != ':');
      const std::size_t end = pos + prim.size();
      const bool right_ok = end >= ctx.text.size() || !is_word(ctx.text[end]);
      if (left_ok && right_ok) {
        report(ctx, kRuleNakedThreading, pos,
               std::string(prim) +
                   " outside src/common/ (use the adapt::Mutex / "
                   "adapt::Thread wrappers from common/sync.h)");
      }
      pos += 1;
    }
  }
}

// ---------------------------------------------------------------------------
// nondeterminism: unseeded randomness and wall-clock entropy sources are
// banned outside the seeded PRNG module.

void rule_nondeterminism(const RuleContext& ctx) {
  if (path_contains(ctx.path, "src/common/rng.")) return;
  static constexpr std::string_view kCalls[] = {"rand", "srand", "time"};
  for (const std::string_view call : kCalls) {
    std::size_t pos = 0;
    while ((pos = find_call_token(ctx.text, call, "(", pos)) !=
           std::string_view::npos) {
      std::string msg = "'";
      msg += call;
      msg +=
          "()' is nondeterministic; derive randomness from a seeded "
          "adapt::Rng";
      report(ctx, kRuleNondeterminism, pos, std::move(msg));
      pos += 1;
    }
  }
  static constexpr std::string_view kTypes[] = {"random_device", "mt19937",
                                                "mt19937_64"};
  for (const std::string_view type : kTypes) {
    std::size_t pos = 0;
    while ((pos = find_token(ctx.text, type, pos)) !=
           std::string_view::npos) {
      std::string msg = "'";
      msg += type;
      msg +=
          "' is nondeterministic; derive randomness from a seeded "
          "adapt::Rng";
      report(ctx, kRuleNondeterminism, pos, std::move(msg));
      pos += 1;
    }
  }
}

// ---------------------------------------------------------------------------
// header-hygiene: src/ headers use #pragma once and directly include
// the standard headers behind the tokens they use (IWYU-lite). Originally
// scoped to src/lss/ while the rule bedded in; now the whole tree.

void rule_header_hygiene(const RuleContext& ctx) {
  if (!path_contains(ctx.path, "src/") || !ends_with(ctx.path, ".h")) {
    return;
  }
  if (ctx.raw.find("#pragma once") == std::string_view::npos) {
    report(ctx, kRuleHeaderHygiene, 0, "header is missing #pragma once");
  }
  // token -> required standard header. Small on purpose: only tokens whose
  // home header is unambiguous.
  static constexpr std::pair<std::string_view, std::string_view> kNeeds[] = {
      {"std::vector", "vector"},
      {"std::string_view", "string_view"},
      {"std::string", "string"},
      {"std::uint8_t", "cstdint"},
      {"std::uint16_t", "cstdint"},
      {"std::uint32_t", "cstdint"},
      {"std::uint64_t", "cstdint"},
      {"std::int32_t", "cstdint"},
      {"std::int64_t", "cstdint"},
      {"std::size_t", "cstddef"},
      {"std::ptrdiff_t", "cstddef"},
      {"std::span", "span"},
      {"std::function", "functional"},
      {"std::pair", "utility"},
      {"std::numeric_limits", "limits"},
      {"std::logic_error", "stdexcept"},
      {"std::runtime_error", "stdexcept"},
      {"std::invalid_argument", "stdexcept"},
      {"std::out_of_range", "stdexcept"},
      {"std::unique_ptr", "memory"},
      {"std::make_unique", "memory"},
      {"std::shared_ptr", "memory"},
      {"std::optional", "optional"},
  };
  std::set<std::string_view> reported;
  for (const auto& [token, header] : kNeeds) {
    const std::size_t pos = find_token(ctx.text, token, 0);
    if (pos == std::string_view::npos) continue;
    if (reported.count(header) != 0) continue;
    const std::string include_line = "#include <" + std::string(header) + ">";
    if (ctx.raw.find(include_line) == std::string_view::npos) {
      reported.insert(header);
      report(ctx, kRuleHeaderHygiene, pos,
             "uses " + std::string(token) + " but does not include <" +
                 std::string(header) + ">");
    }
  }
}

}  // namespace

const std::vector<std::string_view>& all_rules() {
  static const std::vector<std::string_view> kRules = {
      kRuleHotAlloc, kRuleTraceEmitGuard, kRuleNakedThreading,
      kRuleNondeterminism, kRuleHeaderHygiene};
  return kRules;
}

std::string strip_comments_and_strings(std::string_view source) {
  std::string out(source);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;  // the quote itself stays
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          i += 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          i += 1;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source) {
  const std::string norm = normalized(path);
  const std::string stripped = strip_comments_and_strings(source);
  const AllowMap allows = collect_allows(source);
  std::vector<Finding> findings;
  const RuleContext ctx{norm, stripped, source, allows, findings};
  rule_hot_alloc(ctx);
  rule_trace_emit_guard(ctx);
  rule_naked_threading(ctx);
  rule_nondeterminism(ctx);
  rule_header_hygiene(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& l, const Finding& r) {
              return std::tie(l.line, l.rule, l.message) <
                     std::tie(r.line, r.rule, r.message);
            });
  return findings;
}

Result lint_tree(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (!fs::exists(p)) {
      throw std::runtime_error("adapt_lint: no such path: " + root);
    }
    if (fs::is_regular_file(p)) {
      files.push_back(p.generic_string());
      continue;
    }
    fs::recursive_directory_iterator it(p);
    const fs::recursive_directory_iterator end;
    for (; it != end; ++it) {
      const std::string name = it->path().filename().generic_string();
      if (it->is_directory()) {
        if (name == "build" || (!name.empty() && name[0] == '.')) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().generic_string();
      if (ext == ".h" || ext == ".cpp") {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Result result;
  result.files_scanned = files.size();
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) throw std::runtime_error("adapt_lint: cannot read " + file);
    const std::string source((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    std::vector<Finding> findings = lint_source(file, source);
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(findings.begin()),
                           std::make_move_iterator(findings.end()));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& l, const Finding& r) {
              return std::tie(l.file, l.line, l.rule, l.message) <
                     std::tie(r.file, r.line, r.rule, r.message);
            });
  return result;
}

std::string findings_json(const Result& result) {
  using obs::json::quote;
  std::string out = "{";
  out += quote("schema");
  out += ':';
  out += quote(kLintSchema);
  out += ',';
  out += quote("files_scanned");
  out += ':';
  out += std::to_string(result.files_scanned);
  out += ',';
  out += quote("rules");
  out += ":[";
  bool first = true;
  for (const std::string_view rule : all_rules()) {
    if (!first) out += ',';
    first = false;
    out += quote(rule);
  }
  out += "],";
  out += quote("findings");
  out += ":[";
  first = true;
  for (const Finding& f : result.findings) {
    if (!first) out += ',';
    first = false;
    out += '{';
    out += quote("rule");
    out += ':';
    out += quote(f.rule);
    out += ',';
    out += quote("file");
    out += ':';
    out += quote(f.file);
    out += ',';
    out += quote("line");
    out += ':';
    out += std::to_string(f.line);
    out += ',';
    out += quote("message");
    out += ':';
    out += quote(f.message);
    out += '}';
  }
  out += "]}";
  return out;
}

void validate_lint_json(std::string_view text) {
  const obs::json::Value doc = obs::json::parse(text);
  if (!doc.is_object()) {
    throw std::invalid_argument("schema: lint report must be an object");
  }
  const obs::json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kLintSchema) {
    throw std::invalid_argument("schema: expected \"" +
                                std::string(kLintSchema) + '"');
  }
  const obs::json::Value* scanned = doc.find("files_scanned");
  if (scanned == nullptr || !scanned->is_number()) {
    throw std::invalid_argument("schema: files_scanned must be a number");
  }
  const obs::json::Value* rules = doc.find("rules");
  if (rules == nullptr || !rules->is_array()) {
    throw std::invalid_argument("schema: rules must be an array");
  }
  for (const obs::json::Value& rule : rules->items()) {
    if (!rule.is_string()) {
      throw std::invalid_argument("schema: rules entries must be strings");
    }
  }
  const obs::json::Value* findings = doc.find("findings");
  if (findings == nullptr || !findings->is_array()) {
    throw std::invalid_argument("schema: findings must be an array");
  }
  std::size_t index = 0;
  for (const obs::json::Value& f : findings->items()) {
    const std::string where = "findings[" + std::to_string(index++) + "]";
    if (!f.is_object()) {
      throw std::invalid_argument("schema: " + where + " must be an object");
    }
    for (const char* key : {"rule", "file", "message"}) {
      const obs::json::Value* v = f.find(key);
      if (v == nullptr || !v->is_string()) {
        throw std::invalid_argument("schema: " + where + '.' + key +
                                    " must be a string");
      }
    }
    const obs::json::Value* line = f.find("line");
    if (line == nullptr || !line->is_number()) {
      throw std::invalid_argument("schema: " + where +
                                  ".line must be a number");
    }
  }
}

}  // namespace adapt::lint
