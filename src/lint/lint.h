// adapt_lint: a deterministic, libclang-free scanner for project
// invariants that generic linters cannot express.
//
// The rules encode contracts the rest of the codebase relies on:
//
//   hot-alloc        ADAPT_HOT function bodies must not contain direct
//                    allocation calls (new, push_back, reserve, ...). The
//                    zero-steady-state-allocation property (asserted at
//                    runtime by micro_engine_hotpath's operator-new
//                    interposer) becomes a compile-time-adjacent check.
//   trace-emit-guard Every TraceSink emit() call site must sit behind an
//                    explicit sink-attached null check, so event argument
//                    construction is dead when tracing is detached.
//   naked-threading  std::mutex / std::thread / lock types may only be
//                    named in src/common/ — everything else goes through
//                    the capability-annotated adapt::Mutex wrappers.
//   nondeterminism   rand()/srand()/time()/std::random_device/mt19937 are
//                    banned outside src/common/rng.* — all randomness
//                    flows from seeded adapt::Rng instances.
//   header-hygiene   src/lss headers must use #pragma once and directly
//                    include the standard headers they use (IWYU-lite over
//                    a small token -> header map).
//
// A finding can be suppressed with a comment on the finding line or the
// line immediately above it:  // ADAPT_LINT_ALLOW(rule-name) — every
// suppression should say why in the surrounding comment.
//
// The scanner strips comments and string/char literals (preserving line
// structure) before matching, and all matching is word-boundary exact, so
// the engine has no false positives from identifiers that merely contain a
// banned token. It is pure string processing: same input, same findings,
// byte for byte.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace adapt::lint {

inline constexpr std::string_view kLintSchema = "adapt-lint-v1";

/// Rule identifiers (stable: they appear in findings JSON and ALLOW
/// comments).
inline constexpr std::string_view kRuleHotAlloc = "hot-alloc";
inline constexpr std::string_view kRuleTraceEmitGuard = "trace-emit-guard";
inline constexpr std::string_view kRuleNakedThreading = "naked-threading";
inline constexpr std::string_view kRuleNondeterminism = "nondeterminism";
inline constexpr std::string_view kRuleHeaderHygiene = "header-hygiene";

/// Every rule id, in report order.
const std::vector<std::string_view>& all_rules();

struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;  ///< 1-based
  std::string message;
};

struct Result {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
};

/// Replaces comments and string/char literal contents with spaces,
/// preserving every newline so byte offsets map to the same line numbers
/// as the original. Exposed for the rule-engine unit tests.
std::string strip_comments_and_strings(std::string_view source);

/// Lints one translation unit. `path` is the repo-relative path (forward
/// slashes); it drives the per-rule scope exemptions documented above.
std::vector<Finding> lint_source(std::string_view path,
                                 std::string_view source);

/// Walks `roots` (files or directories; directories recurse over *.h and
/// *.cpp, skipping any directory component named "build" or starting with
/// '.'), lints every file, and returns the merged result with findings
/// ordered by (file, line, rule). Paths in findings are as discovered.
/// Throws std::runtime_error when a root does not exist.
Result lint_tree(const std::vector<std::string>& roots);

/// Renders `result` as an adapt-lint-v1 JSON document.
std::string findings_json(const Result& result);

/// Throws std::invalid_argument unless `text` is a well-formed
/// adapt-lint-v1 document (schema tag, files_scanned, rules list, and
/// per-finding field requirements).
void validate_lint_json(std::string_view text);

}  // namespace adapt::lint
