// Spatially sampled reuse-distance tracking (paper §3.2, "Tracking workload
// characteristics"), after SHARDS [Waldspurger et al., FAST'15].
//
// Blocks are sampled by a uniform hash of their LBA; for each sampled
// access the tracker returns the number of *distinct* sampled blocks
// touched since that block's previous access. Scaling the sampled distance
// by 1/rate estimates the block's real access interval. The "distance
// tree" is a Fenwick tree over the sampled access sequence: the most recent
// position of each live block is marked, so the distance is a suffix count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "common/fenwick.h"
#include "common/rng.h"
#include "common/types.h"

namespace adapt::core {

/// Uniform spatial sampler: an LBA is in-sample iff hash(lba) < rate * 2^64.
class SpatialSampler {
 public:
  explicit SpatialSampler(double rate, std::uint64_t salt = 0x5bd1e995u);

  double rate() const noexcept { return rate_; }
  bool sampled(Lba lba) const noexcept {
    return mix64(lba ^ salt_) < cutoff_;
  }

 private:
  double rate_;
  std::uint64_t salt_;
  std::uint64_t cutoff_;
};

class ReuseDistanceTracker {
 public:
  static constexpr std::uint64_t kFirstAccess =
      std::numeric_limits<std::uint64_t>::max();

  struct Interval {
    /// Distinct tracked blocks accessed since lba's last access (scale by
    /// 1/rate for the working-set-style distance), or kFirstAccess.
    std::uint64_t unique_distance = kFirstAccess;
    /// Raw interval in caller clock units (e.g. user blocks written) since
    /// lba's last access, or kFirstAccess. Same unit as the placement
    /// lifespans, so thresholds derived from it apply directly.
    std::uint64_t raw_interval = kFirstAccess;
  };

  /// Records an access at caller time `now` and returns both interval
  /// measures for lba's previous access (kFirstAccess on no history).
  Interval access(Lba lba, std::uint64_t now);

  std::size_t tracked_blocks() const noexcept { return last_seen_.size(); }

  /// ~44 bytes per sampled block (paper §4.4): map entry + tree slot.
  std::size_t memory_usage_bytes() const noexcept;

 private:
  struct LastSeen {
    std::uint64_t seq;
    std::uint64_t time;
  };

  std::unordered_map<Lba, LastSeen> last_seen_;
  FenwickTree marks_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace adapt::core
