// Ghost-set GC simulation (paper §3.2).
//
// A ghost set replays sampled user writes through a miniature two-group
// (hot/cold) log-structured layout with its own hot/cold threshold,
// tracking only LBAs. Segment sizes are scaled by the sampling rate. GC
// uses greedy selection but — unlike the real system — *discards* victim
// valid blocks instead of rewriting them, because in the real system those
// blocks would leave the user-written groups for GC-rewritten groups. The
// ratio of discarded to written blocks is the ghost's WA proxy; the
// threshold whose ghost discards least wins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "audit/audit.h"
#include "common/types.h"

namespace adapt::core {

struct GhostConfig {
  std::uint32_t segment_blocks = 16;   ///< scaled segment size
  std::uint32_t capacity_segments = 64;  ///< user-group capacity budget
};

class GhostSet {
 public:
  GhostSet(const GhostConfig& config, std::uint64_t threshold);

  std::uint64_t threshold() const noexcept { return threshold_; }

  /// Changes the hot/cold threshold and restarts WA accounting (placement
  /// state is kept so the set stays warm).
  void set_threshold(std::uint64_t threshold) noexcept {
    threshold_ = threshold;
    reset_metrics();
  }

  void reset_metrics() noexcept {
    written_ = 0;
    discarded_ = 0;
    gc_runs_ = 0;
  }

  /// Feeds one sampled user write with its (scaled) access interval;
  /// kFirstAccess (all-ones) means no history -> cold.
  void write(Lba lba, std::uint64_t interval);

  std::uint64_t written() const noexcept { return written_; }
  std::uint64_t discarded() const noexcept { return discarded_; }
  std::uint64_t gc_runs() const noexcept { return gc_runs_; }

  /// WA proxy: discarded valid blocks per written block (lower is better).
  double discard_ratio() const noexcept {
    return written_ == 0
               ? 0.0
               : static_cast<double>(discarded_) /
                     static_cast<double>(written_);
  }

  /// "Authentic" once GC has churned enough for the ratio to mean anything.
  bool stable() const noexcept { return gc_runs_ >= 2; }

  std::size_t segment_count() const noexcept { return segments_.size(); }
  std::size_t memory_usage_bytes() const noexcept;

  /// Self-audit; throws std::logic_error on violation. kCounters checks the
  /// open-segment bookkeeping in O(1); kFull re-derives every segment's
  /// valid count and cross-checks the LBA map in O(tracked blocks).
  void check_invariants(audit::Level level) const;

 private:
  struct GhostSegment {
    std::vector<Lba> lbas;
    std::vector<bool> valid;
    std::uint32_t valid_count = 0;
    bool sealed = false;
  };

  struct Location {
    std::uint64_t segment_key;
    std::uint32_t slot;
  };

  void append(Lba lba, bool hot);
  void maybe_gc();

  GhostConfig config_;
  std::uint64_t threshold_;
  std::uint64_t written_ = 0;
  std::uint64_t discarded_ = 0;
  std::uint64_t gc_runs_ = 0;
  std::uint64_t next_segment_key_ = 0;
  std::uint64_t open_key_[2] = {~0ull, ~0ull};  // hot, cold open segments
  std::unordered_map<std::uint64_t, GhostSegment> segments_;
  std::unordered_map<Lba, Location> map_;
};

}  // namespace adapt::core
