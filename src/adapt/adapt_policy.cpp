#include "adapt/adapt_policy.h"

#include <algorithm>

namespace adapt::core {

AdaptPolicy::AdaptPolicy(const AdaptConfig& config)
    : config_(config),
      last_write_(config.logical_blocks, kNeverWritten),
      fallback_threshold_(static_cast<double>(config.segment_blocks) * 4.0) {
  if (config_.enable_threshold_adaptation) {
    AdapterConfig ac;
    ac.sample_rate = config_.sample_rate;
    ac.num_ghosts = config_.num_ghosts;
    ac.segment_blocks = config_.segment_blocks;
    ac.logical_blocks = config_.logical_blocks;
    ac.over_provision = config_.over_provision;
    ac.update_fraction = config_.update_fraction;
    adapter_ = std::make_unique<ThresholdAdapter>(ac);
  }
  if (config_.enable_proactive_demotion) {
    discriminators_.reserve(kGcGroups);
    for (GroupId g = 0; g < kGcGroups; ++g) {
      discriminators_.emplace_back(config_.bloom_filters_per_group,
                                   config_.bloom_filter_capacity);
    }
  }
}

double AdaptPolicy::threshold() const noexcept {
  if (adapter_ != nullptr && adapter_->adopted()) {
    return static_cast<double>(adapter_->threshold());
  }
  return fallback_threshold_;
}

GroupId AdaptPolicy::place_user_write(Lba lba, VTime now) {
  if (adapter_ != nullptr && adapter_->on_user_write(lba, now)) {
    // The adapter just adopted a new threshold (§3.2 re-adaptation).
    if (trace_ != nullptr) {
      lss::emit(trace_,
                lss::TraceEvent{lss::TraceEventKind::kThresholdAdapt,
                                kInvalidGroup, now, 0, adapter_->threshold(),
                                adapter_->adoptions(), 0});
    }
  }

  // §3.4: long-lived blocks skip the user groups entirely when the
  // re-access identifier is confident about their destination. Demotion is
  // gated on the block's *prior lifespan* (the correlation the paper
  // builds on): only a version that just demonstrated a cold-group-scale
  // lifetime is a demotion candidate — that filters out warm blocks that
  // merely churned through the GC ladder.
  if (config_.enable_proactive_demotion) {
    const VTime prior = last_write_[lba];
    const bool long_lived =
        prior != kNeverWritten &&
        static_cast<double>(now - prior) >= 4.0 * threshold();
    if (long_lived) {
      GroupId best_group = kInvalidGroup;
      std::uint32_t best_score = 0;
      for (GroupId g = 0; g < kGcGroups; ++g) {
        const std::uint32_t s = discriminators_[g].score(lba);
        if (s > best_score) {
          best_score = s;
          best_group = kFirstGcGroup + g;
        }
      }
      if (best_score >= config_.demotion_score_threshold) {
        ++demotions_;
        last_write_[lba] = now;
        return best_group;
      }
    }
  }

  const VTime last = last_write_[lba];
  last_write_[lba] = now;
  if (last == kNeverWritten) return kColdUser;
  const auto lifespan = static_cast<double>(now - last);
  return lifespan < threshold() ? kHotUser : kColdUser;
}

GroupId AdaptPolicy::place_gc_rewrite(Lba lba, GroupId victim_group,
                                      VTime now) {
  // Residual-lifespan estimate from the age of the current version,
  // SepBIT-style geometric boundaries in multiples of the threshold.
  const VTime birth = last_write_[lba];
  const auto age =
      static_cast<double>(birth == kNeverWritten ? now : now - birth);
  const double l = threshold();
  GroupId target = kFirstGcGroup;
  if (age >= 4.0 * l) target = kFirstGcGroup + 1;
  if (age >= 16.0 * l) target = kFirstGcGroup + 2;
  if (age >= 64.0 * l) target = kFirstGcGroup + 3;
  // A block never climbs back toward hotter GC groups: its residual
  // lifespan only shrinks. Without this, a proactively demoted block
  // (young version age, cold group) would bounce to the hottest GC group
  // at its first GC and re-pay the whole ladder.
  if (victim_group >= kFirstGcGroup && victim_group < group_count()) {
    target = std::max(target, victim_group);
  }

  // §3.4: a block GC re-places into its *own* group has demonstrated a
  // lifetime matching that group — record it in the group's identifier.
  if (config_.enable_proactive_demotion && victim_group == target &&
      target >= kFirstGcGroup) {
    discriminators_[target - kFirstGcGroup].insert(lba);
  }
  return target;
}

void AdaptPolicy::note_segment_sealed(GroupId group, VTime /*now*/) {
  if (group == kHotUser) shadow_budget_used_ = 0;
}

void AdaptPolicy::note_segment_reclaimed(GroupId group, VTime create_vtime,
                                         VTime now) {
  if (group != kHotUser) return;
  const auto lifespan = static_cast<double>(now - create_vtime);
  fallback_threshold_ = 0.875 * fallback_threshold_ + 0.125 * lifespan;
}

lss::AggregationDecision AdaptPolicy::on_chunk_deadline(
    GroupId group, const lss::LssEngine& engine) {
  // Aggregation merges the two user groups' durability obligations into a
  // single constructed chunk hosted by the colder group (§3.3): shadows of
  // the hot pendings ride in the cold chunk's would-be padding space, the
  // hot chunk keeps filling lazily, and one flush serves both deadlines.
  if (!config_.enable_cross_group_aggregation) {
    ++pad_decisions_;
    return {};
  }
  // A GC-rewritten group only faces a deadline when a proactively demoted
  // user block is sitting in its open chunk. Rather than padding a bulk
  // chunk for one block, shadow it into the cold user group's chunk; the
  // GC chunk keeps filling with future GC traffic.
  if (group >= kFirstGcGroup) {
    ++shadow_decisions_;
    return {.donor = group, .host = kColdUser};
  }

  const std::uint32_t hot_pending =
      engine.pending_unshadowed_valid(kHotUser);
  const std::uint32_t cold_pending = engine.pending_blocks(kColdUser);
  // Without overlap there is nothing to merge: a lone donor would pay the
  // same padding in the host plus the later lazy rewrite. And if the
  // merged payload overflows one chunk, the spill would force an extra
  // (padded) host chunk — worse than padding in place.
  const bool mergeable = hot_pending > 0 && cold_pending > 0 &&
                         hot_pending + cold_pending <=
                             engine.config().chunk_blocks;
  if (!mergeable) {
    ++pad_decisions_;
    return {};
  }

  // Prediction (§3.3 step 1): aggregate while the hot group's chunks keep
  // missing the coalescing window — access density is continuous, so an
  // unfilled chunk predicts the next one unfilled. With too little history
  // we optimistically aggregate.
  const lss::GroupTraffic& hot = engine.group_traffic(kHotUser);
  const std::uint64_t flushes = hot.full_flushes + hot.padded_flushes;
  if (group == kHotUser && flushes >= 16) {
    const double unfilled_ratio = static_cast<double>(hot.padded_flushes) /
                                  static_cast<double>(flushes);
    if (unfilled_ratio < config_.min_unfilled_ratio) {
      ++pad_decisions_;
      return {};
    }
  }

  // Stop rule (§3.3 step 2): shadow bytes spent on the hot segment being
  // written must not exceed the group's average padding volume — beyond
  // that, aggregation costs more than the padding it avoids. The floor
  // keeps the rule from strangling itself once aggregation has eliminated
  // most padding.
  const std::uint64_t floor =
      static_cast<std::uint64_t>(config_.chunk_blocks) * 4;
  const std::uint64_t budget =
      hot.segments_sealed == 0
          ? floor
          : std::max<std::uint64_t>(hot.padding_blocks / hot.segments_sealed,
                                    floor);
  if (shadow_budget_used_ + hot_pending > budget) {
    ++pad_decisions_;
    return {};
  }

  shadow_budget_used_ += hot_pending;
  ++shadow_decisions_;
  // §3.3 group selection: always the colder user group hosts the shadows.
  return {.donor = kHotUser, .host = kColdUser};
}

std::size_t AdaptPolicy::memory_usage_bytes() const {
  std::size_t total = last_write_.capacity() * sizeof(VTime);
  if (adapter_ != nullptr) total += adapter_->memory_usage_bytes();
  for (const CascadeDiscriminator& d : discriminators_) {
    total += d.memory_usage_bytes();
  }
  return total;
}

std::unique_ptr<AdaptPolicy> make_adapt_policy(const AdaptConfig& config) {
  return std::make_unique<AdaptPolicy>(config);
}

}  // namespace adapt::core
