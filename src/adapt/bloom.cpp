#include "adapt/bloom.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace adapt::core {

BloomFilter::BloomFilter(std::uint32_t capacity)
    : capacity_(std::max<std::uint32_t>(capacity, 1)) {
  // ~9.6 bits/element and 7 hashes give ~1% FPR.
  const std::uint64_t bits = static_cast<std::uint64_t>(capacity_) * 10;
  bits_.assign((bits + 63) / 64, 0);
  num_hashes_ = 7;
}

void BloomFilter::insert(Lba lba) noexcept {
  const std::uint64_t h1 = mix64(lba);
  const std::uint64_t h2 = mix64(lba ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (std::uint32_t i = 0; i < num_hashes_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bit_count();
    bits_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
  ++inserted_;
}

bool BloomFilter::maybe_contains(Lba lba) const noexcept {
  const std::uint64_t h1 = mix64(lba);
  const std::uint64_t h2 = mix64(lba ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (std::uint32_t i = 0; i < num_hashes_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bit_count();
    if ((bits_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
  }
  return true;
}

CascadeDiscriminator::CascadeDiscriminator(std::uint32_t max_filters,
                                           std::uint32_t filter_capacity)
    : max_filters_(std::max<std::uint32_t>(max_filters, 1)),
      filter_capacity_(std::max<std::uint32_t>(filter_capacity, 1)) {}

void CascadeDiscriminator::insert(Lba lba) {
  if (filters_.empty() || filters_.back().full()) {
    filters_.emplace_back(filter_capacity_);
    if (filters_.size() > max_filters_) filters_.pop_front();
  }
  filters_.back().insert(lba);
  ++total_inserted_;
}

std::uint32_t CascadeDiscriminator::score(Lba lba) const noexcept {
  std::uint32_t s = 0;
  for (const BloomFilter& f : filters_) {
    if (f.maybe_contains(lba)) ++s;
  }
  return s;
}

void CascadeDiscriminator::check_invariants(audit::Level level) const {
  if (level == audit::Level::kOff) return;
  const auto fail = [](const char* what) {
    throw std::logic_error(
        std::string("CascadeDiscriminator invariant violated: ") + what);
  };
  if (filters_.size() > max_filters_) fail("more filters than the FIFO cap");
  std::uint64_t retained = 0;
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    // FIFO fill discipline: only the newest filter may be partial.
    if (i + 1 < filters_.size() && !filters_[i].full()) {
      fail("partial filter that is not the newest");
    }
    retained += filters_[i].inserted();
  }
  if (retained > total_inserted_) {
    fail("retained insertions exceed the running total");
  }
  if (level != audit::Level::kFull) return;
  for (const BloomFilter& f : filters_) {
    if (f.capacity() != filter_capacity_) fail("filter capacity drifted");
    if (f.memory_usage_bytes() == 0) fail("filter lost its bit array");
  }
}

std::size_t CascadeDiscriminator::memory_usage_bytes() const noexcept {
  std::size_t total = 0;
  for (const BloomFilter& f : filters_) total += f.memory_usage_bytes();
  return total;
}

}  // namespace adapt::core
