#include "adapt/aggregation_wrapper.h"

#include <stdexcept>
#include <string>

namespace adapt::core {

AggregatingPolicy::AggregatingPolicy(
    std::unique_ptr<lss::PlacementPolicy> inner,
    const AggregationWrapperConfig& config)
    : inner_(std::move(inner)), config_(config) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("AggregatingPolicy: null inner policy");
  }
  name_ = std::string(inner_->name()) + "+agg";
  // Host = the highest-indexed user group: every scheme here orders its
  // user groups hot-to-cold (or is indifferent).
  std::uint32_t user_groups = 0;
  for (GroupId g = 0; g < inner_->group_count(); ++g) {
    if (inner_->is_user_group(g)) {
      host_group_ = g;
      ++user_groups;
    }
  }
  if (user_groups < 2) {
    throw std::invalid_argument(
        "AggregatingPolicy needs >= 2 user-written groups");
  }
}

void AggregatingPolicy::note_segment_sealed(GroupId group, VTime now) {
  inner_->note_segment_sealed(group, now);
  if (group != host_group_ && inner_->is_user_group(group)) {
    shadow_budget_used_ = 0;
  }
}

lss::AggregationDecision AggregatingPolicy::on_chunk_deadline(
    GroupId group, const lss::LssEngine& engine) {
  if (!inner_->is_user_group(group)) return {};

  // Donor: the hottest non-host user group with durable-pending blocks.
  // When the host's own deadline fires, pull from the first such donor.
  GroupId donor = kInvalidGroup;
  if (group != host_group_) {
    donor = group;
  } else {
    for (GroupId g = 0; g < inner_->group_count(); ++g) {
      if (g == host_group_ || !inner_->is_user_group(g)) continue;
      if (engine.pending_unshadowed_valid(g) > 0) {
        donor = g;
        break;
      }
    }
    if (donor == kInvalidGroup) return {};
  }

  const std::uint32_t donor_pending = engine.pending_unshadowed_valid(donor);
  const std::uint32_t host_pending = engine.pending_blocks(host_group_);
  const bool mergeable =
      donor_pending > 0 && host_pending > 0 &&
      donor_pending + host_pending <= engine.config().chunk_blocks;
  if (!mergeable) return {};

  const std::uint64_t budget =
      static_cast<std::uint64_t>(config_.budget_floor_chunks) *
      config_.chunk_blocks;
  if (shadow_budget_used_ + donor_pending > budget) return {};

  shadow_budget_used_ += donor_pending;
  ++shadow_decisions_;
  return {.donor = donor, .host = host_group_};
}

void AggregatingPolicy::check_invariants(audit::Level level) const {
  if (level == audit::Level::kOff) return;
  const auto fail = [](const char* what) {
    throw std::logic_error(
        std::string("AggregatingPolicy invariant violated: ") + what);
  };
  if (inner_ == nullptr) fail("inner policy vanished");
  if (host_group_ >= inner_->group_count() ||
      !inner_->is_user_group(host_group_)) {
    fail("host group is not a user group of the wrapped policy");
  }
  // The ctor picks the highest-indexed user group; nothing may outrank it.
  for (GroupId g = host_group_ + 1; g < inner_->group_count(); ++g) {
    if (inner_->is_user_group(g)) fail("host group is not the coldest");
  }
  const std::uint64_t budget =
      static_cast<std::uint64_t>(config_.budget_floor_chunks) *
      config_.chunk_blocks;
  if (shadow_budget_used_ > budget) fail("shadow budget overdrawn");
}

std::unique_ptr<AggregatingPolicy> wrap_with_aggregation(
    std::unique_ptr<lss::PlacementPolicy> inner,
    const AggregationWrapperConfig& config) {
  return std::make_unique<AggregatingPolicy>(std::move(inner), config);
}

}  // namespace adapt::core
