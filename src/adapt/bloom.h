// Bloom filter and the cascading discriminator used by Proactive Demotion
// Placement (paper §3.4).
//
// Each GC-rewritten group owns one CascadeDiscriminator. During GC, blocks
// that migrate *back into their own group* are inserted (their observed
// lifetime matches that group's segment lifetime). At user-write time the
// score of a group is the number of filters in its cascade that contain the
// LBA; a high score identifies a long-lived cold block that can skip the
// user-written groups entirely. Filters rotate FIFO to bound memory and
// age out stale evidence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "audit/audit.h"
#include "common/rng.h"
#include "common/types.h"

namespace adapt::core {

class BloomFilter {
 public:
  /// `capacity` expected insertions at roughly 1% false-positive rate.
  explicit BloomFilter(std::uint32_t capacity);

  void insert(Lba lba) noexcept;
  bool maybe_contains(Lba lba) const noexcept;

  std::uint32_t inserted() const noexcept { return inserted_; }
  std::uint32_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return inserted_ >= capacity_; }

  std::size_t memory_usage_bytes() const noexcept {
    return bits_.capacity() * sizeof(std::uint64_t);
  }

 private:
  std::uint64_t bit_count() const noexcept { return bits_.size() * 64; }

  std::uint32_t capacity_;
  std::uint32_t num_hashes_;
  std::uint32_t inserted_ = 0;
  std::vector<std::uint64_t> bits_;
};

class CascadeDiscriminator {
 public:
  /// Keeps at most `max_filters` filters of `filter_capacity` LBAs each,
  /// evicting the oldest filter FIFO-style.
  CascadeDiscriminator(std::uint32_t max_filters,
                       std::uint32_t filter_capacity);

  void insert(Lba lba);

  /// Number of filters that (probably) contain lba — in [0, max_filters].
  std::uint32_t score(Lba lba) const noexcept;

  std::size_t filter_count() const noexcept { return filters_.size(); }
  std::uint64_t total_inserted() const noexcept { return total_inserted_; }
  std::size_t memory_usage_bytes() const noexcept;

  /// Self-audit; throws std::logic_error on violation. kCounters checks the
  /// FIFO rotation discipline in O(filters); kFull additionally verifies
  /// every retained filter's geometry. (Bloom bit contents are
  /// probabilistic and have no independently checkable ground truth.)
  void check_invariants(audit::Level level) const;

 private:
  std::uint32_t max_filters_;
  std::uint32_t filter_capacity_;
  std::uint64_t total_inserted_ = 0;
  std::deque<BloomFilter> filters_;  // back = newest
};

}  // namespace adapt::core
