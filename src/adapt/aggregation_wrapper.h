// Cross-group dynamic aggregation as a reusable wrapper (paper §5: ADAPT
// "can be extended to other placement algorithms").
//
// Wraps any placement policy with at least two user-written groups and
// supplies the engine AggregationHook: when a user group's coalescing
// deadline fires on a partial chunk, pending blocks are shadow-appended
// into the wrapped policy's *coldest* user group (by convention its
// highest-indexed one) instead of being zero-padded — the same
// merge-two-obligations mechanism AdaptPolicy uses, minus ADAPT's
// threshold adaptation and demotion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "audit/audit.h"
#include "lss/engine.h"
#include "lss/placement_policy.h"

namespace adapt::core {

struct AggregationWrapperConfig {
  std::uint32_t chunk_blocks = 16;
  /// Per-open-segment shadow budget floor, in chunks (§3.3 stop rule).
  std::uint32_t budget_floor_chunks = 4;
};

class AggregatingPolicy final : public lss::PlacementPolicy,
                                public lss::AggregationHook {
 public:
  AggregatingPolicy(std::unique_ptr<lss::PlacementPolicy> inner,
                    const AggregationWrapperConfig& config);

  // -- PlacementPolicy (delegates to the wrapped policy) ---------------------
  std::string_view name() const override { return name_; }
  GroupId group_count() const override { return inner_->group_count(); }
  bool is_user_group(GroupId g) const override {
    return inner_->is_user_group(g);
  }
  GroupId place_user_write(Lba lba, VTime now) override {
    return inner_->place_user_write(lba, now);
  }
  GroupId place_gc_rewrite(Lba lba, GroupId victim_group,
                           VTime now) override {
    return inner_->place_gc_rewrite(lba, victim_group, now);
  }
  void note_segment_sealed(GroupId group, VTime now) override;
  void note_segment_reclaimed(GroupId group, VTime create_vtime,
                              VTime now) override {
    inner_->note_segment_reclaimed(group, create_vtime, now);
  }
  std::size_t memory_usage_bytes() const override {
    return inner_->memory_usage_bytes();
  }

  // -- AggregationHook --------------------------------------------------------
  lss::AggregationDecision on_chunk_deadline(
      GroupId group, const lss::LssEngine& engine) override;

  GroupId host_group() const noexcept { return host_group_; }
  std::uint64_t shadow_decisions() const noexcept {
    return shadow_decisions_;
  }

  /// Self-audit; throws std::logic_error on violation. Both tiers cost
  /// O(groups): the wrapper owns no per-block structures, only the
  /// host-group designation and the shadow budget counters.
  void check_invariants(audit::Level level) const;

 private:
  std::unique_ptr<lss::PlacementPolicy> inner_;
  AggregationWrapperConfig config_;
  std::string name_;
  GroupId host_group_ = kInvalidGroup;  ///< coldest user group
  std::uint64_t shadow_budget_used_ = 0;
  std::uint64_t shadow_decisions_ = 0;
};

std::unique_ptr<AggregatingPolicy> wrap_with_aggregation(
    std::unique_ptr<lss::PlacementPolicy> inner,
    const AggregationWrapperConfig& config);

}  // namespace adapt::core
