#include "adapt/threshold_adapter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace adapt::core {
namespace {

GhostConfig ghost_geometry(const AdapterConfig& cfg) {
  GhostConfig g;
  g.segment_blocks = std::max<std::uint32_t>(
      4, static_cast<std::uint32_t>(
             static_cast<double>(cfg.segment_blocks) * cfg.sample_rate));
  const double scaled_capacity = static_cast<double>(cfg.logical_blocks) *
                                 cfg.sample_rate *
                                 (1.0 + cfg.over_provision) *
                                 cfg.user_capacity_fraction;
  g.capacity_segments = std::max<std::uint32_t>(
      8, static_cast<std::uint32_t>(scaled_capacity / g.segment_blocks));
  return g;
}

}  // namespace

ThresholdAdapter::ThresholdAdapter(const AdapterConfig& config)
    : config_(config),
      sampler_((config.sample_rate > 0.0
                    ? config.sample_rate
                    : std::min(1.0, 4096.0 / static_cast<double>(std::max<
                                                std::uint64_t>(
                                        config.logical_blocks, 1))))) {
  config_.sample_rate = sampler_.rate();
  if (config_.num_ghosts < 3) {
    throw std::invalid_argument("ThresholdAdapter needs >= 3 ghosts");
  }
  // Cold-start threshold: a few segments' worth of writes (refined by the
  // first adoption).
  current_threshold_ = static_cast<std::uint64_t>(config_.segment_blocks) * 4;
  const GhostConfig geom = ghost_geometry(config_);
  ghost_capacity_blocks_ = static_cast<std::uint64_t>(geom.segment_blocks) *
                           geom.capacity_segments;
  ghosts_.reserve(config_.num_ghosts);
  for (std::uint32_t i = 0; i < config_.num_ghosts; ++i) {
    ghosts_.emplace_back(geom, 0);
  }
  configure_exponential(config_.segment_blocks);
}

void ThresholdAdapter::configure_exponential(std::uint64_t center) {
  // Thresholds center * 2^i, i = 0 .. K-1 (center = smallest candidate).
  std::uint64_t t = std::max<std::uint64_t>(center, 1);
  for (GhostSet& g : ghosts_) {
    g.set_threshold(t);
    t *= 2;
  }
  phase_ = Phase::kExponential;
  sampled_since_reconfigure_ = 0;
}

void ThresholdAdapter::configure_linear(std::uint64_t lo, std::uint64_t hi) {
  // Linear steps across [lo, hi]; granularity no finer than one segment.
  lo = std::max<std::uint64_t>(lo, 1);
  hi = std::max(hi, lo + 1);
  const auto k = static_cast<std::uint64_t>(ghosts_.size());
  const std::uint64_t step = std::max<std::uint64_t>(
      (hi - lo) / (k - 1), config_.segment_blocks);
  std::uint64_t t = lo;
  for (GhostSet& g : ghosts_) {
    g.set_threshold(t);
    t += step;
  }
  phase_ = Phase::kLinear;
  sampled_since_reconfigure_ = 0;
}

bool ThresholdAdapter::on_user_write(Lba lba, VTime now) {
  ++writes_since_adoption_;
  if (sampler_.sampled(lba)) {
    ++sampled_writes_;
    const auto measured = tracker_.access(lba, now);
    std::uint64_t interval = ReuseDistanceTracker::kFirstAccess;
    if (config_.use_unique_distance) {
      if (measured.unique_distance != ReuseDistanceTracker::kFirstAccess) {
        interval = static_cast<std::uint64_t>(
            static_cast<double>(measured.unique_distance) /
            config_.sample_rate);
      }
    } else {
      interval = measured.raw_interval;
    }
    for (GhostSet& g : ghosts_) g.write(lba, interval);
    ++sampled_since_reconfigure_;
  }

  const auto update_volume = static_cast<std::uint64_t>(
      config_.update_fraction * static_cast<double>(config_.logical_blocks));
  if (writes_since_adoption_ < std::max<std::uint64_t>(update_volume, 1)) {
    return false;
  }
  const std::uint64_t before = current_threshold_;
  maybe_adopt();
  return current_threshold_ != before;
}

void ThresholdAdapter::maybe_adopt() {
  // All ghosts must have an authentic simulation (enough GC churn since the
  // last reconfiguration, and at least a full turnover of the simulated
  // capacity in sampled writes).
  if (sampled_since_reconfigure_ < ghost_capacity_blocks_) return;
  for (const GhostSet& g : ghosts_) {
    if (!g.stable()) return;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < ghosts_.size(); ++i) {
    if (ghosts_[i].discard_ratio() < ghosts_[best].discard_ratio()) {
      best = i;
    }
  }
  // Smooth adoptions: the ghost statistics are sampled and therefore noisy;
  // moving halfway to the winner each time keeps the threshold from
  // thrashing between adjacent candidates.
  current_threshold_ =
      (current_threshold_ + ghosts_[best].threshold() + 1) / 2;
  ++adoptions_;
  writes_since_adoption_ = 0;

  if (best == 0 || best + 1 == ghosts_.size()) {
    // Winner on the window edge: WA is monotone across the window; re-probe
    // with the exponential window anchored below the winner.
    const std::uint64_t anchor = std::max<std::uint64_t>(
        ghosts_[best].threshold() / (best == 0 ? 4 : 1),
        config_.segment_blocks);
    configure_exponential(anchor);
  } else {
    configure_linear(ghosts_[best - 1].threshold(),
                     ghosts_[best + 1].threshold());
  }
}

void ThresholdAdapter::check_invariants(audit::Level level) const {
  if (level == audit::Level::kOff) return;
  const auto fail = [](const char* what) {
    throw std::logic_error(
        std::string("ThresholdAdapter invariant violated: ") + what);
  };
  if (ghosts_.size() != config_.num_ghosts) fail("ghost bank resized");
  for (std::size_t i = 0; i + 1 < ghosts_.size(); ++i) {
    // Both window shapes (exponential and linear) keep candidates sorted.
    if (ghosts_[i].threshold() >= ghosts_[i + 1].threshold()) {
      fail("ghost thresholds not strictly increasing");
    }
  }
  if (current_threshold_ == 0) fail("adopted threshold is zero");
  if (sampled_since_reconfigure_ > sampled_writes_) {
    fail("reconfigure counter ahead of total sampled writes");
  }
  if (phase_ == Phase::kLinear && adoptions_ == 0) {
    fail("linear phase before any adoption");
  }
  if (level != audit::Level::kFull) return;
  for (const GhostSet& g : ghosts_) g.check_invariants(level);
}

std::vector<std::uint64_t> ThresholdAdapter::ghost_thresholds() const {
  std::vector<std::uint64_t> out;
  out.reserve(ghosts_.size());
  for (const GhostSet& g : ghosts_) out.push_back(g.threshold());
  return out;
}

std::size_t ThresholdAdapter::memory_usage_bytes() const noexcept {
  std::size_t total = tracker_.memory_usage_bytes();
  for (const GhostSet& g : ghosts_) total += g.memory_usage_bytes();
  return total;
}

}  // namespace adapt::core
