// ADAPT placement policy (paper §3): six groups — hot/cold user-written
// plus four GC-rewritten — combining:
//   * Density-Aware Threshold Adaptation (§3.2): the hot/cold separation
//     threshold is adopted from ghost-set simulation; until the first
//     adoption a SepBIT-style segment-lifespan EWMA is the cold-start
//     threshold.
//   * Cross-Group Dynamic Aggregation (§3.3): implemented as the engine's
//     AggregationHook — when the hot group's coalescing deadline fires on a
//     partial chunk, pending blocks are shadow-appended into the cold
//     group's open chunk instead of being padded, subject to the
//     aggregation conditions (sparse-group prediction + per-segment shadow
//     budget bounded by the group's average padding volume).
//   * Proactive Demotion Placement (§3.4): per-GC-group cascading Bloom
//     filters record blocks that GC migrated back into their own group;
//     user writes scoring high are placed straight into that GC group.
//
// Every mechanism can be disabled independently for the ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "adapt/bloom.h"
#include "adapt/threshold_adapter.h"
#include "lss/engine.h"
#include "lss/placement_policy.h"

namespace adapt::core {

struct AdaptConfig {
  std::uint64_t logical_blocks = 1u << 20;
  std::uint32_t segment_blocks = 1024;
  std::uint32_t chunk_blocks = 16;
  double over_provision = 0.25;

  // §3.2 — threshold adaptation
  bool enable_threshold_adaptation = true;
  /// <= 0 auto-sizes from the logical capacity (see AdapterConfig).
  double sample_rate = 0.0;
  std::uint32_t num_ghosts = 7;
  double update_fraction = 0.10;

  // §3.3 — cross-group aggregation
  bool enable_cross_group_aggregation = true;
  /// Aggregate only while the hot group's observed unfilled-chunk ratio is
  /// at least this (sparse-access prediction). Merging is profitable at any
  /// density, so the gate only suppresses the machinery when chunks almost
  /// always fill on their own.
  double min_unfilled_ratio = 0.02;

  // §3.4 — proactive demotion
  bool enable_proactive_demotion = true;
  std::uint32_t bloom_filters_per_group = 4;
  std::uint32_t bloom_filter_capacity = 1024;
  /// Minimum re-access score for a demotion. Conservative by default:
  /// mis-demotions cost shadow + padding traffic that the avoided ladder
  /// migrations must pay back.
  std::uint32_t demotion_score_threshold = 3;
};

class AdaptPolicy final : public lss::PlacementPolicy,
                          public lss::AggregationHook {
 public:
  static constexpr GroupId kHotUser = 0;
  static constexpr GroupId kColdUser = 1;
  static constexpr GroupId kFirstGcGroup = 2;
  static constexpr GroupId kGcGroups = 4;

  explicit AdaptPolicy(const AdaptConfig& config);

  // -- PlacementPolicy -------------------------------------------------------
  std::string_view name() const override { return "adapt"; }
  GroupId group_count() const override { return kFirstGcGroup + kGcGroups; }
  bool is_user_group(GroupId g) const override { return g <= kColdUser; }
  GroupId place_user_write(Lba lba, VTime now) override;
  GroupId place_gc_rewrite(Lba lba, GroupId victim_group, VTime now) override;
  void note_segment_sealed(GroupId group, VTime now) override;
  void note_segment_reclaimed(GroupId group, VTime create_vtime,
                              VTime now) override;
  std::size_t memory_usage_bytes() const override;

  // -- AggregationHook -------------------------------------------------------
  lss::AggregationDecision on_chunk_deadline(
      GroupId group, const lss::LssEngine& engine) override;

  // -- tracing ---------------------------------------------------------------
  /// Attaches a trace sink for threshold re-adaptation events (nullptr
  /// detaches). Emitted events carry the adopted threshold and total
  /// adoptions; their clock is vtime only (the policy never sees the wall
  /// clock, so wall_us is 0).
  void set_trace_sink(lss::TraceSink* sink) noexcept { trace_ = sink; }

  // -- introspection ---------------------------------------------------------
  const AdaptConfig& config() const noexcept { return config_; }
  double threshold() const noexcept;
  const ThresholdAdapter* adapter() const noexcept { return adapter_.get(); }
  std::uint64_t demotions() const noexcept { return demotions_; }
  std::uint64_t shadow_decisions() const noexcept { return shadow_decisions_; }
  std::uint64_t pad_decisions() const noexcept { return pad_decisions_; }

 private:
  static constexpr VTime kNeverWritten = ~VTime{0};

  AdaptConfig config_;
  lss::TraceSink* trace_ = nullptr;
  std::unique_ptr<ThresholdAdapter> adapter_;
  std::vector<CascadeDiscriminator> discriminators_;  // one per GC group
  std::vector<VTime> last_write_;
  /// Cold-start threshold: EWMA over hot-group segment lifespans.
  double fallback_threshold_;
  /// Shadow blocks spent on the current open hot segment (§3.3 stop rule).
  std::uint64_t shadow_budget_used_ = 0;

  std::uint64_t demotions_ = 0;
  std::uint64_t shadow_decisions_ = 0;
  std::uint64_t pad_decisions_ = 0;
};

/// Convenience factory mirroring make_baseline_policy.
std::unique_ptr<AdaptPolicy> make_adapt_policy(const AdaptConfig& config);

}  // namespace adapt::core
