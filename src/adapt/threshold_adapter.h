// Density-Aware Threshold Adaptation (paper §3.2).
//
// Sampled user writes feed a reuse-distance tracker whose scaled intervals
// drive a bank of ghost sets, each simulating the user-written groups under
// a different hot/cold threshold. Thresholds start on an exponentially
// growing window (segment_size * 2^i); after the first adoption the window
// switches to linear steps (granularity = one segment) spanning the
// neighbours of the previous winner, and falls back to the exponential
// window when the winner sits on the window edge (monotone WA). A new
// configuration is adopted when the write volume since the last adoption
// exceeds 10% of capacity and the ghosts are stable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "adapt/ghost_set.h"
#include "adapt/reuse_distance.h"
#include "audit/audit.h"
#include "common/types.h"

namespace adapt::core {

struct AdapterConfig {
  /// Spatial sampling rate; <= 0 auto-sizes so that roughly 4096 blocks of
  /// the logical space are sampled (the paper uses 0.001 on multi-TB
  /// volumes; small simulated volumes need a proportionally higher rate to
  /// keep the ghost statistics meaningful).
  double sample_rate = 0.0;
  std::uint32_t num_ghosts = 7;
  std::uint32_t segment_blocks = 1024;  ///< real segment size
  std::uint64_t logical_blocks = 1u << 20;
  double over_provision = 0.25;
  /// Adoption cadence: paper uses 10% of storage capacity.
  double update_fraction = 0.10;
  /// Share of (scaled) capacity budgeted to the simulated user groups.
  /// The real system's GC-rewritten groups hold most of the capacity
  /// (paper Observation 4), so the user groups see much higher GC pressure
  /// than a whole-device simulation would suggest.
  double user_capacity_fraction = 0.20;
  /// Interval metric fed to the ghosts: raw write-volume intervals match
  /// the unit the placement threshold is applied in; unique reuse
  /// distances (scaled by 1/rate) follow the paper's distance-tree text
  /// but live in a compressed unit space.
  bool use_unique_distance = false;
};

class ThresholdAdapter {
 public:
  enum class Phase { kExponential, kLinear };

  explicit ThresholdAdapter(const AdapterConfig& config);

  /// Feeds one user write. Returns true if the adopted threshold changed.
  bool on_user_write(Lba lba, VTime now);

  /// Currently adopted hot/cold threshold, in (estimated) blocks of access
  /// interval.
  std::uint64_t threshold() const noexcept { return current_threshold_; }

  /// True once at least one adoption happened (before that, callers should
  /// fall back to their cold-start heuristic).
  bool adopted() const noexcept { return adoptions_ > 0; }
  std::uint64_t adoptions() const noexcept { return adoptions_; }

  Phase phase() const noexcept { return phase_; }
  std::vector<std::uint64_t> ghost_thresholds() const;
  const std::vector<GhostSet>& ghosts() const noexcept { return ghosts_; }
  std::uint64_t sampled_writes() const noexcept { return sampled_writes_; }

  std::size_t memory_usage_bytes() const noexcept;

  /// Self-audit; throws std::logic_error on violation. kCounters checks
  /// the ghost-bank shape and sampling counters in O(ghosts); kFull also
  /// runs every ghost's structural audit.
  void check_invariants(audit::Level level) const;

 private:
  void configure_exponential(std::uint64_t center);
  void configure_linear(std::uint64_t lo, std::uint64_t hi);
  void maybe_adopt();

  AdapterConfig config_;
  SpatialSampler sampler_;
  ReuseDistanceTracker tracker_;
  std::vector<GhostSet> ghosts_;
  Phase phase_ = Phase::kExponential;
  std::uint64_t current_threshold_;
  std::uint64_t writes_since_adoption_ = 0;
  std::uint64_t sampled_writes_ = 0;
  std::uint64_t sampled_since_reconfigure_ = 0;
  std::uint64_t ghost_capacity_blocks_ = 0;
  std::uint64_t adoptions_ = 0;
};

}  // namespace adapt::core
