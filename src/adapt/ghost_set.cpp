#include "adapt/ghost_set.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace adapt::core {

GhostSet::GhostSet(const GhostConfig& config, std::uint64_t threshold)
    : config_(config), threshold_(threshold) {
  if (config_.segment_blocks == 0 || config_.capacity_segments < 4) {
    throw std::invalid_argument("GhostSet: geometry too small");
  }
}

void GhostSet::write(Lba lba, std::uint64_t interval) {
  ++written_;
  // Invalidate the previous ghost copy, if tracked.
  const auto it = map_.find(lba);
  if (it != map_.end()) {
    const auto seg_it = segments_.find(it->second.segment_key);
    if (seg_it != segments_.end() &&
        seg_it->second.valid[it->second.slot]) {
      seg_it->second.valid[it->second.slot] = false;
      --seg_it->second.valid_count;
    }
    map_.erase(it);
  }
  append(lba, /*hot=*/interval < threshold_);
  maybe_gc();
}

void GhostSet::append(Lba lba, bool hot) {
  std::uint64_t& open = open_key_[hot ? 0 : 1];
  auto seg_it = segments_.find(open);
  if (seg_it == segments_.end()) {
    open = next_segment_key_++;
    GhostSegment seg;
    seg.lbas.reserve(config_.segment_blocks);
    seg_it = segments_.emplace(open, std::move(seg)).first;
  }
  GhostSegment& seg = seg_it->second;
  const auto slot = static_cast<std::uint32_t>(seg.lbas.size());
  seg.lbas.push_back(lba);
  seg.valid.push_back(true);
  ++seg.valid_count;
  map_[lba] = Location{open, slot};
  if (seg.lbas.size() == config_.segment_blocks) {
    seg.sealed = true;
    open = ~0ull;  // force a new open segment next time
  }
}

void GhostSet::maybe_gc() {
  while (segments_.size() > config_.capacity_segments) {
    // Greedy: discard the sealed segment with the fewest valid blocks.
    std::uint64_t victim_key = ~0ull;
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (const auto& [key, seg] : segments_) {
      if (!seg.sealed) continue;
      if (seg.valid_count < best_valid) {
        best_valid = seg.valid_count;
        victim_key = key;
      }
    }
    if (victim_key == ~0ull) return;  // nothing sealed yet
    GhostSegment& victim = segments_[victim_key];
    // Valid blocks leave the (simulated) user groups: in the real system GC
    // would move them to GC-rewritten groups. Discard and count.
    discarded_ += victim.valid_count;
    for (std::uint32_t slot = 0; slot < victim.lbas.size(); ++slot) {
      if (victim.valid[slot]) map_.erase(victim.lbas[slot]);
    }
    segments_.erase(victim_key);
    ++gc_runs_;
  }
}

void GhostSet::check_invariants(audit::Level level) const {
  if (level == audit::Level::kOff) return;
  const auto fail = [](const char* what) {
    throw std::logic_error(std::string("GhostSet invariant violated: ") +
                           what);
  };
  // Counters tier: the two open segments (if any) must be live, unsealed
  // and strictly below the seal size.
  for (const std::uint64_t open : open_key_) {
    if (open == ~0ull) continue;
    const auto it = segments_.find(open);
    if (it == segments_.end()) fail("open key points at no segment");
    if (it->second.sealed) fail("open segment is sealed");
    if (it->second.lbas.size() >= config_.segment_blocks) {
      fail("open segment at or past seal size");
    }
  }
  if (level != audit::Level::kFull) return;

  // Full tier: re-derive per-segment valid counts and walk the map both
  // directions.
  std::size_t live_blocks = 0;
  for (const auto& [key, seg] : segments_) {
    if (seg.valid.size() != seg.lbas.size()) fail("bitmap/slot size skew");
    if (!seg.sealed && key != open_key_[0] && key != open_key_[1]) {
      fail("unsealed segment that is not open");
    }
    if (seg.sealed && seg.lbas.size() != config_.segment_blocks) {
      fail("sealed segment not full");
    }
    std::uint32_t recount = 0;
    for (std::uint32_t slot = 0; slot < seg.lbas.size(); ++slot) {
      if (!seg.valid[slot]) continue;
      ++recount;
      const auto it = map_.find(seg.lbas[slot]);
      if (it == map_.end() || it->second.segment_key != key ||
          it->second.slot != slot) {
        fail("valid slot not indexed by the map");
      }
    }
    if (recount != seg.valid_count) fail("valid_count drifted from bitmap");
    live_blocks += recount;
  }
  if (live_blocks != map_.size()) fail("map size != live block count");
}

std::size_t GhostSet::memory_usage_bytes() const noexcept {
  // Deterministic model of both hash maps (~20 B per simulated block, paper
  // §4.4): per tracked segment, the LBA log, the validity bitmap (1 bit per
  // slot), the 8 B key and the hash-node overhead; per mapped LBA, key +
  // Location + node overhead. Modelled constants rather than sizeof() of
  // implementation types, so tests can pin exact byte counts.
  constexpr std::size_t kHashNodeBytes = 24;  // next ptr + cached hash
  constexpr std::size_t kLocationBytes = 16;  // segment_key + padded slot
  std::size_t total = 0;
  for (const auto& [key, seg] : segments_) {
    total += seg.lbas.size() * sizeof(Lba)  // LBA log
             + (seg.lbas.size() + 7) / 8    // valid bitmap
             + sizeof(std::uint64_t)        // segment key
             + kHashNodeBytes;
  }
  total += map_.size() * (sizeof(Lba) + kLocationBytes + kHashNodeBytes);
  return total;
}

}  // namespace adapt::core
