#include "adapt/reuse_distance.h"

#include <algorithm>
#include <cmath>

namespace adapt::core {

SpatialSampler::SpatialSampler(double rate, std::uint64_t salt)
    : rate_(std::clamp(rate, 0.0, 1.0)), salt_(salt) {
  if (rate_ >= 1.0) {
    cutoff_ = std::numeric_limits<std::uint64_t>::max();
  } else {
    cutoff_ = static_cast<std::uint64_t>(
        rate_ * std::pow(2.0, 64.0));
  }
}

ReuseDistanceTracker::Interval ReuseDistanceTracker::access(
    Lba lba, std::uint64_t now) {
  Interval interval;
  const auto it = last_seen_.find(lba);
  if (it != last_seen_.end()) {
    interval.unique_distance =
        static_cast<std::uint64_t>(marks_.suffix_sum_after(it->second.seq));
    interval.raw_interval = now - it->second.time;
    marks_.add(it->second.seq, -1);
    it->second = LastSeen{next_seq_, now};
  } else {
    last_seen_.emplace(lba, LastSeen{next_seq_, now});
  }
  marks_.add(next_seq_, +1);
  ++next_seq_;
  return interval;
}

std::size_t ReuseDistanceTracker::memory_usage_bytes() const noexcept {
  // Hash-map node (~36B with bucket overhead) + 8B tree slot per access
  // position retained.
  return last_seen_.size() * 36 + marks_.size() * sizeof(std::int64_t);
}

}  // namespace adapt::core
