// Differential oracles for the LSS engine and the FTL.
//
// Each oracle is a deliberately naive reference model: it mirrors the same
// operation stream the production structure receives, keeps the simplest
// possible state (flat hash maps, plain counters), and then cross-checks the
// production structure's *observable* state against its own. The engine's
// incrementally maintained indexes, packed bitmaps, and running counters
// must all agree with a model that has none of those optimisations — a
// silent accounting drift shows up as a verify() failure instead of a
// plausible-but-wrong WA number.
//
// OracleModel checks, against a live LssEngine:
//   * mapping agreement — an LBA is mapped iff the oracle wrote it, and the
//     engine's segment slot bookkeeping agrees with locate();
//   * per-segment valid-count ledger — each segment's valid_count equals
//     the number of live primaries + live shadows the oracle can account
//     for, and no two live copies share a slot;
//   * shadow/lazy-append pairing — every live shadow's original is still
//     pending in its group's open chunk (a shadow surviving its original's
//     persist is the §3.3 bug class) and is hosted by a different group;
//   * the write-accounting identity
//       user + gc + shadow + padding == chunk_blocks * chunks_flushed
//                                       + rmw_blocks + pending,
//     i.e. every block the metrics claim was appended either reached the
//     media or is still pending in an open chunk.
//
// FtlOracle mirrors host_write/trim against a flat lpn->mapped set and
// checks L2P agreement plus the host/trim page accounting.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.h"
#include "flash/ftl.h"
#include "lss/engine.h"

namespace adapt::audit {

class OracleModel {
 public:
  explicit OracleModel(const lss::LssConfig& config) : config_(config) {}

  /// Mirrors LssEngine::write(lba, blocks, ...).
  void on_write(Lba lba, std::uint32_t blocks);

  std::uint64_t user_blocks() const noexcept { return user_blocks_; }
  std::uint64_t live_lbas() const noexcept { return version_.size(); }

  /// O(groups) cross-check of the written LBA's mapping, its shadow pairing
  /// rules, and the accounting identity. Cheap enough to call per-op.
  void verify_op(const lss::LssEngine& engine, Lba lba) const;

  /// Full O(logical + segments) differential audit.
  void verify_full(const lss::LssEngine& engine) const;

  /// End-of-run checks after LssEngine::flush_all(): nothing pending,
  /// no live shadows, identity still holds.
  void verify_drained(const lss::LssEngine& engine) const;

 private:
  void verify_lba(const lss::LssEngine& engine, Lba lba) const;
  void verify_identity(const lss::LssEngine& engine) const;

  lss::LssConfig config_;
  /// Latest version tag per live LBA (1-based; absent = never written).
  std::unordered_map<Lba, std::uint64_t> version_;
  std::uint64_t next_version_ = 1;
  std::uint64_t user_blocks_ = 0;
};

class FtlOracle {
 public:
  explicit FtlOracle(const flash::FtlConfig& config) : config_(config) {}

  /// Mirrors Ftl::host_write(lpn, pages, stream).
  void on_host_write(std::uint64_t lpn, std::uint32_t pages);

  /// Mirrors Ftl::trim(lpn, pages).
  void on_trim(std::uint64_t lpn, std::uint32_t pages);

  std::uint64_t host_pages() const noexcept { return host_pages_; }

  /// Full differential audit against the FTL's observable state.
  void verify(const flash::Ftl& ftl) const;

 private:
  flash::FtlConfig config_;
  std::unordered_map<std::uint64_t, std::uint64_t> version_;
  std::uint64_t next_version_ = 1;
  std::uint64_t host_pages_ = 0;
  std::uint64_t trimmed_pages_ = 0;
};

}  // namespace adapt::audit
