#include "audit/oracle.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace adapt::audit {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::logic_error("oracle: " + what);
}

}  // namespace

void OracleModel::on_write(Lba lba, std::uint32_t blocks) {
  if (lba + blocks > config_.logical_blocks) {
    fail("mirrored write beyond logical capacity");
  }
  for (std::uint32_t i = 0; i < blocks; ++i) {
    version_[lba + i] = next_version_++;
    ++user_blocks_;
  }
}

void OracleModel::verify_lba(const lss::LssEngine& engine, Lba lba) const {
  const bool oracle_live = version_.contains(lba);
  const lss::BlockLocation loc = engine.locate(lba);
  const bool engine_live = loc != lss::kNowhere;
  if (oracle_live != engine_live) {
    fail("mapping disagreement at lba " + std::to_string(lba) +
         " (oracle=" + (oracle_live ? "live" : "dead") +
         ", engine=" + (engine_live ? "live" : "dead") + ")");
  }
  if (engine_live) {
    const lss::Segment& seg = engine.segments()[loc.segment];
    if (seg.free) fail("primary mapped into a free segment");
    if (loc.slot >= seg.write_ptr) fail("primary mapped past write_ptr");
    if (engine.slot_lba(loc) != lba) fail("slot lba mismatch at primary");
    if (!seg.slot_valid.test(loc.slot)) fail("primary slot marked dead");
  }
  if (engine.has_live_shadow(lba)) {
    if (!oracle_live) fail("shadow for an lba the oracle never wrote");
    const lss::BlockLocation sh = engine.shadow_location(lba);
    if (sh == lss::kNowhere) fail("has_live_shadow without a location");
    const lss::Segment& sseg = engine.segments()[sh.segment];
    if (engine.slot_lba(sh) != lba || !sseg.slot_valid.test(sh.slot)) {
      fail("shadow slot bookkeeping mismatch");
    }
    if (sh.segment == loc.segment) {
      fail("shadow hosted in its original's segment");
    }
    if (sseg.group == engine.segments()[loc.segment].group) {
      fail("shadow hosted by its original's own group");
    }
    // The §3.3 pairing rule: a shadow exists only while its lazy-append
    // original is still pending; once the original's chunk persists the
    // shadow must have been expired.
    if (!engine.is_pending(lba)) {
      fail("live shadow for an already-persisted original at lba " +
           std::to_string(lba));
    }
  }
}

void OracleModel::verify_identity(const lss::LssEngine& engine) const {
  const lss::LssMetrics& m = engine.metrics();
  if (m.user_blocks != user_blocks_) {
    fail("engine user_blocks " + std::to_string(m.user_blocks) +
         " != oracle " + std::to_string(user_blocks_));
  }
  if (engine.vtime() != user_blocks_) {
    fail("vtime desynchronised from user block count");
  }
  std::uint64_t pending = 0;
  for (GroupId g = 0; g < engine.group_count(); ++g) {
    pending += engine.pending_blocks(g);
  }
  const std::uint64_t appended =
      m.user_blocks + m.gc_blocks + m.shadow_blocks + m.padding_blocks;
  const std::uint64_t media =
      engine.chunks_flushed() * engine.config().chunk_blocks + m.rmw_blocks;
  if (appended != media + pending) {
    fail("accounting identity broken: appended " + std::to_string(appended) +
         " != media " + std::to_string(media) + " + pending " +
         std::to_string(pending));
  }
}

void OracleModel::verify_op(const lss::LssEngine& engine, Lba lba) const {
  verify_lba(engine, lba);
  verify_identity(engine);
}

void OracleModel::verify_full(const lss::LssEngine& engine) const {
  const auto segments = engine.segments();
  const std::uint64_t slots_per_segment = engine.config().segment_blocks();
  // Independent per-segment ledger: tally every live copy (primary or
  // shadow) the oracle can account for, and require each slot be claimed at
  // most once.
  std::vector<std::uint32_t> ledger(segments.size(), 0);
  std::vector<char> claimed(segments.size() * slots_per_segment, 0);
  std::uint64_t shadows_seen = 0;
  const auto claim = [&](lss::BlockLocation loc, const char* what) {
    const std::uint64_t key =
        static_cast<std::uint64_t>(loc.segment) * slots_per_segment +
        loc.slot;
    if (claimed[key] != 0) {
      fail(std::string("two live copies share a slot (second is a ") + what +
           ")");
    }
    claimed[key] = 1;
    ++ledger[loc.segment];
  };

  for (Lba lba = 0; lba < config_.logical_blocks; ++lba) {
    verify_lba(engine, lba);
    if (engine.locate(lba) != lss::kNowhere) {
      claim(engine.locate(lba), "primary");
    }
    if (engine.has_live_shadow(lba)) {
      claim(engine.shadow_location(lba), "shadow");
      ++shadows_seen;
    }
  }
  if (shadows_seen != engine.live_shadow_count()) {
    fail("shadow map holds entries for lbas outside the logical space");
  }
  for (std::size_t s = 0; s < segments.size(); ++s) {
    if (segments[s].free) {
      if (segments[s].valid_count != 0) fail("free segment claims validity");
      continue;
    }
    if (ledger[s] != segments[s].valid_count) {
      fail("segment " + std::to_string(s) + " valid_count " +
           std::to_string(segments[s].valid_count) +
           " != oracle ledger " + std::to_string(ledger[s]));
    }
  }
  verify_identity(engine);
}

void OracleModel::verify_drained(const lss::LssEngine& engine) const {
  for (GroupId g = 0; g < engine.group_count(); ++g) {
    if (engine.pending_blocks(g) != 0) {
      fail("pending blocks survived flush_all in group " + std::to_string(g));
    }
  }
  if (engine.live_shadow_count() != 0) {
    fail("live shadows survived flush_all");
  }
  verify_full(engine);
}

void FtlOracle::on_host_write(std::uint64_t lpn, std::uint32_t pages) {
  if (lpn + pages > config_.logical_pages) {
    fail("mirrored host write beyond logical space");
  }
  for (std::uint32_t i = 0; i < pages; ++i) {
    version_[lpn + i] = next_version_++;
    ++host_pages_;
  }
}

void FtlOracle::on_trim(std::uint64_t lpn, std::uint32_t pages) {
  if (lpn + pages > config_.logical_pages) {
    fail("mirrored trim beyond logical space");
  }
  for (std::uint32_t i = 0; i < pages; ++i) {
    if (version_.erase(lpn + i) != 0) ++trimmed_pages_;
  }
}

void FtlOracle::verify(const flash::Ftl& ftl) const {
  for (std::uint64_t lpn = 0; lpn < config_.logical_pages; ++lpn) {
    const bool oracle_live = version_.contains(lpn);
    if (ftl.is_mapped(lpn) != oracle_live) {
      fail("L2P disagreement at lpn " + std::to_string(lpn) +
           " (oracle=" + (oracle_live ? "live" : "dead") + ")");
    }
  }
  const flash::FtlStats& s = ftl.stats();
  if (s.host_pages != host_pages_) {
    fail("ftl host_pages " + std::to_string(s.host_pages) + " != oracle " +
         std::to_string(host_pages_));
  }
  if (s.trimmed_pages != trimmed_pages_) {
    fail("ftl trimmed_pages " + std::to_string(s.trimmed_pages) +
         " != oracle " + std::to_string(trimmed_pages_));
  }
}

}  // namespace adapt::audit
