// Tiered invariant-audit levels shared by the LSS engine, the FTL, and the
// ADAPT components.
//
//   * kOff      — no checking (production default);
//   * kCounters — O(1)/O(groups) cross-checks of incrementally maintained
//                 counters against each other, cheap enough to run per-op in
//                 debug builds;
//   * kFull     — O(n) structural audits (bitmap popcounts vs valid
//                 counters, mapping walks, victim-index membership), for
//                 tests and on-demand diagnosis.
//
// The environment variable ADAPT_AUDIT ("off" | "counters" | "full")
// overrides whatever level the code configured, so a failing run can be
// re-executed under full auditing without a rebuild.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace adapt::audit {

enum class Level : std::uint8_t { kOff = 0, kCounters = 1, kFull = 2 };

constexpr bool at_least(Level level, Level floor) noexcept {
  return static_cast<std::uint8_t>(level) >= static_cast<std::uint8_t>(floor);
}

constexpr std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::kOff:
      return "off";
    case Level::kCounters:
      return "counters";
    case Level::kFull:
      return "full";
  }
  return "off";
}

inline std::optional<Level> parse_level(std::string_view text) noexcept {
  if (text == "off" || text == "0") return Level::kOff;
  if (text == "counters" || text == "1") return Level::kCounters;
  if (text == "full" || text == "2") return Level::kFull;
  return std::nullopt;
}

/// Name of the override environment variable.
inline constexpr const char* kEnvVar = "ADAPT_AUDIT";

/// Resolves the effective audit level: ADAPT_AUDIT when set (throws
/// std::invalid_argument on an unparseable value — a misspelled audit
/// request must not silently disable auditing), `configured` otherwise.
inline Level level_from_env(Level configured) {
  const char* const env = std::getenv(kEnvVar);
  if (env == nullptr || *env == '\0') return configured;
  const std::optional<Level> parsed = parse_level(env);
  if (!parsed.has_value()) {
    throw std::invalid_argument(std::string("bad ") + kEnvVar + " value: '" +
                                env + "' (want off|counters|full)");
  }
  return *parsed;
}

}  // namespace adapt::audit
