// FlatShadowMap: open-addressing hash table for the BlockMap shadow index.
//
// The shadow map is small (bounded by the pending blocks across open
// chunks) but sits on the per-write hot path: every user write probes it in
// invalidate(), every flushed slot probes it in the shadow-expiry scan, and
// GC probes it per migrated block. std::unordered_map pays a prime-modulus
// division plus a node pointer chase per probe; this table is a power-of-two
// robin-hood array with backward-shift deletion, so a probe is one mix, one
// mask, and (at the load factors we run) almost always one contiguous slot
// read. No tombstones: erase backshifts the displaced run, so the layout
// (and with it the iteration order) is a pure function of the insert/erase
// sequence — no pointer-keyed or allocation-order state — which keeps
// iteration deterministic for the pinned fixed-seed regressions.
//
// Empty slots are keyed kInvalidLba, which no real logical block can use
// (LBAs are bounded by logical_blocks), so occupancy needs no separate
// metadata. Each slot carries its key's mixed hash: probe-distance
// comparisons (the robin-hood displacement rule and the early-exit on
// lookup misses) then cost one subtract-and-mask instead of re-mixing the
// occupant's key on every probe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"
#include "lss/segment.h"

namespace adapt::lss {

class FlatShadowMap {
 public:
  FlatShadowMap() = default;

  /// Grows capacity so `expected` entries fit without rehashing. Existing
  /// entries are preserved. Sizing hint: shadows exist only while their
  /// lazy-append originals are pending, so group_count * chunk_blocks
  /// bounds the live set and makes steady state rehash-free.
  void reserve(std::size_t expected) {
    const std::size_t needed = capacity_for(expected);
    if (needed > slots_.size()) rehash(needed);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  ADAPT_HOT bool contains(Lba lba) const noexcept {
    return find_index(lba) != kNpos;
  }

  /// Where lba's shadow copy sits, or kNowhere when it has none.
  ADAPT_HOT BlockLocation find(Lba lba) const noexcept {
    const std::size_t i = find_index(lba);
    return i == kNpos ? kNowhere : slots_[i].loc;
  }

  /// Hot-path contract: steady state never grows (reserve() pre-sizes to
  /// the live-shadow bound), so the rehash slow path below stays outlined
  /// and this body allocates nothing once warmed.
  ADAPT_HOT void insert_or_assign(Lba lba, BlockLocation loc) {
    if (lba == kInvalidLba) {
      throw std::invalid_argument("FlatShadowMap: reserved key");
    }
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    place(Slot{lba, mix(lba), loc});
  }

  /// Removes lba's entry via backward-shift deletion; returns whether an
  /// entry existed.
  ADAPT_HOT bool erase(Lba lba) noexcept {
    std::size_t i = find_index(lba);
    if (i == kNpos) return false;
    // Shift the displaced run back one slot until a hole or a home slot.
    std::size_t j = (i + 1) & mask_;
    while (slots_[j].key != kInvalidLba && probe_distance(j) > 0) {
      slots_[i] = slots_[j];
      i = j;
      j = (j + 1) & mask_;
    }
    slots_[i].key = kInvalidLba;
    --size_;
    return true;
  }

  /// Deterministic iteration in slot order, yielding (lba, location) pairs
  /// like the std::unordered_map interface this table replaced.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = std::pair<Lba, BlockLocation>;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = value_type;

    const_iterator(const FlatShadowMap* map, std::size_t index) noexcept
        : map_(map), index_(index) {
      skip_empty();
    }

    std::pair<Lba, BlockLocation> operator*() const noexcept {
      return {map_->slots_[index_].key, map_->slots_[index_].loc};
    }

    const_iterator& operator++() noexcept {
      ++index_;
      skip_empty();
      return *this;
    }

    friend bool operator==(const const_iterator& a,
                           const const_iterator& b) noexcept {
      return a.index_ == b.index_;
    }

   private:
    void skip_empty() noexcept {
      while (index_ < map_->slots_.size() &&
             map_->slots_[index_].key == kInvalidLba) {
        ++index_;
      }
    }

    const FlatShadowMap* map_;
    std::size_t index_;
  };

  const_iterator begin() const noexcept { return {this, 0}; }
  const_iterator end() const noexcept { return {this, slots_.size()}; }

  /// Counters-tier self-audit: the occupancy count must match size_ and
  /// every stored key must be reachable by its own probe sequence (the
  /// robin-hood layout invariant). Throws std::logic_error on violation.
  void check_counters() const {
    std::size_t occupied = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].key == kInvalidLba) continue;
      ++occupied;
      if (find_index(slots_[i].key) != i) {
        throw std::logic_error("FlatShadowMap: unreachable stored key");
      }
    }
    if (occupied != size_) {
      throw std::logic_error("FlatShadowMap: size out of sync");
    }
  }

 private:
  struct Slot {
    Lba key = kInvalidLba;
    std::uint64_t hash = 0;  ///< mix(key), cached so probes never re-mix
    BlockLocation loc;
  };

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  /// Fibonacci (multiplicative) hash: one multiply by 2^64/phi, with the
  /// well-mixed high bits selected by `home()`'s down-shift. Sequential or
  /// strided LBAs land uniformly; cheaper than a full avalanche finalizer
  /// on a path probed several times per write.
  static std::uint64_t mix(Lba lba) noexcept {
    return lba * 0x9e3779b97f4a7c15ULL;
  }

  /// Smallest power-of-two capacity keeping `expected` under 7/8 load.
  static std::size_t capacity_for(std::size_t expected) noexcept {
    std::size_t cap = kMinCapacity;
    while (expected * 8 > cap * 7) cap *= 2;
    return cap;
  }

  /// Home slot for a mixed hash: the high log2(capacity) bits.
  std::size_t home(std::uint64_t hash) const noexcept {
    return static_cast<std::size_t>(hash >> shift_);
  }

  /// How far slot `i`'s occupant sits from its home slot.
  std::size_t probe_distance(std::size_t i) const noexcept {
    return (i - home(slots_[i].hash)) & mask_;
  }

  /// Index of lba's slot, or kNpos. The robin-hood invariant (stored
  /// distances never decrease along a probe run) lets the scan stop as
  /// soon as it passes a slot closer to its home than we are to ours.
  ADAPT_HOT std::size_t find_index(Lba lba) const noexcept {
    if (size_ == 0) return kNpos;
    std::size_t i = home(mix(lba));
    for (std::size_t d = 0;; ++d, i = (i + 1) & mask_) {
      const Slot& s = slots_[i];
      if (s.key == lba) return i;
      if (s.key == kInvalidLba || probe_distance(i) < d) return kNpos;
    }
  }

  /// Robin-hood insert of `incoming` (capacity already ensured). Assigns in
  /// place when the key exists: the invariant guarantees the existing entry
  /// is met before any swap can trigger.
  ADAPT_HOT void place(Slot incoming) {
    std::size_t i = home(incoming.hash);
    for (std::size_t d = 0;; ++d, i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == kInvalidLba) {
        s = incoming;
        ++size_;
        return;
      }
      if (s.key == incoming.key) {
        s.loc = incoming.loc;
        return;
      }
      const std::size_t held = probe_distance(i);
      if (held < d) {
        std::swap(s, incoming);
        d = held;
      }
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    mask_ = new_capacity - 1;
    shift_ = 64;
    for (std::size_t c = new_capacity; c > 1; c /= 2) --shift_;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.key != kInvalidLba) place(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;  ///< 64 - log2(capacity); home() down-shift
  std::size_t size_ = 0;
};

}  // namespace adapt::lss
