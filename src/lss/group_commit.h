// Lock-free MPSC group-commit front-end over LBA-sharded LssEngines.
//
// This is the live concurrent write path that replaces the prototype's
// big-lock GuardedEngine: client threads no longer serialize per-op on one
// mutex; they link write tickets onto a per-shard lock-free intake list and
// one of them — the *group leader* — applies the whole linked batch against
// the shard's engine in a single critical section, then publishes per-op
// completion. The shape follows the RocksDB/FrozenHot LoggingServer writer
// group (SNIPPETS.md #2/#3):
//
//   1. link():   CAS-push the ticket onto the shard's newest_ list head.
//                The thread that installs the head onto an EMPTY list is
//                the leader; everyone else is a follower.
//   2. capture_group(): the leader snapshots newest_ and back-fills the
//                link_newer pointers (the CAS push only writes link_older),
//                fixing the batch as [leader .. last].
//   3. apply:    the leader takes the shard mutex once and applies every
//                ticket in link order — oldest first, so the linearized
//                order is exactly arrival order — against the LssEngine.
//   4. exit_group(): CAS newest_ from `last` back to nullptr; if new
//                tickets arrived meanwhile, the oldest of them is promoted
//                to leader of the next batch (its link_older is severed
//                first so a later walk never crosses into the dying batch).
//   5. complete(): the leader marks each follower kCompleted — or
//                kAborted from the first not-applied ticket on, when the
//                engine threw mid-batch — *after* reading its link_newer:
//                tickets live on follower stacks and may be destroyed the
//                instant they complete. Before publishing, the leader
//                submits the batch's drained flush records to the device
//                model (OUTSIDE the shard lock) and stamps the modeled
//                durable time into every ticket, so each op — leader and
//                followers alike — waits out its own share of the
//                coalesced flush on its own thread (see set_device_model):
//                a batch never serializes its followers behind a modeled
//                sleep, and no op's latency silently excludes its device
//                time.
//
// Determinism contract (the oracle): a shard's final state is a pure
// function of its (op, lba, blocks, ts) sequence. The leader records every
// applied op — user writes, GC steps that did work, and the final drain —
// in apply order while holding the shard mutex. Replaying that recorded log
// through a fresh serial engine built from the same factory and seed must
// reproduce the concurrent shard's final state and deterministic metrics
// bit-exactly; tests/concurrent_commit_test.cpp proves it. Thread
// scheduling may change *which* order gets recorded, never whether the
// recorded order explains the result.
//
// Concurrency: the intake list is the only lock-free piece; everything
// behind it is the ordinary single-threaded engine guarded by the shard
// mutex (held only by the current leader, so in steady state it is
// uncontended — the "lock" the clients used to convoy on is now taken once
// per batch, not once per op).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/annotations.h"
#include "common/sync.h"
#include "common/types.h"
#include "lss/engine.h"
#include "lss/op_timeline.h"
#include "lss/sharded_engine.h"

namespace adapt::lss {

/// Ticket lifecycle: linked (kInit) -> optionally parked by its owner
/// (kLockedWaiting, the RocksDB WriteThread "locked waiting" state) -> a
/// terminal state published by the current leader: promoted to lead the
/// next batch (kLeader), applied (kCompleted), or not applied because the
/// leader's engine apply threw earlier in the batch (kAborted).
enum class WriteState : std::uint8_t {
  kInit = 0,
  /// Owner-only intermediate: the waiter CASed itself here before parking
  /// on the ticket's condvar, so publish() knows it must store + notify
  /// under the ticket mutex instead of the lock-free CAS.
  kLockedWaiting = 1,
  kLeader = 2,
  kCompleted = 3,
  kAborted = 4,
};

/// True for the states a published ticket can end in — what await() and
/// the wave poll in ConcurrentEngine::write wait for.
constexpr bool is_terminal(WriteState s) noexcept {
  return s == WriteState::kLeader || s == WriteState::kCompleted ||
         s == WriteState::kAborted;
}

/// Thrown by ConcurrentEngine::write on a thread whose op was NOT applied
/// because the batch leader's engine apply threw earlier in the batch (the
/// original exception surfaces on the leader's own thread). Ops already
/// applied before the failure still complete normally — at-most-once
/// semantics per op, never silent loss.
class WriteAborted : public std::runtime_error {
 public:
  WriteAborted()
      : std::runtime_error(
            "group commit aborted: the batch leader's engine apply failed "
            "before this op was applied") {}
};

/// One in-flight write op. Lives on the submitting thread's stack for the
/// duration of the call; the intake links tickets, never owns them.
struct WriteTicket {
  WriteTicket(Lba lba_in, std::uint32_t blocks_in, TimeUs submit_in) noexcept
      : lba(lba_in), blocks(blocks_in), submit_us(submit_in) {}

  WriteTicket(const WriteTicket&) = delete;
  WriteTicket& operator=(const WriteTicket&) = delete;

  Lba lba;                  ///< shard-local address
  std::uint32_t blocks;
  TimeUs submit_us;         ///< simulated submit timestamp (monotonised
                            ///< per shard by the leader before applying)
  /// Modeled durable time of this op's batch, stamped by the LEADER before
  /// the ticket is published (pre-publication stores are lifetime-safe —
  /// the owner cannot unwind until it observes a terminal state — and
  /// publish's release CAS/store pairs with await's acquire load, so the
  /// stamp is visible to the waiter). 0 when the batch flushed nothing.
  /// Every non-aborted op waits this out on its OWN thread: the coalesced
  /// flush is charged to each op in the batch, never absorbed by the
  /// leader alone.
  TimeUs durable_us = 0;
  /// The per-shard-monotonised timestamp the LEADER applied this op at —
  /// the op's "joined" milestone for the phase breakdown. Leader-only
  /// storage: written and read exclusively by the current leader between
  /// capture_group and publish, while the ticket is pinned on its owner's
  /// stack, so no synchronisation is needed beyond the publish fence.
  TimeUs joined_us = 0;
  WriteTicket* link_older = nullptr;              ///< set once by link()
  std::atomic<WriteTicket*> link_newer{nullptr};  ///< back-filled by leader
  std::atomic<WriteState> state{WriteState::kInit};
  /// Parking for await(): the waiter blocks on its OWN ticket's condvar,
  /// but only after CASing state to kLockedWaiting. publish() takes this
  /// mutex only when it sees that parked state (otherwise it publishes
  /// with a plain CAS and never touches the ticket again), so the mutex
  /// is touched by the publisher exclusively while the owner is committed
  /// to reacquiring it before unwinding — the ticket's stack frame cannot
  /// vanish under the publisher's store/notify/unlock.
  Mutex mu;
  CondVar cv;
};

/// The per-shard lock-free MPSC intake list. Thread-safe: any number of
/// producers may link() concurrently; exactly one thread at a time (the
/// current leader) runs capture_group/exit_group.
class WriteIntake {
 public:
  WriteIntake() = default;
  WriteIntake(const WriteIntake&) = delete;
  WriteIntake& operator=(const WriteIntake&) = delete;

  /// Pushes `w` onto the list. Returns true when the list was empty —
  /// the caller just became group leader. The release CAS publishes the
  /// ticket's payload fields to the leader's acquire load of newest_.
  bool link(WriteTicket* w) noexcept {
    WriteTicket* old = newest_.load(std::memory_order_relaxed);
    while (true) {
      w->link_older = old;
      if (newest_.compare_exchange_weak(old, w, std::memory_order_release,
                                        std::memory_order_relaxed)) {
        return old == nullptr;
      }
    }
  }

  /// Leader only. Snapshots the current list as this batch and back-fills
  /// link_newer pointers from the snapshot down to `leader`, so the batch
  /// can be walked oldest-to-newest. Returns the batch's newest ticket.
  WriteTicket* capture_group(WriteTicket* leader) noexcept {
    WriteTicket* newest = newest_.load(std::memory_order_acquire);
    create_missing_newer_links(newest);
    (void)leader;
    return newest;
  }

  /// Leader only, after the batch [leader .. last] has been applied and
  /// its followers are about to be completed. If no newer ticket arrived,
  /// resets the list (returns nullptr). Otherwise promotes the oldest
  /// post-batch ticket to leader of the next group and returns it.
  WriteTicket* exit_group(WriteTicket* last) noexcept {
    WriteTicket* expected = last;
    if (newest_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      return nullptr;
    }
    // Newer tickets exist; `expected` is the current newest. Build the
    // newer-links down to `last`, then hand leadership to last's newer
    // neighbour. Sever its link_older FIRST so no later walk (from a yet
    // newer ticket) can cross into this batch once its tickets start
    // completing and vanishing.
    create_missing_newer_links(expected);
    WriteTicket* next_leader = last->link_newer.load(std::memory_order_relaxed);
    next_leader->link_older = nullptr;
    publish(next_leader, WriteState::kLeader);
    return next_leader;
  }

  /// Moves `w` to a terminal state and wakes its owner if parked —
  /// RocksDB's WriteThread::SetState shape. Fast path: CAS kInit ->
  /// terminal; on success the publisher never touches the ticket again,
  /// so an owner that observes the state from await()'s spin (or the
  /// wave poll in ConcurrentEngine::write) may unwind and destroy the
  /// ticket immediately — there is no trailing notify/unlock racing the
  /// destruction. Slow path: the CAS can only fail because the owner
  /// CASed itself to kLockedWaiting, committing to reacquire w->mu
  /// before unwinding; storing + notifying under that mutex is therefore
  /// lifetime-safe. Do not touch `w` after this returns.
  static void publish(WriteTicket* w, WriteState terminal) noexcept {
    WriteState expected = w->state.load(std::memory_order_relaxed);
    if (expected == WriteState::kLockedWaiting ||
        !w->state.compare_exchange_strong(expected, terminal,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
      // The only other writer of state is the owner parking itself.
      LockGuard g(w->mu);
      w->state.store(terminal, std::memory_order_release);
      w->cv.notify_one();
    }
  }

  /// Follower wait: bounded spin (skipped entirely on a single-core host,
  /// where spinning starves the leader — see spin_budget), then CAS into
  /// kLockedWaiting and park on the ticket's own condvar until the
  /// current leader completes, aborts, or promotes this ticket — a parked
  /// follower costs the scheduler nothing, unlike a yield loop cycling
  /// the run queue. If the CAS loses, the leader already published; the
  /// failed CAS's loaded value IS the terminal state. Returns the
  /// terminal state observed.
  static WriteState await(WriteTicket* w) noexcept {
    for (int spin = spin_budget(2048); spin > 0; --spin) {
      const WriteState s = w->state.load(std::memory_order_acquire);
      if (s != WriteState::kInit) return s;
    }
    WriteState expected = WriteState::kInit;
    if (!w->state.compare_exchange_strong(expected,
                                          WriteState::kLockedWaiting,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      return expected;
    }
    LockGuard g(w->mu);
    while (true) {
      const WriteState s = w->state.load(std::memory_order_acquire);
      if (is_terminal(s)) return s;
      w->cv.wait(w->mu, g);
    }
  }

 private:
  /// Walks link_older from `newest`, setting each older ticket's
  /// link_newer, stopping at the first ticket that already has one (or at
  /// the batch head, whose link_older is nullptr). Called only by the
  /// (single) current leader.
  static void create_missing_newer_links(WriteTicket* newest) noexcept {
    WriteTicket* head = newest;
    while (true) {
      WriteTicket* older = head->link_older;
      if (older == nullptr ||
          older->link_newer.load(std::memory_order_relaxed) != nullptr) {
        break;
      }
      older->link_newer.store(head, std::memory_order_relaxed);
      head = older;
    }
  }

  std::atomic<WriteTicket*> newest_{nullptr};
};

/// One op in a shard's linearized log, recorded by the leader in apply
/// order. Replaying the log serially reproduces the shard bit-exactly.
struct RecordedOp {
  enum class Kind : std::uint8_t { kWrite, kGcStep, kFlushAll };
  Kind kind = Kind::kWrite;
  Lba lba = 0;               ///< shard-local (kWrite)
  std::uint32_t blocks = 0;  ///< kWrite
  TimeUs ts_us = 0;          ///< monotonised timestamp actually applied
  std::uint32_t watermark = 0;  ///< kGcStep
};

/// Group-commit counters for one shard (or merged across shards).
struct GroupCommitStats {
  std::uint64_t groups = 0;     ///< batches led
  std::uint64_t ops = 0;        ///< tickets applied across all batches
  std::uint64_t max_batch = 0;  ///< largest single batch (tickets)
};

/// The concurrent front-end: N independent LBA-sharded LssEngines (same
/// geometry division and per-shard seeding as ShardedEngine — shard i
/// seeds with base_seed + i), each fronted by a WriteIntake and a Mutex
/// held only by that shard's current group leader.
///
/// Partitioning is by contiguous LBA range (shard = lba / blocks_per_shard)
/// rather than ShardedEngine's modulo striping: a multi-block request is
/// tiny next to a shard (tens of blocks vs tens of thousands), so range
/// partitioning keeps almost every op on ONE shard — one intake rendezvous
/// per op instead of one per touched shard. Modulo striping would shred
/// each request across all shards and make every op wait on several other
/// threads' leaders, which serializes badly once cores are scarce. Hotspot
/// skew is not a concern for the target workloads: the YCSB generator uses
/// a scrambled zipfian, which spreads hot keys uniformly over the range.
///
/// write() and gc_step() are thread-safe. The merged observers
/// (merged_metrics, chunks_flushed, recorded_ops, ...) take the shard
/// locks but are meant for a quiesced engine — call them after joining the
/// client threads.
class ConcurrentEngine {
 public:
  /// `record_ops` keeps the per-shard linearized op log for the
  /// differential oracle; benches turn it off to avoid the append cost.
  ConcurrentEngine(const LssConfig& config, std::uint32_t shard_count,
                   std::uint64_t base_seed, const ShardFactory& factory,
                   bool record_ops = true);

  ConcurrentEngine(const ConcurrentEngine&) = delete;
  ConcurrentEngine& operator=(const ConcurrentEngine&) = delete;

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint64_t logical_blocks() const noexcept { return logical_blocks_; }
  const LssConfig& per_shard_config() const noexcept { return shard_config_; }
  /// Range partition: shard holding global `lba`; its local address is
  /// lba - shard * blocks_per_shard().
  std::uint32_t shard_of(Lba lba) const noexcept {
    return static_cast<std::uint32_t>(lba / shard_config_.logical_blocks);
  }
  std::uint64_t blocks_per_shard() const noexcept {
    return shard_config_.logical_blocks;
  }

  /// Submits one batch's drained flush records to a device model (e.g.
  /// DeviceLanes::submit) and returns the modeled FlushOutcome: the time
  /// at which the LAST of them is durable plus that flush's pure device
  /// service time (splitting lane queueing from media time in the phase
  /// breakdown). Called by the batch leader OUTSIDE every shard lock; must
  /// be thread-safe.
  using FlushSubmitFn = std::function<FlushOutcome(
      std::uint32_t shard, const std::vector<PendingFlush>& flushes)>;
  /// Blocks the calling op's thread until the modeled durable time (e.g.
  /// the prototype sleeps the gap between its wall clock and durable_us).
  /// Called once per non-aborted op whose batch flushed, on that op's own
  /// thread; must be thread-safe.
  using DurableWaitFn = std::function<void(TimeUs durable_us)>;

  /// Device-model hooks, replacing the old leader-absorbs-the-wait flush
  /// hook. The leader submits the batch's flushes once (outside the shard
  /// lock, before follower completions are published) and stamps the
  /// returned durable time into every ticket of the batch; each op then
  /// runs `wait` on its OWN thread. Leader and follower submit→durable
  /// latencies therefore both include their share of the coalesced flush —
  /// the per-thread accounting matches the big-lock path, where each
  /// client that tipped a chunk paid its own wait (the skew the PR 8
  /// prototype documented as a caveat is gone; the follower-latency
  /// regression test in tests/concurrent_commit_test.cpp pins it). Set
  /// both hooks before the first write, or neither.
  void set_device_model(FlushSubmitFn submit, DurableWaitFn wait) {
    flush_submit_ = std::move(submit);
    durable_wait_ = std::move(wait);
  }

  /// Attaches a trace sink to shard `i` (engine events + kGroupCommit
  /// batch events + per-op kOpSubmit/kOpDurable lifecycle events).
  /// Emission happens under the shard lock, so an unsynchronised per-shard
  /// ring is safe, mirroring ShardedEngine.
  void set_trace_sink(std::uint32_t i, TraceSink* sink);

  /// Installs a live-stats hook called by every batch leader right after
  /// the batch's durable time is known (outside every engine lock) with
  /// that batch's BatchSample. The hook must be thread-safe — leaders of
  /// different shards call it concurrently. Set before the first write,
  /// like set_device_model; nullptr-able by assigning {}.
  void set_batch_hook(std::function<void(const BatchSample&)> hook) {
    batch_hook_ = std::move(hook);
  }

  /// Thread-safe group-commit write of `blocks` consecutive global blocks
  /// at `lba`. Under range partitioning the span almost always lands on a
  /// single shard; when it straddles a boundary, every touched shard's
  /// ticket is linked BEFORE any is awaited, so the sub-writes commit in
  /// parallel instead of paying one intake round trip per shard. Returns
  /// once every sub-span has been applied and this op has waited out the
  /// modeled durable time of every batch it rode in (its durable share of
  /// the coalesced flushes). Failure contract: if the engine
  /// throws while a leader applies a batch, the leader's thread rethrows
  /// the engine's exception, and every caller whose op was NOT applied
  /// (the failing op and everything linked after it in that batch) throws
  /// WriteAborted instead of returning success — an op that returns
  /// normally was applied, an op that throws was not (at-most-once).
  void write(Lba lba, std::uint32_t blocks, TimeUs submit_us);

  /// Thread-safe proactive GC pass on shard `i`. Returns true when the
  /// pass migrated work (and was therefore recorded in the shard log).
  /// When `flushed_chunks` is non-null it receives the number of chunks
  /// the pass flushed. When `flushes` is non-null it receives the drained
  /// flush records of the pass, so the GC thread can submit them to the
  /// device model itself (a GC pass has no write tickets to stamp).
  bool gc_step(std::uint32_t i, TimeUs now_us, std::uint32_t watermark,
               std::uint64_t* flushed_chunks = nullptr,
               std::vector<PendingFlush>* flushes = nullptr);

  /// Quiesced-only: pads out every partial chunk on every shard and
  /// records the drain in each shard log.
  void flush_all();

  // -- quiesced observers ---------------------------------------------------

  LssMetrics merged_metrics() const;
  std::uint64_t chunks_flushed() const;
  std::vector<std::uint32_t> merged_segments_per_group() const;
  std::uint64_t merged_pending_blocks() const;
  std::size_t policy_memory_bytes() const;
  void check_invariants(audit::Level level) const;

  GroupCommitStats shard_stats(std::uint32_t i) const;
  GroupCommitStats merged_stats() const;

  /// Merged phase-attributed latency over every shard's committed batches
  /// (virtual-time microseconds; see lss/op_timeline.h for the identity).
  /// Takes each shard's stats mutex, not the shard lock — safe to call
  /// concurrently with writers, though meant for post-run export.
  LatencyBreakdown latency_breakdown() const;

  /// Copy of shard `i`'s linearized op log (empty when record_ops=false).
  std::vector<RecordedOp> recorded_ops(std::uint32_t i) const;

  /// Read-only access to shard `i`'s engine for final-state comparison.
  /// Quiesced-only: deliberately bypasses the shard lock (the analysis
  /// cannot express "all writers joined"), hence the escape hatch.
  const LssEngine& shard_for_inspection(std::uint32_t i) const
      ADAPT_NO_THREAD_SAFETY_ANALYSIS {
    return *shards_.at(i)->engine;
  }

  /// Serial oracle replay: applies `log` to `engine` exactly as the
  /// concurrent path recorded it. The engine must be freshly built from
  /// the same factory, per-shard config, and seed as the shard that
  /// produced the log.
  static void replay_log(LssEngine& engine,
                         const std::vector<RecordedOp>& log);

 private:
  struct Shard {
    std::uint32_t index = 0;
    ShardParts parts;
    Mutex mu;
    std::unique_ptr<LssEngine> engine ADAPT_PT_GUARDED_BY(mu);
    WriteIntake intake;
    TimeUs last_ts ADAPT_GUARDED_BY(mu) = 0;
    /// Flush records appended by the engine's chunk writer (the collector
    /// attached in the ctor) since the last drain. Every batch and GC pass
    /// drains it while still holding the shard lock, so it holds at most
    /// one batch's worth of records.
    std::vector<PendingFlush> flushes ADAPT_GUARDED_BY(mu);
    std::vector<RecordedOp> log ADAPT_GUARDED_BY(mu);
    TraceSink* sink ADAPT_GUARDED_BY(mu) = nullptr;
    /// Monotone per-shard batch counter; combined with the shard index it
    /// forms the batch's nonzero causal-flow id.
    std::uint64_t batch_seq ADAPT_GUARDED_BY(mu) = 0;
    std::atomic<std::uint64_t> groups{0};
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> max_batch{0};
    /// Phase-attributed latency of this shard's committed batches. Guarded
    /// by its own mutex (not `mu`) so latency export never contends the
    /// apply path's critical section.
    mutable Mutex lat_mu;
    LatencyBreakdown breakdown ADAPT_GUARDED_BY(lat_mu);
  };

  /// Leader protocol: capture batch, apply under the shard lock, drain the
  /// batch's flush records, submit them to the device model OUTSIDE the
  /// lock, stamp the modeled durable time into every batch ticket, hand
  /// off leadership, publish completions. The durable WAIT must NOT happen
  /// here — each op (this leader included) runs it from write() on its own
  /// thread, or every follower would serialize behind the leader's sleep.
  void lead(Shard& sh, WriteTicket* leader);

  LssConfig shard_config_;
  std::uint64_t logical_blocks_ = 0;
  bool record_ops_ = true;
  FlushSubmitFn flush_submit_;
  DurableWaitFn durable_wait_;
  std::function<void(const BatchSample&)> batch_hook_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace adapt::lss
