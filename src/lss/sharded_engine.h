// ShardedEngine: an LBA-sharded parallel front-end over N independent
// LssEngine shards.
//
// The LBA space is modulo-partitioned: lba `l` lives on shard `l % N` at
// local address `l / N`, so a contiguous global span maps to one contiguous
// local span per shard and hot/cold mixes spread evenly across shards.
// Each shard is a complete, independent log-structured store — its own
// placement policy, victim index, segment pool, and (optionally) SSD array
// — so shards share no mutable state and a shard's behaviour depends only
// on its own (op, lba, timestamp) sequence. That makes parallel replay
// deterministic regardless of thread scheduling: enqueue ops in trace
// order, then run_queued() replays every shard's queue on a ThreadPool.
//
// N == 1 is an exact pass-through: a 1-shard ShardedEngine reproduces the
// single-engine pinned fixed-seed regression metrics bit-identically.
//
// Cross-shard results merge through LssMetrics::merge_from (counters),
// obs::Registry::merge_from (manifests), and obs::merge_series (sampled
// time series); see DESIGN.md "Engine decomposition & sharding".
//
// Concurrency contract: shards are thread-compatible, never thread-safe —
// isolation replaces locking. run_queued() hands each shard's queue to
// exactly one ThreadPool task, the merge phase runs after wait_idle(), and
// no mutable state crosses a shard boundary in between, so there is nothing
// for a mutex (or a capability annotation) to guard. The ThreadPool
// underneath carries the annotations; -Wthread-safety checks that side.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/thread_pool.h"
#include "lss/engine.h"

namespace adapt::lss {

/// Everything one shard needs besides its engine. Built per shard by the
/// caller's ShardFactory; owned by the ShardedEngine for the engines'
/// lifetime. `hook` is non-owning and normally points into `policy`.
struct ShardParts {
  std::unique_ptr<PlacementPolicy> policy;
  std::unique_ptr<VictimPolicy> victim;
  std::unique_ptr<array::SsdArray> array;  ///< optional
  AggregationHook* hook = nullptr;         ///< optional, non-owning
};

/// Builds the placement/victim/array stack for shard `shard_index`, sized
/// for `shard_config` (the already-divided per-shard geometry).
using ShardFactory =
    std::function<ShardParts(std::uint32_t shard_index,
                             const LssConfig& shard_config)>;

/// Upper bound on shard counts accepted by parse_shard_count /
/// shard_config — far above any sensible core count, low enough that a
/// typo cannot allocate absurd per-shard state.
inline constexpr std::uint32_t kMaxShards = 4096;

/// Parses a shard count from CLI/config text: strict decimal digits, no
/// sign or whitespace, value in [1, kMaxShards]. Throws
/// std::invalid_argument on anything else (including overflow).
std::uint32_t parse_shard_count(std::string_view text);

/// Derives the per-shard geometry: the logical space divides evenly-as-
/// possible (ceil(logical_blocks / shard_count), uniform across shards so
/// every shard validates the same way). Throws std::invalid_argument when
/// shard_count is 0, exceeds kMaxShards, or exceeds logical_blocks.
LssConfig shard_config(const LssConfig& global, std::uint32_t shard_count);

class ShardedEngine {
 public:
  /// Builds `shard_count` independent engines over `config`'s logical
  /// space. Shard i's engine seeds with `base_seed + i` (shard 0 keeps the
  /// single-engine seed, preserving 1-shard bit-identity). The factory is
  /// called once per shard, in shard order, on the constructing thread.
  ShardedEngine(const LssConfig& config, std::uint32_t shard_count,
                std::uint64_t base_seed, const ShardFactory& factory);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint64_t logical_blocks() const noexcept { return logical_blocks_; }
  const LssConfig& per_shard_config() const noexcept { return shard_config_; }

  std::uint32_t shard_of(Lba lba) const noexcept {
    return static_cast<std::uint32_t>(lba % shards_.size());
  }
  Lba local_of(Lba lba) const noexcept { return lba / shards_.size(); }

  LssEngine& shard(std::uint32_t i) { return *shards_.at(i).engine; }
  const LssEngine& shard(std::uint32_t i) const {
    return *shards_.at(i).engine;
  }
  PlacementPolicy& shard_policy(std::uint32_t i) {
    return *shards_.at(i).parts.policy;
  }

  /// Attaches a trace sink to shard `i`'s engine (nullptr detaches). Each
  /// shard gets its own sink instance — sinks are not synchronised, and
  /// run_queued replays shards on different threads; the obs layer merges
  /// per-shard rings afterwards, exactly like Registry/metrics.
  void set_trace_sink(std::uint32_t i, TraceSink* sink) {
    shards_.at(i).engine->set_trace_sink(sink);
  }
  const array::SsdArray* shard_array(std::uint32_t i) const {
    return shards_.at(i).parts.array.get();
  }

  // -- synchronous ops (route to shards on the calling thread) -------------

  /// Applies a user write of `blocks` consecutive global blocks at `lba`:
  /// each shard receiving part of the span gets one contiguous local write.
  void write(Lba lba, std::uint32_t blocks, TimeUs now_us);

  /// Applies a user read of `blocks` consecutive global blocks at `lba`.
  void read(Lba lba, std::uint32_t blocks, TimeUs now_us);

  /// Advances wall time on every shard, firing expired deadlines.
  void advance_time(TimeUs now_us);

  /// Force-pads every partial chunk on every shard (end-of-trace drain).
  void flush_all();

  /// One proactive GC pass per shard, run in parallel on `pool` when given
  /// (nullptr runs inline). Returns true if any shard did work.
  bool gc_step(TimeUs now_us, std::uint32_t watermark,
               ThreadPool* pool = nullptr);

  // -- batched parallel replay ---------------------------------------------

  /// Queues a write/read for run_queued. Ops are split per shard at
  /// enqueue time; each shard's queue preserves trace order.
  void enqueue_write(Lba lba, std::uint32_t blocks, TimeUs now_us);
  void enqueue_read(Lba lba, std::uint32_t blocks, TimeUs now_us);

  /// Sizes every shard queue for ~`expected_ops` total enqueues (spread
  /// evenly; requests spanning a shard boundary add an op, so callers pass
  /// the record count and the slack absorbs the splits). Replays enqueue
  /// entire volumes before run_queued, so without the hint each queue
  /// reallocates-and-copies log2(n) times.
  void reserve_queues(std::size_t expected_ops);

  std::size_t queued_ops() const noexcept;

  /// Replays every shard's queued ops — on `pool` when given (one task per
  /// shard), inline otherwise — then clears the queues. Deterministic for
  /// any pool size: shards are independent and each queue is ordered. The
  /// first shard exception (if any) is rethrown after all shards finish.
  void run_queued(ThreadPool* pool);

  // -- merged observers ----------------------------------------------------

  /// Element-wise sum of per-shard metrics (see LssMetrics::merge_from).
  LssMetrics merged_metrics() const;

  /// Element-wise sum of per-shard per-group in-use segment counts.
  std::vector<std::uint32_t> merged_segments_per_group() const;

  /// Sum of per-shard array totals (zero stats when no shard has an array).
  array::StreamStats merged_array_totals() const;

  std::uint64_t chunks_flushed() const noexcept;
  std::size_t policy_memory_bytes() const;

  /// Audits every shard at `level`.
  void check_invariants(audit::Level level) const;

 private:
  struct QueuedOp {
    Lba local_lba = 0;
    std::uint32_t blocks = 0;
    TimeUs ts_us = 0;
    bool is_write = false;
  };

  struct Shard {
    ShardParts parts;
    std::unique_ptr<LssEngine> engine;
    std::vector<QueuedOp> queue;
    std::exception_ptr error;
  };

  /// Invokes fn(shard_index, local_lba, local_blocks) for every shard
  /// receiving part of the global span [lba, lba + blocks).
  template <typename Fn>
  void for_each_subspan(Lba lba, std::uint32_t blocks, Fn&& fn) const;

  void enqueue(Lba lba, std::uint32_t blocks, TimeUs now_us, bool is_write);
  static void replay_queue(Shard& shard) noexcept;

  LssConfig shard_config_;
  std::uint64_t logical_blocks_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace adapt::lss
