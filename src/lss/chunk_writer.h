// ChunkWriter: the append→flush pipeline of the LSS.
//
// Owns per-group open-chunk state (open segment, flushed slots, coalescing
// deadline) and turns appends into chunk-granularity media writes: full
// flushes at chunk boundaries, zero-padded flushes when a deadline forces a
// partial chunk out, RMW sub-chunk flushes in read-modify-write mode, and
// shadow appends for cross-group aggregation. Every flush is mirrored to
// the attached arrays and accounted in LssMetrics.
#pragma once

#include <cstdint>
#include <vector>

#include "array/addressed_array.h"
#include "array/ssd_array.h"
#include "common/types.h"
#include "lss/block_map.h"
#include "lss/config.h"
#include "lss/metrics.h"
#include "lss/placement_policy.h"
#include "lss/segment.h"
#include "lss/segment_pool.h"
#include "lss/trace_sink.h"

namespace adapt::lss {

/// Provenance of an appended block: user write, GC migration, or a shadow
/// copy placed by cross-group aggregation.
enum class AppendSource { kUser, kGc, kShadow };

/// Sentinel "no coalescing deadline armed anywhere".
inline constexpr TimeUs kNoDeadline = ~static_cast<TimeUs>(0);

/// One media write applied to engine state but not yet modeled durable on a
/// device. The writer's flush paths append these to an optionally attached
/// collector, splitting "apply" (engine state mutated, under whatever lock
/// the caller holds) from "durable" (the collector's owner submits the
/// records to a device model — lss::DeviceLanes — and waits OUTSIDE the
/// lock). `rmw` flushes carry sub-chunk payloads; full/padded flushes are
/// chunk-sized regardless of fill.
struct PendingFlush {
  GroupId group = kInvalidGroup;
  std::uint32_t blocks = 0;  ///< real payload blocks in the flush
  bool rmw = false;          ///< sub-chunk RMW write, not a full chunk
  /// Causal-flow id of the batch whose apply produced this flush (see
  /// TraceEvent::id); 0 outside a traced group-commit batch. Device models
  /// forward it to DeviceLanes::submit so lane events join the op's flow.
  std::uint64_t id = 0;
};

class ChunkWriter {
 public:
  /// All references must outlive the writer. `vtime` is the engine's
  /// virtual clock, read at segment open/seal; `wall_us` its simulated
  /// wall clock, read when stamping trace events. `array` is optional
  /// (bandwidth mirroring); an addressed array attaches later.
  ChunkWriter(const LssConfig& config, GroupId group_count, SegmentPool& pool,
              BlockMap& map, PlacementPolicy& policy, LssMetrics& metrics,
              const VTime& vtime, const TimeUs& wall_us,
              array::SsdArray* array);

  ChunkWriter(const ChunkWriter&) = delete;
  ChunkWriter& operator=(const ChunkWriter&) = delete;

  void set_addressed_array(array::AddressedArray* addressed) noexcept {
    addressed_array_ = addressed;
  }

  /// Attaches a trace sink for flush/shadow events (nullptr detaches).
  void set_trace_sink(TraceSink* sink) noexcept { trace_ = sink; }

  /// Attaches a flush-record collector (nullptr detaches): every chunk and
  /// RMW flush appends a PendingFlush to `*out`. The owner drains the
  /// vector after each batch (ConcurrentEngine::lead does, under the shard
  /// lock) and models durability outside the critical section; leaving a
  /// collector attached without draining grows it unboundedly. Detached —
  /// the default, and the serial simulator's mode — the flush paths cost
  /// one null check.
  void set_flush_collector(std::vector<PendingFlush>* out) noexcept {
    flush_collector_ = out;
  }

  /// Sets the causal-flow id stamped into every flush event and collected
  /// PendingFlush until the next call (0 = no flow). ConcurrentEngine's
  /// batch leader sets the batch id before applying and the GC/drain paths
  /// reset it, so a flush is attributed to the batch that tipped it.
  void set_flow_id(std::uint64_t id) noexcept { flow_id_ = id; }

  /// Appends one block to `g`'s open chunk, flushing at chunk boundaries
  /// and arming the coalescing deadline on the first pending user block.
  /// GC migrations pass the victim's group as `from_group` so the block is
  /// attributed in the destination group's gc_from provenance row.
  void append(GroupId g, Lba lba, AppendSource source, TimeUs now_us,
              GroupId from_group = kInvalidGroup);

  /// Zero-pads and persists `g`'s partial chunk.
  void pad_flush(GroupId g);

  /// RMW mode: persists the pending sub-chunk without padding; the chunk
  /// stays open for further appends.
  void rmw_flush(GroupId g);

  /// Appends shadow copies of `g`'s pending unshadowed primaries into
  /// `host`'s open chunk (cross-group aggregation, §3.3).
  void shadow_append(GroupId g, GroupId host, TimeUs now_us);

  /// TRIMs a reclaimed segment's range on the addressed array, if attached.
  void trim_segment(SegmentId id);

  GroupId group_count() const noexcept {
    return static_cast<GroupId>(groups_.size());
  }

  /// Total chunks flushed so far (full + padded).
  std::uint64_t chunks_flushed() const noexcept { return chunks_flushed_; }

  bool deadline_armed(GroupId g) const { return groups_[g].deadline_armed; }
  TimeUs chunk_deadline(GroupId g) const { return groups_[g].chunk_deadline; }
  void disarm_deadline(GroupId g) { groups_[g].deadline_armed = false; }

  /// Lower bound on the earliest armed coalescing deadline (may be stale
  /// low after disarms — never high), so the per-write time advance is one
  /// compare when nothing is due.
  TimeUs earliest_deadline() const noexcept { return earliest_deadline_; }

  /// Recomputes the exact earliest armed deadline (slow-path exit).
  void recompute_earliest_deadline() noexcept {
    TimeUs earliest = kNoDeadline;
    for (const GroupState& gs : groups_) {
      if (gs.deadline_armed && gs.chunk_deadline < earliest) {
        earliest = gs.chunk_deadline;
      }
    }
    earliest_deadline_ = earliest;
  }

  /// Blocks appended to `g`'s open segment but not yet flushed to a chunk.
  std::uint32_t pending_blocks(GroupId g) const;

  /// Of the pending blocks, how many are still valid and not yet shadowed.
  std::uint32_t pending_unshadowed_valid(GroupId g) const;

  /// True while `loc` (owned by group `g`) sits in the open chunk, appended
  /// but not yet persisted.
  bool slot_pending(GroupId g, BlockLocation loc) const {
    const GroupState& gs = groups_[g];
    return gs.open_seg == loc.segment && loc.slot >= gs.flushed_slots;
  }

  std::uint64_t global_chunk_index(SegmentId seg,
                                   std::uint32_t slot) const noexcept {
    return static_cast<std::uint64_t>(seg) * config_.segment_chunks +
           slot / config_.chunk_blocks;
  }

  /// Counters-tier self-audit (per-group vs global traffic, flush totals,
  /// open-chunk pointer sanity, and the write-accounting identity:
  /// user+gc+shadow+padding == chunk_blocks·chunks_flushed + rmw_blocks +
  /// pending). Throws std::logic_error on violation.
  void check_counters() const;

 private:
  struct GroupState {
    SegmentId open_seg = kInvalidSegment;
    std::uint32_t flushed_slots = 0;  ///< slots of open seg already on disk
    /// write_ptr value at the next chunk boundary. Tracked incrementally so
    /// the per-append boundary test is a compare, not a modulo (integer
    /// division by the runtime chunk size costs more than the rest of the
    /// append bookkeeping combined).
    std::uint32_t next_boundary = 0;
    bool deadline_armed = false;
    TimeUs chunk_deadline = 0;
  };

  void open_group_segment(GroupId g);
  void seal_group_segment(GroupId g);
  /// Flushes the open chunk of `g`; `fill_blocks` real payload, rest pad.
  void flush_chunk(GroupId g, std::uint32_t fill_blocks, bool padded);
  /// Called when write_ptr reaches a chunk boundary: full flush, or the
  /// completing RMW partial if earlier sub-chunk flushes happened.
  void flush_boundary(GroupId g);
  /// Expires shadows of primaries in slots [begin, end) of g's open seg.
  void expire_shadows_in_range(GroupId g, std::uint32_t begin,
                               std::uint32_t end);

  const LssConfig& config_;
  SegmentPool& pool_;
  BlockMap& map_;
  PlacementPolicy& policy_;
  LssMetrics& metrics_;
  const VTime& vtime_;
  const TimeUs& wall_us_;
  TraceSink* trace_ = nullptr;
  std::vector<PendingFlush>* flush_collector_ = nullptr;
  std::uint64_t flow_id_ = 0;
  array::SsdArray* array_;
  array::AddressedArray* addressed_array_ = nullptr;

  std::vector<GroupState> groups_;
  /// Recycled shadow_append scratch (reserved once to segment_blocks), so
  /// aggregation bursts allocate nothing in steady state.
  std::vector<Lba> shadow_scratch_;
  /// Full + padded chunk flushes, kept as a running counter so the
  /// per-write bandwidth accounting does not walk metrics_.groups.
  std::uint64_t chunks_flushed_ = 0;
  /// Lower bound on the earliest armed deadline (see earliest_deadline()).
  TimeUs earliest_deadline_ = kNoDeadline;
};

}  // namespace adapt::lss
