// GcController: garbage-collection driver for the LSS.
//
// Owns the watermark logic (reactive GC inside the write path plus the
// proactive gc_step entry point), victim selection through the incremental
// victim index, and live-block migration — including the forced lazy flush
// when a live shadow is found inside a sealed victim (its original must
// persist before the shadow can die).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "lss/block_map.h"
#include "lss/chunk_writer.h"
#include "lss/config.h"
#include "lss/metrics.h"
#include "lss/placement_policy.h"
#include "lss/segment_pool.h"
#include "lss/trace_sink.h"
#include "lss/victim_policy.h"

namespace adapt::lss {

class GcController {
 public:
  /// All references must outlive the controller. `vtime` is the engine's
  /// virtual clock; `rng` feeds randomized victim policies.
  GcController(const LssConfig& config, SegmentPool& pool, BlockMap& map,
               ChunkWriter& writer, PlacementPolicy& policy,
               VictimPolicy& victim, LssMetrics& metrics, Rng& rng,
               const VTime& vtime);

  GcController(const GcController&) = delete;
  GcController& operator=(const GcController&) = delete;

  /// Attaches a trace sink for per-run GC events (nullptr detaches).
  void set_trace_sink(TraceSink* sink) noexcept { trace_ = sink; }

  /// Reactive GC after a user write: reclaims until the free pool is back
  /// above the watermark (free_segment_reserve + group count). Throws when
  /// GC cannot make progress.
  void maybe_gc(TimeUs now_us);

  /// One proactive pass: reclaims a victim if the free pool has fallen
  /// below `watermark`. Returns true if work was done.
  bool step(TimeUs now_us, std::uint32_t watermark);

  /// Counters-tier self-audit; throws std::logic_error on violation.
  void check_counters() const;

 private:
  /// One live block queued for batched migration out of a victim.
  struct MigrateEntry {
    std::uint32_t slot;
    Lba lba;
  };

  void run_once(TimeUs now_us);
  /// Shadow-aware migration loop: per-slot shadow probe plus forced lazy
  /// flushes, used whenever live shadows exist during a GC run.
  void migrate_interleaved(SegmentId victim, Segment& v, TimeUs now_us);

  const LssConfig& config_;
  SegmentPool& pool_;
  BlockMap& map_;
  ChunkWriter& writer_;
  PlacementPolicy& policy_;
  VictimPolicy& victim_;
  LssMetrics& metrics_;
  Rng& rng_;
  const VTime& vtime_;
  TraceSink* trace_ = nullptr;
  /// Recycled collect-then-apply buffer for the batched remap fast path
  /// (reserved once to segment_blocks — GC allocates nothing per run).
  std::vector<MigrateEntry> migrate_scratch_;
};

}  // namespace adapt::lss
