// Log-structured store configuration.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "audit/audit.h"
#include "common/types.h"

namespace adapt::lss {

/// How a partial chunk is persisted when the SLA window expires.
/// Zero-padding (the paper's default) writes a full chunk of data + zeros;
/// read-modify-write persists only the real blocks but pays the
/// small-write parity penalty (old data + old parity reads) on every
/// sub-chunk flush, and the chunk stays open for further appends.
enum class PartialWriteMode { kZeroPad, kReadModifyWrite };

struct LssConfig {
  std::uint32_t block_bytes = kDefaultBlockSize;
  std::uint32_t chunk_blocks = 16;    ///< 64 KiB chunk / 4 KiB block
  std::uint32_t segment_chunks = 16;  ///< 1 MiB segment
  std::uint64_t logical_blocks = 1u << 16;
  double over_provision = 0.25;       ///< physical = logical * (1 + op)
  TimeUs coalesce_window_us = kDefaultCoalesceWindowUs;
  /// GC starts when the free-segment count drops to
  /// group_count + free_segment_reserve.
  std::uint32_t free_segment_reserve = 4;
  PartialWriteMode partial_write_mode = PartialWriteMode::kZeroPad;
  /// Per-op self-auditing tier (kCounters cross-checks the running
  /// counters after every mutation; kFull re-walks all structures — tests
  /// only). Overridable at run time via the ADAPT_AUDIT env variable.
  audit::Level audit_level = audit::Level::kOff;

  std::uint32_t segment_blocks() const noexcept {
    return chunk_blocks * segment_chunks;
  }

  std::uint64_t physical_blocks() const noexcept {
    return static_cast<std::uint64_t>(
        static_cast<double>(logical_blocks) * (1.0 + over_provision));
  }

  std::uint32_t total_segments() const noexcept {
    return static_cast<std::uint32_t>(
        (physical_blocks() + segment_blocks() - 1) / segment_blocks());
  }

  void validate(std::uint32_t group_count) const {
    if (chunk_blocks == 0 || segment_chunks == 0 || logical_blocks == 0) {
      throw std::invalid_argument("LssConfig: zero-sized geometry");
    }
    if (over_provision <= 0.0) {
      throw std::invalid_argument("LssConfig: over-provision must be > 0");
    }
    // Steady-state feasibility: even with the logical space fully live, the
    // over-provisioned segments must cover the GC watermark
    // (reserve + groups), the open segments, and headroom for GC to make
    // progress.
    const std::uint64_t logical_segments =
        (logical_blocks + segment_blocks() - 1) / segment_blocks();
    const std::uint64_t op_segments =
        total_segments() > logical_segments
            ? total_segments() - logical_segments
            : 0;
    if (op_segments < free_segment_reserve + 2ull * group_count + 2) {
      throw std::invalid_argument(
          "LssConfig: over-provisioned segments cannot cover the GC "
          "watermark; increase capacity or over-provision, or shrink "
          "segments");
    }
  }
};

}  // namespace adapt::lss
