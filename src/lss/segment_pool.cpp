#include "lss/segment_pool.h"

#include <algorithm>
#include <stdexcept>

#include "common/annotations.h"

namespace adapt::lss {

SegmentPool::SegmentPool(const LssConfig& config, GroupId group_count,
                         VictimPolicy& victim)
    : config_(config),
      victim_(victim),
      segment_blocks_(config.segment_blocks()) {
  const std::uint32_t total = config_.total_segments();
  segments_.resize(total);
  slot_lba_.assign(static_cast<std::size_t>(total) * segment_blocks_,
                   kInvalidLba);
  free_list_.reserve(total);
  for (std::uint32_t i = 0; i < total; ++i) {
    segments_[i].reset(config_.segment_blocks());
    // Push in reverse so allocation order is 0, 1, 2, ...
    free_list_.push_back(total - 1 - i);
  }
  free_count_ = total;
  victim_.bind_pool(total, config_.segment_blocks());
  group_segments_.assign(group_count, 0);
}

ADAPT_HOT SegmentId SegmentPool::allocate(GroupId g, VTime vtime) {
  if (free_list_.empty()) {
    throw std::runtime_error(
        "LssEngine: segment pool exhausted (GC could not keep up)");
  }
  const SegmentId id = free_list_.back();
  free_list_.pop_back();
  --free_count_;
  Segment& seg = segments_[id];
  seg.reset(config_.segment_blocks());
  seg.free = false;
  seg.group = g;
  seg.create_vtime = vtime;
  ++group_segments_[g];
  if (trace_ != nullptr) {
    emit(trace_, TraceEvent{TraceEventKind::kSegmentAlloc, g, vtime,
                            trace_wall_us_ != nullptr ? *trace_wall_us_ : 0,
                            id, 0, 0});
  }
  return id;
}

ADAPT_HOT void SegmentPool::seal(SegmentId id, VTime vtime) {
  Segment& seg = segments_[id];
  seg.sealed = true;
  seg.seal_vtime = vtime;
  victim_.on_seal(id, seg.valid_count, seg.seal_vtime);
  if (trace_ != nullptr) {
    emit(trace_, TraceEvent{TraceEventKind::kSegmentSeal, seg.group, vtime,
                            trace_wall_us_ != nullptr ? *trace_wall_us_ : 0,
                            id, seg.valid_count, 0});
  }
}

ADAPT_HOT void SegmentPool::release(SegmentId id) {
  Segment& seg = segments_[id];
  if (seg.sealed) victim_.on_free(id);
  --group_segments_[seg.group];
  seg.reset(config_.segment_blocks());
  // Scrub the segment's arena row so the next open sees kInvalidLba
  // everywhere (the invariant Segment::reset used to provide).
  std::fill_n(slot_lba_.begin() +
                  static_cast<std::size_t>(id) * segment_blocks_,
              segment_blocks_, kInvalidLba);
  // Capacity is reserved to the pool size at construction and ids are
  // unique, so this push can never grow the vector.
  free_list_.push_back(id);  // ADAPT_LINT_ALLOW(hot-alloc)
  ++free_count_;
}

ADAPT_HOT void SegmentPool::invalidate_slot(BlockLocation loc) {
  Segment& seg = segments_[loc.segment];
  if (!seg.slot_valid.test(loc.slot)) {
    throw std::logic_error("double invalidation of a slot");
  }
  seg.slot_valid.reset(loc.slot);
  --seg.valid_count;
  if (seg.sealed) {
    victim_.on_valid_delta(loc.segment, seg.valid_count + 1,
                           seg.valid_count);
  }
}

ADAPT_HOT void SegmentPool::invalidate_slot_draining(BlockLocation loc) {
  Segment& seg = segments_[loc.segment];
  if (!seg.slot_valid.test(loc.slot)) {
    throw std::logic_error("double invalidation of a slot");
  }
  seg.slot_valid.reset(loc.slot);
  --seg.valid_count;
}

void SegmentPool::check_counters() const {
  if (free_list_.size() != free_count_) {
    throw std::logic_error("free list size != free counter");
  }
  std::uint64_t in_use = 0;
  for (const std::uint32_t n : group_segments_) in_use += n;
  if (in_use + free_count_ != segments_.size()) {
    throw std::logic_error("per-group + free segment counters != pool size");
  }
}

}  // namespace adapt::lss
