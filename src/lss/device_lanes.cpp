#include "lss/device_lanes.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::lss {

void DeviceLanesConfig::validate() const {
  if (lanes == 0) {
    throw std::invalid_argument("DeviceLanes: need at least one lane");
  }
  if (queue_depth == 0) {
    throw std::invalid_argument("DeviceLanes: queue depth must be positive");
  }
  if (chunk_bytes == 0) {
    throw std::invalid_argument("DeviceLanes: chunk bytes must be positive");
  }
  if (!(lane_bandwidth_mb_per_s > 0.0)) {
    throw std::invalid_argument("DeviceLanes: bandwidth must be positive");
  }
}

DeviceLanes::DeviceLanes(const DeviceLanesConfig& config)
    : config_(config), lanes_(config.lanes) {
  config_.validate();
  for (Lane& lane : lanes_) {
    LockGuard g(lane.mu);
    lane.ring.assign(config_.queue_depth, 0);
  }
}

void DeviceLanes::set_trace_sink(std::uint32_t lane, TraceSink* sink) {
  Lane& l = lanes_.at(lane);
  LockGuard g(l.mu);
  l.sink = sink;
}

LaneCompletion DeviceLanes::submit(std::uint32_t lane, std::uint64_t bytes,
                                   TimeUs now_us, std::uint64_t flow_id) {
  if (lane >= lanes_.size()) {
    throw std::out_of_range("DeviceLanes: lane index out of range");
  }
  Lane& l = lanes_[lane];
  const std::uint32_t depth = config_.queue_depth;
  LockGuard g(l.mu);

  // Retire submissions whose modeled completion is in the past: they have
  // left the queue by `now_us`. The ring is monotone (the lane timeline
  // only advances), so this is a front scan.
  while (l.inflight > 0 && l.ring[l.head] <= now_us) {
    l.head = (l.head + 1) % depth;
    --l.inflight;
  }

  // Bounded submission queue: with queue_depth entries still outstanding,
  // admission waits (in virtual time) for the oldest to complete.
  TimeUs admit_us = now_us;
  if (l.inflight == depth) {
    admit_us = l.ring[l.head];
    l.head = (l.head + 1) % depth;
    --l.inflight;
    ++l.stats.stalled_submits;
  }

  const TimeUs service = array::SsdDevice::service_time_us(
      config_.lane_bandwidth_mb_per_s, bytes);
  const TimeUs start = std::max(admit_us, l.busy_until_us);
  const TimeUs complete_us = start + service;
  l.busy_until_us = complete_us;

  l.ring[(l.head + l.inflight) % depth] = complete_us;
  ++l.inflight;

  LaneCompletion c;
  c.lane = lane;
  c.seq = l.next_seq++;
  c.submit_us = now_us;
  c.admit_us = admit_us;
  c.complete_us = complete_us;
  c.service_us = service;

  ++l.stats.submits;
  l.stats.busy_us += service;
  l.stats.busy_until_us = complete_us;
  if (l.inflight > l.stats.inflight_high_water) {
    l.stats.inflight_high_water = l.inflight;
  }
  l.depth_hist.add(l.inflight);
  l.latency_hist.add(complete_us - now_us);

  if (l.sink != nullptr) {
    emit(l.sink, TraceEvent{TraceEventKind::kLaneSubmit,
                            static_cast<GroupId>(lane), c.seq, now_us,
                            c.seq, l.inflight, admit_us, flow_id});
    emit(l.sink, TraceEvent{TraceEventKind::kLaneComplete,
                            static_cast<GroupId>(lane), c.seq, now_us,
                            c.seq, service, complete_us, flow_id});
  }
  return c;
}

TimeUs DeviceLanes::submit_chunks(std::uint32_t lane_hint,
                                  std::uint64_t chunks, TimeUs now_us) {
  TimeUs durable_us = now_us;
  const auto lanes = static_cast<std::uint32_t>(lanes_.size());
  for (std::uint64_t i = 0; i < chunks; ++i) {
    const std::uint32_t lane =
        static_cast<std::uint32_t>((lane_hint + i) % lanes);
    const LaneCompletion c = submit(lane, config_.chunk_bytes, now_us);
    durable_us = std::max(durable_us, c.complete_us);
  }
  return durable_us;
}

DeviceLanesStats DeviceLanes::stats() const {
  DeviceLanesStats out;
  out.queue_depth = config_.queue_depth;
  out.per_lane.reserve(lanes_.size());
  for (const Lane& lane : lanes_) {
    LockGuard g(lane.mu);
    out.per_lane.push_back(lane.stats);
    out.queue_depth_hist.merge_from(lane.depth_hist);
    out.submit_complete_us.merge_from(lane.latency_hist);
  }
  return out;
}

}  // namespace adapt::lss
