// SegmentPool: physical segment lifecycle for the LSS.
//
// Owns the segment array, the free list, and the per-group in-use counts,
// and drives the victim policy's incremental index notifications
// (on_seal / on_valid_delta / on_free) so the index can never drift from
// pool state. Allocation order is deterministic: segment ids are handed
// out ascending from a reverse-filled free stack, and reclaimed ids are
// reused LIFO — both load-bearing for the pinned fixed-seed regressions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "lss/config.h"
#include "lss/segment.h"
#include "lss/trace_sink.h"
#include "lss/victim_policy.h"

namespace adapt::lss {

class SegmentPool {
 public:
  /// Builds the pool and re-binds `victim`'s index to it; `victim` must
  /// outlive the pool and cannot be shared by two live pools.
  SegmentPool(const LssConfig& config, GroupId group_count,
              VictimPolicy& victim);

  SegmentPool(const SegmentPool&) = delete;
  SegmentPool& operator=(const SegmentPool&) = delete;

  /// Attaches a trace sink for segment alloc/seal events (nullptr
  /// detaches). `wall_us` points at the owner's simulated wall clock;
  /// it must outlive the pool (the engine binds its own member).
  void set_trace_sink(TraceSink* sink, const TimeUs* wall_us) noexcept {
    trace_ = sink;
    trace_wall_us_ = wall_us;
  }

  /// Pops a free segment, opens it for `g` at `vtime`, and returns its id.
  /// Throws std::runtime_error when the pool is exhausted.
  SegmentId allocate(GroupId g, VTime vtime);

  /// Seals `id` (fully written) and registers it as a GC candidate.
  void seal(SegmentId id, VTime vtime);

  /// Returns a fully drained segment to the free list, removing it from
  /// the victim index if it was sealed.
  void release(SegmentId id);

  /// Kills the live block in `loc`, notifying the victim index when the
  /// segment is sealed. Throws std::logic_error on double invalidation.
  void invalidate_slot(BlockLocation loc);

  /// Drain variant of invalidate_slot for GC's batched victim sweep: same
  /// pool-side effects, but skips the per-block victim-index notification.
  /// Legal only while the caller is draining the segment to zero and will
  /// release() it before the next selection or audit — every on_valid_delta
  /// implementation is a pure function of stored per-segment state, so an
  /// index that never saw the intermediate counts and is told of the
  /// removal via on_free ends bit-identical to one that tracked each step.
  void invalidate_slot_draining(BlockLocation loc);

  std::span<const Segment> segments() const noexcept { return segments_; }
  const Segment& segment(SegmentId id) const { return segments_[id]; }
  Segment& segment_mut(SegmentId id) { return segments_[id]; }
  /// Bounds-checked mutable access (test-only corruption hooks).
  Segment& at(SegmentId id) { return segments_.at(id); }

  // -- per-slot LBA arena (struct-of-arrays) --------------------------------
  // One pool-level array indexed segment * segment_blocks + slot; padding
  // and never-written slots hold kInvalidLba. Stored here instead of per
  // Segment so segment recycling never allocates.

  Lba slot_lba(SegmentId seg, std::uint32_t slot) const noexcept {
    return slot_lba_[static_cast<std::size_t>(seg) * segment_blocks_ + slot];
  }
  Lba slot_lba(BlockLocation loc) const noexcept {
    return slot_lba(loc.segment, loc.slot);
  }
  void set_slot_lba(SegmentId seg, std::uint32_t slot, Lba lba) noexcept {
    slot_lba_[static_cast<std::size_t>(seg) * segment_blocks_ + slot] = lba;
  }
  /// All slot LBAs of one segment, in slot order.
  std::span<const Lba> segment_lbas(SegmentId seg) const noexcept {
    return {slot_lba_.data() +
                static_cast<std::size_t>(seg) * segment_blocks_,
            segment_blocks_};
  }
  /// Bounds-checked mutable access (test-only corruption hooks).
  Lba& slot_lba_for_test(SegmentId seg, std::uint32_t slot) {
    return slot_lba_.at(static_cast<std::size_t>(seg) * segment_blocks_ +
                        slot);
  }

  std::uint32_t free_count() const noexcept { return free_count_; }
  std::size_t size() const noexcept { return segments_.size(); }

  /// In-use segments per group, maintained at allocate/release.
  const std::vector<std::uint32_t>& group_segments() const noexcept {
    return group_segments_;
  }

  /// Counters-tier self-audit; throws std::logic_error on violation.
  void check_counters() const;

 private:
  const LssConfig& config_;
  VictimPolicy& victim_;
  TraceSink* trace_ = nullptr;
  const TimeUs* trace_wall_us_ = nullptr;
  std::uint32_t segment_blocks_ = 0;
  std::vector<Segment> segments_;
  /// SoA arena: slot_lba_[segment * segment_blocks_ + slot].
  std::vector<Lba> slot_lba_;
  std::vector<SegmentId> free_list_;
  std::uint32_t free_count_ = 0;
  /// In-use segments per group, maintained at allocate/release.
  std::vector<std::uint32_t> group_segments_;
};

}  // namespace adapt::lss
