#include "lss/engine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace adapt::lss {
namespace {
constexpr std::uint64_t kUnmapped = std::numeric_limits<std::uint64_t>::max();
}  // namespace

LssEngine::LssEngine(const LssConfig& config, PlacementPolicy& policy,
                     VictimPolicy& victim, array::SsdArray* array,
                     std::uint64_t seed)
    : config_(config),
      policy_(policy),
      victim_(victim),
      array_(array),
      rng_(seed),
      audit_level_(audit::level_from_env(config.audit_level)) {
  config_.validate(policy.group_count());
  if (array_ != nullptr &&
      array_->config().num_streams < policy.group_count()) {
    throw std::invalid_argument("array has fewer streams than groups");
  }
  if (array_ != nullptr &&
      array_->config().chunk_bytes !=
          config_.chunk_blocks * config_.block_bytes) {
    throw std::invalid_argument("array chunk size mismatch");
  }

  const std::uint32_t total = config_.total_segments();
  segments_.resize(total);
  free_list_.reserve(total);
  for (std::uint32_t i = 0; i < total; ++i) {
    segments_[i].reset(config_.segment_blocks());
    // Push in reverse so allocation order is 0, 1, 2, ...
    free_list_.push_back(total - 1 - i);
  }
  free_count_ = total;
  victim_.bind_pool(total, config_.segment_blocks());

  groups_.resize(policy.group_count());
  group_segments_.assign(policy.group_count(), 0);
  metrics_.groups.resize(policy.group_count());
  primary_.assign(config_.logical_blocks, kUnmapped);
}

void LssEngine::attach_addressed_array(array::AddressedArray* addressed) {
  if (addressed != nullptr) {
    const auto& ac = addressed->config();
    if (ac.chunk_bytes != config_.chunk_blocks * config_.block_bytes ||
        ac.page_bytes != config_.block_bytes) {
      throw std::invalid_argument(
          "addressed array geometry does not match the LSS");
    }
    const std::uint64_t needed_chunks =
        static_cast<std::uint64_t>(config_.total_segments()) *
        config_.segment_chunks;
    if (ac.data_chunks < needed_chunks) {
      throw std::invalid_argument(
          "addressed array smaller than the LSS physical space");
    }
  }
  addressed_array_ = addressed;
}

std::uint64_t LssEngine::global_chunk_index(
    SegmentId seg, std::uint32_t slot) const noexcept {
  return static_cast<std::uint64_t>(seg) * config_.segment_chunks +
         slot / config_.chunk_blocks;
}

std::uint64_t LssEngine::pack(BlockLocation loc) noexcept {
  return (static_cast<std::uint64_t>(loc.segment) << 32) | loc.slot;
}

BlockLocation LssEngine::unpack(std::uint64_t packed) const noexcept {
  return BlockLocation{static_cast<SegmentId>(packed >> 32),
                       static_cast<std::uint32_t>(packed & 0xffffffffu)};
}

void LssEngine::write(Lba lba, std::uint32_t blocks, TimeUs now_us) {
  if (lba + blocks > config_.logical_blocks) {
    throw std::out_of_range("write beyond logical capacity");
  }
  for (std::uint32_t i = 0; i < blocks; ++i) {
    write_block(lba + i, now_us);
  }
}

void LssEngine::write_block(Lba lba, TimeUs now_us) {
  if (lba >= config_.logical_blocks) {
    throw std::out_of_range("write beyond logical capacity");
  }
  advance_time(now_us);
  const GroupId g = policy_.place_user_write(lba, vtime_);
  if (g >= group_count()) {
    throw std::logic_error("placement policy returned bad group");
  }
  invalidate(lba);
  append(g, lba, Source::kUser, now_us);
  ++vtime_;
  maybe_gc(now_us);
  audit_point();
  if (observer_ != nullptr) observer_->on_user_block(*this, now_us);
}

void LssEngine::read(Lba lba, std::uint32_t blocks, TimeUs now_us) {
  if (lba + blocks > config_.logical_blocks) {
    throw std::out_of_range("read beyond logical capacity");
  }
  advance_time(now_us);
  // Distinct chunks fetched by this request (chunk = segment id + chunk
  // index within it); consecutive blocks usually share a chunk.
  std::uint64_t last_chunk = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t i = 0; i < blocks; ++i) {
    ++metrics_.read_blocks;
    const std::uint64_t packed = primary_[lba + i];
    if (packed == kUnmapped) {
      ++metrics_.read_unmapped;
      continue;
    }
    const BlockLocation loc = unpack(packed);
    const GroupId group = segments_[loc.segment].group;
    const GroupState& gs = groups_[group];
    if (gs.open_seg == loc.segment && loc.slot >= gs.flushed_slots) {
      ++metrics_.read_buffer_hits;  // still pending in the open chunk
      continue;
    }
    const std::uint64_t chunk = global_chunk_index(loc.segment, loc.slot);
    if (chunk != last_chunk) {
      ++metrics_.read_chunk_fetches;
      last_chunk = chunk;
    }
  }
}

void LssEngine::advance_time(TimeUs now_us) {
  wall_us_ = std::max(wall_us_, now_us);
  // Fire expired deadlines earliest-first so multi-group interleavings are
  // deterministic.
  for (;;) {
    GroupId next = kInvalidGroup;
    TimeUs earliest = std::numeric_limits<TimeUs>::max();
    for (GroupId g = 0; g < group_count(); ++g) {
      const GroupState& gs = groups_[g];
      if (gs.deadline_armed && gs.chunk_deadline <= wall_us_ &&
          gs.chunk_deadline < earliest) {
        earliest = gs.chunk_deadline;
        next = g;
      }
    }
    if (next == kInvalidGroup) return;
    fire_deadline(next, earliest);
  }
}

void LssEngine::flush_all() {
  for (GroupId g = 0; g < group_count(); ++g) {
    if (pending_blocks(g) > 0) {
      if (config_.partial_write_mode == PartialWriteMode::kZeroPad) {
        pad_flush(g);
      } else {
        rmw_flush(g);
      }
    }
    groups_[g].deadline_armed = false;
  }
  audit_point();
}

std::uint32_t LssEngine::pending_blocks(GroupId g) const {
  const GroupState& gs = groups_.at(g);
  if (gs.open_seg == kInvalidSegment) return 0;
  return segments_[gs.open_seg].write_ptr - gs.flushed_slots;
}

std::uint32_t LssEngine::pending_unshadowed_valid(GroupId g) const {
  const GroupState& gs = groups_.at(g);
  if (gs.open_seg == kInvalidSegment) return 0;
  const Segment& seg = segments_[gs.open_seg];
  std::uint32_t n = 0;
  for (std::uint32_t slot = gs.flushed_slots; slot < seg.write_ptr; ++slot) {
    if (!seg.slot_valid.test(slot)) continue;
    const Lba lba = seg.slot_lba[slot];
    // Skip shadow copies hosted here and already-shadowed primaries.
    if (primary_[lba] != pack(BlockLocation{gs.open_seg, slot})) continue;
    if (shadow_.contains(lba)) continue;
    ++n;
  }
  return n;
}

std::vector<std::uint32_t> LssEngine::segments_per_group() const {
  // Maintained at open/free instead of scanning the pool.
  return group_segments_;
}

BlockLocation LssEngine::locate(Lba lba) const {
  if (lba >= primary_.size() || primary_[lba] == kUnmapped) return kNowhere;
  return unpack(primary_[lba]);
}

BlockLocation LssEngine::shadow_location(Lba lba) const {
  const auto it = shadow_.find(lba);
  return it == shadow_.end() ? kNowhere : it->second;
}

bool LssEngine::is_pending(Lba lba) const {
  const BlockLocation loc = locate(lba);
  if (loc == kNowhere) return false;
  const GroupId g = segments_[loc.segment].group;
  const GroupState& gs = groups_[g];
  return gs.open_seg == loc.segment && loc.slot >= gs.flushed_slots;
}

void LssEngine::append(GroupId g, Lba lba, Source source, TimeUs now_us) {
  GroupState& gs = groups_[g];
  if (gs.open_seg == kInvalidSegment) open_new_segment(g);
  const SegmentId seg_id = gs.open_seg;
  Segment& seg = segments_[seg_id];

  const std::uint32_t slot = seg.write_ptr++;
  seg.slot_lba[slot] = lba;
  seg.slot_valid.set(slot);
  ++seg.valid_count;

  const BlockLocation loc{seg_id, slot};
  GroupTraffic& gt = metrics_.groups[g];
  switch (source) {
    case Source::kUser:
      primary_[lba] = pack(loc);
      ++gt.user_blocks;
      ++metrics_.user_blocks;
      break;
    case Source::kGc:
      primary_[lba] = pack(loc);
      ++gt.gc_blocks;
      ++metrics_.gc_blocks;
      break;
    case Source::kShadow:
      shadow_[lba] = loc;
      ++gt.shadow_blocks;
      ++metrics_.shadow_blocks;
      break;
  }

  if (seg.write_ptr % config_.chunk_blocks == 0) {
    flush_boundary(g);
  } else if (source == Source::kUser && !gs.deadline_armed) {
    gs.deadline_armed = true;
    gs.chunk_deadline = now_us + config_.coalesce_window_us;
  }
}

void LssEngine::flush_boundary(GroupId g) {
  GroupState& gs = groups_[g];
  const Segment& seg = segments_[gs.open_seg];
  const std::uint32_t pending = seg.write_ptr - gs.flushed_slots;
  if (pending == config_.chunk_blocks) {
    flush_chunk(g, /*fill_blocks=*/config_.chunk_blocks, /*padded=*/false);
  } else {
    // Earlier sub-chunk RMW flushes persisted part of this chunk; the
    // completing tail is another RMW write.
    rmw_flush(g);
  }
}

void LssEngine::open_new_segment(GroupId g) {
  if (free_list_.empty()) {
    throw std::runtime_error(
        "LssEngine: segment pool exhausted (GC could not keep up)");
  }
  const SegmentId id = free_list_.back();
  free_list_.pop_back();
  --free_count_;
  Segment& seg = segments_[id];
  seg.reset(config_.segment_blocks());
  seg.free = false;
  seg.group = g;
  seg.create_vtime = vtime_;
  groups_[g].open_seg = id;
  groups_[g].flushed_slots = 0;
  ++group_segments_[g];
}

void LssEngine::seal_segment(GroupId g) {
  GroupState& gs = groups_[g];
  Segment& seg = segments_[gs.open_seg];
  seg.sealed = true;
  seg.seal_vtime = vtime_;
  ++metrics_.groups[g].segments_sealed;
  policy_.note_segment_sealed(g, vtime_);
  victim_.on_seal(gs.open_seg, seg.valid_count, seg.seal_vtime);
  gs.open_seg = kInvalidSegment;
  gs.flushed_slots = 0;
  gs.deadline_armed = false;
}

void LssEngine::free_segment(SegmentId id) {
  Segment& seg = segments_[id];
  ++metrics_.groups[seg.group].segments_reclaimed;
  if (seg.sealed) victim_.on_free(id);
  --group_segments_[seg.group];
  if (addressed_array_ != nullptr) {
    addressed_array_->trim_chunks(global_chunk_index(id, 0),
                                  config_.segment_chunks);
  }
  seg.reset(config_.segment_blocks());
  free_list_.push_back(id);
  ++free_count_;
}

void LssEngine::expire_shadows_in_range(GroupId g, std::uint32_t begin,
                                        std::uint32_t end) {
  const GroupState& gs = groups_[g];
  const Segment& seg = segments_[gs.open_seg];
  for (std::uint32_t slot = begin; slot < end; ++slot) {
    if (!seg.slot_valid.test(slot)) continue;
    const Lba lba = seg.slot_lba[slot];
    if (lba == kInvalidLba) continue;
    if (primary_[lba] == pack(BlockLocation{gs.open_seg, slot}) &&
        shadow_.contains(lba)) {
      expire_shadow(lba);
    }
  }
}

void LssEngine::flush_chunk(GroupId g, std::uint32_t fill_blocks,
                            bool padded) {
  GroupState& gs = groups_[g];
  Segment& seg = segments_[gs.open_seg];
  const SegmentId seg_id = gs.open_seg;
  const std::uint32_t chunk_begin = gs.flushed_slots;
  const std::uint32_t chunk_end = chunk_begin + config_.chunk_blocks;

  // Lazy-append originals in this chunk are now durable: expire shadows.
  expire_shadows_in_range(g, chunk_begin, chunk_end);

  gs.flushed_slots = chunk_end;
  GroupTraffic& gt = metrics_.groups[g];
  if (padded) {
    ++gt.padded_flushes;
    gt.padded_fill_blocks += fill_blocks;
    const std::uint32_t pad = config_.chunk_blocks - fill_blocks;
    gt.padding_blocks += pad;
    metrics_.padding_blocks += pad;
  } else {
    ++gt.full_flushes;
  }
  ++chunks_flushed_;
  if (array_ != nullptr) {
    array_->write_chunk(g, static_cast<std::uint64_t>(fill_blocks) *
                               config_.block_bytes);
  }
  if (addressed_array_ != nullptr) {
    addressed_array_->write_chunk(global_chunk_index(seg_id, chunk_begin),
                                  g);
  }
  if (seg.write_ptr == config_.segment_blocks()) {
    seal_segment(g);
  } else {
    gs.deadline_armed = false;
  }
}

void LssEngine::rmw_flush(GroupId g) {
  GroupState& gs = groups_[g];
  Segment& seg = segments_[gs.open_seg];
  const std::uint32_t pending = seg.write_ptr - gs.flushed_slots;
  if (pending == 0) return;
  if (pending >= config_.chunk_blocks) {
    throw std::logic_error("rmw_flush with a full chunk pending");
  }
  expire_shadows_in_range(g, gs.flushed_slots, seg.write_ptr);

  const std::uint32_t chunk_begin_slot = gs.flushed_slots;
  const std::uint32_t offset_in_chunk =
      chunk_begin_slot % config_.chunk_blocks;
  GroupTraffic& gt = metrics_.groups[g];
  ++gt.rmw_flushes;
  ++metrics_.rmw_flushes;
  gt.rmw_blocks += pending;
  metrics_.rmw_blocks += pending;
  // Small-write parity update reads the old data chunk and old parity.
  metrics_.rmw_read_blocks += 2ull * config_.chunk_blocks;
  if (array_ != nullptr) {
    array_->write_partial(g, static_cast<std::uint64_t>(pending) *
                                 config_.block_bytes);
  }
  if (addressed_array_ != nullptr) {
    addressed_array_->write_partial(
        global_chunk_index(gs.open_seg, chunk_begin_slot), offset_in_chunk,
        pending, g);
  }
  gs.flushed_slots = seg.write_ptr;
  if (seg.write_ptr == config_.segment_blocks()) {
    seal_segment(g);
  } else {
    gs.deadline_armed = false;
  }
}

void LssEngine::pad_flush(GroupId g) {
  GroupState& gs = groups_[g];
  Segment& seg = segments_[gs.open_seg];
  const std::uint32_t pending = seg.write_ptr - gs.flushed_slots;
  if (pending == 0 || pending >= config_.chunk_blocks) {
    throw std::logic_error("pad_flush with no partial chunk");
  }
  const std::uint32_t chunk_end = gs.flushed_slots + config_.chunk_blocks;
  // Dead padding slots: allocated, never valid.
  for (std::uint32_t slot = seg.write_ptr; slot < chunk_end; ++slot) {
    seg.slot_lba[slot] = kInvalidLba;
    seg.slot_valid.reset(slot);
  }
  seg.write_ptr = chunk_end;
  flush_chunk(g, /*fill_blocks=*/pending, /*padded=*/true);
}

void LssEngine::fire_deadline(GroupId g, TimeUs now_us) {
  GroupState& gs = groups_[g];
  gs.deadline_armed = false;
  const std::uint32_t pending = pending_blocks(g);
  if (pending == 0) return;
  // Only live, not-yet-shadowed blocks carry a durability obligation:
  // overwritten pending blocks are stale and shadowed ones are already on
  // disk, so a chunk with none of either can keep waiting for more data.
  if (pending_unshadowed_valid(g) == 0) return;

  if (config_.partial_write_mode == PartialWriteMode::kReadModifyWrite) {
    // RMW persists sub-chunks directly; aggregation targets padding and
    // does not apply.
    rmw_flush(g);
    return;
  }

  AggregationDecision decision;
  if (hook_ != nullptr) {
    decision = hook_->on_chunk_deadline(g, *this);
  }
  if (decision.aggregate() && decision.donor != decision.host &&
      decision.donor < group_count() && decision.host < group_count() &&
      (g == decision.donor || g == decision.host)) {
    shadow_append(decision.donor, decision.host, now_us);
    // The constructed chunk must persist now: it carries either the shadow
    // copies (g == donor) or g's own pending blocks (g == host).
    if (pending_blocks(decision.host) > 0) pad_flush(decision.host);
  } else {
    pad_flush(g);
  }
}

void LssEngine::shadow_append(GroupId g, GroupId host, TimeUs now_us) {
  GroupState& gs = groups_[g];
  if (gs.open_seg == kInvalidSegment) return;  // donor has nothing pending
  const Segment& seg = segments_[gs.open_seg];

  // Collect pending primaries of g that are valid and not yet shadowed.
  std::vector<Lba> to_shadow;
  to_shadow.reserve(seg.write_ptr - gs.flushed_slots);
  for (std::uint32_t slot = gs.flushed_slots; slot < seg.write_ptr; ++slot) {
    if (!seg.slot_valid.test(slot)) continue;
    const Lba lba = seg.slot_lba[slot];
    if (primary_[lba] != pack(BlockLocation{gs.open_seg, slot})) continue;
    if (shadow_.contains(lba)) continue;
    to_shadow.push_back(lba);
  }

  for (const Lba lba : to_shadow) {
    append(host, lba, Source::kShadow, now_us);
  }
  // Originals stay pending without a deadline (they are durable via their
  // shadows); a future user append re-arms the timer.
  gs.deadline_armed = false;
}

void LssEngine::invalidate(Lba lba) {
  if (primary_[lba] != kUnmapped) {
    invalidate_slot(unpack(primary_[lba]));
    primary_[lba] = kUnmapped;
  }
  const auto it = shadow_.find(lba);
  if (it != shadow_.end()) {
    invalidate_slot(it->second);
    shadow_.erase(it);
  }
}

void LssEngine::invalidate_slot(BlockLocation loc) {
  Segment& seg = segments_[loc.segment];
  if (!seg.slot_valid.test(loc.slot)) {
    throw std::logic_error("double invalidation of a slot");
  }
  seg.slot_valid.reset(loc.slot);
  --seg.valid_count;
  if (seg.sealed) {
    victim_.on_valid_delta(loc.segment, seg.valid_count + 1,
                           seg.valid_count);
  }
}

void LssEngine::expire_shadow(Lba lba) {
  const auto it = shadow_.find(lba);
  if (it == shadow_.end()) return;
  invalidate_slot(it->second);
  shadow_.erase(it);
}

bool LssEngine::gc_step(TimeUs now_us, std::uint32_t watermark) {
  if (free_count_ >= watermark) return false;
  run_gc_once(now_us);
  audit_point();
  return true;
}

std::uint64_t LssEngine::chunks_flushed() const noexcept {
  // Running counter maintained in flush_chunk; cross-checked against the
  // per-group flush totals in check_invariants.
  return chunks_flushed_;
}

void LssEngine::maybe_gc(TimeUs now_us) {
  const std::uint32_t watermark = config_.free_segment_reserve + group_count();
  std::uint32_t spins = 0;
  while (free_count_ < watermark) {
    run_gc_once(now_us);
    if (++spins > segments_.size() * 4) {
      throw std::runtime_error("LssEngine: GC made no progress");
    }
  }
}

void LssEngine::run_gc_once(TimeUs now_us) {
  // The victim index is maintained incrementally through seal / valid-delta
  // / free notifications, so selection needs no candidate rebuild or pool
  // scan.
  const SegmentId victim = victim_.select(segments_, vtime_, rng_);
  if (victim == kInvalidSegment) {
    throw std::runtime_error("LssEngine: no GC victim available");
  }
  ++metrics_.gc_runs;
  Segment& v = segments_[victim];

  for (std::uint32_t slot = 0; slot < v.write_ptr; ++slot) {
    // Skip fully dead 64-slot words in one comparison. Re-checked at every
    // word boundary because forced flushes below can clear later bits.
    if ((slot % PackedBitmap::kWordBits) == 0 &&
        v.slot_valid.word(slot / PackedBitmap::kWordBits) == 0) {
      slot += PackedBitmap::kWordBits - 1;
      continue;
    }
    if (!v.slot_valid.test(slot)) continue;
    const Lba lba = v.slot_lba[slot];
    const BlockLocation here{victim, slot};
    const auto sh = shadow_.find(lba);
    if (sh != shadow_.end() && sh->second == here) {
      // A live shadow inside a sealed victim: the lazy original is still
      // pending in some open chunk. Force that chunk out (padded), which
      // expires this shadow, then skip the now-dead slot.
      const BlockLocation prim = unpack(primary_[lba]);
      const GroupId prim_group = segments_[prim.segment].group;
      ++metrics_.forced_lazy_flushes;
      pad_flush(prim_group);
      if (v.slot_valid.test(slot)) {
        throw std::logic_error("forced flush did not expire shadow");
      }
      continue;
    }
    if (primary_[lba] != pack(here)) {
      throw std::logic_error("valid slot not referenced by block map");
    }
    const GroupId target = policy_.place_gc_rewrite(lba, v.group, vtime_);
    if (target >= group_count()) {
      throw std::logic_error("placement policy returned bad GC group");
    }
    // Invalidate the victim copy, then append the migrated one. The victim
    // stays in the index (its buckets track the drain) until free_segment
    // reports on_free.
    v.slot_valid.reset(slot);
    --v.valid_count;
    victim_.on_valid_delta(victim, v.valid_count + 1, v.valid_count);
    primary_[lba] = kUnmapped;
    append(target, lba, Source::kGc, now_us);
    ++metrics_.gc_migrated_blocks;
  }

  if (v.valid_count != 0) {
    throw std::logic_error("victim still has valid blocks after GC");
  }
  policy_.note_segment_reclaimed(v.group, v.create_vtime, vtime_);
  free_segment(victim);
}

void LssEngine::check_counters() const {
  if (free_list_.size() != free_count_) {
    throw std::logic_error("free list size != free counter");
  }
  std::uint64_t in_use = 0;
  for (const std::uint32_t n : group_segments_) in_use += n;
  if (in_use + free_count_ != segments_.size()) {
    throw std::logic_error("per-group + free segment counters != pool size");
  }
  if (vtime_ != metrics_.user_blocks) {
    throw std::logic_error("vtime desynchronised from user block counter");
  }
  if (metrics_.gc_blocks != metrics_.gc_migrated_blocks) {
    throw std::logic_error("gc append and migration counters disagree");
  }
  GroupTraffic totals;
  std::uint64_t flushes = 0;
  std::uint64_t pending = 0;
  for (GroupId g = 0; g < group_count(); ++g) {
    const GroupTraffic& gt = metrics_.groups[g];
    totals.user_blocks += gt.user_blocks;
    totals.gc_blocks += gt.gc_blocks;
    totals.shadow_blocks += gt.shadow_blocks;
    totals.padding_blocks += gt.padding_blocks;
    totals.rmw_blocks += gt.rmw_blocks;
    totals.rmw_flushes += gt.rmw_flushes;
    flushes += gt.full_flushes + gt.padded_flushes;

    const GroupState& gs = groups_[g];
    if (gs.deadline_armed && gs.open_seg == kInvalidSegment) {
      throw std::logic_error("deadline armed without an open segment");
    }
    if (gs.open_seg == kInvalidSegment) continue;
    const Segment& seg = segments_[gs.open_seg];
    if (seg.free || seg.sealed || seg.group != g) {
      throw std::logic_error("open segment in an inconsistent state");
    }
    if (gs.flushed_slots > seg.write_ptr ||
        seg.write_ptr > config_.segment_blocks()) {
      throw std::logic_error("open segment pointers out of order");
    }
    if (config_.partial_write_mode == PartialWriteMode::kZeroPad &&
        gs.flushed_slots % config_.chunk_blocks != 0) {
      throw std::logic_error("zero-pad flush boundary not chunk-aligned");
    }
    pending += seg.write_ptr - gs.flushed_slots;
  }
  if (totals.user_blocks != metrics_.user_blocks ||
      totals.gc_blocks != metrics_.gc_blocks ||
      totals.shadow_blocks != metrics_.shadow_blocks ||
      totals.padding_blocks != metrics_.padding_blocks ||
      totals.rmw_blocks != metrics_.rmw_blocks ||
      totals.rmw_flushes != metrics_.rmw_flushes) {
    throw std::logic_error("per-group traffic != global traffic counters");
  }
  if (flushes != chunks_flushed_) {
    throw std::logic_error("chunks_flushed counter out of sync");
  }
  // The write-accounting identity: every block the metrics claim was
  // appended either reached the media (full/padded chunks + RMW partials)
  // or is still pending in an open chunk.
  const std::uint64_t appended = metrics_.total_blocks();
  const std::uint64_t media =
      chunks_flushed_ * config_.chunk_blocks + metrics_.rmw_blocks;
  if (appended != media + pending) {
    throw std::logic_error("write-accounting identity broken");
  }
}

void LssEngine::check_invariants(audit::Level level) const {
  if (level == audit::Level::kOff) return;
  check_counters();
  if (level != audit::Level::kFull) return;
  std::uint64_t live_primaries = 0;
  for (Lba lba = 0; lba < primary_.size(); ++lba) {
    if (primary_[lba] == kUnmapped) continue;
    ++live_primaries;
    const BlockLocation loc = unpack(primary_[lba]);
    const Segment& seg = segments_.at(loc.segment);
    if (seg.free) throw std::logic_error("primary maps into a free segment");
    if (loc.slot >= seg.write_ptr) {
      throw std::logic_error("primary maps past the write pointer");
    }
    if (seg.slot_lba[loc.slot] != lba) {
      throw std::logic_error("slot lba does not match block map");
    }
    if (!seg.slot_valid.test(loc.slot)) {
      throw std::logic_error("primary maps to an invalid slot");
    }
  }
  for (const auto& [lba, loc] : shadow_) {
    const Segment& seg = segments_.at(loc.segment);
    if (seg.free) throw std::logic_error("shadow maps into a free segment");
    if (seg.slot_lba[loc.slot] != lba || !seg.slot_valid.test(loc.slot)) {
      throw std::logic_error("shadow slot inconsistent");
    }
    if (primary_[lba] == kUnmapped) {
      throw std::logic_error("shadow without a live primary");
    }
    // §3.3 pairing rules: the shadow lives in another group's chunk, and
    // only while its lazy-append original is still pending.
    const BlockLocation prim = unpack(primary_[lba]);
    if (segments_.at(prim.segment).group == seg.group) {
      throw std::logic_error("shadow hosted by its original's own group");
    }
    if (!is_pending(lba)) {
      throw std::logic_error("shadow outlived its persisted original");
    }
  }
  std::uint64_t valid_total = 0;
  std::uint32_t free_seen = 0;
  std::vector<std::uint32_t> group_counts(group_count(), 0);
  for (SegmentId id = 0; id < segments_.size(); ++id) {
    const Segment& seg = segments_[id];
    // Victim-index membership must mirror pool state exactly: sealed
    // in-use segments are candidates, everything else is not.
    const bool should_be_candidate = !seg.free && seg.sealed;
    if (victim_.is_candidate(id) != should_be_candidate) {
      throw std::logic_error(
          should_be_candidate
              ? "sealed segment missing from the victim index"
              : "victim index holds a free or open segment");
    }
    if (seg.free) {
      ++free_seen;
      continue;
    }
    if (seg.group < group_counts.size()) ++group_counts[seg.group];
    const std::uint32_t valid_here = static_cast<std::uint32_t>(
        seg.slot_valid.count(0, seg.write_ptr));
    if (valid_here != seg.valid_count) {
      throw std::logic_error("segment valid_count out of sync");
    }
    valid_total += valid_here;
  }
  if (free_seen != free_count_) {
    throw std::logic_error("free segment count out of sync");
  }
  if (valid_total != live_primaries + shadow_.size()) {
    throw std::logic_error("valid slots != primaries + shadows");
  }
  if (group_counts != group_segments_) {
    throw std::logic_error("per-group segment counters out of sync");
  }
}

}  // namespace adapt::lss
