#include "lss/engine.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/annotations.h"

namespace adapt::lss {
namespace {

LssConfig validated(LssConfig config, GroupId group_count) {
  config.validate(group_count);
  return config;
}

array::SsdArray* checked_array(array::SsdArray* array, const LssConfig& config,
                               GroupId group_count) {
  if (array != nullptr && array->config().num_streams < group_count) {
    throw std::invalid_argument("array has fewer streams than groups");
  }
  if (array != nullptr &&
      array->config().chunk_bytes != config.chunk_blocks * config.block_bytes) {
    throw std::invalid_argument("array chunk size mismatch");
  }
  return array;
}

}  // namespace

LssEngine::LssEngine(const LssConfig& config, PlacementPolicy& policy,
                     VictimPolicy& victim, array::SsdArray* array,
                     std::uint64_t seed)
    : config_(validated(config, policy.group_count())),
      policy_(policy),
      victim_(victim),
      array_(checked_array(array, config_, policy.group_count())),
      rng_(seed),
      audit_level_(audit::level_from_env(config.audit_level)),
      pool_(config_, policy.group_count(), victim),
      // Live shadows are bounded by the pending blocks across open chunks:
      // pre-sizing to group_count * chunk_blocks keeps the flat shadow
      // table rehash-free in steady state.
      map_(config_.logical_blocks,
           static_cast<std::size_t>(policy.group_count()) *
               config_.chunk_blocks),
      writer_(config_, policy.group_count(), pool_, map_, policy, metrics_,
              vtime_, wall_us_, array_),
      gc_(config_, pool_, map_, writer_, policy, victim, metrics_, rng_,
          vtime_) {
  metrics_.groups.resize(policy.group_count());
  map_.bind_lifetime(vtime_, &metrics_.block_lifetime);
}

void LssEngine::attach_addressed_array(array::AddressedArray* addressed) {
  if (addressed != nullptr) {
    const auto& ac = addressed->config();
    if (ac.chunk_bytes != config_.chunk_blocks * config_.block_bytes ||
        ac.page_bytes != config_.block_bytes) {
      throw std::invalid_argument(
          "addressed array geometry does not match the LSS");
    }
    const std::uint64_t needed_chunks =
        static_cast<std::uint64_t>(config_.total_segments()) *
        config_.segment_chunks;
    if (ac.data_chunks < needed_chunks) {
      throw std::invalid_argument(
          "addressed array smaller than the LSS physical space");
    }
  }
  writer_.set_addressed_array(addressed);
}

void LssEngine::write(Lba lba, std::uint32_t blocks, TimeUs now_us) {
  if (lba + blocks > config_.logical_blocks) {
    throw std::out_of_range("write beyond logical capacity");
  }
  for (std::uint32_t i = 0; i < blocks; ++i) {
    write_block(lba + i, now_us);
  }
}

ADAPT_HOT void LssEngine::write_block(Lba lba, TimeUs now_us) {
  if (lba >= config_.logical_blocks) {
    throw std::out_of_range("write beyond logical capacity");
  }
  // Start the primary-map line towards the cache while time advance and
  // placement run; invalidate() below reads and rewrites it.
  map_.prefetch_primary(lba);
  advance_time(now_us);
  const GroupId g = policy_.place_user_write(lba, vtime_);
  if (g >= group_count()) {
    throw std::logic_error("placement policy returned bad group");
  }
  // Guarded at the call site: the compiler will not sink the event's
  // stack stores behind emit()'s null check on its own, and this runs
  // once per user block.
  if (trace_ != nullptr) {
    emit(trace_, TraceEvent{TraceEventKind::kUserWrite, g, vtime_, wall_us_,
                            lba, 0, 0});
  }
  map_.invalidate(lba, pool_);
  writer_.append(g, lba, AppendSource::kUser, now_us);
  ++vtime_;
  gc_.maybe_gc(now_us);
  audit_point();
  if (observer_ != nullptr) observer_->on_user_block(*this, now_us);
}

ADAPT_HOT void LssEngine::read(Lba lba, std::uint32_t blocks, TimeUs now_us) {
  if (lba + blocks > config_.logical_blocks) {
    throw std::out_of_range("read beyond logical capacity");
  }
  advance_time(now_us);
  // Distinct chunks fetched by this request (chunk = segment id + chunk
  // index within it); consecutive blocks usually share a chunk.
  std::uint64_t last_chunk = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t i = 0; i < blocks; ++i) {
    ++metrics_.read_blocks;
    if (!map_.is_mapped(lba + i)) {
      ++metrics_.read_unmapped;
      continue;
    }
    const BlockLocation loc = map_.locate(lba + i);
    const GroupId group = pool_.segment(loc.segment).group;
    if (writer_.slot_pending(group, loc)) {
      ++metrics_.read_buffer_hits;  // still pending in the open chunk
      continue;
    }
    const std::uint64_t chunk =
        writer_.global_chunk_index(loc.segment, loc.slot);
    if (chunk != last_chunk) {
      ++metrics_.read_chunk_fetches;
      last_chunk = chunk;
    }
  }
}

ADAPT_HOT void LssEngine::advance_time(TimeUs now_us) {
  wall_us_ = std::max(wall_us_, now_us);
  // One-compare fast path: the writer's earliest-deadline bound is never
  // stale high, so nothing can be due when it lies in the future.
  if (writer_.earliest_deadline() > wall_us_) return;
  // Fire expired deadlines earliest-first so multi-group interleavings are
  // deterministic.
  for (;;) {
    GroupId next = kInvalidGroup;
    TimeUs earliest = std::numeric_limits<TimeUs>::max();
    for (GroupId g = 0; g < group_count(); ++g) {
      if (writer_.deadline_armed(g) &&
          writer_.chunk_deadline(g) <= wall_us_ &&
          writer_.chunk_deadline(g) < earliest) {
        earliest = writer_.chunk_deadline(g);
        next = g;
      }
    }
    if (next == kInvalidGroup) break;
    fire_deadline(next, earliest);
  }
  writer_.recompute_earliest_deadline();
}

void LssEngine::flush_all() {
  for (GroupId g = 0; g < group_count(); ++g) {
    if (writer_.pending_blocks(g) > 0) {
      if (config_.partial_write_mode == PartialWriteMode::kZeroPad) {
        writer_.pad_flush(g);
      } else {
        writer_.rmw_flush(g);
      }
    }
    writer_.disarm_deadline(g);
  }
  audit_point();
}

bool LssEngine::is_pending(Lba lba) const {
  const BlockLocation loc = map_.locate(lba);
  if (loc == kNowhere) return false;
  const GroupId g = pool_.segment(loc.segment).group;
  return writer_.slot_pending(g, loc);
}

void LssEngine::fire_deadline(GroupId g, TimeUs now_us) {
  writer_.disarm_deadline(g);
  const std::uint32_t pending = writer_.pending_blocks(g);
  if (pending == 0) return;
  // Only live, not-yet-shadowed blocks carry a durability obligation:
  // overwritten pending blocks are stale and shadowed ones are already on
  // disk, so a chunk with none of either can keep waiting for more data.
  if (writer_.pending_unshadowed_valid(g) == 0) return;

  if (config_.partial_write_mode == PartialWriteMode::kReadModifyWrite) {
    // RMW persists sub-chunks directly; aggregation targets padding and
    // does not apply.
    writer_.rmw_flush(g);
    return;
  }

  AggregationDecision decision;
  if (hook_ != nullptr) {
    decision = hook_->on_chunk_deadline(g, *this);
  }
  if (decision.aggregate() && decision.donor != decision.host &&
      decision.donor < group_count() && decision.host < group_count() &&
      (g == decision.donor || g == decision.host)) {
    writer_.shadow_append(decision.donor, decision.host, now_us);
    // The constructed chunk must persist now: it carries either the shadow
    // copies (g == donor) or g's own pending blocks (g == host).
    if (writer_.pending_blocks(decision.host) > 0) {
      writer_.pad_flush(decision.host);
    }
  } else {
    writer_.pad_flush(g);
  }
}

bool LssEngine::gc_step(TimeUs now_us, std::uint32_t watermark) {
  if (!gc_.step(now_us, watermark)) return false;
  audit_point();
  return true;
}

void LssEngine::check_counters() const {
  pool_.check_counters();
  map_.check_counters();
  writer_.check_counters();
  gc_.check_counters();
  if (vtime_ != metrics_.user_blocks) {
    throw std::logic_error("vtime desynchronised from user block counter");
  }
}

void LssEngine::check_invariants(audit::Level level) const {
  if (level == audit::Level::kOff) return;
  check_counters();
  if (level != audit::Level::kFull) return;
  const std::span<const Segment> segments = pool_.segments();
  std::uint64_t live_primaries = 0;
  for (Lba lba = 0; lba < map_.logical_blocks(); ++lba) {
    if (!map_.is_mapped(lba)) continue;
    ++live_primaries;
    const BlockLocation loc = map_.locate(lba);
    if (loc.segment >= segments.size()) {
      throw std::logic_error("primary maps outside the segment pool");
    }
    const Segment& seg = segments[loc.segment];
    if (seg.free) throw std::logic_error("primary maps into a free segment");
    if (loc.slot >= seg.write_ptr) {
      throw std::logic_error("primary maps past the write pointer");
    }
    if (pool_.slot_lba(loc) != lba) {
      throw std::logic_error("slot lba does not match block map");
    }
    if (!seg.slot_valid.test(loc.slot)) {
      throw std::logic_error("primary maps to an invalid slot");
    }
  }
  for (const auto [lba, loc] : map_.shadows()) {
    if (loc.segment >= segments.size()) {
      throw std::logic_error("shadow maps outside the segment pool");
    }
    const Segment& seg = segments[loc.segment];
    if (seg.free) throw std::logic_error("shadow maps into a free segment");
    if (pool_.slot_lba(loc) != lba || !seg.slot_valid.test(loc.slot)) {
      throw std::logic_error("shadow slot inconsistent");
    }
    if (!map_.is_mapped(lba)) {
      throw std::logic_error("shadow without a live primary");
    }
    // §3.3 pairing rules: the shadow lives in another group's chunk, and
    // only while its lazy-append original is still pending.
    const BlockLocation prim = map_.locate(lba);
    if (segments[prim.segment].group == seg.group) {
      throw std::logic_error("shadow hosted by its original's own group");
    }
    if (!is_pending(lba)) {
      throw std::logic_error("shadow outlived its persisted original");
    }
  }
  std::uint64_t valid_total = 0;
  std::uint32_t free_seen = 0;
  std::vector<std::uint32_t> group_counts(group_count(), 0);
  for (SegmentId id = 0; id < segments.size(); ++id) {
    const Segment& seg = segments[id];
    // Victim-index membership must mirror pool state exactly: sealed
    // in-use segments are candidates, everything else is not.
    const bool should_be_candidate = !seg.free && seg.sealed;
    if (victim_.is_candidate(id) != should_be_candidate) {
      throw std::logic_error(
          should_be_candidate
              ? "sealed segment missing from the victim index"
              : "victim index holds a free or open segment");
    }
    if (seg.free) {
      ++free_seen;
      continue;
    }
    if (seg.group < group_counts.size()) ++group_counts[seg.group];
    const std::uint32_t valid_here = static_cast<std::uint32_t>(
        seg.slot_valid.count(0, seg.write_ptr));
    if (valid_here != seg.valid_count) {
      throw std::logic_error("segment valid_count out of sync");
    }
    valid_total += valid_here;
  }
  if (free_seen != pool_.free_count()) {
    throw std::logic_error("free segment count out of sync");
  }
  if (valid_total != live_primaries + map_.live_shadow_count()) {
    throw std::logic_error("valid slots != primaries + shadows");
  }
  if (group_counts != pool_.group_segments()) {
    throw std::logic_error("per-group segment counters out of sync");
  }
}

}  // namespace adapt::lss
