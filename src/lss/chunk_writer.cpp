#include "lss/chunk_writer.h"

#include <stdexcept>

#include "common/annotations.h"

namespace adapt::lss {

ChunkWriter::ChunkWriter(const LssConfig& config, GroupId group_count,
                         SegmentPool& pool, BlockMap& map,
                         PlacementPolicy& policy, LssMetrics& metrics,
                         const VTime& vtime, const TimeUs& wall_us,
                         array::SsdArray* array)
    : config_(config),
      pool_(pool),
      map_(map),
      policy_(policy),
      metrics_(metrics),
      vtime_(vtime),
      wall_us_(wall_us),
      array_(array) {
  groups_.resize(group_count);
  // Pending appends fit in one segment; reserving once keeps
  // shadow_append allocation-free in steady state.
  shadow_scratch_.reserve(config_.segment_blocks());
}

std::uint32_t ChunkWriter::pending_blocks(GroupId g) const {
  const GroupState& gs = groups_.at(g);
  if (gs.open_seg == kInvalidSegment) return 0;
  return pool_.segment(gs.open_seg).write_ptr - gs.flushed_slots;
}

std::uint32_t ChunkWriter::pending_unshadowed_valid(GroupId g) const {
  const GroupState& gs = groups_.at(g);
  if (gs.open_seg == kInvalidSegment) return 0;
  const Segment& seg = pool_.segment(gs.open_seg);
  std::uint32_t n = 0;
  for (std::uint32_t slot = gs.flushed_slots; slot < seg.write_ptr; ++slot) {
    if (!seg.slot_valid.test(slot)) continue;
    const Lba lba = pool_.slot_lba(gs.open_seg, slot);
    // Skip shadow copies hosted here and already-shadowed primaries.
    if (!map_.primary_is(lba, BlockLocation{gs.open_seg, slot})) continue;
    if (map_.has_shadow(lba)) continue;
    ++n;
  }
  return n;
}

ADAPT_HOT void ChunkWriter::append(GroupId g, Lba lba, AppendSource source,
                                   TimeUs now_us, GroupId from_group) {
  GroupState& gs = groups_[g];
  if (gs.open_seg == kInvalidSegment) open_group_segment(g);
  const SegmentId seg_id = gs.open_seg;
  Segment& seg = pool_.segment_mut(seg_id);

  const std::uint32_t slot = seg.write_ptr++;
  pool_.set_slot_lba(seg_id, slot, lba);
  seg.slot_valid.set(slot);
  ++seg.valid_count;

  const BlockLocation loc{seg_id, slot};
  GroupTraffic& gt = metrics_.groups[g];
  switch (source) {
    case AppendSource::kUser:
      map_.set_primary(lba, loc);
      ++gt.user_blocks;
      ++metrics_.user_blocks;
      break;
    case AppendSource::kGc:
      map_.set_primary(lba, loc);
      ++gt.gc_blocks;
      ++metrics_.gc_blocks;
      if (from_group >= group_count()) {
        throw std::logic_error("GC append without a valid source group");
      }
      gt.count_gc_from(from_group, group_count());
      break;
    case AppendSource::kShadow:
      map_.set_shadow(lba, loc);
      ++gt.shadow_blocks;
      ++metrics_.shadow_blocks;
      break;
  }

  if (seg.write_ptr == gs.next_boundary) {
    gs.next_boundary += config_.chunk_blocks;
    flush_boundary(g);
  } else if (source == AppendSource::kUser && !gs.deadline_armed) {
    gs.deadline_armed = true;
    gs.chunk_deadline = now_us + config_.coalesce_window_us;
    if (gs.chunk_deadline < earliest_deadline_) {
      earliest_deadline_ = gs.chunk_deadline;
    }
  }
}

void ChunkWriter::flush_boundary(GroupId g) {
  GroupState& gs = groups_[g];
  const Segment& seg = pool_.segment(gs.open_seg);
  const std::uint32_t pending = seg.write_ptr - gs.flushed_slots;
  if (pending == config_.chunk_blocks) {
    flush_chunk(g, /*fill_blocks=*/config_.chunk_blocks, /*padded=*/false);
  } else {
    // Earlier sub-chunk RMW flushes persisted part of this chunk; the
    // completing tail is another RMW write.
    rmw_flush(g);
  }
}

void ChunkWriter::open_group_segment(GroupId g) {
  GroupState& gs = groups_[g];
  gs.open_seg = pool_.allocate(g, vtime_);
  gs.flushed_slots = 0;
  gs.next_boundary = config_.chunk_blocks;
}

void ChunkWriter::seal_group_segment(GroupId g) {
  GroupState& gs = groups_[g];
  ++metrics_.groups[g].segments_sealed;
  policy_.note_segment_sealed(g, vtime_);
  pool_.seal(gs.open_seg, vtime_);
  gs.open_seg = kInvalidSegment;
  gs.flushed_slots = 0;
  gs.deadline_armed = false;
}

void ChunkWriter::trim_segment(SegmentId id) {
  if (addressed_array_ != nullptr) {
    addressed_array_->trim_chunks(global_chunk_index(id, 0),
                                  config_.segment_chunks);
  }
}

ADAPT_HOT void ChunkWriter::expire_shadows_in_range(GroupId g,
                                                    std::uint32_t begin,
                                                    std::uint32_t end) {
  // With no live shadows, the scan can expire nothing: skip the per-slot
  // primary_ probing entirely. Policies that never aggregate (and ADAPT
  // between aggregation bursts) hit this on every flush.
  if (map_.live_shadow_count() == 0) return;
  const GroupState& gs = groups_[g];
  const Segment& seg = pool_.segment(gs.open_seg);
  std::uint64_t expired = 0;
  for (std::uint32_t slot = begin; slot < end; ++slot) {
    if (!seg.slot_valid.test(slot)) continue;
    const Lba lba = pool_.slot_lba(gs.open_seg, slot);
    if (lba == kInvalidLba) continue;
    if (map_.primary_is(lba, BlockLocation{gs.open_seg, slot}) &&
        map_.has_shadow(lba)) {
      map_.expire_shadow(lba, pool_);
      ++expired;
    }
  }
  if (trace_ != nullptr && expired > 0) {
    emit(trace_, TraceEvent{TraceEventKind::kShadowExpire, g, vtime_,
                            wall_us_, expired, 0, 0});
  }
}

ADAPT_HOT void ChunkWriter::flush_chunk(GroupId g, std::uint32_t fill_blocks,
                                        bool padded) {
  GroupState& gs = groups_[g];
  const SegmentId seg_id = gs.open_seg;
  const Segment& seg = pool_.segment(seg_id);
  const std::uint32_t chunk_begin = gs.flushed_slots;
  const std::uint32_t chunk_end = chunk_begin + config_.chunk_blocks;

  // Lazy-append originals in this chunk are now durable: expire shadows.
  expire_shadows_in_range(g, chunk_begin, chunk_end);

  gs.flushed_slots = chunk_end;
  GroupTraffic& gt = metrics_.groups[g];
  if (padded) {
    ++gt.padded_flushes;
    gt.padded_fill_blocks += fill_blocks;
    const std::uint32_t pad = config_.chunk_blocks - fill_blocks;
    gt.padding_blocks += pad;
    metrics_.padding_blocks += pad;
  } else {
    ++gt.full_flushes;
  }
  ++chunks_flushed_;
  if (flush_collector_ != nullptr) {
    // Drained every batch by the owner, so steady state reuses capacity.
    flush_collector_->push_back(  // ADAPT_LINT_ALLOW(hot-alloc)
        PendingFlush{g, fill_blocks, false, flow_id_});
  }
  if (trace_ != nullptr) {
    emit(trace_, TraceEvent{TraceEventKind::kChunkFlush, g, vtime_, wall_us_,
                            fill_blocks, padded ? 1u : 0u,
                            global_chunk_index(seg_id, chunk_begin),
                            flow_id_});
  }
  if (array_ != nullptr) {
    array_->write_chunk(g, static_cast<std::uint64_t>(fill_blocks) *
                               config_.block_bytes);
  }
  if (addressed_array_ != nullptr) {
    addressed_array_->write_chunk(global_chunk_index(seg_id, chunk_begin),
                                  g);
  }
  if (seg.write_ptr == config_.segment_blocks()) {
    seal_group_segment(g);
  } else {
    gs.deadline_armed = false;
  }
}

void ChunkWriter::rmw_flush(GroupId g) {
  GroupState& gs = groups_[g];
  const Segment& seg = pool_.segment(gs.open_seg);
  const std::uint32_t pending = seg.write_ptr - gs.flushed_slots;
  if (pending == 0) return;
  if (pending >= config_.chunk_blocks) {
    throw std::logic_error("rmw_flush with a full chunk pending");
  }
  expire_shadows_in_range(g, gs.flushed_slots, seg.write_ptr);

  const std::uint32_t chunk_begin_slot = gs.flushed_slots;
  const std::uint32_t offset_in_chunk =
      chunk_begin_slot % config_.chunk_blocks;
  GroupTraffic& gt = metrics_.groups[g];
  ++gt.rmw_flushes;
  ++metrics_.rmw_flushes;
  gt.rmw_blocks += pending;
  metrics_.rmw_blocks += pending;
  // Small-write parity update reads the old data chunk and old parity.
  metrics_.rmw_read_blocks += 2ull * config_.chunk_blocks;
  if (flush_collector_ != nullptr) {
    flush_collector_->push_back(PendingFlush{g, pending, true, flow_id_});
  }
  if (trace_ != nullptr) {
    emit(trace_,
         TraceEvent{TraceEventKind::kRmwFlush, g, vtime_, wall_us_, pending,
                    0, global_chunk_index(gs.open_seg, chunk_begin_slot),
                    flow_id_});
  }
  if (array_ != nullptr) {
    array_->write_partial(g, static_cast<std::uint64_t>(pending) *
                                 config_.block_bytes);
  }
  if (addressed_array_ != nullptr) {
    addressed_array_->write_partial(
        global_chunk_index(gs.open_seg, chunk_begin_slot), offset_in_chunk,
        pending, g);
  }
  gs.flushed_slots = seg.write_ptr;
  if (seg.write_ptr == config_.segment_blocks()) {
    seal_group_segment(g);
  } else {
    gs.deadline_armed = false;
  }
}

void ChunkWriter::pad_flush(GroupId g) {
  GroupState& gs = groups_[g];
  Segment& seg = pool_.segment_mut(gs.open_seg);
  const std::uint32_t pending = seg.write_ptr - gs.flushed_slots;
  if (pending == 0 || pending >= config_.chunk_blocks) {
    throw std::logic_error("pad_flush with no partial chunk");
  }
  const std::uint32_t chunk_end = gs.flushed_slots + config_.chunk_blocks;
  // Dead padding slots: allocated, never valid.
  for (std::uint32_t slot = seg.write_ptr; slot < chunk_end; ++slot) {
    pool_.set_slot_lba(gs.open_seg, slot, kInvalidLba);
    seg.slot_valid.reset(slot);
  }
  seg.write_ptr = chunk_end;
  gs.next_boundary = chunk_end + config_.chunk_blocks;
  flush_chunk(g, /*fill_blocks=*/pending, /*padded=*/true);
}

ADAPT_HOT void ChunkWriter::shadow_append(GroupId g, GroupId host,
                                          TimeUs now_us) {
  GroupState& gs = groups_[g];
  if (gs.open_seg == kInvalidSegment) return;  // donor has nothing pending
  const Segment& seg = pool_.segment(gs.open_seg);

  // Collect pending primaries of g that are valid and not yet shadowed
  // (recycled scratch — appends below may open segments, so the snapshot
  // keeps the scan stable while the table mutates).
  shadow_scratch_.clear();
  for (std::uint32_t slot = gs.flushed_slots; slot < seg.write_ptr; ++slot) {
    if (!seg.slot_valid.test(slot)) continue;
    const Lba lba = pool_.slot_lba(gs.open_seg, slot);
    if (!map_.primary_is(lba, BlockLocation{gs.open_seg, slot})) continue;
    if (map_.has_shadow(lba)) continue;
    // Reserved to segment_blocks() in the constructor; pending appends of
    // one open segment can never exceed that, so no growth here.
    shadow_scratch_.push_back(lba);  // ADAPT_LINT_ALLOW(hot-alloc)
  }

  if (trace_ != nullptr && !shadow_scratch_.empty()) {
    emit(trace_, TraceEvent{TraceEventKind::kShadowAppend, host, vtime_,
                            wall_us_, g, shadow_scratch_.size(), 0});
  }
  for (const Lba lba : shadow_scratch_) {
    append(host, lba, AppendSource::kShadow, now_us);
  }
  // Originals stay pending without a deadline (they are durable via their
  // shadows); a future user append re-arms the timer.
  gs.deadline_armed = false;
}

void ChunkWriter::check_counters() const {
  GroupTraffic totals;
  std::uint64_t flushes = 0;
  std::uint64_t pending = 0;
  for (GroupId g = 0; g < group_count(); ++g) {
    const GroupTraffic& gt = metrics_.groups[g];
    // Provenance rows must tile the group's GC traffic exactly: every
    // migrated block is attributed to exactly one source group.
    std::uint64_t gc_from_total = 0;
    for (const std::uint64_t n : gt.gc_from) gc_from_total += n;
    if (gc_from_total != gt.gc_blocks) {
      throw std::logic_error("gc_from provenance != group gc traffic");
    }
    totals.user_blocks += gt.user_blocks;
    totals.gc_blocks += gt.gc_blocks;
    totals.shadow_blocks += gt.shadow_blocks;
    totals.padding_blocks += gt.padding_blocks;
    totals.rmw_blocks += gt.rmw_blocks;
    totals.rmw_flushes += gt.rmw_flushes;
    flushes += gt.full_flushes + gt.padded_flushes;

    const GroupState& gs = groups_[g];
    if (gs.deadline_armed && gs.open_seg == kInvalidSegment) {
      throw std::logic_error("deadline armed without an open segment");
    }
    if (gs.open_seg == kInvalidSegment) continue;
    const Segment& seg = pool_.segment(gs.open_seg);
    if (seg.free || seg.sealed || seg.group != g) {
      throw std::logic_error("open segment in an inconsistent state");
    }
    if (gs.flushed_slots > seg.write_ptr ||
        seg.write_ptr > config_.segment_blocks()) {
      throw std::logic_error("open segment pointers out of order");
    }
    if (config_.partial_write_mode == PartialWriteMode::kZeroPad &&
        gs.flushed_slots % config_.chunk_blocks != 0) {
      throw std::logic_error("zero-pad flush boundary not chunk-aligned");
    }
    pending += seg.write_ptr - gs.flushed_slots;
  }
  if (totals.user_blocks != metrics_.user_blocks ||
      totals.gc_blocks != metrics_.gc_blocks ||
      totals.shadow_blocks != metrics_.shadow_blocks ||
      totals.padding_blocks != metrics_.padding_blocks ||
      totals.rmw_blocks != metrics_.rmw_blocks ||
      totals.rmw_flushes != metrics_.rmw_flushes) {
    throw std::logic_error("per-group traffic != global traffic counters");
  }
  if (flushes != chunks_flushed_) {
    throw std::logic_error("chunks_flushed counter out of sync");
  }
  // The write-accounting identity: every block the metrics claim was
  // appended either reached the media (full/padded chunks + RMW partials)
  // or is still pending in an open chunk.
  const std::uint64_t appended = metrics_.total_blocks();
  const std::uint64_t media =
      chunks_flushed_ * config_.chunk_blocks + metrics_.rmw_blocks;
  if (appended != media + pending) {
    throw std::logic_error("write-accounting identity broken");
  }
}

}  // namespace adapt::lss
