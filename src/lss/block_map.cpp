#include "lss/block_map.h"

#include <stdexcept>

#include "lss/segment_pool.h"

namespace adapt::lss {

void BlockMap::invalidate(Lba lba, SegmentPool& pool) {
  if (primary_[lba] != kUnmappedLocation) {
    const BlockLocation loc = unpack_location(primary_[lba]);
    if (lifetime_ != nullptr) {
      lifetime_->add(*lifetime_vtime_ -
                     pool.segment(loc.segment).create_vtime);
    }
    pool.invalidate_slot(loc);
    primary_[lba] = kUnmappedLocation;
  }
  const auto it = shadow_.find(lba);
  if (it != shadow_.end()) {
    pool.invalidate_slot(it->second);
    shadow_.erase(it);
  }
}

void BlockMap::expire_shadow(Lba lba, SegmentPool& pool) {
  const auto it = shadow_.find(lba);
  if (it == shadow_.end()) return;
  pool.invalidate_slot(it->second);
  shadow_.erase(it);
}

void BlockMap::check_counters() const {
  // O(live shadows), which is bounded by the pending blocks across open
  // chunks: a shadow exists only while its lazy-append original is pending.
  for (const auto& [lba, loc] : shadow_) {
    (void)loc;
    if (lba >= primary_.size() || primary_[lba] == kUnmappedLocation) {
      throw std::logic_error("shadow without a live primary");
    }
  }
}

}  // namespace adapt::lss
