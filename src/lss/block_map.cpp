#include "lss/block_map.h"

#include <stdexcept>

#include "lss/segment_pool.h"

namespace adapt::lss {

void BlockMap::invalidate(Lba lba, SegmentPool& pool) {
  assert(lba < primary_.size());
  if (primary_[lba] != kUnmappedLocation) {
    const BlockLocation loc = unpack_location(primary_[lba]);
    if (lifetime_ != nullptr) {
      lifetime_->add(*lifetime_vtime_ -
                     pool.segment(loc.segment).create_vtime);
    }
    pool.invalidate_slot(loc);
    primary_[lba] = kUnmappedLocation;
  }
  // The flat table's empty fast path makes this free for policies that
  // never aggregate (no shadows ever created).
  const BlockLocation shadow = shadow_.find(lba);
  if (shadow != kNowhere) {
    pool.invalidate_slot(shadow);
    shadow_.erase(lba);
  }
}

void BlockMap::expire_shadow(Lba lba, SegmentPool& pool) {
  const BlockLocation shadow = shadow_.find(lba);
  if (shadow == kNowhere) return;
  pool.invalidate_slot(shadow);
  shadow_.erase(lba);
}

void BlockMap::check_counters() const {
  shadow_.check_counters();
  // O(live shadows), which is bounded by the pending blocks across open
  // chunks: a shadow exists only while its lazy-append original is pending.
  for (const auto [lba, loc] : shadow_) {
    (void)loc;
    if (lba >= primary_.size() || primary_[lba] == kUnmappedLocation) {
      throw std::logic_error("shadow without a live primary");
    }
  }
}

}  // namespace adapt::lss
