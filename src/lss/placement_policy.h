// The placement-policy interface every scheme (SepGC, DAC, WARCIP, MiDA,
// SepBIT, ADAPT) implements. The engine asks the policy where to append a
// block; the policy sees user writes, GC rewrites, and segment lifecycle
// notifications but never touches segment internals.
//
// All lifespan/age reasoning uses virtual time (`VTime`, user blocks written
// so far); wall time is only relevant to coalescing and aggregation.
#pragma once

#include <cstddef>
#include <string_view>

#include "common/types.h"

namespace adapt::lss {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual std::string_view name() const = 0;

  /// Total groups managed; the engine creates one open segment per group.
  virtual GroupId group_count() const = 0;

  /// True if group `g` receives user writes under this scheme (used by
  /// per-group traffic reporting and shadow-host selection).
  virtual bool is_user_group(GroupId g) const = 0;

  /// Chooses a group for a user-written block (one call per 4-KiB block).
  virtual GroupId place_user_write(Lba lba, VTime now) = 0;

  /// Chooses a group for a valid block being migrated out of a GC victim.
  virtual GroupId place_gc_rewrite(Lba lba, GroupId victim_group,
                                   VTime now) = 0;

  /// Lifecycle notifications (optional).
  virtual void note_segment_sealed(GroupId /*group*/, VTime /*now*/) {}
  virtual void note_segment_reclaimed(GroupId /*group*/,
                                      VTime /*create_vtime*/,
                                      VTime /*now*/) {}

  /// Approximate resident memory of policy metadata, for the Fig. 12b
  /// comparison.
  virtual std::size_t memory_usage_bytes() const { return 0; }
};

}  // namespace adapt::lss
