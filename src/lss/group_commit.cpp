#include "lss/group_commit.h"

#include <algorithm>
#include <array>
#include <optional>
#include <stdexcept>

namespace adapt::lss {

ConcurrentEngine::ConcurrentEngine(const LssConfig& config,
                                   std::uint32_t shard_count,
                                   std::uint64_t base_seed,
                                   const ShardFactory& factory,
                                   bool record_ops)
    : shard_config_(shard_config(config, shard_count)),
      logical_blocks_(config.logical_blocks),
      record_ops_(record_ops) {
  if (!factory) {
    throw std::invalid_argument("ConcurrentEngine: null shard factory");
  }
  // Range partitioning splits the array's arrival stream N ways, so each
  // shard sees inter-write gaps ~N× longer than the unsharded engine
  // would. The coalesce window models "how long a partial chunk waits for
  // more user data before padding out"; keeping it fixed while arrival
  // thins out N× turns routine gaps into deadline expiries and floods the
  // device with padded flushes. Scale it by the shard count so the
  // per-shard window represents the same aggregate wait.
  shard_config_.coalesce_window_us *= shard_count;
  shards_.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->parts = factory(i, shard_config_);
    if (shard->parts.policy == nullptr || shard->parts.victim == nullptr) {
      throw std::invalid_argument(
          "ConcurrentEngine: factory returned a null policy or victim");
    }
    // Same seeding law as ShardedEngine: shard i gets base_seed + i, so a
    // serial oracle built from the same factory/config/seed is bit-
    // comparable shard by shard.
    LockGuard g(shard->mu);
    shard->engine = std::make_unique<LssEngine>(
        shard_config_, *shard->parts.policy, *shard->parts.victim,
        shard->parts.array.get(), base_seed + i);
    if (shard->parts.hook != nullptr) {
      shard->engine->set_aggregation_hook(shard->parts.hook);
    }
    // Apply/durable split: every flush the engine performs is recorded in
    // the shard's collector; lead() and gc_step() drain it under the shard
    // lock and model durability outside.
    shard->engine->set_flush_collector(&shard->flushes);
    shards_.push_back(std::move(shard));
  }
}

void ConcurrentEngine::set_trace_sink(std::uint32_t i, TraceSink* sink) {
  Shard& sh = *shards_.at(i);
  LockGuard g(sh.mu);
  sh.sink = sink;
  sh.engine->set_trace_sink(sink);
}

void ConcurrentEngine::write(Lba lba, std::uint32_t blocks, TimeUs submit_us) {
  if (lba + blocks > logical_blocks_) {
    throw std::out_of_range("write beyond logical capacity");
  }
  if (blocks == 0) return;
  // Range split: shard s covers [s*bps, (s+1)*bps). A request is tiny next
  // to a shard, so the common case is exactly one sub-span; a span that
  // straddles a boundary links every touched shard before any ticket is
  // awaited — submitting serially would pay one full intake round trip per
  // shard for every split write.
  const std::uint64_t bps = shard_config_.logical_blocks;
  const auto s_first = static_cast<std::uint32_t>(lba / bps);
  const auto s_last = static_cast<std::uint32_t>((lba + blocks - 1) / bps);
  if (s_first == s_last) {
    // Fast path: the request fits one shard — true for all but ~1 in
    // thousands of requests (a request is tiny next to a shard), and the
    // wave machinery below costs real wall time per op at bench rates. One
    // stack ticket, no arrays.
    Shard& sh = *shards_[s_first];
    WriteTicket t(lba - std::uint64_t{s_first} * bps, blocks, submit_us);
    std::exception_ptr error;
    const WriteState st =
        sh.intake.link(&t) ? WriteState::kLeader : WriteIntake::await(&t);
    if (st == WriteState::kLeader) {
      try {
        lead(sh, &t);
      } catch (...) {
        error = std::current_exception();
      }
    } else if (st == WriteState::kAborted) {
      // Some earlier op in our batch made the leader's engine apply throw;
      // this op was never applied. The leader rethrows the original
      // exception on its own thread — here, surface the loss instead of
      // returning success.
      error = std::make_exception_ptr(WriteAborted{});
    }
    // Wait out this op's share of its batch's coalesced flush on THIS
    // thread — the leader stamped durable_us into every ticket before
    // publishing. An aborted op was never applied and owes no device time.
    if (durable_wait_ && st != WriteState::kAborted && t.durable_us > 0) {
      durable_wait_(t.durable_us);
    }
    if (error != nullptr) std::rethrow_exception(error);
    return;
  }
  TimeUs durable_us = 0;
  std::exception_ptr error;
  constexpr std::uint32_t kWave = 8;
  std::uint32_t s = s_first;
  while (s <= s_last && error == nullptr) {
    std::array<std::optional<WriteTicket>, kWave> tickets;
    std::array<Shard*, kWave> owner{};
    std::array<bool, kWave> terminal{};
    std::uint32_t cnt = 0;
    for (; s <= s_last && cnt < kWave; ++s) {
      const std::uint64_t shard_base = std::uint64_t{s} * bps;
      const std::uint64_t lo = std::max<std::uint64_t>(lba, shard_base);
      const std::uint64_t hi =
          std::min<std::uint64_t>(lba + blocks, shard_base + bps);
      WriteTicket& t = tickets[cnt].emplace(
          lo - shard_base, static_cast<std::uint32_t>(hi - lo), submit_us);
      owner[cnt] = shards_[s].get();
      terminal[cnt] = false;
      // Leadership won at link time is recorded via state: poll below
      // treats it exactly like a later promotion.
      if (owner[cnt]->intake.link(&t)) {
        t.state.store(WriteState::kLeader, std::memory_order_relaxed);
      }
      ++cnt;
    }
    // Every ticket must reach a terminal state before this wave's stack
    // storage is reused (or the function unwinds). Poll ALL of them rather
    // than parking on one: a thread blocked on shard B while holding a
    // promoted leadership on shard A would stall A — and three such
    // threads can form a cross-shard leader-wait cycle that never resolves.
    std::uint32_t pending = cnt;
    int spins = spin_budget(2048);
    while (pending > 0) {
      bool progressed = false;
      for (std::uint32_t k = 0; k < cnt; ++k) {
        if (terminal[k]) continue;
        const WriteState st =
            tickets[k]->state.load(std::memory_order_acquire);
        if (!is_terminal(st)) continue;
        if (st == WriteState::kLeader) {
          try {
            lead(*owner[k], &*tickets[k]);
          } catch (...) {
            error = std::current_exception();
          }
        } else if (st == WriteState::kAborted && error == nullptr) {
          // A sub-span was dropped by a failing batch on its shard; the
          // whole multi-shard op is only partially applied, so fail it.
          error = std::make_exception_ptr(WriteAborted{});
        }
        if (st != WriteState::kAborted) {
          durable_us = std::max(durable_us, tickets[k]->durable_us);
        }
        terminal[k] = true;
        --pending;
        progressed = true;
      }
      if (!progressed) {
        if (spins > 0) {
          --spins;
        } else {
          yield_now();
        }
      }
    }
  }
  // One wait for the latest durable time over every batch this op rode in
  // (each leader stamped its batch's durable_us before publishing), run on
  // the submitting thread alone: follower completions above never stall on
  // the modeled flush.
  if (durable_wait_ && durable_us > 0) durable_wait_(durable_us);
  if (error != nullptr) std::rethrow_exception(error);
}

void ConcurrentEngine::lead(Shard& sh, WriteTicket* leader) {
  WriteTicket* const last = sh.intake.capture_group(leader);
  std::uint64_t batch_ops = 0;
  std::uint64_t batch_blocks = 0;
  std::uint64_t flushed_delta = 0;
  std::vector<PendingFlush> flushes;
  std::exception_ptr error;
  // First ticket whose op did NOT apply because the engine threw; it and
  // everything linked after it get published kAborted so their write()
  // calls fail instead of silently reporting lost writes as durable.
  WriteTicket* aborted_from = nullptr;
  // Applied milestone of the batch: the shard clock after the last applied
  // op (batch-granular — ops in one batch share the apply timestamp).
  TimeUs applied_us = 0;
  // Nonzero only while tracing: (shard << 40) | per-shard batch counter,
  // the causal-flow id correlating this batch's op, flush and lane events.
  std::uint64_t flow_id = 0;
  {
    LockGuard g(sh.mu);
    const std::uint64_t chunks_before = sh.engine->chunks_flushed();
    if (sh.sink != nullptr) {
      flow_id = (std::uint64_t{sh.index} << 40) | ++sh.batch_seq;
      sh.engine->set_flow_id(flow_id);
    }
    WriteTicket* w = leader;
    try {
      for (;; w = w->link_newer.load(std::memory_order_relaxed)) {
        // Engine timestamps must be monotone per shard; arrival order and
        // submit-clock order can disagree under contention, so clamp. The
        // clamped value is what gets recorded — replay needs the ts that
        // was actually applied, not the one the client intended.
        const TimeUs ts = std::max(sh.last_ts, w->submit_us);
        sh.last_ts = ts;
        sh.engine->write(w->lba, w->blocks, ts);
        w->joined_us = ts;
        if (record_ops_) {
          sh.log.push_back(
              RecordedOp{RecordedOp::Kind::kWrite, w->lba, w->blocks, ts, 0});
        }
        if (sh.sink != nullptr) {
          emit(sh.sink, TraceEvent{TraceEventKind::kOpSubmit,
                                   static_cast<GroupId>(sh.index),
                                   sh.engine->vtime(), ts, w->lba, w->blocks,
                                   0, flow_id});
        }
        ++batch_ops;
        batch_blocks += w->blocks;
        if (w == last) break;
      }
    } catch (...) {
      // Keep the protocol alive on engine failure: followers must still be
      // released — the applied prefix completes normally, the rest aborts
      // (the original exception rethrows on this, the leader's, thread).
      error = std::current_exception();
      aborted_from = w;
    }
    applied_us = sh.last_ts;
    flushed_delta = sh.engine->chunks_flushed() - chunks_before;
    // Drain the flush records this batch appended while still holding the
    // lock; the device submit happens OUTSIDE the critical section so the
    // next batch can apply while this one's durability is being modeled.
    if (!sh.flushes.empty()) {
      if (flush_submit_) {
        flushes.swap(sh.flushes);
      } else {
        sh.flushes.clear();
      }
    }
    if (sh.sink != nullptr) {
      emit(sh.sink,
           TraceEvent{TraceEventKind::kGroupCommit,
                      static_cast<GroupId>(sh.index), sh.engine->vtime(),
                      sh.last_ts, batch_ops, batch_blocks, flushed_delta,
                      flow_id});
    }
  }
  sh.groups.fetch_add(1, std::memory_order_relaxed);
  sh.ops.fetch_add(batch_ops, std::memory_order_relaxed);
  std::uint64_t prev_max = sh.max_batch.load(std::memory_order_relaxed);
  while (prev_max < batch_ops &&
         !sh.max_batch.compare_exchange_weak(prev_max, batch_ops,
                                             std::memory_order_relaxed)) {
  }
  // Model durability outside every lock. Even a batch that failed mid-way
  // submits: the applied prefix's flushes hit the device before the engine
  // threw, and their modeled time must not vanish from the timeline.
  FlushOutcome outcome;
  if (flush_submit_ && !flushes.empty()) {
    outcome = flush_submit_(sh.index, flushes);
  }
  const TimeUs durable_us = outcome.durable_us;
  // Walk the batch BEFORE any completion is published: followers cannot
  // unwind until they observe a terminal state, so pre-publication ticket
  // access is lifetime-safe, and publish's release pairs with await's
  // acquire to make the durable stamp visible. Aborted tickets get stamped
  // too (harmless — their write() skips the wait) but are excluded from
  // the phase breakdown: they were never applied, so they have no
  // lifecycle to attribute.
  LatencyBreakdown batch_lat;
  {
    bool aborted = false;
    for (WriteTicket* w = leader;;
         w = w->link_newer.load(std::memory_order_relaxed)) {
      if (w == aborted_from) aborted = true;
      if (durable_us > 0) w->durable_us = durable_us;
      if (!aborted) {
        batch_lat.add_op(w->submit_us, w->joined_us, applied_us, durable_us,
                         outcome.service_us);
      }
      if (w == last) break;
    }
  }
  if (batch_ops > 0) {
    {
      LockGuard g(sh.lat_mu);
      sh.breakdown.merge_from(batch_lat);
    }
    if (batch_hook_) {
      batch_hook_(BatchSample{sh.index, batch_ops, batch_blocks, batch_lat});
    }
  }
  // Emit per-op durability events under the re-acquired shard lock (the
  // per-shard ring is unsynchronised); still pre-publication, so every
  // ticket is alive. Traced runs pay this second lock hop; untraced runs
  // skip it entirely.
  if (flow_id != 0 && durable_us > 0) {
    LockGuard g(sh.mu);
    bool aborted = false;
    for (WriteTicket* w = leader;;
         w = w->link_newer.load(std::memory_order_relaxed)) {
      if (w == aborted_from) aborted = true;
      if (!aborted && sh.sink != nullptr) {
        emit(sh.sink, TraceEvent{TraceEventKind::kOpDurable,
                                 static_cast<GroupId>(sh.index),
                                 sh.engine->vtime(), durable_us, w->lba,
                                 w->blocks, durable_us, flow_id});
      }
      if (w == last) break;
    }
  }
  // Hand off leadership immediately: the next batch can apply into the
  // engine the moment this one leaves the critical section — the pipeline
  // the big lock could never form.
  sh.intake.exit_group(last);
  // Publish completions oldest-to-newest, reading each link BEFORE the
  // store: a completed follower's stack frame — ticket included — can
  // vanish immediately. Never read or follow last->link_newer here —
  // exit_group may have pointed it at the promoted next leader, which is
  // not ours to complete (a size-1 batch has no followers at all). Each
  // op runs its own durable wait AFTER its ticket publishes, so
  // completions are never delayed by the modeled flush.
  if (leader != last) {
    bool aborted = (aborted_from == leader);
    WriteTicket* w = leader->link_newer.load(std::memory_order_relaxed);
    while (w != nullptr) {
      WriteTicket* const next =
          (w == last) ? nullptr
                      : w->link_newer.load(std::memory_order_relaxed);
      if (w == aborted_from) aborted = true;
      WriteIntake::publish(
          w, aborted ? WriteState::kAborted : WriteState::kCompleted);
      w = next;
    }
  }
  if (error != nullptr) std::rethrow_exception(error);
}

bool ConcurrentEngine::gc_step(std::uint32_t i, TimeUs now_us,
                               std::uint32_t watermark,
                               std::uint64_t* flushed_chunks,
                               std::vector<PendingFlush>* flushes) {
  Shard& sh = *shards_.at(i);
  LockGuard g(sh.mu);
  // GC flushes are not part of any batch's causal flow; clear the stale
  // flow id a previous traced batch left on the engine.
  if (sh.sink != nullptr) sh.engine->set_flow_id(0);
  const TimeUs ts = std::max(sh.last_ts, now_us);
  const std::uint64_t chunks_before = sh.engine->chunks_flushed();
  // A false step mutates nothing (GcController::step checks the watermark
  // before run_once), so only steps that worked enter the linearized log.
  if (!sh.engine->gc_step(ts, watermark)) {
    if (flushed_chunks != nullptr) *flushed_chunks = 0;
    return false;
  }
  if (flushed_chunks != nullptr) {
    *flushed_chunks = sh.engine->chunks_flushed() - chunks_before;
  }
  // Hand the pass's flush records to the GC thread (it submits them to the
  // device model itself — there are no write tickets to stamp); drained
  // either way so the collector never grows across passes.
  if (flushes != nullptr) {
    // Swap (after clearing the caller's scratch) instead of copying: the
    // shard inherits the scratch vector's capacity, so a GC loop reusing
    // one vector allocates nothing in steady state.
    flushes->clear();
    flushes->swap(sh.flushes);
  } else {
    sh.flushes.clear();
  }
  sh.last_ts = ts;
  if (record_ops_) {
    sh.log.push_back(
        RecordedOp{RecordedOp::Kind::kGcStep, 0, 0, ts, watermark});
  }
  return true;
}

void ConcurrentEngine::flush_all() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    Shard& sh = *shard;
    LockGuard g(sh.mu);
    // End-of-run pad flushes belong to no batch; drop any stale flow id.
    if (sh.sink != nullptr) sh.engine->set_flow_id(0);
    sh.engine->flush_all();
    // The final drain is a quiesced-only bookkeeping pass; nobody is
    // measuring per-op durability any more, so just empty the collector.
    sh.flushes.clear();
    if (record_ops_) {
      sh.log.push_back(
          RecordedOp{RecordedOp::Kind::kFlushAll, 0, 0, sh.last_ts, 0});
    }
  }
}

LssMetrics ConcurrentEngine::merged_metrics() const {
  LssMetrics merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    LockGuard g(shard->mu);
    merged.merge_from(shard->engine->metrics());
  }
  return merged;
}

std::uint64_t ConcurrentEngine::chunks_flushed() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    LockGuard g(shard->mu);
    total += shard->engine->chunks_flushed();
  }
  return total;
}

std::vector<std::uint32_t> ConcurrentEngine::merged_segments_per_group()
    const {
  std::vector<std::uint32_t> merged;
  std::vector<std::uint32_t> scratch;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    LockGuard g(shard->mu);
    shard->engine->segments_per_group(scratch);
    if (merged.size() < scratch.size()) merged.resize(scratch.size(), 0);
    for (std::size_t g2 = 0; g2 < scratch.size(); ++g2) {
      merged[g2] += scratch[g2];
    }
  }
  return merged;
}

std::uint64_t ConcurrentEngine::merged_pending_blocks() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    LockGuard g(shard->mu);
    const GroupId groups = shard->engine->group_count();
    for (GroupId g2 = 0; g2 < groups; ++g2) {
      total += shard->engine->pending_blocks(g2);
    }
  }
  return total;
}

std::size_t ConcurrentEngine::policy_memory_bytes() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->parts.policy->memory_usage_bytes();
  }
  return total;
}

void ConcurrentEngine::check_invariants(audit::Level level) const {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    LockGuard g(shard->mu);
    shard->engine->check_invariants(level);
  }
}

GroupCommitStats ConcurrentEngine::shard_stats(std::uint32_t i) const {
  const Shard& sh = *shards_.at(i);
  return GroupCommitStats{sh.groups.load(std::memory_order_relaxed),
                          sh.ops.load(std::memory_order_relaxed),
                          sh.max_batch.load(std::memory_order_relaxed)};
}

GroupCommitStats ConcurrentEngine::merged_stats() const {
  GroupCommitStats merged;
  for (std::uint32_t i = 0; i < shard_count(); ++i) {
    const GroupCommitStats s = shard_stats(i);
    merged.groups += s.groups;
    merged.ops += s.ops;
    merged.max_batch = std::max(merged.max_batch, s.max_batch);
  }
  return merged;
}

LatencyBreakdown ConcurrentEngine::latency_breakdown() const {
  LatencyBreakdown merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    LockGuard g(shard->lat_mu);
    merged.merge_from(shard->breakdown);
  }
  return merged;
}

std::vector<RecordedOp> ConcurrentEngine::recorded_ops(std::uint32_t i) const {
  Shard& sh = *shards_.at(i);
  LockGuard g(sh.mu);
  return sh.log;
}

void ConcurrentEngine::replay_log(LssEngine& engine,
                                  const std::vector<RecordedOp>& log) {
  for (const RecordedOp& op : log) {
    switch (op.kind) {
      case RecordedOp::Kind::kWrite:
        engine.write(op.lba, op.blocks, op.ts_us);
        break;
      case RecordedOp::Kind::kGcStep:
        if (!engine.gc_step(op.ts_us, op.watermark)) {
          throw std::logic_error(
              "replay_log: recorded GC step did no work on replay");
        }
        break;
      case RecordedOp::Kind::kFlushAll:
        engine.flush_all();
        break;
    }
  }
}

}  // namespace adapt::lss
