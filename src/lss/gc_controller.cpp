#include "lss/gc_controller.h"

#include <chrono>
#include <span>
#include <stdexcept>

#include "common/annotations.h"
#include "common/packed_bitmap.h"

namespace adapt::lss {

GcController::GcController(const LssConfig& config, SegmentPool& pool,
                           BlockMap& map, ChunkWriter& writer,
                           PlacementPolicy& policy, VictimPolicy& victim,
                           LssMetrics& metrics, Rng& rng, const VTime& vtime)
    : config_(config),
      pool_(pool),
      map_(map),
      writer_(writer),
      policy_(policy),
      victim_(victim),
      metrics_(metrics),
      rng_(rng),
      vtime_(vtime) {
  migrate_scratch_.reserve(config_.segment_blocks());
}

void GcController::maybe_gc(TimeUs now_us) {
  const std::uint32_t watermark =
      config_.free_segment_reserve + writer_.group_count();
  std::uint32_t spins = 0;
  while (pool_.free_count() < watermark) {
    run_once(now_us);
    if (++spins > pool_.size() * 4) {
      throw std::runtime_error("LssEngine: GC made no progress");
    }
  }
}

bool GcController::step(TimeUs now_us, std::uint32_t watermark) {
  if (pool_.free_count() >= watermark) return false;
  run_once(now_us);
  return true;
}

ADAPT_HOT void GcController::run_once(TimeUs now_us) {
  // Host-clock pause timing only (nondeterministic); everything the trace
  // records below uses the simulated clocks.
  const auto pause_begin = std::chrono::steady_clock::now();
  // The victim index is maintained incrementally through seal / valid-delta
  // / free notifications, so selection needs no candidate rebuild or pool
  // scan.
  const SegmentId victim = victim_.select(pool_.segments(), vtime_, rng_);
  if (victim == kInvalidSegment) {
    throw std::runtime_error("LssEngine: no GC victim available");
  }
  ++metrics_.gc_runs;
  const std::uint64_t forced_before = metrics_.forced_lazy_flushes;
  const std::uint64_t migrated_before = metrics_.gc_migrated_blocks;
  Segment& v = pool_.segment_mut(victim);

  if (map_.live_shadow_count() == 0) {
    // Batched remap fast path. With no live shadows anywhere, migration
    // cannot force lazy flushes and GC appends never create shadows, so
    // nothing below mutates the victim bitmap behind the scan: collect
    // the live (slot, lba) set in one cache-friendly sweep, then apply in
    // a tight loop. Per-block mutating call order matches the interleaved
    // fallback exactly, keeping fixed-seed runs bit-identical.
    migrate_scratch_.clear();
    const std::span<const Lba> lbas = pool_.segment_lbas(victim);
    for (std::uint32_t slot = 0; slot < v.write_ptr; ++slot) {
      // Skip fully dead 64-slot words in one comparison.
      if ((slot % PackedBitmap::kWordBits) == 0 &&
          v.slot_valid.word(slot / PackedBitmap::kWordBits) == 0) {
        slot += PackedBitmap::kWordBits - 1;
        continue;
      }
      if (!v.slot_valid.test(slot)) continue;
      // Warm the primary-map lines now; the apply loop's consistency check
      // and clear_primary hit them next. The victim's lbas scatter across
      // the (large) primary array, so without the hint each migration
      // stalls on a cold load.
      map_.prefetch_primary(lbas[slot]);
      // Reserved to segment_blocks() in the constructor; a victim can hold
      // at most that many live slots, so no growth here.
      migrate_scratch_.push_back(  // ADAPT_LINT_ALLOW(hot-alloc)
          MigrateEntry{slot, lbas[slot]});
    }
    for (const MigrateEntry& e : migrate_scratch_) {
      if (!map_.primary_is(e.lba, BlockLocation{victim, e.slot})) {
        throw std::logic_error("valid slot not referenced by block map");
      }
      const GroupId target = policy_.place_gc_rewrite(e.lba, v.group, vtime_);
      if (target >= writer_.group_count()) {
        throw std::logic_error("placement policy returned bad GC group");
      }
      // Invalidate the victim copy, then append the migrated one. The
      // drain variant skips the per-block victim-index notification: no
      // selection or audit can run before release() reports on_free, and
      // every index is a pure function of stored state, so the collapsed
      // updates leave it bit-identical.
      pool_.invalidate_slot_draining(BlockLocation{victim, e.slot});
      map_.clear_primary(e.lba);
      writer_.append(target, e.lba, AppendSource::kGc, now_us, v.group);
      ++metrics_.gc_migrated_blocks;
    }
  } else {
    migrate_interleaved(victim, v, now_us);
  }

  if (v.valid_count != 0) {
    throw std::logic_error("victim still has valid blocks after GC");
  }
  policy_.note_segment_reclaimed(v.group, v.create_vtime, vtime_);
  ++metrics_.groups[v.group].segments_reclaimed;
  if (trace_ != nullptr) {
    emit(trace_,
         TraceEvent{TraceEventKind::kGcRun, v.group, vtime_, now_us, victim,
                    metrics_.gc_migrated_blocks - migrated_before,
                    metrics_.forced_lazy_flushes - forced_before});
  }
  writer_.trim_segment(victim);
  pool_.release(victim);
  const auto pause_us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - pause_begin);
  metrics_.gc_pause_us.add(static_cast<std::uint64_t>(pause_us.count()));
}

ADAPT_HOT void GcController::migrate_interleaved(SegmentId victim, Segment& v,
                                                 TimeUs now_us) {
  for (std::uint32_t slot = 0; slot < v.write_ptr; ++slot) {
    // Skip fully dead 64-slot words in one comparison. Re-checked at every
    // word boundary because forced flushes below can clear later bits.
    if ((slot % PackedBitmap::kWordBits) == 0 &&
        v.slot_valid.word(slot / PackedBitmap::kWordBits) == 0) {
      slot += PackedBitmap::kWordBits - 1;
      continue;
    }
    if (!v.slot_valid.test(slot)) continue;
    const Lba lba = pool_.slot_lba(victim, slot);
    const BlockLocation here{victim, slot};
    if (map_.shadow_location(lba) == here) {
      // A live shadow inside a sealed victim: the lazy original is still
      // pending in some open chunk. Force that chunk out (padded), which
      // expires this shadow, then skip the now-dead slot.
      const BlockLocation prim = map_.locate(lba);
      const GroupId prim_group = pool_.segment(prim.segment).group;
      ++metrics_.forced_lazy_flushes;
      writer_.pad_flush(prim_group);
      if (v.slot_valid.test(slot)) {
        throw std::logic_error("forced flush did not expire shadow");
      }
      continue;
    }
    if (!map_.primary_is(lba, here)) {
      throw std::logic_error("valid slot not referenced by block map");
    }
    const GroupId target = policy_.place_gc_rewrite(lba, v.group, vtime_);
    if (target >= writer_.group_count()) {
      throw std::logic_error("placement policy returned bad GC group");
    }
    // Invalidate the victim copy, then append the migrated one. The victim
    // stays in the index (its buckets track the drain) until release
    // reports on_free.
    pool_.invalidate_slot(here);
    map_.clear_primary(lba);
    writer_.append(target, lba, AppendSource::kGc, now_us, v.group);
    ++metrics_.gc_migrated_blocks;
  }
}

void GcController::check_counters() const {
  if (metrics_.gc_blocks != metrics_.gc_migrated_blocks) {
    throw std::logic_error("gc append and migration counters disagree");
  }
}

}  // namespace adapt::lss
