// Segment: the LSS allocation/reclamation unit. A segment belongs to one
// group while in use; slots are filled append-only; padding and dead blocks
// occupy slots with lba == kInvalidLba or slot_valid == false.
//
// Per-slot LBAs live in a struct-of-arrays arena owned by the SegmentPool
// (indexed segment * segment_blocks + slot), not here: segments recycle
// constantly under GC, and pool-level storage makes alloc/seal/free
// allocation-free and keeps each segment header to two cache lines.
#pragma once

#include <cstdint>

#include "common/packed_bitmap.h"
#include "common/types.h"

namespace adapt::lss {

struct Segment {
  GroupId group = kInvalidGroup;
  bool sealed = false;
  bool free = true;
  std::uint32_t write_ptr = 0;    ///< slots allocated so far
  std::uint32_t valid_count = 0;  ///< live slots (primary or shadow)
  VTime create_vtime = 0;
  VTime seal_vtime = 0;
  PackedBitmap slot_valid;        ///< packed liveness bitmap

  void reset(std::uint32_t segment_blocks) {
    group = kInvalidGroup;
    sealed = false;
    free = true;
    write_ptr = 0;
    valid_count = 0;
    create_vtime = 0;
    seal_vtime = 0;
    slot_valid.assign(segment_blocks, false);
  }

  double utilization() const noexcept {
    return slot_valid.size() == 0
               ? 0.0
               : static_cast<double>(valid_count) /
                     static_cast<double>(slot_valid.size());
  }
};

/// Compact location of a block: segment id + slot index.
struct BlockLocation {
  SegmentId segment = kInvalidSegment;
  std::uint32_t slot = 0;

  friend bool operator==(const BlockLocation&, const BlockLocation&) = default;
};

inline constexpr BlockLocation kNowhere{kInvalidSegment, 0};

}  // namespace adapt::lss
