// BlockMap: the logical-to-physical mapping of the LSS.
//
// Owns the packed primary map (one 64-bit word per logical block holding a
// BlockLocation, or kUnmappedLocation) and the shadow map of live
// cross-group aggregation copies (lazy-append originals still pending).
// Mapping state only — slot liveness lives in the SegmentPool; the
// cross-structure invalidation paths take the pool as a parameter so both
// sides move together.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "lss/segment.h"

namespace adapt::lss {

class SegmentPool;

inline constexpr std::uint64_t kUnmappedLocation =
    std::numeric_limits<std::uint64_t>::max();

constexpr std::uint64_t pack_location(BlockLocation loc) noexcept {
  return (static_cast<std::uint64_t>(loc.segment) << 32) | loc.slot;
}

constexpr BlockLocation unpack_location(std::uint64_t packed) noexcept {
  return BlockLocation{static_cast<SegmentId>(packed >> 32),
                       static_cast<std::uint32_t>(packed & 0xffffffffu)};
}

class BlockMap {
 public:
  explicit BlockMap(std::uint64_t logical_blocks) {
    primary_.assign(logical_blocks, kUnmappedLocation);
  }

  std::uint64_t logical_blocks() const noexcept { return primary_.size(); }

  /// Attaches the block-lifetime histogram: every primary-copy death in
  /// invalidate() records `vtime - segment create_vtime` (residence time of
  /// the physical copy, in user blocks written — an approximation of
  /// logical lifetime that resets when GC relocates the block). Both
  /// references must outlive the map; nullptr detaches.
  void bind_lifetime(const VTime& vtime, Log2Histogram* lifetime) noexcept {
    lifetime_vtime_ = &vtime;
    lifetime_ = lifetime;
  }

  /// Where lba currently lives (primary copy), or kNowhere.
  BlockLocation locate(Lba lba) const {
    if (lba >= primary_.size() || primary_[lba] == kUnmappedLocation) {
      return kNowhere;
    }
    return unpack_location(primary_[lba]);
  }

  bool is_mapped(Lba lba) const { return primary_[lba] != kUnmappedLocation; }

  /// True when lba's primary copy is exactly `loc` (cheap packed compare).
  bool primary_is(Lba lba, BlockLocation loc) const {
    return primary_[lba] == pack_location(loc);
  }

  void set_primary(Lba lba, BlockLocation loc) {
    primary_[lba] = pack_location(loc);
  }

  void clear_primary(Lba lba) { primary_[lba] = kUnmappedLocation; }

  bool has_shadow(Lba lba) const { return shadow_.contains(lba); }

  /// Where lba's live shadow copy sits, or kNowhere when it has none.
  BlockLocation shadow_location(Lba lba) const {
    const auto it = shadow_.find(lba);
    return it == shadow_.end() ? kNowhere : it->second;
  }

  void set_shadow(Lba lba, BlockLocation loc) { shadow_[lba] = loc; }

  std::size_t live_shadow_count() const noexcept { return shadow_.size(); }

  const std::unordered_map<Lba, BlockLocation>& shadows() const noexcept {
    return shadow_;
  }

  /// Drops lba's primary and shadow copies (if any), invalidating their
  /// slots in the pool. The overwrite path of a user write.
  void invalidate(Lba lba, SegmentPool& pool);

  /// Expires lba's live shadow copy, if any: the lazy-append original
  /// persisted, so the shadow's slot dies.
  void expire_shadow(Lba lba, SegmentPool& pool);

  /// Counters-tier self-audit; throws std::logic_error on violation.
  void check_counters() const;

 private:
  const VTime* lifetime_vtime_ = nullptr;
  Log2Histogram* lifetime_ = nullptr;
  /// primary_[lba] = packed BlockLocation or kUnmappedLocation.
  std::vector<std::uint64_t> primary_;
  /// Live shadow copies (lazy-append originals still pending).
  std::unordered_map<Lba, BlockLocation> shadow_;
};

}  // namespace adapt::lss
