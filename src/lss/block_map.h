// BlockMap: the logical-to-physical mapping of the LSS.
//
// Owns the packed primary map (one 64-bit word per logical block holding a
// BlockLocation, or kUnmappedLocation) and the shadow map of live
// cross-group aggregation copies (lazy-append originals still pending).
// Mapping state only — slot liveness lives in the SegmentPool; the
// cross-structure invalidation paths take the pool as a parameter so both
// sides move together.
//
// Bounds contract: locate() is the tolerant query — any lba is accepted and
// out-of-range returns kNowhere, because replay layers probe speculative
// addresses. Every other accessor (is_mapped, primary_is, set_primary,
// clear_primary, invalidate) requires lba < logical_blocks(): the engine
// validates LBAs once at the write_block boundary, so the per-op inner path
// pays no repeated range checks. Audit builds (!NDEBUG) assert it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/annotations.h"
#include "common/histogram.h"
#include "common/types.h"
#include "lss/flat_shadow_map.h"
#include "lss/segment.h"

namespace adapt::lss {

class SegmentPool;

inline constexpr std::uint64_t kUnmappedLocation =
    std::numeric_limits<std::uint64_t>::max();

constexpr std::uint64_t pack_location(BlockLocation loc) noexcept {
  return (static_cast<std::uint64_t>(loc.segment) << 32) | loc.slot;
}

constexpr BlockLocation unpack_location(std::uint64_t packed) noexcept {
  return BlockLocation{static_cast<SegmentId>(packed >> 32),
                       static_cast<std::uint32_t>(packed & 0xffffffffu)};
}

class BlockMap {
 public:
  /// `expected_shadows` pre-sizes the flat shadow table (live shadows are
  /// bounded by pending blocks across open chunks, i.e. group_count *
  /// chunk_blocks) so steady state never rehashes.
  explicit BlockMap(std::uint64_t logical_blocks,
                    std::size_t expected_shadows = 0) {
    primary_.assign(logical_blocks, kUnmappedLocation);
    shadow_.reserve(expected_shadows);
  }

  std::uint64_t logical_blocks() const noexcept { return primary_.size(); }

  /// Attaches the block-lifetime histogram: every primary-copy death in
  /// invalidate() records `vtime - segment create_vtime` (residence time of
  /// the physical copy, in user blocks written — an approximation of
  /// logical lifetime that resets when GC relocates the block). Both
  /// references must outlive the map; nullptr detaches.
  void bind_lifetime(const VTime& vtime, Log2Histogram* lifetime) noexcept {
    lifetime_vtime_ = &vtime;
    lifetime_ = lifetime;
  }

  /// Hints the cache that lba's primary entry is about to be read and
  /// written. The primary array is the engine's largest hot structure
  /// (8 bytes per logical block), so overlapping its fetch with preceding
  /// work hides most of the per-op miss latency. No architectural effect.
  /// Precondition: lba < logical_blocks().
  ADAPT_HOT void prefetch_primary(Lba lba) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(primary_.data() + lba, 1);
#else
    (void)lba;
#endif
  }

  /// Where lba currently lives (primary copy), or kNowhere. Tolerant of
  /// out-of-range lba by contract (see header comment).
  ADAPT_HOT BlockLocation locate(Lba lba) const {
    if (lba >= primary_.size() || primary_[lba] == kUnmappedLocation) {
      return kNowhere;
    }
    return unpack_location(primary_[lba]);
  }

  /// Precondition: lba < logical_blocks().
  ADAPT_HOT bool is_mapped(Lba lba) const {
    assert(lba < primary_.size());
    return primary_[lba] != kUnmappedLocation;
  }

  /// True when lba's primary copy is exactly `loc` (cheap packed compare).
  /// Precondition: lba < logical_blocks().
  ADAPT_HOT bool primary_is(Lba lba, BlockLocation loc) const {
    assert(lba < primary_.size());
    return primary_[lba] == pack_location(loc);
  }

  /// Precondition: lba < logical_blocks().
  ADAPT_HOT void set_primary(Lba lba, BlockLocation loc) {
    assert(lba < primary_.size());
    primary_[lba] = pack_location(loc);
  }

  /// Precondition: lba < logical_blocks().
  ADAPT_HOT void clear_primary(Lba lba) {
    assert(lba < primary_.size());
    primary_[lba] = kUnmappedLocation;
  }

  ADAPT_HOT bool has_shadow(Lba lba) const { return shadow_.contains(lba); }

  /// Where lba's live shadow copy sits, or kNowhere when it has none.
  ADAPT_HOT BlockLocation shadow_location(Lba lba) const {
    return shadow_.find(lba);
  }

  ADAPT_HOT void set_shadow(Lba lba, BlockLocation loc) {
    shadow_.insert_or_assign(lba, loc);
  }

  std::size_t live_shadow_count() const noexcept { return shadow_.size(); }

  /// Deterministic slot-order iteration over (lba, location) pairs; the
  /// flat table's layout is a pure function of the insert/erase sequence
  /// (no tombstones, no pointer-keyed state), so fixed-seed runs see a
  /// fixed order.
  const FlatShadowMap& shadows() const noexcept { return shadow_; }

  /// Drops lba's primary and shadow copies (if any), invalidating their
  /// slots in the pool. The overwrite path of a user write.
  /// Precondition: lba < logical_blocks().
  void invalidate(Lba lba, SegmentPool& pool);

  /// Expires lba's live shadow copy, if any: the lazy-append original
  /// persisted, so the shadow's slot dies.
  void expire_shadow(Lba lba, SegmentPool& pool);

  /// Counters-tier self-audit; throws std::logic_error on violation.
  void check_counters() const;

 private:
  const VTime* lifetime_vtime_ = nullptr;
  Log2Histogram* lifetime_ = nullptr;
  /// primary_[lba] = packed BlockLocation or kUnmappedLocation.
  std::vector<std::uint64_t> primary_;
  /// Live shadow copies (lazy-append originals still pending).
  FlatShadowMap shadow_;
};

}  // namespace adapt::lss
