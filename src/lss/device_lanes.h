// DeviceLanes: submission/completion queues over the bandwidth-modeled
// device layer — the async replacement for the prototype's single blocking
// busy-until timeline.
//
// Each lane models one device: an io_uring-style bounded submission queue
// (queue_depth entries in flight) in front of a serial service timeline.
// Submissions and completions live entirely in VIRTUAL time:
//
//   * admit:    a submission at wall time `now` enters its lane's queue
//               immediately — unless queue_depth submissions are already
//               outstanding at `now`, in which case admission is delayed to
//               the oldest outstanding completion (modeled backpressure; the
//               submission queue is bounded, never the host thread).
//   * service:  the lane serves admitted submissions in order at its
//               configured bandwidth, using the same formula as
//               array::SsdDevice::reserve (service_time_us), so a lane
//               submission and a direct device reservation of the same
//               payload cost the same modeled time.
//   * complete: complete_us = max(admit_us, lane busy_until) + service.
//               The caller decides what "waiting for durability" means —
//               the prototype sleeps the submitting thread until
//               complete_us; the group-commit engine stamps it into every
//               ticket of the batch so each op waits out its own share.
//
// Determinism: a lane's completion times are a pure function of its
// submission sequence (bytes, now_us in admission order); no host clocks or
// heap addresses enter the math. Completions across lanes are totally
// ordered by (complete_us, lane, seq) — completion_before — so any
// interleaving of per-lane streams replays to the same global completion
// order, and per-lane stats are bit-identical no matter how many worker
// threads drive disjoint lanes (tests/device_lanes_test.cpp pins this for
// 1/2/4 workers).
//
// Thread-safety: one Mutex per lane; submissions to different lanes never
// contend. Stats reads take the lane locks and may run concurrently with
// submitters (the merged histograms are a consistent per-lane snapshot).
#pragma once

#include <cstdint>
#include <vector>

#include "array/ssd_device.h"
#include "common/annotations.h"
#include "common/histogram.h"
#include "common/sync.h"
#include "common/types.h"
#include "lss/trace_sink.h"

namespace adapt::lss {

struct DeviceLanesConfig {
  std::uint32_t lanes = 4;        ///< one per device, as in SsdArray
  std::uint32_t queue_depth = 8;  ///< outstanding submissions per lane
  /// Payload charged per submit_chunks() submission: a parity-amortised
  /// chunk, matching SsdArray::effective_chunk_bytes for a 4-device RAID-5.
  std::uint64_t chunk_bytes = kDefaultChunkSize;
  /// Per-lane sustained bandwidth (aggregate bandwidth / lanes).
  double lane_bandwidth_mb_per_s = 500.0;

  /// Throws std::invalid_argument on a non-positive dimension.
  void validate() const;
};

/// One submission's modeled lifecycle on its lane.
struct LaneCompletion {
  std::uint32_t lane = 0;
  std::uint64_t seq = 0;      ///< per-lane submission index (0-based)
  TimeUs submit_us = 0;       ///< caller's wall time at submit
  TimeUs admit_us = 0;        ///< > submit_us iff the bounded queue was full
  TimeUs complete_us = 0;     ///< durable time on the lane's timeline
  TimeUs service_us = 0;      ///< pure device service time of this payload
};

/// The deterministic global completion order: earliest completion first,
/// ties broken by (lane, seq). Total because seq is unique per lane.
constexpr bool completion_before(const LaneCompletion& a,
                                 const LaneCompletion& b) noexcept {
  if (a.complete_us != b.complete_us) return a.complete_us < b.complete_us;
  if (a.lane != b.lane) return a.lane < b.lane;
  return a.seq < b.seq;
}

/// Per-lane counters (snapshot).
struct LaneStats {
  std::uint64_t submits = 0;
  std::uint64_t stalled_submits = 0;  ///< admissions delayed by a full queue
  std::uint64_t busy_us = 0;          ///< total modeled service time
  std::uint64_t inflight_high_water = 0;
  TimeUs busy_until_us = 0;           ///< lane timeline horizon
};

/// Snapshot of every lane plus the merged distributions exported into
/// adapt-manifest-v1's optional "lanes" block.
struct DeviceLanesStats {
  std::uint32_t queue_depth = 0;
  std::vector<LaneStats> per_lane;
  /// Inflight submissions observed at each admit (including the admitted
  /// one), merged over lanes.
  Log2Histogram queue_depth_hist;
  /// Modeled submit→complete latency per submission, microseconds.
  Log2Histogram submit_complete_us;

  bool empty() const noexcept { return per_lane.empty(); }

  std::uint64_t total_submits() const noexcept {
    std::uint64_t n = 0;
    for (const LaneStats& l : per_lane) n += l.submits;
    return n;
  }
  std::uint64_t total_stalled() const noexcept {
    std::uint64_t n = 0;
    for (const LaneStats& l : per_lane) n += l.stalled_submits;
    return n;
  }
  std::uint64_t max_inflight_high_water() const noexcept {
    std::uint64_t hw = 0;
    for (const LaneStats& l : per_lane) {
      if (l.inflight_high_water > hw) hw = l.inflight_high_water;
    }
    return hw;
  }
};

class DeviceLanes {
 public:
  explicit DeviceLanes(const DeviceLanesConfig& config);

  DeviceLanes(const DeviceLanes&) = delete;
  DeviceLanes& operator=(const DeviceLanes&) = delete;

  const DeviceLanesConfig& config() const noexcept { return config_; }
  std::uint32_t lane_count() const noexcept {
    return static_cast<std::uint32_t>(lanes_.size());
  }

  /// Attaches a trace sink to lane `lane` (nullptr detaches). Emission
  /// happens under the lane mutex, so an unsynchronised per-lane ring is
  /// safe, mirroring ConcurrentEngine's per-shard sinks.
  void set_trace_sink(std::uint32_t lane, TraceSink* sink);

  /// Submits `bytes` to `lane` at wall time `now_us`; thread-safe across
  /// lanes and within a lane. Purely virtual-time: never blocks the host
  /// beyond the lane mutex. The returned completion carries the admission
  /// time (delayed when queue_depth submissions were still outstanding at
  /// `now_us`), the modeled durable time, and the pure service time.
  /// `flow_id` (0 = none) is stamped into the lane's trace events so a
  /// traced submission joins its originating batch's causal flow.
  LaneCompletion submit(std::uint32_t lane, std::uint64_t bytes,
                        TimeUs now_us, std::uint64_t flow_id = 0);

  /// Convenience for chunk-granular callers: submits `chunks` submissions
  /// of config().chunk_bytes round-robin over the lanes starting at
  /// `lane_hint % lanes`, and returns the LATEST completion time — the
  /// batch's durable time.
  TimeUs submit_chunks(std::uint32_t lane_hint, std::uint64_t chunks,
                       TimeUs now_us);

  /// Consistent per-lane snapshot (takes each lane mutex in turn).
  DeviceLanesStats stats() const;

 private:
  struct Lane {
    mutable Mutex mu;
    /// Completion times of outstanding submissions, a FIFO ring of at most
    /// queue_depth entries. Monotone non-decreasing (the lane timeline only
    /// moves forward), so retiring entries <= now is a front scan.
    std::vector<TimeUs> ring ADAPT_GUARDED_BY(mu);
    std::uint32_t head ADAPT_GUARDED_BY(mu) = 0;
    std::uint32_t inflight ADAPT_GUARDED_BY(mu) = 0;
    std::uint64_t next_seq ADAPT_GUARDED_BY(mu) = 0;
    TimeUs busy_until_us ADAPT_GUARDED_BY(mu) = 0;
    LaneStats stats ADAPT_GUARDED_BY(mu);
    Log2Histogram depth_hist ADAPT_GUARDED_BY(mu);
    Log2Histogram latency_hist ADAPT_GUARDED_BY(mu);
    TraceSink* sink ADAPT_GUARDED_BY(mu) = nullptr;
  };

  DeviceLanesConfig config_;
  std::vector<Lane> lanes_;
};

}  // namespace adapt::lss
