#include "lss/victim_policy.h"

#include <bit>
#include <charconv>
#include <limits>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/fenwick.h"

namespace adapt::lss {
namespace {

constexpr std::uint32_t kNoBucket = std::numeric_limits<std::uint32_t>::max();

/// Valid-count buckets over sealed candidates: one intrusive doubly linked
/// list per valid count plus an occupancy bitmap (one bit per non-empty
/// bucket), so every insert/erase/move is O(1) list surgery + counter
/// update (a bit flips only when a bucket becomes empty/non-empty) and the
/// minimum-valid frontier is a count-trailing-zeros word scan. The index
/// sits on the invalidation path — every overwrite and every GC-migrated
/// block moves its segment one bucket down — so these constants dominate
/// the engine's per-op cost.
class ValidBuckets {
 public:
  void bind(std::uint32_t total_segments, std::uint32_t segment_blocks) {
    head_.assign(segment_blocks + 1, kInvalidSegment);
    next_.assign(total_segments, kInvalidSegment);
    prev_.assign(total_segments, kInvalidSegment);
    bucket_of_.assign(total_segments, kNoBucket);
    in_bucket_.assign(segment_blocks + 1, 0);
    occ_words_.assign((segment_blocks + 1 + 63) / 64, 0);
    count_ = 0;
  }

  std::uint32_t count() const noexcept { return count_; }
  bool contains(SegmentId seg) const { return bucket_of_.at(seg) != kNoBucket; }

  void insert(SegmentId seg, std::uint32_t valid) {
    if (valid >= head_.size() || contains(seg)) {
      throw std::logic_error("victim index: bad insert");
    }
    const SegmentId old_head = head_[valid];
    next_[seg] = old_head;
    prev_[seg] = kInvalidSegment;
    if (old_head != kInvalidSegment) prev_[old_head] = seg;
    head_[valid] = seg;
    bucket_of_[seg] = valid;
    if (in_bucket_[valid]++ == 0) {
      occ_words_[valid / 64] |= 1ull << (valid % 64);
    }
    ++count_;
  }

  void erase(SegmentId seg) {
    const std::uint32_t b = bucket_of_.at(seg);
    if (b == kNoBucket) {
      throw std::logic_error("victim index: erase of absent segment");
    }
    const SegmentId p = prev_[seg];
    const SegmentId n = next_[seg];
    if (p != kInvalidSegment) next_[p] = n; else head_[b] = n;
    if (n != kInvalidSegment) prev_[n] = p;
    bucket_of_[seg] = kNoBucket;
    if (--in_bucket_[b] == 0) {
      occ_words_[b / 64] &= ~(1ull << (b % 64));
    }
    --count_;
  }

  void move(SegmentId seg, std::uint32_t new_valid) {
    erase(seg);
    insert(seg, new_valid);
  }

  /// Lowest non-empty valid count, or kNoBucket when the index is empty.
  std::uint32_t min_bucket() const noexcept {
    for (std::size_t w = 0; w < occ_words_.size(); ++w) {
      if (occ_words_[w] != 0) {
        return static_cast<std::uint32_t>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(occ_words_[w])));
      }
    }
    return kNoBucket;
  }

  /// Smallest segment id in `bucket` (walks the frontier list only).
  SegmentId min_id_in(std::uint32_t bucket) const {
    SegmentId best = kInvalidSegment;
    for (SegmentId s = head_.at(bucket); s != kInvalidSegment;
         s = next_[s]) {
      if (s < best) best = s;
    }
    return best;
  }

 private:
  std::vector<SegmentId> head_;     ///< per-valid-count list head
  std::vector<SegmentId> next_;     ///< intrusive links, indexed by seg id
  std::vector<SegmentId> prev_;
  std::vector<std::uint32_t> bucket_of_;  ///< kNoBucket when absent
  std::vector<std::uint32_t> in_bucket_;  ///< candidates per bucket
  std::vector<std::uint64_t> occ_words_;  ///< bit b set ⇔ bucket b non-empty
  std::uint32_t count_ = 0;
};

/// Id-ordered candidate presence: a Fenwick tree with a 1 at every sealed
/// candidate's segment id. kth() is an order-statistic descent that
/// reproduces exactly the seed implementation's candidates[k], which was
/// built by an ascending-id pool scan.
class SealedIdIndex {
 public:
  void bind(std::uint32_t total_segments) {
    occ_ = FenwickTree(total_segments);
    present_.assign(total_segments, false);
    count_ = 0;
  }

  std::uint32_t count() const noexcept { return count_; }

  bool contains(SegmentId seg) const noexcept {
    return seg < present_.size() && present_[seg];
  }

  void insert(SegmentId seg) {
    if (present_.at(seg)) {
      throw std::logic_error("victim index: double seal");
    }
    present_[seg] = true;
    occ_.add(seg, +1);
    ++count_;
  }

  void erase(SegmentId seg) {
    if (!present_.at(seg)) {
      throw std::logic_error("victim index: free of absent segment");
    }
    present_[seg] = false;
    occ_.add(seg, -1);
    --count_;
  }

  /// The k-th (0-indexed) candidate in ascending id order.
  SegmentId kth(std::uint64_t k) const noexcept {
    return static_cast<SegmentId>(occ_.lower_bound(
        static_cast<std::int64_t>(k) + 1));
  }

 private:
  FenwickTree occ_;
  std::vector<bool> present_;
  std::uint32_t count_ = 0;
};

class GreedyPolicy final : public VictimPolicy {
 public:
  std::string_view name() const override { return "greedy"; }

  void bind_pool(std::uint32_t total_segments,
                 std::uint32_t segment_blocks) override {
    buckets_.bind(total_segments, segment_blocks);
  }

  void on_seal(SegmentId seg, std::uint32_t valid_count,
               VTime /*seal_vtime*/) override {
    buckets_.insert(seg, valid_count);
  }

  void on_valid_delta(SegmentId seg, std::uint32_t /*old_valid*/,
                      std::uint32_t new_valid) override {
    buckets_.move(seg, new_valid);
  }

  void on_free(SegmentId seg) override { buckets_.erase(seg); }

  bool is_candidate(SegmentId seg) const override {
    return buckets_.contains(seg);
  }

  SegmentId select(std::span<const Segment> /*segments*/, VTime /*now*/,
                   Rng& /*rng*/) override {
    const std::uint32_t b = buckets_.min_bucket();
    if (b == kNoBucket) return kInvalidSegment;
    // Lowest id inside the minimum bucket == the victim a full
    // ascending-id scan would pick (strict-less comparison).
    return buckets_.min_id_in(b);
  }

 private:
  ValidBuckets buckets_;
};

class CostBenefitPolicy final : public VictimPolicy {
 public:
  std::string_view name() const override { return "cost-benefit"; }

  void bind_pool(std::uint32_t total_segments,
                 std::uint32_t segment_blocks) override {
    buckets_.assign(segment_blocks + 1, {});
    valid_of_.assign(total_segments, kNoBucket);
    seal_of_.assign(total_segments, 0);
    occ_ = FenwickTree(segment_blocks + 1);
    count_ = 0;
  }

  void on_seal(SegmentId seg, std::uint32_t valid_count,
               VTime seal_vtime) override {
    if (valid_of_.at(seg) != kNoBucket) {
      throw std::logic_error("victim index: double seal");
    }
    valid_of_[seg] = valid_count;
    seal_of_[seg] = seal_vtime;
    buckets_[valid_count].insert({seal_vtime, seg});
    occ_.add(valid_count, +1);
    ++count_;
  }

  void on_valid_delta(SegmentId seg, std::uint32_t /*old_valid*/,
                      std::uint32_t new_valid) override {
    const std::uint32_t old_bucket = valid_of_.at(seg);
    if (old_bucket == kNoBucket) {
      throw std::logic_error("victim index: delta on absent segment");
    }
    buckets_[old_bucket].erase({seal_of_[seg], seg});
    buckets_[new_valid].insert({seal_of_[seg], seg});
    occ_.add(old_bucket, -1);
    occ_.add(new_valid, +1);
    valid_of_[seg] = new_valid;
  }

  void on_free(SegmentId seg) override {
    const std::uint32_t b = valid_of_.at(seg);
    if (b == kNoBucket) {
      throw std::logic_error("victim index: free of absent segment");
    }
    buckets_[b].erase({seal_of_[seg], seg});
    occ_.add(b, -1);
    valid_of_[seg] = kNoBucket;
    --count_;
  }

  bool is_candidate(SegmentId seg) const override {
    return seg < valid_of_.size() && valid_of_[seg] != kNoBucket;
  }

  SegmentId select(std::span<const Segment> segments, VTime now,
                   Rng& /*rng*/) override {
    if (count_ == 0) return kInvalidSegment;
    SegmentId best = kInvalidSegment;
    double best_score = -1.0;
    // Within a bucket every candidate shares u, so the score is maximal at
    // the minimum seal_vtime (max age) — score only that frontier element
    // per occupied bucket instead of every candidate.
    for (std::uint32_t b = static_cast<std::uint32_t>(occ_.lower_bound(1));
         b < buckets_.size();
         b = static_cast<std::uint32_t>(
             occ_.lower_bound(occ_.prefix_sum(b) + 1))) {
      const SegmentId id = buckets_[b].begin()->second;
      const Segment& seg = segments[id];
      const double u = seg.utilization();
      const double age =
          static_cast<double>(now >= seg.seal_vtime ? now - seg.seal_vtime
                                                    : 0) +
          1.0;
      // Benefit / cost = free-space gain * age / (read + write cost).
      const double score = (1.0 - u) * age / (1.0 + u);
      if (score > best_score) {
        best_score = score;
        best = id;
      }
    }
    return best;
  }

 private:
  /// Per valid count: candidates ordered by (seal_vtime, id); begin() is
  /// the oldest — the bucket's best-scoring element.
  std::vector<std::set<std::pair<VTime, SegmentId>>> buckets_;
  std::vector<std::uint32_t> valid_of_;  ///< kNoBucket when absent
  std::vector<VTime> seal_of_;
  FenwickTree occ_;
  std::uint32_t count_ = 0;
};

class DChoicePolicy final : public VictimPolicy {
 public:
  explicit DChoicePolicy(std::uint32_t d) : d_(d == 0 ? 1 : d) {}
  std::string_view name() const override { return "d-choice"; }

  void bind_pool(std::uint32_t total_segments,
                 std::uint32_t /*segment_blocks*/) override {
    index_.bind(total_segments);
  }

  void on_seal(SegmentId seg, std::uint32_t /*valid_count*/,
               VTime /*seal_vtime*/) override {
    index_.insert(seg);
  }

  void on_valid_delta(SegmentId /*seg*/, std::uint32_t /*old_valid*/,
                      std::uint32_t /*new_valid*/) override {}

  void on_free(SegmentId seg) override { index_.erase(seg); }

  bool is_candidate(SegmentId seg) const override {
    return index_.contains(seg);
  }

  SegmentId select(std::span<const Segment> segments, VTime /*now*/,
                   Rng& rng) override {
    if (index_.count() == 0) return kInvalidSegment;
    SegmentId best = kInvalidSegment;
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (std::uint32_t i = 0; i < d_; ++i) {
      const SegmentId id = index_.kth(rng.below(index_.count()));
      if (segments[id].valid_count < best_valid) {
        best_valid = segments[id].valid_count;
        best = id;
      }
    }
    return best;
  }

 private:
  std::uint32_t d_;
  SealedIdIndex index_;
};

class WindowedGreedyPolicy final : public VictimPolicy {
 public:
  explicit WindowedGreedyPolicy(std::uint32_t window)
      : window_(window == 0 ? 1 : window) {}
  std::string_view name() const override { return "windowed-greedy"; }

  void bind_pool(std::uint32_t total_segments,
                 std::uint32_t /*segment_blocks*/) override {
    next_.assign(total_segments, kInvalidSegment);
    prev_.assign(total_segments, kInvalidSegment);
    present_.assign(total_segments, false);
    head_ = tail_ = kInvalidSegment;
    count_ = 0;
  }

  void on_seal(SegmentId seg, std::uint32_t /*valid_count*/,
               VTime /*seal_vtime*/) override {
    if (present_.at(seg)) {
      throw std::logic_error("victim index: double seal");
    }
    // Seals arrive in seal_vtime order, so appending keeps the list
    // age-sorted without any per-call partial_sort.
    present_[seg] = true;
    prev_[seg] = tail_;
    next_[seg] = kInvalidSegment;
    if (tail_ != kInvalidSegment) next_[tail_] = seg; else head_ = seg;
    tail_ = seg;
    ++count_;
  }

  void on_valid_delta(SegmentId /*seg*/, std::uint32_t /*old_valid*/,
                      std::uint32_t /*new_valid*/) override {}

  void on_free(SegmentId seg) override {
    if (!present_.at(seg)) {
      throw std::logic_error("victim index: free of absent segment");
    }
    present_[seg] = false;
    const SegmentId p = prev_[seg];
    const SegmentId n = next_[seg];
    if (p != kInvalidSegment) next_[p] = n; else head_ = n;
    if (n != kInvalidSegment) prev_[n] = p; else tail_ = p;
    --count_;
  }

  bool is_candidate(SegmentId seg) const override {
    return seg < present_.size() && present_[seg];
  }

  SegmentId select(std::span<const Segment> segments, VTime /*now*/,
                   Rng& /*rng*/) override {
    SegmentId best = kInvalidSegment;
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t seen = 0;
    for (SegmentId s = head_; s != kInvalidSegment && seen < window_;
         s = next_[s], ++seen) {
      if (segments[s].valid_count < best_valid) {
        best_valid = segments[s].valid_count;
        best = s;
      }
    }
    return best;
  }

 private:
  std::uint32_t window_;
  std::vector<SegmentId> next_;  ///< seal-order links, head_ = oldest
  std::vector<SegmentId> prev_;
  std::vector<bool> present_;
  SegmentId head_ = kInvalidSegment;
  SegmentId tail_ = kInvalidSegment;
  std::uint32_t count_ = 0;
};

class RandomPolicy final : public VictimPolicy {
 public:
  std::string_view name() const override { return "random"; }

  void bind_pool(std::uint32_t total_segments,
                 std::uint32_t /*segment_blocks*/) override {
    index_.bind(total_segments);
  }

  void on_seal(SegmentId seg, std::uint32_t /*valid_count*/,
               VTime /*seal_vtime*/) override {
    index_.insert(seg);
  }

  void on_valid_delta(SegmentId /*seg*/, std::uint32_t /*old_valid*/,
                      std::uint32_t /*new_valid*/) override {}

  void on_free(SegmentId seg) override { index_.erase(seg); }

  bool is_candidate(SegmentId seg) const override {
    return index_.contains(seg);
  }

  SegmentId select(std::span<const Segment> /*segments*/, VTime /*now*/,
                   Rng& rng) override {
    if (index_.count() == 0) return kInvalidSegment;
    return index_.kth(rng.below(index_.count()));
  }

 private:
  SealedIdIndex index_;
};

std::uint32_t parse_policy_param(std::string_view base,
                                 std::string_view param) {
  std::uint32_t value = 0;
  const char* const first = param.data();
  const char* const last = param.data() + param.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || value == 0) {
    throw std::invalid_argument("bad parameter for victim policy '" +
                                std::string(base) + "': '" +
                                std::string(param) + "'");
  }
  return value;
}

}  // namespace

std::unique_ptr<VictimPolicy> make_greedy() {
  return std::make_unique<GreedyPolicy>();
}
std::unique_ptr<VictimPolicy> make_cost_benefit() {
  return std::make_unique<CostBenefitPolicy>();
}
std::unique_ptr<VictimPolicy> make_d_choice(std::uint32_t d) {
  return std::make_unique<DChoicePolicy>(d);
}
std::unique_ptr<VictimPolicy> make_windowed_greedy(std::uint32_t window) {
  return std::make_unique<WindowedGreedyPolicy>(window);
}
std::unique_ptr<VictimPolicy> make_random() {
  return std::make_unique<RandomPolicy>();
}

std::unique_ptr<VictimPolicy> make_victim_policy(std::string_view name) {
  std::string_view base = name;
  std::string_view param;
  bool has_param = false;
  if (const std::size_t colon = name.find(':');
      colon != std::string_view::npos) {
    base = name.substr(0, colon);
    param = name.substr(colon + 1);
    has_param = true;
  }
  if (base == "d-choice") {
    return make_d_choice(has_param ? parse_policy_param(base, param) : 8);
  }
  if (base == "windowed") {
    return make_windowed_greedy(has_param ? parse_policy_param(base, param)
                                          : 32);
  }
  if (base == "greedy" || base == "cost-benefit" || base == "random") {
    if (has_param) {
      throw std::invalid_argument("victim policy '" + std::string(base) +
                                  "' takes no parameter");
    }
    if (base == "greedy") return make_greedy();
    if (base == "cost-benefit") return make_cost_benefit();
    return make_random();
  }
  throw std::invalid_argument("unknown victim policy: " + std::string(name));
}

}  // namespace adapt::lss
