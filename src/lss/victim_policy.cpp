#include "lss/victim_policy.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace adapt::lss {
namespace {

class GreedyPolicy final : public VictimPolicy {
 public:
  std::string_view name() const override { return "greedy"; }

  SegmentId select(std::span<const SegmentId> candidates,
                   std::span<const Segment> segments, VTime /*now*/,
                   Rng& /*rng*/) override {
    SegmentId best = kInvalidSegment;
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (SegmentId id : candidates) {
      const std::uint32_t v = segments[id].valid_count;
      if (v < best_valid) {
        best_valid = v;
        best = id;
      }
    }
    return best;
  }
};

class CostBenefitPolicy final : public VictimPolicy {
 public:
  std::string_view name() const override { return "cost-benefit"; }

  SegmentId select(std::span<const SegmentId> candidates,
                   std::span<const Segment> segments, VTime now,
                   Rng& /*rng*/) override {
    SegmentId best = kInvalidSegment;
    double best_score = -1.0;
    for (SegmentId id : candidates) {
      const Segment& seg = segments[id];
      const double u = seg.utilization();
      const double age =
          static_cast<double>(now >= seg.seal_vtime ? now - seg.seal_vtime : 0) +
          1.0;
      // Benefit / cost = free-space gain * age / (read + write cost).
      const double score = (1.0 - u) * age / (1.0 + u);
      if (score > best_score) {
        best_score = score;
        best = id;
      }
    }
    return best;
  }
};

class DChoicePolicy final : public VictimPolicy {
 public:
  explicit DChoicePolicy(std::uint32_t d) : d_(d == 0 ? 1 : d) {}
  std::string_view name() const override { return "d-choice"; }

  SegmentId select(std::span<const SegmentId> candidates,
                   std::span<const Segment> segments, VTime /*now*/,
                   Rng& rng) override {
    if (candidates.empty()) return kInvalidSegment;
    SegmentId best = kInvalidSegment;
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (std::uint32_t i = 0; i < d_; ++i) {
      const SegmentId id = candidates[rng.below(candidates.size())];
      if (segments[id].valid_count < best_valid) {
        best_valid = segments[id].valid_count;
        best = id;
      }
    }
    return best;
  }

 private:
  std::uint32_t d_;
};

class WindowedGreedyPolicy final : public VictimPolicy {
 public:
  explicit WindowedGreedyPolicy(std::uint32_t window)
      : window_(window == 0 ? 1 : window) {}
  std::string_view name() const override { return "windowed-greedy"; }

  SegmentId select(std::span<const SegmentId> candidates,
                   std::span<const Segment> segments, VTime /*now*/,
                   Rng& /*rng*/) override {
    if (candidates.empty()) return kInvalidSegment;
    // Window = the `window_` segments sealed earliest.
    scratch_.assign(candidates.begin(), candidates.end());
    const std::size_t w =
        std::min<std::size_t>(window_, scratch_.size());
    std::partial_sort(scratch_.begin(), scratch_.begin() + w, scratch_.end(),
                      [&](SegmentId a, SegmentId b) {
                        return segments[a].seal_vtime < segments[b].seal_vtime;
                      });
    SegmentId best = kInvalidSegment;
    std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t i = 0; i < w; ++i) {
      const SegmentId id = scratch_[i];
      if (segments[id].valid_count < best_valid) {
        best_valid = segments[id].valid_count;
        best = id;
      }
    }
    return best;
  }

 private:
  std::uint32_t window_;
  std::vector<SegmentId> scratch_;
};

class RandomPolicy final : public VictimPolicy {
 public:
  std::string_view name() const override { return "random"; }

  SegmentId select(std::span<const SegmentId> candidates,
                   std::span<const Segment> /*segments*/, VTime /*now*/,
                   Rng& rng) override {
    if (candidates.empty()) return kInvalidSegment;
    return candidates[rng.below(candidates.size())];
  }
};

}  // namespace

std::unique_ptr<VictimPolicy> make_greedy() {
  return std::make_unique<GreedyPolicy>();
}
std::unique_ptr<VictimPolicy> make_cost_benefit() {
  return std::make_unique<CostBenefitPolicy>();
}
std::unique_ptr<VictimPolicy> make_d_choice(std::uint32_t d) {
  return std::make_unique<DChoicePolicy>(d);
}
std::unique_ptr<VictimPolicy> make_windowed_greedy(std::uint32_t window) {
  return std::make_unique<WindowedGreedyPolicy>(window);
}
std::unique_ptr<VictimPolicy> make_random() {
  return std::make_unique<RandomPolicy>();
}

std::unique_ptr<VictimPolicy> make_victim_policy(std::string_view name) {
  if (name == "greedy") return make_greedy();
  if (name == "cost-benefit") return make_cost_benefit();
  if (name == "d-choice") return make_d_choice(8);
  if (name == "windowed") return make_windowed_greedy(32);
  if (name == "random") return make_random();
  throw std::invalid_argument("unknown victim policy: " + std::string(name));
}

}  // namespace adapt::lss
