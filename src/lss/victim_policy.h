// Victim-selection policies for GC. All schemes share these so that
// Greedy vs Cost-Benefit comparisons isolate placement effects (paper §4.2),
// with d-choice / Windowed Greedy / Random Greedy as ablation variants
// (related work §5).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "lss/segment.h"

namespace adapt::lss {

class VictimPolicy {
 public:
  virtual ~VictimPolicy() = default;
  virtual std::string_view name() const = 0;

  /// Picks a victim among `candidates` (sealed, non-free segment ids).
  /// `segments` is the whole pool for metric lookups; `now` is virtual time.
  virtual SegmentId select(std::span<const SegmentId> candidates,
                           std::span<const Segment> segments, VTime now,
                           Rng& rng) = 0;
};

/// Least-valid-blocks-first.
std::unique_ptr<VictimPolicy> make_greedy();

/// Rosenblum's cost-benefit: maximize (1 - u) * age / (1 + u).
std::unique_ptr<VictimPolicy> make_cost_benefit();

/// d-choice: sample d candidates uniformly, greedy among them.
std::unique_ptr<VictimPolicy> make_d_choice(std::uint32_t d);

/// Windowed greedy: greedy among the w oldest sealed segments.
std::unique_ptr<VictimPolicy> make_windowed_greedy(std::uint32_t window);

/// Uniformly random victim (stress baseline).
std::unique_ptr<VictimPolicy> make_random();

/// Factory by name: "greedy", "cost-benefit", "d-choice", "windowed",
/// "random". Throws std::invalid_argument for unknown names.
std::unique_ptr<VictimPolicy> make_victim_policy(std::string_view name);

}  // namespace adapt::lss
