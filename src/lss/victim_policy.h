// Victim-selection policies for GC. All schemes share these so that
// Greedy vs Cost-Benefit comparisons isolate placement effects (paper §4.2),
// with d-choice / Windowed Greedy / Random Greedy as ablation variants
// (related work §5).
//
// Each policy is an *incrementally maintained index*: the engine drives
// segment lifecycle notifications (on_seal / on_valid_delta / on_free) and
// the policy keeps its own candidate structure, so select() costs
// O(log pool) or better instead of rescanning every sealed segment. Greedy
// and cost-benefit keep valid-count buckets (intrusive lists + a Fenwick
// tree over bucket occupancy), windowed greedy keeps a seal-order list,
// and d-choice / random sample id-order statistics from a Fenwick presence
// tree — which reproduces the seed implementation's candidates[k] exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "lss/segment.h"

namespace adapt::lss {

class VictimPolicy {
 public:
  virtual ~VictimPolicy() = default;
  virtual std::string_view name() const = 0;

  /// Resets the index for a pool of `total_segments` segments with
  /// `segment_blocks` slots each. The engine calls this once, before any
  /// notification; re-binding discards all prior state.
  virtual void bind_pool(std::uint32_t total_segments,
                         std::uint32_t segment_blocks) = 0;

  /// `seg` was sealed holding `valid_count` live blocks: it becomes a GC
  /// candidate.
  virtual void on_seal(SegmentId seg, std::uint32_t valid_count,
                       VTime seal_vtime) = 0;

  /// Candidate `seg`'s live-block count changed (user overwrite, shadow
  /// expiry, or GC migration). Fired only for sealed segments.
  virtual void on_valid_delta(SegmentId seg, std::uint32_t old_valid,
                              std::uint32_t new_valid) = 0;

  /// Candidate `seg` was reclaimed and leaves the index.
  virtual void on_free(SegmentId seg) = 0;

  /// True while `seg` sits in the candidate index (sealed, not yet freed).
  /// Used by the engine's full invariant audit to cross-check index
  /// membership against pool state; must be O(1).
  virtual bool is_candidate(SegmentId seg) const = 0;

  /// Picks a victim from the maintained candidate index, or
  /// kInvalidSegment when no candidate exists. `segments` is the whole
  /// pool for metric lookups; `now` is virtual time. Does not remove the
  /// victim — the engine reports that through on_free after reclamation.
  virtual SegmentId select(std::span<const Segment> segments, VTime now,
                           Rng& rng) = 0;
};

/// Least-valid-blocks-first; ties broken toward the lowest segment id,
/// matching a full ascending-id scan.
std::unique_ptr<VictimPolicy> make_greedy();

/// Rosenblum's cost-benefit: maximize (1 - u) * age / (1 + u).
std::unique_ptr<VictimPolicy> make_cost_benefit();

/// d-choice: sample d candidates uniformly, greedy among them.
std::unique_ptr<VictimPolicy> make_d_choice(std::uint32_t d);

/// Windowed greedy: greedy among the w oldest sealed segments.
std::unique_ptr<VictimPolicy> make_windowed_greedy(std::uint32_t window);

/// Uniformly random victim (stress baseline).
std::unique_ptr<VictimPolicy> make_random();

/// Factory by name: "greedy", "cost-benefit", "d-choice", "windowed",
/// "random". The parameterized policies accept a ":<n>" suffix overriding
/// their default parameter — "d-choice:4" (default d=8), "windowed:64"
/// (default window=32). Throws std::invalid_argument for unknown names,
/// malformed or zero parameters, and parameters on policies that take
/// none.
std::unique_ptr<VictimPolicy> make_victim_policy(std::string_view name);

}  // namespace adapt::lss
