// Traffic accounting for the LSS engine. All counts are in blocks.
//
// WA follows the paper's "actual write amplification ratio": every block
// physically written to the array (user payload, GC rewrites, shadow-append
// copies, zero padding) divided by user payload. Padding-traffic ratio is
// padding over total physical writes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/histogram.h"

namespace adapt::lss {

struct GroupTraffic {
  std::uint64_t user_blocks = 0;
  std::uint64_t gc_blocks = 0;
  std::uint64_t shadow_blocks = 0;
  std::uint64_t padding_blocks = 0;
  std::uint64_t full_flushes = 0;
  std::uint64_t padded_flushes = 0;
  /// Real payload blocks inside padded chunks; avg fill of a padded chunk
  /// is padded_fill_blocks / padded_flushes (the paper's C_i, Eq. 1).
  std::uint64_t padded_fill_blocks = 0;
  /// Sub-chunk flushes in read-modify-write mode.
  std::uint64_t rmw_flushes = 0;
  /// Payload blocks persisted by sub-chunk RMW flushes. A media-write
  /// counter (the blocks were already counted as user/gc/shadow when
  /// appended), so it does not feed total_blocks().
  std::uint64_t rmw_blocks = 0;
  std::uint64_t segments_sealed = 0;
  std::uint64_t segments_reclaimed = 0;
  /// Provenance: gc_from[g] = GC-migrated blocks that landed in this group
  /// whose victim segment belonged to group g. Sums to gc_blocks. Sized
  /// lazily on first migration (stays empty for groups that never receive
  /// GC traffic).
  std::vector<std::uint64_t> gc_from;

  std::uint64_t total_blocks() const noexcept {
    return user_blocks + gc_blocks + shadow_blocks + padding_blocks;
  }

  void count_gc_from(std::size_t source_group, std::size_t group_count) {
    if (gc_from.size() < group_count) {
      gc_from.resize(group_count);
    }
    ++gc_from[source_group];
  }

  /// Element-wise accumulation (shard-merge).
  void merge_from(const GroupTraffic& other) {
    user_blocks += other.user_blocks;
    gc_blocks += other.gc_blocks;
    shadow_blocks += other.shadow_blocks;
    padding_blocks += other.padding_blocks;
    full_flushes += other.full_flushes;
    padded_flushes += other.padded_flushes;
    padded_fill_blocks += other.padded_fill_blocks;
    rmw_flushes += other.rmw_flushes;
    rmw_blocks += other.rmw_blocks;
    segments_sealed += other.segments_sealed;
    segments_reclaimed += other.segments_reclaimed;
    if (gc_from.size() < other.gc_from.size()) {
      gc_from.resize(other.gc_from.size());
    }
    for (std::size_t g = 0; g < other.gc_from.size(); ++g) {
      gc_from[g] += other.gc_from[g];
    }
  }
};

struct LssMetrics {
  std::uint64_t user_blocks = 0;
  std::uint64_t gc_blocks = 0;
  std::uint64_t shadow_blocks = 0;
  std::uint64_t padding_blocks = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_migrated_blocks = 0;
  std::uint64_t forced_lazy_flushes = 0;  ///< shadow-in-victim force flushes
  std::uint64_t rmw_flushes = 0;          ///< sub-chunk RMW persist events
  /// Payload blocks persisted by sub-chunk RMW flushes (media-write
  /// counter; the blocks are already in user/gc/shadow totals).
  std::uint64_t rmw_blocks = 0;
  /// Blocks read for parity updates in RMW mode (old data + old parity).
  std::uint64_t rmw_read_blocks = 0;
  // Read path (paper §2.2: "for reads, systems fetch entire chunks").
  std::uint64_t read_blocks = 0;         ///< blocks requested by reads
  std::uint64_t read_chunk_fetches = 0;  ///< whole-chunk array fetches
  std::uint64_t read_buffer_hits = 0;    ///< served from pending chunks
  std::uint64_t read_unmapped = 0;       ///< reads of never-written blocks
  /// Lifetime (in vtime = user blocks written) between a primary copy's
  /// segment birth and its invalidation. Deterministic; exported in the
  /// manifest for SepBIT-style invalidation-time analysis.
  Log2Histogram block_lifetime;
  /// Host-clock microseconds per GcController::run_once. Nondeterministic
  /// (wall time): reported in the manifest but excluded from the
  /// adapt_compare regression gate.
  Log2Histogram gc_pause_us;
  std::vector<GroupTraffic> groups;

  std::uint64_t total_blocks() const noexcept {
    return user_blocks + gc_blocks + shadow_blocks + padding_blocks;
  }

  /// Write amplification including padding (>= 1 once anything is written).
  double wa() const noexcept {
    return user_blocks == 0 ? 0.0
                            : static_cast<double>(total_blocks()) /
                                  static_cast<double>(user_blocks);
  }

  /// GC-only write amplification (excludes padding/shadow), for ablations.
  double gc_wa() const noexcept {
    return user_blocks == 0
               ? 0.0
               : static_cast<double>(user_blocks + gc_blocks) /
                     static_cast<double>(user_blocks);
  }

  double padding_ratio() const noexcept {
    const std::uint64_t total = total_blocks();
    return total == 0 ? 0.0
                      : static_cast<double>(padding_blocks) /
                            static_cast<double>(total);
  }

  /// Accumulates `other` into this (shard-merge: counters sum element-wise;
  /// per-group vectors merge index-wise, growing to the larger size).
  void merge_from(const LssMetrics& other) {
    user_blocks += other.user_blocks;
    gc_blocks += other.gc_blocks;
    shadow_blocks += other.shadow_blocks;
    padding_blocks += other.padding_blocks;
    gc_runs += other.gc_runs;
    gc_migrated_blocks += other.gc_migrated_blocks;
    forced_lazy_flushes += other.forced_lazy_flushes;
    rmw_flushes += other.rmw_flushes;
    rmw_blocks += other.rmw_blocks;
    rmw_read_blocks += other.rmw_read_blocks;
    read_blocks += other.read_blocks;
    read_chunk_fetches += other.read_chunk_fetches;
    read_buffer_hits += other.read_buffer_hits;
    read_unmapped += other.read_unmapped;
    block_lifetime.merge_from(other.block_lifetime);
    gc_pause_us.merge_from(other.gc_pause_us);
    if (groups.size() < other.groups.size()) {
      groups.resize(other.groups.size());
    }
    for (std::size_t g = 0; g < other.groups.size(); ++g) {
      groups[g].merge_from(other.groups[g]);
    }
  }
};

}  // namespace adapt::lss
