#include "lss/sharded_engine.h"

#include <stdexcept>
#include <string>

namespace adapt::lss {

std::uint32_t parse_shard_count(std::string_view text) {
  if (text.empty() || text.size() > 10) {
    throw std::invalid_argument("shard count: expected 1..10 decimal digits");
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("shard count: non-digit character");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value == 0 || value > kMaxShards) {
    throw std::invalid_argument("shard count: must be in [1, " +
                                std::to_string(kMaxShards) + "]");
  }
  return static_cast<std::uint32_t>(value);
}

LssConfig shard_config(const LssConfig& global, std::uint32_t shard_count) {
  if (shard_count == 0 || shard_count > kMaxShards) {
    throw std::invalid_argument("shard_config: shard count must be in [1, " +
                                std::to_string(kMaxShards) + "]");
  }
  if (global.logical_blocks < shard_count) {
    throw std::invalid_argument(
        "shard_config: more shards than logical blocks");
  }
  LssConfig per_shard = global;
  // Uniform ceil-division: every shard gets the same logical size (the
  // remainder shards simply never see their top addresses), so one
  // validate() covers all shards and shard 0 at N == 1 is exact.
  per_shard.logical_blocks =
      (global.logical_blocks + shard_count - 1) / shard_count;
  return per_shard;
}

ShardedEngine::ShardedEngine(const LssConfig& config,
                             std::uint32_t shard_count,
                             std::uint64_t base_seed,
                             const ShardFactory& factory)
    : shard_config_(shard_config(config, shard_count)),
      logical_blocks_(config.logical_blocks) {
  if (!factory) {
    throw std::invalid_argument("ShardedEngine: null shard factory");
  }
  shards_.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    Shard shard;
    shard.parts = factory(i, shard_config_);
    if (shard.parts.policy == nullptr || shard.parts.victim == nullptr) {
      throw std::invalid_argument(
          "ShardedEngine: factory returned a null policy or victim");
    }
    shard.engine = std::make_unique<LssEngine>(
        shard_config_, *shard.parts.policy, *shard.parts.victim,
        shard.parts.array.get(), base_seed + i);
    if (shard.parts.hook != nullptr) {
      shard.engine->set_aggregation_hook(shard.parts.hook);
    }
    shards_.push_back(std::move(shard));
  }
}

template <typename Fn>
void ShardedEngine::for_each_subspan(Lba lba, std::uint32_t blocks,
                                     Fn&& fn) const {
  const auto n = static_cast<std::uint32_t>(shards_.size());
  const auto first_shard = static_cast<std::uint32_t>(lba % n);
  for (std::uint32_t s = 0; s < n; ++s) {
    // Offset within the span of the first block landing on shard s.
    const std::uint32_t i0 = (s + n - first_shard) % n;
    if (i0 >= blocks) continue;
    const std::uint32_t count = (blocks - i0 + n - 1) / n;
    fn(s, (lba + i0) / n, count);
  }
}

void ShardedEngine::write(Lba lba, std::uint32_t blocks, TimeUs now_us) {
  if (lba + blocks > logical_blocks_) {
    throw std::out_of_range("write beyond logical capacity");
  }
  for_each_subspan(lba, blocks,
                   [&](std::uint32_t s, Lba local, std::uint32_t count) {
                     shards_[s].engine->write(local, count, now_us);
                   });
}

void ShardedEngine::read(Lba lba, std::uint32_t blocks, TimeUs now_us) {
  if (lba + blocks > logical_blocks_) {
    throw std::out_of_range("read beyond logical capacity");
  }
  for_each_subspan(lba, blocks,
                   [&](std::uint32_t s, Lba local, std::uint32_t count) {
                     shards_[s].engine->read(local, count, now_us);
                   });
}

void ShardedEngine::advance_time(TimeUs now_us) {
  for (Shard& shard : shards_) shard.engine->advance_time(now_us);
}

void ShardedEngine::flush_all() {
  for (Shard& shard : shards_) shard.engine->flush_all();
}

bool ShardedEngine::gc_step(TimeUs now_us, std::uint32_t watermark,
                            ThreadPool* pool) {
  std::vector<char> did_work(shards_.size(), 0);
  if (pool == nullptr || shards_.size() == 1) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      did_work[i] = shards_[i].engine->gc_step(now_us, watermark) ? 1 : 0;
    }
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = shards_[i];
      char* flag = &did_work[i];
      pool->submit([&shard, flag, now_us, watermark] {
        try {
          *flag = shard.engine->gc_step(now_us, watermark) ? 1 : 0;
        } catch (...) {
          shard.error = std::current_exception();
        }
      });
    }
    pool->wait_idle();
    for (Shard& shard : shards_) {
      if (shard.error != nullptr) {
        const std::exception_ptr err = shard.error;
        shard.error = nullptr;
        std::rethrow_exception(err);
      }
    }
  }
  for (const char w : did_work) {
    if (w != 0) return true;
  }
  return false;
}

void ShardedEngine::enqueue(Lba lba, std::uint32_t blocks, TimeUs now_us,
                            bool is_write) {
  if (lba + blocks > logical_blocks_) {
    throw std::out_of_range(is_write ? "write beyond logical capacity"
                                     : "read beyond logical capacity");
  }
  for_each_subspan(lba, blocks,
                   [&](std::uint32_t s, Lba local, std::uint32_t count) {
                     shards_[s].queue.push_back(
                         QueuedOp{local, count, now_us, is_write});
                   });
}

void ShardedEngine::enqueue_write(Lba lba, std::uint32_t blocks,
                                  TimeUs now_us) {
  enqueue(lba, blocks, now_us, /*is_write=*/true);
}

void ShardedEngine::enqueue_read(Lba lba, std::uint32_t blocks,
                                 TimeUs now_us) {
  enqueue(lba, blocks, now_us, /*is_write=*/false);
}

void ShardedEngine::reserve_queues(std::size_t expected_ops) {
  // +1 rounds up so tiny volumes on many shards still get a slot each.
  const std::size_t per_shard = expected_ops / shards_.size() + 1;
  for (Shard& shard : shards_) {
    shard.queue.reserve(shard.queue.size() + per_shard);
  }
}

std::size_t ShardedEngine::queued_ops() const noexcept {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.queue.size();
  return total;
}

void ShardedEngine::replay_queue(Shard& shard) noexcept {
  try {
    for (const QueuedOp& op : shard.queue) {
      if (op.is_write) {
        shard.engine->write(op.local_lba, op.blocks, op.ts_us);
      } else {
        shard.engine->read(op.local_lba, op.blocks, op.ts_us);
      }
    }
  } catch (...) {
    shard.error = std::current_exception();
  }
  shard.queue.clear();
}

void ShardedEngine::run_queued(ThreadPool* pool) {
  if (pool == nullptr || shards_.size() == 1) {
    for (Shard& shard : shards_) replay_queue(shard);
  } else {
    for (Shard& shard : shards_) {
      pool->submit([&shard] { replay_queue(shard); });
    }
    pool->wait_idle();
  }
  for (Shard& shard : shards_) {
    if (shard.error != nullptr) {
      const std::exception_ptr err = shard.error;
      shard.error = nullptr;
      std::rethrow_exception(err);
    }
  }
}

LssMetrics ShardedEngine::merged_metrics() const {
  LssMetrics merged;
  for (const Shard& shard : shards_) {
    merged.merge_from(shard.engine->metrics());
  }
  return merged;
}

std::vector<std::uint32_t> ShardedEngine::merged_segments_per_group() const {
  std::vector<std::uint32_t> merged;
  std::vector<std::uint32_t> scratch;
  for (const Shard& shard : shards_) {
    shard.engine->segments_per_group(scratch);
    if (merged.size() < scratch.size()) merged.resize(scratch.size(), 0);
    for (std::size_t g = 0; g < scratch.size(); ++g) {
      merged[g] += scratch[g];
    }
  }
  return merged;
}

array::StreamStats ShardedEngine::merged_array_totals() const {
  array::StreamStats merged;
  for (const Shard& shard : shards_) {
    if (shard.parts.array == nullptr) continue;
    const array::StreamStats t = shard.parts.array->totals();
    merged.chunks_written += t.chunks_written;
    merged.data_bytes += t.data_bytes;
    merged.padding_bytes += t.padding_bytes;
    merged.parity_bytes += t.parity_bytes;
    merged.rmw_writes += t.rmw_writes;
    merged.rmw_read_bytes += t.rmw_read_bytes;
  }
  return merged;
}

std::uint64_t ShardedEngine::chunks_flushed() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.engine->chunks_flushed();
  return total;
}

std::size_t ShardedEngine::policy_memory_bytes() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.parts.policy->memory_usage_bytes();
  }
  return total;
}

void ShardedEngine::check_invariants(audit::Level level) const {
  for (const Shard& shard : shards_) shard.engine->check_invariants(level);
}

}  // namespace adapt::lss
