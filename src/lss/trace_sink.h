// Engine-side tracing hook: a tiny POD event record and an abstract sink.
//
// The engine components (SegmentPool, ChunkWriter, GcController, LssEngine,
// AdaptPolicy) emit TraceEvents through an optional TraceSink*; the concrete
// ring buffer lives in src/obs/trace_log.h so the hot path only depends on
// this header. Tracing is compiled out by default: configure with
// -DADAPT_TRACING=ON (which defines ADAPT_TRACING_COMPILED=1) to enable the
// emit path; otherwise emit() is an empty constexpr-if branch and the
// instrumentation costs nothing.
#pragma once

#include <cstdint>

#include "common/types.h"

#ifndef ADAPT_TRACING_COMPILED
#define ADAPT_TRACING_COMPILED 1
#endif

namespace adapt::lss {

inline constexpr bool kTracingCompiled = ADAPT_TRACING_COMPILED != 0;

enum class TraceEventKind : std::uint8_t {
  kUserWrite,       ///< a = lba
  kChunkFlush,      ///< a = fill_blocks, b = padded (0/1), c = chunk index
  kRmwFlush,        ///< a = pending blocks merged, c = chunk index
  kShadowAppend,    ///< group = host, a = donor group, b = blocks appended
  kShadowExpire,    ///< group = flushed group, a = shadows expired
  kSegmentAlloc,    ///< a = segment id
  kSegmentSeal,     ///< a = segment id, b = valid blocks at seal
  kGcRun,           ///< group = victim group, a = victim segment,
                    ///< b = migrated blocks, c = forced lazy flushes
  kThresholdAdapt,  ///< a = new threshold, b = total adoptions so far
  kGroupCommit,     ///< group = shard index, a = batched ops, b = blocks,
                    ///< c = chunks flushed by the batch
  kLaneSubmit,      ///< group = lane, a = seq, b = inflight after admission,
                    ///< c = admit_us (>= wall_us when the queue was full)
  kLaneComplete,    ///< group = lane, a = seq, b = service_us,
                    ///< c = complete_us (virtual durable time)
  kOpSubmit,        ///< group = shard, a = lba, b = blocks (op applied into
                    ///< a batch; id carries the batch flow id)
  kOpDurable,       ///< group = shard, a = lba, b = blocks, c = durable_us
};

/// POD event record. `ts` is the engine's deterministic virtual clock
/// (vtime = user blocks written so far) and `wall_us` the simulated
/// microsecond clock — never the host clock, so traces replay bit-identical.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kUserWrite;
  GroupId group = kInvalidGroup;
  std::uint64_t ts = 0;       ///< vtime at emission
  TimeUs wall_us = 0;         ///< simulated wall clock at emission
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  /// Causal-flow correlation id: events of one op's lifecycle (op submit ->
  /// group commit -> chunk flush -> lane submit/complete -> op durable)
  /// share the batch's nonzero id; 0 means "not part of a flow". The
  /// chrome-trace exporter renders matching ids as Perfetto flow arrows.
  std::uint64_t id = 0;
};

/// Abstract sink; the obs layer provides the ring-buffer implementation.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Single emission point: compiles to nothing when tracing is off, and to a
/// null check + virtual call when on. Callers pass a possibly-null sink.
inline void emit(TraceSink* sink, const TraceEvent& event) {
  if constexpr (kTracingCompiled) {
    if (sink != nullptr) {
      sink->record(event);
    }
  } else {
    (void)sink;
    (void)event;
  }
}

}  // namespace adapt::lss
