// Op-lifecycle timeline: phase-attributed latency for the concurrent write
// path.
//
// Every op that rides a group-commit batch passes through five milestones,
// all in deterministic virtual time (the simulated microsecond clock, never
// the host clock):
//
//   submit    the client called write()
//   joined    the leader applied the op (its per-shard-monotonised ts)
//   applied   the whole batch left the engine critical section
//   lane      the batch's flushes started device service on their lanes
//   durable   the last flush of the batch completed
//
// LatencyBreakdown turns consecutive milestone gaps into one Log2Histogram
// per phase. The milestones are clamped into a monotone sequence before
// differencing, so the four phase gaps telescope EXACTLY back to the total:
//
//   intake_wait + batch_apply + lane_queue + device_service == total
//
// holds per op, and therefore sum-for-sum and count-for-count over the
// histograms. validate_manifest_json enforces this additivity identity on
// every exported latency_breakdown block, the same way the provenance
// identity is enforced — a manifest whose phases don't explain its total is
// rejected, not trusted.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/histogram.h"
#include "common/types.h"

namespace adapt::lss {

/// Result of submitting one batch's drained flushes to the device model.
/// `durable_us` is the modeled completion time of the LAST flush (0 when
/// nothing was flushed); `service_us` is that flush's pure device service
/// time, which splits the post-apply wait into lane queueing vs media time.
struct FlushOutcome {
  TimeUs durable_us = 0;
  TimeUs service_us = 0;
};

/// Phase-attributed latency histograms (all microseconds, virtual time).
struct LatencyBreakdown {
  Log2Histogram intake_wait_us;     ///< submit -> joined (link/park wait)
  Log2Histogram batch_apply_us;     ///< joined -> batch applied
  Log2Histogram lane_queue_us;      ///< applied -> device service start
  Log2Histogram device_service_us;  ///< service start -> durable
  Log2Histogram total_us;           ///< submit -> durable

  /// Records one op from its raw milestones. Clamping makes the sequence
  /// monotone (clock skew between a client's submit stamp and the shard
  /// clock otherwise produces negative phases) and keeps the telescoping
  /// identity exact: the five adds always satisfy
  /// intake+apply+queue+service == total, value for value.
  void add_op(TimeUs submit_us, TimeUs joined_us, TimeUs applied_us,
              TimeUs durable_us, TimeUs service_us) noexcept {
    const TimeUs joined = std::max(submit_us, joined_us);
    const TimeUs applied = std::max(joined, applied_us);
    const TimeUs durable = std::max(applied, durable_us);
    const TimeUs service_start = std::clamp(
        durable >= service_us ? durable - service_us : TimeUs{0}, applied,
        durable);
    intake_wait_us.add(joined - submit_us);
    batch_apply_us.add(applied - joined);
    lane_queue_us.add(service_start - applied);
    device_service_us.add(durable - service_start);
    total_us.add(durable - submit_us);
  }

  void merge_from(const LatencyBreakdown& other) noexcept {
    intake_wait_us.merge_from(other.intake_wait_us);
    batch_apply_us.merge_from(other.batch_apply_us);
    lane_queue_us.merge_from(other.lane_queue_us);
    device_service_us.merge_from(other.device_service_us);
    total_us.merge_from(other.total_us);
  }

  bool empty() const noexcept { return total_us.empty(); }
};

/// One committed batch, as published to live observers (obs::RuntimeStats)
/// by the batch leader right after the batch's durable time is known. The
/// breakdown covers exactly this batch's applied ops.
struct BatchSample {
  std::uint32_t shard = 0;
  std::uint64_t ops = 0;
  std::uint64_t blocks = 0;
  LatencyBreakdown breakdown;
};

}  // namespace adapt::lss
