// LssEngine: the log-structured store running on top of the SSD array.
//
// The engine is an orchestrator over four cohesive components, so the
// write path reads as a pipeline instead of a tangle of private methods:
//   * SegmentPool — segment lifecycle (open/seal/free, free list,
//     per-group in-use counts) and victim-index notifications;
//   * BlockMap — logical-to-physical mapping (packed primary map + shadow
//     map, locate/invalidate);
//   * ChunkWriter — chunk-granularity persistence with the SLA coalescing
//     window: a group's partial chunk is zero-padded and flushed when the
//     window since its first pending *user* block expires (GC appends are
//     bulk and carry no deadline, matching the paper's Observation 2);
//     RMW sub-chunk flushes; array mirroring; shadow appends;
//   * GcController — watermark logic, victim selection through the
//     incremental index, live-block migration.
// The engine itself keeps the clocks (virtual time = user blocks written,
// wall time), the metrics, and the decision points that need the whole
// picture: deadline firing with ADAPT's cross-group aggregation hook
// (an optional hook may redirect a deadline-expired partial chunk into
// *shadow appends* hosted by a colder group instead of padding, §3.3 —
// originals stay pending ("lazy append") and their shadow copies expire
// when the original chunk persists), and the tiered self-audit.
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "array/addressed_array.h"
#include "array/ssd_array.h"
#include "audit/audit.h"
#include "common/rng.h"
#include "common/types.h"
#include "lss/block_map.h"
#include "lss/chunk_writer.h"
#include "lss/config.h"
#include "lss/gc_controller.h"
#include "lss/metrics.h"
#include "lss/placement_policy.h"
#include "lss/segment.h"
#include "lss/segment_pool.h"
#include "lss/trace_sink.h"
#include "lss/victim_policy.h"

namespace adapt::lss {

class LssEngine;

/// Outcome of a cross-group aggregation decision: shadow copies of
/// `donor`'s pending blocks are appended into `host`'s open chunk, and the
/// host chunk is then flushed (padded if still partial). The group whose
/// deadline fired must be either donor or host; donor == kInvalidGroup
/// means "no aggregation, zero-pad in place".
struct AggregationDecision {
  GroupId donor = kInvalidGroup;
  GroupId host = kInvalidGroup;

  bool aggregate() const noexcept { return donor != kInvalidGroup; }
};

/// Cross-group aggregation decision point (implemented by AdaptPolicy).
class AggregationHook {
 public:
  virtual ~AggregationHook() = default;

  /// Called when group `group`'s coalescing deadline fires on a partial
  /// chunk holding at least one block that still needs durability.
  virtual AggregationDecision on_chunk_deadline(GroupId group,
                                                const LssEngine& engine) = 0;
};

/// Passive per-user-block observation hook (implemented by
/// obs::EngineSampler). Called after a user block has been fully applied —
/// vtime advanced, deadlines fired, GC settled — so implementations see a
/// consistent engine. Observers must treat the engine as read-only; the
/// write path costs one null check when no observer is attached.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void on_user_block(const LssEngine& engine, TimeUs now_us) = 0;
};

class LssEngine {
 public:
  /// `policy` and `victim` must outlive the engine. `array` is optional;
  /// when given, every flushed chunk is mirrored to it (stream = group).
  /// The constructor re-binds `victim`'s index to this engine's pool and
  /// then drives its on_seal / on_valid_delta / on_free notifications, so
  /// a victim policy cannot be shared by two live engines.
  LssEngine(const LssConfig& config, PlacementPolicy& policy,
            VictimPolicy& victim, array::SsdArray* array = nullptr,
            std::uint64_t seed = 1);

  LssEngine(const LssEngine&) = delete;
  LssEngine& operator=(const LssEngine&) = delete;

  void set_aggregation_hook(AggregationHook* hook) noexcept { hook_ = hook; }

  /// Attaches a passive metrics observer (nullptr detaches). Observation
  /// never changes engine behaviour: the pinned fixed-seed regression
  /// metrics are bit-identical with and without an observer.
  void set_observer(EngineObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Attaches a trace sink (nullptr detaches) and forwards it to every
  /// component hook point. Like observers, tracing is passive: engine
  /// behaviour and metrics are bit-identical with and without a sink.
  /// No-op in builds configured with -DADAPT_TRACING=OFF.
  void set_trace_sink(TraceSink* sink) noexcept {
    trace_ = sink;
    pool_.set_trace_sink(sink, &wall_us_);
    writer_.set_trace_sink(sink);
    gc_.set_trace_sink(sink);
  }

  /// Attaches a flush-record collector to the chunk writer (nullptr
  /// detaches): every flush appends a PendingFlush that the caller drains
  /// and submits to a device model (see ChunkWriter::set_flush_collector).
  void set_flush_collector(std::vector<PendingFlush>* out) noexcept {
    writer_.set_flush_collector(out);
  }

  /// Sets the causal-flow id the chunk writer stamps into flush events and
  /// collected PendingFlush records (see ChunkWriter::set_flow_id).
  void set_flow_id(std::uint64_t id) noexcept { writer_.set_flow_id(id); }

  /// Attaches an address-mapped array with flash-backed devices: every
  /// chunk flush writes through at its real array address, segment
  /// reclamation TRIMs the range, and device-internal WA becomes
  /// measurable. The array must cover total_segments * segment_chunks
  /// chunks of matching geometry.
  void attach_addressed_array(array::AddressedArray* addressed);

  /// Applies a user write of `blocks` consecutive blocks at `lba`,
  /// arriving at wall time `now_us`.
  void write(Lba lba, std::uint32_t blocks, TimeUs now_us);

  /// Single-block user write.
  void write_block(Lba lba, TimeUs now_us);

  /// Applies a user read of `blocks` consecutive blocks at `lba`. The
  /// array serves reads at chunk granularity (paper §2.2), so one fetch
  /// covers every requested block residing in the same chunk; blocks still
  /// pending in an open chunk are served from the buffer.
  void read(Lba lba, std::uint32_t blocks, TimeUs now_us);

  /// Advances wall time, firing any expired coalescing deadlines.
  void advance_time(TimeUs now_us);

  /// Force-pads every partial chunk (end-of-trace drain).
  void flush_all();

  /// One proactive GC pass for background GC threads: reclaims a victim if
  /// the free pool has fallen below `watermark` segments. Returns true if
  /// work was done. Not thread-safe — callers serialize externally.
  bool gc_step(TimeUs now_us, std::uint32_t watermark);

  /// Total chunks flushed so far (full + padded), for bandwidth accounting.
  std::uint64_t chunks_flushed() const noexcept {
    return writer_.chunks_flushed();
  }

  // -- observers -----------------------------------------------------------

  const LssConfig& config() const noexcept { return config_; }
  VTime vtime() const noexcept { return vtime_; }
  GroupId group_count() const noexcept { return writer_.group_count(); }
  const LssMetrics& metrics() const noexcept { return metrics_; }
  const GroupTraffic& group_traffic(GroupId g) const {
    return metrics_.groups.at(g);
  }

  /// Blocks appended to `g`'s open segment but not yet flushed to a chunk.
  std::uint32_t pending_blocks(GroupId g) const {
    return writer_.pending_blocks(g);
  }

  /// Of the pending blocks, how many are still valid and not yet shadowed.
  std::uint32_t pending_unshadowed_valid(GroupId g) const {
    return writer_.pending_unshadowed_valid(g);
  }

  /// Number of in-use (non-free) segments currently owned by each group.
  /// O(groups): maintained incrementally at segment open/free.
  std::vector<std::uint32_t> segments_per_group() const {
    return pool_.group_segments();
  }

  /// Allocation-free variant for per-sample observer paths: assigns into
  /// `out`, reusing its capacity across calls.
  void segments_per_group(std::vector<std::uint32_t>& out) const {
    const std::vector<std::uint32_t>& src = pool_.group_segments();
    out.assign(src.begin(), src.end());
  }

  std::uint32_t free_segments() const noexcept { return pool_.free_count(); }

  /// Where lba currently lives (primary copy), or kNowhere.
  BlockLocation locate(Lba lba) const { return map_.locate(lba); }
  bool has_live_shadow(Lba lba) const { return map_.has_shadow(lba); }

  /// Where lba's live shadow copy sits, or kNowhere when it has none.
  BlockLocation shadow_location(Lba lba) const {
    return map_.shadow_location(lba);
  }
  std::size_t live_shadow_count() const noexcept {
    return map_.live_shadow_count();
  }

  /// True while lba's primary copy sits in its group's open chunk, appended
  /// but not yet persisted to the array.
  bool is_pending(Lba lba) const;

  std::span<const Segment> segments() const noexcept {
    return pool_.segments();
  }

  /// The logical block stored in a physical slot (kInvalidLba for padding
  /// or never-written slots). Slot LBAs live in the pool's SoA arena.
  Lba slot_lba(BlockLocation loc) const noexcept {
    return pool_.slot_lba(loc);
  }
  Lba slot_lba(SegmentId seg, std::uint32_t slot) const noexcept {
    return pool_.slot_lba(seg, slot);
  }
  /// All slot LBAs of one segment, in slot order.
  std::span<const Lba> segment_lbas(SegmentId seg) const noexcept {
    return pool_.segment_lbas(seg);
  }

  /// Effective self-audit tier (config value + ADAPT_AUDIT override).
  audit::Level audit_level() const noexcept { return audit_level_; }

  /// Consistency checks; throws std::logic_error on violation.
  /// kCounters runs each component's O(groups) counter cross-checks;
  /// kFull additionally re-derives them with O(n) structural walks
  /// (bitmap popcounts, mapping walk, victim-index membership).
  void check_invariants(audit::Level level) const;
  void check_invariants() const { check_invariants(audit::Level::kFull); }

  /// Test-only mutable access for auditor failure-detection tests: lets a
  /// test corrupt a segment on purpose and assert the audit catches it.
  Segment& corrupt_segment_for_test(SegmentId id) { return pool_.at(id); }

  /// Test-only mutable slot-LBA access (same purpose, SoA arena).
  Lba& corrupt_slot_lba_for_test(SegmentId seg, std::uint32_t slot) {
    return pool_.slot_lba_for_test(seg, slot);
  }

 private:
  void fire_deadline(GroupId g, TimeUs now_us);
  void check_counters() const;
  /// Per-op self-audit hook (no-op at Level::kOff).
  void audit_point() const {
    if (audit_level_ != audit::Level::kOff) check_invariants(audit_level_);
  }

  LssConfig config_;
  PlacementPolicy& policy_;
  VictimPolicy& victim_;
  array::SsdArray* array_;
  AggregationHook* hook_ = nullptr;
  EngineObserver* observer_ = nullptr;
  TraceSink* trace_ = nullptr;
  Rng rng_;
  audit::Level audit_level_ = audit::Level::kOff;

  VTime vtime_ = 0;
  TimeUs wall_us_ = 0;
  LssMetrics metrics_;

  // Components (construction order matters: writer and gc hold references
  // to the pool/map and to vtime_/metrics_ above).
  SegmentPool pool_;
  BlockMap map_;
  ChunkWriter writer_;
  GcController gc_;
};

}  // namespace adapt::lss
