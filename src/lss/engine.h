// LssEngine: the log-structured store running on top of the SSD array.
//
// Responsibilities:
//   * segment pool management (open/seal/reclaim, per-group open segments);
//   * chunk-granularity persistence with the SLA coalescing window —
//     a group's partial chunk is zero-padded and flushed when the window
//     since its first pending *user* block expires (GC appends are bulk and
//     carry no deadline, matching the paper's Observation 2);
//   * garbage collection driven by a pluggable victim policy, with valid
//     blocks re-placed through the placement policy;
//   * ADAPT's cross-group aggregation: an optional hook may redirect a
//     deadline-expired partial chunk into *shadow appends* hosted by a
//     colder group instead of padding (§3.3). Original blocks stay pending
//     ("lazy append") and their shadow copies expire when the original
//     chunk persists.
//
// Lifespan/age bookkeeping uses virtual time (user blocks written).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "array/addressed_array.h"
#include "array/ssd_array.h"
#include "audit/audit.h"
#include "common/rng.h"
#include "common/types.h"
#include "lss/config.h"
#include "lss/metrics.h"
#include "lss/placement_policy.h"
#include "lss/segment.h"
#include "lss/victim_policy.h"

#include <unordered_map>

namespace adapt::lss {

class LssEngine;

/// Outcome of a cross-group aggregation decision: shadow copies of
/// `donor`'s pending blocks are appended into `host`'s open chunk, and the
/// host chunk is then flushed (padded if still partial). The group whose
/// deadline fired must be either donor or host; donor == kInvalidGroup
/// means "no aggregation, zero-pad in place".
struct AggregationDecision {
  GroupId donor = kInvalidGroup;
  GroupId host = kInvalidGroup;

  bool aggregate() const noexcept { return donor != kInvalidGroup; }
};

/// Cross-group aggregation decision point (implemented by AdaptPolicy).
class AggregationHook {
 public:
  virtual ~AggregationHook() = default;

  /// Called when group `group`'s coalescing deadline fires on a partial
  /// chunk holding at least one block that still needs durability.
  virtual AggregationDecision on_chunk_deadline(GroupId group,
                                                const LssEngine& engine) = 0;
};

/// Passive per-user-block observation hook (implemented by
/// obs::EngineSampler). Called after a user block has been fully applied —
/// vtime advanced, deadlines fired, GC settled — so implementations see a
/// consistent engine. Observers must treat the engine as read-only; the
/// write path costs one null check when no observer is attached.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void on_user_block(const LssEngine& engine, TimeUs now_us) = 0;
};

class LssEngine {
 public:
  /// `policy` and `victim` must outlive the engine. `array` is optional;
  /// when given, every flushed chunk is mirrored to it (stream = group).
  /// The constructor re-binds `victim`'s index to this engine's pool and
  /// then drives its on_seal / on_valid_delta / on_free notifications, so
  /// a victim policy cannot be shared by two live engines.
  LssEngine(const LssConfig& config, PlacementPolicy& policy,
            VictimPolicy& victim, array::SsdArray* array = nullptr,
            std::uint64_t seed = 1);

  LssEngine(const LssEngine&) = delete;
  LssEngine& operator=(const LssEngine&) = delete;

  void set_aggregation_hook(AggregationHook* hook) noexcept { hook_ = hook; }

  /// Attaches a passive metrics observer (nullptr detaches). Observation
  /// never changes engine behaviour: the pinned fixed-seed regression
  /// metrics are bit-identical with and without an observer.
  void set_observer(EngineObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Attaches an address-mapped array with flash-backed devices: every
  /// chunk flush writes through at its real array address, segment
  /// reclamation TRIMs the range, and device-internal WA becomes
  /// measurable. The array must cover total_segments * segment_chunks
  /// chunks of matching geometry.
  void attach_addressed_array(array::AddressedArray* addressed);

  /// Applies a user write of `blocks` consecutive blocks at `lba`,
  /// arriving at wall time `now_us`.
  void write(Lba lba, std::uint32_t blocks, TimeUs now_us);

  /// Single-block user write.
  void write_block(Lba lba, TimeUs now_us);

  /// Applies a user read of `blocks` consecutive blocks at `lba`. The
  /// array serves reads at chunk granularity (paper §2.2), so one fetch
  /// covers every requested block residing in the same chunk; blocks still
  /// pending in an open chunk are served from the buffer.
  void read(Lba lba, std::uint32_t blocks, TimeUs now_us);

  /// Advances wall time, firing any expired coalescing deadlines.
  void advance_time(TimeUs now_us);

  /// Force-pads every partial chunk (end-of-trace drain).
  void flush_all();

  /// One proactive GC pass for background GC threads: reclaims a victim if
  /// the free pool has fallen below `watermark` segments. Returns true if
  /// work was done. Not thread-safe — callers serialize externally.
  bool gc_step(TimeUs now_us, std::uint32_t watermark);

  /// Total chunks flushed so far (full + padded), for bandwidth accounting.
  std::uint64_t chunks_flushed() const noexcept;

  // -- observers -----------------------------------------------------------

  const LssConfig& config() const noexcept { return config_; }
  VTime vtime() const noexcept { return vtime_; }
  GroupId group_count() const noexcept { return static_cast<GroupId>(groups_.size()); }
  const LssMetrics& metrics() const noexcept { return metrics_; }
  const GroupTraffic& group_traffic(GroupId g) const {
    return metrics_.groups.at(g);
  }

  /// Blocks appended to `g`'s open segment but not yet flushed to a chunk.
  std::uint32_t pending_blocks(GroupId g) const;

  /// Of the pending blocks, how many are still valid and not yet shadowed.
  std::uint32_t pending_unshadowed_valid(GroupId g) const;

  /// Number of in-use (non-free) segments currently owned by each group.
  /// O(groups): maintained incrementally at segment open/free.
  std::vector<std::uint32_t> segments_per_group() const;

  std::uint32_t free_segments() const noexcept { return free_count_; }

  /// Where lba currently lives (primary copy), or kNowhere.
  BlockLocation locate(Lba lba) const;
  bool has_live_shadow(Lba lba) const { return shadow_.contains(lba); }

  /// Where lba's live shadow copy sits, or kNowhere when it has none.
  BlockLocation shadow_location(Lba lba) const;
  std::size_t live_shadow_count() const noexcept { return shadow_.size(); }

  /// True while lba's primary copy sits in its group's open chunk, appended
  /// but not yet persisted to the array.
  bool is_pending(Lba lba) const;

  std::span<const Segment> segments() const noexcept { return segments_; }

  /// Effective self-audit tier (config value + ADAPT_AUDIT override).
  audit::Level audit_level() const noexcept { return audit_level_; }

  /// Consistency checks; throws std::logic_error on violation.
  /// kCounters cross-checks the incrementally maintained counters in
  /// O(groups); kFull additionally re-derives them with O(n) structural
  /// walks (bitmap popcounts, mapping walk, victim-index membership).
  void check_invariants(audit::Level level) const;
  void check_invariants() const { check_invariants(audit::Level::kFull); }

  /// Test-only mutable access for auditor failure-detection tests: lets a
  /// test corrupt a segment on purpose and assert the audit catches it.
  Segment& corrupt_segment_for_test(SegmentId id) { return segments_.at(id); }

 private:
  enum class Source { kUser, kGc, kShadow };

  struct GroupState {
    SegmentId open_seg = kInvalidSegment;
    std::uint32_t flushed_slots = 0;  ///< slots of open seg already on disk
    bool deadline_armed = false;
    TimeUs chunk_deadline = 0;
  };

  static std::uint64_t pack(BlockLocation loc) noexcept;
  BlockLocation unpack(std::uint64_t packed) const noexcept;

  void append(GroupId g, Lba lba, Source source, TimeUs now_us);
  void open_new_segment(GroupId g);
  void seal_segment(GroupId g);
  void free_segment(SegmentId id);
  /// Flushes the open chunk of `g`; `fill_blocks` real payload, rest pad.
  void flush_chunk(GroupId g, std::uint32_t fill_blocks, bool padded);
  void pad_flush(GroupId g);
  /// RMW mode: persists the pending sub-chunk without padding; the chunk
  /// stays open for further appends.
  void rmw_flush(GroupId g);
  /// Called when write_ptr reaches a chunk boundary: full flush, or the
  /// completing RMW partial if earlier sub-chunk flushes happened.
  void flush_boundary(GroupId g);
  /// Expires shadows of primaries in slots [begin, end) of g's open seg.
  void expire_shadows_in_range(GroupId g, std::uint32_t begin,
                               std::uint32_t end);
  std::uint64_t global_chunk_index(SegmentId seg,
                                   std::uint32_t slot) const noexcept;
  void fire_deadline(GroupId g, TimeUs now_us);
  void shadow_append(GroupId g, GroupId host, TimeUs now_us);
  void invalidate(Lba lba);
  void invalidate_slot(BlockLocation loc);
  void maybe_gc(TimeUs now_us);
  void run_gc_once(TimeUs now_us);
  void expire_shadow(Lba lba);
  void check_counters() const;
  /// Per-op self-audit hook (no-op at Level::kOff).
  void audit_point() const {
    if (audit_level_ != audit::Level::kOff) check_invariants(audit_level_);
  }

  LssConfig config_;
  PlacementPolicy& policy_;
  VictimPolicy& victim_;
  array::SsdArray* array_;
  array::AddressedArray* addressed_array_ = nullptr;
  AggregationHook* hook_ = nullptr;
  EngineObserver* observer_ = nullptr;
  Rng rng_;
  audit::Level audit_level_ = audit::Level::kOff;

  std::vector<Segment> segments_;
  std::vector<SegmentId> free_list_;
  std::uint32_t free_count_ = 0;
  std::vector<GroupState> groups_;
  /// In-use segments per group, maintained at open/free.
  std::vector<std::uint32_t> group_segments_;
  /// primary_[lba] = packed BlockLocation or kUnmapped.
  std::vector<std::uint64_t> primary_;
  /// Live shadow copies (lazy-append originals still pending).
  std::unordered_map<Lba, BlockLocation> shadow_;

  VTime vtime_ = 0;
  TimeUs wall_us_ = 0;
  LssMetrics metrics_;
  /// Full + padded chunk flushes, kept as a running counter so the
  /// per-write bandwidth accounting does not walk metrics_.groups.
  std::uint64_t chunks_flushed_ = 0;
};

}  // namespace adapt::lss
