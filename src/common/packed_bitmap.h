// Fixed-size bitmap packed into 64-bit words. Replaces std::vector<bool>
// on the segment hot path: worded access lets GC relocation scans skip 64
// dead slots at a time and valid-count audits use hardware popcount
// instead of per-bit loops.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace adapt {

class PackedBitmap {
 public:
  static constexpr std::size_t kWordBits = 64;

  /// Resizes to `n` bits, all set to `value` (tail bits stay zero).
  void assign(std::size_t n, bool value) {
    size_ = n;
    words_.assign(word_count(), value ? ~std::uint64_t{0} : 0);
    if (value) trim_tail();
  }

  std::size_t size() const noexcept { return size_; }

  std::size_t word_count() const noexcept {
    return (size_ + kWordBits - 1) / kWordBits;
  }

  bool test(std::size_t i) const noexcept {
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i) noexcept {
    words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
  }

  void reset(std::size_t i) noexcept {
    words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
  }

  /// Raw word `w` (bits [64w, 64w + 63]); zero words let scans skip a
  /// whole dead region in one comparison.
  std::uint64_t word(std::size_t w) const noexcept { return words_[w]; }

  /// Number of set bits in [begin, end).
  std::size_t count(std::size_t begin, std::size_t end) const noexcept {
    if (begin >= end) return 0;
    const std::size_t first = begin / kWordBits;
    const std::size_t last = (end - 1) / kWordBits;
    const std::uint64_t head_mask = ~std::uint64_t{0} << (begin % kWordBits);
    const std::uint64_t tail_mask =
        ~std::uint64_t{0} >> (kWordBits - 1 - (end - 1) % kWordBits);
    if (first == last) {
      return static_cast<std::size_t>(
          std::popcount(words_[first] & head_mask & tail_mask));
    }
    std::size_t n = static_cast<std::size_t>(
        std::popcount(words_[first] & head_mask));
    for (std::size_t w = first + 1; w < last; ++w) {
      n += static_cast<std::size_t>(std::popcount(words_[w]));
    }
    return n + static_cast<std::size_t>(
                   std::popcount(words_[last] & tail_mask));
  }

 private:
  void trim_tail() noexcept {
    const std::size_t tail = size_ % kWordBits;
    if (tail != 0) words_.back() &= ~std::uint64_t{0} >> (kWordBits - tail);
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace adapt
