// Compile-time contract annotations.
//
// Two families live here:
//
//  * Clang Thread Safety Analysis attributes (ADAPT_CAPABILITY,
//    ADAPT_GUARDED_BY, ADAPT_REQUIRES, ...). Under clang with
//    -Wthread-safety these turn the repo's locking discipline into
//    compiler-checked capability contracts (the `thread-safety` CI job
//    builds with -Wthread-safety -Werror); under any other compiler every
//    macro expands to nothing, so GCC builds are untouched. The annotated
//    primitives themselves (adapt::Mutex / CondVar / LockGuard) live in
//    common/sync.h.
//
//  * Project-invariant markers consumed by tools/adapt_lint, the
//    repo-specific source linter. ADAPT_HOT tags a hot-path function whose
//    body must stay free of steady-state heap allocation (the PR-6
//    discipline that bench/micro_engine_hotpath asserts at runtime with an
//    operator-new interposer; adapt_lint checks it statically on every
//    build). ADAPT_LINT_ALLOW(rule) is the per-line suppression escape
//    hatch — it must appear (normally in a trailing comment) on the exact
//    line of the finding it waives, with a justification next to it.
//
// All markers are zero-cost: ADAPT_HOT deliberately expands to nothing
// (not even [[gnu::hot]]) so tagging a function can never perturb codegen
// and the pinned fixed-seed benchmarks stay bit-identical.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ADAPT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ADAPT_THREAD_ANNOTATION
#define ADAPT_THREAD_ANNOTATION(x)  // not clang: expands to nothing
#endif

/// Declares a type to be a capability (e.g. a mutex wrapper).
#define ADAPT_CAPABILITY(x) ADAPT_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define ADAPT_SCOPED_CAPABILITY ADAPT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define ADAPT_GUARDED_BY(x) ADAPT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define ADAPT_PT_GUARDED_BY(x) ADAPT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the listed capabilities are held by the caller.
#define ADAPT_REQUIRES(...) \
  ADAPT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (and does not release them).
#define ADAPT_ACQUIRE(...) \
  ADAPT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define ADAPT_RELEASE(...) \
  ADAPT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `ret`.
#define ADAPT_TRY_ACQUIRE(ret, ...) \
  ADAPT_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function precondition: the listed capabilities are NOT held.
#define ADAPT_EXCLUDES(...) ADAPT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define ADAPT_RETURN_CAPABILITY(x) ADAPT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis inside one function. Every use
/// carries a comment explaining why the contract cannot be expressed.
#define ADAPT_NO_THREAD_SAFETY_ANALYSIS \
  ADAPT_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a hot-path function: tools/adapt_lint forbids allocating calls
/// (new/malloc/reserve/resize/push_back/...) inside its body. Outline any
/// growth slow path into an unmarked helper, or waive a provably reserved
/// call site with ADAPT_LINT_ALLOW(hot-alloc). Expands to nothing.
#define ADAPT_HOT
