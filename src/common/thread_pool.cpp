#include "common/thread_pool.h"

namespace adapt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace adapt
