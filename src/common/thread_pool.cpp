#include "common/thread_pool.h"

#include <stdexcept>

namespace adapt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    LockGuard lock(mu_);
    if (stopping_) return;  // idempotent: a second call must not re-join
    stopping_ = true;
  }
  task_available_.notify_all();
  for (Thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    LockGuard lock(mu_);
    if (stopping_) {
      // Fail loudly: accepting the task could strand it forever (workers
      // may already be gone) and a caller waiting on its result would
      // deadlock. See the shutdown/enqueue contract in the header.
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  LockGuard lock(mu_);
  while (!is_idle()) idle_.wait(mu_, lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      LockGuard lock(mu_);
      while (!has_work_or_stop()) task_available_.wait(mu_, lock);
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      LockGuard lock(mu_);
      --active_;
      if (is_idle()) idle_.notify_all();
    }
  }
}

}  // namespace adapt
