// Fenwick (binary indexed) tree over a dynamically growing index range.
// Used by the reuse-distance tracker (positions in the sampled access
// sequence are marked/unmarked and suffix counts give the number of
// distinct blocks touched since a given position) and by the GC victim
// index (occupancy counts with order-statistic queries).
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace adapt {

class FenwickTree {
 public:
  FenwickTree() = default;
  explicit FenwickTree(std::size_t n) : tree_(n + 1, 0) {}

  std::size_t size() const noexcept {
    return tree_.empty() ? 0 : tree_.size() - 1;
  }

  /// Grows the index range to cover `n` positions. A freshly appended node
  /// at (1-indexed) position j spans [j - lowbit(j) + 1, j], so it must
  /// absorb the already-present child nodes of that range — otherwise
  /// growth after writes would lose counts.
  void resize(std::size_t n) {
    const std::size_t old = size();
    if (n <= old) return;
    tree_.resize(n + 1, 0);
    for (std::size_t j = old + 1; j <= n; ++j) {
      const std::size_t low = j & (~j + 1);
      if (low > 1) {
        std::int64_t sum = 0;
        for (std::size_t k = j - 1; k > j - low; k -= k & (~k + 1)) {
          sum += tree_[k];
        }
        tree_[j] = sum;
      }
    }
  }

  /// Adds `delta` at position `i` (0-indexed), growing as needed.
  void add(std::size_t i, std::int64_t delta) {
    resize(i + 1);
    for (std::size_t x = i + 1; x < tree_.size(); x += x & (~x + 1)) {
      tree_[x] += delta;
    }
  }

  /// Sum of positions [0, i] (0-indexed). i >= size() clamps to total.
  std::int64_t prefix_sum(std::size_t i) const noexcept {
    std::size_t x = i + 1;
    if (x > size()) x = size();
    std::int64_t sum = 0;
    for (; x > 0; x -= x & (~x + 1)) sum += tree_[x];
    return sum;
  }

  /// Sum of all positions.
  std::int64_t total() const noexcept {
    return size() == 0 ? 0 : prefix_sum(size() - 1);
  }

  /// Sum of positions in (i, size) — i.e. strictly after position i.
  std::int64_t suffix_sum_after(std::size_t i) const noexcept {
    return total() - prefix_sum(i);
  }

  /// Order statistic: the smallest 0-indexed position p such that
  /// prefix_sum(p) >= k (k >= 1), assuming every point value is
  /// non-negative. Returns size() when the total is below k. One
  /// binary-lifting descent, O(log size).
  std::size_t lower_bound(std::int64_t k) const noexcept {
    std::size_t pos = 0;  // 1-indexed: positions proven to hold sum < k
    std::int64_t remaining = k;
    for (std::size_t step = std::bit_floor(size()); step != 0; step >>= 1) {
      const std::size_t next = pos + step;
      if (next <= size() && tree_[next] < remaining) {
        pos = next;
        remaining -= tree_[next];
      }
    }
    return pos;  // first 0-indexed position with cumulative sum >= k
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace adapt
