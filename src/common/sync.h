// Annotated synchronisation primitives: the only place in the tree that
// may name std::mutex / std::condition_variable / std::thread directly
// (tools/adapt_lint's `naked-threading` rule enforces this outside
// src/common/).
//
// The wrappers carry Clang Thread Safety attributes (common/annotations.h),
// so code built on them states its locking discipline in the type system:
// data members say which Mutex guards them (ADAPT_GUARDED_BY), functions
// say which Mutex they need held (ADAPT_REQUIRES), and the `thread-safety`
// CI job proves the contracts with clang -Wthread-safety -Werror. Under GCC
// the attributes vanish and everything compiles to the std primitive it
// wraps — zero runtime cost either way.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>

#include "common/annotations.h"

namespace adapt {

class CondVar;
class LockGuard;

/// A std::mutex declared as a TSA capability. Prefer scoped acquisition
/// via LockGuard; lock()/unlock() exist for the rare staged-locking case.
class ADAPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ADAPT_ACQUIRE() { mu_.lock(); }
  void unlock() ADAPT_RELEASE() { mu_.unlock(); }
  bool try_lock() ADAPT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class LockGuard;
  std::mutex mu_;
};

/// RAII scoped acquisition of a Mutex (TSA scoped capability). Holds a
/// std::unique_lock underneath so CondVar can release/reacquire during a
/// wait without the capability ever appearing unheld to the analysis.
class ADAPT_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ADAPT_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~LockGuard() ADAPT_RELEASE() {}

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  /// True when this guard holds exactly `mu` (CondVar wait precondition).
  bool owns(const Mutex& mu) const noexcept {
    return lock_.owns_lock() && lock_.mutex() == &mu.mu_;
  }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to Mutex/LockGuard. wait() atomically releases
/// the mutex and reacquires it before returning, so from the caller's (and
/// the analysis') perspective the capability is held throughout; callers
/// re-check their predicate in a while loop as usual.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified. `guard` must currently hold `mu` (asserted);
  /// the `mu` parameter names the capability for the static analysis.
  void wait(Mutex& mu, LockGuard& guard) ADAPT_REQUIRES(mu) {
    assert(guard.owns(mu));
    (void)mu;
    cv_.wait(guard.lock_);
  }

  /// Timed wait: blocks until notified or `timeout_us` elapses. Returns
  /// false on timeout, true when woken by a notify (possibly spuriously —
  /// callers re-check their predicate either way).
  bool wait_for_us(Mutex& mu, LockGuard& guard, std::uint64_t timeout_us)
      ADAPT_REQUIRES(mu) {
    assert(guard.owns(mu));
    (void)mu;
    return cv_.wait_for(guard.lock_, std::chrono::microseconds(timeout_us)) ==
           std::cv_status::no_timeout;
  }

 private:
  std::condition_variable cv_;
};

/// Joining thread handle (std::jthread semantics over std::thread): the
/// destructor and move-assignment join instead of terminating, so a Thread
/// can never outlive the state its closure captured.
class Thread {
 public:
  Thread() noexcept = default;

  template <typename Fn, typename... Args>
  explicit Thread(Fn&& fn, Args&&... args)
      : thread_(std::forward<Fn>(fn), std::forward<Args>(args)...) {}

  Thread(Thread&&) noexcept = default;
  Thread& operator=(Thread&& other) noexcept {
    if (this != &other) {
      if (thread_.joinable()) thread_.join();
      thread_ = std::move(other.thread_);
    }
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  ~Thread() {
    if (thread_.joinable()) thread_.join();
  }

  bool joinable() const noexcept { return thread_.joinable(); }
  void join() { thread_.join(); }

 private:
  std::thread thread_;
};

/// std::thread::hardware_concurrency without naming std::thread at the
/// call site; returns at least 1.
inline unsigned hardware_concurrency() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Scheduler yield for bounded spin-then-yield waits (group-commit
/// followers awaiting their leader's completion publish).
inline void yield_now() noexcept { std::this_thread::yield(); }

/// Spin budget for spin-then-yield waits: `multi_core` iterations on a
/// machine with real parallelism, 0 on a single-core host — there, the
/// condition a spinner waits on can only be produced by a thread that
/// needs the very core the spin is burning, so yield immediately.
inline int spin_budget(int multi_core) noexcept {
  static const bool single = hardware_concurrency() <= 1;
  return single ? 0 : multi_core;
}

/// Blocking sleep for polling loops that model think time or idle GC
/// backoff; microsecond granularity.
inline void sleep_for_us(std::uint64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

/// Edge-triggered work signal for idle backoff loops (background GC waiting
/// for writers to create reclaimable garbage, backpressure waits). Producers
/// call bump() after publishing work; consumers snapshot version() BEFORE
/// checking for work and, finding none, park in wait_change() — a bump in
/// the race window makes the wait return immediately, so no edge is lost.
///
/// The producer fast path is one relaxed fetch_add plus one acquire load:
/// the mutex and condvar are touched only while a consumer is parked, so
/// signalling from a hot write path costs no syscall in steady state.
class WorkSignal {
 public:
  WorkSignal() = default;
  WorkSignal(const WorkSignal&) = delete;
  WorkSignal& operator=(const WorkSignal&) = delete;

  /// Current version; pair with wait_change() as snapshot-check-park.
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// Publishes one unit of progress and wakes parked waiters, if any.
  void bump() noexcept {
    version_.fetch_add(1, std::memory_order_release);
    if (waiters_.load(std::memory_order_acquire) > 0) {
      LockGuard g(mu_);
      cv_.notify_all();
    }
  }

  /// Blocks until version() != `seen` or `timeout_us` elapses; returns the
  /// version observed on exit. The timeout bounds the park so shutdown
  /// flags polled by the caller's loop are always rechecked.
  std::uint64_t wait_change(std::uint64_t seen, std::uint64_t timeout_us) {
    std::uint64_t now = version();
    if (now != seen) return now;
    waiters_.fetch_add(1, std::memory_order_acq_rel);
    {
      LockGuard g(mu_);
      now = version();
      if (now == seen) {
        cv_.wait_for_us(mu_, g, timeout_us);
        now = version();
      }
    }
    waiters_.fetch_sub(1, std::memory_order_acq_rel);
    return now;
  }

 private:
  std::atomic<std::uint64_t> version_{0};
  std::atomic<int> waiters_{0};
  Mutex mu_;
  CondVar cv_;
};

/// Monotonic clock sample in nanoseconds, for host-time latency capture
/// (submit→durable spans). Values are host-dependent — never feed them
/// into deterministic engine state, only into host-unit metrics.
inline std::uint64_t monotonic_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace adapt
