#include "common/histogram.h"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace adapt {

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    sorted_values_ = values_;
    std::sort(sorted_values_.begin(), sorted_values_.end());
    sorted_ = true;
  }
}

double Histogram::sum() const noexcept {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Histogram::mean() const noexcept {
  return values_.empty() ? 0.0 : sum() / static_cast<double>(values_.size());
}

double Histogram::min() const {
  if (values_.empty()) throw std::out_of_range("Histogram::min on empty");
  ensure_sorted();
  return sorted_values_.front();
}

double Histogram::max() const {
  if (values_.empty()) throw std::out_of_range("Histogram::max on empty");
  ensure_sorted();
  return sorted_values_.back();
}

double Histogram::percentile(double p) const {
  if (values_.empty()) {
    throw std::out_of_range("Histogram::percentile on empty");
  }
  if (std::isnan(p)) {
    throw std::invalid_argument("Histogram::percentile: p is NaN");
  }
  ensure_sorted();
  if (p <= 0) return sorted_values_.front();
  if (p >= 100) return sorted_values_.back();
  // Linear interpolation between closest ranks.
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_values_.size()) return sorted_values_.back();
  return sorted_values_[lo] * (1.0 - frac) + sorted_values_[lo + 1] * frac;
}

double Histogram::cdf_at(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it =
      std::upper_bound(sorted_values_.begin(), sorted_values_.end(), x);
  return static_cast<double>(it - sorted_values_.begin()) /
         static_cast<double>(sorted_values_.size());
}

BoxStats box_stats(const Histogram& h) {
  BoxStats b;
  if (h.empty()) return b;
  b.min = h.min();
  b.max = h.max();
  b.q1 = h.percentile(25);
  b.median = h.percentile(50);
  b.q3 = h.percentile(75);
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = b.max;
  b.whisker_hi = b.min;
  for (double v : h.values()) {
    if (v < lo_fence || v > hi_fence) {
      ++b.outliers;
    } else {
      b.whisker_lo = std::min(b.whisker_lo, v);
      b.whisker_hi = std::max(b.whisker_hi, v);
    }
  }
  return b;
}

std::string format_cdf(const Histogram& h, double x_lo, double x_hi,
                       int steps) {
  if (steps <= 0) {
    throw std::invalid_argument("format_cdf: steps must be > 0");
  }
  std::ostringstream out;
  for (int i = 0; i <= steps; ++i) {
    const double x =
        x_lo + (x_hi - x_lo) * static_cast<double>(i) / steps;
    out << x << '\t' << h.cdf_at(x) << '\n';
  }
  return out.str();
}

}  // namespace adapt
