// Deterministic, fast PRNG for simulation: xoshiro256** seeded via
// SplitMix64. Deterministic seeds make every experiment reproducible from
// the command line.
#pragma once

#include <cstdint>

namespace adapt {

/// SplitMix64 step; also usable as a high-quality 64-bit mixing function.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mixer (SplitMix64 finalizer). Used for spatial sampling
/// and Bloom-filter hashing where we need a fixed hash of an LBA.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) noexcept;

  /// Log-normally distributed value; mu/sigma are parameters of the
  /// underlying normal.
  double lognormal(double mu, double sigma) noexcept;

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace adapt
