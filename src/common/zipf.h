// Zipfian and scrambled-Zipfian generators matching YCSB semantics.
//
// YCSB-A draws keys from a Zipfian distribution over N items with exponent
// alpha (YCSB calls it `zipfian constant`, default 0.99). The scrambled
// variant hashes the rank so that popularity is spread uniformly over the
// key space — this is what real YCSB uses and what keeps "hot" LBAs from
// clustering at the bottom of the address range.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace adapt {

/// Draws ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^alpha.
/// Uses the Gray/Jim-Gray-style analytic approximation employed by YCSB,
/// which requires only O(1) state and O(1) time per draw.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double alpha);

  /// Number of items.
  std::uint64_t n() const noexcept { return n_; }
  double alpha() const noexcept { return alpha_; }

  /// Next rank; rank 0 is the most popular item.
  std::uint64_t next(Rng& rng) noexcept;

 private:
  static double zeta(std::uint64_t n, double theta) noexcept;

  std::uint64_t n_;
  double alpha_;
  double zetan_;
  double theta_;
  double eta_;
  double alpha_param_;
  double zeta2theta_;
};

/// Scrambled Zipfian: Zipfian ranks mapped through a 64-bit hash and folded
/// back into [0, n). Matches YCSB's ScrambledZipfianGenerator behaviour.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(std::uint64_t n, double alpha)
      : inner_(n, alpha), n_(n) {}

  std::uint64_t n() const noexcept { return n_; }
  std::uint64_t next(Rng& rng) noexcept {
    return mix64(inner_.next(rng)) % n_;
  }

 private:
  ZipfianGenerator inner_;
  std::uint64_t n_;
};

}  // namespace adapt
