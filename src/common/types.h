// Core value types shared across the ADAPT reproduction.
//
// The simulator measures time on two axes:
//   * wall time in microseconds (`TimeUs`) — drives the SLA coalescing
//     window (100 us in Alibaba's Pangu, the paper's reference setting);
//   * virtual time in user-written blocks (`VTime`) — drives every
//     lifespan/age computation, following SepBIT's convention of measuring
//     block lifetimes in logical write volume rather than wall time.
#pragma once

#include <cstdint>
#include <limits>

namespace adapt {

/// Logical block address, in units of one block (default 4 KiB).
using Lba = std::uint64_t;

/// Wall-clock time in microseconds (trace timestamps use this unit).
using TimeUs = std::uint64_t;

/// Virtual time measured in user-written blocks since volume start.
using VTime = std::uint64_t;

/// Index of a placement group (stream). Groups are dense, starting at 0.
using GroupId = std::uint32_t;

/// Index of a segment within the LSS segment pool.
using SegmentId = std::uint32_t;

inline constexpr Lba kInvalidLba = std::numeric_limits<Lba>::max();
inline constexpr SegmentId kInvalidSegment =
    std::numeric_limits<SegmentId>::max();
inline constexpr GroupId kInvalidGroup =
    std::numeric_limits<GroupId>::max();

/// Default logical block size (bytes). All placement schemes in the paper
/// operate at 4 KiB granularity.
inline constexpr std::uint32_t kDefaultBlockSize = 4096;

/// Default array chunk size (bytes) — the Linux mdraid default used in the
/// paper's evaluation.
inline constexpr std::uint32_t kDefaultChunkSize = 64 * 1024;

/// Pangu-style SLA coalescing window (microseconds).
inline constexpr TimeUs kDefaultCoalesceWindowUs = 100;

}  // namespace adapt
