#include "common/rng.h"

#include <cmath>

namespace adapt {

double Rng::exponential(double mean) noexcept {
  // Inverse transform; guard against log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal() noexcept {
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

}  // namespace adapt
