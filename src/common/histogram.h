// Simple value-accumulating histogram with exact percentile queries, plus a
// CDF builder used by the figure-reproduction benches.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adapt {

/// Stores every sample; suitable for per-volume metric distributions (tens
/// of thousands of points), not per-I/O hot paths.
class Histogram {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  double sum() const noexcept;
  double mean() const noexcept;
  double min() const;
  double max() const;

  /// Exact percentile via nearest-rank; p in [0, 100]. Throws
  /// std::out_of_range on an empty histogram and std::invalid_argument when
  /// p is NaN (NaN compares false against both clamp bounds and would
  /// otherwise reach the interpolation with a NaN rank).
  double percentile(double p) const;

  /// Fraction of samples <= x (empirical CDF).
  double cdf_at(double x) const;

  const std::vector<double>& values() const noexcept { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_values_;
  mutable bool sorted_ = false;
};

/// Boxplot summary matching the paper's per-volume WA plots.
struct BoxStats {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double whisker_lo = 0;   ///< lowest sample >= q1 - 1.5*IQR
  double whisker_hi = 0;   ///< highest sample <= q3 + 1.5*IQR
  std::size_t outliers = 0;
};

BoxStats box_stats(const Histogram& h);

/// Renders "x<TAB>cdf" rows over evenly spaced x for textual figure output.
/// Throws std::invalid_argument unless steps > 0.
std::string format_cdf(const Histogram& h, double x_lo, double x_hi,
                       int steps);

}  // namespace adapt
