// Simple value-accumulating histogram with exact percentile queries, plus a
// CDF builder used by the figure-reproduction benches, and a fixed-footprint
// power-of-two histogram for hot-path distributions (block lifetimes,
// GC pause durations).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace adapt {

/// Constant-time, fixed-memory histogram over unsigned values: bucket b
/// counts values whose bit width is b (bucket 0 holds zeros, bucket b >= 1
/// covers [2^(b-1), 2^b)), plus exact count/sum/max. Suitable for per-block
/// hot paths — add() is a shift, three adds, and a max — and mergeable
/// across shards like the other LssMetrics counters.
class Log2Histogram {
 public:
  /// bit_width of a uint64 ranges over [0, 64].
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t v) noexcept {
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
  }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t max_value() const noexcept { return max_; }
  bool empty() const noexcept { return count_ == 0; }

  std::uint64_t bucket(std::size_t b) const { return buckets_.at(b); }

  /// Smallest value bucket `b` can hold (0 for the zero bucket).
  static constexpr std::uint64_t bucket_floor(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// Largest value bucket `b` can hold (capped by the observed maximum so
  /// the top bucket never extrapolates past real data).
  std::uint64_t bucket_ceil(std::size_t b) const noexcept {
    const std::uint64_t hi =
        b == 0 ? 0 : (std::uint64_t{1} << (b - 1)) * 2 - 1;
    return std::min(hi, max_);
  }

  /// Estimated percentile via nearest-rank over the power-of-two buckets
  /// with linear interpolation inside the containing bucket. The exact
  /// nearest-rank percentile lands in the same bucket, so the estimate is
  /// within a factor of 2 of it (tests/histogram_test.cpp asserts this
  /// bound against exact percentiles) while add() stays O(1) and the
  /// footprint stays fixed — unlike Histogram, which stores every sample.
  /// p in [0, 100]; throws like Histogram::percentile on empty/NaN input.
  double percentile(double p) const {
    if (count_ == 0) {
      throw std::out_of_range("Log2Histogram::percentile on empty");
    }
    if (std::isnan(p)) {
      throw std::invalid_argument("Log2Histogram::percentile: p is NaN");
    }
    p = std::clamp(p, 0.0, 100.0);
    // Nearest-rank target (1-based): the smallest value v such that at
    // least `rank` samples are <= v.
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p / 100.0 * static_cast<double>(count_))));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      if (cum + buckets_[b] < rank) {
        cum += buckets_[b];
        continue;
      }
      const double lo = static_cast<double>(bucket_floor(b));
      const double hi = static_cast<double>(bucket_ceil(b));
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(buckets_[b]);
      return lo + (hi - lo) * frac;
    }
    return static_cast<double>(max_);
  }

  /// Element-wise accumulation (shard-merge).
  void merge_from(const Log2Histogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
  }

  /// Reconstructs a histogram from externally stored parts — the inverse
  /// of reading bucket()/count()/sum()/max_value() out, used by seqlock
  /// snapshot readers (obs::RuntimeStats) that mirror the fields in
  /// atomics. The caller vouches for consistency (buckets summing to
  /// count); percentile() tolerates any values but only means something
  /// when the parts came from one coherent histogram.
  static Log2Histogram from_parts(
      const std::array<std::uint64_t, kBuckets>& buckets,
      std::uint64_t count, std::uint64_t sum, std::uint64_t max) noexcept {
    Log2Histogram h;
    h.buckets_ = buckets;
    h.count_ = count;
    h.sum_ = sum;
    h.max_ = max;
    return h;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Stores every sample; suitable for per-volume metric distributions (tens
/// of thousands of points), not per-I/O hot paths.
class Histogram {
 public:
  void add(double v) {
    values_.push_back(v);
    sorted_ = false;
  }

  std::size_t count() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  double sum() const noexcept;
  double mean() const noexcept;
  double min() const;
  double max() const;

  /// Exact percentile via nearest-rank; p in [0, 100]. Throws
  /// std::out_of_range on an empty histogram and std::invalid_argument when
  /// p is NaN (NaN compares false against both clamp bounds and would
  /// otherwise reach the interpolation with a NaN rank).
  double percentile(double p) const;

  /// Fraction of samples <= x (empirical CDF).
  double cdf_at(double x) const;

  const std::vector<double>& values() const noexcept { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_values_;
  mutable bool sorted_ = false;
};

/// Boxplot summary matching the paper's per-volume WA plots.
struct BoxStats {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double whisker_lo = 0;   ///< lowest sample >= q1 - 1.5*IQR
  double whisker_hi = 0;   ///< highest sample <= q3 + 1.5*IQR
  std::size_t outliers = 0;
};

BoxStats box_stats(const Histogram& h);

/// Renders "x<TAB>cdf" rows over evenly spaced x for textual figure output.
/// Throws std::invalid_argument unless steps > 0.
std::string format_cdf(const Histogram& h, double x_lo, double x_hi,
                       int steps);

}  // namespace adapt
