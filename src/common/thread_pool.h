// Minimal fixed-size thread pool used to parallelise per-volume simulation
// runs in the experiment runner. Tasks are type-erased; `wait_idle` provides
// a completion barrier so callers can collect results without joining.
//
// Shutdown/enqueue contract: shutdown() (or destruction) first drains the
// queue — every task accepted before the stop runs to completion — then
// joins the workers. Once a stop has been requested, submit() throws
// std::runtime_error instead of silently queueing work that may never run
// (or deadlocking a caller that waits on it); a task that tries to submit
// a follow-up task during shutdown gets the same exception inside the
// task. shutdown() is idempotent and the destructor calls it.
//
// Locking discipline is compiler-checked (see common/annotations.h): all
// mutable state is ADAPT_GUARDED_BY(mu_) and the predicate helpers declare
// ADAPT_REQUIRES(mu_).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "common/annotations.h"
#include "common/sync.h"

namespace adapt {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker thread. Throws
  /// std::runtime_error if shutdown has been requested (see contract
  /// above); the task is not enqueued in that case.
  void submit(std::function<void()> task) ADAPT_EXCLUDES(mu_);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle() ADAPT_EXCLUDES(mu_);

  /// Drains the queue, joins all workers, and rejects future submits.
  /// Idempotent; called by the destructor.
  void shutdown() ADAPT_EXCLUDES(mu_);

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop() ADAPT_EXCLUDES(mu_);

  /// Worker wake predicate: work available or stop requested.
  bool has_work_or_stop() const ADAPT_REQUIRES(mu_) {
    return stopping_ || !queue_.empty();
  }
  /// wait_idle predicate: nothing queued and nothing running.
  bool is_idle() const ADAPT_REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  }

  Mutex mu_;
  CondVar task_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ ADAPT_GUARDED_BY(mu_);
  std::size_t active_ ADAPT_GUARDED_BY(mu_) = 0;
  bool stopping_ ADAPT_GUARDED_BY(mu_) = false;
  /// Workers are created in the constructor and joined only in shutdown();
  /// the vector itself is immutable in between, so thread_count() needs no
  /// lock.
  std::vector<Thread> workers_;
};

}  // namespace adapt
