// Minimal fixed-size thread pool used to parallelise per-volume simulation
// runs in the experiment runner. Tasks are type-erased; `wait_idle` provides
// a completion barrier so callers can collect results without joining.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adapt {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker thread.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace adapt
