#include "common/zipf.h"

#include <cmath>

namespace adapt {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  // alpha == 0 degenerates to uniform; the YCSB formulas below handle it,
  // but guard the zeta sums against theta == 1 singularities.
  theta_ = alpha;
  // theta == 1 makes the YCSB closed form singular; nudge off the pole.
  if (std::abs(1.0 - theta_) < 1e-9) theta_ += 1e-6;
  zetan_ = zeta(n_, theta_);
  zeta2theta_ = zeta(2, theta_);
  alpha_param_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::zeta(std::uint64_t n, double theta) noexcept {
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

std::uint64_t ZipfianGenerator::next(Rng& rng) noexcept {
  if (theta_ == 0.0) return rng.below(n_);  // uniform fast path

  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double frac =
      std::pow(eta_ * u - eta_ + 1.0, alpha_param_);
  auto rank = static_cast<std::uint64_t>(static_cast<double>(n_) * frac);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

}  // namespace adapt
