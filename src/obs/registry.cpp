#include "obs/registry.h"

namespace adapt::obs {

std::uint64_t* Registry::slot(std::string_view name) {
  const auto it = slots_.find(name);
  if (it != slots_.end()) return &it->second;
  return &slots_.emplace(std::string(name), 0).first->second;
}

std::uint64_t Registry::value(std::string_view name) const noexcept {
  const auto it = slots_.find(name);
  return it == slots_.end() ? 0 : it->second;
}

bool Registry::contains(std::string_view name) const noexcept {
  return slots_.find(name) != slots_.end();
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, value] : other.slots_) {
    *slot(name) += value;
  }
}

}  // namespace adapt::obs
