#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace adapt::obs {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::uint64_t total_blocks(const SeriesRow& r) {
  return r.user_blocks + r.gc_blocks + r.shadow_blocks + r.padding_blocks;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? kNan
                  : static_cast<double>(num) / static_cast<double>(den);
}

/// Windowed series derived from two consecutive cumulative rows (`prev`
/// nullptr means the implicit all-zero row before the first sample).
struct Windowed {
  double wa = kNan;             ///< Δtotal / Δuser
  double padding_ratio = kNan;  ///< Δpadding / Δtotal
  double gc_rate = kNan;        ///< ΔGC runs / Δuser blocks
  double shadow_rate = kNan;    ///< Δshadow / Δuser
};

Windowed windowed_of(const SeriesRow* prev, const SeriesRow& row) {
  const SeriesRow zero{};
  const SeriesRow& p = prev != nullptr ? *prev : zero;
  Windowed w;
  const std::uint64_t d_user = row.user_blocks - p.user_blocks;
  const std::uint64_t d_total = total_blocks(row) - total_blocks(p);
  w.wa = ratio(d_total, d_user);
  w.padding_ratio = ratio(row.padding_blocks - p.padding_blocks, d_total);
  w.gc_rate = ratio(row.gc_runs - p.gc_runs, d_user);
  w.shadow_rate = ratio(row.shadow_blocks - p.shadow_blocks, d_user);
  return w;
}

void append_kv(std::string& out, const char* key, std::uint64_t v) {
  out += json::quote(key);
  out += ':';
  out += std::to_string(v);
}

void append_kv(std::string& out, const char* key, double v) {
  out += json::quote(key);
  out += ':';
  json::append_number(out, v);
}

void append_kv(std::string& out, const char* key, std::string_view v) {
  out += json::quote(key);
  out += ':';
  out += json::quote(v);
}

const json::Value& require(const json::Value& obj, std::string_view key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    throw std::invalid_argument("schema: missing key \"" + std::string(key) +
                                '"');
  }
  return *v;
}

double require_number(const json::Value& obj, std::string_view key) {
  const json::Value& v = require(obj, key);
  if (!v.is_number()) {
    throw std::invalid_argument("schema: key \"" + std::string(key) +
                                "\" must be a number");
  }
  return v.as_number();
}

void require_number_or_null(const json::Value& obj, std::string_view key) {
  const json::Value& v = require(obj, key);
  if (!v.is_number() && !v.is_null()) {
    throw std::invalid_argument("schema: key \"" + std::string(key) +
                                "\" must be a number or null");
  }
}

const std::string& require_string(const json::Value& obj,
                                  std::string_view key) {
  const json::Value& v = require(obj, key);
  if (!v.is_string()) {
    throw std::invalid_argument("schema: key \"" + std::string(key) +
                                "\" must be a string");
  }
  return v.as_string();
}

void require_schema(const json::Value& obj, std::string_view expected) {
  if (require_string(obj, "schema") != expected) {
    throw std::invalid_argument("schema: expected \"" +
                                std::string(expected) + '"');
  }
}

}  // namespace

std::uint64_t current_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void register_lss_metrics(Registry& r, const lss::LssMetrics& m) {
  *r.slot("lss.user_blocks") += m.user_blocks;
  *r.slot("lss.gc_blocks") += m.gc_blocks;
  *r.slot("lss.shadow_blocks") += m.shadow_blocks;
  *r.slot("lss.padding_blocks") += m.padding_blocks;
  *r.slot("lss.gc_runs") += m.gc_runs;
  *r.slot("lss.gc_migrated_blocks") += m.gc_migrated_blocks;
  *r.slot("lss.forced_lazy_flushes") += m.forced_lazy_flushes;
  *r.slot("lss.rmw_flushes") += m.rmw_flushes;
  *r.slot("lss.rmw_blocks") += m.rmw_blocks;
  *r.slot("lss.rmw_read_blocks") += m.rmw_read_blocks;
  *r.slot("lss.read_blocks") += m.read_blocks;
  *r.slot("lss.read_chunk_fetches") += m.read_chunk_fetches;
  *r.slot("lss.read_buffer_hits") += m.read_buffer_hits;
  *r.slot("lss.read_unmapped") += m.read_unmapped;
}

std::string manifest_json(const RunManifest& m) {
  std::string out = "{";
  append_kv(out, "schema", kManifestSchema);
  out += ',';
  append_kv(out, "tool", m.tool);
  out += ',';
  append_kv(out, "policy", m.policy);
  out += ',';
  append_kv(out, "victim", m.victim);
  out += ',';
  append_kv(out, "workload", m.workload);
  out += ',';
  append_kv(out, "volume_id", m.volume_id);
  out += ',';
  append_kv(out, "seed", m.seed);
  out += ',';
  append_kv(out, "records", m.records);
  out += ',';
  append_kv(out, "user_blocks", m.user_blocks);
  out += ',';
  append_kv(out, "wall_seconds", m.wall_seconds);
  out += ',';
  append_kv(out, "records_per_sec", m.records_per_sec);
  out += ',';
  append_kv(out, "peak_rss_bytes", m.peak_rss_bytes);
  out += ',';
  out += json::quote("geometry");
  out += ":{";
  append_kv(out, "chunk_blocks", static_cast<std::uint64_t>(m.chunk_blocks));
  out += ',';
  append_kv(out, "segment_chunks",
            static_cast<std::uint64_t>(m.segment_chunks));
  out += ',';
  append_kv(out, "logical_blocks", m.logical_blocks);
  out += ',';
  append_kv(out, "over_provision", m.over_provision);
  out += "},";
  out += json::quote("counters");
  out += ":{";
  bool first = true;
  for (const auto& [name, value] : m.counters.entries()) {
    if (!first) out += ',';
    first = false;
    append_kv(out, name.c_str(), value);
  }
  out += "},";
  append_provenance_json(out, "provenance", m.provenance);
  out += ',';
  append_histogram_json(out, "block_lifetime", m.block_lifetime);
  out += ',';
  append_histogram_json(out, "gc_pause_us", m.gc_pause_us);
  if (!m.latency_ns.empty()) {
    out += ',';
    append_histogram_json(out, "latency_ns", m.latency_ns);
  }
  if (!m.lanes.empty()) {
    out += ',';
    out += json::quote("lanes");
    out += ":{";
    append_kv(out, "count",
              static_cast<std::uint64_t>(m.lanes.per_lane.size()));
    out += ',';
    append_kv(out, "queue_depth",
              static_cast<std::uint64_t>(m.lanes.queue_depth));
    out += ',';
    out += json::quote("per_lane");
    out += ":[";
    for (std::size_t i = 0; i < m.lanes.per_lane.size(); ++i) {
      if (i != 0) out += ',';
      const lss::LaneStats& l = m.lanes.per_lane[i];
      out += '{';
      append_kv(out, "submits", l.submits);
      out += ',';
      append_kv(out, "stalled_submits", l.stalled_submits);
      out += ',';
      append_kv(out, "busy_us", l.busy_us);
      out += ',';
      append_kv(out, "inflight_high_water", l.inflight_high_water);
      out += ',';
      append_kv(out, "busy_until_us", l.busy_until_us);
      out += '}';
    }
    out += "],";
    append_histogram_json(out, "queue_depth_hist", m.lanes.queue_depth_hist);
    out += ',';
    append_histogram_json(out, "submit_complete_us",
                          m.lanes.submit_complete_us);
    out += '}';
  }
  if (!m.latency_breakdown.empty()) {
    out += ',';
    out += json::quote("latency_breakdown");
    out += ":{";
    append_histogram_json(out, "intake_wait_us",
                          m.latency_breakdown.intake_wait_us);
    out += ',';
    append_histogram_json(out, "batch_apply_us",
                          m.latency_breakdown.batch_apply_us);
    out += ',';
    append_histogram_json(out, "lane_queue_us",
                          m.latency_breakdown.lane_queue_us);
    out += ',';
    append_histogram_json(out, "device_service_us",
                          m.latency_breakdown.device_service_us);
    out += ',';
    append_histogram_json(out, "total_us", m.latency_breakdown.total_us);
    out += '}';
  }
  if (m.trace_present) {
    out += ',';
    out += json::quote("trace");
    out += ":{";
    append_kv(out, "recorded", m.trace_recorded);
    out += ',';
    append_kv(out, "dropped", m.trace_dropped);
    out += ',';
    out += json::quote("per_shard_dropped");
    out += ":[";
    for (std::size_t i = 0; i < m.trace_per_shard_dropped.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(m.trace_per_shard_dropped[i]);
    }
    out += "]}";
  }
  out += '}';
  return out;
}

namespace {

void append_sample_line(std::string& out, const SeriesRow* prev,
                        const SeriesRow& row) {
  out += '{';
  append_kv(out, "type", "sample");
  out += ',';
  append_kv(out, "vtime", row.vtime);
  out += ',';
  append_kv(out, "wall_us", row.wall_us);
  out += ',';
  append_kv(out, "user_blocks", row.user_blocks);
  out += ',';
  append_kv(out, "gc_blocks", row.gc_blocks);
  out += ',';
  append_kv(out, "shadow_blocks", row.shadow_blocks);
  out += ',';
  append_kv(out, "padding_blocks", row.padding_blocks);
  out += ',';
  append_kv(out, "rmw_blocks", row.rmw_blocks);
  out += ',';
  append_kv(out, "chunks_flushed", row.chunks_flushed);
  out += ',';
  append_kv(out, "gc_runs", row.gc_runs);
  out += ',';
  append_kv(out, "free_segments",
            static_cast<std::uint64_t>(row.free_segments));
  out += ',';
  append_kv(out, "live_shadows", row.live_shadows);
  out += ',';
  append_kv(out, "threshold", row.threshold);
  out += ',';
  append_kv(out, "wa", ratio(total_blocks(row), row.user_blocks));
  out += ',';
  append_kv(out, "padding_ratio",
            ratio(row.padding_blocks, total_blocks(row)));
  out += ',';
  const Windowed w = windowed_of(prev, row);
  out += json::quote("windowed");
  out += ":{";
  append_kv(out, "wa", w.wa);
  out += ',';
  append_kv(out, "padding_ratio", w.padding_ratio);
  out += ',';
  append_kv(out, "gc_rate", w.gc_rate);
  out += ',';
  append_kv(out, "shadow_rate", w.shadow_rate);
  out += '}';
  if (!row.groups.empty()) {
    out += ',';
    out += json::quote("groups");
    out += ":[";
    for (std::size_t g = 0; g < row.groups.size(); ++g) {
      if (g != 0) out += ',';
      const GroupSample& gs = row.groups[g];
      out += '{';
      append_kv(out, "group", static_cast<std::uint64_t>(g));
      out += ',';
      append_kv(out, "user_blocks", gs.user_blocks);
      out += ',';
      append_kv(out, "gc_blocks", gs.gc_blocks);
      out += ',';
      append_kv(out, "shadow_blocks", gs.shadow_blocks);
      out += ',';
      append_kv(out, "padding_blocks", gs.padding_blocks);
      out += ',';
      append_kv(out, "valid_blocks", gs.valid_blocks);
      out += ',';
      append_kv(out, "segments", static_cast<std::uint64_t>(gs.segments));
      out += '}';
    }
    out += ']';
  }
  out += '}';
}

}  // namespace

void write_series_jsonl(std::ostream& out, const TimeSeries& series) {
  std::string line = "{";
  append_kv(line, "type", "header");
  line += ',';
  append_kv(line, "schema", kSeriesSchema);
  line += ',';
  append_kv(line, "window_blocks", series.window_blocks);
  line += ',';
  append_kv(line, "downsamples",
            static_cast<std::uint64_t>(series.downsamples));
  line += ',';
  append_kv(line, "rows", static_cast<std::uint64_t>(series.rows.size()));
  line += '}';
  out << line << '\n';
  for (std::size_t i = 0; i < series.rows.size(); ++i) {
    line.clear();
    append_sample_line(line, i == 0 ? nullptr : &series.rows[i - 1],
                       series.rows[i]);
    out << line << '\n';
  }
}

void write_series_csv(std::ostream& out, const TimeSeries& series) {
  out << "vtime,wall_us,user_blocks,gc_blocks,shadow_blocks,padding_blocks,"
         "rmw_blocks,chunks_flushed,gc_runs,free_segments,live_shadows,"
         "threshold,wa,padding_ratio,windowed_wa,windowed_padding_ratio,"
         "windowed_gc_rate,windowed_shadow_rate\n";
  std::string line;
  for (std::size_t i = 0; i < series.rows.size(); ++i) {
    const SeriesRow& row = series.rows[i];
    const Windowed w =
        windowed_of(i == 0 ? nullptr : &series.rows[i - 1], row);
    line.clear();
    line += std::to_string(row.vtime);
    line += ',';
    line += std::to_string(row.wall_us);
    line += ',';
    line += std::to_string(row.user_blocks);
    line += ',';
    line += std::to_string(row.gc_blocks);
    line += ',';
    line += std::to_string(row.shadow_blocks);
    line += ',';
    line += std::to_string(row.padding_blocks);
    line += ',';
    line += std::to_string(row.rmw_blocks);
    line += ',';
    line += std::to_string(row.chunks_flushed);
    line += ',';
    line += std::to_string(row.gc_runs);
    line += ',';
    line += std::to_string(row.free_segments);
    line += ',';
    line += std::to_string(row.live_shadows);
    // gnuplot reads "nan" as a missing point, so raw %g is fine here.
    for (const double v :
         {row.threshold, ratio(total_blocks(row), row.user_blocks),
          ratio(row.padding_blocks, total_blocks(row)), w.wa,
          w.padding_ratio, w.gc_rate, w.shadow_rate}) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ",%.10g", v);
      line += buf;
    }
    out << line << '\n';
  }
}

void validate_manifest_json(std::string_view text) {
  const json::Value doc = json::parse(text);
  if (!doc.is_object()) {
    throw std::invalid_argument("schema: manifest must be an object");
  }
  require_schema(doc, kManifestSchema);
  require_string(doc, "tool");
  require_string(doc, "policy");
  require_string(doc, "victim");
  require_string(doc, "workload");
  for (const char* key : {"volume_id", "seed", "records", "user_blocks",
                          "wall_seconds", "records_per_sec",
                          "peak_rss_bytes"}) {
    require_number(doc, key);
  }
  const json::Value& geometry = require(doc, "geometry");
  if (!geometry.is_object()) {
    throw std::invalid_argument("schema: geometry must be an object");
  }
  for (const char* key :
       {"chunk_blocks", "segment_chunks", "logical_blocks",
        "over_provision"}) {
    require_number(geometry, key);
  }
  const json::Value& counters = require(doc, "counters");
  if (!counters.is_object()) {
    throw std::invalid_argument("schema: counters must be an object");
  }
  for (const auto& [name, value] : counters.members()) {
    if (!value.is_number()) {
      throw std::invalid_argument("schema: counter \"" + name +
                                  "\" must be a number");
    }
  }
  validate_provenance_json(
      require(doc, "provenance"),
      static_cast<std::uint64_t>(require_number(geometry, "chunk_blocks")));
  validate_histogram_json(require(doc, "block_lifetime"), "block_lifetime");
  validate_histogram_json(require(doc, "gc_pause_us"), "gc_pause_us");
  // Optional: only prototype manifests carry per-op latency.
  if (const json::Value* latency = doc.find("latency_ns");
      latency != nullptr) {
    validate_histogram_json(*latency, "latency_ns");
  }
  // Optional: only prototype manifests carry device-lane stats.
  if (const json::Value* lanes = doc.find("lanes"); lanes != nullptr) {
    if (!lanes->is_object()) {
      throw std::invalid_argument("schema: lanes must be an object");
    }
    const auto count =
        static_cast<std::uint64_t>(require_number(*lanes, "count"));
    require_number(*lanes, "queue_depth");
    const json::Value& per_lane = require(*lanes, "per_lane");
    if (!per_lane.is_array()) {
      throw std::invalid_argument("schema: lanes.per_lane must be an array");
    }
    if (per_lane.items().size() != count) {
      throw std::invalid_argument(
          "schema: lanes.count disagrees with the per_lane array length");
    }
    for (const json::Value& l : per_lane.items()) {
      for (const char* key : {"submits", "stalled_submits", "busy_us",
                              "inflight_high_water", "busy_until_us"}) {
        require_number(l, key);
      }
    }
    validate_histogram_json(require(*lanes, "queue_depth_hist"),
                            "lanes.queue_depth_hist");
    validate_histogram_json(require(*lanes, "submit_complete_us"),
                            "lanes.submit_complete_us");
  }
  // Optional: only concurrent-engine manifests carry the phase-attributed
  // latency breakdown. When present, enforce the additivity identity from
  // lss/op_timeline.h: every phase histogram counts the same ops as total,
  // and the four phase sums telescope exactly to total's sum. A manifest
  // whose phases don't explain its total is rejected, like a provenance
  // matrix that doesn't balance.
  if (const json::Value* lat = doc.find("latency_breakdown");
      lat != nullptr) {
    if (!lat->is_object()) {
      throw std::invalid_argument(
          "schema: latency_breakdown must be an object");
    }
    const json::Value& total = require(*lat, "total_us");
    validate_histogram_json(total, "latency_breakdown.total_us");
    const double total_count = require_number(total, "count");
    const double total_sum = require_number(total, "sum");
    double phase_sum = 0.0;
    for (const char* key : {"intake_wait_us", "batch_apply_us",
                            "lane_queue_us", "device_service_us"}) {
      const json::Value& phase = require(*lat, key);
      validate_histogram_json(phase, "latency_breakdown." + std::string(key));
      if (require_number(phase, "count") != total_count) {
        throw std::invalid_argument("schema: latency_breakdown." +
                                    std::string(key) +
                                    ".count must equal total_us.count");
      }
      phase_sum += require_number(phase, "sum");
    }
    if (phase_sum != total_sum) {
      throw std::invalid_argument(
          "schema: latency_breakdown phase sums must add up to total_us.sum");
    }
  }
  // Optional trace capture summary: per-shard drops must sum to the total.
  if (const json::Value* trace = doc.find("trace"); trace != nullptr) {
    if (!trace->is_object()) {
      throw std::invalid_argument("schema: trace must be an object");
    }
    require_number(*trace, "recorded");
    const double dropped = require_number(*trace, "dropped");
    const json::Value& per_shard = require(*trace, "per_shard_dropped");
    if (!per_shard.is_array()) {
      throw std::invalid_argument(
          "schema: trace.per_shard_dropped must be an array");
    }
    double shard_sum = 0.0;
    for (const json::Value& v : per_shard.items()) {
      if (!v.is_number()) {
        throw std::invalid_argument(
            "schema: trace.per_shard_dropped entries must be numbers");
      }
      shard_sum += v.as_number();
    }
    if (shard_sum != dropped) {
      throw std::invalid_argument(
          "schema: trace.per_shard_dropped must sum to trace.dropped");
    }
  }
}

std::size_t validate_series_jsonl(std::string_view text) {
  std::size_t samples = 0;
  std::uint64_t declared_rows = 0;
  bool saw_header = false;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string_view line =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    if (line.empty()) continue;
    json::Value doc;
    try {
      doc = json::parse(line);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("line " + std::to_string(line_no) + ": " +
                                  e.what());
    }
    if (!doc.is_object()) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": not an object");
    }
    const std::string& type = require_string(doc, "type");
    if (!saw_header) {
      if (type != "header") {
        throw std::invalid_argument("first line must be the series header");
      }
      require_schema(doc, kSeriesSchema);
      require_number(doc, "window_blocks");
      require_number(doc, "downsamples");
      declared_rows = static_cast<std::uint64_t>(require_number(doc, "rows"));
      saw_header = true;
      continue;
    }
    if (type != "sample") {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": unknown row type \"" + type + '"');
    }
    for (const char* key :
         {"vtime", "wall_us", "user_blocks", "gc_blocks", "shadow_blocks",
          "padding_blocks", "rmw_blocks", "chunks_flushed", "gc_runs",
          "free_segments", "live_shadows"}) {
      require_number(doc, key);
    }
    require_number_or_null(doc, "threshold");
    require_number_or_null(doc, "wa");
    require_number_or_null(doc, "padding_ratio");
    const json::Value& windowed = require(doc, "windowed");
    if (!windowed.is_object()) {
      throw std::invalid_argument("line " + std::to_string(line_no) +
                                  ": windowed must be an object");
    }
    for (const char* key : {"wa", "padding_ratio", "gc_rate", "shadow_rate"}) {
      require_number_or_null(windowed, key);
    }
    if (const json::Value* groups = doc.find("groups"); groups != nullptr) {
      if (!groups->is_array()) {
        throw std::invalid_argument("line " + std::to_string(line_no) +
                                    ": groups must be an array");
      }
      for (const json::Value& g : groups->items()) {
        for (const char* key :
             {"group", "user_blocks", "gc_blocks", "shadow_blocks",
              "padding_blocks", "valid_blocks", "segments"}) {
          require_number(g, key);
        }
      }
    }
    ++samples;
  }
  if (!saw_header) throw std::invalid_argument("series has no header line");
  if (samples != declared_rows) {
    throw std::invalid_argument(
        "header declares " + std::to_string(declared_rows) +
        " rows but the stream carries " + std::to_string(samples));
  }
  return samples;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  if (name_.empty()) {
    throw std::invalid_argument("BenchReport: empty bench name");
  }
}

void BenchReport::add(std::string_view metric, Params params, double value,
                      std::string_view unit) {
  rows_.push_back(Row{std::string(metric), std::move(params), value,
                      std::string(unit)});
}

std::string BenchReport::json() const {
  std::string out = "{";
  append_kv(out, "schema", kBenchSchema);
  out += ',';
  append_kv(out, "bench", name_);
  out += ',';
  out += json::quote("rows");
  out += ":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i != 0) out += ',';
    const Row& row = rows_[i];
    out += '{';
    append_kv(out, "metric", row.metric);
    out += ',';
    out += json::quote("params");
    out += ":{";
    for (std::size_t p = 0; p < row.params.size(); ++p) {
      if (p != 0) out += ',';
      append_kv(out, row.params[p].first.c_str(), row.params[p].second);
    }
    out += "},";
    append_kv(out, "value", row.value);
    out += ',';
    append_kv(out, "unit", row.unit);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string BenchReport::write_file(const std::string& dir) const {
  const std::filesystem::path path =
      std::filesystem::path(dir) / ("BENCH_" + name_ + ".json");
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("BenchReport: cannot open " + path.string());
  }
  out << json() << '\n';
  return path.string();
}

void validate_bench_json(std::string_view text) {
  const json::Value doc = json::parse(text);
  if (!doc.is_object()) {
    throw std::invalid_argument("schema: bench report must be an object");
  }
  require_schema(doc, kBenchSchema);
  require_string(doc, "bench");
  const json::Value& rows = require(doc, "rows");
  if (!rows.is_array()) {
    throw std::invalid_argument("schema: rows must be an array");
  }
  if (rows.items().empty()) {
    throw std::invalid_argument("schema: rows must not be empty");
  }
  for (const json::Value& row : rows.items()) {
    if (!row.is_object()) {
      throw std::invalid_argument("schema: each row must be an object");
    }
    require_string(row, "metric");
    require_string(row, "unit");
    require_number_or_null(row, "value");
    const json::Value& params = require(row, "params");
    if (!params.is_object()) {
      throw std::invalid_argument("schema: params must be an object");
    }
    for (const auto& [name, value] : params.members()) {
      if (!value.is_string()) {
        throw std::invalid_argument("schema: param \"" + name +
                                    "\" must be a string");
      }
    }
  }
}

}  // namespace adapt::obs
