#include "obs/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "obs/export.h"
#include "obs/json.h"

namespace adapt::obs {

namespace {

double rel_delta(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

double number_or(const json::Value& obj, std::string_view key,
                 double fallback) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

class Comparer {
 public:
  Comparer(const CompareOptions& options, CompareReport& report)
      : options_(options), report_(report) {}

  void tolerance_row(std::string key, double baseline, double candidate) {
    CompareRow row;
    row.key = std::move(key);
    row.baseline = baseline;
    row.candidate = candidate;
    // NaN on both sides (e.g. WA of an empty run) counts as equal; NaN on
    // one side is a real difference.
    if (std::isnan(baseline) && std::isnan(candidate)) {
      row.rel_delta = 0.0;
      row.within = true;
    } else if (std::isnan(baseline) || std::isnan(candidate)) {
      row.rel_delta = std::numeric_limits<double>::infinity();
      row.within = false;
    } else {
      row.rel_delta = rel_delta(baseline, candidate);
      row.within = row.rel_delta <= options_.tolerance;
    }
    report_.rows.push_back(std::move(row));
  }

  void exact_string(const json::Value& base, const json::Value& cand,
                    std::string_view key) {
    const json::Value* b = base.find(key);
    const json::Value* c = cand.find(key);
    const std::string bs = b != nullptr && b->is_string() ? b->as_string() : "";
    const std::string cs = c != nullptr && c->is_string() ? c->as_string() : "";
    if (bs != cs) {
      report_.errors.push_back(std::string(key) + ": \"" + bs +
                               "\" != \"" + cs + '"');
    }
  }

  void exact_number(const json::Value& base, const json::Value& cand,
                    std::string_view key) {
    const double b = number_or(base, key, std::nan(""));
    const double c = number_or(cand, key, std::nan(""));
    if (std::isnan(b) && std::isnan(c)) return;
    if (b != c) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%.*s: %.10g != %.10g",
                    static_cast<int>(key.size()), key.data(), b, c);
      report_.errors.emplace_back(buf);
    }
  }

 private:
  const CompareOptions& options_;
  CompareReport& report_;
};

void compare_counters(const json::Value& base, const json::Value& cand,
                      Comparer& cmp, CompareReport& report,
                      const CompareOptions& options) {
  const json::Value* bc = base.find("counters");
  const json::Value* cc = cand.find("counters");
  if (bc == nullptr || !bc->is_object() || cc == nullptr ||
      !cc->is_object()) {
    report.errors.emplace_back("counters: missing or not an object");
    return;
  }
  std::set<std::string> names;
  for (const auto& [name, value] : bc->members()) {
    (void)value;
    names.insert(name);
  }
  for (const auto& [name, value] : cc->members()) {
    (void)value;
    names.insert(name);
  }
  for (const std::string& name : names) {
    cmp.tolerance_row("counters." + name, number_or(*bc, name, 0.0),
                      number_or(*cc, name, 0.0));
  }
  // Derived headline ratios: a small absolute drift in large counters can
  // hide a meaningful WA regression, so gate the ratios directly too.
  const auto derived = [&](const json::Value& c, const char* num_keys[4],
                           bool padding) {
    double user = number_or(c, "lss.user_blocks", 0.0);
    double total = 0.0;
    for (int i = 0; i < 4; ++i) total += number_or(c, num_keys[i], 0.0);
    if (padding) {
      return total == 0.0 ? 0.0
                          : number_or(c, "lss.padding_blocks", 0.0) / total;
    }
    return user == 0.0 ? 0.0 : total / user;
  };
  static const char* kTotalKeys[4] = {"lss.user_blocks", "lss.gc_blocks",
                                      "lss.shadow_blocks",
                                      "lss.padding_blocks"};
  cmp.tolerance_row("derived.wa", derived(*bc, kTotalKeys, false),
                    derived(*cc, kTotalKeys, false));
  cmp.tolerance_row("derived.padding_ratio", derived(*bc, kTotalKeys, true),
                    derived(*cc, kTotalKeys, true));
  (void)options;
}

void compare_provenance(const json::Value& base, const json::Value& cand,
                        Comparer& cmp, CompareReport& report) {
  const json::Value* bp = base.find("provenance");
  const json::Value* cp = cand.find("provenance");
  if (bp == nullptr && cp == nullptr) return;  // pre-provenance manifests
  if (bp == nullptr || !bp->is_object() || cp == nullptr ||
      !cp->is_object()) {
    report.errors.emplace_back("provenance: present on one side only");
    return;
  }
  const json::Value* bg = bp->find("groups");
  const json::Value* cg = cp->find("groups");
  if (bg == nullptr || !bg->is_array() || cg == nullptr || !cg->is_array()) {
    report.errors.emplace_back("provenance.groups: missing or not an array");
    return;
  }
  if (bg->items().size() != cg->items().size()) {
    report.errors.emplace_back("provenance.groups: group counts differ");
    return;
  }
  cmp.tolerance_row("provenance.pending_blocks",
                    number_or(*bp, "pending_blocks", 0.0),
                    number_or(*cp, "pending_blocks", 0.0));
  for (std::size_t g = 0; g < bg->items().size(); ++g) {
    const json::Value& b = bg->items()[g];
    const json::Value& c = cg->items()[g];
    const std::string prefix = "provenance.group" + std::to_string(g) + '.';
    for (const char* key : {"user", "gc", "shadow", "padding", "rmw",
                            "full_flushes", "padded_flushes",
                            "rmw_flushes"}) {
      cmp.tolerance_row(prefix + key, number_or(b, key, 0.0),
                        number_or(c, key, 0.0));
    }
    const json::Value* bf = b.find("gc_from");
    const json::Value* cf = c.find("gc_from");
    const std::size_t cells =
        std::max(bf != nullptr && bf->is_array() ? bf->items().size() : 0,
                 cf != nullptr && cf->is_array() ? cf->items().size() : 0);
    for (std::size_t s = 0; s < cells; ++s) {
      const auto cell = [s](const json::Value* arr) {
        if (arr == nullptr || !arr->is_array() || s >= arr->items().size()) {
          return 0.0;
        }
        const json::Value& v = arr->items()[s];
        return v.is_number() ? v.as_number() : 0.0;
      };
      cmp.tolerance_row(prefix + "gc_from" + std::to_string(s), cell(bf),
                        cell(cf));
    }
  }
}

void compare_lifetime(const json::Value& base, const json::Value& cand,
                      Comparer& cmp) {
  // Deterministic histogram: compare its moments. gc_pause_us is
  // host-clock data and deliberately not compared.
  const json::Value* bh = base.find("block_lifetime");
  const json::Value* ch = cand.find("block_lifetime");
  if (bh == nullptr && ch == nullptr) return;
  const auto moment = [](const json::Value* h, const char* key) {
    return h != nullptr && h->is_object() ? number_or(*h, key, 0.0) : 0.0;
  };
  cmp.tolerance_row("block_lifetime.count", moment(bh, "count"),
                    moment(ch, "count"));
  cmp.tolerance_row("block_lifetime.sum", moment(bh, "sum"),
                    moment(ch, "sum"));
}

void compare_manifests(const json::Value& base, const json::Value& cand,
                       const CompareOptions& options, CompareReport& report) {
  Comparer cmp(options, report);
  // Identity: comparing runs of different configs is a usage error the
  // gate must surface, not tolerate.
  for (const char* key : {"policy", "victim", "workload"}) {
    cmp.exact_string(base, cand, key);
  }
  for (const char* key : {"seed", "volume_id", "records"}) {
    cmp.exact_number(base, cand, key);
  }
  const json::Value* bg = base.find("geometry");
  const json::Value* cg = cand.find("geometry");
  if (bg != nullptr && bg->is_object() && cg != nullptr && cg->is_object()) {
    for (const char* key : {"chunk_blocks", "segment_chunks",
                            "logical_blocks", "over_provision"}) {
      cmp.exact_number(*bg, *cg, key);
    }
  } else {
    report.errors.emplace_back("geometry: missing or not an object");
  }
  cmp.tolerance_row("user_blocks", number_or(base, "user_blocks", 0.0),
                    number_or(cand, "user_blocks", 0.0));
  compare_counters(base, cand, cmp, report, options);
  compare_provenance(base, cand, cmp, report);
  compare_lifetime(base, cand, cmp);
  // Skipped on purpose: tool, wall_seconds, records_per_sec,
  // peak_rss_bytes, gc_pause_us, latency_ns — host-dependent.
}

/// Host-dependent bench units: wall-clock rates and latencies vary with
/// the machine and its load, so those rows are presence-checked (a
/// vanished metric is a bench regression) but never value-gated. Counter
/// rows ("blocks", "count", "ratio", ...) are deterministic and gate with
/// the normal tolerance.
bool host_dependent_unit(std::string_view unit) {
  return unit == "ns" || unit == "us" || unit == "ms" || unit == "s" ||
         unit == "1/s" || unit == "bytes/s";
}

void compare_benches(const json::Value& base, const json::Value& cand,
                     const CompareOptions& options, CompareReport& report) {
  Comparer cmp(options, report);
  cmp.exact_string(base, cand, "bench");
  struct BenchRow {
    double value = std::nan("");
    std::string unit;
  };
  const auto index_rows = [&report](const json::Value& doc) {
    std::map<std::string, BenchRow> rows;
    const json::Value* arr = doc.find("rows");
    if (arr == nullptr || !arr->is_array()) {
      report.errors.emplace_back("rows: missing or not an array");
      return rows;
    }
    for (const json::Value& row : arr->items()) {
      if (!row.is_object()) continue;
      const json::Value* metric = row.find("metric");
      std::string key =
          metric != nullptr && metric->is_string() ? metric->as_string() : "?";
      if (const json::Value* params = row.find("params");
          params != nullptr && params->is_object()) {
        for (const auto& [name, value] : params->members()) {
          key += '|';
          key += name;
          key += '=';
          if (value.is_string()) key += value.as_string();
        }
      }
      BenchRow entry;
      entry.value = number_or(row, "value", std::nan(""));
      if (const json::Value* unit = row.find("unit");
          unit != nullptr && unit->is_string()) {
        entry.unit = unit->as_string();
      }
      rows[key] = std::move(entry);
    }
    return rows;
  };
  const std::map<std::string, BenchRow> brows = index_rows(base);
  const std::map<std::string, BenchRow> crows = index_rows(cand);
  for (const auto& [key, brow] : brows) {
    const auto it = crows.find(key);
    if (it == crows.end()) {
      report.errors.push_back("row missing from candidate: " + key);
      continue;
    }
    if (host_dependent_unit(brow.unit) ||
        host_dependent_unit(it->second.unit)) {
      continue;
    }
    cmp.tolerance_row(key, brow.value, it->second.value);
  }
  for (const auto& [key, crow] : crows) {
    (void)crow;
    if (!brows.contains(key)) {
      report.errors.push_back("row missing from baseline: " + key);
    }
  }
}

std::string schema_of(const json::Value& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("compare: artifact is not a JSON object");
  }
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    throw std::invalid_argument("compare: artifact has no schema tag");
  }
  return schema->as_string();
}

}  // namespace

CompareReport compare_artifacts(std::string_view baseline,
                                std::string_view candidate,
                                const CompareOptions& options) {
  const json::Value base = json::parse(baseline);
  const json::Value cand = json::parse(candidate);
  const std::string base_schema = schema_of(base);
  const std::string cand_schema = schema_of(cand);
  if (base_schema != cand_schema) {
    throw std::invalid_argument("compare: schema mismatch (" + base_schema +
                                " vs " + cand_schema + ')');
  }
  CompareReport report;
  if (base_schema == kManifestSchema) {
    compare_manifests(base, cand, options, report);
  } else if (base_schema == kBenchSchema) {
    compare_benches(base, cand, options, report);
  } else {
    throw std::invalid_argument("compare: unsupported schema \"" +
                                base_schema + '"');
  }
  return report;
}

std::string format_report(const CompareReport& report,
                          const CompareOptions& options) {
  std::string out;
  for (const std::string& error : report.errors) {
    out += "MISMATCH ";
    out += error;
    out += '\n';
  }
  for (const CompareRow& row : report.rows) {
    if (row.within) continue;
    char buf[128];
    std::snprintf(buf, sizeof(buf), " %.10g -> %.10g (rel %.4g > %.4g)\n",
                  row.baseline, row.candidate, row.rel_delta,
                  options.tolerance);
    out += "EXCEEDS  ";
    out += row.key;
    out += buf;
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "%zu compared, %zu violations, tolerance %.4g\n",
                report.rows.size(), report.violations(), options.tolerance);
  out += tail;
  return out;
}

}  // namespace adapt::obs
