// Windowed time-series sampling for the LSS engine.
//
// The paper's evaluation argues from *trajectories* — threshold adaptation
// reacting to workload drift (§3.2, Fig. 7), WA/padding correlation over
// time (Fig. 10), per-group traffic breakdowns (Fig. 8–9) — so the sampler
// snapshots cumulative engine counters every `window_blocks` user blocks.
// Rows store cumulative values, never deltas: windowed series (windowed WA,
// padding ratio, GC rate, shadow-append rate) are derived at export time
// from consecutive rows, which makes downsampling trivially correct.
//
// Fixed memory: when the row buffer reaches `max_rows`, every second row is
// dropped and the sampling stride doubles (HdrHistogram-recorder style), so
// a run of any length costs at most `max_rows` rows while keeping uniform
// spacing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "lss/engine.h"

namespace adapt::obs {

/// Per-group cumulative traffic at one sample point.
struct GroupSample {
  std::uint64_t user_blocks = 0;
  std::uint64_t gc_blocks = 0;
  std::uint64_t shadow_blocks = 0;
  std::uint64_t padding_blocks = 0;
  std::uint64_t valid_blocks = 0;  ///< live blocks resident in the group
  std::uint32_t segments = 0;      ///< in-use segments owned by the group
};

/// One snapshot of cumulative engine counters (see file comment: windowed
/// series are derived from consecutive rows at export time).
struct SeriesRow {
  std::uint64_t vtime = 0;
  TimeUs wall_us = 0;
  std::uint64_t user_blocks = 0;
  std::uint64_t gc_blocks = 0;
  std::uint64_t shadow_blocks = 0;
  std::uint64_t padding_blocks = 0;
  std::uint64_t rmw_blocks = 0;
  std::uint64_t chunks_flushed = 0;
  std::uint64_t gc_runs = 0;
  std::uint32_t free_segments = 0;
  std::uint64_t live_shadows = 0;
  /// Live ADAPT hot/cold threshold; NaN when the policy has none.
  double threshold = std::numeric_limits<double>::quiet_NaN();
  std::vector<GroupSample> groups;  ///< empty when per-group sampling is off
};

struct TimeSeries {
  std::uint64_t window_blocks = 0;  ///< final stride (doubles on downsample)
  std::uint32_t downsamples = 0;    ///< resolution-halving events
  std::vector<SeriesRow> rows;
};

struct SamplerConfig {
  /// Initial sampling stride in user blocks.
  std::uint64_t window_blocks = 4096;
  /// Fixed memory bound on retained rows (minimum 8).
  std::size_t max_rows = 512;
  /// Capture per-group traffic / fill / valid columns. The valid-block
  /// recount walks the segment pool (O(total segments) per sample).
  bool per_group = true;
};

/// Engine observer that materialises a TimeSeries. Purely passive: the
/// engine's behaviour and metrics are bit-identical with the sampler
/// attached or not.
class EngineSampler final : public lss::EngineObserver {
 public:
  /// `threshold_probe` (optional) reports the live ADAPT threshold; leave
  /// empty for policies without one.
  explicit EngineSampler(const SamplerConfig& config,
                         std::function<double()> threshold_probe = {});

  void on_user_block(const lss::LssEngine& engine, TimeUs now_us) override;

  /// Takes a final snapshot unless the last row already covers the current
  /// vtime (call after the end-of-trace drain).
  void finalize(const lss::LssEngine& engine, TimeUs now_us);

  const TimeSeries& series() const noexcept { return series_; }
  TimeSeries take() { return std::move(series_); }

 private:
  void snapshot(const lss::LssEngine& engine, TimeUs now_us);
  void maybe_downsample();

  SamplerConfig config_;
  std::function<double()> threshold_probe_;
  TimeSeries series_;
  std::uint64_t next_vtime_;
  /// Reused across snapshots so the per-sample segments_per_group query
  /// allocates only when the group count grows (observer hot path).
  std::vector<std::uint32_t> segments_scratch_;
};

/// Merges per-shard time series into one global series (shard-merge
/// semantics; see DESIGN.md "Engine decomposition & sharding"):
///   * strides align exactly by re-downsampling finer parts to the coarsest
///     stride — cumulative rows make dropping rows lossless;
///   * aligned rows merge by index (truncated to the shortest part):
///     cumulative counters and per-group columns sum, wall_us takes the
///     max, the threshold column averages the non-NaN shard thresholds;
///   * the merged header stride is the per-shard stride times the shard
///     count (nominal global user blocks between rows).
/// A single part passes through unchanged. Throws std::invalid_argument on
/// an empty input or on parts whose strides cannot be aligned (different
/// initial window_blocks).
TimeSeries merge_series(std::vector<TimeSeries> parts);

}  // namespace adapt::obs
