// Low-overhead counter/gauge registry (observability layer).
//
// The hot path never sees the registry: callers look a slot up once
// (`slot()` returns a stable `std::uint64_t*`) and bump the raw word from
// then on — no locks, no hashing, no virtual dispatch per update. Thread
// safety comes from ownership, not synchronisation: each engine / worker
// thread owns its own Registry instance and the collector merges them with
// `merge_from` once the workers are done (the experiment runner does this
// under its collection mutex).
//
// Concurrency contract: this class is thread-compatible, not thread-safe —
// deliberately lock-free because no instance is ever shared between live
// threads. There is no capability annotation to attach (nothing here is
// guarded); the single-owner discipline is upheld by the callers converted
// to adapt::Mutex/LockGuard and checked by the -Wthread-safety CI job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace adapt::obs {

class Registry {
 public:
  /// Returns a stable pointer to the named slot, creating it at 0. Node
  /// addresses survive later insertions (std::map nodes never move), so the
  /// pointer stays valid for the registry's lifetime.
  std::uint64_t* slot(std::string_view name);

  /// Current value of a slot; 0 for names never registered.
  std::uint64_t value(std::string_view name) const noexcept;

  bool contains(std::string_view name) const noexcept;

  /// Adds every slot of `other` into this registry (sum per name). The
  /// collection-time merge for per-thread / per-engine instances.
  void merge_from(const Registry& other);

  std::size_t size() const noexcept { return slots_.size(); }
  bool empty() const noexcept { return slots_.empty(); }

  /// Name-sorted view for exporters.
  const std::map<std::string, std::uint64_t, std::less<>>& entries()
      const noexcept {
    return slots_;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> slots_;
};

}  // namespace adapt::obs
