#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace adapt::obs::json {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::invalid_argument(std::string("json: value is not ") + wanted);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("a string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::kArray) type_error("an array");
  return array_;
}

const std::map<std::string, Value>& Value::members() const {
  if (type_ != Type::kObject) type_error("an object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) type_error("an object");
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  /// Nesting bound: the recursive descent otherwise turns `[[[[...` into a
  /// stack overflow. Far above any artifact schema (deepest is 4) and low
  /// enough to stay within default thread stacks even under sanitizers.
  static constexpr std::size_t kMaxDepth = 96;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("json: " + why + " at offset " +
                                std::to_string(pos_));
  }

  void enter() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
  }
  void leave() noexcept { --depth_; }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.type_ = Value::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        Value v;
        v.type_ = Value::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        Value v;
        v.type_ = Value::Type::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    enter();
    Value v;
    v.type_ = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      leave();
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!v.object_.emplace(std::move(key), parse_value()).second) {
        fail("duplicate object key");
      }
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        leave();
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    enter();
    Value v;
    v.type_ = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      leave();
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        leave();
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the schemas only carry ASCII names).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("bad number");
    }
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    // JSON forbids leading zeros: "0" is a full integer part, "01" is not.
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    Value v;
    v.type_ = Value::Type::kNumber;
    v.number_ = std::strtod(token.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

}  // namespace adapt::obs::json
