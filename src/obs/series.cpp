#include "obs/series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace adapt::obs {

EngineSampler::EngineSampler(const SamplerConfig& config,
                             std::function<double()> threshold_probe)
    : config_(config), threshold_probe_(std::move(threshold_probe)) {
  if (config_.window_blocks == 0) {
    throw std::invalid_argument("EngineSampler: window_blocks must be > 0");
  }
  config_.max_rows = std::max<std::size_t>(config_.max_rows, 8);
  series_.window_blocks = config_.window_blocks;
  series_.rows.reserve(config_.max_rows);
  next_vtime_ = config_.window_blocks;
}

void EngineSampler::on_user_block(const lss::LssEngine& engine,
                                  TimeUs now_us) {
  if (engine.vtime() < next_vtime_) return;
  snapshot(engine, now_us);
  next_vtime_ += series_.window_blocks;
  maybe_downsample();
}

void EngineSampler::finalize(const lss::LssEngine& engine, TimeUs now_us) {
  if (!series_.rows.empty() && series_.rows.back().vtime == engine.vtime()) {
    return;
  }
  snapshot(engine, now_us);
  maybe_downsample();
}

void EngineSampler::snapshot(const lss::LssEngine& engine, TimeUs now_us) {
  const lss::LssMetrics& m = engine.metrics();
  SeriesRow row;
  row.vtime = engine.vtime();
  row.wall_us = now_us;
  row.user_blocks = m.user_blocks;
  row.gc_blocks = m.gc_blocks;
  row.shadow_blocks = m.shadow_blocks;
  row.padding_blocks = m.padding_blocks;
  row.rmw_blocks = m.rmw_blocks;
  row.chunks_flushed = engine.chunks_flushed();
  row.gc_runs = m.gc_runs;
  row.free_segments = engine.free_segments();
  row.live_shadows = engine.live_shadow_count();
  if (threshold_probe_) row.threshold = threshold_probe_();
  if (config_.per_group) {
    row.groups.resize(engine.group_count());
    for (GroupId g = 0; g < engine.group_count(); ++g) {
      const lss::GroupTraffic& gt = engine.group_traffic(g);
      GroupSample& gs = row.groups[g];
      gs.user_blocks = gt.user_blocks;
      gs.gc_blocks = gt.gc_blocks;
      gs.shadow_blocks = gt.shadow_blocks;
      gs.padding_blocks = gt.padding_blocks;
    }
    engine.segments_per_group(segments_scratch_);
    for (GroupId g = 0; g < engine.group_count(); ++g) {
      row.groups[g].segments = segments_scratch_[g];
    }
    for (const lss::Segment& seg : engine.segments()) {
      if (seg.free || seg.group >= row.groups.size()) continue;
      row.groups[seg.group].valid_blocks += seg.valid_count;
    }
  }
  series_.rows.push_back(std::move(row));
}

void EngineSampler::maybe_downsample() {
  if (series_.rows.size() < config_.max_rows) return;
  // Keep rows 0, 2, 4, ...: cumulative counters stay exact, spacing stays
  // uniform at twice the stride.
  std::vector<SeriesRow>& rows = series_.rows;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < rows.size(); i += 2) {
    rows[kept++] = std::move(rows[i]);
  }
  rows.resize(kept);
  series_.window_blocks *= 2;
  ++series_.downsamples;
  next_vtime_ = rows.back().vtime + series_.window_blocks;
}

TimeSeries merge_series(std::vector<TimeSeries> parts) {
  if (parts.empty()) {
    throw std::invalid_argument("merge_series: no series to merge");
  }
  if (parts.size() == 1) return std::move(parts.front());

  // All parts must descend from the same initial stride: stride =
  // W << downsamples. Align everything to the coarsest stride by keeping
  // every 2^(d_max - d_i)-th row — exactly what further sampler
  // downsampling would have kept, so cumulative rows stay exact.
  std::uint32_t d_max = 0;
  for (const TimeSeries& part : parts) {
    if (part.window_blocks == 0 ||
        (part.window_blocks >> part.downsamples) == 0 ||
        (part.window_blocks >> part.downsamples) << part.downsamples !=
            part.window_blocks) {
      throw std::invalid_argument("merge_series: corrupt series header");
    }
    d_max = std::max(d_max, part.downsamples);
  }
  const std::uint64_t base_window = parts.front().window_blocks >>
                                    parts.front().downsamples;
  for (const TimeSeries& part : parts) {
    if ((part.window_blocks >> part.downsamples) != base_window) {
      throw std::invalid_argument(
          "merge_series: parts sampled with different windows");
    }
  }

  std::size_t min_rows = std::numeric_limits<std::size_t>::max();
  for (TimeSeries& part : parts) {
    const std::uint32_t factor_log2 = d_max - part.downsamples;
    if (factor_log2 > 0) {
      const std::size_t step = std::size_t{1} << factor_log2;
      std::size_t kept = 0;
      for (std::size_t i = 0; i < part.rows.size(); i += step) {
        part.rows[kept++] = std::move(part.rows[i]);
      }
      part.rows.resize(kept);
    }
    min_rows = std::min(min_rows, part.rows.size());
  }

  TimeSeries merged;
  merged.window_blocks =
      (base_window << d_max) * static_cast<std::uint64_t>(parts.size());
  merged.downsamples = d_max;
  merged.rows.resize(min_rows);
  for (std::size_t i = 0; i < min_rows; ++i) {
    SeriesRow& out = merged.rows[i];
    std::uint32_t thresholds = 0;
    double threshold_sum = 0.0;
    for (const TimeSeries& part : parts) {
      const SeriesRow& in = part.rows[i];
      out.vtime += in.vtime;
      out.wall_us = std::max(out.wall_us, in.wall_us);
      out.user_blocks += in.user_blocks;
      out.gc_blocks += in.gc_blocks;
      out.shadow_blocks += in.shadow_blocks;
      out.padding_blocks += in.padding_blocks;
      out.rmw_blocks += in.rmw_blocks;
      out.chunks_flushed += in.chunks_flushed;
      out.gc_runs += in.gc_runs;
      out.free_segments += in.free_segments;
      out.live_shadows += in.live_shadows;
      if (!std::isnan(in.threshold)) {
        threshold_sum += in.threshold;
        ++thresholds;
      }
      if (out.groups.size() < in.groups.size()) {
        out.groups.resize(in.groups.size());
      }
      for (std::size_t g = 0; g < in.groups.size(); ++g) {
        GroupSample& og = out.groups[g];
        const GroupSample& ig = in.groups[g];
        og.user_blocks += ig.user_blocks;
        og.gc_blocks += ig.gc_blocks;
        og.shadow_blocks += ig.shadow_blocks;
        og.padding_blocks += ig.padding_blocks;
        og.valid_blocks += ig.valid_blocks;
        og.segments += ig.segments;
      }
    }
    if (thresholds > 0) {
      out.threshold = threshold_sum / static_cast<double>(thresholds);
    }
  }
  return merged;
}

}  // namespace adapt::obs
