#include "obs/series.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::obs {

EngineSampler::EngineSampler(const SamplerConfig& config,
                             std::function<double()> threshold_probe)
    : config_(config), threshold_probe_(std::move(threshold_probe)) {
  if (config_.window_blocks == 0) {
    throw std::invalid_argument("EngineSampler: window_blocks must be > 0");
  }
  config_.max_rows = std::max<std::size_t>(config_.max_rows, 8);
  series_.window_blocks = config_.window_blocks;
  series_.rows.reserve(config_.max_rows);
  next_vtime_ = config_.window_blocks;
}

void EngineSampler::on_user_block(const lss::LssEngine& engine,
                                  TimeUs now_us) {
  if (engine.vtime() < next_vtime_) return;
  snapshot(engine, now_us);
  next_vtime_ += series_.window_blocks;
  maybe_downsample();
}

void EngineSampler::finalize(const lss::LssEngine& engine, TimeUs now_us) {
  if (!series_.rows.empty() && series_.rows.back().vtime == engine.vtime()) {
    return;
  }
  snapshot(engine, now_us);
  maybe_downsample();
}

void EngineSampler::snapshot(const lss::LssEngine& engine, TimeUs now_us) {
  const lss::LssMetrics& m = engine.metrics();
  SeriesRow row;
  row.vtime = engine.vtime();
  row.wall_us = now_us;
  row.user_blocks = m.user_blocks;
  row.gc_blocks = m.gc_blocks;
  row.shadow_blocks = m.shadow_blocks;
  row.padding_blocks = m.padding_blocks;
  row.rmw_blocks = m.rmw_blocks;
  row.chunks_flushed = engine.chunks_flushed();
  row.gc_runs = m.gc_runs;
  row.free_segments = engine.free_segments();
  row.live_shadows = engine.live_shadow_count();
  if (threshold_probe_) row.threshold = threshold_probe_();
  if (config_.per_group) {
    row.groups.resize(engine.group_count());
    for (GroupId g = 0; g < engine.group_count(); ++g) {
      const lss::GroupTraffic& gt = engine.group_traffic(g);
      GroupSample& gs = row.groups[g];
      gs.user_blocks = gt.user_blocks;
      gs.gc_blocks = gt.gc_blocks;
      gs.shadow_blocks = gt.shadow_blocks;
      gs.padding_blocks = gt.padding_blocks;
    }
    const std::vector<std::uint32_t> per_group = engine.segments_per_group();
    for (GroupId g = 0; g < engine.group_count(); ++g) {
      row.groups[g].segments = per_group[g];
    }
    for (const lss::Segment& seg : engine.segments()) {
      if (seg.free || seg.group >= row.groups.size()) continue;
      row.groups[seg.group].valid_blocks += seg.valid_count;
    }
  }
  series_.rows.push_back(std::move(row));
}

void EngineSampler::maybe_downsample() {
  if (series_.rows.size() < config_.max_rows) return;
  // Keep rows 0, 2, 4, ...: cumulative counters stay exact, spacing stays
  // uniform at twice the stride.
  std::vector<SeriesRow>& rows = series_.rows;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < rows.size(); i += 2) {
    rows[kept++] = std::move(rows[i]);
  }
  rows.resize(kept);
  series_.window_blocks *= 2;
  ++series_.downsamples;
  next_vtime_ = rows.back().vtime + series_.window_blocks;
}

}  // namespace adapt::obs
