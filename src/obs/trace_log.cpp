#include "obs/trace_log.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

#include "common/annotations.h"
#include "obs/json.h"

namespace adapt::obs {

namespace {

/// Display name + category + phase for each event kind.
struct KindInfo {
  const char* name;
  const char* cat;
  char ph;
};

KindInfo kind_info(lss::TraceEventKind kind) {
  using lss::TraceEventKind;
  switch (kind) {
    case TraceEventKind::kUserWrite:
      return {"user_write", "user", 'i'};
    case TraceEventKind::kChunkFlush:
      return {"chunk_flush", "flush", 'i'};
    case TraceEventKind::kRmwFlush:
      return {"rmw_flush", "flush", 'i'};
    case TraceEventKind::kShadowAppend:
      return {"shadow_append", "aggregation", 'i'};
    case TraceEventKind::kShadowExpire:
      return {"shadow_expire", "aggregation", 'i'};
    case TraceEventKind::kSegmentAlloc:
      return {"segment_alloc", "segment", 'i'};
    case TraceEventKind::kSegmentSeal:
      return {"segment_seal", "segment", 'i'};
    case TraceEventKind::kGcRun:
      return {"gc_run", "gc", 'X'};
    case TraceEventKind::kThresholdAdapt:
      return {"threshold_adapt", "adapt", 'i'};
    case TraceEventKind::kGroupCommit:
      return {"group_commit", "commit", 'i'};
    case TraceEventKind::kLaneSubmit:
      return {"lane_submit", "device", 'i'};
    case TraceEventKind::kLaneComplete:
      return {"lane_complete", "device", 'i'};
    case TraceEventKind::kOpSubmit:
      return {"op_submit", "op", 'X'};
    case TraceEventKind::kOpDurable:
      return {"op_durable", "op", 'X'};
  }
  throw std::logic_error("unknown trace event kind");
}

void append_kv_u64(std::string& out, const char* key, std::uint64_t v) {
  out += json::quote(key);
  out += ':';
  out += std::to_string(v);
}

void append_kv_str(std::string& out, const char* key, std::string_view v) {
  out += json::quote(key);
  out += ':';
  out += json::quote(v);
}

/// The kind-specific payload rendered into the event's args object.
void append_args(std::string& out, const lss::TraceEvent& e) {
  using lss::TraceEventKind;
  append_kv_u64(out, "wall_us", e.wall_us);
  if (e.group != kInvalidGroup) {
    out += ',';
    append_kv_u64(out, "group", e.group);
  }
  out += ',';
  switch (e.kind) {
    case TraceEventKind::kUserWrite:
      append_kv_u64(out, "lba", e.a);
      break;
    case TraceEventKind::kChunkFlush:
      append_kv_u64(out, "fill_blocks", e.a);
      out += ',';
      append_kv_u64(out, "padded", e.b);
      out += ',';
      append_kv_u64(out, "chunk", e.c);
      break;
    case TraceEventKind::kRmwFlush:
      append_kv_u64(out, "blocks", e.a);
      out += ',';
      append_kv_u64(out, "chunk", e.c);
      break;
    case TraceEventKind::kShadowAppend:
      append_kv_u64(out, "donor", e.a);
      out += ',';
      append_kv_u64(out, "blocks", e.b);
      break;
    case TraceEventKind::kShadowExpire:
      append_kv_u64(out, "count", e.a);
      break;
    case TraceEventKind::kSegmentAlloc:
      append_kv_u64(out, "segment", e.a);
      break;
    case TraceEventKind::kSegmentSeal:
      append_kv_u64(out, "segment", e.a);
      out += ',';
      append_kv_u64(out, "valid_blocks", e.b);
      break;
    case TraceEventKind::kGcRun:
      append_kv_u64(out, "victim", e.a);
      out += ',';
      append_kv_u64(out, "migrated", e.b);
      out += ',';
      append_kv_u64(out, "forced_flushes", e.c);
      break;
    case TraceEventKind::kThresholdAdapt:
      append_kv_u64(out, "threshold", e.a);
      out += ',';
      append_kv_u64(out, "adoptions", e.b);
      break;
    case TraceEventKind::kGroupCommit:
      append_kv_u64(out, "batch_ops", e.a);
      out += ',';
      append_kv_u64(out, "batch_blocks", e.b);
      out += ',';
      append_kv_u64(out, "chunks_flushed", e.c);
      break;
    case TraceEventKind::kLaneSubmit:
      append_kv_u64(out, "seq", e.a);
      out += ',';
      append_kv_u64(out, "inflight", e.b);
      out += ',';
      append_kv_u64(out, "admit_us", e.c);
      break;
    case TraceEventKind::kLaneComplete:
      append_kv_u64(out, "seq", e.a);
      out += ',';
      append_kv_u64(out, "service_us", e.b);
      out += ',';
      append_kv_u64(out, "complete_us", e.c);
      break;
    case TraceEventKind::kOpSubmit:
      append_kv_u64(out, "lba", e.a);
      out += ',';
      append_kv_u64(out, "blocks", e.b);
      break;
    case TraceEventKind::kOpDurable:
      append_kv_u64(out, "lba", e.a);
      out += ',';
      append_kv_u64(out, "blocks", e.b);
      out += ',';
      append_kv_u64(out, "durable_us", e.c);
      break;
  }
  // Causal-flow correlation id (batch id in the concurrent engine). Only
  // flow participants carry it, so id-free traces render byte-identically
  // to pre-flow exports.
  if (e.id != 0) {
    out += ',';
    append_kv_u64(out, "flow_id", e.id);
  }
}

void append_metadata_event(std::string& out, std::uint32_t tid,
                           std::string_view meta_name,
                           std::string_view value) {
  out += '{';
  append_kv_str(out, "name", meta_name);
  out += ',';
  append_kv_str(out, "ph", "M");
  out += ',';
  append_kv_u64(out, "pid", 0);
  out += ',';
  append_kv_u64(out, "tid", tid);
  out += ',';
  out += json::quote("args");
  out += ":{";
  append_kv_str(out, "name", value);
  out += "}}";
}

}  // namespace

TraceLog::TraceLog(const TraceLogConfig& config)
    : capacity_(config.capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("TraceLog: capacity must be positive");
  }
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

ADAPT_HOT void TraceLog::record(const lss::TraceEvent& event) {
  if (ring_.size() < capacity_) {
    // Grows geometrically only until the ring reaches capacity, then every
    // later record overwrites in place — steady state allocates nothing.
    ring_.push_back(event);  // ADAPT_LINT_ALLOW(hot-alloc)
  } else {
    ring_[recorded_ % capacity_] = event;
  }
  ++recorded_;
}

std::vector<lss::TraceEvent> TraceLog::events() const {
  if (recorded_ <= capacity_) return ring_;
  // The ring wrapped: the oldest retained event sits at the write cursor.
  const std::size_t cursor = recorded_ % capacity_;
  std::vector<lss::TraceEvent> out;
  out.reserve(capacity_);
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(cursor),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(cursor));
  return out;
}

TraceData merge_trace_logs(const std::vector<const TraceLog*>& shards) {
  TraceData data;
  data.shard_count = static_cast<std::uint32_t>(shards.size());
  data.per_shard_dropped.assign(data.shard_count, 0);
  for (std::uint32_t shard = 0; shard < shards.size(); ++shard) {
    const TraceLog* log = shards[shard];
    if (log == nullptr) continue;
    data.recorded += log->recorded();
    data.dropped += log->dropped();
    data.per_shard_dropped[shard] = log->dropped();
    std::uint64_t seq = 0;
    for (const lss::TraceEvent& event : log->events()) {
      data.entries.push_back(TraceData::Entry{event, shard, seq++});
    }
  }
  std::stable_sort(data.entries.begin(), data.entries.end(),
                   [](const TraceData::Entry& l, const TraceData::Entry& r) {
                     return std::tie(l.event.ts, l.shard, l.seq) <
                            std::tie(r.event.ts, r.shard, r.seq);
                   });
  return data;
}

std::string chrome_trace_json(const TraceData& data, const TraceMeta& meta) {
  std::string out = "{";
  append_kv_str(out, "schema", kTraceSchema);
  out += ',';
  append_kv_str(out, "displayTimeUnit", "ms");
  out += ',';
  out += json::quote("otherData");
  out += ":{";
  append_kv_str(out, "tool", meta.tool);
  out += ',';
  append_kv_str(out, "policy", meta.policy);
  out += ',';
  append_kv_str(out, "workload", meta.workload);
  out += ',';
  append_kv_u64(out, "seed", meta.seed);
  out += ',';
  append_kv_u64(out, "shards", data.shard_count);
  out += ',';
  append_kv_u64(out, "recorded", data.recorded);
  out += ',';
  append_kv_u64(out, "dropped", data.dropped);
  out += ',';
  out += json::quote("per_shard_dropped");
  out += ":[";
  for (std::uint32_t shard = 0; shard < data.shard_count; ++shard) {
    if (shard > 0) out += ',';
    out += std::to_string(shard < data.per_shard_dropped.size()
                              ? data.per_shard_dropped[shard]
                              : 0);
  }
  out += "]},";
  out += json::quote("traceEvents");
  out += ":[";
  append_metadata_event(out, 0, "process_name", "adapt-lss");
  for (std::uint32_t shard = 0; shard < data.shard_count; ++shard) {
    out += ',';
    append_metadata_event(out, shard, "thread_name",
                          "shard " + std::to_string(shard));
  }
  // Pre-pass for Perfetto flow arrows: each nonzero event id is one causal
  // flow (op -> batch -> flush -> lane). The first slice of an id starts
  // the flow ("s"), the last finishes it ("f"), everything between steps
  // it ("t") — so occurrence counts must be known before rendering.
  struct FlowCount {
    std::uint64_t total = 0;
    std::uint64_t emitted = 0;
  };
  std::unordered_map<std::uint64_t, FlowCount> flows;
  for (const TraceData::Entry& entry : data.entries) {
    if (entry.event.id != 0) ++flows[entry.event.id].total;
  }
  for (const TraceData::Entry& entry : data.entries) {
    const lss::TraceEvent& e = entry.event;
    const KindInfo info = kind_info(e.kind);
    // Flow events bind to a slice at the same pid/tid/ts, so every flow
    // participant must render as a complete span: instants carrying an id
    // are promoted to width-1 slices.
    const char ph = (e.id != 0 && info.ph == 'i') ? 'X' : info.ph;
    out += ",{";
    append_kv_str(out, "name", info.name);
    out += ',';
    append_kv_str(out, "cat", info.cat);
    out += ',';
    append_kv_str(out, "ph", std::string_view(&ph, 1));
    out += ',';
    append_kv_u64(out, "pid", 0);
    out += ',';
    append_kv_u64(out, "tid", entry.shard);
    out += ',';
    append_kv_u64(out, "ts", e.ts);
    out += ',';
    if (ph == 'X') {
      // Pseudo-duration: GC runs use migrated blocks, so victim quality
      // reads directly off the span width (vtime units, like ts); every
      // other slice is nominal width 1.
      const std::uint64_t dur =
          e.kind == lss::TraceEventKind::kGcRun && e.b > 0 ? e.b : 1;
      append_kv_u64(out, "dur", dur);
      out += ',';
    }
    if (ph == 'i') {
      append_kv_str(out, "s", "t");
      out += ',';
    }
    out += json::quote("args");
    out += ":{";
    append_args(out, e);
    out += "}}";
    if (e.id != 0) {
      FlowCount& fc = flows[e.id];
      const char* flow_ph = fc.emitted == 0             ? "s"
                            : fc.emitted + 1 == fc.total ? "f"
                                                         : "t";
      ++fc.emitted;
      out += ",{";
      append_kv_str(out, "name", "op_flow");
      out += ',';
      append_kv_str(out, "cat", "flow");
      out += ',';
      append_kv_str(out, "ph", flow_ph);
      out += ',';
      append_kv_u64(out, "pid", 0);
      out += ',';
      append_kv_u64(out, "tid", entry.shard);
      out += ',';
      append_kv_u64(out, "ts", e.ts);
      out += ',';
      append_kv_u64(out, "id", e.id);
      out += ',';
      out += json::quote("args");
      out += ":{}}";
    }
  }
  out += "]}";
  return out;
}

void validate_trace_json(std::string_view text) {
  const json::Value doc = json::parse(text);
  if (!doc.is_object()) {
    throw std::invalid_argument("schema: trace must be an object");
  }
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kTraceSchema) {
    throw std::invalid_argument("schema: expected \"" +
                                std::string(kTraceSchema) + '"');
  }
  const json::Value* other = doc.find("otherData");
  if (other == nullptr || !other->is_object()) {
    throw std::invalid_argument("schema: otherData must be an object");
  }
  for (const char* key : {"tool", "policy", "workload"}) {
    const json::Value* v = other->find(key);
    if (v == nullptr || !v->is_string()) {
      throw std::invalid_argument("schema: otherData." + std::string(key) +
                                  " must be a string");
    }
  }
  for (const char* key : {"seed", "shards", "recorded", "dropped"}) {
    const json::Value* v = other->find(key);
    if (v == nullptr || !v->is_number()) {
      throw std::invalid_argument("schema: otherData." + std::string(key) +
                                  " must be a number");
    }
  }
  {
    const json::Value* per_shard = other->find("per_shard_dropped");
    if (per_shard == nullptr || !per_shard->is_array()) {
      throw std::invalid_argument(
          "schema: otherData.per_shard_dropped must be an array");
    }
    double shard_sum = 0.0;
    for (const json::Value& v : per_shard->items()) {
      if (!v.is_number()) {
        throw std::invalid_argument(
            "schema: otherData.per_shard_dropped entries must be numbers");
      }
      shard_sum += v.as_number();
    }
    if (shard_sum != other->find("dropped")->as_number()) {
      throw std::invalid_argument(
          "schema: otherData.per_shard_dropped must sum to otherData.dropped");
    }
  }
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw std::invalid_argument("schema: traceEvents must be an array");
  }
  std::size_t index = 0;
  for (const json::Value& event : events->items()) {
    const std::string where = "traceEvents[" + std::to_string(index++) + "]";
    if (!event.is_object()) {
      throw std::invalid_argument("schema: " + where + " must be an object");
    }
    const json::Value* name = event.find("name");
    if (name == nullptr || !name->is_string()) {
      throw std::invalid_argument("schema: " + where +
                                  ".name must be a string");
    }
    const json::Value* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string()) {
      throw std::invalid_argument("schema: " + where +
                                  ".ph must be a string");
    }
    const std::string& phase = ph->as_string();
    const bool flow_phase = phase == "s" || phase == "t" || phase == "f";
    if (phase != "M" && phase != "i" && phase != "X" && phase != "C" &&
        !flow_phase) {
      throw std::invalid_argument("schema: " + where + " has unknown phase \"" +
                                  phase + '"');
    }
    if (flow_phase) {
      const json::Value* id = event.find("id");
      if (id == nullptr || !id->is_number()) {
        throw std::invalid_argument("schema: " + where +
                                    ".id must be a number on flow events");
      }
    }
    for (const char* key : {"pid", "tid"}) {
      const json::Value* v = event.find(key);
      if (v == nullptr || !v->is_number()) {
        throw std::invalid_argument("schema: " + where + '.' + key +
                                    " must be a number");
      }
    }
    if (phase != "M") {
      const json::Value* ts = event.find("ts");
      if (ts == nullptr || !ts->is_number()) {
        throw std::invalid_argument("schema: " + where +
                                    ".ts must be a number");
      }
    }
    if (phase == "X") {
      const json::Value* dur = event.find("dur");
      if (dur == nullptr || !dur->is_number()) {
        throw std::invalid_argument("schema: " + where +
                                    ".dur must be a number");
      }
    }
    if (phase == "i") {
      const json::Value* scope = event.find("s");
      if (scope == nullptr || !scope->is_string()) {
        throw std::invalid_argument("schema: " + where +
                                    ".s must be a string");
      }
    }
    const json::Value* args = event.find("args");
    if (args == nullptr || !args->is_object()) {
      throw std::invalid_argument("schema: " + where +
                                  ".args must be an object");
    }
  }
}

}  // namespace adapt::obs
