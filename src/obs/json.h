// Minimal JSON support for the observability exporters and their schema
// validators: a strict recursive-descent parser (objects, arrays, strings
// with escapes, numbers, booleans, null — no extensions) plus the string
// escaping helper the hand-rolled writers share. Dependency-free on purpose:
// the container image carries no JSON library and the schemas involved are
// tiny.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace adapt::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Accessors throw std::invalid_argument on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;
  const std::map<std::string, Value>& members() const;

  /// Object member lookup; nullptr when absent (throws if not an object).
  const Value* find(std::string_view key) const;

  // Construction is done by the parser.
  friend class Parser;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses exactly one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws std::invalid_argument with a byte offset.
/// Container nesting is bounded (96 levels) so hostile input cannot drive
/// the recursive descent into a stack overflow.
Value parse(std::string_view text);

/// Returns `s` quoted and escaped as a JSON string literal.
std::string quote(std::string_view s);

/// Appends a JSON-legal rendering of `v`: a finite number, or `null` for
/// NaN / infinity (JSON has no encoding for them).
void append_number(std::string& out, double v);

}  // namespace adapt::obs::json
