// Live runtime snapshot: a seqlock-published view of the concurrent write
// path that a monitoring thread can read WITHOUT ever blocking a writer.
//
// Batch leaders call publish() with their BatchSample (group_commit's
// set_batch_hook), the serial sim path calls publish_progress() through
// LiveStatsObserver; both sides touch only std::atomic fields, so readers
// and writers are race-free by construction (TSan-clean) and a stalled or
// absent reader costs writers nothing.
//
// The snapshot protocol is the fence-free seqlock variant (Boehm, "Can
// seqlocks get along with programming language memory models?", §4 —
// GCC's TSan rejects atomic_thread_fence, so the fenced form is not an
// option here): the writer bumps `seq_` to odd, mutates the payload with
// RELEASE ops (each release store orders the odd bump before the new
// value), then release-stores `seq_` back to even; the reader
// acquire-loads `seq_`, ACQUIRE-loads the payload (later loads cannot
// hoist above them), and re-reads `seq_` — a torn read (odd or changed
// seq) is retried. Torn snapshots are therefore impossible; every
// RuntimeSnapshot is a state some writer actually published.
//
// Writers serialise on a Mutex (publication is batch-granular — far off the
// per-op hot path), so payload mutation needs no RMW beyond fetch_add.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/sync.h"
#include "lss/engine.h"
#include "lss/op_timeline.h"

namespace adapt::obs {

/// One coherent view of cumulative runtime progress. Phase sums cover only
/// ops published with a full BatchSample; progress published through
/// publish_progress() advances ops/blocks alone.
struct RuntimeSnapshot {
  std::uint64_t batches = 0;
  std::uint64_t ops = 0;
  std::uint64_t blocks = 0;
  std::uint64_t intake_wait_us = 0;     ///< cumulative phase sums (virtual us)
  std::uint64_t batch_apply_us = 0;
  std::uint64_t lane_queue_us = 0;
  std::uint64_t device_service_us = 0;
  Log2Histogram total_us;               ///< submit->durable distribution

  double p99_us() const {
    return total_us.empty() ? 0.0 : total_us.percentile(99.0);
  }
};

class RuntimeStats {
 public:
  RuntimeStats() = default;
  RuntimeStats(const RuntimeStats&) = delete;
  RuntimeStats& operator=(const RuntimeStats&) = delete;

  /// Accumulates one committed batch (thread-safe; called by batch leaders
  /// concurrently). Matches group_commit's batch-hook signature.
  void publish(const lss::BatchSample& sample);

  /// Accumulates bare progress (ops/blocks only) for producers without
  /// phase data — the serial sim path via LiveStatsObserver.
  void publish_progress(std::uint64_t ops, std::uint64_t blocks);

  /// Lock-free consistent read; retries while a writer is mid-publish.
  /// Safe from any thread, any number of concurrent readers.
  RuntimeSnapshot snapshot() const;

 private:
  void begin_write() noexcept;
  void end_write() noexcept;

  /// Writer-side serialisation only; readers never touch it.
  Mutex write_mu_;
  std::atomic<std::uint64_t> seq_{0};

  // Payload: every field atomic so reader loads are race-free; coherence
  // across fields comes from the seqlock protocol, not from the atomics.
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> blocks_{0};
  std::atomic<std::uint64_t> intake_us_{0};
  std::atomic<std::uint64_t> apply_us_{0};
  std::atomic<std::uint64_t> queue_us_{0};
  std::atomic<std::uint64_t> service_us_{0};
  std::atomic<std::uint64_t> total_count_{0};
  std::atomic<std::uint64_t> total_sum_{0};
  std::atomic<std::uint64_t> total_max_{0};
  std::array<std::atomic<std::uint64_t>, Log2Histogram::kBuckets>
      total_buckets_{};
};

/// EngineObserver adapter for the serial sim path: counts user blocks and
/// publishes them into a RuntimeStats every `stride` blocks (publication
/// has seqlock cost, so per-block publishing would be wasteful). Forwards
/// every callback to an optional inner observer first, so it stacks on top
/// of the existing EngineSampler without a second observer slot.
class LiveStatsObserver final : public lss::EngineObserver {
 public:
  explicit LiveStatsObserver(RuntimeStats& stats,
                             lss::EngineObserver* inner = nullptr,
                             std::uint64_t stride = 256)
      : stats_(stats), inner_(inner), stride_(stride == 0 ? 1 : stride) {}

  void on_user_block(const lss::LssEngine& engine, TimeUs now_us) override {
    if (inner_ != nullptr) inner_->on_user_block(engine, now_us);
    if (++pending_ >= stride_) flush();
  }

  /// Publishes any sub-stride remainder (call after the end-of-run drain).
  void flush() {
    if (pending_ == 0) return;
    stats_.publish_progress(pending_, pending_);
    pending_ = 0;
  }

 private:
  RuntimeStats& stats_;
  lss::EngineObserver* inner_;
  std::uint64_t stride_;
  std::uint64_t pending_ = 0;
};

/// Renders one periodic live-stats line from two snapshots `interval_s`
/// apart. Pure function of its inputs (deterministic, unit-testable):
///   live: ops=N (+dN) blocks=M thpt=R ops/s p99=Pus
///         phase% intake=A apply=B queue=C service=D
/// The phase%% tail is omitted while no phase data has been published.
std::string format_live_line(const RuntimeSnapshot& prev,
                             const RuntimeSnapshot& cur, double interval_s);

}  // namespace adapt::obs
