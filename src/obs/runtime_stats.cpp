#include "obs/runtime_stats.h"

#include <cstdio>

namespace adapt::obs {

void RuntimeStats::begin_write() noexcept {
  // Writer holds write_mu_, so the relaxed read-modify-write of seq_ is
  // single-threaded. Fence-free protocol: ordering of this odd bump before
  // the payload mutations comes from the payload stores being RELEASE —
  // each one carries the bump with it for any reader that acquires it.
  const std::uint64_t s0 = seq_.load(std::memory_order_relaxed);
  seq_.store(s0 + 1, std::memory_order_relaxed);
}

void RuntimeStats::end_write() noexcept {
  const std::uint64_t s1 = seq_.load(std::memory_order_relaxed);
  seq_.store(s1 + 1, std::memory_order_release);
}

void RuntimeStats::publish(const lss::BatchSample& sample) {
  const Log2Histogram& total = sample.breakdown.total_us;
  LockGuard g(write_mu_);
  begin_write();
  batches_.fetch_add(1, std::memory_order_release);
  ops_.fetch_add(sample.ops, std::memory_order_release);
  blocks_.fetch_add(sample.blocks, std::memory_order_release);
  intake_us_.fetch_add(sample.breakdown.intake_wait_us.sum(),
                       std::memory_order_release);
  apply_us_.fetch_add(sample.breakdown.batch_apply_us.sum(),
                      std::memory_order_release);
  queue_us_.fetch_add(sample.breakdown.lane_queue_us.sum(),
                      std::memory_order_release);
  service_us_.fetch_add(sample.breakdown.device_service_us.sum(),
                        std::memory_order_release);
  total_count_.fetch_add(total.count(), std::memory_order_release);
  total_sum_.fetch_add(total.sum(), std::memory_order_release);
  if (total.max_value() > total_max_.load(std::memory_order_relaxed)) {
    total_max_.store(total.max_value(), std::memory_order_release);
  }
  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    const std::uint64_t n = total.bucket(b);
    if (n != 0) total_buckets_[b].fetch_add(n, std::memory_order_release);
  }
  end_write();
}

void RuntimeStats::publish_progress(std::uint64_t ops, std::uint64_t blocks) {
  LockGuard g(write_mu_);
  begin_write();
  ops_.fetch_add(ops, std::memory_order_release);
  blocks_.fetch_add(blocks, std::memory_order_release);
  end_write();
}

RuntimeSnapshot RuntimeStats::snapshot() const {
  for (;;) {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) {
      yield_now();
      continue;
    }
    RuntimeSnapshot out;
    // Acquire payload loads: the final seq_ re-read below cannot hoist
    // above them, and a load that observes a mid-write value synchronises
    // with its release store, making the writer's odd seq_ bump visible to
    // that re-read (fence-free seqlock — see runtime_stats.h).
    out.batches = batches_.load(std::memory_order_acquire);
    out.ops = ops_.load(std::memory_order_acquire);
    out.blocks = blocks_.load(std::memory_order_acquire);
    out.intake_wait_us = intake_us_.load(std::memory_order_acquire);
    out.batch_apply_us = apply_us_.load(std::memory_order_acquire);
    out.lane_queue_us = queue_us_.load(std::memory_order_acquire);
    out.device_service_us = service_us_.load(std::memory_order_acquire);
    const std::uint64_t count = total_count_.load(std::memory_order_acquire);
    const std::uint64_t sum = total_sum_.load(std::memory_order_acquire);
    const std::uint64_t max = total_max_.load(std::memory_order_acquire);
    std::array<std::uint64_t, Log2Histogram::kBuckets> buckets;
    for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
      buckets[b] = total_buckets_[b].load(std::memory_order_acquire);
    }
    if (seq_.load(std::memory_order_relaxed) != s1) continue;
    out.total_us = Log2Histogram::from_parts(buckets, count, sum, max);
    return out;
  }
}

std::string format_live_line(const RuntimeSnapshot& prev,
                             const RuntimeSnapshot& cur, double interval_s) {
  const std::uint64_t d_ops = cur.ops - prev.ops;
  const std::uint64_t d_blocks = cur.blocks - prev.blocks;
  const double rate =
      interval_s > 0.0 ? static_cast<double>(d_ops) / interval_s : 0.0;
  const std::uint64_t d_intake = cur.intake_wait_us - prev.intake_wait_us;
  const std::uint64_t d_apply = cur.batch_apply_us - prev.batch_apply_us;
  const std::uint64_t d_queue = cur.lane_queue_us - prev.lane_queue_us;
  const std::uint64_t d_service =
      cur.device_service_us - prev.device_service_us;
  const std::uint64_t phase_total = d_intake + d_apply + d_queue + d_service;
  char buf[256];
  if (phase_total > 0) {
    const double pt = static_cast<double>(phase_total);
    std::snprintf(
        buf, sizeof buf,
        "live: ops=%llu (+%llu) blocks=%llu thpt=%.1f ops/s p99=%.1fus "
        "phase%% intake=%.1f apply=%.1f queue=%.1f service=%.1f",
        static_cast<unsigned long long>(cur.ops),
        static_cast<unsigned long long>(d_ops),
        static_cast<unsigned long long>(cur.blocks), rate, cur.p99_us(),
        100.0 * static_cast<double>(d_intake) / pt,
        100.0 * static_cast<double>(d_apply) / pt,
        100.0 * static_cast<double>(d_queue) / pt,
        100.0 * static_cast<double>(d_service) / pt);
  } else {
    std::snprintf(buf, sizeof buf,
                  "live: ops=%llu (+%llu) blocks=%llu (+%llu) thpt=%.1f ops/s",
                  static_cast<unsigned long long>(cur.ops),
                  static_cast<unsigned long long>(d_ops),
                  static_cast<unsigned long long>(cur.blocks),
                  static_cast<unsigned long long>(d_blocks), rate);
  }
  return std::string(buf);
}

}  // namespace adapt::obs
