// Machine-readable exporters for the observability layer:
//
//   * JSONL series dump — one header line plus one JSON object per sample,
//     with windowed WA / padding ratio / GC rate / shadow-append rate
//     derived from consecutive cumulative rows;
//   * CSV series dump — flat scalar columns for gnuplot;
//   * run manifest — config, seed, wall clock, records/s, peak RSS and the
//     merged counter registry, attached to every VolumeResult/CellResult;
//   * BenchReport — the schema-stable `BENCH_<name>.json` emitter every
//     figure bench feeds the perf trajectory through.
//
// Each artifact has a validator that throws std::invalid_argument with a
// reason on schema violations; `tools/check_bench_json` wraps them as a CLI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "lss/device_lanes.h"
#include "lss/op_timeline.h"
#include "obs/provenance.h"
#include "obs/registry.h"
#include "obs/series.h"

namespace adapt::obs {

inline constexpr std::string_view kSeriesSchema = "adapt-series-v1";
inline constexpr std::string_view kManifestSchema = "adapt-manifest-v1";
inline constexpr std::string_view kBenchSchema = "adapt-bench-v1";

/// Provenance + cost summary of one simulation run (or an aggregate over a
/// cell's runs).
struct RunManifest {
  std::string tool = "simulator";
  std::string policy;
  std::string victim;
  std::string workload;  ///< profile / trace name; set by the driver
  std::uint64_t volume_id = 0;
  std::uint64_t seed = 0;
  std::uint64_t records = 0;
  std::uint64_t user_blocks = 0;
  double wall_seconds = 0.0;  ///< worker wall clock (summed for aggregates)
  double records_per_sec = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  // Geometry.
  std::uint32_t chunk_blocks = 0;
  std::uint32_t segment_chunks = 0;
  std::uint64_t logical_blocks = 0;
  double over_provision = 0.0;
  /// Merged counter registry (per-engine instances summed at collection).
  Registry counters;
  /// Per-group write-provenance matrix; validate_manifest_json checks it
  /// against the write-accounting identity.
  ManifestProvenance provenance;
  /// Deterministic block-lifetime distribution (vtime units).
  Log2Histogram block_lifetime;
  /// Host-clock GC pause distribution (microseconds). Nondeterministic:
  /// reported, but skipped by the adapt_compare gate.
  Log2Histogram gc_pause_us;
  /// Host-clock per-op submit→durable latency (nanoseconds), filled by the
  /// prototype's concurrent front-end. Optional in the schema: emitted only
  /// when non-empty (simulator manifests have no op latency), validated when
  /// present, and — being host timing — skipped by the adapt_compare gate.
  Log2Histogram latency_ns;
  /// Device-lane submission/completion stats (lss::DeviceLanes), filled by
  /// the prototype. Optional in the schema like latency_ns: emitted only
  /// when non-empty, validated when present. Queue occupancy depends on
  /// thread interleaving, so the block is informational — adapt_compare
  /// compares only the fields it names and never this one.
  lss::DeviceLanesStats lanes;
  /// Phase-attributed op latency (virtual-time microseconds) from the
  /// concurrent write path (ConcurrentEngine::latency_breakdown). Optional
  /// like lanes: emitted only when non-empty. When present the validator
  /// enforces the additivity identity — every phase histogram has the same
  /// count as total, and the four phase sums add up to total's sum exactly
  /// (see lss/op_timeline.h).
  lss::LatencyBreakdown latency_breakdown;
  /// Trace capture summary: recorded/dropped event counts per run plus the
  /// per-shard drop split. Optional: emitted when a trace was captured
  /// (trace_present), even if it dropped nothing. The validator requires
  /// per_shard_dropped to sum to dropped.
  bool trace_present = false;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<std::uint64_t> trace_per_shard_dropped;
};

/// Peak resident set of this process in bytes (getrusage; 0 if unknown).
std::uint64_t current_peak_rss_bytes();

/// Registers the engine's global counters into `r` (names `lss.*`).
void register_lss_metrics(Registry& r, const lss::LssMetrics& m);

std::string manifest_json(const RunManifest& manifest);

void write_series_jsonl(std::ostream& out, const TimeSeries& series);
void write_series_csv(std::ostream& out, const TimeSeries& series);

/// Validators: throw std::invalid_argument on malformed or schema-violating
/// input. validate_series_jsonl returns the number of sample rows.
void validate_manifest_json(std::string_view text);
std::size_t validate_series_jsonl(std::string_view text);
void validate_bench_json(std::string_view text);

/// Schema-stable bench result emitter. Every figure bench creates one,
/// `add()`s its headline series as (metric, params, value, unit) rows and
/// `write_file()`s a `BENCH_<name>.json` into the working directory, seeding
/// the cross-PR perf trajectory.
class BenchReport {
 public:
  using Params = std::vector<std::pair<std::string, std::string>>;

  explicit BenchReport(std::string name);

  void add(std::string_view metric, Params params, double value,
           std::string_view unit);

  std::string json() const;

  /// Writes `<dir>/BENCH_<name>.json`; returns the path.
  std::string write_file(const std::string& dir = ".") const;

  const std::string& name() const noexcept { return name_; }
  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::string metric;
    Params params;
    double value;
    std::string unit;
  };

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace adapt::obs
