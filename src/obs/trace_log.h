// TraceLog: the concrete event ring behind lss::TraceSink, plus the
// Chrome-trace exporter.
//
// One TraceLog per engine shard (sinks are not synchronised — exactly like
// Registry/LssMetrics, per-shard instances merge after the parallel replay).
// The ring holds the newest `capacity` events; older ones are overwritten
// and counted as dropped, so tracing a long run costs fixed memory. Events
// carry only the engine's deterministic clocks (vtime + simulated wall
// time), which makes the exported JSON byte-identical across repeat runs of
// the same seed.
//
// Export format: Chrome trace-event JSON ("adapt-trace-v1"), loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. pid 0 is the store; each
// shard renders as one named thread; instants carry their payload in args;
// GC runs render as complete ("X") spans whose duration is the migrated
// block count — a deliberate pseudo-duration in vtime units, chosen so
// victim quality is visible at a glance on the timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lss/trace_sink.h"

namespace adapt::obs {

inline constexpr std::string_view kTraceSchema = "adapt-trace-v1";

struct TraceLogConfig {
  /// Events retained per shard; older events are overwritten (dropped).
  std::size_t capacity = std::size_t{1} << 16;
};

class TraceLog final : public lss::TraceSink {
 public:
  explicit TraceLog(const TraceLogConfig& config = {});

  void record(const lss::TraceEvent& event) override;

  /// Total record() calls, including overwritten events.
  std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events lost to ring overwrite.
  std::uint64_t dropped() const noexcept {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  /// Retained events, oldest first.
  std::vector<lss::TraceEvent> events() const;

 private:
  std::vector<lss::TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::uint64_t recorded_ = 0;
};

/// Merged, shard-annotated view of one run's trace.
struct TraceData {
  struct Entry {
    lss::TraceEvent event;
    std::uint32_t shard = 0;
    std::uint64_t seq = 0;  ///< per-shard record order (post-drop)
  };
  /// Sorted by (ts, shard, seq) — a deterministic global order.
  std::vector<Entry> entries;
  std::uint32_t shard_count = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  /// Ring-overwrite losses per shard (size == shard_count; 0 for shards
  /// without a sink). Summing this must reproduce `dropped` — the exporter
  /// emits both and the validator enforces the identity.
  std::vector<std::uint64_t> per_shard_dropped;
};

/// Merges per-shard rings into one deterministic timeline. Null shard
/// pointers are skipped (a shard without tracing contributes nothing).
TraceData merge_trace_logs(const std::vector<const TraceLog*>& shards);

/// Run identity stamped into the trace's otherData block.
struct TraceMeta {
  std::string tool = "simulator";
  std::string policy;
  std::string workload;
  std::uint64_t seed = 0;
};

/// Renders `data` as Chrome trace-event JSON (schema "adapt-trace-v1").
std::string chrome_trace_json(const TraceData& data, const TraceMeta& meta);

/// Throws std::invalid_argument unless `text` is a well-formed
/// adapt-trace-v1 document (schema tag, otherData, and per-event phase /
/// clock / args requirements).
void validate_trace_json(std::string_view text);

}  // namespace adapt::obs
