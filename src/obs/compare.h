// Run-comparison regression gate: diffs two adapt-manifest-v1 or
// adapt-bench-v1 artifacts with relative-tolerance gates.
//
// Deterministic metrics (counters, provenance cells, derived WA/padding
// ratio, bench values) are compared with a relative tolerance; identity
// fields (policy, victim, workload, seed, geometry, ...) must match
// exactly; host-dependent fields (wall_seconds, records_per_sec,
// peak_rss_bytes, the gc_pause_us histogram, and bench rows whose unit is
// a wall-clock rate or latency) are presence-checked at most, never
// value-gated — they vary run-to-run and would make the gate flaky.
// tools/adapt_compare wraps this as the CI gate over committed baselines.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace adapt::obs {

struct CompareOptions {
  /// Maximum relative delta |a-b| / max(1, |a|, |b|) for tolerance rows.
  double tolerance = 0.01;
};

struct CompareRow {
  std::string key;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_delta = 0.0;
  bool within = true;
};

struct CompareReport {
  /// One row per compared metric (exact fields only appear on mismatch,
  /// as errors).
  std::vector<CompareRow> rows;
  /// Structural problems and exact-field mismatches.
  std::vector<std::string> errors;

  bool ok() const {
    if (!errors.empty()) return false;
    for (const CompareRow& row : rows) {
      if (!row.within) return false;
    }
    return true;
  }
  std::size_t violations() const {
    std::size_t n = errors.size();
    for (const CompareRow& row : rows) {
      if (!row.within) ++n;
    }
    return n;
  }
};

/// Compares two artifacts of the same kind (auto-detected from their
/// "schema" tag: adapt-manifest-v1 or adapt-bench-v1). Throws
/// std::invalid_argument when either document is malformed or the kinds
/// disagree.
CompareReport compare_artifacts(std::string_view baseline,
                                std::string_view candidate,
                                const CompareOptions& options = {});

/// Human-readable rendering of the report (one line per row/error).
std::string format_report(const CompareReport& report,
                          const CompareOptions& options);

}  // namespace adapt::obs
