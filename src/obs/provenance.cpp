#include "obs/provenance.h"

#include <stdexcept>

#include "obs/json.h"

namespace adapt::obs {

namespace {

void grow_merge(std::vector<std::uint64_t>& into,
                const std::vector<std::uint64_t>& from) {
  if (into.size() < from.size()) into.resize(from.size());
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  out += json::quote(key);
  out += ':';
  out += std::to_string(v);
}

std::uint64_t field_u64(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    throw std::invalid_argument("schema: provenance key \"" +
                                std::string(key) + "\" must be a number");
  }
  return static_cast<std::uint64_t>(v->as_number());
}

}  // namespace

void ProvenanceRow::merge_from(const ProvenanceRow& other) {
  user_blocks += other.user_blocks;
  gc_blocks += other.gc_blocks;
  shadow_blocks += other.shadow_blocks;
  padding_blocks += other.padding_blocks;
  rmw_blocks += other.rmw_blocks;
  full_flushes += other.full_flushes;
  padded_flushes += other.padded_flushes;
  rmw_flushes += other.rmw_flushes;
  grow_merge(gc_from, other.gc_from);
}

void ManifestProvenance::merge_from(const ManifestProvenance& other) {
  if (groups.size() < other.groups.size()) {
    groups.resize(other.groups.size());
  }
  for (std::size_t g = 0; g < other.groups.size(); ++g) {
    groups[g].merge_from(other.groups[g]);
  }
  pending_blocks += other.pending_blocks;
}

ManifestProvenance provenance_of(const lss::LssMetrics& metrics,
                                 std::uint64_t pending_blocks) {
  ManifestProvenance p;
  p.pending_blocks = pending_blocks;
  p.groups.resize(metrics.groups.size());
  for (std::size_t g = 0; g < metrics.groups.size(); ++g) {
    const lss::GroupTraffic& gt = metrics.groups[g];
    ProvenanceRow& row = p.groups[g];
    row.user_blocks = gt.user_blocks;
    row.gc_blocks = gt.gc_blocks;
    row.shadow_blocks = gt.shadow_blocks;
    row.padding_blocks = gt.padding_blocks;
    row.rmw_blocks = gt.rmw_blocks;
    row.full_flushes = gt.full_flushes;
    row.padded_flushes = gt.padded_flushes;
    row.rmw_flushes = gt.rmw_flushes;
    row.gc_from = gt.gc_from;
    row.gc_from.resize(metrics.groups.size());
  }
  return p;
}

void append_provenance_json(std::string& out, const char* key,
                            const ManifestProvenance& provenance) {
  out += json::quote(key);
  out += ":{";
  append_u64(out, "pending_blocks", provenance.pending_blocks);
  out += ',';
  out += json::quote("groups");
  out += ":[";
  for (std::size_t g = 0; g < provenance.groups.size(); ++g) {
    if (g != 0) out += ',';
    const ProvenanceRow& row = provenance.groups[g];
    out += '{';
    append_u64(out, "group", g);
    out += ',';
    append_u64(out, "user", row.user_blocks);
    out += ',';
    append_u64(out, "gc", row.gc_blocks);
    out += ',';
    append_u64(out, "shadow", row.shadow_blocks);
    out += ',';
    append_u64(out, "padding", row.padding_blocks);
    out += ',';
    append_u64(out, "rmw", row.rmw_blocks);
    out += ',';
    append_u64(out, "full_flushes", row.full_flushes);
    out += ',';
    append_u64(out, "padded_flushes", row.padded_flushes);
    out += ',';
    append_u64(out, "rmw_flushes", row.rmw_flushes);
    out += ',';
    out += json::quote("gc_from");
    out += ":[";
    for (std::size_t s = 0; s < row.gc_from.size(); ++s) {
      if (s != 0) out += ',';
      out += std::to_string(row.gc_from[s]);
    }
    out += "]}";
  }
  out += "]}";
}

void append_histogram_json(std::string& out, const char* key,
                           const Log2Histogram& histogram) {
  out += json::quote(key);
  out += ":{";
  append_u64(out, "count", histogram.count());
  out += ',';
  append_u64(out, "sum", histogram.sum());
  out += ',';
  append_u64(out, "max", histogram.max_value());
  out += ',';
  out += json::quote("buckets");
  out += ":[";
  bool first = true;
  for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b) {
    if (histogram.bucket(b) == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '{';
    append_u64(out, "b", b);
    out += ',';
    append_u64(out, "floor", Log2Histogram::bucket_floor(b));
    out += ',';
    append_u64(out, "count", histogram.bucket(b));
    out += '}';
  }
  out += "]}";
}

void validate_provenance_json(const json::Value& provenance,
                              std::uint64_t chunk_blocks) {
  if (!provenance.is_object()) {
    throw std::invalid_argument("schema: provenance must be an object");
  }
  const std::uint64_t pending = field_u64(provenance, "pending_blocks");
  const json::Value* groups = provenance.find("groups");
  if (groups == nullptr || !groups->is_array()) {
    throw std::invalid_argument(
        "schema: provenance.groups must be an array");
  }
  std::uint64_t appended = 0;
  std::uint64_t chunks_flushed = 0;
  std::uint64_t rmw_blocks = 0;
  for (const json::Value& row : groups->items()) {
    if (!row.is_object()) {
      throw std::invalid_argument(
          "schema: provenance group must be an object");
    }
    const std::uint64_t gc = field_u64(row, "gc");
    appended += field_u64(row, "user") + gc + field_u64(row, "shadow") +
                field_u64(row, "padding");
    rmw_blocks += field_u64(row, "rmw");
    chunks_flushed +=
        field_u64(row, "full_flushes") + field_u64(row, "padded_flushes");
    (void)field_u64(row, "rmw_flushes");
    (void)field_u64(row, "group");
    const json::Value* gc_from = row.find("gc_from");
    if (gc_from == nullptr || !gc_from->is_array()) {
      throw std::invalid_argument("schema: gc_from must be an array");
    }
    std::uint64_t from_total = 0;
    for (const json::Value& n : gc_from->items()) {
      if (!n.is_number()) {
        throw std::invalid_argument(
            "schema: gc_from entries must be numbers");
      }
      from_total += static_cast<std::uint64_t>(n.as_number());
    }
    if (from_total != gc) {
      throw std::invalid_argument(
          "schema: sum(gc_from) != gc blocks — provenance rows must tile "
          "the group's GC traffic");
    }
  }
  // The PR-2 write-accounting identity, checked from the artifact alone.
  if (appended != chunk_blocks * chunks_flushed + rmw_blocks + pending) {
    throw std::invalid_argument(
        "schema: provenance breaks the write-accounting identity "
        "(user+gc+shadow+padding != chunk_blocks*chunks_flushed + "
        "rmw_blocks + pending)");
  }
}

void validate_histogram_json(const json::Value& histogram,
                             const std::string& name) {
  if (!histogram.is_object()) {
    throw std::invalid_argument("schema: " + name + " must be an object");
  }
  const std::uint64_t count = field_u64(histogram, "count");
  (void)field_u64(histogram, "sum");
  (void)field_u64(histogram, "max");
  const json::Value* buckets = histogram.find("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    throw std::invalid_argument("schema: " + name +
                                ".buckets must be an array");
  }
  std::uint64_t bucket_total = 0;
  for (const json::Value& b : buckets->items()) {
    if (!b.is_object()) {
      throw std::invalid_argument("schema: " + name +
                                  " bucket must be an object");
    }
    (void)field_u64(b, "b");
    (void)field_u64(b, "floor");
    bucket_total += field_u64(b, "count");
  }
  if (bucket_total != count) {
    throw std::invalid_argument("schema: " + name +
                                " bucket counts do not sum to count");
  }
}

}  // namespace adapt::obs
