// Per-physical-write provenance attribution for run manifests.
//
// Every block the engine appends is tagged with its cause — user payload,
// GC migration (attributed to the victim's source group), shadow copy,
// padding, or RMW persist — and rolled into one ProvenanceRow per
// destination group. The rows carry enough flush counts that the PR-2
// write-accounting identity
//
//   user + gc + shadow + padding ==
//       chunk_blocks * (full + padded flushes) + rmw_blocks + pending
//
// is checkable from the manifest alone; validate_manifest_json enforces it,
// together with the per-group tiling  sum(gc_from) == gc_blocks.
// Log2Histogram JSON helpers live here too: block-lifetime and GC-pause
// distributions ride in the same manifest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "lss/metrics.h"

namespace adapt::obs {

namespace json {
class Value;
}  // namespace json

/// Write provenance of one destination group, all counts in blocks.
struct ProvenanceRow {
  std::uint64_t user_blocks = 0;
  std::uint64_t gc_blocks = 0;
  std::uint64_t shadow_blocks = 0;
  std::uint64_t padding_blocks = 0;
  std::uint64_t rmw_blocks = 0;
  std::uint64_t full_flushes = 0;
  std::uint64_t padded_flushes = 0;
  std::uint64_t rmw_flushes = 0;
  /// gc_from[g] = migrated blocks whose victim belonged to group g; sized
  /// to the group count, sums to gc_blocks.
  std::vector<std::uint64_t> gc_from;

  void merge_from(const ProvenanceRow& other);
};

/// Per-group provenance matrix of one run (or a cell aggregate).
struct ManifestProvenance {
  std::vector<ProvenanceRow> groups;
  /// Blocks appended but not yet persisted when the manifest was taken
  /// (0 after an end-of-run drain); closes the accounting identity.
  std::uint64_t pending_blocks = 0;

  void merge_from(const ManifestProvenance& other);
};

/// Builds the provenance matrix from merged engine metrics. `pending_blocks`
/// is the caller-measured sum of open-chunk pending blocks across groups
/// and shards (sim::run_volume measures it after the final drain).
ManifestProvenance provenance_of(const lss::LssMetrics& metrics,
                                 std::uint64_t pending_blocks);

/// Appends `"<key>":{...}` rendering the provenance matrix (no braces
/// around the key added by the caller).
void append_provenance_json(std::string& out, const char* key,
                            const ManifestProvenance& provenance);

/// Appends `"<key>":{"count":..,"sum":..,"max":..,"buckets":[{"b":..,
/// "floor":..,"count":..},...]}` — nonzero buckets only.
void append_histogram_json(std::string& out, const char* key,
                           const Log2Histogram& histogram);

/// Validators for the fragments above (called by validate_manifest_json).
/// `chunk_blocks` feeds the write-accounting identity check; both throw
/// std::invalid_argument with a reason.
void validate_provenance_json(const json::Value& provenance,
                              std::uint64_t chunk_blocks);
void validate_histogram_json(const json::Value& histogram,
                             const std::string& name);

}  // namespace adapt::obs
