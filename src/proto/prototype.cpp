#include "proto/prototype.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "adapt/adapt_policy.h"
#include "common/annotations.h"
#include "common/histogram.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "lss/engine.h"
#include "obs/provenance.h"
#include "obs/runtime_stats.h"
#include "placement/factory.h"

namespace adapt::proto {
namespace {

using Clock = std::chrono::steady_clock;

/// Simulated microsecond clock fed to the engine (coalescing windows, GC
/// timestamps). Host latency and elapsed time are measured separately in
/// nanoseconds (monotonic_now_ns) — TimeUs truncation made sub-tick spans
/// collapse to zero, which is exactly the throughput bug safe_rate guards.
TimeUs wall_now_us(Clock::time_point start) {
  return static_cast<TimeUs>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

}  // namespace

double spans_elapsed_seconds(const std::vector<ClientSpan>& spans) {
  if (spans.empty()) return 0.0;
  std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t hi = 0;
  for (const ClientSpan& s : spans) {
    lo = std::min(lo, s.start_ns);
    hi = std::max(hi, s.end_ns);
  }
  if (hi <= lo) return 0.0;
  return static_cast<double>(hi - lo) * 1e-9;
}

double safe_rate(double amount, double elapsed_seconds) {
  if (!(elapsed_seconds > 0.0)) return 0.0;
  const double rate = amount / elapsed_seconds;
  return std::isfinite(rate) ? rate : 0.0;
}

std::uint32_t resolve_shards(const PrototypeConfig& config) {
  if (config.shards != 0) return config.shards;
  // Auto: one shard per client up to 8, but never shrink a shard below the
  // 2^15-block floor the simulator applies — tiny working sets would fail
  // LssConfig::validate (op segments must cover the GC watermark).
  const std::uint64_t ws = config.workload.working_set_blocks;
  const std::uint64_t floor_cap = std::max<std::uint64_t>(1, ws >> 15);
  const std::uint64_t want =
      std::min<std::uint64_t>(std::max<std::uint32_t>(config.num_clients, 1),
                              8);
  return static_cast<std::uint32_t>(std::min(want, floor_cap));
}

lss::ShardFactory make_prototype_shard_factory(
    const PrototypeConfig& config) {
  const std::string policy_name = config.policy;
  const std::string victim_name = config.victim_policy;
  const double sample_rate = config.adapt_sample_rate;
  const std::uint64_t seed = config.seed;
  return [policy_name, victim_name, sample_rate, seed](
             std::uint32_t shard_index, const lss::LssConfig& shard_lss) {
    lss::ShardParts parts;
    if (policy_name == "adapt") {
      core::AdaptConfig ac;
      ac.logical_blocks = shard_lss.logical_blocks;
      ac.segment_blocks = shard_lss.segment_blocks();
      ac.chunk_blocks = shard_lss.chunk_blocks;
      ac.over_provision = shard_lss.over_provision;
      ac.sample_rate = sample_rate;
      auto p = core::make_adapt_policy(ac);
      parts.hook = p.get();
      parts.policy = std::move(p);
    } else {
      placement::PolicyConfig pc;
      pc.logical_blocks = shard_lss.logical_blocks;
      pc.segment_blocks = shard_lss.segment_blocks();
      pc.seed = seed + shard_index;
      parts.policy = placement::make_baseline_policy(policy_name, pc);
    }
    parts.victim = lss::make_victim_policy(victim_name);
    return parts;
  };
}

PrototypeResult run_prototype(const PrototypeConfig& config) {
  lss::LssConfig lss_config = config.lss;
  lss_config.logical_blocks = config.workload.working_set_blocks;

  const bool big_lock = config.front_end == FrontEnd::kBigLockOracle;
  const std::uint32_t shards = big_lock ? 1 : resolve_shards(config);
  const lss::ShardFactory factory = make_prototype_shard_factory(config);

  // Device model: lss::DeviceLanes — one submission/completion queue per
  // modeled SSD, each serving at its share of the aggregate bandwidth with
  // an io_depth-bounded queue. Flush records are submitted round-robin
  // across the lanes (byte-accurate: RMW flushes charge their sub-chunk
  // payload, chunk flushes a full chunk) and the thread that owes the
  // durability sleeps until the modeled completion, so aggregate write
  // throughput is capped at the configured array bandwidth no matter how
  // many threads submit.
  const std::uint64_t chunk_bytes =
      std::uint64_t{lss_config.chunk_blocks} * lss_config.block_bytes;
  lss::DeviceLanesConfig lanes_config;
  lanes_config.lanes = std::max<std::uint32_t>(config.device_lanes, 1);
  lanes_config.queue_depth = std::max<std::uint32_t>(config.io_depth, 1);
  lanes_config.chunk_bytes = chunk_bytes;
  lanes_config.lane_bandwidth_mb_per_s =
      config.array_bandwidth_mb_per_s / lanes_config.lanes;
  lss::DeviceLanes lanes(lanes_config);
  std::atomic<std::uint32_t> lane_rotor{0};

  const auto start = Clock::now();

  // Submits one drained flush batch to the lanes and returns the modeled
  // FlushOutcome of its last-completing record (durable time + that
  // record's pure service time, which the phase breakdown uses to split
  // lane queueing from media time). Thread-safe (atomic rotor + per-lane
  // locks inside DeviceLanes); the shard index is deliberately unused —
  // the lanes are one global resource shared by every shard, like the
  // physical array. Each record's causal-flow id rides into the lane's
  // trace events, correlating batch -> flush -> lane in the trace.
  auto submit_flushes =
      [&](std::uint32_t /*shard*/,
          const std::vector<lss::PendingFlush>& flushes) -> lss::FlushOutcome {
    const TimeUs now = wall_now_us(start);
    lss::FlushOutcome out;
    for (const lss::PendingFlush& f : flushes) {
      const std::uint64_t bytes =
          f.rmw ? std::uint64_t{f.blocks} * lss_config.block_bytes
                : chunk_bytes;
      const std::uint32_t lane =
          lane_rotor.fetch_add(1, std::memory_order_relaxed) %
          lanes_config.lanes;
      const lss::LaneCompletion c = lanes.submit(lane, bytes, now, f.id);
      if (c.complete_us >= out.durable_us) {
        out.durable_us = c.complete_us;
        out.service_us = c.service_us;
      }
    }
    return out;
  };

  auto wait_until = [&](TimeUs deadline) {
    const TimeUs now = wall_now_us(start);
    if (deadline > now) sleep_for_us(deadline - now);
  };

  // Per-thread capture: fixed-memory latency histograms (ns) and activity
  // spans. The old design pushed every sample into a vector and divided by
  // one truncated wall clock; both satellites land here.
  std::vector<Log2Histogram> client_latency(config.num_clients);
  std::vector<ClientSpan> spans(config.num_clients);
  std::atomic<bool> done{false};
  // GC wake-up: clients bump after every write (new garbage may have
  // crossed the watermark) and once more at shutdown; an idle GC task
  // parks on the signal instead of burning a 50 us poll loop. The timeout
  // is a safety net for missed transitions, not the scheduling mechanism.
  WorkSignal gc_signal;
  constexpr std::uint64_t kGcIdleWaitUs = 1000;

  // Runs all client threads against `write_op` (blocking submit→durable)
  // and joins them. write_op must be thread-safe.
  const auto run_clients =
      [&](const std::function<void(Lba, std::uint32_t, TimeUs)>& write_op) {
        auto client_fn = [&](std::uint32_t client_id) {
          trace::YcsbConfig wc = config.workload;
          wc.seed = config.seed * 7919 + client_id;
          trace::YcsbGenerator gen(wc);
          Log2Histogram& latency = client_latency[client_id];
          spans[client_id].start_ns = monotonic_now_ns();
          std::uint64_t written = 0;
          // Think-time debt is paid in coarse slices: OS sleeps have
          // ~50 us granularity, so per-request 20 us sleeps would crater
          // throughput for the wrong reason.
          double think_debt_us = 0.0;
          while (written < config.writes_per_client) {
            const trace::Record r = gen.next();
            if (r.op != trace::OpType::kWrite) continue;
            const TimeUs submit_us = wall_now_us(start);
            const std::uint64_t submit_ns = monotonic_now_ns();
            write_op(r.lba, r.blocks, submit_us);
            latency.add(monotonic_now_ns() - submit_ns);
            think_debt_us += config.client_think_us;
            if (think_debt_us >= 1000.0) {
              sleep_for_us(static_cast<std::uint64_t>(think_debt_us));
              think_debt_us = 0.0;
            }
            written += r.blocks;
          }
          spans[client_id].end_ns = monotonic_now_ns();
        };
        std::vector<Thread> clients;
        clients.reserve(config.num_clients);
        for (std::uint32_t i = 0; i < config.num_clients; ++i) {
          clients.emplace_back(client_fn, i);
        }
        for (auto& t : clients) t.join();
      };

  PrototypeResult result;
  result.policy = config.policy;
  result.num_clients = config.num_clients;
  result.shards = shards;
  std::uint64_t pending_blocks_total = 0;

  if (!big_lock) {
    // ---- the live path: lock-free MPSC group-commit over LBA shards ----
    lss::ConcurrentEngine engine(lss_config, shards, config.seed, factory,
                                 /*record_ops=*/false);
    // Apply/durable split: batch leaders submit their drained flushes to
    // the lanes and stamp the completion into every ticket; each op then
    // sleeps out its own share on its own thread.
    engine.set_device_model(submit_flushes,
                            [&](TimeUs durable_us) { wait_until(durable_us); });
    // Live runtime snapshot (ADAPT_LIVE_STATS=<seconds>): batch leaders
    // publish their BatchSample into a seqlock-readable RuntimeStats; a
    // poller thread prints periodic throughput/p99/phase lines to stderr
    // without ever blocking a writer.
    obs::RuntimeStats live_stats;
    std::atomic<bool> live_stop{false};
    Thread live_poller;
    double live_interval = 0.0;
    if (const char* env = std::getenv("ADAPT_LIVE_STATS");
        env != nullptr && *env != '\0') {
      live_interval = std::atof(env);
    }
    if (live_interval > 0.0) {
      engine.set_batch_hook(
          [&live_stats](const lss::BatchSample& s) { live_stats.publish(s); });
      live_poller = Thread([&live_stats, &live_stop, live_interval] {
        obs::RuntimeSnapshot prev;
        double slept = 0.0;
        while (!live_stop.load(std::memory_order_relaxed)) {
          // Sleep in 50 ms slices so shutdown never waits out a long
          // interval.
          sleep_for_us(50'000);
          slept += 0.05;
          if (slept + 1e-9 < live_interval) continue;
          slept = 0.0;
          const obs::RuntimeSnapshot cur = live_stats.snapshot();
          std::fprintf(stderr, "%s\n",
                       obs::format_live_line(prev, cur, live_interval).c_str());
          prev = cur;
        }
        // Final summary line so even sub-interval runs report once.
        const obs::RuntimeSnapshot cur = live_stats.snapshot();
        std::fprintf(stderr, "%s\n",
                     obs::format_live_line(prev, cur, live_interval).c_str());
      });
    }
    const std::uint32_t watermark =
        lss_config.free_segment_reserve +
        engine.shard_for_inspection(0).group_count() + 4;

    std::unique_ptr<ThreadPool> gc_pool;
    if (config.background_gc) {
      gc_pool = std::make_unique<ThreadPool>(shards);
      for (std::uint32_t i = 0; i < shards; ++i) {
        gc_pool->submit([&, i] {
          std::vector<lss::PendingFlush> flushes;
          while (!done.load(std::memory_order_relaxed)) {
            // Snapshot the signal BEFORE probing for work: a write that
            // lands between the probe and the park bumps the version, so
            // wait_change returns immediately instead of losing the wakeup.
            const std::uint64_t seen = gc_signal.version();
            const bool worked = engine.gc_step(i, wall_now_us(start),
                                               watermark, nullptr, &flushes);
            if (worked && !flushes.empty()) {
              wait_until(submit_flushes(i, flushes).durable_us);
            } else if (!worked) {
              gc_signal.wait_change(seen, kGcIdleWaitUs);
            }
          }
        });
      }
    }

    run_clients([&](Lba lba, std::uint32_t blocks, TimeUs submit_us) {
      engine.write(lba, blocks, submit_us);
      gc_signal.bump();
    });
    done.store(true, std::memory_order_relaxed);
    gc_signal.bump();
    if (gc_pool != nullptr) gc_pool->shutdown();
    live_stop.store(true, std::memory_order_relaxed);
    if (live_poller.joinable()) live_poller.join();

    result.metrics = engine.merged_metrics();
    result.group_commit = engine.merged_stats();
    result.breakdown = engine.latency_breakdown();
    result.policy_memory_bytes = engine.policy_memory_bytes();
    pending_blocks_total = engine.merged_pending_blocks();
    const lss::LssConfig& per_shard = engine.per_shard_config();
    result.engine_memory_bytes =
        shards * (per_shard.logical_blocks * sizeof(std::uint64_t) +
                  static_cast<std::size_t>(per_shard.total_segments()) *
                      per_shard.segment_blocks() * (sizeof(Lba) + 1));
  } else {
    // ---- the demoted big-lock oracle: every op convoys on one mutex ----
    lss::ShardParts parts = factory(0, lss_config);
    lss::LssEngine engine(lss_config, *parts.policy, *parts.victim, nullptr,
                          config.seed);
    if (parts.hook != nullptr) engine.set_aggregation_hook(parts.hook);

    struct GuardedEngine {
      explicit GuardedEngine(lss::LssEngine& e) : engine(&e) {}
      Mutex mu;
      lss::LssEngine* const engine ADAPT_PT_GUARDED_BY(mu);
      /// Flush records collected by the engine since the last drain
      /// (attached below); drained by whichever thread holds the lock.
      std::vector<lss::PendingFlush> flushes ADAPT_GUARDED_BY(mu);
    } shared(engine);
    {
      LockGuard lock(shared.mu);
      shared.engine->set_flush_collector(&shared.flushes);
    }

    const std::uint32_t watermark = lss_config.free_segment_reserve +
                                    parts.policy->group_count() + 4;
    std::unique_ptr<ThreadPool> gc_pool;
    if (config.background_gc) {
      // One GC task per client (the paper's setting), all contending the
      // same lock — part of what makes this the convoying baseline.
      gc_pool = std::make_unique<ThreadPool>(config.num_clients);
      for (std::uint32_t i = 0; i < config.num_clients; ++i) {
        gc_pool->submit([&] {
          std::vector<lss::PendingFlush> flushes;
          while (!done.load(std::memory_order_relaxed)) {
            const std::uint64_t seen = gc_signal.version();
            bool worked = false;
            flushes.clear();
            {
              LockGuard lock(shared.mu);
              worked =
                  shared.engine->gc_step(wall_now_us(start), watermark);
              flushes.swap(shared.flushes);
            }
            if (worked && !flushes.empty()) {
              wait_until(submit_flushes(0, flushes).durable_us);
            } else if (!worked) {
              gc_signal.wait_change(seen, kGcIdleWaitUs);
            }
          }
        });
      }
    }

    run_clients([&](Lba lba, std::uint32_t blocks, TimeUs submit_us) {
      std::vector<lss::PendingFlush> flushes;
      {
        LockGuard lock(shared.mu);
        shared.engine->write(lba, blocks, submit_us);
        flushes.swap(shared.flushes);
      }
      if (!flushes.empty()) wait_until(submit_flushes(0, flushes).durable_us);
      gc_signal.bump();
    });
    done.store(true, std::memory_order_relaxed);
    gc_signal.bump();
    if (gc_pool != nullptr) gc_pool->shutdown();

    result.metrics = engine.metrics();
    result.policy_memory_bytes = parts.policy->memory_usage_bytes();
    for (GroupId g = 0; g < engine.group_count(); ++g) {
      pending_blocks_total += engine.pending_blocks(g);
    }
    result.engine_memory_bytes =
        lss_config.logical_blocks * sizeof(std::uint64_t) +
        static_cast<std::size_t>(lss_config.total_segments()) *
            lss_config.segment_blocks() * (sizeof(Lba) + 1);
  }

  // ---- shared result assembly ----
  result.lanes = lanes.stats();
  result.elapsed_seconds = spans_elapsed_seconds(spans);
  result.user_blocks = result.metrics.user_blocks;
  const double user_bytes =
      static_cast<double>(result.user_blocks) * lss_config.block_bytes;
  result.throughput_mib_per_s =
      safe_rate(user_bytes / (1024.0 * 1024.0), result.elapsed_seconds);
  result.throughput_kops = safe_rate(
      static_cast<double>(result.user_blocks) / 1e3, result.elapsed_seconds);
  for (const Log2Histogram& h : client_latency) {
    result.latency_ns.merge_from(h);
  }
  if (!result.latency_ns.empty()) {
    result.latency_p50_us = result.latency_ns.percentile(50) / 1000.0;
    result.latency_p99_us = result.latency_ns.percentile(99) / 1000.0;
    result.latency_p999_us = result.latency_ns.percentile(99.9) / 1000.0;
  }

  obs::RunManifest& m = result.manifest;
  m.tool = "prototype";
  m.policy = config.policy;
  m.victim = config.victim_policy;
  m.workload = "ycsb";
  m.seed = config.seed;
  m.records = result.latency_ns.count();
  m.user_blocks = result.user_blocks;
  m.wall_seconds = result.elapsed_seconds;
  m.records_per_sec = safe_rate(static_cast<double>(m.records),
                                result.elapsed_seconds);
  m.peak_rss_bytes = obs::current_peak_rss_bytes();
  m.chunk_blocks = lss_config.chunk_blocks;
  m.segment_chunks = lss_config.segment_chunks;
  m.logical_blocks = lss_config.logical_blocks;
  m.over_provision = lss_config.over_provision;
  obs::register_lss_metrics(m.counters, result.metrics);
  *m.counters.slot("proto.clients") = config.num_clients;
  *m.counters.slot("proto.shards") = shards;
  *m.counters.slot("proto.commit_groups") = result.group_commit.groups;
  *m.counters.slot("proto.commit_ops") = result.group_commit.ops;
  *m.counters.slot("proto.commit_max_batch") = result.group_commit.max_batch;
  m.provenance = obs::provenance_of(result.metrics, pending_blocks_total);
  m.block_lifetime = result.metrics.block_lifetime;
  m.gc_pause_us = result.metrics.gc_pause_us;
  m.latency_ns = result.latency_ns;
  m.lanes = result.lanes;
  m.latency_breakdown = result.breakdown;
  return result;
}

}  // namespace adapt::proto
