#include "proto/prototype.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "adapt/adapt_policy.h"
#include "common/annotations.h"
#include "common/sync.h"
#include "common/histogram.h"
#include "lss/engine.h"
#include "placement/factory.h"

namespace adapt::proto {
namespace {

using Clock = std::chrono::steady_clock;

TimeUs wall_now_us(Clock::time_point start) {
  return static_cast<TimeUs>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

}  // namespace

PrototypeResult run_prototype(const PrototypeConfig& config) {
  lss::LssConfig lss_config = config.lss;
  lss_config.logical_blocks = config.workload.working_set_blocks;

  std::unique_ptr<lss::PlacementPolicy> policy;
  core::AdaptPolicy* adapt_policy = nullptr;
  if (config.policy == "adapt") {
    core::AdaptConfig ac;
    ac.logical_blocks = lss_config.logical_blocks;
    ac.segment_blocks = lss_config.segment_blocks();
    ac.chunk_blocks = lss_config.chunk_blocks;
    ac.over_provision = lss_config.over_provision;
    ac.sample_rate = config.adapt_sample_rate;
    auto p = core::make_adapt_policy(ac);
    adapt_policy = p.get();
    policy = std::move(p);
  } else {
    placement::PolicyConfig pc;
    pc.logical_blocks = lss_config.logical_blocks;
    pc.segment_blocks = lss_config.segment_blocks();
    pc.seed = config.seed;
    policy = placement::make_baseline_policy(config.policy, pc);
  }
  auto victim = lss::make_victim_policy(config.victim_policy);

  lss::LssEngine engine(lss_config, *policy, *victim, nullptr, config.seed);
  if (adapt_policy != nullptr) engine.set_aggregation_hook(adapt_policy);

  // The engine is shared by every client and GC thread; all access goes
  // through this capability-annotated handle (clang -Wthread-safety proves
  // no path dereferences `engine` without holding `mu`).
  struct GuardedEngine {
    explicit GuardedEngine(lss::LssEngine& e) : engine(&e) {}
    Mutex mu;
    lss::LssEngine* const engine ADAPT_PT_GUARDED_BY(mu);
  } shared(engine);
  std::atomic<bool> done{false};

  // Shared-bandwidth device model: every flushed chunk reserves its service
  // time on a single busy-until timeline, so aggregate write throughput is
  // capped at the configured array bandwidth no matter how many threads
  // submit. The submitting thread sleeps until its reservation completes
  // (blocking at chunk granularity; the I/O depth is amortised into the
  // aggregate bandwidth figure).
  const double chunk_bytes = static_cast<double>(lss_config.chunk_blocks) *
                             lss_config.block_bytes;
  const double chunk_service_us =
      chunk_bytes / (config.array_bandwidth_mb_per_s * 1e6) * 1e6;
  std::atomic<std::uint64_t> device_busy_until_us{0};

  const auto start = Clock::now();

  auto reserve_device = [&](std::uint64_t chunks) -> TimeUs {
    const auto service = static_cast<std::uint64_t>(
        static_cast<double>(chunks) * chunk_service_us + 0.5);
    const TimeUs now = wall_now_us(start);
    std::uint64_t prev = device_busy_until_us.load(std::memory_order_relaxed);
    for (;;) {
      const TimeUs begin = std::max<TimeUs>(now, prev);
      const TimeUs complete = begin + service;
      if (device_busy_until_us.compare_exchange_weak(
              prev, complete, std::memory_order_relaxed)) {
        return complete;
      }
    }
  };

  auto wait_until = [&](TimeUs deadline) {
    const TimeUs now = wall_now_us(start);
    if (deadline > now) {
      std::this_thread::sleep_for(std::chrono::microseconds(deadline - now));
    }
  };

  std::vector<std::vector<double>> client_latencies(config.num_clients);

  auto client_fn = [&](std::uint32_t client_id) {
    trace::YcsbConfig wc = config.workload;
    wc.seed = config.seed * 7919 + client_id;
    trace::YcsbGenerator gen(wc);
    auto& latencies = client_latencies[client_id];
    latencies.reserve(config.writes_per_client);
    std::uint64_t written = 0;
    // Think-time debt is paid in coarse slices: OS sleeps have ~50 us
    // granularity, so per-request 20 us sleeps would crater throughput for
    // the wrong reason.
    double think_debt_us = 0.0;
    while (written < config.writes_per_client) {
      const trace::Record r = gen.next();
      if (r.op != trace::OpType::kWrite) continue;
      const TimeUs submit_us = wall_now_us(start);
      std::uint64_t delta = 0;
      {
        LockGuard lock(shared.mu);
        const std::uint64_t chunks_before = shared.engine->chunks_flushed();
        shared.engine->write(r.lba, r.blocks, submit_us);
        delta = shared.engine->chunks_flushed() - chunks_before;
      }
      if (delta > 0) wait_until(reserve_device(delta));
      latencies.push_back(
          static_cast<double>(wall_now_us(start) - submit_us));
      think_debt_us += config.client_think_us;
      if (think_debt_us >= 1000.0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<std::int64_t>(think_debt_us)));
        think_debt_us = 0.0;
      }
      written += r.blocks;
    }
  };

  auto gc_fn = [&] {
    const std::uint32_t watermark =
        lss_config.free_segment_reserve + policy->group_count() + 4;
    while (!done.load(std::memory_order_relaxed)) {
      std::uint64_t delta = 0;
      bool worked = false;
      {
        LockGuard lock(shared.mu);
        const std::uint64_t chunks_before = shared.engine->chunks_flushed();
        worked = shared.engine->gc_step(wall_now_us(start), watermark);
        delta = shared.engine->chunks_flushed() - chunks_before;
      }
      if (worked && delta > 0) {
        wait_until(reserve_device(delta));
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  };

  std::vector<Thread> clients;
  std::vector<Thread> gc_threads;
  clients.reserve(config.num_clients);
  for (std::uint32_t i = 0; i < config.num_clients; ++i) {
    clients.emplace_back(client_fn, i);
  }
  if (config.background_gc) {
    gc_threads.reserve(config.num_clients);
    for (std::uint32_t i = 0; i < config.num_clients; ++i) {
      gc_threads.emplace_back(gc_fn);
    }
  }
  for (auto& t : clients) t.join();
  done.store(true, std::memory_order_relaxed);
  for (auto& t : gc_threads) t.join();

  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  PrototypeResult result;
  result.policy = config.policy;
  result.num_clients = config.num_clients;
  result.elapsed_seconds = elapsed;
  result.metrics = engine.metrics();
  result.user_blocks = result.metrics.user_blocks;
  const double user_bytes = static_cast<double>(result.user_blocks) *
                            lss_config.block_bytes;
  result.throughput_mib_per_s = user_bytes / (1024.0 * 1024.0) / elapsed;
  result.throughput_kops =
      static_cast<double>(result.user_blocks) / 1e3 / elapsed;
  Histogram latency;
  for (const auto& per_client : client_latencies) {
    for (double l : per_client) latency.add(l);
  }
  if (!latency.empty()) {
    result.latency_p50_us = latency.percentile(50);
    result.latency_p99_us = latency.percentile(99);
  }
  result.policy_memory_bytes = policy->memory_usage_bytes();
  // Engine metadata: block map (8 B/LBA) + per-slot lba array + valid bits.
  result.engine_memory_bytes =
      lss_config.logical_blocks * sizeof(std::uint64_t) +
      static_cast<std::size_t>(lss_config.total_segments()) *
          lss_config.segment_blocks() * (sizeof(Lba) + 1);
  return result;
}

}  // namespace adapt::proto
