// Log-structured storage prototype (paper §4.4).
//
// The paper's prototype runs on a real mdraid RAID-5 of four NVMe SSDs; we
// substitute lss::DeviceLanes: one submission/completion queue per modeled
// device, each serving at its share of the aggregate bandwidth with an
// io_depth-bounded queue. Flushes are SUBMITTED to a lane (virtual-time
// accounting, outside every engine lock) and the thread that owes the
// durability sleeps until the modeled completion. GC chunk traffic
// therefore steals real wall-clock bandwidth from clients exactly as on
// hardware, which is the effect behind Figure 12a: once the device
// saturates, the scheme with the lowest WA sustains the highest client
// throughput.
//
// Client threads replay independent YCSB-A streams against the live
// concurrent front-end (lss::ConcurrentEngine): per-shard lock-free MPSC
// group-commit intake where one client batches its followers' writes into
// a single engine pass. Background GC runs on a ThreadPool, one task per
// shard. The old single-mutex path survives as FrontEnd::kBigLockOracle —
// a test/bench-only contended baseline, no longer the product path.
//
// Per-op latency (submit -> durable) is captured in nanoseconds into
// fixed-memory Log2Histograms (one per client thread, merged at the end)
// and reported as p50/p99/p999 plus an adapt-manifest-v1 run manifest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "lss/config.h"
#include "lss/device_lanes.h"
#include "lss/group_commit.h"
#include "lss/metrics.h"
#include "obs/export.h"
#include "trace/synthetic.h"

namespace adapt::proto {

/// Which write path the clients run against.
enum class FrontEnd {
  /// Lock-free MPSC group-commit intake over LBA shards — the live path.
  kGroupCommit,
  /// One mutex around one engine: the big-lock prototype this PR replaced.
  /// Kept only as the contended baseline for the scaling bench and as a
  /// sanity oracle in tests; measures lock convoying, not the engine.
  kBigLockOracle,
};

struct PrototypeConfig {
  lss::LssConfig lss;
  std::string policy = "adapt";
  std::string victim_policy = "greedy";
  std::uint32_t num_clients = 4;
  /// Per-lane submission queue depth (the paper's io_depth=8 setting):
  /// DeviceLanesConfig::queue_depth. The old model amortised this into the
  /// bandwidth figure; now it bounds each lane's outstanding submissions.
  std::uint32_t io_depth = 8;
  /// Modeled devices (lanes), matching the paper's 4-SSD array. The
  /// aggregate bandwidth below is split evenly across them.
  std::uint32_t device_lanes = 4;
  std::uint64_t writes_per_client = 50'000;  ///< blocks written per client
  trace::YcsbConfig workload;          ///< per-client generator (seed+i)
  /// Aggregate array bandwidth to model. Scaled down from real hardware so
  /// that service times dominate simulation compute and the saturation
  /// effect is visible in short runs.
  double array_bandwidth_mb_per_s = 600.0;
  /// Per-request client-side cost (request handling, network). Keeps a
  /// single client below device saturation, as in the paper's Fig. 12a.
  double client_think_us = 20.0;
  bool background_gc = true;
  /// Spatial sampling rate handed to ADAPT (0 = auto). The paper's
  /// production setting is 0.001.
  double adapt_sample_rate = 0.0;
  std::uint64_t seed = 1;
  /// LBA shard count for the group-commit front-end. 0 = auto:
  /// min(num_clients, 8), capped so each shard keeps at least 2^15 logical
  /// blocks (the same per-shard floor the simulator applies). An explicit
  /// value is used as-is and may throw from LssConfig::validate when the
  /// per-shard geometry gets too small. Ignored by the big-lock oracle.
  std::uint32_t shards = 0;
  FrontEnd front_end = FrontEnd::kGroupCommit;
};

struct PrototypeResult {
  std::string policy;
  std::uint32_t num_clients = 0;
  std::uint32_t shards = 1;
  double elapsed_seconds = 0.0;  ///< client-span envelope (see ClientSpan)
  std::uint64_t user_blocks = 0;
  /// Client-visible write throughput; 0 when the run was too short for the
  /// host clock to resolve (never inf/NaN — see safe_rate).
  double throughput_mib_per_s = 0.0;
  double throughput_kops = 0.0;
  /// Client-visible request latency (submit -> durable or buffered), us.
  /// Estimated from latency_ns (factor-2 accurate, fixed memory).
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_p999_us = 0.0;
  /// Per-op submit->durable latency distribution, nanoseconds.
  Log2Histogram latency_ns;
  /// Group-commit batching counters (all zero under the big-lock oracle).
  lss::GroupCommitStats group_commit;
  /// Phase-attributed virtual-time latency from the group-commit path
  /// (empty under the big-lock oracle): intake wait, batch apply, lane
  /// queue, device service — exported into the manifest's
  /// latency_breakdown block with its additivity identity.
  lss::LatencyBreakdown breakdown;
  /// Device-lane snapshot: per-lane submit/stall/busy counters plus the
  /// merged queue-depth and submit→complete distributions (both front-ends
  /// drive the same DeviceLanes instance).
  lss::DeviceLanesStats lanes;
  lss::LssMetrics metrics;
  std::size_t policy_memory_bytes = 0;
  std::size_t engine_memory_bytes = 0;  ///< block map + segment metadata
  /// adapt-manifest-v1 provenance record (tool = "prototype"), carrying
  /// the merged lss.* counters, proto.* front-end counters, and the
  /// latency_ns histogram.
  obs::RunManifest manifest;
};

/// One client thread's host-clock activity window. The run's elapsed time
/// is the envelope over all clients, not one thread's wall clock.
struct ClientSpan {
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Envelope duration in seconds: max(end) - min(start) over the spans.
/// Returns 0 for an empty set or a degenerate (end <= start) envelope —
/// callers must treat 0 as "unmeasurable", never divide by it.
double spans_elapsed_seconds(const std::vector<ClientSpan>& spans);

/// Guarded rate: amount / elapsed, or 0 when elapsed <= 0. The big-lock
/// prototype divided by a single end-to-end wall clock truncated through
/// TimeUs, so a sub-tick run produced inf/garbage throughput; this is the
/// fix the regression tests in proto_test.cpp pin.
double safe_rate(double amount, double elapsed_seconds);

/// Resolved shard count for `config` (applies the auto rule above).
std::uint32_t resolve_shards(const PrototypeConfig& config);

/// Per-shard placement/victim stack builder used by run_prototype's
/// ConcurrentEngine — exposed so the differential oracle test can build
/// bit-identical serial engines from the same factory. `lss_config` must
/// be the prototype's effective global config (logical_blocks overridden
/// to the workload working set).
lss::ShardFactory make_prototype_shard_factory(const PrototypeConfig& config);

/// Runs the prototype to completion and reports measured throughput.
PrototypeResult run_prototype(const PrototypeConfig& config);

}  // namespace adapt::proto
