// Log-structured storage prototype (paper §4.4).
//
// The paper's prototype runs on a real mdraid RAID-5 of four NVMe SSDs; we
// substitute a bandwidth-modelled array: every chunk flushed costs its
// service time (chunk_bytes / array bandwidth, divided by the I/O depth to
// model asynchronous submission), slept for *outside* the engine lock by
// the thread that caused the flush. GC chunk traffic therefore steals real
// wall-clock bandwidth from clients exactly as on hardware, which is the
// effect behind Figure 12a: once the device saturates, the scheme with the
// lowest WA sustains the highest client throughput.
//
// Client threads replay independent YCSB-A streams; background GC threads
// (one per client, as in the paper) proactively reclaim segments.
#pragma once

#include <cstdint>
#include <string>

#include "lss/config.h"
#include "lss/metrics.h"
#include "trace/synthetic.h"

namespace adapt::proto {

struct PrototypeConfig {
  lss::LssConfig lss;
  std::string policy = "adapt";
  std::string victim_policy = "greedy";
  std::uint32_t num_clients = 4;
  std::uint32_t io_depth = 8;          ///< paper's setting
  std::uint64_t writes_per_client = 50'000;  ///< blocks written per client
  trace::YcsbConfig workload;          ///< per-client generator (seed+i)
  /// Aggregate array bandwidth to model. Scaled down from real hardware so
  /// that service times dominate simulation compute and the saturation
  /// effect is visible in short runs.
  double array_bandwidth_mb_per_s = 600.0;
  /// Per-request client-side cost (request handling, network). Keeps a
  /// single client below device saturation, as in the paper's Fig. 12a.
  double client_think_us = 20.0;
  bool background_gc = true;
  /// Spatial sampling rate handed to ADAPT (0 = auto). The paper's
  /// production setting is 0.001.
  double adapt_sample_rate = 0.0;
  std::uint64_t seed = 1;
};

struct PrototypeResult {
  std::string policy;
  std::uint32_t num_clients = 0;
  double elapsed_seconds = 0.0;
  std::uint64_t user_blocks = 0;
  /// Client-visible write throughput.
  double throughput_mib_per_s = 0.0;
  double throughput_kops = 0.0;
  /// Client-visible request latency (submit -> durable or buffered), us.
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  lss::LssMetrics metrics;
  std::size_t policy_memory_bytes = 0;
  std::size_t engine_memory_bytes = 0;  ///< block map + segment metadata
};

/// Runs the prototype to completion and reports measured throughput.
PrototypeResult run_prototype(const PrototypeConfig& config);

}  // namespace adapt::proto
