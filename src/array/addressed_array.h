// Address-mapped RAID-5 array backed by per-device FTLs.
//
// Unlike SsdArray (pure traffic accounting), this model gives the array a
// real logical address space: the LSS's physical space is a linear run of
// chunks; chunk index C belongs to stripe C / (n-1), lands on a data column
// with left-symmetric parity rotation, and every data-chunk write also
// rewrites the stripe's parity chunk in place (the small-write parity
// update). Because the LSS reuses segments after GC, the devices see
// overwrites — which is what makes device-internal write amplification and
// the stream-mapping claim (paper §3.1) measurable.
//
// Device logical layout: stripe s occupies device pages
// [s * chunk_pages, (s+1) * chunk_pages) on each device; the parity chunk
// lives in the same page range of the rotating parity device.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "flash/ftl.h"

namespace adapt::array {

struct AddressedArrayConfig {
  std::uint32_t num_devices = 4;
  std::uint32_t chunk_bytes = kDefaultChunkSize;
  std::uint32_t page_bytes = kDefaultBlockSize;
  std::uint32_t num_streams = 8;
  /// Total data capacity to export, in chunks (the LSS physical space).
  std::uint64_t data_chunks = 1024;
  /// Device-internal over-provision handed to each FTL.
  double device_over_provision = 0.10;
  /// Pass TRIMs from the host through to the devices.
  bool trim_enabled = true;
  /// Map host streams onto device streams (true) or funnel everything into
  /// a single device stream (false) — the paper's multi-stream ablation.
  bool multi_stream = true;
};

struct AddressedArrayStats {
  std::uint64_t data_chunk_writes = 0;
  std::uint64_t parity_chunk_writes = 0;
  std::uint64_t trims = 0;
};

class AddressedArray {
 public:
  explicit AddressedArray(const AddressedArrayConfig& config);

  const AddressedArrayConfig& config() const noexcept { return config_; }
  const AddressedArrayStats& stats() const noexcept { return stats_; }

  std::uint32_t chunk_pages() const noexcept {
    return config_.chunk_bytes / config_.page_bytes;
  }
  std::uint32_t data_columns() const noexcept {
    return config_.num_devices - 1;
  }

  /// Writes data chunk `chunk_index` (in the linear data space) on behalf
  /// of `stream`, plus the in-place parity update for its stripe.
  void write_chunk(std::uint64_t chunk_index, std::uint32_t stream);

  /// Sub-chunk (RMW) write: `pages` pages at `offset_pages` within the
  /// chunk, plus the in-place parity update.
  void write_partial(std::uint64_t chunk_index, std::uint32_t offset_pages,
                     std::uint32_t pages, std::uint32_t stream);

  /// TRIMs a run of data chunks (e.g. a reclaimed LSS segment).
  void trim_chunks(std::uint64_t first_chunk, std::uint64_t count);

  /// Aggregate device-internal WA across all devices.
  double device_internal_wa() const;

  const flash::Ftl& device(std::uint32_t index) const {
    return devices_.at(index);
  }

 private:
  struct Placement {
    std::uint32_t data_device;
    std::uint32_t parity_device;
    std::uint64_t device_page;  ///< first page of the chunk on its device
  };

  Placement locate(std::uint64_t chunk_index) const;
  std::uint32_t device_stream(std::uint32_t host_stream) const;

  AddressedArrayConfig config_;
  AddressedArrayStats stats_;
  std::vector<flash::Ftl> devices_;
};

}  // namespace adapt::array
