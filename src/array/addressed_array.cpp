#include "array/addressed_array.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::array {

AddressedArray::AddressedArray(const AddressedArrayConfig& config)
    : config_(config) {
  if (config_.num_devices < 2) {
    throw std::invalid_argument("AddressedArray needs >= 2 devices");
  }
  if (config_.chunk_bytes == 0 || config_.page_bytes == 0 ||
      config_.chunk_bytes % config_.page_bytes != 0) {
    throw std::invalid_argument(
        "AddressedArray: chunk size must be a positive multiple of the "
        "page size");
  }
  // Stripes needed to host all data chunks; each device stores one chunk
  // per stripe (data or parity).
  const std::uint64_t stripes =
      (config_.data_chunks + data_columns() - 1) / data_columns();
  const std::uint64_t pages_per_device = stripes * chunk_pages();

  flash::FtlConfig ftl_config;
  ftl_config.page_bytes = config_.page_bytes;
  ftl_config.logical_pages = std::max<std::uint64_t>(pages_per_device, 1);
  ftl_config.over_provision = config_.device_over_provision;
  ftl_config.num_streams =
      config_.multi_stream ? std::max(config_.num_streams, 2u) : 1;
  // Size flash blocks so a device holds a reasonable number of them:
  // several chunks per erase block, but never so large that the device
  // cannot host two open blocks per stream plus GC headroom.
  const std::uint32_t desired =
      std::max<std::uint32_t>(chunk_pages() * 4, 64);
  const double logical = static_cast<double>(ftl_config.logical_pages);
  const std::uint32_t parked_blocks =
      2 * ftl_config.num_streams + ftl_config.free_block_reserve + 2;
  // Blocks parked as open/reserve must not eat into the logical capacity:
  // parked * ppb <= logical * over_provision (with a safety factor of 2).
  const auto cap = static_cast<std::uint32_t>(
      logical * ftl_config.over_provision /
      (2.0 * static_cast<double>(parked_blocks)));
  ftl_config.pages_per_block =
      std::max<std::uint32_t>(1, std::min(desired, cap));
  devices_.reserve(config_.num_devices);
  for (std::uint32_t i = 0; i < config_.num_devices; ++i) {
    devices_.emplace_back(ftl_config);
  }
  // `num_streams - 1` is reserved as the parity stream when multi-stream.
}

AddressedArray::Placement AddressedArray::locate(
    std::uint64_t chunk_index) const {
  if (chunk_index >= config_.data_chunks) {
    throw std::out_of_range("AddressedArray: chunk beyond data space");
  }
  const std::uint32_t n = config_.num_devices;
  const std::uint64_t stripe = chunk_index / data_columns();
  const auto column = static_cast<std::uint32_t>(chunk_index % data_columns());
  // Left-symmetric rotation: parity walks backwards across devices.
  const auto parity_device =
      static_cast<std::uint32_t>((n - 1 - stripe % n) % n);
  std::uint32_t data_device = column;
  if (data_device >= parity_device) ++data_device;
  return Placement{data_device, parity_device, stripe * chunk_pages()};
}

std::uint32_t AddressedArray::device_stream(
    std::uint32_t host_stream) const {
  if (!config_.multi_stream) return 0;
  // Reserve the top device stream for parity traffic.
  const std::uint32_t data_streams =
      std::max(config_.num_streams, 2u) - 1;
  return std::min(host_stream, data_streams - 1);
}

void AddressedArray::write_chunk(std::uint64_t chunk_index,
                                 std::uint32_t stream) {
  const Placement p = locate(chunk_index);
  devices_[p.data_device].host_write(p.device_page, chunk_pages(),
                                     device_stream(stream));
  ++stats_.data_chunk_writes;
  // Small-write parity update: the stripe's parity chunk is rewritten in
  // place on the parity device. Parity gets its own device stream so its
  // in-place churn does not pollute data blocks.
  const std::uint32_t parity_stream =
      config_.multi_stream ? std::max(config_.num_streams, 2u) - 1 : 0;
  devices_[p.parity_device].host_write(p.device_page, chunk_pages(),
                                       parity_stream);
  ++stats_.parity_chunk_writes;
}

void AddressedArray::write_partial(std::uint64_t chunk_index,
                                   std::uint32_t offset_pages,
                                   std::uint32_t pages,
                                   std::uint32_t stream) {
  if (offset_pages + pages > chunk_pages()) {
    throw std::invalid_argument(
        "AddressedArray: partial write beyond chunk");
  }
  const Placement p = locate(chunk_index);
  devices_[p.data_device].host_write(p.device_page + offset_pages, pages,
                                     device_stream(stream));
  ++stats_.data_chunk_writes;
  const std::uint32_t parity_stream =
      config_.multi_stream ? std::max(config_.num_streams, 2u) - 1 : 0;
  devices_[p.parity_device].host_write(p.device_page, chunk_pages(),
                                       parity_stream);
  ++stats_.parity_chunk_writes;
}

void AddressedArray::trim_chunks(std::uint64_t first_chunk,
                                 std::uint64_t count) {
  if (!config_.trim_enabled) return;
  for (std::uint64_t c = first_chunk; c < first_chunk + count; ++c) {
    const Placement p = locate(c);
    devices_[p.data_device].trim(p.device_page, chunk_pages());
    ++stats_.trims;
    // Parity stays live: other chunks of the stripe may still hold data.
  }
}

double AddressedArray::device_internal_wa() const {
  std::uint64_t host = 0;
  std::uint64_t gc = 0;
  for (const flash::Ftl& d : devices_) {
    host += d.stats().host_pages;
    gc += d.stats().gc_pages;
  }
  return host == 0 ? 0.0
                   : static_cast<double>(host + gc) /
                         static_cast<double>(host);
}

}  // namespace adapt::array
