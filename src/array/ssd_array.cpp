#include "array/ssd_array.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::array {

SsdArray::SsdArray(const SsdArrayConfig& config)
    : config_(config),
      stream_stats_(config.num_streams),
      stripe_cursor_(config.num_streams, 0),
      stripe_index_(config.num_streams, 0) {
  if (config.num_devices < 2) {
    throw std::invalid_argument("RAID-5 array needs at least 2 devices");
  }
  if (config.chunk_bytes == 0) {
    throw std::invalid_argument("chunk size must be positive");
  }
  devices_.reserve(config.num_devices);
  for (std::uint32_t i = 0; i < config.num_devices; ++i) {
    devices_.push_back(std::make_unique<SsdDevice>(SsdDeviceConfig{
        .num_streams = config.num_streams,
        .bandwidth_mb_per_s = config.device_bandwidth_mb_per_s,
    }));
  }
}

TimeUs SsdArray::write_chunk(std::uint32_t stream, std::uint64_t data_bytes) {
  if (stream >= config_.num_streams) {
    throw std::out_of_range("stream index out of range");
  }
  if (data_bytes > config_.chunk_bytes) {
    throw std::invalid_argument("chunk payload exceeds chunk size");
  }
  auto& stats = stream_stats_[stream];
  stats.chunks_written += 1;
  stats.data_bytes += data_bytes;
  stats.padding_bytes += config_.chunk_bytes - data_bytes;

  const std::uint32_t columns = data_columns();
  // Rotate parity like RAID-5 left-symmetric: stripe s parks parity on
  // device (num_devices - 1 - s % num_devices).
  const std::uint32_t parity_dev = static_cast<std::uint32_t>(
      (config_.num_devices - 1 -
       stripe_index_[stream] % config_.num_devices) %
      config_.num_devices);
  // Data columns are the remaining devices in order.
  std::uint32_t col = stripe_cursor_[stream];
  std::uint32_t dev = col;
  if (dev >= parity_dev) dev += 1;  // skip the parity device

  TimeUs latency = devices_[dev]->write(stream, config_.chunk_bytes);

  stripe_cursor_[stream] = col + 1;
  if (stripe_cursor_[stream] == columns) {
    // Stripe complete: emit the parity chunk.
    stripe_cursor_[stream] = 0;
    stripe_index_[stream] += 1;
    stats.parity_bytes += config_.chunk_bytes;
    latency = std::max(latency,
                       devices_[parity_dev]->write(stream, config_.chunk_bytes));
  }
  return latency;
}

TimeUs SsdArray::write_partial(std::uint32_t stream,
                               std::uint64_t data_bytes) {
  if (stream >= config_.num_streams) {
    throw std::out_of_range("stream index out of range");
  }
  if (data_bytes == 0 || data_bytes > config_.chunk_bytes) {
    throw std::invalid_argument("partial write size out of range");
  }
  auto& stats = stream_stats_[stream];
  ++stats.rmw_writes;
  stats.data_bytes += data_bytes;
  // Parity is rewritten whole; the update reads the old data chunk and the
  // old parity chunk first.
  stats.parity_bytes += config_.chunk_bytes;
  stats.rmw_read_bytes += 2ull * config_.chunk_bytes;
  const std::uint32_t dev = static_cast<std::uint32_t>(
      (stripe_index_[stream] + stripe_cursor_[stream]) %
      config_.num_devices);
  return devices_[dev]->write(stream, data_bytes + config_.chunk_bytes);
}

const StreamStats& SsdArray::stream_stats(std::uint32_t stream) const {
  if (stream >= config_.num_streams) {
    throw std::out_of_range("stream index out of range");
  }
  return stream_stats_[stream];
}

StreamStats SsdArray::totals() const {
  StreamStats t;
  for (const auto& s : stream_stats_) {
    t.chunks_written += s.chunks_written;
    t.data_bytes += s.data_bytes;
    t.padding_bytes += s.padding_bytes;
    t.parity_bytes += s.parity_bytes;
    t.rmw_writes += s.rmw_writes;
    t.rmw_read_bytes += s.rmw_read_bytes;
  }
  return t;
}

std::uint64_t SsdArray::device_bytes(std::uint32_t device) const {
  if (device >= config_.num_devices) {
    throw std::out_of_range("device index out of range");
  }
  return devices_[device]->bytes_written();
}

TimeUs SsdArray::schedule_chunk(std::uint32_t stream, TimeUs now_us) {
  if (stream >= config_.num_streams) {
    throw std::out_of_range("stream index out of range");
  }
  // One chunk lands on one device; parity is amortised by charging
  // chunk_bytes * num_devices / (num_devices - 1) of bandwidth.
  const std::uint64_t effective_bytes = effective_chunk_bytes();
  const std::uint32_t dev =
      static_cast<std::uint32_t>(stripe_index_[stream] + stripe_cursor_[stream]) %
      config_.num_devices;
  return devices_[dev]->reserve(now_us, effective_bytes);
}

}  // namespace adapt::array
