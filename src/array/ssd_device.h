// Per-SSD device model. The simulator only needs accounting (bytes per
// stream, wear); the prototype additionally uses the bandwidth model to
// obtain per-write service latencies so that GC traffic competes with user
// traffic for device bandwidth, which is the effect behind the paper's
// Figure 12a throughput results.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace adapt::array {

struct SsdDeviceConfig {
  std::uint32_t num_streams = 8;
  double bandwidth_mb_per_s = 2000.0;  ///< sustained sequential write BW
};

class SsdDevice {
 public:
  explicit SsdDevice(const SsdDeviceConfig& config);

  const SsdDeviceConfig& config() const noexcept { return config_; }

  /// The bandwidth model's service time for `bytes` at
  /// `bandwidth_mb_per_s`, rounded to the nearest microsecond. This is THE
  /// timing formula of the device layer: write(), reserve(), and
  /// lss::DeviceLanes all derive their completion times from it, so a lane
  /// submission and a direct reservation of the same payload cost the same
  /// modeled time.
  static TimeUs service_time_us(double bandwidth_mb_per_s,
                                std::uint64_t bytes) noexcept {
    const double us =
        static_cast<double>(bytes) / (bandwidth_mb_per_s * 1e6) * 1e6;
    return static_cast<TimeUs>(us + 0.5);
  }

  /// service_time_us at this device's configured bandwidth.
  TimeUs service_us(std::uint64_t bytes) const noexcept {
    return service_time_us(config_.bandwidth_mb_per_s, bytes);
  }

  /// Records a write of `bytes` on `stream` and returns the service time in
  /// microseconds under the bandwidth model.
  TimeUs write(std::uint32_t stream, std::uint64_t bytes);

  std::uint64_t bytes_written() const noexcept {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t stream_bytes(std::uint32_t stream) const;

  /// Simulated busy-time bookkeeping for the prototype: reserves the device
  /// starting no earlier than `now_us`, returns the completion time.
  TimeUs reserve(TimeUs now_us, std::uint64_t bytes);

 private:
  SsdDeviceConfig config_;
  std::atomic<std::uint64_t> bytes_written_{0};
  std::vector<std::atomic<std::uint64_t>> stream_bytes_;
  std::atomic<std::uint64_t> busy_until_us_{0};
};

}  // namespace adapt::array
