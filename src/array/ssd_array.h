// RAID-5-style SSD array model.
//
// The array is the persistence substrate below the log-structured store.
// Its write unit is a chunk (default 64 KiB, the Linux mdraid default used
// by the paper). Data chunks of one stripe are spread over num_devices - 1
// devices with a rotating parity chunk on the remaining device. The LSS
// maps each placement group to one array stream so multi-stream SSDs keep
// group data physically separated.
//
// The model tracks, per stream and per device:
//   * valid data bytes, zero-padding bytes (partial chunks flushed under
//     SLA pressure), and parity bytes;
// and provides the bandwidth-based completion-time estimate used by the
// prototype engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "array/ssd_device.h"
#include "common/types.h"

namespace adapt::array {

struct SsdArrayConfig {
  std::uint32_t num_devices = 4;      ///< RAID-5: 3 data + 1 parity/stripe
  std::uint32_t chunk_bytes = kDefaultChunkSize;
  std::uint32_t num_streams = 8;
  double device_bandwidth_mb_per_s = 2000.0;
};

/// Accounting for one stream (== one placement group).
struct StreamStats {
  std::uint64_t chunks_written = 0;
  std::uint64_t data_bytes = 0;     ///< real block payload
  std::uint64_t padding_bytes = 0;  ///< zero fill in partial chunks
  std::uint64_t parity_bytes = 0;
  std::uint64_t rmw_writes = 0;       ///< sub-chunk RMW events
  std::uint64_t rmw_read_bytes = 0;   ///< old data + parity reads for RMW
};

class SsdArray {
 public:
  explicit SsdArray(const SsdArrayConfig& config);

  const SsdArrayConfig& config() const noexcept { return config_; }

  /// Persists one chunk on stream `stream` containing `data_bytes` of real
  /// payload; the rest of the chunk (chunk_bytes - data_bytes) is zero
  /// padding. Completes the stripe parity when the stripe fills. Returns
  /// the modelled service latency (max over devices touched).
  TimeUs write_chunk(std::uint32_t stream, std::uint64_t data_bytes);

  /// Sub-chunk write under RMW semantics: persists `data_bytes` of payload
  /// and rewrites the stripe's parity chunk in place, charging the
  /// old-data + old-parity reads to rmw_read_bytes.
  TimeUs write_partial(std::uint32_t stream, std::uint64_t data_bytes);

  const StreamStats& stream_stats(std::uint32_t stream) const;
  StreamStats totals() const;

  std::uint64_t device_bytes(std::uint32_t device) const;
  std::uint32_t data_columns() const noexcept {
    return config_.num_devices - 1;
  }

  /// Prototype support: schedules the chunk write at `now_us`, returning
  /// the simulated completion time with device contention.
  TimeUs schedule_chunk(std::uint32_t stream, TimeUs now_us);

  // -- lane-timing API (reserve-compatible) ---------------------------------
  // lss::DeviceLanes models this array as one submission lane per device.
  // These accessors expose exactly the numbers schedule_chunk feeds into
  // SsdDevice::reserve, so a lane submission and a reservation of the same
  // chunk produce the same service time.

  /// One lane per device.
  std::uint32_t lane_count() const noexcept { return config_.num_devices; }

  /// Per-lane (per-device) sustained bandwidth.
  double lane_bandwidth_mb_per_s() const noexcept {
    return config_.device_bandwidth_mb_per_s;
  }

  /// Bandwidth charged per chunk landed on one device: the chunk itself
  /// plus its amortised share of the stripe's parity chunk,
  /// chunk_bytes * num_devices / (num_devices - 1).
  std::uint64_t effective_chunk_bytes() const noexcept {
    return static_cast<std::uint64_t>(config_.chunk_bytes) *
           config_.num_devices / data_columns();
  }

  /// Modeled service time of one parity-amortised chunk on one lane —
  /// identical to what schedule_chunk charges its device.
  TimeUs lane_chunk_service_us() const noexcept {
    return SsdDevice::service_time_us(config_.device_bandwidth_mb_per_s,
                                      effective_chunk_bytes());
  }

 private:
  SsdArrayConfig config_;
  std::vector<std::unique_ptr<SsdDevice>> devices_;
  std::vector<StreamStats> stream_stats_;
  /// Per-stream rotation cursor: which data column the next chunk lands on.
  std::vector<std::uint32_t> stripe_cursor_;
  /// Per-stream stripe index, used to rotate the parity device.
  std::vector<std::uint64_t> stripe_index_;
};

}  // namespace adapt::array
