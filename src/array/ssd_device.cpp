#include "array/ssd_device.h"

#include <algorithm>
#include <stdexcept>

namespace adapt::array {

SsdDevice::SsdDevice(const SsdDeviceConfig& config)
    : config_(config), stream_bytes_(config.num_streams) {
  if (config.num_streams == 0) {
    throw std::invalid_argument("SsdDevice needs at least one stream");
  }
  if (config.bandwidth_mb_per_s <= 0) {
    throw std::invalid_argument("SsdDevice bandwidth must be positive");
  }
}

TimeUs SsdDevice::write(std::uint32_t stream, std::uint64_t bytes) {
  if (stream >= config_.num_streams) {
    throw std::out_of_range("stream index out of range");
  }
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  stream_bytes_[stream].fetch_add(bytes, std::memory_order_relaxed);
  return service_us(bytes);
}

std::uint64_t SsdDevice::stream_bytes(std::uint32_t stream) const {
  if (stream >= config_.num_streams) {
    throw std::out_of_range("stream index out of range");
  }
  return stream_bytes_[stream].load(std::memory_order_relaxed);
}

TimeUs SsdDevice::reserve(TimeUs now_us, std::uint64_t bytes) {
  const TimeUs service = service_us(bytes);
  // CAS loop: start at max(now, busy_until), finish start + service.
  std::uint64_t prev = busy_until_us_.load(std::memory_order_relaxed);
  for (;;) {
    const TimeUs start = std::max<TimeUs>(now_us, prev);
    const TimeUs done = start + service;
    if (busy_until_us_.compare_exchange_weak(prev, done,
                                             std::memory_order_relaxed)) {
      return done;
    }
  }
}

}  // namespace adapt::array
