// Canonical block-trace record. Every reader / generator produces these and
// the simulator consumes nothing else, so placement algorithms are agnostic
// to where a workload came from.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace adapt::trace {

enum class OpType : std::uint8_t { kRead, kWrite };

struct Record {
  TimeUs ts_us = 0;       ///< arrival time, microseconds since trace start
  OpType op = OpType::kWrite;
  Lba lba = 0;            ///< starting block address (block units)
  std::uint32_t blocks = 1;  ///< request length in blocks

  friend bool operator==(const Record&, const Record&) = default;
};

/// A volume is one replayable unit: an ordered record stream plus the
/// logical capacity the records address.
struct Volume {
  std::uint64_t id = 0;
  std::uint64_t capacity_blocks = 0;
  std::vector<Record> records;
};

}  // namespace adapt::trace
