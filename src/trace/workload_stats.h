// Workload statistics used to reproduce Figure 2: per-volume average
// request rate and the write-size distribution.
#pragma once

#include <cstdint>
#include <span>

#include "common/histogram.h"
#include "trace/record.h"

namespace adapt::trace {

struct VolumeStats {
  std::uint64_t volume_id = 0;
  std::uint64_t requests = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t write_blocks = 0;
  TimeUs duration_us = 0;
  double avg_request_rate_per_sec = 0.0;
  double avg_write_size_bytes = 0.0;
};

/// Per-volume summary (rates, sizes).
VolumeStats compute_volume_stats(const Volume& volume,
                                 std::uint32_t block_size = kDefaultBlockSize);

/// Aggregated Figure-2 inputs across a set of volumes: the distribution of
/// per-volume request rates and the distribution of individual write sizes.
struct WorkloadDistributions {
  Histogram request_rate_per_volume;  ///< req/s, one sample per volume
  Histogram write_size_bytes;         ///< one sample per write request
};

WorkloadDistributions compute_distributions(
    std::span<const Volume> volumes,
    std::uint32_t block_size = kDefaultBlockSize);

}  // namespace adapt::trace
