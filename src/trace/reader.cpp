#include "trace/reader.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace adapt::trace {
namespace {

/// Splits into a thread-local scratch vector: parse_line runs once per
/// trace record, and a fresh std::vector here was the reader's only
/// steady-state allocation. The reference stays valid until the caller's
/// next split_csv call on the same thread.
std::vector<std::string_view>& split_csv(std::string_view line) {
  thread_local std::vector<std::string_view> fields;
  fields.clear();
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void bad_field(const char* what, std::string_view value,
                            const char* why = "malformed") {
  throw ParseError(0, std::string(why) + " " + what + " field: '" +
                          std::string(value) + "'");
}

std::uint64_t parse_u64(std::string_view s, const char* what) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec == std::errc::result_out_of_range) bad_field(what, s, "overflowing");
  if (ec != std::errc{} || ptr != s.data() + s.size()) bad_field(what, s);
  return value;
}

std::uint32_t parse_u32(std::string_view s, const char* what) {
  const std::uint64_t value = parse_u64(s, what);
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    bad_field(what, trim(s), "overflowing");
  }
  return static_cast<std::uint32_t>(value);
}

double parse_f64(std::string_view s, const char* what) {
  s = trim(s);
  // std::from_chars<double> is not universally available; use strtod on a
  // bounded copy. Embedded NULs make end stop early and fail the check.
  std::string buf(s);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) bad_field(what, s);
  if (!std::isfinite(value)) bad_field(what, s, "non-finite");
  return value;
}

OpType parse_op_letter(std::string_view s) {
  s = trim(s);
  if (s == "R" || s == "r" || s == "Read" || s == "read") {
    return OpType::kRead;
  }
  if (s == "W" || s == "w" || s == "Write" || s == "write") {
    return OpType::kWrite;
  }
  bad_field("op", s);
}

void require_fields(const std::vector<std::string_view>& f, std::size_t n,
                    const char* format) {
  if (f.size() < n) {
    throw ParseError(0, std::string("too few fields for ") + format +
                            " (got " + std::to_string(f.size()) + ", want " +
                            std::to_string(n) + ")");
  }
}

std::uint64_t checked_add(std::uint64_t a, std::uint64_t b,
                          const char* what) {
  if (a > std::numeric_limits<std::uint64_t>::max() - b) {
    bad_field(what, std::to_string(a) + " + " + std::to_string(b),
              "overflowing");
  }
  return a + b;
}

std::uint64_t sectors_to_bytes(std::uint64_t sectors, const char* what) {
  if (sectors > std::numeric_limits<std::uint64_t>::max() / 512) {
    bad_field(what, std::to_string(sectors), "overflowing");
  }
  return sectors * 512;
}

std::uint32_t bytes_to_blocks(std::uint64_t bytes, std::uint32_t block_size,
                              const char* what) {
  // Round the request up to whole blocks; a zero-length request still
  // touches the block at its offset.
  const std::uint64_t rounded = checked_add(bytes, block_size - 1, what);
  const std::uint64_t blocks = std::max<std::uint64_t>(rounded / block_size, 1);
  if (blocks > std::numeric_limits<std::uint32_t>::max()) {
    bad_field(what, std::to_string(bytes), "overflowing");
  }
  return static_cast<std::uint32_t>(blocks);
}

TimeUs seconds_to_us(double seconds, const char* what) {
  // Reject negatives and values whose microsecond count does not fit u64
  // (the cast would otherwise be UB).
  if (seconds < 0.0 || seconds >= 1.8e13) {
    bad_field(what, std::to_string(seconds), "out-of-range");
  }
  return static_cast<TimeUs>(seconds * 1e6);
}

}  // namespace

std::optional<Record> parse_line(std::string_view line, TraceFormat format,
                                 std::uint32_t block_size) {
  line = trim(line);
  if (line.empty() || line.front() == '#') return std::nullopt;
  const auto& f = split_csv(line);
  Record r;
  switch (format) {
    case TraceFormat::kCanonical: {
      require_fields(f, 4, "canonical");
      r.ts_us = parse_u64(f[0], "ts_us");
      r.op = parse_op_letter(f[1]);
      r.lba = parse_u64(f[2], "lba");
      r.blocks = parse_u32(f[3], "blocks");
      break;
    }
    case TraceFormat::kAlibaba: {
      require_fields(f, 5, "alibaba");
      r.op = parse_op_letter(f[1]);
      const std::uint64_t offset = parse_u64(f[2], "offset");
      const std::uint64_t length = parse_u64(f[3], "length");
      r.ts_us = parse_u64(f[4], "ts");
      r.lba = offset / block_size;
      r.blocks = bytes_to_blocks(
          checked_add(length, offset % block_size, "length"), block_size,
          "length");
      break;
    }
    case TraceFormat::kTencent: {
      require_fields(f, 5, "tencent");
      const double ts_sec = parse_f64(f[0], "ts_sec");
      const std::uint64_t offset_sectors = parse_u64(f[1], "offset");
      const std::uint64_t size_sectors = parse_u64(f[2], "size");
      const std::uint64_t io_type = parse_u64(f[3], "io_type");
      r.ts_us = seconds_to_us(ts_sec, "ts_sec");
      r.op = io_type == 0 ? OpType::kRead : OpType::kWrite;
      const std::uint64_t offset_bytes =
          sectors_to_bytes(offset_sectors, "offset");
      const std::uint64_t size_bytes = sectors_to_bytes(size_sectors, "size");
      r.lba = offset_bytes / block_size;
      r.blocks = bytes_to_blocks(
          checked_add(size_bytes, offset_bytes % block_size, "size"),
          block_size, "size");
      break;
    }
    case TraceFormat::kMsrc: {
      require_fields(f, 6, "msrc");
      const std::uint64_t ts_100ns = parse_u64(f[0], "ts");
      r.ts_us = ts_100ns / 10;
      r.op = parse_op_letter(f[3]);
      const std::uint64_t offset = parse_u64(f[4], "offset");
      const std::uint64_t size = parse_u64(f[5], "size");
      r.lba = offset / block_size;
      r.blocks = bytes_to_blocks(checked_add(size, offset % block_size, "size"),
                                 block_size, "size");
      break;
    }
  }
  if (r.blocks == 0) r.blocks = 1;
  // The record must address a representable block range.
  if (r.lba > std::numeric_limits<std::uint64_t>::max() - r.blocks) {
    bad_field("lba", std::to_string(r.lba), "overflowing");
  }
  return r;
}

Volume read_trace(std::istream& in, TraceFormat format,
                  std::uint32_t block_size, std::uint64_t capacity_blocks) {
  Volume volume;
  std::string line;
  std::uint64_t line_no = 0;
  std::uint64_t max_block = 0;
  bool have_base = false;
  TimeUs base_ts = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::optional<Record> rec;
    try {
      rec = parse_line(line, format, block_size);
    } catch (const ParseError& e) {
      throw e.at_line(line_no);
    }
    if (!rec) continue;
    Record r = *rec;
    if (!have_base) {
      base_ts = r.ts_us;
      have_base = true;
    }
    r.ts_us = r.ts_us >= base_ts ? r.ts_us - base_ts : 0;
    max_block = std::max(max_block, r.lba + r.blocks);
    volume.records.push_back(r);
  }
  volume.capacity_blocks =
      capacity_blocks != 0 ? capacity_blocks : max_block;
  return volume;
}

void write_canonical(std::ostream& out, const Volume& volume) {
  for (const Record& r : volume.records) {
    out << r.ts_us << ',' << (r.op == OpType::kRead ? 'R' : 'W') << ','
        << r.lba << ',' << r.blocks << '\n';
  }
}

}  // namespace adapt::trace
