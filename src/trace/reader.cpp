#include "trace/reader.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace adapt::trace {
namespace {

std::vector<std::string_view> split_csv(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::uint64_t parse_u64(std::string_view s, const char* what) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument(std::string("bad ") + what + " field: '" +
                                std::string(s) + "'");
  }
  return value;
}

double parse_f64(std::string_view s, const char* what) {
  s = trim(s);
  // std::from_chars<double> is not universally available; use strtod on a
  // bounded copy.
  std::string buf(s);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) {
    throw std::invalid_argument(std::string("bad ") + what + " field: '" +
                                buf + "'");
  }
  return value;
}

OpType parse_op_letter(std::string_view s) {
  s = trim(s);
  if (s == "R" || s == "r" || s == "Read" || s == "read") {
    return OpType::kRead;
  }
  if (s == "W" || s == "w" || s == "Write" || s == "write") {
    return OpType::kWrite;
  }
  throw std::invalid_argument("bad op field: '" + std::string(s) + "'");
}

void require_fields(const std::vector<std::string_view>& f, std::size_t n,
                    const char* format) {
  if (f.size() < n) {
    throw std::invalid_argument(std::string("too few fields for ") + format);
  }
}

std::uint32_t bytes_to_blocks(std::uint64_t bytes, std::uint32_t block_size) {
  // Round the request up to whole blocks; a zero-length request still
  // touches the block at its offset.
  const std::uint64_t blocks = (bytes + block_size - 1) / block_size;
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(blocks, 1));
}

}  // namespace

std::optional<Record> parse_line(std::string_view line, TraceFormat format,
                                 std::uint32_t block_size) {
  line = trim(line);
  if (line.empty() || line.front() == '#') return std::nullopt;
  const auto f = split_csv(line);
  Record r;
  switch (format) {
    case TraceFormat::kCanonical: {
      require_fields(f, 4, "canonical");
      r.ts_us = parse_u64(f[0], "ts_us");
      r.op = parse_op_letter(f[1]);
      r.lba = parse_u64(f[2], "lba");
      r.blocks = static_cast<std::uint32_t>(parse_u64(f[3], "blocks"));
      break;
    }
    case TraceFormat::kAlibaba: {
      require_fields(f, 5, "alibaba");
      r.op = parse_op_letter(f[1]);
      const std::uint64_t offset = parse_u64(f[2], "offset");
      const std::uint64_t length = parse_u64(f[3], "length");
      r.ts_us = parse_u64(f[4], "ts");
      r.lba = offset / block_size;
      r.blocks = bytes_to_blocks(length + offset % block_size, block_size);
      break;
    }
    case TraceFormat::kTencent: {
      require_fields(f, 5, "tencent");
      const double ts_sec = parse_f64(f[0], "ts_sec");
      const std::uint64_t offset_sectors = parse_u64(f[1], "offset");
      const std::uint64_t size_sectors = parse_u64(f[2], "size");
      const std::uint64_t io_type = parse_u64(f[3], "io_type");
      r.ts_us = static_cast<TimeUs>(ts_sec * 1e6);
      r.op = io_type == 0 ? OpType::kRead : OpType::kWrite;
      const std::uint64_t offset_bytes = offset_sectors * 512;
      const std::uint64_t size_bytes = size_sectors * 512;
      r.lba = offset_bytes / block_size;
      r.blocks =
          bytes_to_blocks(size_bytes + offset_bytes % block_size, block_size);
      break;
    }
    case TraceFormat::kMsrc: {
      require_fields(f, 6, "msrc");
      const std::uint64_t ts_100ns = parse_u64(f[0], "ts");
      r.ts_us = ts_100ns / 10;
      r.op = parse_op_letter(f[3]);
      const std::uint64_t offset = parse_u64(f[4], "offset");
      const std::uint64_t size = parse_u64(f[5], "size");
      r.lba = offset / block_size;
      r.blocks = bytes_to_blocks(size + offset % block_size, block_size);
      break;
    }
  }
  if (r.blocks == 0) r.blocks = 1;
  return r;
}

Volume read_trace(std::istream& in, TraceFormat format,
                  std::uint32_t block_size, std::uint64_t capacity_blocks) {
  Volume volume;
  std::string line;
  std::uint64_t max_block = 0;
  bool have_base = false;
  TimeUs base_ts = 0;
  while (std::getline(in, line)) {
    const auto rec = parse_line(line, format, block_size);
    if (!rec) continue;
    Record r = *rec;
    if (!have_base) {
      base_ts = r.ts_us;
      have_base = true;
    }
    r.ts_us = r.ts_us >= base_ts ? r.ts_us - base_ts : 0;
    max_block = std::max(max_block, r.lba + r.blocks);
    volume.records.push_back(r);
  }
  volume.capacity_blocks =
      capacity_blocks != 0 ? capacity_blocks : max_block;
  return volume;
}

void write_canonical(std::ostream& out, const Volume& volume) {
  for (const Record& r : volume.records) {
    out << r.ts_us << ',' << (r.op == OpType::kRead ? 'R' : 'W') << ','
        << r.lba << ',' << r.blocks << '\n';
  }
}

}  // namespace adapt::trace
