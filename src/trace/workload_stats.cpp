#include "trace/workload_stats.h"

namespace adapt::trace {

VolumeStats compute_volume_stats(const Volume& volume,
                                 std::uint32_t block_size) {
  VolumeStats s;
  s.volume_id = volume.id;
  s.requests = volume.records.size();
  for (const Record& r : volume.records) {
    if (r.op == OpType::kWrite) {
      ++s.write_requests;
      s.write_blocks += r.blocks;
    }
  }
  // Span between the first and last arrival: a trace whose timestamps do
  // not start at zero must not inflate its duration (and so deflate the
  // request rate) by the lead-in offset. Records are time-ordered.
  if (!volume.records.empty()) {
    s.duration_us =
        volume.records.back().ts_us - volume.records.front().ts_us;
  }
  if (s.duration_us > 0) {
    s.avg_request_rate_per_sec =
        static_cast<double>(s.requests) /
        (static_cast<double>(s.duration_us) / 1e6);
  }
  if (s.write_requests > 0) {
    s.avg_write_size_bytes =
        static_cast<double>(s.write_blocks) * block_size /
        static_cast<double>(s.write_requests);
  }
  return s;
}

WorkloadDistributions compute_distributions(std::span<const Volume> volumes,
                                            std::uint32_t block_size) {
  WorkloadDistributions d;
  for (const Volume& v : volumes) {
    const VolumeStats s = compute_volume_stats(v, block_size);
    d.request_rate_per_volume.add(s.avg_request_rate_per_sec);
    for (const Record& r : v.records) {
      if (r.op == OpType::kWrite) {
        d.write_size_bytes.add(static_cast<double>(r.blocks) * block_size);
      }
    }
  }
  return d;
}

}  // namespace adapt::trace
