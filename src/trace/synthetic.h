// Synthetic workload generators.
//
// The paper evaluates on Alibaba / Tencent cloud block traces and the MSR
// Cambridge enterprise traces; those datasets are not redistributable, so
// `CloudVolumeModel` generates per-volume streams whose *distributional*
// properties are calibrated to the paper's own Figure 2 statistics:
//   - per-volume average request rate: 75-86% of volumes below 10 req/s,
//     ~2% above 100 req/s  (log-normal over volumes);
//   - write sizes: 69.8-80.9% of writes <= 8 KiB, 10.8-23.4% > 32 KiB
//     (categorical mixture over {4,8,16,32,64,128} KiB);
//   - Zipfian update locality with per-volume skew drawn from a
//     profile-specific range (Tencent most skewed, MSRC read-heavy).
//
// `YcsbGenerator` reproduces the YCSB-A workload used in the sensitivity
// study (Fig. 11): update-heavy, scrambled-Zipfian key choice, tunable
// inter-arrival density and Zipf alpha.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/zipf.h"
#include "trace/record.h"

namespace adapt::trace {

// ---------------------------------------------------------------------------
// YCSB-style generator (sensitivity study)
// ---------------------------------------------------------------------------

struct YcsbConfig {
  std::uint64_t working_set_blocks = 1u << 20;  ///< paper: 1M 4-KiB blocks
  double zipf_alpha = 0.99;                     ///< YCSB default constant
  double read_ratio = 0.5;                      ///< YCSB-A: 50% reads
  double mean_interarrival_us = 50.0;           ///< density knob
  std::uint32_t request_blocks = 1;             ///< 4 KiB requests
  std::uint64_t seed = 1;
};

/// Streaming generator: `next()` yields records with exponential
/// inter-arrival times and scrambled-Zipfian block choice.
class YcsbGenerator {
 public:
  explicit YcsbGenerator(const YcsbConfig& config);

  const YcsbConfig& config() const noexcept { return config_; }
  Record next();

 private:
  YcsbConfig config_;
  Rng rng_;
  ScrambledZipfianGenerator zipf_;
  TimeUs clock_us_ = 0;
};

/// Materialises `write_blocks` worth of write traffic (reads included on the
/// side per read_ratio) into a Volume.
Volume make_ycsb_volume(const YcsbConfig& config, std::uint64_t write_blocks);

// ---------------------------------------------------------------------------
// Cloud-volume model (production-trace substitute)
// ---------------------------------------------------------------------------

/// Distributional profile of one trace family.
struct CloudProfile {
  std::string name;
  // log10(req/s) over volumes is Normal(mu, sigma).
  double rate_log10_mu;
  double rate_log10_sigma;
  double read_ratio;
  /// Request-size mixture over {1,2,4,8,16,32} blocks (4..128 KiB).
  std::array<double, 6> size_weights;
  /// Per-volume Zipf alpha drawn uniformly from [alpha_lo, alpha_hi].
  double alpha_lo;
  double alpha_hi;
  /// Per-volume working-set size drawn log-uniformly from this range.
  std::uint64_t min_ws_blocks;
  std::uint64_t max_ws_blocks;
  /// ON/OFF burst arrivals: production block traffic is heavily bursty —
  /// requests cluster in bursts of ~mean_burst_len with intra-burst gaps of
  /// ~burst_gap_us, separated by long idle periods sized to hit the
  /// volume's average request rate.
  double mean_burst_len = 6.0;
  double burst_gap_us = 20.0;
  /// Lifetime structure. Cloud block workloads are bimodal (Li et al.,
  /// ToS'23): a small hot region (journals, metadata) absorbs a large
  /// write share with very short block lifetimes, a Zipfian warm region
  /// takes most of the rest, and a sequential cursor writes long-lived,
  /// write-once(ish) data over the remaining space.
  double hot_space_frac = 0.05;
  double hot_write_frac_lo = 0.35;
  double hot_write_frac_hi = 0.60;
  double seq_write_frac_lo = 0.15;
  double seq_write_frac_hi = 0.35;
};

CloudProfile alibaba_profile();
CloudProfile tencent_profile();
CloudProfile msrc_profile();

/// Per-volume parameters drawn from a profile.
struct VolumeParams {
  std::uint64_t volume_id = 0;
  double rate_per_sec = 1.0;
  double zipf_alpha = 0.9;
  std::uint64_t working_set_blocks = 1u << 15;
  double read_ratio = 0.5;
};

class CloudVolumeModel {
 public:
  CloudVolumeModel(CloudProfile profile, std::uint64_t seed);

  const CloudProfile& profile() const noexcept { return profile_; }

  /// Draws the parameters of volume `volume_id` (deterministic per seed).
  VolumeParams draw_params(std::uint64_t volume_id);

  /// Generates a volume whose total *write* traffic is
  /// `fill_factor * working_set_blocks` blocks — enough churn to reach GC
  /// steady state.
  Volume make_volume(std::uint64_t volume_id, double fill_factor);

 private:
  CloudProfile profile_;
  std::uint64_t seed_;
};

/// Draws a request size in blocks from the profile mixture.
std::uint32_t draw_request_blocks(const std::array<double, 6>& weights,
                                  Rng& rng);

}  // namespace adapt::trace
