// CSV block-trace readers for the three production formats the paper
// evaluates (Alibaba cloud block storage, Tencent CBS, MSR Cambridge), plus
// a canonical format for traces produced by this repo's generators.
//
// Formats (one record per line):
//   Canonical : ts_us,op(R|W),lba_block,blocks
//   Alibaba   : device_id,opcode(R|W),offset_bytes,length_bytes,ts_us
//   Tencent   : ts_sec,offset_sectors,size_sectors,io_type(0=R,1=W),volume_id
//   MSRC      : ts_100ns,hostname,disk,type(Read|Write),offset_bytes,
//               size_bytes,response_us
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "trace/record.h"

namespace adapt::trace {

enum class TraceFormat { kCanonical, kAlibaba, kTencent, kMsrc };

/// Structured parse failure: which line (1-based; 0 when unknown, e.g. from
/// parse_line on a free-standing string) and why. Malformed or overflowing
/// fields always raise this — a trace reader that silently skips or
/// truncates corrupt records produces plausible-but-wrong workloads.
class ParseError : public std::invalid_argument {
 public:
  ParseError(std::uint64_t line_no, const std::string& reason)
      : std::invalid_argument("trace line " + std::to_string(line_no) + ": " +
                              reason),
        line_no_(line_no),
        reason_(reason) {}

  std::uint64_t line_no() const noexcept { return line_no_; }
  const std::string& reason() const noexcept { return reason_; }

  /// Copy of this error re-attributed to `line_no` (used by read_trace to
  /// annotate errors thrown while parsing an isolated line).
  ParseError at_line(std::uint64_t line_no) const {
    return {line_no, reason_};
  }

 private:
  std::uint64_t line_no_;
  std::string reason_;
};

/// Parses one CSV line in the given format. Returns nullopt for blank lines
/// and comment lines (leading '#'); throws ParseError (with line 0) on
/// malformed or overflowing input. `block_size` converts byte/sector
/// offsets to blocks.
std::optional<Record> parse_line(std::string_view line, TraceFormat format,
                                 std::uint32_t block_size = kDefaultBlockSize);

/// Reads a whole stream into a Volume. Records keep file order; capacity is
/// sized to the maximum addressed block + 1 unless `capacity_blocks` is
/// given. Timestamps are rebased so the first record is at t = 0. Throws
/// ParseError carrying the 1-based line number of the offending record.
Volume read_trace(std::istream& in, TraceFormat format,
                  std::uint32_t block_size = kDefaultBlockSize,
                  std::uint64_t capacity_blocks = 0);

/// Writes a volume in canonical format (inverse of kCanonical parsing).
void write_canonical(std::ostream& out, const Volume& volume);

}  // namespace adapt::trace
