#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>

namespace adapt::trace {

// ---------------------------------------------------------------------------
// YCSB
// ---------------------------------------------------------------------------

YcsbGenerator::YcsbGenerator(const YcsbConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(std::max<std::uint64_t>(
                config.working_set_blocks / config.request_blocks, 1),
            config.zipf_alpha) {}

Record YcsbGenerator::next() {
  clock_us_ += static_cast<TimeUs>(
      rng_.exponential(config_.mean_interarrival_us) + 0.5);
  Record r;
  r.ts_us = clock_us_;
  r.op = rng_.chance(config_.read_ratio) ? OpType::kRead : OpType::kWrite;
  // Draw an aligned extent so repeated draws of the same rank overwrite the
  // same blocks (update locality).
  const std::uint64_t extent = zipf_.next(rng_);
  r.lba = extent * config_.request_blocks;
  r.blocks = config_.request_blocks;
  return r;
}

Volume make_ycsb_volume(const YcsbConfig& config,
                        std::uint64_t write_blocks) {
  YcsbGenerator gen(config);
  Volume volume;
  volume.id = config.seed;
  volume.capacity_blocks = config.working_set_blocks;
  // Expected records = write requests scaled by the read share; +1/8 slack
  // keeps the common case to a single allocation without the doubling
  // overshoot a reserve-less build pays.
  const double write_frac = std::max(1.0 - config.read_ratio, 1e-3);
  const auto writes_needed = static_cast<double>(
      write_blocks / std::max<std::uint32_t>(config.request_blocks, 1) + 1);
  volume.records.reserve(
      static_cast<std::size_t>(writes_needed / write_frac * 1.125));
  std::uint64_t written = 0;
  while (written < write_blocks) {
    Record r = gen.next();
    if (r.op == OpType::kWrite) written += r.blocks;
    volume.records.push_back(r);
  }
  return volume;
}

// ---------------------------------------------------------------------------
// Cloud profiles (calibrated to the paper's Figure 2; see header)
// ---------------------------------------------------------------------------

CloudProfile alibaba_profile() {
  // P(rate < 10 req/s) ~ 0.80, P(rate > 100) ~ 0.025.
  // Sizes: <=8 KiB 74%, >32 KiB 15%.
  return CloudProfile{
      .name = "alibaba",
      .rate_log10_mu = 0.31,
      .rate_log10_sigma = 0.83,
      .read_ratio = 0.45,
      .size_weights = {0.50, 0.24, 0.07, 0.04, 0.10, 0.05},
      .alpha_lo = 0.70,
      .alpha_hi = 1.00,
      .min_ws_blocks = 1u << 15,
      .max_ws_blocks = 1u << 17,
  };
}

CloudProfile tencent_profile() {
  // More skewed access (paper: "data access is more skewed"), smallest
  // requests: <=8 KiB 81%, >32 KiB 11%.
  return CloudProfile{
      .name = "tencent",
      .rate_log10_mu = 0.22,
      .rate_log10_sigma = 0.80,
      .read_ratio = 0.40,
      .size_weights = {0.60, 0.21, 0.05, 0.03, 0.08, 0.03},
      .alpha_lo = 0.95,
      .alpha_hi = 1.20,
      .min_ws_blocks = 1u << 15,
      .max_ws_blocks = 1u << 17,
  };
}

CloudProfile msrc_profile() {
  // Read-intensive enterprise volumes, larger writes: <=8 KiB 70%,
  // >32 KiB 23%.
  return CloudProfile{
      .name = "msrc",
      .rate_log10_mu = 0.25,
      .rate_log10_sigma = 0.85,
      .read_ratio = 0.70,
      .size_weights = {0.45, 0.25, 0.04, 0.03, 0.13, 0.10},
      .alpha_lo = 0.60,
      .alpha_hi = 0.90,
      .min_ws_blocks = 1u << 15,
      .max_ws_blocks = 1u << 17,
  };
}

std::uint32_t draw_request_blocks(const std::array<double, 6>& weights,
                                  Rng& rng) {
  static constexpr std::uint32_t kSizes[6] = {1, 2, 4, 8, 16, 32};
  double total = 0.0;
  for (double w : weights) total += w;
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (u < weights[i]) return kSizes[i];
    u -= weights[i];
  }
  return kSizes[5];
}

CloudVolumeModel::CloudVolumeModel(CloudProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), seed_(seed) {}

VolumeParams CloudVolumeModel::draw_params(std::uint64_t volume_id) {
  Rng rng(mix64(seed_ * 0x9e3779b97f4a7c15ULL + volume_id));
  VolumeParams p;
  p.volume_id = volume_id;
  const double log10_rate =
      profile_.rate_log10_mu + profile_.rate_log10_sigma * rng.normal();
  p.rate_per_sec = std::pow(10.0, log10_rate);
  p.zipf_alpha = rng.uniform(profile_.alpha_lo, profile_.alpha_hi);
  const double log_lo = std::log2(static_cast<double>(profile_.min_ws_blocks));
  const double log_hi = std::log2(static_cast<double>(profile_.max_ws_blocks));
  p.working_set_blocks = static_cast<std::uint64_t>(
      std::pow(2.0, rng.uniform(log_lo, log_hi)));
  p.read_ratio = profile_.read_ratio;
  return p;
}

Volume CloudVolumeModel::make_volume(std::uint64_t volume_id,
                                     double fill_factor) {
  const VolumeParams p = draw_params(volume_id);
  Rng rng(mix64(seed_ ^ (volume_id * 0xbf58476d1ce4e5b9ULL) ^ 0x5851f42dULL));

  // Bimodal lifetime structure (see CloudProfile): split the LBA space into
  // [hot | warm | sequential] regions.
  const auto ws = p.working_set_blocks;
  const auto hot_blocks = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(profile_.hot_space_frac *
                                 static_cast<double>(ws)),
      64);
  const std::uint64_t warm_begin = hot_blocks;
  const auto warm_blocks = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(0.25 * static_cast<double>(ws)), 64);
  const std::uint64_t seq_begin = warm_begin + warm_blocks;
  const std::uint64_t seq_blocks =
      ws > seq_begin + 64 ? ws - seq_begin : 64;
  const double hot_write_frac =
      rng.uniform(profile_.hot_write_frac_lo, profile_.hot_write_frac_hi);
  const double seq_write_frac =
      rng.uniform(profile_.seq_write_frac_lo, profile_.seq_write_frac_hi);

  // Warm region popularity: Zipfian over warm extents.
  ZipfianGenerator zipf(std::max<std::uint64_t>(warm_blocks / 2, 1),
                        p.zipf_alpha);
  std::uint64_t seq_cursor = 0;

  Volume volume;
  volume.id = volume_id;
  volume.capacity_blocks = p.working_set_blocks;

  const double mean_gap_us = 1e6 / p.rate_per_sec;
  const auto target_write_blocks = static_cast<std::uint64_t>(
      fill_factor * static_cast<double>(p.working_set_blocks));
  // Expected record count from the profile's size mix: writes carry the
  // weighted-mean request size, reads ride along per read_ratio. The
  // +1/8 slack usually makes this the volume's only allocation.
  {
    static constexpr std::uint32_t kSizes[6] = {1, 2, 4, 8, 16, 32};
    double wsum = 0.0;
    double mean_blocks = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      wsum += profile_.size_weights[i];
      mean_blocks += profile_.size_weights[i] * kSizes[i];
    }
    mean_blocks = wsum > 0.0 ? mean_blocks / wsum : 1.0;
    const double write_frac = std::max(1.0 - p.read_ratio, 1e-3);
    const double writes =
        static_cast<double>(target_write_blocks) / mean_blocks + 1.0;
    volume.records.reserve(
        static_cast<std::size_t>(writes / write_frac * 1.125));
  }

  // ON/OFF arrivals: geometric burst lengths with short intra-burst gaps;
  // idle gaps absorb the rest of the budget so the average rate holds.
  const double idle_gap_us = std::max(
      profile_.mean_burst_len * mean_gap_us -
          (profile_.mean_burst_len - 1.0) * profile_.burst_gap_us,
      profile_.burst_gap_us);
  std::uint64_t burst_remaining = 0;

  TimeUs clock_us = 0;
  std::uint64_t written = 0;
  while (written < target_write_blocks) {
    double gap_us = 0.0;
    if (burst_remaining > 0) {
      --burst_remaining;
      gap_us = rng.exponential(profile_.burst_gap_us);
    } else {
      gap_us = rng.exponential(idle_gap_us);
      // Geometric burst length with the configured mean (>= 1).
      const double cont = 1.0 - 1.0 / std::max(profile_.mean_burst_len, 1.0);
      while (rng.chance(cont) && burst_remaining < 256) ++burst_remaining;
    }
    clock_us += static_cast<TimeUs>(gap_us + 0.5);
    Record r;
    r.ts_us = clock_us;
    r.op = rng.chance(p.read_ratio) ? OpType::kRead : OpType::kWrite;
    r.blocks = draw_request_blocks(profile_.size_weights, rng);

    const double cls = rng.uniform();
    if (cls < hot_write_frac) {
      // Hot region: uniform over a small space -> very short lifetimes.
      const std::uint64_t span = std::max<std::uint64_t>(
          hot_blocks > r.blocks ? hot_blocks - r.blocks : 1, 1);
      r.lba = rng.below(span) / r.blocks * r.blocks;
    } else if (cls < hot_write_frac + seq_write_frac) {
      // Sequential cursor over the cold region: long-lived write-once data.
      r.lba = seq_begin + seq_cursor;
      if (r.lba + r.blocks >= p.working_set_blocks) {
        r.lba = seq_begin;
        seq_cursor = 0;
      }
      seq_cursor = (seq_cursor + r.blocks) % std::max<std::uint64_t>(
                                                 seq_blocks, 1);
    } else {
      // Warm region: scrambled Zipf popularity.
      const std::uint64_t scrambled = mix64(zipf.next(rng));
      const std::uint64_t span = std::max<std::uint64_t>(
          warm_blocks > r.blocks ? warm_blocks - r.blocks : 1, 1);
      r.lba = warm_begin + (scrambled % span) / r.blocks * r.blocks;
    }
    if (r.op == OpType::kWrite) written += r.blocks;
    volume.records.push_back(r);
  }
  return volume;
}

}  // namespace adapt::trace
