#include "sim/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/annotations.h"
#include "common/sync.h"
#include "common/thread_pool.h"

namespace adapt::sim {

double CellResult::overall_wa() const {
  std::uint64_t total = 0;
  std::uint64_t user = 0;
  for (const VolumeResult& v : volumes) {
    total += v.metrics.total_blocks();
    user += v.metrics.user_blocks;
  }
  return user == 0 ? 0.0
                   : static_cast<double>(total) / static_cast<double>(user);
}

double CellResult::overall_padding_ratio() const {
  std::uint64_t total = 0;
  std::uint64_t padding = 0;
  for (const VolumeResult& v : volumes) {
    total += v.metrics.total_blocks();
    padding += v.metrics.padding_blocks;
  }
  return total == 0
             ? 0.0
             : static_cast<double>(padding) / static_cast<double>(total);
}

Histogram CellResult::per_volume_wa() const {
  Histogram h;
  for (const VolumeResult& v : volumes) h.add(v.wa());
  return h;
}

Histogram CellResult::per_volume_padding_ratio() const {
  Histogram h;
  for (const VolumeResult& v : volumes) h.add(v.padding_ratio());
  return h;
}

obs::RunManifest CellResult::aggregate_manifest() const {
  obs::RunManifest m;
  m.tool = "experiment";
  m.policy = key.policy;
  m.victim = key.victim;
  for (const VolumeResult& v : volumes) {
    m.records += v.manifest.records;
    m.user_blocks += v.manifest.user_blocks;
    m.wall_seconds += v.manifest.wall_seconds;
    m.peak_rss_bytes = std::max(m.peak_rss_bytes, v.manifest.peak_rss_bytes);
    m.counters.merge_from(v.manifest.counters);
    m.provenance.merge_from(v.manifest.provenance);
    m.block_lifetime.merge_from(v.manifest.block_lifetime);
    m.gc_pause_us.merge_from(v.manifest.gc_pause_us);
    // Geometry and seed are uniform across a cell; keep the last seen.
    m.seed = v.manifest.seed;
    m.chunk_blocks = v.manifest.chunk_blocks;
    m.segment_chunks = v.manifest.segment_chunks;
    m.logical_blocks = v.manifest.logical_blocks;
    m.over_provision = v.manifest.over_provision;
  }
  m.records_per_sec =
      m.wall_seconds > 0.0
          ? static_cast<double>(m.records) / m.wall_seconds
          : 0.0;
  return m;
}

std::map<CellKey, CellResult> run_experiment(
    const ExperimentSpec& spec, const std::vector<trace::Volume>& volumes) {
  std::map<CellKey, CellResult> results;
  for (const auto& policy : spec.policies) {
    for (const auto& victim : spec.victims) {
      const CellKey key{policy, victim};
      results[key].key = key;
      results[key].volumes.resize(volumes.size());
    }
  }

  const std::size_t threads =
      spec.threads != 0 ? spec.threads : hardware_concurrency();
  ThreadPool pool(threads);

  // State shared across worker tasks, with each piece tied to its mutex by
  // a capability annotation (checked by the clang -Wthread-safety CI job).
  struct ErrorSink {
    Mutex mu;
    std::exception_ptr first ADAPT_GUARDED_BY(mu);
  } errors;

  std::function<void(const std::string&)> progress = spec.progress;
  if (!progress && std::getenv("ADAPT_PROGRESS") != nullptr) {
    progress = [](const std::string& line) {
      std::fprintf(stderr, "%s\n", line.c_str());
    };
  }
  struct ProgressState {
    Mutex mu;
    std::map<CellKey, std::size_t> remaining ADAPT_GUARDED_BY(mu);
  } prog;
  {
    LockGuard lock(prog.mu);
    for (const auto& [key, cell] : results) {
      prog.remaining[key] = volumes.size();
    }
  }

  for (const auto& policy : spec.policies) {
    for (const auto& victim : spec.victims) {
      CellResult& cell = results[CellKey{policy, victim}];
      for (std::size_t i = 0; i < volumes.size(); ++i) {
        pool.submit([&, i] {
          try {
            SimConfig config = spec.base;
            config.victim_policy = victim;
            cell.volumes[i] = run_volume(volumes[i], policy, config);
          } catch (...) {
            LockGuard lock(errors.mu);
            if (!errors.first) errors.first = std::current_exception();
          }
          if (progress) {
            LockGuard lock(prog.mu);
            if (--prog.remaining[cell.key] == 0) {
              const obs::RunManifest m = cell.aggregate_manifest();
              char buf[256];
              std::snprintf(buf, sizeof(buf),
                            "cell %s/%s done: %zu volumes, %.2fs worker "
                            "wall, %.0f records/s",
                            cell.key.policy.c_str(), cell.key.victim.c_str(),
                            cell.volumes.size(), m.wall_seconds,
                            m.records_per_sec);
              progress(buf);
            }
          }
        });
      }
    }
  }
  pool.wait_idle();
  {
    LockGuard lock(errors.mu);
    if (errors.first) std::rethrow_exception(errors.first);
  }
  return results;
}

}  // namespace adapt::sim
