#include "sim/experiment.h"

#include <mutex>
#include <thread>

#include "common/thread_pool.h"

namespace adapt::sim {

double CellResult::overall_wa() const {
  std::uint64_t total = 0;
  std::uint64_t user = 0;
  for (const VolumeResult& v : volumes) {
    total += v.metrics.total_blocks();
    user += v.metrics.user_blocks;
  }
  return user == 0 ? 0.0
                   : static_cast<double>(total) / static_cast<double>(user);
}

double CellResult::overall_padding_ratio() const {
  std::uint64_t total = 0;
  std::uint64_t padding = 0;
  for (const VolumeResult& v : volumes) {
    total += v.metrics.total_blocks();
    padding += v.metrics.padding_blocks;
  }
  return total == 0
             ? 0.0
             : static_cast<double>(padding) / static_cast<double>(total);
}

Histogram CellResult::per_volume_wa() const {
  Histogram h;
  for (const VolumeResult& v : volumes) h.add(v.wa());
  return h;
}

Histogram CellResult::per_volume_padding_ratio() const {
  Histogram h;
  for (const VolumeResult& v : volumes) h.add(v.padding_ratio());
  return h;
}

std::map<CellKey, CellResult> run_experiment(
    const ExperimentSpec& spec, const std::vector<trace::Volume>& volumes) {
  std::map<CellKey, CellResult> results;
  for (const auto& policy : spec.policies) {
    for (const auto& victim : spec.victims) {
      const CellKey key{policy, victim};
      results[key].key = key;
      results[key].volumes.resize(volumes.size());
    }
  }

  const std::size_t threads =
      spec.threads != 0 ? spec.threads
                        : std::max(1u, std::thread::hardware_concurrency());
  ThreadPool pool(threads);
  std::mutex error_mu;
  std::exception_ptr first_error;

  for (const auto& policy : spec.policies) {
    for (const auto& victim : spec.victims) {
      CellResult& cell = results[CellKey{policy, victim}];
      for (std::size_t i = 0; i < volumes.size(); ++i) {
        pool.submit([&, i] {
          try {
            SimConfig config = spec.base;
            config.victim_policy = victim;
            cell.volumes[i] = run_volume(volumes[i], policy, config);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        });
      }
    }
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace adapt::sim
