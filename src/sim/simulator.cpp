#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "adapt/adapt_policy.h"
#include "adapt/aggregation_wrapper.h"
#include "common/types.h"
#include "placement/factory.h"

namespace adapt::sim {

const std::vector<std::string_view>& all_policy_names() {
  static const std::vector<std::string_view> names = {
      "sepgc", "mida", "dac", "warcip", "sepbit", "adapt"};
  return names;
}

VolumeResult run_volume(const trace::Volume& volume,
                        std::string_view policy_name,
                        const SimConfig& config) {
  lss::LssConfig lss_config = config.lss;
  // Floor the logical space so that even an 8-group policy has enough
  // over-provisioned segments for its GC watermark (see LssConfig::validate).
  lss_config.logical_blocks =
      std::max<std::uint64_t>(volume.capacity_blocks, 1u << 15);

  // Build the policy. A "+agg" suffix wraps a baseline with the
  // cross-group aggregation extension (see adapt/aggregation_wrapper.h).
  std::unique_ptr<lss::PlacementPolicy> policy;
  core::AdaptPolicy* adapt_policy = nullptr;
  core::AggregatingPolicy* wrapper = nullptr;
  constexpr std::string_view kAggSuffix = "+agg";
  if (policy_name.size() > kAggSuffix.size() &&
      policy_name.ends_with(kAggSuffix)) {
    placement::PolicyConfig pc;
    pc.logical_blocks = lss_config.logical_blocks;
    pc.segment_blocks = lss_config.segment_blocks();
    pc.seed = config.seed;
    auto inner = placement::make_baseline_policy(
        policy_name.substr(0, policy_name.size() - kAggSuffix.size()), pc);
    core::AggregationWrapperConfig wc;
    wc.chunk_blocks = lss_config.chunk_blocks;
    auto wrapped = core::wrap_with_aggregation(std::move(inner), wc);
    wrapper = wrapped.get();
    policy = std::move(wrapped);
  } else if (policy_name == "adapt") {
    core::AdaptConfig ac;
    ac.logical_blocks = lss_config.logical_blocks;
    ac.segment_blocks = lss_config.segment_blocks();
    ac.chunk_blocks = lss_config.chunk_blocks;
    ac.over_provision = lss_config.over_provision;
    ac.enable_threshold_adaptation = config.adapt_threshold_adaptation;
    ac.enable_cross_group_aggregation =
        config.adapt_cross_group_aggregation;
    ac.enable_proactive_demotion = config.adapt_proactive_demotion;
    auto p = core::make_adapt_policy(ac);
    adapt_policy = p.get();
    policy = std::move(p);
  } else {
    placement::PolicyConfig pc;
    pc.logical_blocks = lss_config.logical_blocks;
    pc.segment_blocks = lss_config.segment_blocks();
    pc.seed = config.seed;
    policy = placement::make_baseline_policy(policy_name, pc);
  }

  auto victim = lss::make_victim_policy(config.victim_policy);

  std::unique_ptr<array::SsdArray> ssd_array;
  if (config.with_array) {
    array::SsdArrayConfig arr;
    arr.chunk_bytes = lss_config.chunk_blocks * lss_config.block_bytes;
    arr.num_streams = policy->group_count();
    ssd_array = std::make_unique<array::SsdArray>(arr);
  }

  lss::LssEngine engine(lss_config, *policy, *victim, ssd_array.get(),
                        config.seed);
  if (adapt_policy != nullptr) {
    engine.set_aggregation_hook(adapt_policy);
  } else if (wrapper != nullptr) {
    engine.set_aggregation_hook(wrapper);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::unique_ptr<obs::EngineSampler> sampler;
  if (config.sampling_enabled) {
    std::function<double()> probe;
    if (adapt_policy != nullptr) {
      probe = [adapt_policy] { return adapt_policy->threshold(); };
    }
    sampler = std::make_unique<obs::EngineSampler>(config.sampling,
                                                   std::move(probe));
    engine.set_observer(sampler.get());
  }

  // Requests past the volume's declared capacity are trace noise: clamp.
  const Lba addressable =
      std::min<Lba>(std::max<Lba>(volume.capacity_blocks, 1),
                    lss_config.logical_blocks);
  const auto total_records =
      static_cast<std::uint64_t>(volume.records.size());
  std::uint64_t done = 0;
  TimeUs last_ts = 0;
  for (const trace::Record& r : volume.records) {
    ++done;
    if (config.progress && done % 65536 == 0) {
      config.progress(done, total_records);
    }
    last_ts = r.ts_us;
    const Lba end = std::min<Lba>(r.lba + r.blocks, addressable);
    if (r.lba >= end) continue;
    const auto span = static_cast<std::uint32_t>(end - r.lba);
    if (r.op == trace::OpType::kWrite) {
      engine.write(r.lba, span, r.ts_us);
    } else {
      engine.read(r.lba, span, r.ts_us);
    }
  }
  engine.flush_all();
  if (sampler != nullptr) sampler->finalize(engine, last_ts);
  if (config.progress) config.progress(total_records, total_records);

  VolumeResult result;
  result.volume_id = volume.id;
  result.policy = std::string(policy_name);
  result.victim = config.victim_policy;
  result.metrics = engine.metrics();
  result.segments_per_group = engine.segments_per_group();
  result.policy_memory_bytes = policy->memory_usage_bytes();
  if (ssd_array != nullptr) result.array_totals = ssd_array->totals();

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  obs::RunManifest& man = result.manifest;
  man.policy = result.policy;
  man.victim = result.victim;
  man.volume_id = volume.id;
  man.seed = config.seed;
  man.records = total_records;
  man.user_blocks = result.metrics.user_blocks;
  man.wall_seconds = wall_seconds;
  man.records_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(total_records) / wall_seconds
                         : 0.0;
  man.peak_rss_bytes = obs::current_peak_rss_bytes();
  man.chunk_blocks = lss_config.chunk_blocks;
  man.segment_chunks = lss_config.segment_chunks;
  man.logical_blocks = lss_config.logical_blocks;
  man.over_provision = lss_config.over_provision;
  obs::register_lss_metrics(man.counters, result.metrics);
  if (sampler != nullptr) {
    result.series =
        std::make_shared<const obs::TimeSeries>(sampler->take());
  }
  return result;
}

}  // namespace adapt::sim
