#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>

#include "adapt/adapt_policy.h"
#include "adapt/aggregation_wrapper.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "lss/sharded_engine.h"
#include "placement/factory.h"

namespace adapt::sim {
namespace {

/// Per-shard policy pointers recorded by the shard factory: the
/// aggregation hook is wired at engine construction, and the adapt pointer
/// feeds the sampler's live-threshold probe.
struct ShardPolicyRefs {
  core::AdaptPolicy* adapt = nullptr;
};

/// Builds one shard's placement policy (plus hook) for `policy_name`. A
/// "+agg" suffix wraps a baseline with the cross-group aggregation
/// extension (see adapt/aggregation_wrapper.h).
lss::ShardParts make_shard_parts(std::string_view policy_name,
                                 const SimConfig& config,
                                 const lss::LssConfig& shard_lss,
                                 std::uint64_t shard_seed,
                                 ShardPolicyRefs& refs) {
  lss::ShardParts parts;
  constexpr std::string_view kAggSuffix = "+agg";
  if (policy_name.size() > kAggSuffix.size() &&
      policy_name.ends_with(kAggSuffix)) {
    placement::PolicyConfig pc;
    pc.logical_blocks = shard_lss.logical_blocks;
    pc.segment_blocks = shard_lss.segment_blocks();
    pc.seed = shard_seed;
    auto inner = placement::make_baseline_policy(
        policy_name.substr(0, policy_name.size() - kAggSuffix.size()), pc);
    core::AggregationWrapperConfig wc;
    wc.chunk_blocks = shard_lss.chunk_blocks;
    auto wrapped = core::wrap_with_aggregation(std::move(inner), wc);
    parts.hook = wrapped.get();
    parts.policy = std::move(wrapped);
  } else if (policy_name == "adapt") {
    core::AdaptConfig ac;
    ac.logical_blocks = shard_lss.logical_blocks;
    ac.segment_blocks = shard_lss.segment_blocks();
    ac.chunk_blocks = shard_lss.chunk_blocks;
    ac.over_provision = shard_lss.over_provision;
    ac.enable_threshold_adaptation = config.adapt_threshold_adaptation;
    ac.enable_cross_group_aggregation =
        config.adapt_cross_group_aggregation;
    ac.enable_proactive_demotion = config.adapt_proactive_demotion;
    auto p = core::make_adapt_policy(ac);
    refs.adapt = p.get();
    parts.hook = p.get();
    parts.policy = std::move(p);
  } else {
    placement::PolicyConfig pc;
    pc.logical_blocks = shard_lss.logical_blocks;
    pc.segment_blocks = shard_lss.segment_blocks();
    pc.seed = shard_seed;
    parts.policy = placement::make_baseline_policy(policy_name, pc);
  }

  parts.victim = lss::make_victim_policy(config.victim_policy);

  if (config.with_array) {
    array::SsdArrayConfig arr;
    arr.chunk_bytes = shard_lss.chunk_blocks * shard_lss.block_bytes;
    arr.num_streams = parts.policy->group_count();
    parts.array = std::make_unique<array::SsdArray>(arr);
  }
  return parts;
}

}  // namespace

const std::vector<std::string_view>& all_policy_names() {
  static const std::vector<std::string_view> names = {
      "sepgc", "mida", "dac", "warcip", "sepbit", "adapt"};
  return names;
}

VolumeResult run_volume(const trace::Volume& volume,
                        std::string_view policy_name,
                        const SimConfig& config) {
  if (config.shards == 0 || config.shards > lss::kMaxShards) {
    throw std::invalid_argument("SimConfig: shards out of range");
  }
  const std::uint32_t shards = config.shards;

  lss::LssConfig lss_config = config.lss;
  // Floor the logical space so that even an 8-group policy has enough
  // over-provisioned segments for its GC watermark (see
  // LssConfig::validate); with sharding the floor applies per shard.
  lss_config.logical_blocks =
      std::max<std::uint64_t>(volume.capacity_blocks,
                              (std::uint64_t{1} << 15) * shards);

  std::vector<ShardPolicyRefs> policy_refs(shards);
  const auto factory = [&](std::uint32_t shard_index,
                           const lss::LssConfig& shard_lss) {
    return make_shard_parts(policy_name, config, shard_lss,
                            config.seed + shard_index,
                            policy_refs[shard_index]);
  };
  lss::ShardedEngine engine(lss_config, shards, config.seed, factory);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<obs::TraceLog>> trace_logs;
  if (config.tracing_enabled) {
    trace_logs.reserve(shards);
    for (std::uint32_t i = 0; i < shards; ++i) {
      trace_logs.push_back(std::make_unique<obs::TraceLog>(config.tracing));
      engine.set_trace_sink(i, trace_logs[i].get());
      // The policy's re-adaptation events land in the same shard ring as
      // its engine's, keeping the merged order deterministic.
      if (core::AdaptPolicy* adapt_policy = policy_refs[i].adapt;
          adapt_policy != nullptr) {
        adapt_policy->set_trace_sink(trace_logs[i].get());
      }
    }
  }
  std::vector<std::unique_ptr<obs::EngineSampler>> samplers;
  if (config.sampling_enabled) {
    samplers.reserve(shards);
    for (std::uint32_t i = 0; i < shards; ++i) {
      std::function<double()> probe;
      if (core::AdaptPolicy* adapt_policy = policy_refs[i].adapt;
          adapt_policy != nullptr) {
        probe = [adapt_policy] { return adapt_policy->threshold(); };
      }
      samplers.push_back(std::make_unique<obs::EngineSampler>(
          config.sampling, std::move(probe)));
      engine.shard(i).set_observer(samplers[i].get());
    }
  }
  // Live runtime stats stack ON TOP of sampling: each shard's observer
  // slot gets a LiveStatsObserver that forwards to the sampler (if any)
  // and publishes block progress into the shared seqlock sink.
  std::vector<std::unique_ptr<obs::LiveStatsObserver>> live_observers;
  if (config.live_stats != nullptr) {
    live_observers.reserve(shards);
    for (std::uint32_t i = 0; i < shards; ++i) {
      lss::EngineObserver* inner =
          i < samplers.size() ? samplers[i].get() : nullptr;
      live_observers.push_back(std::make_unique<obs::LiveStatsObserver>(
          *config.live_stats, inner));
      engine.shard(i).set_observer(live_observers[i].get());
    }
  }

  // Requests past the volume's declared capacity are trace noise: clamp.
  const Lba addressable =
      std::min<Lba>(std::max<Lba>(volume.capacity_blocks, 1),
                    lss_config.logical_blocks);
  const auto total_records =
      static_cast<std::uint64_t>(volume.records.size());
  std::uint64_t done = 0;
  TimeUs last_ts = 0;
  engine.reserve_queues(volume.records.size());
  for (const trace::Record& r : volume.records) {
    ++done;
    if (config.progress && done % 65536 == 0) {
      config.progress(done, total_records);
    }
    last_ts = r.ts_us;
    const Lba end = std::min<Lba>(r.lba + r.blocks, addressable);
    if (r.lba >= end) continue;
    const auto span = static_cast<std::uint32_t>(end - r.lba);
    if (r.op == trace::OpType::kWrite) {
      engine.enqueue_write(r.lba, span, r.ts_us);
    } else {
      engine.enqueue_read(r.lba, span, r.ts_us);
    }
  }
  // One replay thread per shard; a single shard runs on this thread.
  std::unique_ptr<ThreadPool> pool;
  if (shards > 1) pool = std::make_unique<ThreadPool>(shards);
  engine.run_queued(pool.get());
  engine.flush_all();
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(samplers.size());
       ++i) {
    samplers[i]->finalize(engine.shard(i), last_ts);
  }
  for (const auto& live : live_observers) live->flush();
  if (config.progress) config.progress(total_records, total_records);

  VolumeResult result;
  result.volume_id = volume.id;
  result.policy = std::string(policy_name);
  result.victim = config.victim_policy;
  result.metrics = engine.merged_metrics();
  result.segments_per_group = engine.merged_segments_per_group();
  result.policy_memory_bytes = engine.policy_memory_bytes();
  if (config.with_array) result.array_totals = engine.merged_array_totals();

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  obs::RunManifest& man = result.manifest;
  man.policy = result.policy;
  man.victim = result.victim;
  man.volume_id = volume.id;
  man.seed = config.seed;
  man.records = total_records;
  man.user_blocks = result.metrics.user_blocks;
  man.wall_seconds = wall_seconds;
  man.records_per_sec =
      wall_seconds > 0.0 ? static_cast<double>(total_records) / wall_seconds
                         : 0.0;
  man.peak_rss_bytes = obs::current_peak_rss_bytes();
  man.chunk_blocks = lss_config.chunk_blocks;
  man.segment_chunks = lss_config.segment_chunks;
  man.logical_blocks = lss_config.logical_blocks;
  man.over_provision = lss_config.over_provision;
  // Pending (appended-but-unflushed) blocks close the write-accounting
  // identity from the manifest alone; after flush_all this is normally 0.
  std::uint64_t pending_blocks = 0;
  for (std::uint32_t i = 0; i < shards; ++i) {
    const lss::LssEngine& shard = engine.shard(i);
    for (GroupId g = 0; g < shard.group_count(); ++g) {
      pending_blocks += shard.pending_blocks(g);
    }
  }
  man.provenance = obs::provenance_of(result.metrics, pending_blocks);
  man.block_lifetime = result.metrics.block_lifetime;
  man.gc_pause_us = result.metrics.gc_pause_us;
  obs::register_lss_metrics(man.counters, result.metrics);
  if (!trace_logs.empty()) {
    std::vector<const obs::TraceLog*> ptrs;
    ptrs.reserve(trace_logs.size());
    for (const auto& log : trace_logs) ptrs.push_back(log.get());
    obs::TraceData data = obs::merge_trace_logs(ptrs);
    // Trace capture summary rides in the manifest, so drop accounting
    // survives even when the trace JSON itself is discarded.
    man.trace_present = true;
    man.trace_recorded = data.recorded;
    man.trace_dropped = data.dropped;
    man.trace_per_shard_dropped = data.per_shard_dropped;
    result.trace =
        std::make_shared<const obs::TraceData>(std::move(data));
  }
  if (!samplers.empty()) {
    std::vector<obs::TimeSeries> parts;
    parts.reserve(samplers.size());
    for (auto& sampler : samplers) parts.push_back(sampler->take());
    result.series = std::make_shared<const obs::TimeSeries>(
        obs::merge_series(std::move(parts)));
  }
  return result;
}

}  // namespace adapt::sim
