// Trace-driven simulator: replays one volume's record stream through a
// placement policy + LSS engine + SSD-array model and reports the metrics
// the paper's evaluation is built on (WA, padding-traffic ratio, per-group
// traffic, policy memory).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "array/ssd_array.h"
#include "lss/config.h"
#include "lss/engine.h"
#include "lss/metrics.h"
#include "obs/export.h"
#include "obs/runtime_stats.h"
#include "obs/trace_log.h"
#include "trace/record.h"

namespace adapt::sim {

struct SimConfig {
  lss::LssConfig lss;  ///< logical_blocks is overridden per volume
  std::string victim_policy = "greedy";
  bool with_array = true;
  std::uint64_t seed = 1;
  /// LBA-sharded parallel replay: the volume's LBA space is modulo-
  /// partitioned across this many independent engine shards, replayed in
  /// parallel (one thread per shard) and merged. 1 (the default) replays
  /// through a single shard, bit-identical to the unsharded engine. With
  /// more shards the logical space is floored at 32Ki blocks *per shard*
  /// so every shard's geometry stays feasible.
  std::uint32_t shards = 1;
  /// ADAPT ablation switches (ignored by baselines).
  bool adapt_threshold_adaptation = true;
  bool adapt_cross_group_aggregation = true;
  bool adapt_proactive_demotion = true;
  /// Observability: when enabled, run_volume attaches an obs::EngineSampler
  /// (plus a live-threshold probe for the "adapt" policy) and returns the
  /// time series in VolumeResult::series. Off by default — the replay loop
  /// then pays exactly one null check per user block.
  bool sampling_enabled = false;
  obs::SamplerConfig sampling;
  /// Event tracing: when enabled, run_volume attaches one obs::TraceLog per
  /// shard, merges the rings after replay and returns the deterministic
  /// timeline in VolumeResult::trace. Off by default — tracing is passive
  /// (pinned fixed-seed metrics stay bit-identical either way), but the
  /// ring writes are not free, so it stays opt-in.
  bool tracing_enabled = false;
  obs::TraceLogConfig tracing;
  /// Optional replay-progress callback (records done, records total);
  /// invoked every ~64k records and once at completion.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
  /// Live runtime stats: when set, replay progress (ops/blocks) is
  /// published into this seqlock-readable sink so a poller thread (e.g.
  /// adapt_run --live-stats) can print periodic lines without touching the
  /// replay. Not owned; must outlive run_volume. Null (off) by default.
  obs::RuntimeStats* live_stats = nullptr;
};

struct VolumeResult {
  std::uint64_t volume_id = 0;
  std::string policy;
  std::string victim;
  lss::LssMetrics metrics;
  array::StreamStats array_totals;
  std::vector<std::uint32_t> segments_per_group;
  std::size_t policy_memory_bytes = 0;
  /// Provenance + cost summary (always filled; counters hold the lss.*
  /// registry snapshot of this volume's metrics).
  obs::RunManifest manifest;
  /// Sampled time series; null unless SimConfig::sampling_enabled.
  std::shared_ptr<const obs::TimeSeries> series;
  /// Merged event trace; null unless SimConfig::tracing_enabled.
  std::shared_ptr<const obs::TraceData> trace;

  double wa() const noexcept { return metrics.wa(); }
  double padding_ratio() const noexcept { return metrics.padding_ratio(); }
};

/// Known policy names: the baselines plus "adapt".
const std::vector<std::string_view>& all_policy_names();

/// Replays `volume` under `policy_name` and returns the metrics.
/// Throws std::invalid_argument for unknown policies.
VolumeResult run_volume(const trace::Volume& volume,
                        std::string_view policy_name, const SimConfig& config);

}  // namespace adapt::sim
